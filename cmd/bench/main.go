// Command bench measures the repository's hot-path benchmarks — Yarrp6
// campaign throughput (with and without the graph observer), the
// sharded campaign engine, and aliased-prefix detection — plus a
// shard-scaling sweep (shard counts × send-batch sizes, engine time
// only), and writes the results as JSON (BENCH_PR8.json by default):
// probes per wall-clock second and allocations per probe for each,
// alongside the recorded PR 3 baseline the speedup is judged against
// and the parallel efficiency of the sharded engine.
//
// Parallel efficiency is core-normalized: probes/s at N shards divided
// by (min(N, NumCPU) × probes/s at 1 shard). Linear scaling cannot
// exceed the machine's parallelism, so on a single-core host the metric
// degenerates to "sharding must not lose throughput" — the exact
// regression PR 5 fixes — while on an N-core host it reads as the usual
// speedup-per-core fraction.
//
// With -check it instead enforces the fast-path invariants: the run
// fails if any benchmark's steady-state allocs/probe exceeds
// -max-allocs, if 4-shard parallel efficiency falls below
// -min-efficiency, if the fully-instrumented campaign
// (Yarrp6Telemetry: metrics registry plus progress stream) drops below
// -min-telemetry-ratio of the bare campaign's throughput, or if a
// campaign with the fault-injection plane armed but never firing
// (Yarrp6FaultIdle) drops below -min-faults-ratio of the fault-free
// pair or adds more than 0.02 allocs/probe, or if a single-tenant
// campaign under the supervisor (Yarrp6Supervised: admission, watchdog,
// result streaming machinery) drops below -min-sched-ratio of the bare
// campaign.
// CI runs `go run ./cmd/bench -benchtime 150ms -check`
// so a regression on the packet fast path or the shard-scaling path
// fails the build; `make bench` writes the full JSON artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"beholder"
)

// baselinePreFastpath is the pre-PR-3 measurement (commit c17cfec, the
// parallel campaign engine, 1-core container, go1.24, -benchtime 1.5s)
// recorded before the packet fast path landed.
var baselinePreFastpath = map[string]Result{
	"Yarrp6Throughput": {ProbesPerSec: 645821, AllocsPerProbe: 3.08},
	"CampaignSharded4": {ProbesPerSec: 838285, AllocsPerProbe: 2.04},
	"AliasDetect":      {ProbesPerSec: 787487, AllocsPerProbe: 1.46},
}

// baselinePR3 is the BENCH_PR3.json measurement (commit c115efc, the
// zero-allocation packet fast path, same 1-core container) — the
// baseline the batched-pipeline PR is judged against.
var baselinePR3 = map[string]Result{
	"Yarrp6Throughput": {ProbesPerSec: 1497570, AllocsPerProbe: 0.232},
	"CampaignSharded4": {ProbesPerSec: 942040, AllocsPerProbe: 0.543},
	"AliasDetect":      {ProbesPerSec: 886826, AllocsPerProbe: 0.222},
}

// Result is one benchmark's headline numbers.
type Result struct {
	ProbesPerSec   float64 `json:"probes_per_sec"`
	AllocsPerProbe float64 `json:"allocs_per_probe"`
	ProbesPerOp    float64 `json:"probes_per_op,omitempty"`
	NsPerOp        int64   `json:"ns_per_op,omitempty"`
}

// AdaptiveYield is the AdaptiveVsStatic discovery-per-probe pair: the
// same probe budget spent by the best static pipeline (lowbyte /64
// synthesis over the seed set) and by the closed-loop adaptive
// generator, scored by unique interfaces discovered. Both runs are
// fully deterministic — virtual-time simulation, fixed keys — so the
// gate measures the generation model, not benchmark noise.
type AdaptiveYield struct {
	Budget             int64 `json:"budget_probes"`
	StaticTargets      int   `json:"static_targets"`
	StaticProbes       int64 `json:"static_probes"`
	StaticInterfaces   int   `json:"static_interfaces"`
	AdaptiveProbes     int64 `json:"adaptive_probes"`
	AdaptiveInterfaces int   `json:"adaptive_interfaces"`
	AdaptiveEpochs     int   `json:"adaptive_epochs"`
	// Ratio is adaptive interfaces over static interfaces at the shared
	// budget — the discovery-per-probe advantage of the feedback loop.
	Ratio float64 `json:"ratio"`
}

// Report is the BENCH_PR5.json document.
type Report struct {
	Note    string            `json:"note"`
	NumCPU  int               `json:"num_cpu"`
	Current map[string]Result `json:"current"`
	// ShardScaling holds the engine-only sweep (universe construction
	// excluded): key "shards=N/batch=B".
	ShardScaling map[string]Result `json:"shard_scaling"`
	// ParallelEfficiency is probes/s at N shards over min(N, NumCPU) ×
	// probes/s at 1 shard, at the default batch size.
	ParallelEfficiency map[string]float64 `json:"parallel_efficiency"`
	AdaptiveVsStatic   *AdaptiveYield     `json:"adaptive_vs_static"`
	BaselinePR3        map[string]Result  `json:"baseline_pr3"`
	BaselinePre        map[string]Result  `json:"baseline_pre_fastpath"`
	Speedup            map[string]float64 `json:"speedup_vs_pr3"`
}

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measure runs fn under testing.Benchmark. fn probes the simulator and
// returns how many probes the iteration sent; allocations are counted
// around the probing work only (setup excluded by the caller keeping it
// out of fn).
func measure(fn func() int64) Result {
	var sent int64
	var allocs uint64
	r := testing.Benchmark(func(b *testing.B) {
		sent, allocs = 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m0 := mallocs()
			n := fn()
			allocs += mallocs() - m0
			sent += n
		}
	})
	probesPerOp := float64(sent) / float64(r.N)
	return Result{
		ProbesPerSec:   float64(sent) / r.T.Seconds(),
		AllocsPerProbe: float64(allocs) / float64(sent),
		ProbesPerOp:    probesPerOp,
		NsPerOp:        r.NsPerOp(),
	}
}

// measureAlternating times two variants of the same workload in
// alternating rounds and returns the pair whose throughput ratio b/a is
// the least noise-contaminated. Ratio gates need this: on a shared
// host, two back-to-back testing.Benchmark runs of *identical* code
// differ by far more than the overhead being gated (heap growth and
// scheduler noise drift monotonically through the process), so a
// sequential A-then-B comparison mostly measures run order. Two
// noise-floor estimators are kept, and the pair with the higher ratio
// wins: the best matched round (adjacent measurements share drift; a
// spike only poisons its own round) and the per-variant best across
// all rounds (each variant's own noise floor). A genuine overhead
// depresses both; noise depresses at most one, so the max converges on
// the true ratio from below.
func measureAlternating(a, b func() int64, rounds int) (Result, Result) {
	var pairA, pairB, bestA, bestB Result
	pairRatio := -1.0
	for i := 0; i < rounds; i++ {
		ra, rb := measure(a), measure(b)
		if ra.ProbesPerSec > 0 {
			if ratio := rb.ProbesPerSec / ra.ProbesPerSec; ratio > pairRatio {
				pairRatio, pairA, pairB = ratio, ra, rb
			}
		}
		if ra.ProbesPerSec > bestA.ProbesPerSec {
			bestA = ra
		}
		if rb.ProbesPerSec > bestB.ProbesPerSec {
			bestB = rb
		}
		if pairRatio >= 1 {
			break // b already measured as free; more rounds only cost time
		}
	}
	if bestA.ProbesPerSec > 0 && bestB.ProbesPerSec/bestA.ProbesPerSec > pairRatio {
		return bestA, bestB
	}
	return pairA, pairB
}

func main() {
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_PR8.json", "output JSON path (empty: stdout only)")
		benchtime = flag.String("benchtime", "1.5s", "per-benchmark measuring time (testing -benchtime syntax)")
		check     = flag.Bool("check", false, "enforce the fast-path bounds instead of writing the artifact")
		maxAllocs = flag.Float64("max-allocs", 0.75, "with -check: fail when any benchmark exceeds this allocs/probe")
		minEff    = flag.Float64("min-efficiency", 0.6, "with -check: fail when 4-shard parallel efficiency falls below this")
		minTelem  = flag.Float64("min-telemetry-ratio", 0.95, "with -check: fail when telemetry-on throughput falls below this fraction of telemetry-off")
		minFaults = flag.Float64("min-faults-ratio", 0.98, "with -check: fail when an armed-but-idle fault plane drops throughput below this fraction of the fault-free campaign")
		minSched  = flag.Float64("min-sched-ratio", 0.95, "with -check: fail when a supervised single-tenant campaign drops throughput below this fraction of the bare campaign")
		minAdapt  = flag.Float64("min-adaptive-ratio", 1.1, "with -check: fail when adaptive generation discovers fewer than this multiple of the static pipeline's interfaces at equal probe budget")
		minCkpt   = flag.Float64("min-ckpt-ratio", 0.95, "with -check: fail when periodic checkpointing drops supervised throughput below this fraction of the drain-only run")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	cur := make(map[string]Result)

	// Yarrp6 campaign throughput: raw prober packet construction plus
	// simulator forwarding (mirrors BenchmarkYarrp6Throughput).
	thrIn := beholder.NewSmallInternet(5)
	thrTargets, err := thrIn.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	key := uint64(0)
	cur["Yarrp6Throughput"] = measure(func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{Rate: 10000, MaxTTL: 16, Key: key})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	})

	// Telemetry overhead pair: the same campaign on the sharded engine,
	// bare (Yarrp6Campaign) and fully instrumented (Yarrp6Telemetry:
	// metrics registry plus a discarded NDJSON progress stream). -check
	// gates the instrumented run's throughput against the bare one
	// (-min-telemetry-ratio) and its allocs/probe against the shared
	// bound, so instrumentation can never quietly tax the hot path. Both
	// run the campaign engine — telemetry always routes through it (its
	// sampling grid is what makes progress deterministic), so comparing
	// against the direct serial loop would charge the engine's routing
	// cost (gated separately via parallel efficiency) to instrumentation.
	campaignFn := func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{
			Rate: 10000, MaxTTL: 16, Key: key, Shards: 2,
		})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	}
	telemFn := func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{
			Rate: 10000, MaxTTL: 16, Key: key, Shards: 2,
			Telemetry: beholder.NewTelemetry(), Progress: io.Discard,
		})
		if err != nil {
			panic(err)
		}
		if n, ok := res.Telemetry.Counter("yarrp_probes_sent_total"); !ok || n != res.ProbesSent {
			panic("bench: telemetry probe counter disagrees with campaign stats")
		}
		return res.ProbesSent
	}
	cur["Yarrp6Campaign"], cur["Yarrp6Telemetry"] = measureAlternating(campaignFn, telemFn, 5)

	// Fault-plane idle overhead pair: the same sharded campaign with the
	// fault-injection plane armed but never firing (a crash rule whose
	// instant lies hours past the campaign end). The plan is active, so
	// every send and delivery consults the plane's keyed-hash draws —
	// this measures exactly the tax a fault-capable run pays when
	// nothing goes wrong. -check gates the ratio (-min-faults-ratio)
	// and the allocs/probe delta, so robustness machinery stays
	// effectively free on the clean path. A separate universe carries
	// the armed plane; same seed, so the topology is identical.
	faultIn := beholder.NewSmallInternet(5)
	faultIn.SetFaults(&beholder.FaultConfig{Seed: 0xfa17, Rules: []beholder.FaultRule{
		{Vantage: "throughput", Shard: beholder.FaultAnyShard, Kind: beholder.FaultCrash, At: time.Hour},
	}})
	faultIdleFn := func() int64 {
		faultIn.Reset()
		v := faultIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{
			Rate: 10000, MaxTTL: 16, Key: key, Shards: 2,
		})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	}
	cur["Yarrp6FaultOff"], cur["Yarrp6FaultIdle"] = measureAlternating(campaignFn, faultIdleFn, 5)

	// Supervision overhead pair: the same sharded campaign, bare vs
	// routed through a single-tenant Scheduler (admission control, the
	// heartbeat watchdog, the per-vantage breaker, and terminal graph
	// construction all engaged). -check gates the ratio
	// (-min-sched-ratio), so the supervisor stays a thin wrapper around
	// Campaign.Run on the happy path.
	schedFn := func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		sch, err := thrIn.NewScheduler(beholder.SchedulerOptions{
			Tenants: []beholder.Tenant{{Name: "bench"}}, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		h, err := sch.Submit(v, thrTargets, beholder.SubmitOptions{
			Tenant: "bench", Name: "campaign", Rate: 10000, MaxTTL: 16, Key: key, Shards: 2,
		})
		if err != nil {
			panic(err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			panic(err)
		}
		if res.State != beholder.CampaignCompleted {
			panic("bench: supervised campaign did not complete")
		}
		if _, err := sch.Drain(context.Background()); err != nil {
			panic(err)
		}
		return res.Stats.ProbesSent
	}
	cur["Yarrp6Bare"], cur["Yarrp6Supervised"] = measureAlternating(campaignFn, schedFn, 5)

	// Periodic-checkpoint overhead pair: the supervised campaign with
	// drain-only snapshots (Yarrp6DrainOnly) against the same campaign
	// interrupted, serialized, and resumed on a cadence sized for ~4
	// snapshot cycles per run (Yarrp6PeriodicCkpt). -check gates the
	// ratio (-min-ckpt-ratio), so crash-loss bounding stays affordable
	// enough to leave on in production daemons.
	supervisedFn := func(every time.Duration, sank *int) func() int64 {
		return func() int64 {
			thrIn.Reset()
			v := thrIn.NewVantage("throughput")
			key++
			opt := beholder.SchedulerOptions{
				Tenants: []beholder.Tenant{{Name: "bench"}}, Workers: 1,
				StallBudget: time.Minute,
			}
			if every > 0 {
				opt.CheckpointEvery = every
				opt.CheckpointSink = func(string, string, []byte) error {
					*sank++
					return nil
				}
			}
			sch, err := thrIn.NewScheduler(opt)
			if err != nil {
				panic(err)
			}
			h, err := sch.Submit(v, thrTargets, beholder.SubmitOptions{
				Tenant: "bench", Name: "campaign", Rate: 10000, MaxTTL: 16, Key: key, Shards: 2,
			})
			if err != nil {
				panic(err)
			}
			res, err := h.Wait(context.Background())
			if err != nil {
				panic(err)
			}
			if res.State != beholder.CampaignCompleted || res.Retries != 0 {
				panic("bench: checkpointed campaign did not complete cleanly")
			}
			if _, err := sch.Drain(context.Background()); err != nil {
				panic(err)
			}
			return res.Stats.ProbesSent
		}
	}
	var snapshots int
	drainOnlyFn := supervisedFn(0, nil)
	// Size the cadence from a live drain-only run so the checkpointed
	// variant snapshots ~4 times regardless of host speed.
	calStart := time.Now()
	drainOnlyFn()
	ckptEvery := time.Since(calStart) / 5
	if ckptEvery < time.Millisecond {
		ckptEvery = time.Millisecond
	}
	periodicFn := supervisedFn(ckptEvery, &snapshots)
	cur["Yarrp6DrainOnly"], cur["Yarrp6PeriodicCkpt"] = measureAlternating(drainOnlyFn, periodicFn, 5)
	if snapshots == 0 {
		fmt.Fprintln(os.Stderr, "bench: periodic-checkpoint pair took zero snapshots; cadence miscalibrated")
		os.Exit(1)
	}

	// The same campaign with the streaming topology-graph observer
	// attached (mirrors BenchmarkYarrp6GraphObserver): graph ingest must
	// stay within the fast-path allocs/probe bound, so -check gates it
	// alongside the bare run.
	cur["Yarrp6Graph"] = measure(func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{Rate: 10000, MaxTTL: 16, Key: key, Graph: true})
		if err != nil {
			panic(err)
		}
		if res.Graph().NumEdges() == 0 {
			panic("bench: graph observer built no edges")
		}
		return res.ProbesSent
	})

	// Sharded campaign engine at 4 shards, fill mode on (mirrors
	// BenchmarkCampaignSharded/shards=4; universe construction counts
	// into wall time here, matching a cold campaign start).
	shTargets, err := beholder.NewSmallInternet(5).TargetSet("fdns_any", 64, "fixediid", 0.5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	cur["CampaignSharded4"] = measure(func() int64 {
		run := beholder.NewSmallInternet(5)
		v := run.NewVantage("campaign-bench")
		res, err := v.RunYarrp6(shTargets, beholder.YarrpOptions{
			Rate: 10000, MaxTTL: 16, Key: 99, Fill: true, Shards: 4,
		})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	})

	// Aliased-prefix detection (mirrors BenchmarkAliasDetect).
	apdIn := beholder.NewSmallInternet(9)
	truth := apdIn.AliasedGroundTruth(8)
	apdTargets, err := apdIn.TargetSet("fdns_any", 64, "fixediid", 0.3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	cands := append(beholder.AliasCandidates(apdTargets), truth...)
	cur["AliasDetect"] = measure(func() int64 {
		apdIn.Reset()
		v := apdIn.NewVantage("apd-bench")
		aliases := v.DetectAliases(cands, beholder.AliasOptions{Rate: 10000})
		return aliases.ProbesSent()
	})

	// AdaptiveVsStatic: discovery-per-probe at equal budget. The static
	// arm probes the paper's best fixed pipeline (lowbyte /64 synthesis
	// over the dnsdb seeds); the adaptive arm seeds gen6prob with the
	// same observations and lets epoch feedback re-weight its prefix
	// trie. Both are virtual-time deterministic, so the resulting ratio
	// is exact and -check can gate it tightly (unlike the throughput
	// ratios, which need alternating-round noise control).
	const advBudget = 4096
	const advTTL = 16
	advIn := beholder.NewSmallInternet(2018)
	advSeeds := advIn.SeedLists(0.15)["dnsdb"].Addrs.Addrs()
	staticTargets, err := advIn.TargetSet("dnsdb", 64, "lowbyte1", 0.15)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if len(staticTargets) > advBudget/advTTL {
		staticTargets = staticTargets[:advBudget/advTTL]
	}
	advIn.Reset()
	sres, err := advIn.NewVantageAt("adaptive-bench", "hosting", 3).RunYarrp6(staticTargets, beholder.YarrpOptions{
		Rate: 10000, MaxTTL: advTTL, Key: 0xada7,
	})
	if err != nil {
		panic(err)
	}
	advIn.Reset()
	ares, err := advIn.NewVantageAt("adaptive-bench", "hosting", 3).RunYarrp6(advSeeds, beholder.YarrpOptions{
		Rate: 10000, MaxTTL: advTTL, Key: 0xada7,
		Adaptive: &beholder.AdaptiveOptions{Budget: advBudget},
	})
	if err != nil {
		panic(err)
	}
	advYield := &AdaptiveYield{
		Budget:             advBudget,
		StaticTargets:      len(staticTargets),
		StaticProbes:       sres.ProbesSent,
		StaticInterfaces:   sres.NumInterfaces(),
		AdaptiveProbes:     ares.ProbesSent,
		AdaptiveInterfaces: ares.NumInterfaces(),
		AdaptiveEpochs:     len(ares.Epochs),
	}
	if advYield.StaticInterfaces > 0 {
		advYield.Ratio = float64(advYield.AdaptiveInterfaces) / float64(advYield.StaticInterfaces)
	}

	// Shard-scaling sweep: engine time only (universe construction is
	// per-iteration setup, excluded from the timer), so efficiency
	// ratios compare the campaign engine against itself. -check trims
	// the matrix to the cells it gates.
	sweep := make(map[string]Result)
	shardCounts := []int{1, 2, 4, 8}
	batches := []int{1, 64}
	if *check {
		shardCounts = []int{1, 4}
		batches = []int{64}
	}
	shardCell := func(shards, batch int) Result {
		var sent int64
		var allocs uint64
		r := testing.Benchmark(func(b *testing.B) {
			sent, allocs = 0, 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				run := beholder.NewSmallInternet(5)
				v := run.NewVantage("campaign-bench")
				m0 := mallocs()
				b.StartTimer()
				res, err := v.RunYarrp6(shTargets, beholder.YarrpOptions{
					Rate: 10000, MaxTTL: 16, Key: 99, Fill: true, Shards: shards, Batch: batch,
				})
				if err != nil {
					panic(err)
				}
				b.StopTimer()
				allocs += mallocs() - m0
				sent += res.ProbesSent
				b.StartTimer()
			}
		})
		return Result{
			ProbesPerSec:   float64(sent) / r.T.Seconds(),
			AllocsPerProbe: float64(allocs) / float64(sent),
			ProbesPerOp:    float64(sent) / float64(r.N),
			NsPerOp:        r.NsPerOp(),
		}
	}
	if *check {
		// Parallel efficiency is a ratio gate, and the same drift
		// argument as measureAlternating applies: two sequential
		// testing.Benchmark runs differ by more than the inefficiency
		// being gated, so measuring the 1-shard and 4-shard cells once
		// each mostly gates run order. Alternate the cells instead and
		// keep the least noise-contaminated estimate — the best matched
		// round or the per-cell best across rounds, whichever yields the
		// higher efficiency (genuine inefficiency depresses both
		// estimators; noise depresses at most one, so the max converges
		// on the true ratio from below).
		denom := float64(4)
		if ncpu := runtime.NumCPU(); ncpu < 4 {
			denom = float64(ncpu)
		}
		var pair1, pair4, best1, best4 Result
		pairEff := -1.0
		for i := 0; i < 5; i++ {
			r1, r4 := shardCell(1, 64), shardCell(4, 64)
			if r1.ProbesPerSec > 0 {
				if e := r4.ProbesPerSec / (denom * r1.ProbesPerSec); e > pairEff {
					pairEff, pair1, pair4 = e, r1, r4
				}
			}
			if r1.ProbesPerSec > best1.ProbesPerSec {
				best1 = r1
			}
			if r4.ProbesPerSec > best4.ProbesPerSec {
				best4 = r4
			}
			if pairEff >= 1 {
				break // scaling already measured as ideal; more rounds only cost time
			}
		}
		if best1.ProbesPerSec > 0 && best4.ProbesPerSec/(denom*best1.ProbesPerSec) > pairEff {
			pair1, pair4 = best1, best4
		}
		sweep["shards=1/batch=64"] = pair1
		sweep["shards=4/batch=64"] = pair4
	} else {
		for _, shards := range shardCounts {
			for _, batch := range batches {
				sweep[fmt.Sprintf("shards=%d/batch=%d", shards, batch)] = shardCell(shards, batch)
			}
		}
	}
	eff := make(map[string]float64)
	if base, ok := sweep[fmt.Sprintf("shards=1/batch=%d", batches[len(batches)-1])]; ok && base.ProbesPerSec > 0 {
		for _, shards := range shardCounts {
			if shards == 1 {
				continue
			}
			cell, ok := sweep[fmt.Sprintf("shards=%d/batch=%d", shards, batches[len(batches)-1])]
			if !ok {
				continue
			}
			denom := shards
			if ncpu := runtime.NumCPU(); denom > ncpu {
				denom = ncpu
			}
			eff[fmt.Sprintf("shards=%d", shards)] = cell.ProbesPerSec / (float64(denom) * base.ProbesPerSec)
		}
	}

	rep := Report{
		Note: "probes/s and steady-state allocs/probe for the hot-path benchmarks; shard_scaling excludes universe construction; " +
			"parallel_efficiency = probes/s(N) / (min(N, NumCPU) x probes/s(1)) — on this host NumCPU bounds the achievable scaling",
		NumCPU:             runtime.NumCPU(),
		Current:            cur,
		ShardScaling:       sweep,
		ParallelEfficiency: eff,
		AdaptiveVsStatic:   advYield,
		BaselinePR3:        baselinePR3,
		BaselinePre:        baselinePreFastpath,
		Speedup:            make(map[string]float64),
	}
	for name, b := range baselinePR3 {
		if c, ok := cur[name]; ok && b.ProbesPerSec > 0 {
			rep.Speedup[name] = c.ProbesPerSec / b.ProbesPerSec
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	os.Stdout.Write(enc)

	if *check {
		failed := false
		for name, r := range cur {
			if name == "Yarrp6Supervised" || name == "Yarrp6DrainOnly" || name == "Yarrp6PeriodicCkpt" {
				// The supervisor builds the campaign's terminal topology
				// graph (graph.FromStore) as part of its result — a
				// once-per-campaign artifact, not per-probe work — and
				// the checkpointed variant serializes snapshots on top.
				// Their allocs/probe are judged by the throughput ratio
				// gates below, not the flat per-probe bound.
				continue
			}
			if r.AllocsPerProbe > *maxAllocs {
				fmt.Fprintf(os.Stderr, "bench: %s allocs/probe %.3f exceeds bound %.3f\n", name, r.AllocsPerProbe, *maxAllocs)
				failed = true
			}
		}
		for name, r := range sweep {
			if r.AllocsPerProbe > *maxAllocs {
				fmt.Fprintf(os.Stderr, "bench: %s allocs/probe %.3f exceeds bound %.3f\n", name, r.AllocsPerProbe, *maxAllocs)
				failed = true
			}
		}
		if e, ok := eff["shards=4"]; ok && e < *minEff {
			fmt.Fprintf(os.Stderr, "bench: 4-shard parallel efficiency %.2f below bound %.2f\n", e, *minEff)
			failed = true
		}
		if off, on := cur["Yarrp6Campaign"], cur["Yarrp6Telemetry"]; off.ProbesPerSec > 0 {
			if ratio := on.ProbesPerSec / off.ProbesPerSec; ratio < *minTelem {
				fmt.Fprintf(os.Stderr, "bench: telemetry-on throughput ratio %.3f below bound %.3f\n", ratio, *minTelem)
				failed = true
			}
		}
		if off, on := cur["Yarrp6FaultOff"], cur["Yarrp6FaultIdle"]; off.ProbesPerSec > 0 {
			if ratio := on.ProbesPerSec / off.ProbesPerSec; ratio < *minFaults {
				fmt.Fprintf(os.Stderr, "bench: armed-but-idle fault-plane throughput ratio %.3f below bound %.3f\n", ratio, *minFaults)
				failed = true
			}
			if delta := on.AllocsPerProbe - off.AllocsPerProbe; delta > 0.02 {
				fmt.Fprintf(os.Stderr, "bench: armed-but-idle fault plane adds %.3f allocs/probe (bound 0.020)\n", delta)
				failed = true
			}
		}
		if bare, sup := cur["Yarrp6Bare"], cur["Yarrp6Supervised"]; bare.ProbesPerSec > 0 {
			if ratio := sup.ProbesPerSec / bare.ProbesPerSec; ratio < *minSched {
				fmt.Fprintf(os.Stderr, "bench: supervised campaign throughput ratio %.3f below bound %.3f\n", ratio, *minSched)
				failed = true
			}
		}
		if off, on := cur["Yarrp6DrainOnly"], cur["Yarrp6PeriodicCkpt"]; off.ProbesPerSec > 0 {
			if ratio := on.ProbesPerSec / off.ProbesPerSec; ratio < *minCkpt {
				fmt.Fprintf(os.Stderr, "bench: periodic-checkpoint throughput ratio %.3f below bound %.3f\n", ratio, *minCkpt)
				failed = true
			}
		}
		if advYield.Ratio < *minAdapt {
			fmt.Fprintf(os.Stderr, "bench: adaptive/static discovery ratio %.3f below bound %.3f (%d vs %d interfaces at %d probes)\n",
				advYield.Ratio, *minAdapt, advYield.AdaptiveInterfaces, advYield.StaticInterfaces, advYield.Budget)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench: allocs/probe and shard-scaling efficiency within bounds")
		return
	}
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}
