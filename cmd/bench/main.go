// Command bench measures the repository's three hot-path benchmarks —
// Yarrp6 campaign throughput, the sharded campaign engine, and
// aliased-prefix detection — and writes the results as JSON
// (BENCH_PR3.json by default): probes per wall-clock second and
// allocations per probe for each, alongside the recorded pre-fast-path
// baseline the speedup is judged against.
//
// With -check it instead enforces the zero-allocation invariant: the
// run fails if any benchmark's steady-state allocs/probe exceeds
// -max-allocs. CI runs `go run ./cmd/bench -benchtime 150ms -check` so a
// regression on the packet fast path fails the build; `make bench`
// writes the full JSON artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"beholder"
)

// baseline is the pre-PR measurement (commit c17cfec, the parallel
// campaign engine, Intel Xeon @ 2.10GHz, go1.24, -benchtime 1.5s)
// recorded before the packet fast path landed. The acceptance bar for
// the fast-path PR is ≥ 2x Yarrp6Throughput probes/s over this record.
var baseline = map[string]Result{
	"Yarrp6Throughput": {ProbesPerSec: 645821, AllocsPerProbe: 3.08},
	"CampaignSharded4": {ProbesPerSec: 838285, AllocsPerProbe: 2.04},
	"AliasDetect":      {ProbesPerSec: 787487, AllocsPerProbe: 1.46},
}

// Result is one benchmark's headline numbers.
type Result struct {
	ProbesPerSec   float64 `json:"probes_per_sec"`
	AllocsPerProbe float64 `json:"allocs_per_probe"`
	ProbesPerOp    float64 `json:"probes_per_op,omitempty"`
	NsPerOp        int64   `json:"ns_per_op,omitempty"`
}

// Report is the BENCH_PR3.json document.
type Report struct {
	Note     string             `json:"note"`
	Current  map[string]Result  `json:"current"`
	Baseline map[string]Result  `json:"baseline_pre_fastpath"`
	Speedup  map[string]float64 `json:"speedup"`
}

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measure runs fn under testing.Benchmark. fn probes the simulator and
// returns how many probes the iteration sent; allocations are counted
// around the probing work only (setup excluded by the caller keeping it
// out of fn).
func measure(fn func() int64) Result {
	var sent int64
	var allocs uint64
	r := testing.Benchmark(func(b *testing.B) {
		sent, allocs = 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m0 := mallocs()
			n := fn()
			allocs += mallocs() - m0
			sent += n
		}
	})
	probesPerOp := float64(sent) / float64(r.N)
	return Result{
		ProbesPerSec:   float64(sent) / r.T.Seconds(),
		AllocsPerProbe: float64(allocs) / float64(sent),
		ProbesPerOp:    probesPerOp,
		NsPerOp:        r.NsPerOp(),
	}
}

func main() {
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_PR3.json", "output JSON path (empty: stdout only)")
		benchtime = flag.String("benchtime", "1.5s", "per-benchmark measuring time (testing -benchtime syntax)")
		check     = flag.Bool("check", false, "enforce the allocs/probe bound instead of writing the artifact")
		maxAllocs = flag.Float64("max-allocs", 0.75, "with -check: fail when any benchmark exceeds this allocs/probe")
	)
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	cur := make(map[string]Result)

	// Yarrp6 campaign throughput: raw prober packet construction plus
	// simulator forwarding (mirrors BenchmarkYarrp6Throughput).
	thrIn := beholder.NewSmallInternet(5)
	thrTargets, err := thrIn.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	key := uint64(0)
	cur["Yarrp6Throughput"] = measure(func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{Rate: 10000, MaxTTL: 16, Key: key})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	})

	// The same campaign with the streaming topology-graph observer
	// attached (mirrors BenchmarkYarrp6GraphObserver): graph ingest must
	// stay within the fast-path allocs/probe bound, so -check gates it
	// alongside the bare run.
	cur["Yarrp6Graph"] = measure(func() int64 {
		thrIn.Reset()
		v := thrIn.NewVantage("throughput")
		key++
		res, err := v.RunYarrp6(thrTargets, beholder.YarrpOptions{Rate: 10000, MaxTTL: 16, Key: key, Graph: true})
		if err != nil {
			panic(err)
		}
		if res.Graph().NumEdges() == 0 {
			panic("bench: graph observer built no edges")
		}
		return res.ProbesSent
	})

	// Sharded campaign engine at 4 shards, fill mode on (mirrors
	// BenchmarkCampaignSharded/shards=4; universe construction counts
	// into wall time here, matching a cold campaign start).
	shTargets, err := beholder.NewSmallInternet(5).TargetSet("fdns_any", 64, "fixediid", 0.5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	cur["CampaignSharded4"] = measure(func() int64 {
		run := beholder.NewSmallInternet(5)
		v := run.NewVantage("campaign-bench")
		res, err := v.RunYarrp6(shTargets, beholder.YarrpOptions{
			Rate: 10000, MaxTTL: 16, Key: 99, Fill: true, Shards: 4,
		})
		if err != nil {
			panic(err)
		}
		return res.ProbesSent
	})

	// Aliased-prefix detection (mirrors BenchmarkAliasDetect).
	apdIn := beholder.NewSmallInternet(9)
	truth := apdIn.AliasedGroundTruth(8)
	apdTargets, err := apdIn.TargetSet("fdns_any", 64, "fixediid", 0.3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	cands := append(beholder.AliasCandidates(apdTargets), truth...)
	cur["AliasDetect"] = measure(func() int64 {
		apdIn.Reset()
		v := apdIn.NewVantage("apd-bench")
		aliases := v.DetectAliases(cands, beholder.AliasOptions{Rate: 10000})
		return aliases.ProbesSent()
	})

	rep := Report{
		Note:     "probes/s and steady-state allocs/probe for the hot-path benchmarks; baseline_pre_fastpath is the recorded pre-PR measurement on the same hardware",
		Current:  cur,
		Baseline: baseline,
		Speedup:  make(map[string]float64),
	}
	for name, b := range baseline {
		if c, ok := cur[name]; ok && b.ProbesPerSec > 0 {
			rep.Speedup[name] = c.ProbesPerSec / b.ProbesPerSec
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	os.Stdout.Write(enc)

	if *check {
		failed := false
		for name, r := range cur {
			if r.AllocsPerProbe > *maxAllocs {
				fmt.Fprintf(os.Stderr, "bench: %s allocs/probe %.3f exceeds bound %.3f\n", name, r.AllocsPerProbe, *maxAllocs)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench: allocs/probe within bound on all hot-path benchmarks")
		return
	}
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}
