// Command beholderd is the long-running campaign supervisor daemon: it
// multiplexes many tenants' Yarrp6 campaigns over one simulated
// internetwork with admission control, watchdog failover, and
// per-vantage circuit breaking, and exposes the service over HTTP:
//
//	POST /submit     submit a campaign (JSON body; see campaignReq)
//	GET  /campaigns  status of every admitted campaign
//	POST /drain      graceful shutdown: checkpoint running campaigns
//	                 into -state-dir and exit; a beholderd restarted on
//	                 the same state dir resumes them byte-identically
//	/metrics, /debug/vars, /debug/pprof/  the telemetry surface
//
// Each campaign's NDJSON result stream (lifecycle events plus
// incremental graph deltas) is appended to -state-dir as
// <tenant>__<name>.stream.ndjson while it runs.
//
// Example (two tenants, one resumable state dir):
//
//	beholderd -small -addr localhost:6464 -state-dir ./state \
//	    -tenants alice:4000:1,bob
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"beholder"
	"beholder/internal/telemetry"
)

// campaignReq is the /submit body and the drain sidecar format. Targets
// come either explicit or from the seed-generation pipeline; on resume
// the checkpoint artifact supplies them instead.
type campaignReq struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Vantage string   `json:"vantage,omitempty"` // default US-EDU-1
	Targets []string `json:"targets,omitempty"`
	// Seed-generation pipeline (used when Targets is empty).
	Seeds string  `json:"seeds,omitempty"` // default caida
	ZN    int     `json:"zn,omitempty"`    // default 64
	Synth string  `json:"synth,omitempty"` // default lowbyte1
	Scale float64 `json:"scale,omitempty"` // default 0.2
	// Probing options, as in yarrp6.
	Rate       float64 `json:"rate,omitempty"`
	MaxTTL     int     `json:"maxttl,omitempty"`
	Transport  string  `json:"transport,omitempty"`
	Fill       bool    `json:"fill,omitempty"`
	Key        uint64  `json:"key,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

// daemon ties the scheduler to the HTTP surface and the state dir.
type daemon struct {
	in       *beholder.Internet
	sch      *beholder.Scheduler
	stateDir string

	mu       sync.Mutex
	vantages map[string]*beholder.Vantage
}

func main() {
	var (
		simSeed  = flag.Int64("sim-seed", 2018, "simulated internetwork seed")
		small    = flag.Bool("small", false, "use the small universe")
		addr     = flag.String("addr", "localhost:6464", "HTTP listen address")
		workers  = flag.Int("workers", 4, "campaigns run concurrently")
		queue    = flag.Int("queue", 32, "admission queue limit")
		tenants  = flag.String("tenants", "default", "comma-separated tenants, each name[:rate-budget[:priority]]")
		stateDir = flag.String("state-dir", "beholderd-state", "directory for result streams and drain checkpoints")
		stall    = flag.Duration("stall-budget", 2*time.Second, "watchdog stall budget before failover")
		retries  = flag.Int("retries", 2, "watchdog failover budget per campaign")
	)
	flag.Parse()

	tl, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*stateDir, 0o755); err != nil {
		fatal(err)
	}
	var in *beholder.Internet
	if *small {
		in = beholder.NewSmallInternet(*simSeed)
	} else {
		in = beholder.NewInternet(*simSeed)
	}
	reg := beholder.NewTelemetry()
	sch, err := in.NewScheduler(beholder.SchedulerOptions{
		Tenants: tl, Workers: *workers, QueueLimit: *queue,
		StallBudget: *stall, MaxRetries: *retries, Telemetry: reg,
	})
	if err != nil {
		fatal(err)
	}
	d := &daemon{in: in, sch: sch, stateDir: *stateDir, vantages: map[string]*beholder.Vantage{}}

	// A restarted daemon first consumes the previous generation's drain
	// state: every sidecar (with its artifact, when one exists) is
	// resubmitted before the HTTP surface opens.
	resumed, err := d.recoverState()
	if err != nil {
		fatal(err)
	}
	if resumed > 0 {
		fmt.Fprintf(os.Stderr, "beholderd: resumed %d drained campaign(s) from %s\n", resumed, *stateDir)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/submit", d.handleSubmit)
	mux.HandleFunc("/campaigns", d.handleCampaigns)
	mux.HandleFunc("/drain", d.handleDrain)
	mux.Handle("/", telemetry.Handler(reg))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "beholderd: %d tenant(s), %d worker(s), serving on http://%s\n", len(tl), *workers, ln.Addr())
	fatal((&http.Server{Handler: mux}).Serve(ln))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beholderd:", err)
	os.Exit(1)
}

// parseTenants decodes the -tenants flag: name[:rate-budget[:priority]].
func parseTenants(s string) ([]beholder.Tenant, error) {
	var out []beholder.Tenant
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if fields[0] == "" {
			return nil, fmt.Errorf("empty tenant name in -tenants %q", s)
		}
		t := beholder.Tenant{Name: fields[0]}
		if len(fields) > 1 && fields[1] != "" {
			b, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %s: bad rate budget %q", t.Name, fields[1])
			}
			t.RateBudget = b
		}
		if len(fields) > 2 {
			p, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("tenant %s: bad priority %q", t.Name, fields[2])
			}
			t.Priority = p
		}
		out = append(out, t)
	}
	return out, nil
}

// submit admits one campaign, streaming its NDJSON events to the state
// dir; resume, when non-nil, continues from a drain artifact.
func (d *daemon) submit(req campaignReq, resume []byte) (*beholder.CampaignHandle, error) {
	if req.Tenant == "" || req.Name == "" {
		return nil, errors.New("tenant and name are required")
	}
	vname := req.Vantage
	if vname == "" {
		vname = "US-EDU-1"
	}
	d.mu.Lock()
	v := d.vantages[vname]
	if v == nil {
		v = d.in.NewVantage(vname)
		d.vantages[vname] = v
	}
	d.mu.Unlock()

	var targets []netip.Addr
	if resume == nil {
		if len(req.Targets) > 0 {
			for _, s := range req.Targets {
				a, err := netip.ParseAddr(s)
				if err != nil {
					return nil, fmt.Errorf("bad target %q: %w", s, err)
				}
				targets = append(targets, a)
			}
		} else {
			seeds, zn, synth, scale := req.Seeds, req.ZN, req.Synth, req.Scale
			if seeds == "" {
				seeds = "caida"
			}
			if zn == 0 {
				zn = 64
			}
			if synth == "" {
				synth = "lowbyte1"
			}
			if scale == 0 {
				scale = 0.2
			}
			var err error
			targets, err = d.in.TargetSet(seeds, zn, synth, scale)
			if err != nil {
				return nil, err
			}
		}
	}
	sp := d.streamPath(req.Tenant, req.Name)
	_, statErr := os.Stat(sp)
	stream, err := os.OpenFile(sp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	h, err := d.sch.Submit(v, targets, beholder.SubmitOptions{
		Tenant: req.Tenant, Name: req.Name,
		Rate: req.Rate, MaxTTL: req.MaxTTL, Transport: req.Transport,
		Fill: req.Fill, Key: req.Key, Shards: req.Shards, Batch: req.Batch,
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
		Stream:   stream, Resume: resume,
	})
	if err != nil {
		stream.Close()
		if statErr != nil {
			os.Remove(sp) // rejected before any event: drop the empty file
		}
		return nil, err
	}
	// The stream file lives as long as the campaign; close it once the
	// terminal event is written.
	go func() {
		<-h.Done()
		stream.Close()
	}()
	return h, nil
}

func (d *daemon) base(tenant, name string) string {
	return filepath.Join(d.stateDir, tenant+"__"+name)
}
func (d *daemon) streamPath(tenant, name string) string {
	return d.base(tenant, name) + ".stream.ndjson"
}
func (d *daemon) sidecarPath(tenant, name string) string  { return d.base(tenant, name) + ".spec.json" }
func (d *daemon) artifactPath(tenant, name string) string { return d.base(tenant, name) + ".ckpt" }

// recoverState resubmits every campaign the previous generation drained
// into the state dir, consuming the sidecars and artifacts.
func (d *daemon) recoverState() (int, error) {
	sidecars, err := filepath.Glob(filepath.Join(d.stateDir, "*.spec.json"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sc := range sidecars {
		data, err := os.ReadFile(sc)
		if err != nil {
			return n, err
		}
		var req campaignReq
		if err := json.Unmarshal(data, &req); err != nil {
			return n, fmt.Errorf("%s: %w", sc, err)
		}
		var art []byte
		ap := d.artifactPath(req.Tenant, req.Name)
		if b, err := os.ReadFile(ap); err == nil {
			art = b
		}
		if _, err := d.submit(req, art); err != nil {
			return n, fmt.Errorf("resume %s/%s: %w", req.Tenant, req.Name, err)
		}
		os.Remove(sc)
		os.Remove(ap)
		n++
	}
	return n, nil
}

func (d *daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req campaignReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := d.submit(req, nil); err != nil {
		http.Error(w, err.Error(), submitStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{
		"status": "queued", "tenant": req.Tenant, "campaign": req.Name,
		"stream": d.streamPath(req.Tenant, req.Name),
	})
}

// submitStatus maps the scheduler's typed rejections onto HTTP codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, beholder.ErrQueueFull), errors.Is(err, beholder.ErrRateBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, beholder.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, beholder.ErrDraining), errors.Is(err, beholder.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, beholder.ErrUnknownTenant):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

func (d *daemon) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	type line struct {
		Tenant   string `json:"tenant"`
		Campaign string `json:"campaign"`
		Vantage  string `json:"vantage"`
		State    string `json:"state"`
		Reason   string `json:"reason,omitempty"`
		Retries  int    `json:"retries,omitempty"`
		Breaker  string `json:"breaker"`
	}
	var out []line
	for _, cs := range d.sch.Status() {
		out = append(out, line{
			Tenant: cs.Tenant, Campaign: cs.Campaign, Vantage: cs.Vantage,
			State: cs.State.String(), Reason: cs.Reason, Retries: cs.Retries,
			Breaker: d.sch.BreakerState(cs.Vantage),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleDrain checkpoints every campaign into the state dir, reports
// what survived, and exits: the drain is terminal for the supervisor,
// so the process follows it. A restarted beholderd on the same state
// dir resumes every drained campaign byte-identically.
func (d *daemon) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
	defer cancel()
	drained, err := d.sch.Drain(ctx)
	if err != nil && !errors.Is(err, beholder.ErrDraining) {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var saved []string
	for _, dc := range drained {
		req := campaignReq{
			Tenant: dc.Spec.Tenant, Name: dc.Spec.Name, Vantage: dc.Spec.Vantage,
			Rate: dc.Spec.Rate, MaxTTL: int(dc.Spec.MaxTTL), Fill: dc.Spec.Fill,
			Key: dc.Spec.Key, Shards: dc.Spec.Shards, Batch: dc.Spec.Batch,
			DeadlineMS: dc.Spec.Deadline.Milliseconds(),
		}
		if dc.Artifact == nil {
			// Never started: the sidecar must carry the target set the
			// artifact would otherwise pin.
			for _, a := range dc.Spec.Targets {
				req.Targets = append(req.Targets, a.String())
			}
		} else if err := os.WriteFile(d.artifactPath(req.Tenant, req.Name), dc.Artifact, 0o644); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sc, err := json.MarshalIndent(req, "", "  ")
		if err == nil {
			err = os.WriteFile(d.sidecarPath(req.Tenant, req.Name), sc, 0o644)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		saved = append(saved, req.Tenant+"/"+req.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"drained": saved, "state_dir": d.stateDir})
	fmt.Fprintf(os.Stderr, "beholderd: drained %d campaign(s) to %s; exiting\n", len(saved), d.stateDir)
	go func() {
		time.Sleep(200 * time.Millisecond) // let the response flush
		os.Exit(0)
	}()
}
