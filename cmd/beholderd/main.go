// Command beholderd is the long-running campaign supervisor daemon: it
// multiplexes many tenants' Yarrp6 campaigns over one simulated
// internetwork with admission control, watchdog failover, and
// per-vantage circuit breaking, and exposes the service over HTTP:
//
//	POST /submit     submit a campaign (JSON body; see campaignReq)
//	GET  /campaigns  status of every admitted campaign
//	POST /drain      graceful shutdown: checkpoint running campaigns
//	                 into -state-dir and exit; a beholderd restarted on
//	                 the same state dir resumes them byte-identically
//	/metrics, /debug/vars, /debug/pprof/  the telemetry surface
//
// All durable state lives in a crash-safe store (internal/store)
// under -state-dir: campaign specs are persisted at admission with
// their resolved target sets, running campaigns are checkpointed
// every -checkpoint-every of wall time, and final result stores are
// persisted at completion — all through an atomic
// temp/fsync/rename/dir-fsync protocol journaled in a CRC-framed
// manifest. A beholderd killed with SIGKILL at any instant restarts
// on the same state dir, quarantines anything torn into
// -state-dir/corrupt/, and resumes every campaign from its last
// snapshot; results remain byte-identical to an uninterrupted run.
// SIGTERM and SIGINT trigger the same graceful drain as POST /drain.
//
// Each campaign's NDJSON result stream (lifecycle events plus
// incremental graph deltas) is appended to -state-dir as
// <tenant>__<name>.stream.ndjson while it runs; streams are
// append-only logs outside the store's atomicity domain.
//
// Example (two tenants, one resumable state dir):
//
//	beholderd -small -addr localhost:6464 -state-dir ./state \
//	    -tenants alice:4000:1,bob
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"beholder"
	"beholder/internal/core"
	"beholder/internal/probe"
	"beholder/internal/store"
	"beholder/internal/telemetry"
)

// Blob kinds in the durable store, all keyed <tenant>__<name>:
// the admission-time spec (with resolved targets), the latest
// checkpoint artifact, the final merged probe store, and the terminal
// state record.
const (
	kindSpec  = "spec"
	kindCkpt  = "ckpt"
	kindStore = "store"
	kindDone  = "done"
)

// campaignReq is the /submit body and the persisted spec format.
// Targets come either explicit or from the seed-generation pipeline;
// the persisted copy always pins the resolved target list so recovery
// never depends on generation flags.
type campaignReq struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Vantage string   `json:"vantage,omitempty"` // default US-EDU-1
	Targets []string `json:"targets,omitempty"`
	// Seed-generation pipeline (used when Targets is empty).
	Seeds string  `json:"seeds,omitempty"` // default caida
	ZN    int     `json:"zn,omitempty"`    // default 64
	Synth string  `json:"synth,omitempty"` // default lowbyte1
	Scale float64 `json:"scale,omitempty"` // default 0.2
	// Probing options, as in yarrp6.
	Rate       float64 `json:"rate,omitempty"`
	MaxTTL     int     `json:"maxttl,omitempty"`
	Transport  string  `json:"transport,omitempty"`
	Fill       bool    `json:"fill,omitempty"`
	Key        uint64  `json:"key,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

// doneRec is the persisted terminal-state record (kindDone).
type doneRec struct {
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
	Retries int    `json:"retries,omitempty"`
}

// retainedLine is a terminal campaign recovered from the store: it is
// reported in /campaigns but not resubmitted.
type retainedLine struct {
	Tenant   string
	Campaign string
	Vantage  string
	State    string
	Reason   string
}

// daemon ties the scheduler to the HTTP surface and the durable store.
type daemon struct {
	in       *beholder.Internet
	sch      *beholder.Scheduler
	st       *store.Store
	stateDir string

	mu       sync.Mutex
	vantages map[string]*beholder.Vantage
	retained []retainedLine

	// streams tracks every live campaign's stream-closer goroutine so
	// the ordered shutdown can wait for the final events to be
	// flushed and the files closed.
	streams sync.WaitGroup
	// done is closed exactly once when a drain finished and the
	// process should shut down.
	done     chan struct{}
	doneOnce sync.Once
}

func main() {
	var (
		simSeed   = flag.Int64("sim-seed", 2018, "simulated internetwork seed")
		small     = flag.Bool("small", false, "use the small universe")
		addr      = flag.String("addr", "localhost:6464", "HTTP listen address")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers   = flag.Int("workers", 4, "campaigns run concurrently")
		queue     = flag.Int("queue", 32, "admission queue limit")
		tenants   = flag.String("tenants", "default", "comma-separated tenants, each name[:rate-budget[:priority]]")
		stateDir  = flag.String("state-dir", "beholderd-state", "directory for the durable store and result streams")
		stall     = flag.Duration("stall-budget", 2*time.Second, "watchdog stall budget before failover")
		retries   = flag.Int("retries", 2, "watchdog failover budget per campaign")
		ckptEvery = flag.Duration("checkpoint-every", 5*time.Second, "periodic checkpoint interval for running campaigns (0 = drain-only)")
		sendDelay = flag.Duration("send-delay", 0, "wall-delay every send batch (testing/ops throttle; results unchanged)")
	)
	flag.Parse()

	tl, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	var in *beholder.Internet
	if *small {
		in = beholder.NewSmallInternet(*simSeed)
	} else {
		in = beholder.NewInternet(*simSeed)
	}
	reg := beholder.NewTelemetry()

	st, err := store.Open(store.Config{
		Dir: *stateDir,
		Validate: map[string]func([]byte) error{
			kindSpec: func(b []byte) error {
				var req campaignReq
				if err := json.Unmarshal(b, &req); err != nil {
					return err
				}
				if req.Tenant == "" || req.Name == "" {
					return errors.New("spec missing tenant or name")
				}
				return nil
			},
			kindCkpt: func(b []byte) error {
				_, err := core.InspectCheckpoint(b)
				return err
			},
			kindStore: func(b []byte) error {
				_, err := probe.DecodeStore(b)
				return err
			},
			kindDone: func(b []byte) error {
				var rec doneRec
				if err := json.Unmarshal(b, &rec); err != nil {
					return err
				}
				if rec.State == "" {
					return errors.New("done record missing state")
				}
				return nil
			},
		},
		KeepSuffixes: []string{".stream.ndjson"},
		Telemetry:    reg,
	})
	if err != nil {
		fatal(err)
	}
	scrubBanner(st.Report(), *stateDir)

	sch, err := in.NewScheduler(beholder.SchedulerOptions{
		Tenants: tl, Workers: *workers, QueueLimit: *queue,
		StallBudget: *stall, MaxRetries: *retries,
		CheckpointEvery: *ckptEvery,
		CheckpointSink: func(tenant, name string, artifact []byte) error {
			return st.Put(storeKey(tenant, name), kindCkpt, artifact)
		},
		SendDelay: *sendDelay,
		Telemetry: reg,
	})
	if err != nil {
		fatal(err)
	}
	d := &daemon{
		in: in, sch: sch, st: st, stateDir: *stateDir,
		vantages: map[string]*beholder.Vantage{},
		done:     make(chan struct{}),
	}

	// A restarted daemon first consumes the previous generation's
	// state: terminal campaigns are retained as records, everything
	// else is resubmitted (resuming from its last checkpoint when one
	// exists) before the HTTP surface opens. A bad entry is
	// quarantined and skipped, never fatal.
	resumed, retained, failed := d.recoverState()
	if resumed+retained+failed > 0 {
		fmt.Fprintf(os.Stderr, "beholderd: recovery from %s: %d resumed, %d already terminal, %d quarantined\n",
			*stateDir, resumed, retained, failed)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/submit", d.handleSubmit)
	mux.HandleFunc("/campaigns", d.handleCampaigns)
	mux.HandleFunc("/drain", d.handleDrain)
	mux.Handle("/", telemetry.Handler(reg))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "beholderd: %d tenant(s), %d worker(s), serving on http://%s\n", len(tl), *workers, ln.Addr())

	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// SIGTERM/SIGINT get the same graceful drain as POST /drain, so
	// orchestrators checkpoint-on-stop for free.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "beholderd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		saved, err := d.drainToStore(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "beholderd: drain: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "beholderd: drained %d campaign(s) to %s\n", len(saved), d.stateDir)
		d.shutdown()
	case <-d.done:
	}

	// Ordered shutdown: every stream file flushed and closed, the
	// HTTP server drained (which also flushes the in-flight drain
	// response), then the store's journal closed. Only then exit.
	d.streams.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "beholderd: store close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "beholderd: state flushed; exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "beholderd:", err)
	os.Exit(1)
}

// shutdown signals main to run the ordered shutdown; safe to call from
// any goroutine, any number of times.
func (d *daemon) shutdown() {
	d.doneOnce.Do(func() { close(d.done) })
}

// scrubBanner reports what the store's recovery scrub found.
func scrubBanner(rep store.ScrubReport, dir string) {
	if rep.Clean() {
		return
	}
	fmt.Fprintf(os.Stderr, "beholderd: store scrub of %s: %d live entries, %d quarantined, %d missing, %d stale removed, %d temp removed, %d journal bytes truncated\n",
		dir, rep.Entries, len(rep.Quarantined), len(rep.Missing), rep.StaleRemoved, rep.TmpRemoved, rep.JournalTruncated)
	for _, q := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "beholderd:   quarantined %s: %s\n", filepath.Join(dir, "corrupt", q.File), q.Reason)
	}
	for _, m := range rep.Missing {
		fmt.Fprintf(os.Stderr, "beholderd:   missing blob for %s.%s (entry dropped)\n", m.Key, m.Kind)
	}
}

// storeKey is the durable-store key for a campaign. Tenant and
// campaign names are restricted to the store-safe alphabet at
// admission, so the "__" join is unambiguous enough for display and
// collision-free on disk.
func storeKey(tenant, name string) string { return tenant + "__" + name }

// validIdent restricts tenant and campaign names to the durable
// store's key alphabet.
func validIdent(s string) error {
	if s == "" {
		return errors.New("empty name")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
		case r == '_':
		default:
			return fmt.Errorf("invalid character %q (allowed: letters, digits, _, -)", r)
		}
	}
	return nil
}

// parseTenants decodes the -tenants flag: name[:rate-budget[:priority]].
// Duplicate names are rejected — silently registering both would split
// one tenant's rate budget into two ledgers.
func parseTenants(s string) ([]beholder.Tenant, error) {
	var out []beholder.Tenant
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if fields[0] == "" {
			return nil, fmt.Errorf("empty tenant name in -tenants %q", s)
		}
		if err := validIdent(fields[0]); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", fields[0], err)
		}
		if seen[fields[0]] {
			return nil, fmt.Errorf("duplicate tenant %q in -tenants %q", fields[0], s)
		}
		seen[fields[0]] = true
		t := beholder.Tenant{Name: fields[0]}
		if len(fields) > 1 && fields[1] != "" {
			b, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %s: bad rate budget %q", t.Name, fields[1])
			}
			t.RateBudget = b
		}
		if len(fields) > 2 {
			p, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("tenant %s: bad priority %q", t.Name, fields[2])
			}
			t.Priority = p
		}
		out = append(out, t)
	}
	return out, nil
}

// submit admits one campaign, streaming its NDJSON events to the state
// dir. resume, when non-nil, continues from a checkpoint artifact.
// persistSpec records the spec (with resolved targets) in the durable
// store — true for fresh API submissions, false during recovery where
// the spec is already durable.
func (d *daemon) submit(req campaignReq, resume []byte, persistSpec bool) (*beholder.CampaignHandle, error) {
	if err := validIdent(req.Tenant); err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	if err := validIdent(req.Name); err != nil {
		return nil, fmt.Errorf("name: %w", err)
	}
	vname := req.Vantage
	if vname == "" {
		vname = "US-EDU-1"
	}
	d.mu.Lock()
	v := d.vantages[vname]
	if v == nil {
		v = d.in.NewVantage(vname)
		d.vantages[vname] = v
	}
	d.mu.Unlock()

	var targets []netip.Addr
	if resume == nil {
		if len(req.Targets) > 0 {
			for _, s := range req.Targets {
				a, err := netip.ParseAddr(s)
				if err != nil {
					return nil, fmt.Errorf("bad target %q: %w", s, err)
				}
				targets = append(targets, a)
			}
		} else {
			seeds, zn, synth, scale := req.Seeds, req.ZN, req.Synth, req.Scale
			if seeds == "" {
				seeds = "caida"
			}
			if zn == 0 {
				zn = 64
			}
			if synth == "" {
				synth = "lowbyte1"
			}
			if scale == 0 {
				scale = 0.2
			}
			var err error
			targets, err = d.in.TargetSet(seeds, zn, synth, scale)
			if err != nil {
				return nil, err
			}
		}
	}
	sp := d.streamPath(req.Tenant, req.Name)
	_, statErr := os.Stat(sp)
	stream, err := os.OpenFile(sp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	h, err := d.sch.Submit(v, targets, beholder.SubmitOptions{
		Tenant: req.Tenant, Name: req.Name,
		Rate: req.Rate, MaxTTL: req.MaxTTL, Transport: req.Transport,
		Fill: req.Fill, Key: req.Key, Shards: req.Shards, Batch: req.Batch,
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
		Stream:   stream, Resume: resume,
	})
	if err != nil {
		stream.Close()
		if statErr != nil {
			os.Remove(sp) // rejected before any event: drop the empty file
		}
		return nil, err
	}
	key := storeKey(req.Tenant, req.Name)
	if persistSpec {
		// Pin the resolved target list so recovery never re-runs the
		// generation pipeline (whose flags may have changed by then).
		pinned := req
		pinned.Targets = pinned.Targets[:0:0]
		for _, a := range targets {
			pinned.Targets = append(pinned.Targets, a.String())
		}
		pinned.Seeds, pinned.ZN, pinned.Synth, pinned.Scale = "", 0, "", 0
		sc, merr := json.MarshalIndent(pinned, "", "  ")
		if merr == nil {
			merr = d.st.Put(key, kindSpec, sc)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "beholderd: persist spec %s: %v\n", key, merr)
		}
		// A fresh run supersedes any previous terminal record under
		// the same name.
		d.st.Delete(key, kindDone)
		d.st.Delete(key, kindStore)
		d.dropRetained(req.Tenant, req.Name)
	}
	// The stream file lives as long as the campaign: once the terminal
	// event is written, persist the terminal state and flush+close the
	// stream. The WaitGroup gates the ordered shutdown.
	d.streams.Add(1)
	go func() {
		defer d.streams.Done()
		<-h.Done()
		d.persistTerminal(req, h.Result())
		stream.Sync()
		stream.Close()
	}()
	return h, nil
}

// persistTerminal records a campaign's terminal outcome in the store:
// the final probe store for completed runs, a done record for
// completed and incomplete ones, and in both cases the now-obsolete
// checkpoint is dropped. Drained campaigns keep their checkpoint — the
// drain path just wrote it — and their spec, for the next generation
// to resume.
func (d *daemon) persistTerminal(req campaignReq, res *beholder.CampaignResult) {
	if res == nil {
		return
	}
	key := storeKey(req.Tenant, req.Name)
	switch res.State {
	case beholder.CampaignCompleted, beholder.CampaignIncomplete:
		if res.State == beholder.CampaignCompleted && res.Store != nil {
			if err := d.st.Put(key, kindStore, res.Store.AppendBinary(nil)); err != nil {
				fmt.Fprintf(os.Stderr, "beholderd: persist store %s: %v\n", key, err)
			}
		}
		rec, _ := json.Marshal(doneRec{State: res.State.String(), Reason: res.Reason, Retries: res.Retries})
		if err := d.st.Put(key, kindDone, rec); err != nil {
			fmt.Fprintf(os.Stderr, "beholderd: persist done %s: %v\n", key, err)
		}
		d.st.Delete(key, kindCkpt)
	}
}

func (d *daemon) dropRetained(tenant, name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, r := range d.retained {
		if r.Tenant == tenant && r.Campaign == name {
			d.retained = append(d.retained[:i], d.retained[i+1:]...)
			return
		}
	}
}

func (d *daemon) streamPath(tenant, name string) string {
	return filepath.Join(d.stateDir, storeKey(tenant, name)+".stream.ndjson")
}

// recoverState replays the durable store: terminal campaigns become
// retained records, everything else is resubmitted, resuming from the
// latest checkpoint when one survives. Any entry that fails
// domain-level validation is quarantined and skipped — one bad blob
// never blocks the rest.
func (d *daemon) recoverState() (resumed, retained, failed int) {
	byKey := make(map[string]map[string]store.Entry)
	for _, e := range d.st.List() {
		if byKey[e.Key] == nil {
			byKey[e.Key] = make(map[string]store.Entry)
		}
		byKey[e.Key][e.Kind] = e
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		kinds := byKey[key]
		var req campaignReq
		haveSpec := false
		if _, ok := kinds[kindSpec]; ok {
			data, err := d.st.Get(key, kindSpec)
			if err == nil {
				err = json.Unmarshal(data, &req)
			}
			if err != nil {
				d.quarantine(key, kindSpec, fmt.Sprintf("unusable spec: %v", err))
				failed++
			} else {
				haveSpec = true
			}
		}

		if _, ok := kinds[kindDone]; ok {
			var rec doneRec
			data, err := d.st.Get(key, kindDone)
			if err == nil {
				err = json.Unmarshal(data, &rec)
			}
			if err == nil && rec.State != "" {
				tenant, name := req.Tenant, req.Name
				if !haveSpec {
					tenant, name = splitKey(key)
				}
				vn := req.Vantage
				if vn == "" {
					vn = "US-EDU-1"
				}
				d.mu.Lock()
				d.retained = append(d.retained, retainedLine{
					Tenant: tenant, Campaign: name, Vantage: vn,
					State: rec.State, Reason: rec.Reason,
				})
				d.mu.Unlock()
				// A leftover checkpoint under a terminal campaign is
				// the remnant of a crash between the done record and
				// the checkpoint delete.
				d.st.Delete(key, kindCkpt)
				retained++
				continue
			}
			d.quarantine(key, kindDone, fmt.Sprintf("unusable done record: %v", err))
			failed++
		}

		if !haveSpec {
			// Nothing to resubmit from; put whatever is left aside.
			for kind := range kinds {
				if kind != kindSpec && kind != kindDone {
					d.quarantine(key, kind, "no usable spec for campaign")
				}
			}
			if len(kinds) > 0 {
				failed++
			}
			continue
		}

		var art []byte
		if _, ok := kinds[kindCkpt]; ok {
			b, err := d.st.Get(key, kindCkpt)
			if err != nil {
				d.quarantine(key, kindCkpt, fmt.Sprintf("unreadable checkpoint: %v", err))
				failed++
			} else {
				art = b
			}
		}
		if _, err := d.submit(req, art, false); err != nil {
			if art != nil {
				// The artifact may be the bad half; quarantine it and
				// degrade to a fresh run from the pinned spec — better
				// a restarted campaign than a lost one.
				d.quarantine(key, kindCkpt, fmt.Sprintf("resume rejected: %v", err))
				failed++
				if _, err2 := d.submit(req, nil, false); err2 == nil {
					resumed++
					continue
				}
			}
			d.quarantine(key, kindSpec, fmt.Sprintf("resubmit rejected: %v", err))
			failed++
			continue
		}
		resumed++
	}
	return resumed, retained, failed
}

func (d *daemon) quarantine(key, kind, reason string) {
	fmt.Fprintf(os.Stderr, "beholderd: quarantining %s.%s: %s\n", key, kind, reason)
	if err := d.st.Quarantine(key, kind, reason); err != nil {
		fmt.Fprintf(os.Stderr, "beholderd: quarantine %s.%s: %v\n", key, kind, err)
	}
}

// splitKey best-effort inverts storeKey for display when no spec
// survives to say the real names.
func splitKey(key string) (tenant, name string) {
	if i := strings.Index(key, "__"); i >= 0 {
		return key[:i], key[i+2:]
	}
	return key, key
}

func (d *daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req campaignReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := d.submit(req, nil, true); err != nil {
		http.Error(w, err.Error(), submitStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{
		"status": "queued", "tenant": req.Tenant, "campaign": req.Name,
		"stream": d.streamPath(req.Tenant, req.Name),
	})
}

// submitStatus maps the scheduler's typed rejections onto HTTP codes.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, beholder.ErrQueueFull), errors.Is(err, beholder.ErrRateBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, beholder.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, beholder.ErrDraining), errors.Is(err, beholder.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, beholder.ErrUnknownTenant):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

func (d *daemon) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	type line struct {
		Tenant   string `json:"tenant"`
		Campaign string `json:"campaign"`
		Vantage  string `json:"vantage"`
		State    string `json:"state"`
		Reason   string `json:"reason,omitempty"`
		Retries  int    `json:"retries,omitempty"`
		Breaker  string `json:"breaker"`
	}
	var out []line
	d.mu.Lock()
	for _, rl := range d.retained {
		out = append(out, line{
			Tenant: rl.Tenant, Campaign: rl.Campaign, Vantage: rl.Vantage,
			State: rl.State, Reason: rl.Reason,
			Breaker: d.sch.BreakerState(rl.Vantage),
		})
	}
	d.mu.Unlock()
	for _, cs := range d.sch.Status() {
		out = append(out, line{
			Tenant: cs.Tenant, Campaign: cs.Campaign, Vantage: cs.Vantage,
			State: cs.State.String(), Reason: cs.Reason, Retries: cs.Retries,
			Breaker: d.sch.BreakerState(cs.Vantage),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// drainToStore checkpoints every running campaign's artifact into the
// durable store. Queued campaigns need nothing: their specs (with
// pinned targets) were persisted at admission.
func (d *daemon) drainToStore(ctx context.Context) ([]string, error) {
	drained, err := d.sch.Drain(ctx)
	if err != nil && !errors.Is(err, beholder.ErrDraining) {
		return nil, err
	}
	var saved []string
	for _, dc := range drained {
		if dc.Artifact != nil {
			key := storeKey(dc.Spec.Tenant, dc.Spec.Name)
			if err := d.st.Put(key, kindCkpt, dc.Artifact); err != nil {
				return saved, err
			}
		}
		saved = append(saved, dc.Spec.Tenant+"/"+dc.Spec.Name)
	}
	return saved, nil
}

// handleDrain checkpoints every campaign into the durable store,
// reports what survived, and triggers the ordered shutdown: stream
// files are flushed and closed, the HTTP server is shut down (which
// flushes this response), the store journal is closed, and only then
// does the process exit. A restarted beholderd on the same state dir
// resumes every drained campaign byte-identically.
func (d *daemon) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
	defer cancel()
	saved, err := d.drainToStore(ctx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"drained": saved, "state_dir": d.stateDir})
	fmt.Fprintf(os.Stderr, "beholderd: drained %d campaign(s) to %s\n", len(saved), d.stateDir)
	d.shutdown()
}
