package main

// Process-level crash-injection soak for beholderd. The test binary
// re-executes itself as the real daemon (TestMain), and the harness
// SIGKILLs it at randomized wall-clock points — mid-run,
// mid-periodic-checkpoint, mid-drain — then restarts it on the same
// state dir. Every campaign must come back and finish with a final
// store byte-equal to its solo fault-free run; the durable store must
// never fail a startup, whatever instant the kill landed on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"beholder"
	"beholder/internal/store"
	"beholder/internal/testutil"
)

func TestMain(m *testing.M) {
	if os.Getenv("BEHOLDERD_CRASHSOAK_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const (
	soakSeed    = 2018
	soakVantage = "US-EDU-1"
)

// soakClient disables keep-alives so no idle-connection goroutines park
// in a shared transport pool and trip the leak checker.
var soakClient = &http.Client{
	Timeout:   90 * time.Second,
	Transport: &http.Transport{DisableKeepAlives: true},
}

// soakCampaigns is the shared multi-tenant campaign set: wall-slowed
// by the daemon's -send-delay so kills land mid-flight, but with
// identical virtual-time results to an unthrottled run.
func soakCampaigns(t *testing.T) []campaignReq {
	t.Helper()
	in := beholder.NewSmallInternet(soakSeed)
	all, err := in.TargetSet("caida", 64, "lowbyte1", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 36 {
		t.Fatalf("only %d targets from the small universe", len(all))
	}
	per := len(all) / 3
	if per > 36 {
		per = 36
	}
	slice := func(i int) []string {
		var out []string
		for _, a := range all[i*per : (i+1)*per] {
			out = append(out, a.String())
		}
		return out
	}
	reqs := []campaignReq{
		{Tenant: "alice", Name: "c1", Targets: slice(0), Rate: 800, MaxTTL: 10, Fill: true, Key: 21, Shards: 2, Batch: 1},
		{Tenant: "alice", Name: "c2", Targets: slice(1), Rate: 600, MaxTTL: 12, Fill: true, Key: 22, Shards: 2, Batch: 1},
		{Tenant: "bob", Name: "c3", Targets: slice(2), Rate: 1000, MaxTTL: 8, Fill: true, Key: 23, Shards: 3, Batch: 1},
	}
	return reqs
}

// soloStoreBytes runs one campaign supervised but fault-free and
// unthrottled on a fresh identically-seeded universe and returns the
// final store's canonical encoding. The daemon's crash-riddled run
// must reproduce these exact bytes.
func soloStoreBytes(t *testing.T, req campaignReq) []byte {
	t.Helper()
	in := beholder.NewSmallInternet(soakSeed)
	sch, err := in.NewScheduler(beholder.SchedulerOptions{
		Tenants: []beholder.Tenant{{Name: req.Tenant}},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var targets []netip.Addr
	for _, s := range req.Targets {
		targets = append(targets, netip.MustParseAddr(s))
	}
	h, err := sch.Submit(in.NewVantage(soakVantage), targets, beholder.SubmitOptions{
		Tenant: req.Tenant, Name: req.Name,
		Rate: req.Rate, MaxTTL: req.MaxTTL, Transport: req.Transport,
		Fill: req.Fill, Key: req.Key, Shards: req.Shards, Batch: req.Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.State != beholder.CampaignCompleted {
		t.Fatalf("solo %s/%s: state %v (%s)", req.Tenant, req.Name, res.State, res.Reason)
	}
	if _, err := sch.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	return res.Store.AppendBinary(nil)
}

// daemonProc is one live beholderd subprocess.
type daemonProc struct {
	t      *testing.T
	cmd    *exec.Cmd
	addr   string
	stderr string // file capturing the daemon's stderr
}

// startDaemon spawns a real beholderd on stateDir and waits for it to
// come up. Any startup failure is fatal — the crash soak demands zero
// of them.
func startDaemon(t *testing.T, stateDir string, extraArgs ...string) *daemonProc {
	t.Helper()
	scratch := t.TempDir()
	addrFile := filepath.Join(scratch, "addr")
	stderrPath := filepath.Join(scratch, "stderr.log")
	args := []string{
		"-small", "-sim-seed", strconv.Itoa(soakSeed),
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-state-dir", stateDir,
		"-tenants", "alice,bob",
		"-workers", "3",
		"-stall-budget", "30s",
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BEHOLDERD_CRASHSOAK_CHILD=1")
	errf, err := os.Create(stderrPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = errf
	cmd.Stdout = errf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	errf.Close() // the child holds its own descriptor
	p := &daemonProc{t: t, cmd: cmd, stderr: stderrPath}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			p.addr = string(bytes.TrimSpace(b))
			return p
		}
		if time.Now().After(deadline) {
			p.dumpStderr()
			t.Fatal("daemon failed to start (no addr file)")
		}
		if p.cmd.ProcessState != nil {
			p.dumpStderr()
			t.Fatal("daemon exited before binding")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *daemonProc) dumpStderr() {
	if b, err := os.ReadFile(p.stderr); err == nil {
		p.t.Logf("daemon stderr:\n%s", b)
	}
}

// kill SIGKILLs the daemon and reaps it.
func (p *daemonProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// waitExit reaps the process and requires a clean exit.
func (p *daemonProc) waitExit() {
	p.t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			p.dumpStderr()
			p.t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		p.dumpStderr()
		p.cmd.Process.Kill()
		p.t.Fatal("daemon did not exit after drain")
	}
}

func (p *daemonProc) url(path string) string { return "http://" + p.addr + path }

func (p *daemonProc) post(path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	return soakClient.Post(p.url(path), "application/json", rd)
}

func (p *daemonProc) submit(req campaignReq) {
	p.t.Helper()
	resp, err := p.post("/submit", req)
	if err != nil {
		p.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		p.dumpStderr()
		p.t.Fatalf("submit %s/%s: %s: %s", req.Tenant, req.Name, resp.Status, b)
	}
}

// campaignStates polls GET /campaigns into tag -> state.
func (p *daemonProc) campaignStates() map[string]string {
	p.t.Helper()
	resp, err := soakClient.Get(p.url("/campaigns"))
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var lines []struct {
		Tenant   string `json:"tenant"`
		Campaign string `json:"campaign"`
		State    string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lines); err != nil {
		return nil
	}
	out := make(map[string]string)
	for _, l := range lines {
		out[l.Tenant+"/"+l.Campaign] = l.State
	}
	return out
}

// waitCompleted blocks until every tag reports completed.
func (p *daemonProc) waitCompleted(tags []string, timeout time.Duration) {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		states := p.campaignStates()
		all := len(states) > 0
		for _, tag := range tags {
			if states[tag] != "completed" {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			p.dumpStderr()
			p.t.Fatalf("campaigns not completed in %v: %v", timeout, states)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metric scrapes one value from /metrics.
func (p *daemonProc) metric(name string) (int64, bool) {
	resp, err := soakClient.Get(p.url("/metrics"))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, ln := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(ln, name+" ") {
			f := strings.Fields(ln)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				return 0, false
			}
			return int64(v), true
		}
	}
	return 0, false
}

// drain POSTs /drain and requires success.
func (p *daemonProc) drain() {
	p.t.Helper()
	resp, err := p.post("/drain", nil)
	if err != nil {
		p.dumpStderr()
		p.t.Fatalf("drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.t.Fatalf("drain: %s", resp.Status)
	}
}

// soakArgs wall-slows sends and checkpoints aggressively so kills land
// inside interesting windows.
func soakArgs() []string {
	return []string{"-checkpoint-every", "30ms", "-send-delay", "300us"}
}

// TestCrashSoak is the kill-9 soak: three generations of randomized
// SIGKILL — mid-run, near the periodic-checkpoint cadence, and
// mid-drain — then a final generation that recovers everything and
// must produce stores byte-equal to solo fault-free runs.
func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak spawns real daemons")
	}
	testutil.NoGoroutineLeaks(t)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	stateDir := filepath.Join(t.TempDir(), "state")
	reqs := soakCampaigns(t)
	var tags []string
	for _, r := range reqs {
		tags = append(tags, r.Tenant+"/"+r.Name)
	}

	// Generation 1: kill mid-run, well past a few checkpoint
	// intervals.
	p := startDaemon(t, stateDir, soakArgs()...)
	for _, r := range reqs {
		p.submit(r)
	}
	time.Sleep(time.Duration(100+rng.Intn(60)) * time.Millisecond)
	p.kill()
	t.Log("generation 1: killed mid-run")
	if cks, _ := filepath.Glob(filepath.Join(stateDir, "*.ckpt")); len(cks) == 0 {
		t.Fatal("no periodic checkpoint artifact survived generation 1 — kill loses more than one interval")
	}

	// Generation 2: recovery resumes from the snapshots; kill again,
	// randomized around the checkpoint cadence so some runs land
	// inside an interrupt/snapshot/resume cycle.
	p = startDaemon(t, stateDir, soakArgs()...)
	time.Sleep(time.Duration(45+rng.Intn(45)) * time.Millisecond)
	p.kill()
	t.Log("generation 2: killed near checkpoint cadence")

	// Generation 3: kill mid-drain — after the drain started
	// checkpointing but (usually) before it finished.
	p = startDaemon(t, stateDir, soakArgs()...)
	time.Sleep(25 * time.Millisecond)
	// The drain response may never come; the kill races it. The
	// goroutine unblocks on connection reset once the daemon dies.
	go func() {
		if resp, err := p.post("/drain", nil); err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(time.Duration(3+rng.Intn(12)) * time.Millisecond)
	p.kill()
	t.Log("generation 3: killed mid-drain")

	// Final generation: everything must recover and complete.
	p = startDaemon(t, stateDir, soakArgs()...)
	p.waitCompleted(tags, 90*time.Second)
	p.drain()
	p.waitExit()

	// The daemon is gone; open its store directly and compare every
	// final campaign store byte-for-byte with solo fault-free runs.
	st, err := store.Open(store.Config{Dir: stateDir, KeepSuffixes: []string{".stream.ndjson"}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, r := range reqs {
		got, err := st.Get(storeKey(r.Tenant, r.Name), kindStore)
		if err != nil {
			t.Fatalf("final store for %s/%s: %v", r.Tenant, r.Name, err)
		}
		want := soloStoreBytes(t, r)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s/%s: store after %d kill generations differs from solo run (%d vs %d bytes)",
				r.Tenant, r.Name, 3, len(got), len(want))
		}
	}
}

// TestCleanSoakZeroQuarantine pins the clean-run guarantee: a
// campaign set that completes and drains without any kill must leave
// a state dir whose next startup scrubs clean — zero quarantined
// files, zero startup noise.
func TestCleanSoakZeroQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	stateDir := filepath.Join(t.TempDir(), "state")
	reqs := soakCampaigns(t)
	var tags []string
	for _, r := range reqs {
		tags = append(tags, r.Tenant+"/"+r.Name)
	}
	p := startDaemon(t, stateDir, soakArgs()...)
	for _, r := range reqs {
		p.submit(r)
	}
	p.waitCompleted(tags, 90*time.Second)
	p.drain()
	p.waitExit()

	p = startDaemon(t, stateDir, soakArgs()...)
	if v, ok := p.metric("store_quarantined_total"); !ok || v != 0 {
		p.dumpStderr()
		t.Fatalf("store_quarantined_total = %d (ok=%v), want 0 on a clean restart", v, ok)
	}
	// The completed campaigns are retained as terminal records, not
	// re-run.
	states := p.campaignStates()
	for _, tag := range tags {
		if states[tag] != "completed" {
			t.Fatalf("retained state for %s = %q, want completed (%v)", tag, states[tag], states)
		}
	}
	p.drain()
	p.waitExit()
}

// TestCorruptQuarantine plants corruption — a bit-flipped checkpoint,
// an alien blob, and a torn manifest tail — into a drained state dir.
// The daemon must still start, quarantine and report the damage, and
// recover every campaign: the intact one from its checkpoint, the
// corrupted one degraded to a fresh run from its pinned spec. Both
// must still end byte-equal to solo runs (determinism makes the
// degraded rerun converge to the same bytes).
func TestCorruptQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	stateDir := filepath.Join(t.TempDir(), "state")
	reqs := soakCampaigns(t)[:2]
	tags := []string{reqs[0].Tenant + "/" + reqs[0].Name, reqs[1].Tenant + "/" + reqs[1].Name}

	p := startDaemon(t, stateDir, soakArgs()...)
	for _, r := range reqs {
		p.submit(r)
	}
	// Let both campaigns run past a checkpoint, then drain cleanly so
	// the dir holds specs + mid-flight checkpoint artifacts.
	time.Sleep(80 * time.Millisecond)
	p.drain()
	p.waitExit()

	// Bit-flip the middle of c1's checkpoint artifact.
	cks, err := filepath.Glob(filepath.Join(stateDir, storeKey(reqs[0].Tenant, reqs[0].Name)+".*.ckpt"))
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoint glob: %v %v", cks, err)
	}
	blob, err := os.ReadFile(cks[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 32 {
		t.Fatalf("artifact suspiciously small: %d bytes", len(blob))
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(cks[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// An alien blob the manifest has never heard of.
	if err := os.WriteFile(filepath.Join(stateDir, "phantom.999.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn manifest tail.
	mf, err := os.OpenFile(filepath.Join(stateDir, "manifest.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	mf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	mf.Close()

	p = startDaemon(t, stateDir, soakArgs()...)
	if v, ok := p.metric("store_quarantined_total"); !ok || v < 2 {
		p.dumpStderr()
		t.Fatalf("store_quarantined_total = %d (ok=%v), want >= 2", v, ok)
	}
	p.waitCompleted(tags, 90*time.Second)
	p.drain()
	p.waitExit()

	st, err := store.Open(store.Config{Dir: stateDir, KeepSuffixes: []string{".stream.ndjson"}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, r := range reqs {
		got, err := st.Get(storeKey(r.Tenant, r.Name), kindStore)
		if err != nil {
			t.Fatalf("final store for %s/%s: %v", r.Tenant, r.Name, err)
		}
		if want := soloStoreBytes(t, r); !bytes.Equal(got, want) {
			t.Fatalf("%s/%s: store differs from solo run after corruption recovery", r.Tenant, r.Name)
		}
	}
	// The quarantined files are preserved for the operator.
	if q, _ := filepath.Glob(filepath.Join(stateDir, "corrupt", "*")); len(q) < 2 {
		t.Fatalf("expected quarantined files in corrupt/, found %v", q)
	}
}

// TestSignalDrain pins the SIGTERM path: a signal must run the same
// graceful drain as POST /drain — checkpoint to the store, flush and
// close streams, exit 0 — and a restart must finish the campaign.
func TestSignalDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	stateDir := filepath.Join(t.TempDir(), "state")
	req := soakCampaigns(t)[0]
	p := startDaemon(t, stateDir, soakArgs()...)
	p.submit(req)
	time.Sleep(50 * time.Millisecond)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p.waitExit()

	cks, _ := filepath.Glob(filepath.Join(stateDir, "*.ckpt"))
	if len(cks) == 0 {
		t.Fatal("SIGTERM drain left no checkpoint artifact")
	}
	stream, err := os.ReadFile(filepath.Join(stateDir, storeKey(req.Tenant, req.Name)+".stream.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stream), `"drained"`) {
		t.Fatal("stream file missing the drained event — shutdown lost the tail")
	}

	p = startDaemon(t, stateDir, soakArgs()...)
	p.waitCompleted([]string{req.Tenant + "/" + req.Name}, 90*time.Second)
	p.drain()
	p.waitExit()
}

func TestParseTenantsDuplicate(t *testing.T) {
	if _, err := parseTenants("alice,bob,alice"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate tenant accepted: %v", err)
	}
	if _, err := parseTenants("we ird"); err == nil {
		t.Fatal("invalid tenant name accepted")
	}
	tl, err := parseTenants("alice:4000:2,bob")
	if err != nil || len(tl) != 2 || tl[0].RateBudget != 4000 || tl[0].Priority != 2 {
		t.Fatalf("parse: %+v %v", tl, err)
	}
}

var _ = fmt.Sprintf // keep fmt linked for debug edits
