// Command beholder regenerates every table and figure from the paper's
// evaluation (Sections 3-6) against the simulated IPv6 internetwork and
// writes them as text, suitable for diffing into EXPERIMENTS.md.
//
// Example:
//
//	beholder -scale 1.0 -rate 1000 > experiments.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"beholder"
	"beholder/internal/graph"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2018, "determinism seed")
		scale    = flag.Float64("scale", 1.0, "seed-list scale (1.0 = campaign scale)")
		small    = flag.Bool("small", false, "use the small universe (quick look)")
		rate     = flag.Float64("rate", 1000, "campaign probing rate (pps)")
		out      = flag.String("out", "", "output file (default stdout)")
		graphOut = flag.String("graph", "", "also export the graph study's cross-vantage union topology graph to this file (.ndjson for NDJSON, anything else for Graphviz DOT)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-suite) to this file")
		progress = flag.String("progress", "", `stream one NDJSON record per completed experiment to this file ("-" for stderr)`)
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the suite runs (e.g. localhost:6060)")
		faults   = flag.Bool("faults", false, "append the fault-robustness study: campaign recovery under injected crash/stall/transient/corruption faults")
		sched    = flag.Bool("sched", false, "append the supervision study: concurrent multi-tenant campaigns under the scheduler vs bare runs")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "beholder:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "beholder:", err)
			}
		}()
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if *telAddr != "" {
		bound, err := beholder.ServeTelemetry(*telAddr, beholder.NewTelemetry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "beholder: telemetry on http://%s/metrics (profiles at /debug/pprof/)\n", bound)
	}
	var progW io.Writer
	if *progress == "-" {
		progW = os.Stderr
	} else if *progress != "" {
		f, err := os.Create(*progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
		defer f.Close()
		progW = f
	}

	e := beholder.NewExperiments(beholder.ExpOptions{
		Seed: *seed, Scale: *scale, Small: *small, Rate: *rate,
	})
	fmt.Fprintf(w, "beholder experiment suite — seed %d, scale %g, rate %gpps, universe ASes %d, BGP prefixes %d\n\n",
		*seed, *scale, *rate, e.Internet().NumASes(), e.Internet().NumPrefixes())

	// Run the suite step by step so progress can stream as each
	// experiment lands; the expensive intermediates (campaigns, target
	// sets) are cached, so the All() render pass below reuses them and
	// emits in paper order.
	start := time.Now()
	steps := e.Steps()
	done := 0
	for _, s := range steps {
		t0 := time.Now()
		n := len(s.Run())
		done++
		if progW != nil {
			fmt.Fprintf(progW, `{"type":"experiment","name":%q,"step":%d,"of":%d,"renderables":%d,"wall_ms":%d}`+"\n",
				s.Name, done, len(steps), n, time.Since(t0).Milliseconds())
		}
	}
	for _, r := range e.All() {
		fmt.Fprintln(w, r.Render())
	}
	if *faults {
		// Opt-in: the paper's evaluation has no fault figures, so the
		// robustness study stays out of the canonical All() artifact.
		fmt.Fprintln(w, e.FaultStudy().Render())
	}
	if *sched {
		// Opt-in for the same reason: supervision is infrastructure, not
		// a paper figure.
		fmt.Fprintln(w, e.SchedStudy().Render())
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))

	if *graphOut != "" {
		// The graph study's union graph (campaign graphs are already
		// built and cached by All), AS-annotated from the simulated BGP
		// table.
		if err := graph.WriteFile(*graphOut, e.GraphUnion(), e.Internet().Universe().Table()); err != nil {
			fmt.Fprintln(os.Stderr, "beholder:", err)
			os.Exit(1)
		}
	}
}
