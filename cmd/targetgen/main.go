// Command targetgen runs the paper's three-step target generation
// pipeline (seeds → prefix transformation → IID synthesis) and prints
// the resulting probe targets, one per line.
//
// With -dealias, the candidate /64s of the generated set are first
// swept with the 6Prob-style aliased-prefix detector from a vantage
// inside the simulated internetwork, and every target falling inside a
// detected aliased prefix is dropped before printing.
//
// Examples:
//
//	targetgen -seeds fdns_any -zn 48 -synth fixediid | head
//	targetgen -seeds fdns_any -synth known -dealias | wc -l
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"beholder"
)

func main() {
	var (
		simSeed = flag.Int64("sim-seed", 2018, "simulated internetwork seed")
		small   = flag.Bool("small", false, "use the small universe")
		seeds   = flag.String("seeds", "caida", "seed list: caida|fiebig|fdns_any|dnsdb|cdn-k32|cdn-k256|6gen|tum|random")
		zn      = flag.Int("zn", 64, "prefix transformation level (z48, z64, ...)")
		synth   = flag.String("synth", "lowbyte1", "IID synthesis: lowbyte1|fixediid|randomiid|known")
		scale   = flag.Float64("scale", 0.5, "seed list scale")

		dealias = flag.Bool("dealias", false, "detect aliased /64s and drop targets inside them")
		vantage = flag.String("vantage", "targetgen", "detection vantage name (with -dealias)")
		aProbes = flag.Int("alias-probes", 0, "random IIDs per candidate prefix (default 8)")
		aRate   = flag.Float64("alias-rate", 0, "detection probing rate in pps (default 1000)")
		aBudget = flag.Int64("alias-budget", 0, "detection probe budget (0 = unlimited)")
	)
	flag.Parse()

	var in *beholder.Internet
	if *small {
		in = beholder.NewSmallInternet(*simSeed)
	} else {
		in = beholder.NewInternet(*simSeed)
	}
	targets, err := in.TargetSet(*seeds, *zn, *synth, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "targetgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "targetgen: %s z%d %s → %d targets\n", *seeds, *zn, *synth, len(targets))

	if *dealias {
		v := in.NewVantageAt(*vantage, "university", 3)
		cands := beholder.AliasCandidates(targets)
		aliases := v.DetectAliases(cands, beholder.AliasOptions{
			Probes: *aProbes, Rate: *aRate, Budget: *aBudget,
		})
		kept, stats := beholder.DealiasTargets(targets, aliases)
		fmt.Fprintf(os.Stderr,
			"targetgen: dealias: %d candidate /64s (%d skipped by budget), %d aliased, %d probes; %d targets dropped → %d kept\n",
			aliases.Tested(), aliases.Skipped(), aliases.Len(), aliases.ProbesSent(),
			stats.Dropped, stats.Kept)
		targets = kept
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, t := range targets {
		fmt.Fprintln(w, t)
	}
}
