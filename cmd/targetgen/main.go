// Command targetgen runs the paper's three-step target generation
// pipeline (seeds → prefix transformation → IID synthesis) and prints
// the resulting probe targets, one per line.
//
// Example:
//
//	targetgen -seeds fdns_any -zn 48 -synth fixediid | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"beholder"
)

func main() {
	var (
		simSeed = flag.Int64("sim-seed", 2018, "simulated internetwork seed")
		small   = flag.Bool("small", false, "use the small universe")
		seeds   = flag.String("seeds", "caida", "seed list: caida|fiebig|fdns_any|dnsdb|cdn-k32|cdn-k256|6gen|tum|random")
		zn      = flag.Int("zn", 64, "prefix transformation level (z48, z64, ...)")
		synth   = flag.String("synth", "lowbyte1", "IID synthesis: lowbyte1|fixediid|randomiid|known")
		scale   = flag.Float64("scale", 0.5, "seed list scale")
	)
	flag.Parse()

	var in *beholder.Internet
	if *small {
		in = beholder.NewSmallInternet(*simSeed)
	} else {
		in = beholder.NewInternet(*simSeed)
	}
	targets, err := in.TargetSet(*seeds, *zn, *synth, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "targetgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(os.Stderr, "targetgen: %s z%d %s → %d targets\n", *seeds, *zn, *synth, len(targets))
	for _, t := range targets {
		fmt.Fprintln(w, t)
	}
}
