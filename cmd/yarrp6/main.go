// Command yarrp6 runs a single Yarrp6 campaign against the simulated
// IPv6 internetwork and emits discovery results, in the spirit of the
// yarrp tool this library reproduces.
//
// Targets come either from -input (one IPv6 address per line) or from
// the built-in target generation pipeline via -seeds/-zn/-synth.
//
// Example:
//
//	yarrp6 -seeds cdn-k32 -zn 64 -synth fixediid -rate 1000 -fill
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"beholder"
	"beholder/internal/core"
	"beholder/internal/graph"
	"beholder/internal/wire"
)

// conflictf renders one flag-vs-artifact conflict when cond holds.
func conflictf(cond bool, format string, args ...any) string {
	if !cond {
		return ""
	}
	return fmt.Sprintf(format, args...)
}

// protoOfTransport maps the -transport flag to a wire protocol number.
func protoOfTransport(name string) (uint8, error) {
	switch name {
	case "", "icmp6", "icmpv6":
		return wire.ProtoICMPv6, nil
	case "udp":
		return wire.ProtoUDP, nil
	case "tcp":
		return wire.ProtoTCP, nil
	}
	return 0, fmt.Errorf("unknown transport %q", name)
}

// transportOfProto names a wire protocol number like the -transport flag.
func transportOfProto(p uint8) string {
	switch p {
	case wire.ProtoUDP:
		return "udp"
	case wire.ProtoTCP:
		return "tcp"
	}
	return "icmp6"
}

func main() {
	var (
		simSeed   = flag.Int64("sim-seed", 2018, "simulated internetwork seed")
		small     = flag.Bool("small", false, "use the small universe")
		input     = flag.String("input", "", "target file (one IPv6 address per line)")
		seedsName = flag.String("seeds", "caida", "seed list for target generation")
		zn        = flag.Int("zn", 64, "prefix transformation level")
		synth     = flag.String("synth", "lowbyte1", "IID synthesis: lowbyte1|fixediid|randomiid|known")
		scale     = flag.Float64("scale", 0.5, "seed list scale")
		rate      = flag.Float64("rate", 1000, "probing rate (pps)")
		maxTTL    = flag.Int("maxttl", 16, "maximum randomized TTL")
		transport = flag.String("transport", "icmp6", "probe transport: icmp6|udp|tcp")
		fill      = flag.Bool("fill", false, "enable fill mode")
		key       = flag.Uint64("key", 0x6b657921, "permutation key")
		shards    = flag.Int("shards", 1, "concurrent prober instances splitting the permutation domain")
		batch     = flag.Int("batch", 0, "probe-pipeline send batch size (0 = engine default; results are identical at any value)")
		vantage   = flag.String("vantage", "US-EDU-1", "vantage name")
		hops      = flag.Bool("hops", false, "print per-target hop listings")
		graphOut  = flag.String("graph", "", "export the topology graph to this file (.ndjson for NDJSON, anything else for Graphviz DOT); the graph is built streaming during the run")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-campaign) to this file")
		progress  = flag.String("progress", "", `stream virtual-time NDJSON progress samples to this file ("-" for stderr); byte-identical at any -shards/-batch`)
		progShard = flag.Bool("progress-shards", false, "append per-shard breakdown records to the progress stream")
		telAddr   = flag.String("telemetry-addr", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		interrupt = flag.Duration("interrupt-at", 0, "stop the campaign at this virtual instant and write the -checkpoint artifact (resume later with -resume)")
		ckptPath  = flag.String("checkpoint", "", "file for the resume artifact of an interrupted campaign (required with -interrupt-at)")
		resume    = flag.String("resume", "", "resume a campaign from this checkpoint artifact; the artifact pins the campaign configuration, and explicitly-set target or tuning flags that contradict it are an error")

		adaptive = flag.Bool("adaptive", false, "closed-loop probabilistic generation: the -input/-seeds addresses become seed observations for a density-weighted prefix trie that generates targets epoch by epoch from discovery feedback")
		adBudget = flag.Int64("adaptive-budget", 0, "total probe budget across adaptation epochs (0 = bounded by -adaptive-epochs alone)")
		adPerEp  = flag.Int("adaptive-epoch-targets", 0, "targets generated per adaptation epoch (0 = engine default)")
		adEpochs = flag.Int("adaptive-epochs", 0, "maximum adaptation epochs (0 = engine default)")
		adAPD    = flag.Int("adaptive-apd", 1, "fully-responsive targets per /64 that nominate it for boundary alias detection (negative disables APD pruning)")
	)
	flag.Parse()
	if *interrupt > 0 && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "yarrp6: -interrupt-at requires -checkpoint")
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProf)

	var in *beholder.Internet
	if *small {
		in = beholder.NewSmallInternet(*simSeed)
	} else {
		in = beholder.NewInternet(*simSeed)
	}
	v := in.NewVantage(*vantage)

	// On resume, the artifact is authoritative for targets and tuning.
	// Validate it up front and cross-check every explicitly-set flag
	// against the embedded configuration: a contradiction is an error,
	// never a silent preference for the artifact's values.
	var resumeArt []byte
	var info core.CheckpointInfo
	if *resume != "" {
		var err error
		resumeArt, err = os.ReadFile(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		info, err = core.InspectCheckpoint(resumeArt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yarrp6: %s is not a usable checkpoint: %v\n", *resume, err)
			os.Exit(1)
		}
		if info.Adaptive && !*adaptive {
			fmt.Fprintf(os.Stderr, "yarrp6: %s is an adaptive checkpoint: pass -adaptive plus the original -input/-seeds flags so the generator can be rebuilt\n", *resume)
			os.Exit(1)
		}
	}

	// Target loading. A fresh run always needs targets; an adaptive
	// resume needs them too — they are the generator's original seed
	// observations, from which the serialized trie state is rebuilt.
	var targets []netip.Addr
	if *resume == "" || info.Adaptive {
		if *input != "" {
			var err error
			targets, err = readTargets(*input)
			if err != nil {
				fmt.Fprintln(os.Stderr, "yarrp6:", err)
				os.Exit(1)
			}
		} else {
			var err error
			targets, err = in.TargetSet(*seedsName, *zn, *synth, *scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, "yarrp6:", err)
				os.Exit(1)
			}
		}
		if *resume == "" {
			noun := "targets"
			if *adaptive {
				noun = "seed observations"
			}
			fmt.Fprintf(os.Stderr, "yarrp6: %d %s from vantage %s (%s), %g pps, maxttl %d, %d shard(s)\n",
				len(targets), noun, *vantage, v.Addr(), *rate, *maxTTL, *shards)
		}
	}

	if *resume != "" {
		effBatch := *batch
		if effBatch <= 0 {
			effBatch = core.DefaultBatch
		}
		wantProto, protoErr := protoOfTransport(*transport)
		conflicts := map[string]func() string{
			"shards": func() string {
				return conflictf(*shards != info.Shards, "-shards %d (artifact: %d)", *shards, info.Shards)
			},
			"batch": func() string {
				return conflictf(effBatch != info.Batch, "-batch %d (artifact: %d)", *batch, info.Batch)
			},
			"transport": func() string {
				if protoErr != nil {
					return fmt.Sprintf("-transport %q (unknown; artifact: %s)", *transport, transportOfProto(info.Proto))
				}
				return conflictf(wantProto != info.Proto, "-transport %s (artifact: %s)", *transport, transportOfProto(info.Proto))
			},
			"rate": func() string {
				return conflictf(*rate != info.PPS, "-rate %g (artifact: %g)", *rate, info.PPS)
			},
			"maxttl": func() string {
				return conflictf(*maxTTL != int(info.MaxTTL), "-maxttl %d (artifact: %d)", *maxTTL, info.MaxTTL)
			},
			"key": func() string {
				return conflictf(*key != info.Key, "-key %#x (artifact: %#x)", *key, info.Key)
			},
			"fill": func() string {
				return conflictf(*fill != info.Fill, "-fill %v (artifact: %v)", *fill, info.Fill)
			},
			"input": func() string { return "-input (the artifact pins the target set)" },
			"seeds": func() string { return "-seeds (the artifact pins the target set)" },
			"zn":    func() string { return "-zn (the artifact pins the target set)" },
			"synth": func() string { return "-synth (the artifact pins the target set)" },
			"scale": func() string { return "-scale (the artifact pins the target set)" },
			"adaptive": func() string {
				return conflictf(!info.Adaptive, "-adaptive (the artifact is a static-target campaign)")
			},
			"adaptive-budget": func() string {
				return "-adaptive-budget (the artifact pins the adaptive configuration)"
			},
			"adaptive-epoch-targets": func() string {
				return "-adaptive-epoch-targets (the artifact pins the adaptive configuration)"
			},
			"adaptive-epochs": func() string {
				return "-adaptive-epochs (the artifact pins the adaptive configuration)"
			},
		}
		if info.Adaptive {
			// An adaptive resume rebuilds the generator from the original
			// seed observations, so the seed-pipeline flags are not only
			// allowed but expected.
			for _, f := range []string{"input", "seeds", "zn", "synth", "scale"} {
				delete(conflicts, f)
			}
		}
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			if chk := conflicts[f.Name]; chk != nil {
				if msg := chk(); msg != "" {
					bad = append(bad, msg)
				}
			}
		})
		if len(bad) > 0 {
			fmt.Fprintln(os.Stderr, "yarrp6: -resume: the checkpoint pins the campaign configuration; conflicting flags:")
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "  "+m)
			}
			fmt.Fprintln(os.Stderr, "yarrp6: drop these flags, or set them to the artifact's values shown above")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "yarrp6: resuming from %s on vantage %s (%s): %d targets, %d shard(s), batch %d, %s, %g pps\n",
			*resume, *vantage, v.Addr(), info.Targets, info.Shards, info.Batch, transportOfProto(info.Proto), info.PPS)
	}

	// The checkpoint file opens before the campaign runs: an unwritable
	// path must fail fast, not after minutes of probing.
	var ckptFile *os.File
	if *ckptPath != "" {
		f, err := os.Create(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		ckptFile = f
	}

	// Telemetry registry: created for the HTTP endpoint, and also useful
	// on its own so the campaign summary can report cache effectiveness.
	var reg *beholder.TelemetryRegistry
	if *telAddr != "" {
		reg = beholder.NewTelemetry()
		bound, err := beholder.ServeTelemetry(*telAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "yarrp6: telemetry on http://%s/metrics (profiles at /debug/pprof/)\n", bound)
	}
	var progW io.Writer
	if *progress == "-" {
		progW = os.Stderr
	} else if *progress != "" {
		f, err := os.Create(*progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		defer func() { bw.Flush(); f.Close() }()
		progW = bw
	}

	var res *beholder.Result
	var err error
	switch {
	case *resume != "" && info.Adaptive:
		res, err = v.ResumeYarrp6(resumeArt, beholder.YarrpOptions{
			Telemetry: reg, Progress: progW, ProgressPerShard: *progShard,
			InterruptAt: *interrupt,
			Adaptive:    &beholder.AdaptiveOptions{AliasMinHits: *adAPD, Seeds: targets},
		})
	case *resume != "":
		res, err = v.ResumeYarrp6(resumeArt, beholder.YarrpOptions{
			Telemetry: reg, Progress: progW, ProgressPerShard: *progShard,
			InterruptAt: *interrupt,
		})
	default:
		opt := beholder.YarrpOptions{
			Rate: *rate, MaxTTL: *maxTTL, Transport: *transport, Fill: *fill, Key: *key,
			Shards: *shards, Batch: *batch, Graph: *graphOut != "",
			Telemetry: reg, Progress: progW, ProgressPerShard: *progShard,
			InterruptAt: *interrupt,
		}
		if *adaptive {
			opt.Adaptive = &beholder.AdaptiveOptions{
				Budget:       *adBudget,
				EpochTargets: *adPerEp,
				MaxEpochs:    *adEpochs,
				AliasMinHits: *adAPD,
			}
		}
		res, err = v.RunYarrp6(targets, opt)
	}
	interrupted := errors.Is(err, beholder.ErrInterrupted)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "yarrp6:", err)
		os.Exit(1)
	}
	if ckptFile != nil {
		if interrupted {
			if _, werr := ckptFile.Write(res.Checkpoint); werr != nil {
				fmt.Fprintln(os.Stderr, "yarrp6:", werr)
				os.Exit(1)
			}
			if werr := ckptFile.Close(); werr != nil {
				fmt.Fprintln(os.Stderr, "yarrp6:", werr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "yarrp6: interrupted at %s; checkpoint (%d bytes) written to %s\n",
				res.Elapsed, len(res.Checkpoint), *ckptPath)
		} else {
			// The campaign outran -interrupt-at (or none was set); no
			// artifact exists, so don't leave an empty file behind.
			ckptFile.Close()
			os.Remove(*ckptPath)
		}
	}
	if len(res.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "yarrp6: %d shard(s) quarantined after fatal faults; %d range(s) unrecovered\n",
			len(res.Quarantined), len(res.Incomplete))
	}

	fmt.Printf("probes %d fills %d replies %d interfaces %d elapsed %s\n",
		res.ProbesSent, res.Fills, res.Replies, res.NumInterfaces(), res.Elapsed)
	fmt.Fprintf(os.Stderr, "yarrp6: plan cache %d hits / %d misses (%d evictions), %d shared-core hits\n",
		res.PlanHits, res.PlanMisses, res.PlanEvictions, res.SharedPlanHits)
	if *graphOut != "" {
		// AS-annotated from the simulator's BGP table; NDJSON or DOT by
		// file extension.
		if err := graph.WriteFile(*graphOut, res.Graph(), in.Universe().Table()); err != nil {
			fmt.Fprintln(os.Stderr, "yarrp6:", err)
			os.Exit(1)
		}
		g := res.Graph()
		fmt.Fprintf(os.Stderr, "yarrp6: graph %s: %d nodes, %d edges\n", *graphOut, g.NumNodes(), g.NumEdges())
	}
	if *hops {
		for _, t := range targets {
			path := res.Path(t)
			if len(path) == 0 {
				continue
			}
			fmt.Printf("%s\n", t)
			for _, h := range path {
				fmt.Printf("  %2d  %s\n", h.TTL, h.Addr)
			}
		}
	} else {
		ifaces := res.Interfaces()
		sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].Less(ifaces[j]) })
		for _, a := range ifaces {
			fmt.Println(a)
		}
	}
}

// writeMemProfile dumps a garbage-collected heap profile, so hot-path
// allocation regressions can be diagnosed without editing code.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yarrp6:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "yarrp6:", err)
	}
}

func readTargets(path string) ([]netip.Addr, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []netip.Addr
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		a, err := netip.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("bad target %q: %w", line, err)
		}
		out = append(out, a)
	}
	return out, sc.Err()
}
