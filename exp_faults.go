package beholder

// Fault-robustness study: the campaign engine driven over an actively
// misbehaving network. Each scenario installs one fault class from the
// deterministic injection plane (internal/faultsim) and reruns the same
// campaign, reporting what the recovery machinery did — quarantines,
// re-sharded ranges, bounded retries — and whether the merged store
// still matches the fault-free run. Not part of Experiments.All(): the
// paper's evaluation has no fault figures; run it with
// `beholder -faults`.

import (
	"time"

	"beholder/internal/target"
)

// FaultStudy runs one campaign per injected fault class and tabulates
// the recovery outcome against the fault-free baseline.
func (e *Experiments) FaultStudy() *Table {
	t := &Table{
		ID:    "Faults (robustness)",
		Title: "Campaign recovery under injected vantage and path faults (2 shards)",
		Headers: []string{"Scenario", "Probes", "Replies", "Retries",
			"Quarantined", "Incomplete", "Ifaces", "Store vs clean"},
	}

	const vantage = "FAULT-LAB"
	set := e.targetSet("caida", 64, target.LowByte1)
	addrs := set.Targets.Addrs()
	// The campaign send window in virtual time anchors the fault
	// instants mid-run.
	window := time.Duration(float64(len(addrs)*16) / e.opt.Rate * float64(time.Second))

	run := func(fc *FaultConfig) *Result {
		e.in.Reset()
		e.in.SetFaults(fc)
		defer e.in.SetFaults(nil)
		v := e.in.NewVantageAt(vantage, "university", 4)
		res, err := v.RunYarrp6(addrs, YarrpOptions{
			Rate: e.opt.Rate, MaxTTL: 16, Key: 1, Fill: true, Shards: 2,
		})
		if err != nil {
			panic(err)
		}
		return res
	}

	scenarios := []struct {
		name  string
		rules []FaultRule
	}{
		{"clean", nil},
		{"crash shard 1", []FaultRule{
			{Vantage: vantage, Shard: 1, Kind: FaultCrash, At: window * 3 / 4}}},
		{"stall window", []FaultRule{
			{Vantage: vantage, Shard: FaultAnyShard, Kind: FaultStall, At: window / 5, Duration: window / 6}}},
		{"transient sends", []FaultRule{
			{Vantage: vantage, Shard: FaultAnyShard, Kind: FaultTransientSend, Prob: 0.05}}},
		{"corrupt replies", []FaultRule{
			{Vantage: vantage, Shard: FaultAnyShard, Kind: FaultCorruptReply, Prob: 0.2}}},
		{"delay burst", []FaultRule{
			{Vantage: vantage, Shard: FaultAnyShard, Kind: FaultDelayBurst, At: window / 3, Duration: window / 4}}},
	}

	var clean *Result
	for _, sc := range scenarios {
		var fc *FaultConfig
		if sc.rules != nil {
			fc = &FaultConfig{Seed: uint64(e.opt.Seed) ^ 0xfa17, Rules: sc.rules}
		}
		res := run(fc)
		if sc.name == "clean" {
			clean = res
		}
		var retries int64
		for _, s := range res.ShardStats {
			retries += s.Retries
		}
		equal := "equal"
		if !res.Store().Equal(clean.Store()) {
			equal = "differs"
		}
		t.AddRow(sc.name, kfmt(res.ProbesSent), kfmt(res.Replies), itoa(int(retries)),
			itoa(len(res.Quarantined)), itoa(len(res.Incomplete)),
			itoa(res.NumInterfaces()), equal)
	}
	t.Notes = append(t.Notes,
		"Fault draws are keyed hashes of absolute virtual time, so every scenario is exactly reproducible and commutes with checkpoint/resume.",
		"A crashed shard's remaining permutation range is re-probed through fresh connections at the original schedule instants; with lossless replies the store matches the fault-free run.",
		"Stalls and corruption lose or damage replies, so those stores legitimately differ; the permutation-driven probe count never does.")
	return t
}
