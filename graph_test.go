package beholder

import (
	"bytes"
	"testing"
)

// graphExport runs one fdns_any z64 campaign with the streaming graph
// observer under the given shard count and plan-cache size, returning
// the canonical NDJSON bytes of the resulting graph.
func graphExport(t *testing.T, shards, planCache int) []byte {
	t.Helper()
	in := NewSmallInternet(77)
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	v := in.NewVantage("graph-det")
	v.SetPlanCache(planCache)
	res, err := v.RunYarrp6(targets, YarrpOptions{
		Rate: 20000, MaxTTL: 16, Key: 7, Fill: true, Shards: shards, Graph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Graph().WriteNDJSON(&buf, in.Universe().Table()); err != nil {
		t.Fatal(err)
	}
	if res.Graph().NumEdges() == 0 {
		t.Fatal("campaign built an empty graph")
	}
	return buf.Bytes()
}

// TestGraphPlanCacheDeterminism: at every shard count, the plan cache
// must not change the streamed graph by a byte. (The full shards ×
// cache matrix — including cross-shard-count byte equality — lives in
// internal/core's TestGraphShardCacheMatrix on a non-scarce universe,
// where cross-shard store equality is exact; this facade run keeps the
// default universe, whose saturated rate limiters make shard counts
// legitimately differ by a few boundary replies, see core.Campaign.)
func TestGraphPlanCacheDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		off := graphExport(t, shards, 0)
		on := graphExport(t, shards, 4096)
		if !bytes.Equal(off, on) {
			t.Errorf("graph differs between plan cache off/on at shards=%d", shards)
		}
	}
}

// TestResultGraphFallback: without YarrpOptions.Graph, Result.Graph()
// batch-builds from the trace store — and must equal the streamed
// graph.
func TestResultGraphFallback(t *testing.T) {
	run := func(stream bool) *Result {
		in := NewSmallInternet(31)
		targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.4)
		if err != nil {
			t.Fatal(err)
		}
		v := in.NewVantage("graph-fallback")
		res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 20000, MaxTTL: 16, Key: 3, Graph: stream})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	streamed, batch := run(true), run(false)
	var a, b bytes.Buffer
	if err := streamed.Graph().WriteNDJSON(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := batch.Graph().WriteNDJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streamed and store-derived graphs differ")
	}
	// The graph's interface nodes mirror the store's interface set.
	m := streamed.Graph()
	ifaces := 0
	for _, addr := range streamed.Interfaces() {
		if m.NodeFlagsOf(addr) != 0 {
			ifaces++
		}
	}
	if ifaces != streamed.NumInterfaces() {
		t.Fatalf("graph covers %d of %d store interfaces", ifaces, streamed.NumInterfaces())
	}
}

// TestUnionAndCollapseFacade exercises the cross-vantage union and the
// alias-driven router collapse through the facade.
func TestUnionAndCollapseFacade(t *testing.T) {
	in := NewSmallInternet(19)
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*Result
	for _, name := range []string{"union-a", "union-b"} {
		v := in.NewVantageAt(name, "hosting", 3)
		res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 20000, MaxTTL: 16, Key: 5, Graph: true})
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, res)
	}
	u := UnionGraphs(graphs[0].Graph(), graphs[1].Graph())
	if u.NumNodes() < graphs[0].Graph().NumNodes() {
		t.Fatal("union lost nodes")
	}
	if got := len(u.Vantages()); got != 2 {
		t.Fatalf("union vantages = %d, want 2", got)
	}

	// Collapse against detected aliases: aliased fdns_any /64s fold.
	cands := AliasCandidates(targets)
	aliases := in.NewVantage("union-apd").DetectAliases(cands, AliasOptions{Rate: 20000})
	rg := CollapseGraph(u, aliases)
	if rg.NumRouters() > u.NumNodes() {
		t.Fatal("collapse grew the node count")
	}
	if aliases.Len() > 0 && rg.NumRouters() == u.NumNodes() && rg.Folded == 0 {
		// Aliased prefixes exist; the campaign may or may not have
		// traversed them, so only sanity-check the identity bound here.
		t.Log("no interfaces folded (no aliased hops on probed paths)")
	}
	if CollapseGraph(u, nil).NumRouters() != u.NumNodes() {
		t.Fatal("nil-alias collapse is not the identity")
	}
}
