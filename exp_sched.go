package beholder

// Supervision study: the multi-tenant campaign scheduler driven over one
// shared internetwork. Three tenants' campaigns run concurrently under a
// Scheduler and each result is compared byte-for-byte against the same
// campaign run bare on a fresh identically-seeded universe — the
// supervisor must be invisible in the data. A fourth campaign runs
// against a virtual-time deadline to show graceful degradation. Not part
// of Experiments.All(): the paper's evaluation has no scheduling
// figures; run it with `beholder -sched`.

import (
	"context"
	"time"

	"beholder/internal/target"
)

// SchedStudy runs concurrent supervised campaigns and tabulates each
// tenant's outcome against its bare single-campaign baseline.
func (e *Experiments) SchedStudy() *Table {
	t := &Table{
		ID:    "Sched (supervision)",
		Title: "Supervised multi-tenant campaigns vs bare runs (shared internetwork, 3 workers)",
		Headers: []string{"Tenant", "Campaign", "Shards", "State", "Probes",
			"Replies", "Nodes", "Edges", "Store vs bare"},
	}

	set := e.targetSet("caida", 64, target.LowByte1)
	addrs := set.Targets.Addrs()

	type campaign struct {
		tenant, name, vantage string
		shards                int
		rate                  float64
		key                   uint64
		deadline              time.Duration
	}
	campaigns := []campaign{
		{tenant: "isp-lab", name: "sweep", vantage: "SCHED-A", shards: 2, rate: e.opt.Rate, key: 21},
		{tenant: "campus", name: "census", vantage: "SCHED-B", shards: 3, rate: e.opt.Rate, key: 22},
		{tenant: "archive", name: "refresh", vantage: "SCHED-C", shards: 1, rate: e.opt.Rate, key: 23},
		{tenant: "campus", name: "rushed", vantage: "SCHED-D", shards: 2, rate: e.opt.Rate, key: 24,
			deadline: deadlineFor(len(addrs), e.opt.Rate)},
	}

	// Supervised pass: all four campaigns admitted at once, three
	// running concurrently.
	e.in.Reset()
	sch, err := e.in.NewScheduler(SchedulerOptions{
		Tenants: []Tenant{
			{Name: "isp-lab", Priority: 1},
			{Name: "campus"},
			{Name: "archive", RateBudget: 2 * e.opt.Rate},
		},
		Workers: 3,
	})
	if err != nil {
		panic(err)
	}
	handles := make([]*CampaignHandle, len(campaigns))
	for i, c := range campaigns {
		handles[i], err = sch.Submit(e.in.NewVantageAt(c.vantage, "university", 4), addrs, SubmitOptions{
			Tenant: c.tenant, Name: c.name, Rate: c.rate, MaxTTL: 16,
			Key: c.key, Fill: true, Shards: c.shards, Deadline: c.deadline,
		})
		if err != nil {
			panic(err)
		}
	}
	results := make([]*CampaignResult, len(campaigns))
	for i, h := range handles {
		if results[i], err = h.Wait(context.Background()); err != nil {
			panic(err)
		}
	}
	if _, err := sch.Drain(context.Background()); err != nil {
		panic(err)
	}

	// Baseline pass: each campaign bare on a reset universe from an
	// identically-named vantage. Deadline campaigns are interrupted at
	// the same virtual instant for an apples-to-apples partial store.
	for i, c := range campaigns {
		e.in.Reset()
		v := e.in.NewVantageAt(c.vantage, "university", 4)
		bare, err := v.RunYarrp6(addrs, YarrpOptions{
			Rate: c.rate, MaxTTL: 16, Key: c.key, Fill: true,
			Shards: c.shards, InterruptAt: c.deadline,
		})
		if err != nil && (c.deadline == 0 || err != ErrInterrupted) {
			panic(err)
		}
		res := results[i]
		equal := "equal"
		if !res.Store.Equal(bare.Store()) {
			equal = "differs"
		}
		if c.deadline > 0 {
			equal += " (partial)"
		}
		state := res.State.String()
		if res.Reason != "" {
			state += "/" + res.Reason
		}
		t.AddRow(c.tenant, c.name, itoa(c.shards), state,
			kfmt(res.Stats.ProbesSent), kfmt(res.Stats.Replies),
			itoa(res.Graph.NumNodes()), itoa(res.Graph.NumEdges()), equal)
	}
	t.Notes = append(t.Notes,
		"Each supervised campaign's merged store is compared against the same campaign run bare on a reset universe: token buckets, delivery queues, and reply authentication are all epoch-scoped to the campaign's vantage clone, so co-tenants cannot perturb each other's bytes.",
		"The supervisor pins every campaign attempt to virtual epoch zero, which is what keeps fresh runs, watchdog failovers, and drain/resume continuations on one schedule.",
		"The deadline campaign is interrupted at the same virtual instant in both passes, so even its partial store must match byte-for-byte.")
	return t
}

// deadlineFor places a virtual deadline about halfway through a
// campaign's send window so the interrupted store is meaningfully
// partial.
func deadlineFor(targets int, rate float64) time.Duration {
	return time.Duration(float64(targets*16) / rate / 2 * float64(time.Second))
}
