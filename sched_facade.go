package beholder

// Campaign supervision through the facade: a Scheduler multiplexes many
// tenants' Yarrp6 campaigns over one Internet, adding admission control,
// per-tenant rate budgets, deterministic dispatch, watchdog failover
// from checkpoints, and per-vantage circuit breaking on top of the
// single-campaign RunYarrp6 path. See DESIGN.md "Campaign supervision".

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"time"

	"beholder/internal/core"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/sched"
)

// Tenant declares one rate-accounted user of a Scheduler.
type Tenant = sched.Tenant

// CampaignHandle tracks one admitted campaign; wait on Done or Wait and
// read the terminal CampaignResult.
type CampaignHandle = sched.Handle

// CampaignResult is a supervised campaign's terminal outcome.
type CampaignResult = sched.Result

// CampaignEvent is one NDJSON record on a tenant's result stream.
type CampaignEvent = sched.Event

// CampaignStatus is one campaign's status line from Scheduler.Status.
type CampaignStatus = sched.CampaignStatus

// DrainedCampaign is one campaign surviving a graceful shutdown.
type DrainedCampaign = sched.Drained

// CampaignState is a supervised campaign's lifecycle position.
type CampaignState = sched.State

// Supervised-campaign lifecycle states.
const (
	CampaignQueued     = sched.StateQueued
	CampaignRunning    = sched.StateRunning
	CampaignCompleted  = sched.StateCompleted
	CampaignIncomplete = sched.StateIncomplete
	CampaignDrained    = sched.StateDrained
)

// Typed admission rejections returned by Scheduler.Submit.
var (
	ErrQueueFull     = sched.ErrQueueFull
	ErrUnknownTenant = sched.ErrUnknownTenant
	ErrRateBudget    = sched.ErrRateBudget
	ErrDraining      = sched.ErrDraining
	ErrDuplicate     = sched.ErrDuplicate
	ErrBreakerOpen   = sched.ErrBreakerOpen
)

// SchedulerOptions parameterizes a Scheduler. Zero values pick the
// supervisor defaults (2 workers, queue of 32, 2s stall budget, 2
// failover retries, breaker tripping after 3 consecutive failures).
type SchedulerOptions struct {
	// Tenants lists the admissible tenants. Required.
	Tenants []Tenant
	// Workers is the number of campaigns run concurrently.
	Workers int
	// QueueLimit bounds the admitted-but-not-running queue.
	QueueLimit int
	// StallBudget is how long a campaign's heartbeat may sit still
	// (wall clock) before the watchdog interrupts it and fails over
	// from the checkpoint; WatchdogPoll is the sampling cadence.
	StallBudget  time.Duration
	WatchdogPoll time.Duration
	// MaxRetries bounds watchdog failovers per campaign.
	MaxRetries int
	// BreakerThreshold and BreakerCooldown shape the per-vantage
	// circuit breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// CheckpointEvery, when positive, periodically interrupts each
	// running campaign at a probe boundary, hands its checkpoint
	// artifact to CheckpointSink, and resumes it — bounding what a
	// process crash can lose to one interval of virtual progress.
	// Results stay byte-identical to an uninterrupted run. Zero means
	// drain-only snapshots.
	CheckpointEvery time.Duration
	// CheckpointSink receives each periodic checkpoint artifact. Sink
	// errors are counted in telemetry and do not stop the campaign.
	CheckpointSink func(tenant, name string, artifact []byte) error
	// SendDelay, when positive, wall-delays every connection send
	// batch by that much. Virtual time — and therefore every result
	// byte — is untouched; the knob only stretches a campaign's
	// wall-clock footprint so crash/kill harnesses (and cautious
	// operators) get a window to interrupt it mid-flight.
	SendDelay time.Duration
	// Telemetry, when non-nil, receives sched_* supervisor metrics and
	// the campaigns' hot-path yarrp_* metrics.
	Telemetry *TelemetryRegistry
}

// SubmitOptions parameterizes one supervised campaign. The probing
// options mirror YarrpOptions; the supervisor owns deadlines, retry
// policy, and result streaming around them.
type SubmitOptions struct {
	// Tenant names the submitting tenant; Name identifies the campaign
	// within it. (Tenant, Name) must be unique among active campaigns.
	Tenant string
	Name   string
	// Rate, MaxTTL, Transport, Fill, Key, Shards, Batch as in
	// YarrpOptions.
	Rate      float64
	MaxTTL    int
	Transport string
	Fill      bool
	Key       uint64
	Shards    int
	Batch     int
	// Deadline, when positive, interrupts the campaign at that instant
	// of campaign virtual time and degrades it to CampaignIncomplete.
	Deadline time.Duration
	// Stream, when non-nil, receives the tenant's NDJSON event stream:
	// lifecycle records plus incremental graph deltas as the campaign
	// discovers topology.
	Stream io.Writer
	// Resume, when non-nil, continues a drained campaign from its
	// checkpoint artifact instead of starting fresh; the artifact
	// supplies targets and tuning.
	Resume []byte
}

// Scheduler is a multi-tenant campaign supervisor over one Internet.
// Create with Internet.NewScheduler, submit with Submit, shut down with
// Drain. A vantage handed to Submit belongs to the scheduler for the
// campaign's duration — do not drive RunYarrp6 on it concurrently.
type Scheduler struct {
	in  *Internet
	sup *sched.Supervisor

	// sendDelay is SchedulerOptions.SendDelay: a wall-only throttle
	// wrapped around every shard connection.
	sendDelay time.Duration

	// mu serializes all shared-vantage mutation: concurrent campaigns'
	// connection factories interleave arbitrarily (initial shards,
	// recovery shards, failover resumes), and each clone bumps parent
	// shard-group state.
	mu       sync.Mutex
	vantages map[string]*netsim.Vantage
}

// NewScheduler starts a campaign supervisor over this internetwork.
func (in *Internet) NewScheduler(opt SchedulerOptions) (*Scheduler, error) {
	s := &Scheduler{in: in, vantages: make(map[string]*netsim.Vantage), sendDelay: opt.SendDelay}
	var sink func(spec *sched.CampaignSpec, artifact []byte) error
	if opt.CheckpointSink != nil {
		userSink := opt.CheckpointSink
		sink = func(spec *sched.CampaignSpec, artifact []byte) error {
			return userSink(spec.Tenant, spec.Name, artifact)
		}
	}
	sup, err := sched.New(sched.Config{
		Opener:           s.open,
		Tenants:          opt.Tenants,
		Workers:          opt.Workers,
		QueueLimit:       opt.QueueLimit,
		WatchdogPoll:     opt.WatchdogPoll,
		StallBudget:      opt.StallBudget,
		MaxRetries:       opt.MaxRetries,
		BreakerThreshold: opt.BreakerThreshold,
		BreakerCooldown:  opt.BreakerCooldown,
		CheckpointEvery:  opt.CheckpointEvery,
		CheckpointSink:   sink,
		Telemetry:        opt.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	s.sup = sup
	return s, nil
}

// throttledConn wall-delays sends while leaving virtual time — and so
// every result byte — untouched. The embedded vantage keeps the
// optional conn capabilities (priming, reply injection, sim-state
// checkpointing) visible to the prober's interface assertions.
type throttledConn struct {
	*netsim.Vantage
	delay time.Duration
}

func (c *throttledConn) Send(pkt []byte) error {
	time.Sleep(c.delay)
	return c.Vantage.Send(pkt)
}

func (c *throttledConn) SendBatch(pkts [][]byte, gap time.Duration) (int, bool, error) {
	time.Sleep(c.delay)
	return c.Vantage.SendBatch(pkts, gap)
}

// open is the supervisor's per-attempt connection factory builder. It
// pins the campaign's epoch to virtual zero: a campaign-tagged parent
// clone opens at 0, and every shard connection — fresh, recovery, or
// resumed — clones from it at the campaign-relative start offset. This
// is what makes a supervised campaign's results byte-identical to the
// same campaign run bare, however many tenants run beside it and
// however many failovers it survives.
func (s *Scheduler) open(spec *sched.CampaignSpec) (core.ConnFactory, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	root := s.vantages[spec.Vantage]
	if root == nil {
		return nil, fmt.Errorf("beholder: scheduler has no vantage %q", spec.Vantage)
	}
	root.BeginShardGroup()
	p := root.Clone(0)
	p.SetCampaign(spec.Tag())
	p.BeginShardGroup()
	return func(_ int, start time.Duration) probe.Conn {
		s.mu.Lock()
		defer s.mu.Unlock()
		c := p.Clone(start)
		if s.sendDelay > 0 {
			return &throttledConn{Vantage: c, delay: s.sendDelay}
		}
		return c
	}, nil
}

// Submit admits one campaign probing targets from v, or rejects it with
// one of the typed admission errors (ErrQueueFull, ErrUnknownTenant,
// ErrRateBudget, ErrDraining, ErrDuplicate, ErrBreakerOpen) or an
// artifact-validation error for an unusable Resume artifact.
func (s *Scheduler) Submit(v *Vantage, targets []netip.Addr, opt SubmitOptions) (*CampaignHandle, error) {
	proto, err := transportProto(opt.Transport)
	if err != nil {
		return nil, err
	}
	if opt.MaxTTL < 0 || opt.MaxTTL > 255 {
		return nil, fmt.Errorf("beholder: MaxTTL %d out of range", opt.MaxTTL)
	}
	s.mu.Lock()
	s.vantages[v.v.Name()] = v.v
	s.mu.Unlock()
	return s.sup.Submit(sched.CampaignSpec{
		Tenant:   opt.Tenant,
		Name:     opt.Name,
		Vantage:  v.v.Name(),
		Targets:  targets,
		Rate:     opt.Rate,
		MaxTTL:   uint8(opt.MaxTTL),
		Proto:    proto,
		Fill:     opt.Fill,
		Key:      opt.Key,
		Shards:   opt.Shards,
		Batch:    opt.Batch,
		Deadline: opt.Deadline,
		Stream:   opt.Stream,
		Resume:   opt.Resume,
	})
}

// Status reports every admitted campaign in submission order.
func (s *Scheduler) Status() []CampaignStatus { return s.sup.Status() }

// BreakerState names a vantage's circuit-breaker position: "closed",
// "open", or "half-open".
func (s *Scheduler) BreakerState(vantage string) string {
	return s.sup.BreakerState(vantage).String()
}

// Drain shuts the scheduler down gracefully: running campaigns are
// interrupted and checkpointed, queued ones returned as bare specs.
// Resubmitting each DrainedCampaign (Artifact as SubmitOptions.Resume)
// to a fresh scheduler continues every campaign byte-identically. Drain
// is terminal.
func (s *Scheduler) Drain(ctx context.Context) ([]DrainedCampaign, error) {
	return s.sup.Drain(ctx)
}
