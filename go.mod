module beholder

go 1.24
