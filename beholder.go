// Package beholder is a reproduction of "In the IP of the Beholder:
// Strategies for Active IPv6 Topology Discovery" (Beverly, Durairajan,
// Plonka, Rohrer — IMC 2018) as a reusable Go library.
//
// It provides Yarrp6 — the paper's stateless randomized high-speed IPv6
// topology prober — together with every substrate the study needs: a
// packet-level simulated IPv6 internetwork with RFC 4443 ICMPv6 rate
// limiting (standing in for the live Internet and a native vantage
// point), the seven seed-list sources and the three-step target
// generation pipeline, the sequential and Doubletree baseline probers,
// and the Section 6 subnet-inference algorithms.
//
// The top-level API wraps those pieces for application use; the
// Experiments type regenerates every table and figure in the paper's
// evaluation. See README.md for a tour and DESIGN.md for the system
// inventory.
package beholder

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"beholder/internal/alias"
	"beholder/internal/core"
	"beholder/internal/faultsim"
	"beholder/internal/gen6prob"
	"beholder/internal/graph"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/seeds"
	"beholder/internal/subnet"
	"beholder/internal/target"
	"beholder/internal/telemetry"
	"beholder/internal/trace"
	"beholder/internal/wire"
)

// Internet is a deterministic simulated IPv6 internetwork: the study's
// measurement substrate. All campaigns run against it in virtual time,
// so a day-long probing campaign completes in seconds while exhibiting
// the same rate-limiting dynamics.
type Internet struct {
	u    *netsim.Universe
	seed int64
}

// NewInternet creates a campaign-scale internetwork (about 1200
// autonomous systems).
func NewInternet(seed int64) *Internet {
	return &Internet{u: netsim.NewUniverse(netsim.DefaultConfig(seed)), seed: seed}
}

// NewSmallInternet creates a small internetwork suitable for tests and
// quick demonstrations (about 120 autonomous systems).
func NewSmallInternet(seed int64) *Internet {
	return &Internet{u: netsim.NewUniverse(netsim.TestConfig(seed)), seed: seed}
}

// NumASes returns the autonomous system count.
func (in *Internet) NumASes() int { return len(in.u.ASes()) }

// NumPrefixes returns the advertised BGP prefix count.
func (in *Internet) NumPrefixes() int { return in.u.Table().NumPrefixes() }

// Reset restores pristine router state (token buckets, clock) while
// keeping the topology, as between the paper's trial days.
func (in *Internet) Reset() { in.u.ResetState() }

// Universe exposes the underlying simulator for advanced use.
func (in *Internet) Universe() *netsim.Universe { return in.u }

// FaultConfig is the deterministic fault-injection plane configuration:
// a seed keying every fault draw plus the rules to inject. See
// internal/faultsim for the failure-mode catalogue.
type FaultConfig = faultsim.Config

// FaultRule injects one fault class at one vantage (or one shard clone
// of it).
type FaultRule = faultsim.Rule

// FaultKind enumerates the injectable fault classes.
type FaultKind = faultsim.Kind

// Injectable fault classes, re-exported for rule construction.
const (
	FaultCrash         = faultsim.KindCrash
	FaultStall         = faultsim.KindStall
	FaultTransientSend = faultsim.KindTransientSend
	FaultTruncateReply = faultsim.KindTruncateReply
	FaultCorruptReply  = faultsim.KindCorruptReply
	FaultDelayBurst    = faultsim.KindDelayBurst
)

// FaultAnyShard in FaultRule.Shard matches every shard clone of the
// rule's vantage.
const FaultAnyShard = faultsim.MatchAnyShard

// SetFaults installs (or, with nil, clears) the fault-injection plane.
// Faults are resolved when a vantage is created, so call this before
// NewVantage for the vantages the rules should afflict. Fault draws are
// keyed on absolute virtual time: a faulted campaign is exactly as
// reproducible as a clean one, and checkpoint/resume commutes with the
// fault schedule.
func (in *Internet) SetFaults(fc *FaultConfig) { in.u.SetFaults(fc) }

// SeedLists generates every seed source at the given scale (1.0 is
// campaign scale). The result maps the paper's list names (caida,
// fiebig, fdns_any, dnsdb, cdn-k32, cdn-k256, 6gen, tum, random) to
// their contents.
func (in *Internet) SeedLists(scale float64) map[string]seeds.List {
	lists, _ := seeds.All(in.u, in.seed, seeds.Scale(scale))
	return lists
}

// TargetSet runs the three-step target generation pipeline for one seed
// source: seeds → zn prefix transformation → IID synthesis. synth is one
// of "lowbyte1", "fixediid", "randomiid", "known".
func (in *Internet) TargetSet(seedName string, zn int, synth string, scale float64) ([]netip.Addr, error) {
	lists := in.SeedLists(scale)
	list, ok := lists[seedName]
	if !ok {
		return nil, fmt.Errorf("beholder: unknown seed list %q", seedName)
	}
	var method target.Synth
	switch synth {
	case "lowbyte1":
		method = target.LowByte1
	case "fixediid":
		method = target.FixedIID
	case "randomiid":
		method = target.RandomIID
	case "known":
		method = target.Known
	default:
		return nil, fmt.Errorf("beholder: unknown synthesis %q", synth)
	}
	rng := rand.New(rand.NewSource(in.seed))
	set := target.Build(list, target.Spec{SeedName: seedName, ZN: zn, Synth: method}, rng)
	return set.Targets.Addrs(), nil
}

// GroundTruthSubnets exports the simulator's true subnet plan for up to
// limit subnets per AS with prefix length at most maxBits — the
// validation data Section 6 could only approximate on the real Internet.
func (in *Internet) GroundTruthSubnets(maxBits, perASLimit int) []netip.Prefix {
	var out []netip.Prefix
	for _, as := range in.u.ASes() {
		if as.Tier != 3 {
			continue
		}
		out = append(out, in.u.TruthSubnets(as, maxBits, perASLimit)...)
	}
	return out
}

// Vantage is a measurement host inside the internetwork.
type Vantage struct {
	in *Internet
	v  *netsim.Vantage

	// clk tracks this vantage's own campaign timeline. Vantages created
	// on one universe share the underlying simulator clock (the
	// single-prober regime); a sharded campaign's shard clones get
	// private clocks opened relative to the campaign epoch, and that
	// epoch must not depend on what OTHER vantages concurrently did to
	// the shared clock — per-packet draws are keyed on absolute virtual
	// send time, so a racing epoch read would make results depend on
	// goroutine scheduling. For a lone vantage, clk equals the shared
	// clock at every point the old Now()-read did, so behaviour is
	// unchanged; for concurrent vantages it pins each family's schedule
	// deterministically.
	clk time.Duration
}

// NewVantage attaches a vantage by name. Names map deterministically to
// host networks; the same name always lands in the same AS.
func (in *Internet) NewVantage(name string) *Vantage {
	return in.NewVantageAt(name, "university", 4)
}

// NewVantageAt attaches a vantage to an AS of the given kind
// ("university", "hosting", "eyeball", "enterprise", "transit") with the
// given on-premise access path length.
func (in *Internet) NewVantageAt(name, kind string, chainLen int) *Vantage {
	var k netsim.ASKind
	switch kind {
	case "university":
		k = netsim.KindUniversity
	case "hosting":
		k = netsim.KindHosting
	case "eyeball":
		k = netsim.KindEyeballISP
	case "enterprise":
		k = netsim.KindEnterprise
	default:
		k = netsim.KindTransit
	}
	nv := in.u.NewVantage(netsim.VantageSpec{Name: name, Kind: k, ChainLen: chainLen})
	return &Vantage{in: in, v: nv, clk: nv.Now()}
}

// Addr returns the vantage's probing source address.
func (v *Vantage) Addr() netip.Addr { return v.v.LocalAddr() }

// Conn exposes the vantage as a probe connection for direct prober use.
func (v *Vantage) Conn() probe.Conn { return v.v }

// SetPlanCache resizes this vantage's flow-plan cache (entries <= 0
// disables it). The cache memoizes the simulator's per-flow path plans —
// pure functions of the universe seed and flow identity — so results are
// byte-identical at any setting; the knob trades memory for probing
// speed. See DESIGN.md "The packet fast path".
func (v *Vantage) SetPlanCache(entries int) { v.v.SetPlanCache(entries) }

// PlanCacheStats returns the vantage's flow-plan cache hit/miss counters.
func (v *Vantage) PlanCacheStats() (hits, misses int64) {
	return v.v.Stats.PlanHits, v.v.Stats.PlanMisses
}

// PlanCacheEvictions returns how many plan-cache misses displaced a
// different flow's entry from its direct-mapped slot — the conflict-miss
// share of the miss counter.
func (v *Vantage) PlanCacheEvictions() int64 { return v.v.Stats.PlanEvictions }

// TelemetryRegistry aggregates campaign metrics: counters, gauges, and
// fixed-bucket histograms. One registry may span several runs (and
// several concurrent shards — each holds a private delta buffer that
// folds in at sampling cadence, keeping the probe fast path free of
// shared-memory traffic). Pass it in YarrpOptions, AliasOptions, or the
// trace options to collect; read back via Snapshot/Delta or serve it
// with ServeTelemetry.
type TelemetryRegistry = telemetry.Registry

// TelemetrySnapshot is a point-in-time, name-sorted view of a
// TelemetryRegistry.
type TelemetrySnapshot = telemetry.Snapshot

// ProgressPoint is one sample of a campaign's live progress series:
// campaign-relative virtual timestamp plus cumulative counters. The
// series is deterministic — byte-identical at any shard count and batch
// size.
type ProgressPoint = telemetry.Point

// NewTelemetry creates an empty metrics registry.
func NewTelemetry() *TelemetryRegistry { return telemetry.NewRegistry() }

// ServeTelemetry starts an HTTP observability endpoint on addr (use
// ":0" for an ephemeral port) serving /metrics (Prometheus text),
// /debug/vars (expvar), and /debug/pprof/. It returns the bound
// address. The server runs until process exit.
func ServeTelemetry(addr string, reg *TelemetryRegistry) (string, error) {
	a, err := telemetry.Serve(addr, reg)
	if err != nil {
		return "", err
	}
	return a.String(), nil
}

// YarrpOptions parameterizes a Yarrp6 campaign through the facade.
type YarrpOptions struct {
	Rate      float64 // packets per second (default 1000)
	MaxTTL    int     // default 16
	Transport string  // "icmp6" (default), "udp", "tcp"
	Fill      bool    // enable fill mode
	Key       uint64  // permutation key
	// Shards splits the permutation domain across this many concurrent
	// Yarrp6 instances (distinct Instance bytes, same key), each on its
	// own cloned vantage connection. The shards replay the exact
	// single-prober virtual schedule in parallel wall time: results are
	// deterministic at any shard count and byte-identical to a 1-shard
	// run — each shard clone opens with its router token buckets
	// advanced through the serial schedule preceding its window, so
	// even rate-limit-saturated regimes shard exactly (see
	// core.Campaign; fill mode retains a narrow saturation caveat
	// because fill probes are reply-dependent). Result.Curve is the
	// global discovery curve interleaved from the shard windows by
	// virtual time; the per-window curves remain in Result.ShardStats.
	// Default 1.
	Shards int
	// Batch is the probe-pipeline send-batch size: permutation draw,
	// probe build, and simulator routing are dispatched Batch probes at
	// a time. Batching never changes the virtual schedule — results are
	// byte-identical at any value. Zero selects the engine default
	// (core.DefaultBatch); one disables batching.
	Batch int
	// Graph enables streaming topology-graph construction: an observer
	// on the prober (one per shard) folds every reply into the
	// interface-level multigraph while the campaign runs, so
	// Result.Graph() costs nothing extra at any store size. Without it,
	// Result.Graph() falls back to a post-hoc batch build over the
	// trace store — same graph, but a full store scan.
	Graph bool
	// Telemetry, when non-nil, collects hot-path metrics for the run:
	// yarrp_* probe/reply counters and RTT/batch-fill/drain-gap
	// histograms from the prober, plus sim_*, plan_cache_*, store and
	// graph figures folded in by the facade at run end. The registry
	// may be shared across runs; Result.Telemetry holds the snapshot
	// taken when this run finished.
	Telemetry *TelemetryRegistry
	// Progress, when non-nil, streams the campaign's live progress as
	// NDJSON sample records stamped in virtual time. The stream is
	// deterministic: byte-identical at any Shards and Batch setting.
	// The parsed series is also returned in Result.Progress.
	Progress io.Writer
	// ProgressPerShard appends per-shard breakdown records to the
	// Progress stream after the sample series.
	ProgressPerShard bool
	// InterruptAt, when positive, stops the campaign at that instant of
	// campaign virtual time (as an operator's signal handler would at a
	// wall instant). RunYarrp6 then returns the partial Result — with
	// Result.Checkpoint holding the serialized resume artifact — and an
	// error wrapping ErrInterrupted. Setting it forces the campaign
	// engine even for one shard, so the run is checkpointable.
	InterruptAt time.Duration
	// Adaptive, when non-nil, switches the run to closed-loop
	// probabilistic target generation: the targets passed to RunYarrp6
	// become the generator's seed observations, and the campaign grows
	// its own (target × TTL) domain epoch by epoch (see AdaptiveOptions).
	Adaptive *AdaptiveOptions
}

// AdaptiveOptions parameterizes adaptive probabilistic target
// generation (internal/gen6prob over the core adaptive campaign
// engine). The run probes in epochs: a density-weighted prefix trie —
// seeded from the 6Gen clusters of the observed addresses — samples
// each epoch's target batch, and the epoch's results feed back before
// the next batch: targets whose traces surfaced never-seen interfaces
// reward their trie paths, and prefixes the between-epoch alias
// detector flags are pruned outright. The whole series is
// deterministic at any Shards × Batch combination, and an interrupted
// run checkpoints its generation state alongside the campaign
// artifact.
type AdaptiveOptions struct {
	// Budget caps total probes across all epochs. Zero leaves MaxEpochs
	// alone to bound the run.
	Budget int64
	// EpochTargets caps the targets generated per epoch. Default 256.
	EpochTargets int
	// MaxEpochs bounds the epoch count. Default 16.
	MaxEpochs int
	// AliasMinHits is the fully-responsive-target count per /64 that
	// nominates the prefix for alias detection at the epoch boundary
	// (default 1 — the generator probes one low-byte address per /64;
	// negative disables boundary detection).
	AliasMinHits int
	// Seeds supplies the original seed observations when resuming an
	// adaptive checkpoint: ResumeYarrp6 rebuilds the generator from them
	// and restores its serialized state from the artifact. Ignored by
	// RunYarrp6 (the targets argument is the seed set there).
	Seeds []netip.Addr
}

// ErrInterrupted is returned (wrapped) by RunYarrp6 and ResumeYarrp6
// when the campaign stopped at YarrpOptions.InterruptAt; the partial
// Result carries the checkpoint artifact to resume from.
var ErrInterrupted = core.ErrInterrupted

func transportProto(name string) (uint8, error) {
	switch name {
	case "", "icmp6", "icmpv6":
		return wire.ProtoICMPv6, nil
	case "udp":
		return wire.ProtoUDP, nil
	case "tcp":
		return wire.ProtoTCP, nil
	}
	return 0, fmt.Errorf("beholder: unknown transport %q", name)
}

// Result holds a campaign's outcome.
type Result struct {
	ProbesSent int64
	Fills      int64
	Replies    int64
	Elapsed    time.Duration
	// Curve samples discovery progress. For a sharded campaign it is
	// the global curve interleaved from the per-shard windows by
	// virtual time (exact in probes and in unique-interface counts);
	// the per-window curves live in ShardStats.
	Curve []core.CurvePoint
	// ShardStats holds the per-shard counter breakdown of a sharded
	// campaign; nil for single-instance runs.
	ShardStats []core.Stats
	// PlanHits, PlanMisses, PlanEvictions and SharedPlanHits are the
	// flow-plan cache counters accumulated by this run alone (summed
	// across shard clones for sharded campaigns).
	PlanHits       int64
	PlanMisses     int64
	PlanEvictions  int64
	SharedPlanHits int64
	// Progress is the campaign's virtual-time progress series, present
	// when YarrpOptions.Progress or Telemetry was set.
	Progress []ProgressPoint
	// Telemetry is the registry snapshot taken at run end, present when
	// YarrpOptions.Telemetry was set.
	Telemetry TelemetrySnapshot
	// Quarantined lists campaign shards whose connections failed fatally
	// mid-run (e.g. an injected crash) and had their remaining
	// permutation range re-sharded onto recovery probers; Incomplete
	// lists any index ranges recovery could not finish. Both are empty
	// on a clean run.
	Quarantined []int
	Incomplete  []core.PermRange
	// Checkpoint is the serialized resume artifact of an interrupted
	// campaign, set when the run stopped at YarrpOptions.InterruptAt.
	// Feed it to Vantage.ResumeYarrp6 to finish the campaign with
	// byte-identical results.
	Checkpoint []byte
	// Epochs holds the per-epoch breakdown of an adaptive run
	// (YarrpOptions.Adaptive): targets generated, window placement, and
	// the cumulative interface count at each boundary. Nil for static
	// campaigns.
	Epochs []core.EpochStats

	store   *probe.Store
	graph   *graph.Graph
	vantage string
	proto   uint8
}

// NumInterfaces returns the count of unique router interface addresses
// discovered (sources of ICMPv6 Time Exceeded).
func (r *Result) NumInterfaces() int { return r.store.NumInterfaces() }

// Interfaces returns the discovered interface addresses.
func (r *Result) Interfaces() []netip.Addr { return r.store.Interfaces() }

// Path returns the traced path toward target as (ttl, address) hops in
// TTL order.
func (r *Result) Path(target netip.Addr) []probe.HopEntry {
	t := r.store.Trace(target)
	if t == nil {
		return nil
	}
	return t.SortedHops()
}

// Reached reports whether the target itself responded.
func (r *Result) Reached(target netip.Addr) bool {
	t := r.store.Trace(target)
	return t != nil && t.Reached
}

// Discovered reports whether addr was seen as a router interface
// address, without materializing the interface slice.
func (r *Result) Discovered(addr netip.Addr) bool { return r.store.AddrSeen(addr) }

// Store exposes the underlying result store for analysis.
func (r *Result) Store() *probe.Store { return r.store }

// Graph returns the campaign's interface-level topology graph. With
// YarrpOptions.Graph it is the streaming graph built during the run
// (shard subgraphs already merged); otherwise it is batch-built from
// the trace store on first call and cached — the two constructions are
// equivalent. The graph supports canonical NDJSON/DOT export, router
// collapse against alias-detection results, and cross-vantage union via
// UnionGraphs.
func (r *Result) Graph() *graph.Graph {
	if r.graph == nil {
		r.graph = graph.FromStore(r.store, r.vantage, r.proto)
	}
	return r.graph
}

// UnionGraphs folds campaign graphs from any number of vantages (or
// protocols) into one topology graph. The merge is commutative and
// shard-safe; inputs are not modified.
func UnionGraphs(gs ...*graph.Graph) *graph.Graph { return graph.Union(gs...) }

// CollapseGraph folds a graph's interfaces into router nodes using
// detected aliased prefixes: every interface beneath one aliased prefix
// becomes a single router. aliases may be nil, making the collapse the
// identity.
func CollapseGraph(g *graph.Graph, aliases *AliasSet) *graph.RouterGraph {
	var st *alias.Store
	if aliases != nil {
		st = aliases.res.Aliased
	}
	return g.Collapse(graph.StoreResolver(st))
}

// RunYarrp6 probes targets with the randomized stateless prober. With
// opt.Shards > 1 the permutation domain is split across that many
// concurrent prober instances, each on its own cloned vantage
// connection, replaying the single-instance virtual schedule in a
// fraction of the wall time (see YarrpOptions.Shards for the exact
// equivalence guarantee). With opt.Adaptive the targets are instead the
// generator's seed observations and the campaign grows its own domain
// epoch by epoch (see AdaptiveOptions).
func (v *Vantage) RunYarrp6(targets []netip.Addr, opt YarrpOptions) (*Result, error) {
	if opt.Adaptive != nil {
		return v.runAdaptive(targets, opt)
	}
	proto, err := transportProto(opt.Transport)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Targets: targets,
		PPS:     opt.Rate,
		MaxTTL:  uint8(opt.MaxTTL),
		Proto:   proto,
		Key:     opt.Key,
		Fill:    opt.Fill,
		Batch:   opt.Batch,
	}
	vsBefore := v.v.Stats
	var simBefore netsim.SimStats
	if opt.Telemetry != nil {
		simBefore = v.in.u.StatsSnapshot()
	}
	// Telemetry and progress streaming run on the campaign engine even
	// for a single instance: its sampling grid is what makes the series
	// deterministic across shard and batch settings.
	if opt.Shards > 1 || opt.Telemetry != nil || opt.Progress != nil || opt.InterruptAt > 0 {
		shards := opt.Shards
		if shards < 1 {
			shards = 1
		}
		epoch := v.clk
		// With streaming graph construction, every shard folds replies
		// into its own subgraph; the subgraphs merge after the run into
		// exactly the graph one unsharded prober would have built.
		var builders []*graph.Graph
		ccfg := core.CampaignConfig{
			Config:      cfg,
			Shards:      shards,
			RecordPaths: true,
			Telemetry:   opt.Telemetry,
			InterruptAt: opt.InterruptAt,
		}
		if opt.Progress != nil || opt.Telemetry != nil {
			ccfg.Progress = &core.ProgressConfig{
				Writer:   opt.Progress,
				PerShard: opt.ProgressPerShard,
			}
		}
		if opt.Graph {
			builders = make([]*graph.Graph, shards)
			ccfg.NewObserver = func(s int) probe.Observer {
				builders[s] = graph.New(v.v.Name())
				return builders[s]
			}
		}
		var clones []*netsim.Vantage
		var factory core.ConnFactory
		if shards > 1 {
			v.v.BeginShardGroup()
			factory = func(_ int, start time.Duration) probe.Conn {
				nv := v.v.Clone(epoch + start)
				clones = append(clones, nv)
				return nv
			}
		} else {
			// A lone campaign shard owns the whole window; probing on
			// the vantage's own connection keeps the plan cache (and
			// its counters) where direct serial runs leave them.
			factory = func(_ int, _ time.Duration) probe.Conn { return v.v }
		}
		camp := core.NewCampaign(ccfg, factory)
		store, stats, err := camp.Run()
		interrupted := errors.Is(err, core.ErrInterrupted)
		if err != nil && !interrupted {
			return nil, err
		}
		if shards > 1 {
			// The serial path drives v's own clock through the campaign;
			// mirror that here so follow-up operations on this vantage
			// see the same virtual time at any shard count. The
			// vantage's own timeline advances with it — never from
			// another vantage's concurrent activity on the shared clock.
			v.v.Sleep(stats.Elapsed)
			v.clk = epoch + stats.Elapsed
		} else {
			v.clk = v.v.Now()
		}
		var g *graph.Graph
		if opt.Graph {
			g = graph.Union(builders...)
		}
		res := &Result{
			ProbesSent:  stats.ProbesSent,
			Fills:       stats.Fills,
			Replies:     stats.Replies,
			Elapsed:     stats.Elapsed,
			Curve:       stats.Curve,
			ShardStats:  stats.PerShard,
			Progress:    stats.Progress,
			Quarantined: stats.Quarantined,
			Incomplete:  stats.Incomplete,
			store:       store,
			graph:       g,
			vantage:     v.v.Name(),
			proto:       proto,
		}
		res.setPlanStats(v, vsBefore, clones)
		if opt.Telemetry != nil {
			v.publishRunTelemetry(opt.Telemetry, simBefore, res)
			res.Telemetry = opt.Telemetry.Snapshot()
		}
		if interrupted {
			art, cerr := camp.Checkpoint()
			if cerr != nil {
				return nil, cerr
			}
			res.Checkpoint = art
			return res, err
		}
		return res, nil
	}
	var g *graph.Graph
	if opt.Graph {
		g = graph.New(v.v.Name())
		cfg.Observer = g
	}
	store := probe.NewStore(true)
	stats, err := core.New(v.v, cfg).Run(store)
	if err != nil {
		return nil, err
	}
	v.clk = v.v.Now()
	res := &Result{
		ProbesSent: stats.ProbesSent,
		Fills:      stats.Fills,
		Replies:    stats.Replies,
		Elapsed:    stats.Elapsed,
		Curve:      stats.Curve,
		store:      store,
		graph:      g,
		vantage:    v.v.Name(),
		proto:      proto,
	}
	res.setPlanStats(v, vsBefore, nil)
	return res, nil
}

// ResumeYarrp6 resumes an interrupted campaign from the checkpoint
// artifact a previous run's Result.Checkpoint carried, and runs it to
// completion (or to opt.InterruptAt again — checkpoints compose). The
// artifact pins the campaign configuration; of opt only Telemetry,
// Progress, ProgressPerShard, and InterruptAt apply (plus Adaptive for
// adaptive artifacts, which must carry the original seed set in
// Adaptive.Seeds). Resumed on an identically-seeded Internet replayed
// to the same virtual instant, the finished campaign is byte-identical
// — store, graph, progress stream, discovery curve — to one that was
// never interrupted: router token-bucket levels ride in the artifact,
// so even rate-limiters saturated across the interrupt instant replay
// exactly. The resumed run's Result.Graph() is batch-built from the
// trace store (streaming observers cannot see pre-interrupt replies;
// the two constructions are equivalent).
func (v *Vantage) ResumeYarrp6(artifact []byte, opt YarrpOptions) (*Result, error) {
	if core.IsAdaptiveCheckpoint(artifact) {
		return v.resumeAdaptive(artifact, opt)
	}
	vsBefore := v.v.Stats
	var simBefore netsim.SimStats
	if opt.Telemetry != nil {
		simBefore = v.in.u.StatsSnapshot()
	}
	var clones []*netsim.Vantage
	var camp *core.Campaign
	v.v.BeginShardGroup()
	factory := func(_ int, start time.Duration) probe.Conn {
		// The artifact's epoch anchors the original absolute schedule;
		// clones must reopen at those instants for the keyed per-packet
		// draws to replay.
		nv := v.v.Clone(camp.Epoch() + start)
		clones = append(clones, nv)
		return nv
	}
	camp, err := core.Resume(artifact, core.ResumeConfig{
		Telemetry:        opt.Telemetry,
		ProgressWriter:   opt.Progress,
		ProgressPerShard: opt.ProgressPerShard,
		InterruptAt:      opt.InterruptAt,
	}, factory)
	if err != nil {
		return nil, err
	}
	store, stats, err := camp.Run()
	interrupted := errors.Is(err, core.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	v.v.Sleep(stats.Elapsed)
	v.clk = camp.Epoch() + stats.Elapsed
	res := &Result{
		ProbesSent:  stats.ProbesSent,
		Fills:       stats.Fills,
		Replies:     stats.Replies,
		Elapsed:     stats.Elapsed,
		Curve:       stats.Curve,
		ShardStats:  stats.PerShard,
		Progress:    stats.Progress,
		Quarantined: stats.Quarantined,
		Incomplete:  stats.Incomplete,
		store:       store,
		vantage:     v.v.Name(),
		proto:       camp.Proto(),
	}
	res.setPlanStats(v, vsBefore, clones)
	if opt.Telemetry != nil {
		v.publishRunTelemetry(opt.Telemetry, simBefore, res)
		res.Telemetry = opt.Telemetry.Snapshot()
	}
	if interrupted {
		art, cerr := camp.Checkpoint()
		if cerr != nil {
			return nil, cerr
		}
		res.Checkpoint = art
		return res, err
	}
	return res, nil
}

// runAdaptive executes a closed-loop adaptive campaign: seeds build a
// gen6prob source, and the core adaptive engine alternates sharded
// probing epochs with trie re-weighting and boundary alias detection.
func (v *Vantage) runAdaptive(seeds []netip.Addr, opt YarrpOptions) (*Result, error) {
	proto, err := transportProto(opt.Transport)
	if err != nil {
		return nil, err
	}
	if opt.Progress != nil {
		return nil, fmt.Errorf("beholder: progress streaming is unsupported under adaptive generation")
	}
	ao := *opt.Adaptive
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	vsBefore := v.v.Stats
	var simBefore netsim.SimStats
	if opt.Telemetry != nil {
		simBefore = v.in.u.StatsSnapshot()
	}
	src := gen6prob.New(seeds, gen6prob.Config{Key: opt.Key})
	acfg := core.AdaptiveConfig{
		CampaignConfig: core.CampaignConfig{
			Config: core.Config{
				PPS:    opt.Rate,
				MaxTTL: uint8(opt.MaxTTL),
				Proto:  proto,
				Key:    opt.Key,
				Fill:   opt.Fill,
				Batch:  opt.Batch,
			},
			Shards:      shards,
			RecordPaths: true,
			Telemetry:   opt.Telemetry,
			InterruptAt: opt.InterruptAt,
		},
		Source:        src,
		Budget:        ao.Budget,
		EpochTargets:  ao.EpochTargets,
		MaxEpochs:     ao.MaxEpochs,
		DetectAliases: v.adaptiveAliasHook(ao.AliasMinHits),
	}
	epoch := v.clk
	v.v.BeginShardGroup()
	var clones []*netsim.Vantage
	camp := core.NewAdaptive(acfg, func(_ int, start time.Duration) probe.Conn {
		nv := v.v.Clone(epoch + start)
		clones = append(clones, nv)
		return nv
	})
	store, astats, err := camp.Run()
	interrupted := errors.Is(err, core.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	v.v.Sleep(astats.Elapsed)
	v.clk = epoch + astats.Elapsed
	res := v.adaptiveResult(store, astats, proto)
	res.setPlanStats(v, vsBefore, clones)
	if opt.Telemetry != nil {
		v.publishRunTelemetry(opt.Telemetry, simBefore, res)
		res.Telemetry = opt.Telemetry.Snapshot()
	}
	if interrupted {
		art, cerr := camp.Checkpoint()
		if cerr != nil {
			return nil, cerr
		}
		res.Checkpoint = art
		return res, err
	}
	return res, nil
}

// resumeAdaptive continues an interrupted adaptive campaign: the
// generator is rebuilt from opt.Adaptive.Seeds, its state restored from
// the artifact, and the run picks up mid-epoch or mid-adaptation
// exactly where it stopped.
func (v *Vantage) resumeAdaptive(artifact []byte, opt YarrpOptions) (*Result, error) {
	if opt.Adaptive == nil || len(opt.Adaptive.Seeds) == 0 {
		return nil, fmt.Errorf("beholder: adaptive checkpoint: set YarrpOptions.Adaptive.Seeds to the original seed observations")
	}
	if opt.Progress != nil {
		return nil, fmt.Errorf("beholder: progress streaming is unsupported under adaptive generation")
	}
	ao := *opt.Adaptive
	info, err := core.InspectCheckpoint(artifact)
	if err != nil {
		return nil, err
	}
	vsBefore := v.v.Stats
	var simBefore netsim.SimStats
	if opt.Telemetry != nil {
		simBefore = v.in.u.StatsSnapshot()
	}
	// The artifact pins the permutation key; the generator's sampler is
	// keyed identically so its restored counter replays the same draws.
	src := gen6prob.New(ao.Seeds, gen6prob.Config{Key: info.Key})
	v.v.BeginShardGroup()
	var clones []*netsim.Vantage
	var camp *core.AdaptiveCampaign
	camp, err = core.ResumeAdaptive(artifact, core.AdaptiveResumeConfig{
		Source:        src,
		DetectAliases: v.adaptiveAliasHook(ao.AliasMinHits),
		Telemetry:     opt.Telemetry,
		InterruptAt:   opt.InterruptAt,
	}, func(_ int, start time.Duration) probe.Conn {
		nv := v.v.Clone(camp.Epoch() + start)
		clones = append(clones, nv)
		return nv
	})
	if err != nil {
		return nil, err
	}
	store, astats, err := camp.Run()
	interrupted := errors.Is(err, core.ErrInterrupted)
	if err != nil && !interrupted {
		return nil, err
	}
	v.v.Sleep(astats.Elapsed)
	v.clk = camp.Epoch() + astats.Elapsed
	res := v.adaptiveResult(store, astats, info.Proto)
	res.setPlanStats(v, vsBefore, clones)
	if opt.Telemetry != nil {
		v.publishRunTelemetry(opt.Telemetry, simBefore, res)
		res.Telemetry = opt.Telemetry.Snapshot()
	}
	if interrupted {
		art, cerr := camp.Checkpoint()
		if cerr != nil {
			return nil, cerr
		}
		res.Checkpoint = art
		return res, err
	}
	return res, nil
}

// adaptiveResult assembles a Result from an adaptive run's merged store
// and statistics.
func (v *Vantage) adaptiveResult(store *probe.Store, astats core.AdaptiveStats, proto uint8) *Result {
	return &Result{
		ProbesSent: astats.ProbesSent,
		Fills:      astats.Fills,
		Replies:    astats.Replies,
		Elapsed:    astats.Elapsed,
		Curve:      astats.Curve,
		Epochs:     astats.Epochs,
		store:      store,
		vantage:    v.v.Name(),
		proto:      proto,
	}
}

// adaptiveAliasHook builds the between-epoch alias-detection hook:
// candidate /64s whose targets all answered are probed with the APD
// scheme on a private boundary clone. The clone owns its clock, token
// buckets, and plan cache, so the verdicts are a pure function of
// (universe seed, epoch, candidates) — deterministic at any shard count
// — and the campaign schedule is undisturbed. A negative minHits
// disables detection.
func (v *Vantage) adaptiveAliasHook(minHits int) func(int, *probe.Store) []netip.Prefix {
	if minHits < 0 {
		return nil
	}
	if minHits == 0 {
		minHits = 1
	}
	return func(epoch int, store *probe.Store) []netip.Prefix {
		cands := gen6prob.AliasCandidates(store, minHits)
		if len(cands) == 0 {
			return nil
		}
		nv := v.v.Clone(0)
		nv.SetPlanCache(0)
		det := alias.NewDetector(nv, alias.DefaultParams())
		rng := rand.New(rand.NewSource(v.in.seed ^ int64(epoch+1)*0xa11a5))
		return det.Detect(cands, rng).Aliased.Prefixes()
	}
}

// setPlanStats fills the result's flow-plan cache counters: the parent
// vantage's delta over the run plus, for sharded campaigns, the shard
// clones' whole-life counters (clones are born zeroed and die with the
// run).
func (r *Result) setPlanStats(v *Vantage, before netsim.VantageStats, clones []*netsim.Vantage) {
	after := v.v.Stats
	r.PlanHits = after.PlanHits - before.PlanHits
	r.PlanMisses = after.PlanMisses - before.PlanMisses
	r.PlanEvictions = after.PlanEvictions - before.PlanEvictions
	r.SharedPlanHits = after.SharedPlanHits - before.SharedPlanHits
	for _, c := range clones {
		r.PlanHits += c.Stats.PlanHits
		r.PlanMisses += c.Stats.PlanMisses
		r.PlanEvictions += c.Stats.PlanEvictions
		r.SharedPlanHits += c.Stats.SharedPlanHits
	}
}

// publishRunTelemetry folds the facade-level counters of one finished
// campaign into the registry: simulator event deltas, flow-plan cache
// outcomes, and store/graph discovery figures.
func (v *Vantage) publishRunTelemetry(reg *TelemetryRegistry, simBefore netsim.SimStats, res *Result) {
	sim := v.in.u.StatsSnapshot().Sub(simBefore)
	add := func(name string, n int64) { reg.Counter(name).Add(n) }
	add("sim_packets_routed_total", sim.PacketsRouted)
	add("sim_time_exceeded_sent_total", sim.TimeExceededSent)
	add("sim_rate_limit_dropped_total", sim.RateLimitDropped)
	add("sim_unresponsive_drops_total", sim.UnresponsiveDrops)
	add("sim_errors_sent_total", sim.ErrorsSent)
	add("sim_echo_replies_sent_total", sim.EchoRepliesSent)
	add("sim_tcp_rsts_sent_total", sim.TCPRstsSent)
	add("sim_port_unreach_sent_total", sim.PortUnreachSent)
	add("sim_loss_dropped_total", sim.LossDropped)
	add("sim_filtered_drops_total", sim.FilteredDrops)
	add("sim_fault_crash_denials_total", sim.FaultCrashDenials)
	add("sim_fault_stall_drops_total", sim.FaultStallDrops)
	add("sim_fault_transient_errs_total", sim.FaultTransientErrs)
	add("sim_fault_truncated_total", sim.FaultTruncated)
	add("sim_fault_corrupted_total", sim.FaultCorrupted)
	add("sim_fault_delayed_total", sim.FaultDelayed)
	add("plan_cache_hits_total", res.PlanHits)
	add("plan_cache_misses_total", res.PlanMisses)
	add("plan_cache_evictions_total", res.PlanEvictions)
	add("shared_plan_hits_total", res.SharedPlanHits)
	reg.Gauge("store_unique_interfaces").Set(int64(res.store.NumInterfaces()))
	reg.Gauge("store_traces").Set(int64(res.store.NumTraces()))
	if res.graph != nil {
		reg.Gauge("graph_nodes").Set(int64(res.graph.NumNodes()))
		reg.Gauge("graph_edges").Set(int64(res.graph.NumEdges()))
	}
	if res.ProbesSent > 0 {
		reg.Gauge("discovery_per_probe_ppm").Set(int64(res.store.NumInterfaces()) * 1_000_000 / res.ProbesSent)
	}
}

// SequentialOptions parameterizes the scamper-like baseline.
type SequentialOptions struct {
	Rate   float64
	MaxTTL int
	Window int
	// Telemetry, when non-nil, receives the run's trace_* counters.
	Telemetry *TelemetryRegistry
}

// RunSequential probes targets with the stateful sequential baseline
// (per-destination increasing TTL, ICMP-Paris semantics).
func (v *Vantage) RunSequential(targets []netip.Addr, opt SequentialOptions) *Result {
	store := probe.NewStore(true)
	ecfg := trace.EngineConfig{PPS: opt.Rate, Window: opt.Window}
	if opt.Telemetry != nil {
		ecfg.Telemetry = opt.Telemetry.NewShard()
	}
	s := trace.NewSequential(v.v, trace.SequentialConfig{
		Engine: ecfg,
		MaxTTL: uint8(opt.MaxTTL),
	})
	stats := s.Run(targets, store)
	v.clk = v.v.Now()
	return &Result{ProbesSent: stats.ProbesSent, Elapsed: stats.Elapsed, store: store,
		vantage: v.v.Name(), proto: wire.ProtoICMPv6}
}

// DoubletreeOptions parameterizes the Doubletree baseline.
type DoubletreeOptions struct {
	Rate     float64
	StartTTL int
	MaxTTL   int
	Window   int
	// Telemetry, when non-nil, receives the run's trace_* counters
	// (including trace_stopset_hits_total).
	Telemetry *TelemetryRegistry
}

// RunDoubletree probes targets with Doubletree's forward/backward
// stop-set algorithm.
func (v *Vantage) RunDoubletree(targets []netip.Addr, opt DoubletreeOptions) *Result {
	store := probe.NewStore(true)
	ecfg := trace.EngineConfig{PPS: opt.Rate, Window: opt.Window}
	if opt.Telemetry != nil {
		ecfg.Telemetry = opt.Telemetry.NewShard()
	}
	d := trace.NewDoubletree(v.v, trace.DoubletreeConfig{
		Engine:   ecfg,
		StartTTL: uint8(opt.StartTTL),
		MaxTTL:   uint8(opt.MaxTTL),
	})
	stats := d.Run(targets, store)
	v.clk = v.v.Now()
	return &Result{ProbesSent: stats.ProbesSent, Elapsed: stats.Elapsed, store: store,
		vantage: v.v.Name(), proto: wire.ProtoICMPv6}
}

// Subnet is one inferred subnet candidate.
type Subnet struct {
	Prefix netip.Prefix
	MinLen int
	IAHack bool
}

// DiscoverSubnets runs Section 6's path-divergence inference plus the
// /64 IA hack over a campaign's traces, returning candidates and the
// count of traces pinned to exact /64s.
func (v *Vantage) DiscoverSubnets(r *Result) ([]Subnet, int) {
	res := subnet.Discover(r.store, v.in.u.Table(), v.v.AS().ASN, subnet.DefaultParams())
	out := make([]Subnet, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = Subnet{Prefix: c.Prefix, MinLen: c.MinLen, IAHack: c.IAHack}
	}
	return out, res.IAHackCount
}

// AliasOptions parameterizes aliased-prefix detection (APD) through the
// facade. Zero values select the library defaults.
type AliasOptions struct {
	Probes     int     // random IIDs probed per candidate prefix (default 8)
	MinReplies int     // replies classifying a candidate aliased (default: majority)
	Rate       float64 // probing rate in pps (default 1000)
	Budget     int64   // total probe cap (0 = unlimited)
	// Telemetry, when non-nil, receives the run's apd_* counters.
	Telemetry *TelemetryRegistry
}

// AliasSet is a detected aliased-prefix list together with its probing
// cost, produced by Vantage.DetectAliases.
type AliasSet struct {
	res *alias.Result
}

// Prefixes returns the detected aliased prefixes in address order.
func (a *AliasSet) Prefixes() []netip.Prefix { return a.res.Aliased.Prefixes() }

// Contains reports whether addr falls beneath a detected aliased prefix.
func (a *AliasSet) Contains(addr netip.Addr) bool { return a.res.Aliased.Contains(addr) }

// Len returns the number of detected aliased prefixes.
func (a *AliasSet) Len() int { return a.res.Aliased.Len() }

// ProbesSent returns the detection campaign's probe cost.
func (a *AliasSet) ProbesSent() int64 { return a.res.ProbesSent }

// Tested returns the number of candidate prefixes probed.
func (a *AliasSet) Tested() int { return a.res.Tested }

// Skipped returns the number of candidates left unprobed by the budget.
func (a *AliasSet) Skipped() int { return a.res.Skipped }

// Store exposes the underlying alias store for direct library use.
func (a *AliasSet) Store() *alias.Store { return a.res.Aliased }

// AliasCandidates derives the unique covering /64s of targets — the
// candidate prefixes DetectAliases probes.
func AliasCandidates(targets []netip.Addr) []netip.Prefix {
	return alias.Candidates(ipv6.NewSet(targets), 64)
}

// DetectAliases probes candidate prefixes from this vantage with the
// 6Prob-style APD scheme: random IIDs per candidate, interleaved for
// per-prefix cool-down, under an optional probe budget. Candidates
// whose random addresses answer are aliased — a middlebox, not hosts.
func (v *Vantage) DetectAliases(candidates []netip.Prefix, opt AliasOptions) *AliasSet {
	// APD probes each random address exactly once, so its flows never
	// repeat and the flow-plan cache cannot hit; run with it disabled to
	// skip the per-miss cache bookkeeping. Plans are pure functions of
	// the flow, so this changes no results.
	prev := v.v.PlanCacheSize()
	v.v.SetPlanCache(0)
	defer v.v.SetPlanCache(prev)
	params := alias.Params{
		Probes:     opt.Probes,
		MinReplies: opt.MinReplies,
		PPS:        opt.Rate,
		Budget:     opt.Budget,
		Instance:   alias.DefaultParams().Instance,
	}
	if opt.Telemetry != nil {
		params.Telemetry = opt.Telemetry.NewShard()
	}
	det := alias.NewDetector(v.v, params)
	rng := rand.New(rand.NewSource(v.in.seed ^ 0xa11a5))
	res := det.Detect(candidates, rng)
	v.clk = v.v.Now()
	return &AliasSet{res: res}
}

// DealiasStats re-exports the dealiasing summary.
type DealiasStats = alias.Stats

// DealiasTargets drops every target inside a detected aliased prefix,
// returning the cleaned list. The underlying library also offers a
// Collapse mode that keeps one representative per aliased prefix.
func DealiasTargets(targets []netip.Addr, aliases *AliasSet) ([]netip.Addr, DealiasStats) {
	kept, stats := alias.Dealias(ipv6.NewSet(targets), aliases.res.Aliased, alias.Drop)
	return kept.Addrs(), stats
}

// AliasedGroundTruth exports the simulator's true aliased /64s, up to
// perASLimit per hosting AS — the validation data real-world alias
// detection can only estimate.
func (in *Internet) AliasedGroundTruth(perASLimit int) []netip.Prefix {
	var out []netip.Prefix
	for _, as := range in.u.ASes() {
		out = append(out, in.u.TruthAliasedLANs(as, perASLimit)...)
	}
	return out
}

// FixedIID is the paper's fixed pseudo-random interface identifier used
// for target synthesis (Section 3.3).
const FixedIID = target.FixedIIDValue

// MustAddr parses an IPv6 address, panicking on error; a convenience for
// examples and tests.
func MustAddr(s string) netip.Addr { return ipv6.MustAddr(s) }

// SharedPlanHits returns how many private plan-cache misses were served
// from the campaign-shared plan-core cache instead of a fresh compute.
func (v *Vantage) SharedPlanHits() int64 { return v.v.Stats.SharedPlanHits }
