// Package beholder is a reproduction of "In the IP of the Beholder:
// Strategies for Active IPv6 Topology Discovery" (Beverly, Durairajan,
// Plonka, Rohrer — IMC 2018) as a reusable Go library.
//
// It provides Yarrp6 — the paper's stateless randomized high-speed IPv6
// topology prober — together with every substrate the study needs: a
// packet-level simulated IPv6 internetwork with RFC 4443 ICMPv6 rate
// limiting (standing in for the live Internet and a native vantage
// point), the seven seed-list sources and the three-step target
// generation pipeline, the sequential and Doubletree baseline probers,
// and the Section 6 subnet-inference algorithms.
//
// The top-level API wraps those pieces for application use; the
// Experiments type regenerates every table and figure in the paper's
// evaluation. See README.md for a tour and DESIGN.md for the system
// inventory.
package beholder

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"beholder/internal/alias"
	"beholder/internal/core"
	"beholder/internal/graph"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/seeds"
	"beholder/internal/subnet"
	"beholder/internal/target"
	"beholder/internal/trace"
	"beholder/internal/wire"
)

// Internet is a deterministic simulated IPv6 internetwork: the study's
// measurement substrate. All campaigns run against it in virtual time,
// so a day-long probing campaign completes in seconds while exhibiting
// the same rate-limiting dynamics.
type Internet struct {
	u    *netsim.Universe
	seed int64
}

// NewInternet creates a campaign-scale internetwork (about 1200
// autonomous systems).
func NewInternet(seed int64) *Internet {
	return &Internet{u: netsim.NewUniverse(netsim.DefaultConfig(seed)), seed: seed}
}

// NewSmallInternet creates a small internetwork suitable for tests and
// quick demonstrations (about 120 autonomous systems).
func NewSmallInternet(seed int64) *Internet {
	return &Internet{u: netsim.NewUniverse(netsim.TestConfig(seed)), seed: seed}
}

// NumASes returns the autonomous system count.
func (in *Internet) NumASes() int { return len(in.u.ASes()) }

// NumPrefixes returns the advertised BGP prefix count.
func (in *Internet) NumPrefixes() int { return in.u.Table().NumPrefixes() }

// Reset restores pristine router state (token buckets, clock) while
// keeping the topology, as between the paper's trial days.
func (in *Internet) Reset() { in.u.ResetState() }

// Universe exposes the underlying simulator for advanced use.
func (in *Internet) Universe() *netsim.Universe { return in.u }

// SeedLists generates every seed source at the given scale (1.0 is
// campaign scale). The result maps the paper's list names (caida,
// fiebig, fdns_any, dnsdb, cdn-k32, cdn-k256, 6gen, tum, random) to
// their contents.
func (in *Internet) SeedLists(scale float64) map[string]seeds.List {
	lists, _ := seeds.All(in.u, in.seed, seeds.Scale(scale))
	return lists
}

// TargetSet runs the three-step target generation pipeline for one seed
// source: seeds → zn prefix transformation → IID synthesis. synth is one
// of "lowbyte1", "fixediid", "randomiid", "known".
func (in *Internet) TargetSet(seedName string, zn int, synth string, scale float64) ([]netip.Addr, error) {
	lists := in.SeedLists(scale)
	list, ok := lists[seedName]
	if !ok {
		return nil, fmt.Errorf("beholder: unknown seed list %q", seedName)
	}
	var method target.Synth
	switch synth {
	case "lowbyte1":
		method = target.LowByte1
	case "fixediid":
		method = target.FixedIID
	case "randomiid":
		method = target.RandomIID
	case "known":
		method = target.Known
	default:
		return nil, fmt.Errorf("beholder: unknown synthesis %q", synth)
	}
	rng := rand.New(rand.NewSource(in.seed))
	set := target.Build(list, target.Spec{SeedName: seedName, ZN: zn, Synth: method}, rng)
	return set.Targets.Addrs(), nil
}

// GroundTruthSubnets exports the simulator's true subnet plan for up to
// limit subnets per AS with prefix length at most maxBits — the
// validation data Section 6 could only approximate on the real Internet.
func (in *Internet) GroundTruthSubnets(maxBits, perASLimit int) []netip.Prefix {
	var out []netip.Prefix
	for _, as := range in.u.ASes() {
		if as.Tier != 3 {
			continue
		}
		out = append(out, in.u.TruthSubnets(as, maxBits, perASLimit)...)
	}
	return out
}

// Vantage is a measurement host inside the internetwork.
type Vantage struct {
	in *Internet
	v  *netsim.Vantage

	// clk tracks this vantage's own campaign timeline. Vantages created
	// on one universe share the underlying simulator clock (the
	// single-prober regime); a sharded campaign's shard clones get
	// private clocks opened relative to the campaign epoch, and that
	// epoch must not depend on what OTHER vantages concurrently did to
	// the shared clock — per-packet draws are keyed on absolute virtual
	// send time, so a racing epoch read would make results depend on
	// goroutine scheduling. For a lone vantage, clk equals the shared
	// clock at every point the old Now()-read did, so behaviour is
	// unchanged; for concurrent vantages it pins each family's schedule
	// deterministically.
	clk time.Duration
}

// NewVantage attaches a vantage by name. Names map deterministically to
// host networks; the same name always lands in the same AS.
func (in *Internet) NewVantage(name string) *Vantage {
	return in.NewVantageAt(name, "university", 4)
}

// NewVantageAt attaches a vantage to an AS of the given kind
// ("university", "hosting", "eyeball", "enterprise", "transit") with the
// given on-premise access path length.
func (in *Internet) NewVantageAt(name, kind string, chainLen int) *Vantage {
	var k netsim.ASKind
	switch kind {
	case "university":
		k = netsim.KindUniversity
	case "hosting":
		k = netsim.KindHosting
	case "eyeball":
		k = netsim.KindEyeballISP
	case "enterprise":
		k = netsim.KindEnterprise
	default:
		k = netsim.KindTransit
	}
	nv := in.u.NewVantage(netsim.VantageSpec{Name: name, Kind: k, ChainLen: chainLen})
	return &Vantage{in: in, v: nv, clk: nv.Now()}
}

// Addr returns the vantage's probing source address.
func (v *Vantage) Addr() netip.Addr { return v.v.LocalAddr() }

// Conn exposes the vantage as a probe connection for direct prober use.
func (v *Vantage) Conn() probe.Conn { return v.v }

// SetPlanCache resizes this vantage's flow-plan cache (entries <= 0
// disables it). The cache memoizes the simulator's per-flow path plans —
// pure functions of the universe seed and flow identity — so results are
// byte-identical at any setting; the knob trades memory for probing
// speed. See DESIGN.md "The packet fast path".
func (v *Vantage) SetPlanCache(entries int) { v.v.SetPlanCache(entries) }

// PlanCacheStats returns the vantage's flow-plan cache hit/miss counters.
func (v *Vantage) PlanCacheStats() (hits, misses int64) {
	return v.v.Stats.PlanHits, v.v.Stats.PlanMisses
}

// YarrpOptions parameterizes a Yarrp6 campaign through the facade.
type YarrpOptions struct {
	Rate      float64 // packets per second (default 1000)
	MaxTTL    int     // default 16
	Transport string  // "icmp6" (default), "udp", "tcp"
	Fill      bool    // enable fill mode
	Key       uint64  // permutation key
	// Shards splits the permutation domain across this many concurrent
	// Yarrp6 instances (distinct Instance bytes, same key), each on its
	// own cloned vantage connection. The shards replay the exact
	// single-prober virtual schedule in parallel wall time: results are
	// deterministic at any shard count, and identical to a 1-shard run
	// except that rate-limit-saturated routers may yield a few extra
	// replies near shard-window starts (token buckets are epoch-scoped
	// per shard — see core.Campaign). Result.Curve is the global
	// discovery curve interleaved from the shard windows by virtual
	// time; the per-window curves remain in Result.ShardStats.
	// Default 1.
	Shards int
	// Batch is the probe-pipeline send-batch size: permutation draw,
	// probe build, and simulator routing are dispatched Batch probes at
	// a time. Batching never changes the virtual schedule — results are
	// byte-identical at any value. Zero selects the engine default
	// (core.DefaultBatch); one disables batching.
	Batch int
	// Graph enables streaming topology-graph construction: an observer
	// on the prober (one per shard) folds every reply into the
	// interface-level multigraph while the campaign runs, so
	// Result.Graph() costs nothing extra at any store size. Without it,
	// Result.Graph() falls back to a post-hoc batch build over the
	// trace store — same graph, but a full store scan.
	Graph bool
}

func transportProto(name string) (uint8, error) {
	switch name {
	case "", "icmp6", "icmpv6":
		return wire.ProtoICMPv6, nil
	case "udp":
		return wire.ProtoUDP, nil
	case "tcp":
		return wire.ProtoTCP, nil
	}
	return 0, fmt.Errorf("beholder: unknown transport %q", name)
}

// Result holds a campaign's outcome.
type Result struct {
	ProbesSent int64
	Fills      int64
	Replies    int64
	Elapsed    time.Duration
	// Curve samples discovery progress. For a sharded campaign it is
	// the global curve interleaved from the per-shard windows by
	// virtual time (exact in probes and in unique-interface counts);
	// the per-window curves live in ShardStats.
	Curve []core.CurvePoint
	// ShardStats holds the per-shard counter breakdown of a sharded
	// campaign; nil for single-instance runs.
	ShardStats []core.Stats

	store   *probe.Store
	graph   *graph.Graph
	vantage string
	proto   uint8
}

// NumInterfaces returns the count of unique router interface addresses
// discovered (sources of ICMPv6 Time Exceeded).
func (r *Result) NumInterfaces() int { return r.store.NumInterfaces() }

// Interfaces returns the discovered interface addresses.
func (r *Result) Interfaces() []netip.Addr { return r.store.Interfaces() }

// Path returns the traced path toward target as (ttl, address) hops in
// TTL order.
func (r *Result) Path(target netip.Addr) []probe.HopEntry {
	t := r.store.Trace(target)
	if t == nil {
		return nil
	}
	return t.SortedHops()
}

// Reached reports whether the target itself responded.
func (r *Result) Reached(target netip.Addr) bool {
	t := r.store.Trace(target)
	return t != nil && t.Reached
}

// Discovered reports whether addr was seen as a router interface
// address, without materializing the interface slice.
func (r *Result) Discovered(addr netip.Addr) bool { return r.store.AddrSeen(addr) }

// Store exposes the underlying result store for analysis.
func (r *Result) Store() *probe.Store { return r.store }

// Graph returns the campaign's interface-level topology graph. With
// YarrpOptions.Graph it is the streaming graph built during the run
// (shard subgraphs already merged); otherwise it is batch-built from
// the trace store on first call and cached — the two constructions are
// equivalent. The graph supports canonical NDJSON/DOT export, router
// collapse against alias-detection results, and cross-vantage union via
// UnionGraphs.
func (r *Result) Graph() *graph.Graph {
	if r.graph == nil {
		r.graph = graph.FromStore(r.store, r.vantage, r.proto)
	}
	return r.graph
}

// UnionGraphs folds campaign graphs from any number of vantages (or
// protocols) into one topology graph. The merge is commutative and
// shard-safe; inputs are not modified.
func UnionGraphs(gs ...*graph.Graph) *graph.Graph { return graph.Union(gs...) }

// CollapseGraph folds a graph's interfaces into router nodes using
// detected aliased prefixes: every interface beneath one aliased prefix
// becomes a single router. aliases may be nil, making the collapse the
// identity.
func CollapseGraph(g *graph.Graph, aliases *AliasSet) *graph.RouterGraph {
	var st *alias.Store
	if aliases != nil {
		st = aliases.res.Aliased
	}
	return g.Collapse(graph.StoreResolver(st))
}

// RunYarrp6 probes targets with the randomized stateless prober. With
// opt.Shards > 1 the permutation domain is split across that many
// concurrent prober instances, each on its own cloned vantage
// connection, replaying the single-instance virtual schedule in a
// fraction of the wall time (see YarrpOptions.Shards for the exact
// equivalence guarantee).
func (v *Vantage) RunYarrp6(targets []netip.Addr, opt YarrpOptions) (*Result, error) {
	proto, err := transportProto(opt.Transport)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Targets: targets,
		PPS:     opt.Rate,
		MaxTTL:  uint8(opt.MaxTTL),
		Proto:   proto,
		Key:     opt.Key,
		Fill:    opt.Fill,
		Batch:   opt.Batch,
	}
	if opt.Shards > 1 {
		v.v.BeginShardGroup()
		epoch := v.clk
		// With streaming graph construction, every shard folds replies
		// into its own subgraph; the subgraphs merge after the run into
		// exactly the graph one unsharded prober would have built.
		var builders []*graph.Graph
		ccfg := core.CampaignConfig{
			Config:      cfg,
			Shards:      opt.Shards,
			RecordPaths: true,
		}
		if opt.Graph {
			builders = make([]*graph.Graph, opt.Shards)
			ccfg.NewObserver = func(s int) probe.Observer {
				builders[s] = graph.New(v.v.Name())
				return builders[s]
			}
		}
		camp := core.NewCampaign(ccfg, func(_ int, start time.Duration) probe.Conn {
			return v.v.Clone(epoch + start)
		})
		store, stats, err := camp.Run()
		if err != nil {
			return nil, err
		}
		// The serial path drives v's own clock through the campaign;
		// mirror that here so follow-up operations on this vantage see
		// the same virtual time at any shard count. The vantage's own
		// timeline advances with it — never from another vantage's
		// concurrent activity on the shared clock.
		v.v.Sleep(stats.Elapsed)
		v.clk = epoch + stats.Elapsed
		var g *graph.Graph
		if opt.Graph {
			g = graph.Union(builders...)
		}
		return &Result{
			ProbesSent: stats.ProbesSent,
			Fills:      stats.Fills,
			Replies:    stats.Replies,
			Elapsed:    stats.Elapsed,
			Curve:      stats.Curve,
			ShardStats: stats.PerShard,
			store:      store,
			graph:      g,
			vantage:    v.v.Name(),
			proto:      proto,
		}, nil
	}
	var g *graph.Graph
	if opt.Graph {
		g = graph.New(v.v.Name())
		cfg.Observer = g
	}
	store := probe.NewStore(true)
	stats, err := core.New(v.v, cfg).Run(store)
	if err != nil {
		return nil, err
	}
	v.clk = v.v.Now()
	return &Result{
		ProbesSent: stats.ProbesSent,
		Fills:      stats.Fills,
		Replies:    stats.Replies,
		Elapsed:    stats.Elapsed,
		Curve:      stats.Curve,
		store:      store,
		graph:      g,
		vantage:    v.v.Name(),
		proto:      proto,
	}, nil
}

// SequentialOptions parameterizes the scamper-like baseline.
type SequentialOptions struct {
	Rate   float64
	MaxTTL int
	Window int
}

// RunSequential probes targets with the stateful sequential baseline
// (per-destination increasing TTL, ICMP-Paris semantics).
func (v *Vantage) RunSequential(targets []netip.Addr, opt SequentialOptions) *Result {
	store := probe.NewStore(true)
	s := trace.NewSequential(v.v, trace.SequentialConfig{
		Engine: trace.EngineConfig{PPS: opt.Rate, Window: opt.Window},
		MaxTTL: uint8(opt.MaxTTL),
	})
	stats := s.Run(targets, store)
	v.clk = v.v.Now()
	return &Result{ProbesSent: stats.ProbesSent, Elapsed: stats.Elapsed, store: store,
		vantage: v.v.Name(), proto: wire.ProtoICMPv6}
}

// DoubletreeOptions parameterizes the Doubletree baseline.
type DoubletreeOptions struct {
	Rate     float64
	StartTTL int
	MaxTTL   int
	Window   int
}

// RunDoubletree probes targets with Doubletree's forward/backward
// stop-set algorithm.
func (v *Vantage) RunDoubletree(targets []netip.Addr, opt DoubletreeOptions) *Result {
	store := probe.NewStore(true)
	d := trace.NewDoubletree(v.v, trace.DoubletreeConfig{
		Engine:   trace.EngineConfig{PPS: opt.Rate, Window: opt.Window},
		StartTTL: uint8(opt.StartTTL),
		MaxTTL:   uint8(opt.MaxTTL),
	})
	stats := d.Run(targets, store)
	v.clk = v.v.Now()
	return &Result{ProbesSent: stats.ProbesSent, Elapsed: stats.Elapsed, store: store,
		vantage: v.v.Name(), proto: wire.ProtoICMPv6}
}

// Subnet is one inferred subnet candidate.
type Subnet struct {
	Prefix netip.Prefix
	MinLen int
	IAHack bool
}

// DiscoverSubnets runs Section 6's path-divergence inference plus the
// /64 IA hack over a campaign's traces, returning candidates and the
// count of traces pinned to exact /64s.
func (v *Vantage) DiscoverSubnets(r *Result) ([]Subnet, int) {
	res := subnet.Discover(r.store, v.in.u.Table(), v.v.AS().ASN, subnet.DefaultParams())
	out := make([]Subnet, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = Subnet{Prefix: c.Prefix, MinLen: c.MinLen, IAHack: c.IAHack}
	}
	return out, res.IAHackCount
}

// AliasOptions parameterizes aliased-prefix detection (APD) through the
// facade. Zero values select the library defaults.
type AliasOptions struct {
	Probes     int     // random IIDs probed per candidate prefix (default 8)
	MinReplies int     // replies classifying a candidate aliased (default: majority)
	Rate       float64 // probing rate in pps (default 1000)
	Budget     int64   // total probe cap (0 = unlimited)
}

// AliasSet is a detected aliased-prefix list together with its probing
// cost, produced by Vantage.DetectAliases.
type AliasSet struct {
	res *alias.Result
}

// Prefixes returns the detected aliased prefixes in address order.
func (a *AliasSet) Prefixes() []netip.Prefix { return a.res.Aliased.Prefixes() }

// Contains reports whether addr falls beneath a detected aliased prefix.
func (a *AliasSet) Contains(addr netip.Addr) bool { return a.res.Aliased.Contains(addr) }

// Len returns the number of detected aliased prefixes.
func (a *AliasSet) Len() int { return a.res.Aliased.Len() }

// ProbesSent returns the detection campaign's probe cost.
func (a *AliasSet) ProbesSent() int64 { return a.res.ProbesSent }

// Tested returns the number of candidate prefixes probed.
func (a *AliasSet) Tested() int { return a.res.Tested }

// Skipped returns the number of candidates left unprobed by the budget.
func (a *AliasSet) Skipped() int { return a.res.Skipped }

// Store exposes the underlying alias store for direct library use.
func (a *AliasSet) Store() *alias.Store { return a.res.Aliased }

// AliasCandidates derives the unique covering /64s of targets — the
// candidate prefixes DetectAliases probes.
func AliasCandidates(targets []netip.Addr) []netip.Prefix {
	return alias.Candidates(ipv6.NewSet(targets), 64)
}

// DetectAliases probes candidate prefixes from this vantage with the
// 6Prob-style APD scheme: random IIDs per candidate, interleaved for
// per-prefix cool-down, under an optional probe budget. Candidates
// whose random addresses answer are aliased — a middlebox, not hosts.
func (v *Vantage) DetectAliases(candidates []netip.Prefix, opt AliasOptions) *AliasSet {
	// APD probes each random address exactly once, so its flows never
	// repeat and the flow-plan cache cannot hit; run with it disabled to
	// skip the per-miss cache bookkeeping. Plans are pure functions of
	// the flow, so this changes no results.
	prev := v.v.PlanCacheSize()
	v.v.SetPlanCache(0)
	defer v.v.SetPlanCache(prev)
	det := alias.NewDetector(v.v, alias.Params{
		Probes:     opt.Probes,
		MinReplies: opt.MinReplies,
		PPS:        opt.Rate,
		Budget:     opt.Budget,
		Instance:   alias.DefaultParams().Instance,
	})
	rng := rand.New(rand.NewSource(v.in.seed ^ 0xa11a5))
	res := det.Detect(candidates, rng)
	v.clk = v.v.Now()
	return &AliasSet{res: res}
}

// DealiasStats re-exports the dealiasing summary.
type DealiasStats = alias.Stats

// DealiasTargets drops every target inside a detected aliased prefix,
// returning the cleaned list. The underlying library also offers a
// Collapse mode that keeps one representative per aliased prefix.
func DealiasTargets(targets []netip.Addr, aliases *AliasSet) ([]netip.Addr, DealiasStats) {
	kept, stats := alias.Dealias(ipv6.NewSet(targets), aliases.res.Aliased, alias.Drop)
	return kept.Addrs(), stats
}

// AliasedGroundTruth exports the simulator's true aliased /64s, up to
// perASLimit per hosting AS — the validation data real-world alias
// detection can only estimate.
func (in *Internet) AliasedGroundTruth(perASLimit int) []netip.Prefix {
	var out []netip.Prefix
	for _, as := range in.u.ASes() {
		out = append(out, in.u.TruthAliasedLANs(as, perASLimit)...)
	}
	return out
}

// FixedIID is the paper's fixed pseudo-random interface identifier used
// for target synthesis (Section 3.3).
const FixedIID = target.FixedIIDValue

// MustAddr parses an IPv6 address, panicking on error; a convenience for
// examples and tests.
func MustAddr(s string) netip.Addr { return ipv6.MustAddr(s) }

// SharedPlanHits returns how many private plan-cache misses were served
// from the campaign-shared plan-core cache instead of a fresh compute.
func (v *Vantage) SharedPlanHits() int64 { return v.v.Stats.SharedPlanHits }
