package beholder

// Topology-graph experiments: the study's actual deliverable is a
// graph, not a probe log, and the value of another vantage point is the
// marginal topology it contributes to the union (Section 5.3's
// cross-vantage argument, restated at the graph level). GraphStudy runs
// one z64 campaign per vantage with the streaming graph observer
// attached, unions the per-vantage graphs, and collapses interfaces
// into routers against the simulator's exact aliased ground truth.

import (
	"sync"

	"beholder/internal/alias"
	"beholder/internal/analysis"
	"beholder/internal/core"
	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/target"
	"beholder/internal/wire"
)

// graphStudySeed is the target set the graph study probes: fdns_any
// carries both genuine topology and CDN-style aliased /64s, so the
// router-collapse pass has real work to do.
const graphStudySeed = "fdns_any"

// graphCampaigns runs (or fetches) one graph-observed campaign per
// vantage, in vantageSpecs order. The three campaigns probe through
// independent cloned vantages of the shared read-only universe, so they
// run concurrently with deterministic results.
func (e *Experiments) graphCampaigns() []*graph.Graph {
	e.mu.Lock()
	if e.graphs != nil {
		gs := e.graphs
		e.mu.Unlock()
		return gs
	}
	e.mu.Unlock()

	set := e.targetSet(graphStudySeed, 64, target.FixedIID)
	gs := make([]*graph.Graph, len(vantageSpecs))
	// Honor the suite-wide Workers bound the way runCampaigns does:
	// cells are independent (cloned vantages, read-only universe), so
	// the result is identical at any worker count.
	sem := make(chan struct{}, max(1, min(e.opt.Workers, len(vantageSpecs))))
	var wg sync.WaitGroup
	for i := range vantageSpecs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			v := e.in.u.NewVantage(netsim.VantageSpec{
				Name:     vantageSpecs[i].name,
				Kind:     vantageSpecs[i].kind,
				ChainLen: vantageSpecs[i].chain,
			}).Clone(0)
			g := graph.New(vantageSpecs[i].name)
			store := probe.NewStore(true)
			y := core.New(v, core.Config{
				Targets:  set.Targets.Addrs(),
				PPS:      e.opt.Rate,
				MaxTTL:   16,
				Proto:    wire.ProtoICMPv6,
				Key:      uint64(e.opt.Seed) ^ 0x67726166 ^ uint64(i)<<32,
				Fill:     true,
				Observer: g,
			})
			if _, err := y.Run(store); err != nil {
				panic("beholder: graph campaign failed: " + err.Error())
			}
			gs[i] = g
		}(i)
	}
	wg.Wait()

	e.mu.Lock()
	if e.graphs == nil {
		e.graphs = gs
	}
	gs = e.graphs
	e.mu.Unlock()
	return gs
}

// GraphUnion returns the cross-vantage union of the graph study's
// campaign graphs (running them first if needed) — what cmd/beholder
// -graph exports.
func (e *Experiments) GraphUnion() *graph.Graph {
	return graph.Union(e.graphCampaigns()...)
}

// truthAliasStore builds an alias store from the simulator's exact
// aliased-/64 plan — the resolution source the router collapse folds
// interfaces with. Real deployments would use APD results
// (Vantage.DetectAliases) instead; ground truth keeps the study's
// collapse numbers free of detector noise.
func (e *Experiments) truthAliasStore() *alias.Store {
	st := alias.NewStore()
	for _, as := range e.in.u.ASes() {
		for _, p := range e.in.u.TruthAliasedLANs(as, 64) {
			st.Add(alias.Record{Prefix: p, Aliased: true})
		}
	}
	return st
}

// GraphStudy reproduces the "union across vantages grows the topology"
// analysis at the graph level: per-vantage interface graphs, marginal
// contribution in vantage order, cross-vantage exclusive links, and the
// alias-collapsed router view of the union.
func (e *Experiments) GraphStudy() *Table {
	gs := e.graphCampaigns()
	names := make([]string, len(vantageSpecs))
	for i, vs := range vantageSpecs {
		names[i] = vs.name
	}
	union := graph.Union(gs...)

	marginal := analysis.MarginalContribution(names, gs)
	exclusive := analysis.ExclusiveLinks(names, gs)
	rg := union.Collapse(graph.StoreResolver(e.truthAliasStore()))

	t := &Table{
		ID:    "Graph (follow-on)",
		Title: "Topology graphs per vantage and their union (" + graphStudySeed + " z64 fixediid, maxTTL 16 + fill)",
		Headers: []string{"Graph", "Nodes", "Ifaces", "Dests", "Links", "AnnotEdges",
			"DestEdges", "MaxOut", "+Nodes", "+Links", "ExclLinks"},
	}
	row := func(label string, g *graph.Graph, dNodes, dLinks, excl string) {
		m := analysis.MetricsOf(g)
		t.AddRow(label, kfmt(int64(m.Nodes)), kfmt(int64(m.IfaceNodes)), kfmt(int64(m.DestNodes)),
			kfmt(int64(m.LinkEdges)), kfmt(int64(m.Edges)), kfmt(int64(m.DestEdges)),
			itoa(m.MaxOut), dNodes, dLinks, excl)
	}
	for i, g := range gs {
		row(names[i], g,
			kfmt(int64(marginal[i].NewNodes)), kfmt(int64(marginal[i].NewLinks)),
			kfmt(int64(exclusive[names[i]])))
	}
	row("UNION", union, "-", "-", "-")

	t.Notes = append(t.Notes,
		"+Nodes/+Links: marginal contribution when vantages are unioned in row order — every additional vantage still grows the graph.",
		"Links are distinct directed interface pairs; AnnotEdges keep (TTL gap, protocol, vantage) annotation; DestEdges are periphery links into reached targets.",
		"Router collapse of the union against exact aliased ground truth: "+
			itoa(rg.NumRouters())+" routers from "+itoa(union.NumNodes())+" interfaces ("+
			itoa(rg.Folded)+" folded, "+kfmt(rg.IntraRouter)+" intra-router traversals dropped), "+
			itoa(rg.NumEdges())+" router edges.")
	return t
}
