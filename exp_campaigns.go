package beholder

// Campaign-scale experiments: Table 7, Figures 6 and 7, and the Section
// 5.3 platform comparison.

import (
	"net/netip"
	"sort"

	"beholder/internal/analysis"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/target"
	"beholder/internal/trace"
	"beholder/internal/wire"
)

// allCampaigns runs the full Table 7 matrix: every vantage, every
// campaign seed, both aggregation levels. The cells are independent
// (a shared read-only universe, a private cloned vantage each) and run
// concurrently, up to ExpOptions.Workers at a time; results are
// identical at any worker count.
func (e *Experiments) allCampaigns() []*campResult {
	var cells []campCell
	for vidx := range vantageSpecs {
		for _, s := range campaignSeeds {
			for _, zn := range []int{64, 48} {
				cells = append(cells, campCell{vidx, e.targetSet(s, zn, target.FixedIID)})
			}
		}
	}
	return e.runCampaigns(cells)
}

// Table7 reproduces "Results of aggregate Yarrp campaigns run from three
// vantages": per-campaign discovery, exclusivity, coverage,
// reachability, path length, and EUI-64 interface analysis.
func (e *Experiments) Table7() *Table {
	camps := e.allCampaigns()

	t := &Table{
		ID:    "Table 7",
		Title: "Aggregate Yarrp6 campaign results (three vantages, fixediid, maxTTL 16 + fill)",
		Headers: []string{"Campaign", "Traces", "Targets", "RtrAddrs", "ExclAddrs",
			"BGPPfx", "ExclPfx", "ASNs", "ExclASN", "ReachASN", "PathLen95(med)",
			"EUI64", "EUI64%", "EUIOff5(med)"},
	}

	// Aggregates: ALL plus per vantage.
	aggRow := func(label string, filter func(*campResult) bool, exclBase map[string]map[netip.Addr]struct{}) {
		ifaces := make(map[netip.Addr]struct{})
		var traces int64
		var targets int64
		var pathLens []int
		euiIfaces := make(map[netip.Addr]struct{})
		var euiOffs []int
		var reachedSum float64
		nReach := 0
		for _, c := range camps {
			if !filter(c) {
				continue
			}
			traces += c.stats.ProbesSent
			targets += int64(c.targets)
			for a := range c.ifaces {
				ifaces[a] = struct{}{}
				if isEUI(a) {
					euiIfaces[a] = struct{}{}
				}
			}
			pathLens = append(pathLens, c.pathLens...)
			euiOffs = append(euiOffs, c.euiOffsets...)
			reachedSum += c.reached
			nReach++
		}
		sortInts(pathLens)
		sortInts(euiOffs)
		excl := 0
		if exclBase != nil {
			mult := make(map[netip.Addr]int)
			for _, s := range exclBase {
				for a := range s {
					mult[a]++
				}
			}
			for a := range ifaces {
				if mult[a] == 1 {
					excl++
				}
			}
		}
		reach := 0.0
		if nReach > 0 {
			reach = reachedSum / float64(nReach)
		}
		euiPct := 0.0
		if len(ifaces) > 0 {
			euiPct = float64(len(euiIfaces)) / float64(len(ifaces))
		}
		t.AddRow(label, kfmt(traces), kfmt(targets), kfmt(int64(len(ifaces))), kfmt(int64(excl)),
			"-", "-", "-", "-", pct(reach),
			itoa(analysis.Percentile(pathLens, 95))+" ("+itoa(analysis.Percentile(pathLens, 50))+")",
			kfmt(int64(len(euiIfaces))), pct(euiPct),
			itoa(analysis.Percentile(euiOffs, 5))+" ("+itoa(analysis.Percentile(euiOffs, 50))+")")
	}

	// Per-vantage interface pools for cross-vantage exclusivity.
	vantagePools := make(map[string]map[netip.Addr]struct{})
	for _, c := range camps {
		pool := vantagePools[c.vantage]
		if pool == nil {
			pool = make(map[netip.Addr]struct{})
			vantagePools[c.vantage] = pool
		}
		for a := range c.ifaces {
			pool[a] = struct{}{}
		}
	}
	aggRow("ALL", func(*campResult) bool { return true }, nil)
	for _, vs := range vantageSpecs {
		aggRow(vs.name, func(c *campResult) bool { return c.vantage == vs.name }, vantagePools)
	}

	// Per-set rows (EU-NET vantage, both aggregation levels), with
	// exclusivity across the per-set z64+z48 campaign pools.
	setPools := make(map[string]map[netip.Addr]struct{})
	for _, c := range camps {
		if c.vantage != "EU-NET" {
			continue
		}
		pool := setPools[c.setName]
		if pool == nil {
			pool = make(map[netip.Addr]struct{})
			setPools[c.setName] = pool
		}
		for a := range c.ifaces {
			pool[a] = struct{}{}
		}
	}
	exclBySet := analysis.ExclusiveKeys(setPools)

	pfxPools := make(map[string]map[netip.Prefix]struct{})
	asnPools := make(map[string]map[uint32]struct{})
	for _, c := range camps {
		if c.vantage != "EU-NET" {
			continue
		}
		pfxPools[c.setName] = c.pfxs
		asnPools[c.setName] = c.asns
	}
	exclPfx := analysis.ExclusiveKeys(pfxPools)
	exclASN := analysis.ExclusiveKeys(asnPools)

	for _, c := range camps {
		if c.vantage != "EU-NET" {
			continue
		}
		euiPct := 0.0
		if len(c.ifaces) > 0 {
			euiPct = float64(c.euiIfaces) / float64(len(c.ifaces))
		}
		t.AddRow(c.setName, kfmt(c.stats.ProbesSent), kfmt(int64(c.targets)),
			kfmt(int64(len(c.ifaces))), kfmt(int64(exclBySet[c.setName])),
			kfmt(int64(len(c.pfxs))), itoa(exclPfx[c.setName]),
			kfmt(int64(len(c.asns))), itoa(exclASN[c.setName]),
			pct(c.reached),
			itoa(analysis.Percentile(c.pathLens, 95))+" ("+itoa(analysis.Percentile(c.pathLens, 50))+")",
			kfmt(int64(c.euiIfaces)), pct(euiPct),
			itoa(analysis.Percentile(c.euiOffsets, 5))+" ("+itoa(analysis.Percentile(c.euiOffsets, 50))+")")
	}
	t.Notes = append(t.Notes,
		"Expected shape: cdn-k32 and tum lead overall and exclusive discovery; EUI-64 addresses concentrate at path ends for CDN sets (median offset 0); US-EDU-2's longer on-premise path lowers its yield.")
	return t
}

func isEUI(a netip.Addr) bool {
	return ipv6.IsEUI64IID(ipv6.IID(a))
}

// Figure6 reproduces "Selected Result Features of Yarrp Campaigns":
// per-set totals (traces, interfaces, covering prefixes/ASNs) and the
// exclusive insets, for the z64 campaigns.
func (e *Experiments) Figure6() *Figure {
	camps := e.z64Campaigns()
	fig := &Figure{
		ID:     "Figure 6",
		Title:  "Result features of z64 Yarrp6 campaigns (EU-NET)",
		XLabel: "feature (1=Traces 2=IntAddrs 3=IntBGPPfx 4=IntASNs)",
		YLabel: "count (exclusive-count series suffixed ':excl')",
	}
	ifPools := make(map[string]map[netip.Addr]struct{})
	pfxPools := make(map[string]map[netip.Prefix]struct{})
	asnPools := make(map[string]map[uint32]struct{})
	for _, c := range camps {
		ifPools[c.setName] = c.ifaces
		pfxPools[c.setName] = c.pfxs
		asnPools[c.setName] = c.asns
	}
	exclIf := analysis.ExclusiveKeys(ifPools)
	exclPfx := analysis.ExclusiveKeys(pfxPools)
	exclASN := analysis.ExclusiveKeys(asnPools)
	for _, c := range camps {
		fig.Series = append(fig.Series, analysis.Series{
			Name: c.setName,
			X:    []float64{1, 2, 3, 4},
			Y: []float64{float64(c.stats.ProbesSent), float64(len(c.ifaces)),
				float64(len(c.pfxs)), float64(len(c.asns))},
		})
		fig.Series = append(fig.Series, analysis.Series{
			Name: c.setName + ":excl",
			X:    []float64{2, 3, 4},
			Y:    []float64{float64(exclIf[c.setName]), float64(exclPfx[c.setName]), float64(exclASN[c.setName])},
		})
	}
	return fig
}

// Figure7 reproduces "Address discovery power per z64 target set vs
// probe packets emitted": the discovery curves from the EU-NET vantage,
// including the random control.
func (e *Experiments) Figure7() *Figure {
	fig := &Figure{
		ID:     "Figure 7",
		Title:  "Discovery power per z64 target set (EU-NET)",
		XLabel: "probes emitted",
		YLabel: "unique interface addresses",
	}
	for _, c := range e.z64Campaigns() {
		s := analysis.Series{Name: c.setName}
		for _, p := range c.stats.Curve {
			s.X = append(s.X, float64(p.Probes))
			s.Y = append(s.Y, float64(p.Interfaces))
		}
		fig.Series = append(fig.Series, s)
	}
	// Random control.
	set := e.targetSet("random", 64, target.FixedIID)
	rc := e.runCampaign(0, set, wire.ProtoICMPv6, 16, true)
	s := analysis.Series{Name: "random"}
	for _, p := range rc.stats.Curve {
		s.X = append(s.X, float64(p.Probes))
		s.Y = append(s.Y, float64(p.Interfaces))
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes,
		"Expected shape: caida saturates early (breadth, no depth); random decays; 6gen mirrors random at an offset; cdn-k32 and tum keep discovering.")
	return fig
}

// PlatformValidation reproduces the Section 5.3 comparison: production
// sequential platforms (Ark-like and Atlas-like, many vantages probing
// BGP ::1 targets) against one Yarrp6 vantage-day.
func (e *Experiments) PlatformValidation() *Table {
	t := &Table{
		ID:      "Validation (§5.3)",
		Title:   "Production-platform comparison (one simulated day)",
		Headers: []string{"Platform", "Vantages", "Targets", "Traces", "Int Addrs"},
	}
	caida := e.targetSet("caida", 64, target.LowByte1)
	targets := caida.Targets.Addrs()

	// Ark-like: a handful of vantages tracing every BGP target
	// sequentially.
	platform := func(label string, vantages int, perVantage int) {
		e.in.Reset()
		ifaces := make(map[netip.Addr]struct{})
		var traces int64
		for i := 0; i < vantages; i++ {
			v := e.in.u.NewVantage(netsim.VantageSpec{
				Name: label + "-" + itoa(i), Kind: netsim.KindUniversity, ChainLen: 3 + i%4,
			})
			store := probe.NewStore(true)
			seq := trace.NewSequential(v, trace.SequentialConfig{
				Engine: trace.EngineConfig{PPS: 100, Window: 64},
				MaxTTL: 16,
			})
			sub := targets
			if perVantage < len(targets) {
				start := (i * perVantage) % len(targets)
				end := start + perVantage
				if end > len(targets) {
					end = len(targets)
				}
				sub = targets[start:end]
			}
			stats := seq.Run(sub, store)
			traces += stats.ProbesSent
			store.ForEachInterface(func(a netip.Addr) { ifaces[a] = struct{}{} })
		}
		t.AddRow(label, itoa(vantages), kfmt(int64(len(targets))), kfmt(traces), kfmt(int64(len(ifaces))))
	}
	platform("Ark-like", 4, len(targets))
	platform("Atlas-like", 12, len(targets)/10+1)

	// One Yarrp6 vantage, cdn-k32 targets (the paper's headline: an
	// order of magnitude more interfaces than the platforms).
	set := e.targetSet("cdn-k32", 64, target.FixedIID)
	c := e.runCampaign(0, set, wire.ProtoICMPv6, 16, true)
	t.AddRow("Yarrp6 (1 vantage)", "1", kfmt(int64(c.targets)), kfmt(c.stats.ProbesSent), kfmt(int64(len(c.ifaces))))
	t.Notes = append(t.Notes,
		"Expected shape: Yarrp6 from a single vantage discovers a large multiple of the sequential platforms' interfaces.")
	return t
}

func sortInts(v []int) { sort.Ints(v) }
