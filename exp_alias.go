package beholder

// Aliased-prefix experiments: the follow-on dealiasing study. 6Prob's
// cool-down APD scheme is applied to the paper's own z64 target sets,
// scored against the simulator's exact aliased ground truth — the
// validation real-world alias detection can only estimate.

import (
	"math/rand"

	"beholder/internal/alias"
	"beholder/internal/netsim"
	"beholder/internal/target"
)

// AliasStudy measures how much aliased-prefix pollution the DNS-derived
// z64 target sets carry, how precisely APD detects it, and how much
// probe budget dealiasing recovers. Detection runs from the EU-NET
// vantage on pristine router state.
func (e *Experiments) AliasStudy() *Table {
	t := &Table{
		ID:    "Aliases (follow-on)",
		Title: "Aliased-prefix detection and dealiasing of z64 target sets (EU-NET)",
		Headers: []string{"Set", "Targets", "Cand /64", "Aliased", "Precision", "Recall",
			"APD Probes", "Dealiased", "Dropped"},
	}
	for _, s := range []string{"fdns_any", "dnsdb"} {
		set := e.targetSet(s, 64, target.FixedIID)
		cands := alias.Candidates(set.Targets, 64)

		e.in.Reset()
		v := e.in.u.NewVantage(netsim.VantageSpec{
			Name: vantageSpecs[0].name, Kind: vantageSpecs[0].kind, ChainLen: vantageSpecs[0].chain,
		})
		det := alias.NewDetector(v, alias.DefaultParams())
		rng := rand.New(rand.NewSource(e.opt.Seed + 0xa11a5))
		res := det.Detect(cands, rng)

		// Score tested candidates against the plan's exact truth.
		var tp, fp, fn int
		for _, rec := range res.Records {
			truth := e.in.u.AddrAliased(rec.Prefix.Addr())
			switch {
			case rec.Aliased && truth:
				tp++
			case rec.Aliased && !truth:
				fp++
			case !rec.Aliased && truth:
				fn++
			}
		}
		precision, recall := 1.0, 1.0
		if tp+fp > 0 {
			precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			recall = float64(tp) / float64(tp+fn)
		}

		kept, stats := alias.Dealias(set.Targets, res.Aliased, alias.Drop)
		t.AddRow(s, kfmt(int64(set.Targets.Len())), kfmt(int64(len(cands))),
			itoa(res.Aliased.Len()), pct(precision), pct(recall),
			kfmt(res.ProbesSent), kfmt(int64(kept.Len())), itoa(stats.Dropped))
	}
	t.Notes = append(t.Notes,
		"Aliased /64s are CDN-style front ends answering for every IID; random-IID probes into genuine LANs elicit no echo replies, so precision stays near 100%.",
		"Dropped targets are probe budget recovered: every trace into an aliased /64 rediscovers the same middlebox.")
	return t
}
