package beholder

import (
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"beholder/internal/analysis"
	"beholder/internal/core"
	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/seeds"
	"beholder/internal/subnet"
	"beholder/internal/target"
	"beholder/internal/wire"
)

// ExpOptions scales the experiment suite. The defaults regenerate every
// table and figure at campaign scale in about a minute of wall time;
// benchmarks use smaller scales.
type ExpOptions struct {
	Seed  int64   // determinism seed for topology, seeds, and campaigns
	Scale float64 // seed-list scale (1.0 = campaign scale)
	Small bool    // use the small universe (tests, quick benches)
	Rate  float64 // campaign probing rate in pps (default 1000)
	// Workers bounds how many campaign-matrix cells (Table 7, Figures
	// 6/7) run concurrently. Cells share one universe that is read-only
	// on the packet path (event counters are atomic) and each probes
	// through its own cloned vantage owning all mutable state, so cells
	// race nothing and the rendered tables are identical at any worker
	// count. Default: GOMAXPROCS.
	Workers int
}

func (o *ExpOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 2018
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Rate <= 0 {
		o.Rate = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Experiments regenerates the paper's evaluation. Each method returns a
// renderable Table or Figure; expensive intermediates (seed lists,
// target sets, the Table 7 campaign matrix) are computed once and
// shared.
type Experiments struct {
	opt ExpOptions
	in  *Internet

	// mu guards the lazily built caches below; campaign-matrix workers
	// populate them concurrently.
	mu         sync.Mutex
	lists      map[string]seeds.List
	tumSubsets []seeds.Subset

	targetSets map[string]*target.Set

	campaigns map[string]*campResult // key: vantage + "/" + set name

	// graphs holds the graph study's per-vantage campaign graphs, in
	// vantageSpecs order, built once by graphCampaigns.
	graphs []*graph.Graph
}

// Renderable is either a Table or a Figure.
type Renderable interface{ Render() string }

// Table and Figure re-export the analysis result types.
type (
	Table  = analysis.Table
	Figure = analysis.Figure
)

// NewExperiments prepares a deterministic experiment suite.
func NewExperiments(opt ExpOptions) *Experiments {
	opt.setDefaults()
	var in *Internet
	if opt.Small {
		in = NewSmallInternet(opt.Seed)
	} else {
		in = NewInternet(opt.Seed)
	}
	return &Experiments{
		opt:        opt,
		in:         in,
		targetSets: make(map[string]*target.Set),
		campaigns:  make(map[string]*campResult),
	}
}

// Internet returns the experiment substrate.
func (e *Experiments) Internet() *Internet { return e.in }

func (e *Experiments) seedLists() map[string]seeds.List {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seedListsLocked()
}

func (e *Experiments) seedListsLocked() map[string]seeds.List {
	if e.lists == nil {
		e.lists, e.tumSubsets = seeds.All(e.in.u, e.opt.Seed, seeds.Scale(e.opt.Scale))
	}
	return e.lists
}

// targetSet builds (and caches) one target set.
func (e *Experiments) targetSet(seedName string, zn int, synth target.Synth) *target.Set {
	spec := target.Spec{SeedName: seedName, ZN: zn, Synth: synth}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.targetSets[spec.Name()]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(e.opt.Seed + int64(zn)))
	s := target.Build(e.seedListsLocked()[seedName], spec, rng)
	e.targetSets[spec.Name()] = s
	return s
}

// campaignSetNames lists the Table 7 target sets in the paper's order
// (reverse sorted by yield there; ours carry the same membership).
var campaignSeeds = []string{"cdn-k32", "tum", "fdns_any", "dnsdb", "6gen", "cdn-k256", "caida", "fiebig"}

// vantageSpecs are the study's three vantage points. US-EDU-2's longer
// on-premise path reproduces its lower yield and longer median paths
// (Section 5.3).
var vantageSpecs = []struct {
	name  string
	kind  netsim.ASKind
	chain int
}{
	{"EU-NET", netsim.KindHosting, 3},
	{"US-EDU-1", netsim.KindUniversity, 4},
	{"US-EDU-2", netsim.KindUniversity, 8},
}

// campResult is the retained summary of one (vantage, target set)
// campaign: everything Table 7 and Figures 6-8 need, without holding the
// full trace store.
type campResult struct {
	vantage  string
	setName  string
	traces   int64
	targets  int
	stats    core.Stats
	ifaces   map[netip.Addr]struct{}
	pfxs     map[netip.Prefix]struct{}
	asns     map[uint32]struct{}
	reached  float64
	pathLens []int

	euiIfaces  int
	euiOffsets []int

	subnetLenHist [65]int // inferred minimum prefix length counts
	iaCount       int
}

// runCampaign executes one Yarrp6 campaign with path recording and
// summarizes it. Each campaign probes through a cloned vantage with a
// private clock opened at zero and pristine (vantage-owned) token
// buckets — exactly the conditions the old shared-universe-plus-Reset
// regime provided — while the universe itself is shared read-only, so
// independent matrix cells run concurrently without rebuilding
// topology.
func (e *Experiments) runCampaign(vspec int, set *target.Set, proto uint8, maxTTL uint8, fill bool) *campResult {
	key := vantageSpecs[vspec].name + "/" + set.Name()
	e.mu.Lock()
	if c, ok := e.campaigns[key]; ok {
		e.mu.Unlock()
		return c
	}
	e.mu.Unlock()
	u := e.in.u
	v := u.NewVantage(netsim.VantageSpec{
		Name:     vantageSpecs[vspec].name,
		Kind:     vantageSpecs[vspec].kind,
		ChainLen: vantageSpecs[vspec].chain,
	}).Clone(0)
	store := probe.NewStore(true)
	y := core.New(v, core.Config{
		Targets: set.Targets.Addrs(),
		PPS:     e.opt.Rate,
		MaxTTL:  maxTTL,
		Proto:   proto,
		Key:     uint64(e.opt.Seed) ^ uint64(vspec)<<32,
		Fill:    fill,
	})
	stats, err := y.Run(store)
	if err != nil {
		panic("beholder: campaign failed: " + err.Error())
	}
	c := e.summarize(u, vantageSpecs[vspec].name, set, store, stats, v.AS().ASN)
	e.mu.Lock()
	e.campaigns[key] = c
	e.mu.Unlock()
	return c
}

// campCell names one cell of the campaign matrix.
type campCell struct {
	vspec int
	set   *target.Set
}

// runCampaigns executes the given matrix cells, up to Workers at a time,
// returning results in cell order. Cells are independent — a shared
// read-only universe with per-cell cloned vantages, cache writes under
// the mutex — so the result is identical at any worker count.
func (e *Experiments) runCampaigns(cells []campCell) []*campResult {
	out := make([]*campResult, len(cells))
	workers := e.opt.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			out[i] = e.runCampaign(c.vspec, c.set, wire.ProtoICMPv6, 16, true)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.runCampaign(cells[i].vspec, cells[i].set, wire.ProtoICMPv6, 16, true)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func (e *Experiments) summarize(u *netsim.Universe, vantage string, set *target.Set, store *probe.Store, stats core.Stats, vantageASN uint32) *campResult {
	table := u.Table()
	c := &campResult{
		vantage: vantage,
		setName: set.Name(),
		traces:  int64(set.Targets.Len()),
		targets: set.Targets.Len(),
		stats:   stats,
		ifaces:  make(map[netip.Addr]struct{}),
		pfxs:    make(map[netip.Prefix]struct{}),
		asns:    make(map[uint32]struct{}),
	}
	store.ForEachInterface(func(a netip.Addr) {
		c.ifaces[a] = struct{}{}
		if rt, ok := table.Lookup(a); ok {
			c.pfxs[rt.Prefix] = struct{}{}
			c.asns[rt.Origin] = struct{}{}
		}
	})
	c.reached = analysis.ReachedTargetASNFraction(store, table)
	c.pathLens = analysis.PathLengths(store)
	c.euiIfaces = analysis.CountEUIInterfaces(store)
	c.euiOffsets = analysis.EUIOffsets(store)

	// Subnet inference per campaign (folded into Figure 8).
	res := subnet.Discover(store, table, vantageASN, subnet.DefaultParams())
	for _, cand := range res.Candidates {
		if cand.MinLen >= 24 && cand.MinLen <= 64 {
			c.subnetLenHist[cand.MinLen]++
		}
	}
	c.iaCount = res.IAHackCount
	return c
}

// z64Campaigns runs (or fetches) the EU-NET z64 campaign for every
// Table 7 seed, the inputs to Figures 6, 7, and 8. Uncached cells run
// concurrently, up to Workers at a time.
func (e *Experiments) z64Campaigns() []*campResult {
	cells := make([]campCell, 0, len(campaignSeeds))
	for _, s := range campaignSeeds {
		cells = append(cells, campCell{0, e.targetSet(s, 64, target.FixedIID)})
	}
	return e.runCampaigns(cells)
}

// sortedNames returns map keys in sorted order (stable table rows).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pct formats a fraction as a percentage string.
func pct(f float64) string {
	return fmtF(f*100, 1) + "%"
}

func fmtF(f float64, prec int) string {
	switch prec {
	case 0:
		return itoa(int(f + 0.5))
	case 1:
		v := int(f*10 + 0.5)
		return itoa(v/10) + "." + itoa(v%10)
	default:
		v := int(f*100 + 0.5)
		return itoa(v/100) + "." + pad2(v%100)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func pad2(v int) string {
	if v < 10 {
		return "0" + itoa(v)
	}
	return itoa(v)
}

// kfmt renders counts compactly (12.4k, 1.3M) the way the paper's
// tables do.
func kfmt(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmtF(float64(n)/1e6, 1) + "M"
	case n >= 1_000:
		return fmtF(float64(n)/1e3, 1) + "k"
	default:
		return itoa(int(n))
	}
}
