package beholder

// Determinism proofs for the packet fast path: the flow-plan cache, the
// recycled reply buffers, and the probe-template cache are pure-value
// caches, so campaigns must produce byte-identical results with them
// on, off, resized under eviction pressure, sharded, and raced. Run
// with -race to cover the concurrent cases.

import (
	"fmt"
	"sync"
	"testing"
)

// fastpathCampaign runs one Yarrp6 campaign on a fresh small universe,
// optionally overriding the vantage plan cache (planCache < 0 keeps the
// configured default).
func fastpathCampaign(t *testing.T, seed int64, planCache int, shards int, fill bool) (*Result, *Vantage) {
	t.Helper()
	in := NewSmallInternet(seed)
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	v := in.NewVantage("fastpath")
	if planCache >= 0 {
		v.SetPlanCache(planCache)
	}
	res, err := v.RunYarrp6(targets, YarrpOptions{
		Rate: 8000, MaxTTL: 16, Key: 7, Fill: fill, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, v
}

// TestPlanCacheOnOffStoreEquality proves the headline invariant: a
// campaign with the flow-plan cache enabled is byte-identical to one
// with it disabled, serially and at 4 shards, fill mode on.
func TestPlanCacheOnOffStoreEquality(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			on, von := fastpathCampaign(t, 42, -1, shards, true)
			off, voff := fastpathCampaign(t, 42, 0, shards, true)
			if !on.Store().Equal(off.Store()) {
				t.Fatal("cache-on and cache-off campaigns disagree")
			}
			if on.ProbesSent != off.ProbesSent || on.Replies != off.Replies || on.Fills != off.Fills {
				t.Fatalf("counter mismatch: on %+v off %+v", on.ProbesSent, off.ProbesSent)
			}
			hits, _ := von.PlanCacheStats()
			if shards == 1 && hits == 0 {
				t.Fatal("cache-on run recorded no plan-cache hits")
			}
			if offHits, _ := voff.PlanCacheStats(); offHits != 0 {
				t.Fatalf("cache-off run recorded %d hits", offHits)
			}
		})
	}
}

// TestPlanCacheEvictionPressure shrinks the cache far below the target
// count: the direct-mapped slots thrash, and results must still be
// identical to the default-cache run.
func TestPlanCacheEvictionPressure(t *testing.T) {
	def, _ := fastpathCampaign(t, 43, -1, 1, true)
	tiny, vt := fastpathCampaign(t, 43, 8, 1, true)
	if !def.Store().Equal(tiny.Store()) {
		t.Fatal("eviction pressure changed campaign results")
	}
	hits, misses := vt.PlanCacheStats()
	if misses == 0 {
		t.Fatal("tiny cache recorded no misses")
	}
	// 8 slots under hundreds of randomized targets must evict nearly
	// every probe: misses dominate.
	if hits > misses {
		t.Fatalf("expected thrashing, got hits=%d misses=%d", hits, misses)
	}
	if def.ProbesSent != tiny.ProbesSent || def.Replies != tiny.Replies {
		t.Fatal("probe/reply counters diverged under eviction pressure")
	}
}

// The 1-shard vs 4-shard × cache-on/off cross-equality lives in
// internal/core (TestCampaignShardCacheMatrix): shard equality requires
// the non-saturating rate-limit regime the campaign tests construct
// (token buckets are epoch-scoped per shard — see core.Campaign), which
// the facade does not expose.

// TestConcurrentVantagesSharedUniverse races several distinct vantages
// probing one universe at once (each campaign sharded, so cloned
// vantages race too) and checks every result equals the same vantage's
// run on a private, identically seeded universe. Covers the plan
// cache, buffer pool, and delivery queue under -race.
func TestConcurrentVantagesSharedUniverse(t *testing.T) {
	const workers = 4
	shared := NewSmallInternet(45)
	targets, err := shared.TargetSet("fdns_any", 64, "fixediid", 0.3)
	if err != nil {
		t.Fatal(err)
	}

	// Vantage creation is serial — like campaign shard construction, it
	// anchors the vantage's timeline on the shared clock — and only the
	// probing itself races.
	vantages := make([]*Vantage, workers)
	for i := 0; i < workers; i++ {
		// Distinct names land in distinct ASes; shards clone the
		// vantage, giving each goroutine private clocks while the
		// universe (topology, routing, ground truth) is shared.
		vantages[i] = shared.NewVantageAt(fmt.Sprintf("races-%d", i), "university", 4)
	}
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := vantages[i].RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 16, Key: 7, Shards: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if results[i] == nil {
			t.Fatal("missing result")
		}
		private := NewSmallInternet(45)
		v := private.NewVantageAt(fmt.Sprintf("races-%d", i), "university", 4)
		want, err := v.RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 16, Key: 7, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Store().Equal(want.Store()) {
			t.Fatalf("vantage %d: concurrent shared-universe run diverged from private-universe run", i)
		}
	}
}

// TestSetPlanCacheMidstream exercises resizing between campaigns on one
// vantage: results must match a fresh vantage at the same setting.
func TestSetPlanCacheMidstream(t *testing.T) {
	in := NewSmallInternet(46)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	v := in.NewVantage("resize")
	if _, err := v.RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 8, Key: 1}); err != nil {
		t.Fatal(err)
	}
	v.SetPlanCache(64) // discard cached plans, shrink hard
	second, err := v.RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 8, Key: 2})
	if err != nil {
		t.Fatal(err)
	}

	in2 := NewSmallInternet(46)
	v2 := in2.NewVantage("resize")
	if _, err := v2.RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 8, Key: 1}); err != nil {
		t.Fatal(err)
	}
	want, err := v2.RunYarrp6(targets, YarrpOptions{Rate: 8000, MaxTTL: 8, Key: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Store().Equal(want.Store()) {
		t.Fatal("mid-stream cache resize changed results")
	}
}
