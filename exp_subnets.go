package beholder

// Section 6 experiments: Figure 8 (subnets inferred by path divergence)
// and the ground-truth validation including stratified sampling.

import (
	"math/rand"
	"net/netip"

	"beholder/internal/analysis"
	"beholder/internal/core"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/subnet"
	"beholder/internal/target"
)

// Figure8 reproduces "Subnets inferred by path divergence": (a) the CDF
// of inferred minimum subnet prefix lengths per target set and (b) the
// per-length counts, with the IA-hack /64 pins reported above length 64.
func (e *Experiments) Figure8() (cdf, counts *Figure) {
	camps := e.z64Campaigns()
	cdf = &Figure{
		ID: "Figure 8a", Title: "Path-divergence-inferred subnet minimum prefix lengths (CDF)",
		XLabel: "inferred minimum prefix length", YLabel: "cumulative fraction of prefixes",
	}
	counts = &Figure{
		ID: "Figure 8b", Title: "Counts of inferred subnets by prefix length",
		XLabel: "inferred minimum prefix length", YLabel: "count (IA-hack /64 pins reported as note)",
	}
	totalIA := 0
	var combined [65]int
	for _, c := range camps {
		total := 0
		for _, n := range c.subnetLenHist {
			total += n
		}
		sCDF := analysis.Series{Name: c.setName}
		sCnt := analysis.Series{Name: c.setName}
		cum := 0
		for l := 24; l <= 64; l++ {
			cum += c.subnetLenHist[l]
			combined[l] += c.subnetLenHist[l]
			if l%4 == 0 {
				sCDF.X = append(sCDF.X, float64(l))
				if total > 0 {
					sCDF.Y = append(sCDF.Y, float64(cum)/float64(total))
				} else {
					sCDF.Y = append(sCDF.Y, 0)
				}
				sCnt.X = append(sCnt.X, float64(l))
				sCnt.Y = append(sCnt.Y, float64(c.subnetLenHist[l]))
			}
		}
		cdf.Series = append(cdf.Series, sCDF)
		counts.Series = append(counts.Series, sCnt)
		totalIA += c.iaCount
	}
	sComb := analysis.Series{Name: "combined"}
	for l := 24; l <= 64; l += 4 {
		sComb.X = append(sComb.X, float64(l))
		sComb.Y = append(sComb.Y, float64(combined[l]))
	}
	counts.Series = append(counts.Series, sComb)
	counts.Notes = append(counts.Notes,
		"IA-hack exact /64 pins across campaigns: "+itoa(totalIA),
		"Expected shape: per-set discovery power tracks the sets' target DPL distributions (Figure 3a).")
	return cdf, counts
}

// SubnetValidation reproduces the Section 6 ground-truth comparison. On
// the simulator exact truth is available: the discovered candidates are
// scored against the true provisioned subnet plan of enterprise
// networks, both for a dense campaign and for the paper's stratified
// sample (one target per truth subnet), which bounds discovery to the
// truth granularity.
func (e *Experiments) SubnetValidation() *Table {
	// Ground truth: provisioned subnets of enterprise ASes down to /64.
	rng := rand.New(rand.NewSource(e.opt.Seed + 66))
	var truth []netip.Prefix
	var truthASes []*netsim.AS
	for _, as := range e.in.u.ASes() {
		if as.Kind != netsim.KindEnterprise {
			continue
		}
		truthASes = append(truthASes, as)
		truth = append(truth, e.in.u.TruthSubnets(as, 64, 200)...)
		if len(truth) > 4000 {
			break
		}
	}

	// Dense targets inside the truth networks: several /64 gateways per
	// AS give neighbor pairs with high DPLs.
	var targets []netip.Addr
	for _, as := range truthASes {
		for i := 0; i < 60; i++ {
			if lan, ok := e.in.u.RandomLAN(rng, as); ok {
				targets = append(targets, ipv6.WithIID(lan.Addr(), target.FixedIIDValue))
			}
		}
	}
	tgtSet := ipv6.NewSet(targets)

	run := func(tgts []netip.Addr) subnet.ValidationReport {
		e.in.Reset()
		v := e.in.u.NewVantage(netsim.VantageSpec{Name: "EU-NET", Kind: netsim.KindHosting, ChainLen: 3})
		store := probe.NewStore(true)
		y := core.New(v, core.Config{Targets: tgts, PPS: e.opt.Rate, MaxTTL: 24, Fill: true, Key: 55})
		if _, err := y.Run(store); err != nil {
			panic("beholder: validation campaign failed: " + err.Error())
		}
		res := subnet.Discover(store, e.in.u.Table(), v.AS().ASN, subnet.DefaultParams())
		return subnet.Validate(res.Candidates, truth)
	}

	dense := run(tgtSet.Addrs())
	strat := run(subnet.StratifiedSample(tgtSet.Addrs(), truth))

	t := &Table{
		ID:      "Subnet validation (§6)",
		Title:   "Discovered candidate subnets vs simulator ground truth (enterprise networks)",
		Headers: []string{"Campaign", "Truth", "Candidates", "Exact", "MoreSpecific", "Short-1", "Short-2", "TruthCovered"},
	}
	row := func(name string, r subnet.ValidationReport) {
		t.AddRow(name, itoa(r.TruthTotal), itoa(r.Candidates), itoa(r.ExactMatches),
			itoa(r.MoreSpecifics), itoa(r.ShortByOne), itoa(r.ShortByTwo), itoa(r.TruthCovered))
	}
	row("dense", dense)
	row("stratified", strat)
	t.Notes = append(t.Notes,
		"Expected shape: dense probing discovers truth subnets mostly as more-specifics; stratified sampling trades candidates for a higher exact-match rate, with misses concentrated one or two bits short.")
	return t
}

// ExpStep is one named unit of the experiment suite: running it yields
// the renderables it contributes, in paper order. Steps let callers
// observe suite progress (cmd/beholder streams one NDJSON record per
// completed step) without changing what All produces.
type ExpStep struct {
	Name string
	Run  func() []Renderable
}

// Steps returns the experiment suite as named units. Running the steps
// in order and concatenating their renderables is exactly All().
func (e *Experiments) Steps() []ExpStep {
	one := func(f func() Renderable) func() []Renderable {
		return func() []Renderable { return []Renderable{f()} }
	}
	two := func(f func() (*Figure, *Figure)) func() []Renderable {
		return func() []Renderable { a, b := f(); return []Renderable{a, b} }
	}
	return []ExpStep{
		{"table1-seed-sources", one(func() Renderable { return e.Table1() })},
		{"table2-seed-overlap", one(func() Renderable { return e.Table2() })},
		{"table3-prefix-transform", one(func() Renderable { return e.Table3() })},
		{"table4-tum-composition", one(func() Renderable { return e.Table4() })},
		// Figure3 runs before Table5/Figure2, matching All's historical
		// computation order (shared caches make order immaterial to the
		// rendered bytes, but the cheap guarantee is worth keeping).
		{"figure3-rate-limiting", two(e.Figure3)},
		{"table5-rate-yield", one(func() Renderable { return e.Table5() })},
		{"figure2-discovery-curve", one(func() Renderable { return e.Figure2() })},
		{"figure5-sequential-comparison", two(e.Figure5)},
		{"protocol-comparison", one(func() Renderable { return e.ProtocolComparison() })},
		{"doubletree-study", one(func() Renderable { return e.DoubletreeStudy() })},
		{"table6-fill-mode", one(func() Renderable { return e.Table6() })},
		{"table7-campaign-matrix", one(func() Renderable { return e.Table7() })},
		{"figure6-interface-overlap", one(func() Renderable { return e.Figure6() })},
		{"figure7-vantage-overlap", one(func() Renderable { return e.Figure7() })},
		{"platform-validation", one(func() Renderable { return e.PlatformValidation() })},
		{"figure8-path-lengths", two(e.Figure8)},
		{"subnet-validation", one(func() Renderable { return e.SubnetValidation() })},
		{"alias-study", one(func() Renderable { return e.AliasStudy() })},
		{"graph-study", one(func() Renderable { return e.GraphStudy() })},
		{"adaptive-study", one(func() Renderable { return e.AdaptiveStudy() })},
	}
}

// All regenerates every table and figure, in paper order. This is what
// cmd/beholder renders into EXPERIMENTS.md.
func (e *Experiments) All() []Renderable {
	var out []Renderable
	steps := e.Steps()
	got := make([][]Renderable, len(steps))
	for i, s := range steps {
		got[i] = s.Run()
	}
	// Emission order differs from computation order in one place: the
	// Figure3 pair renders after Table5 and Figure2, as the paper lays
	// them out.
	order := []int{0, 1, 2, 3, 5, 6, 4, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	for _, i := range order {
		out = append(out, got[i]...)
	}
	return out
}
