package beholder

// Section 6 experiments: Figure 8 (subnets inferred by path divergence)
// and the ground-truth validation including stratified sampling.

import (
	"math/rand"
	"net/netip"

	"beholder/internal/analysis"
	"beholder/internal/core"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/subnet"
	"beholder/internal/target"
)

// Figure8 reproduces "Subnets inferred by path divergence": (a) the CDF
// of inferred minimum subnet prefix lengths per target set and (b) the
// per-length counts, with the IA-hack /64 pins reported above length 64.
func (e *Experiments) Figure8() (cdf, counts *Figure) {
	camps := e.z64Campaigns()
	cdf = &Figure{
		ID: "Figure 8a", Title: "Path-divergence-inferred subnet minimum prefix lengths (CDF)",
		XLabel: "inferred minimum prefix length", YLabel: "cumulative fraction of prefixes",
	}
	counts = &Figure{
		ID: "Figure 8b", Title: "Counts of inferred subnets by prefix length",
		XLabel: "inferred minimum prefix length", YLabel: "count (IA-hack /64 pins reported as note)",
	}
	totalIA := 0
	var combined [65]int
	for _, c := range camps {
		total := 0
		for _, n := range c.subnetLenHist {
			total += n
		}
		sCDF := analysis.Series{Name: c.setName}
		sCnt := analysis.Series{Name: c.setName}
		cum := 0
		for l := 24; l <= 64; l++ {
			cum += c.subnetLenHist[l]
			combined[l] += c.subnetLenHist[l]
			if l%4 == 0 {
				sCDF.X = append(sCDF.X, float64(l))
				if total > 0 {
					sCDF.Y = append(sCDF.Y, float64(cum)/float64(total))
				} else {
					sCDF.Y = append(sCDF.Y, 0)
				}
				sCnt.X = append(sCnt.X, float64(l))
				sCnt.Y = append(sCnt.Y, float64(c.subnetLenHist[l]))
			}
		}
		cdf.Series = append(cdf.Series, sCDF)
		counts.Series = append(counts.Series, sCnt)
		totalIA += c.iaCount
	}
	sComb := analysis.Series{Name: "combined"}
	for l := 24; l <= 64; l += 4 {
		sComb.X = append(sComb.X, float64(l))
		sComb.Y = append(sComb.Y, float64(combined[l]))
	}
	counts.Series = append(counts.Series, sComb)
	counts.Notes = append(counts.Notes,
		"IA-hack exact /64 pins across campaigns: "+itoa(totalIA),
		"Expected shape: per-set discovery power tracks the sets' target DPL distributions (Figure 3a).")
	return cdf, counts
}

// SubnetValidation reproduces the Section 6 ground-truth comparison. On
// the simulator exact truth is available: the discovered candidates are
// scored against the true provisioned subnet plan of enterprise
// networks, both for a dense campaign and for the paper's stratified
// sample (one target per truth subnet), which bounds discovery to the
// truth granularity.
func (e *Experiments) SubnetValidation() *Table {
	// Ground truth: provisioned subnets of enterprise ASes down to /64.
	rng := rand.New(rand.NewSource(e.opt.Seed + 66))
	var truth []netip.Prefix
	var truthASes []*netsim.AS
	for _, as := range e.in.u.ASes() {
		if as.Kind != netsim.KindEnterprise {
			continue
		}
		truthASes = append(truthASes, as)
		truth = append(truth, e.in.u.TruthSubnets(as, 64, 200)...)
		if len(truth) > 4000 {
			break
		}
	}

	// Dense targets inside the truth networks: several /64 gateways per
	// AS give neighbor pairs with high DPLs.
	var targets []netip.Addr
	for _, as := range truthASes {
		for i := 0; i < 60; i++ {
			if lan, ok := e.in.u.RandomLAN(rng, as); ok {
				targets = append(targets, ipv6.WithIID(lan.Addr(), target.FixedIIDValue))
			}
		}
	}
	tgtSet := ipv6.NewSet(targets)

	run := func(tgts []netip.Addr) subnet.ValidationReport {
		e.in.Reset()
		v := e.in.u.NewVantage(netsim.VantageSpec{Name: "EU-NET", Kind: netsim.KindHosting, ChainLen: 3})
		store := probe.NewStore(true)
		y := core.New(v, core.Config{Targets: tgts, PPS: e.opt.Rate, MaxTTL: 24, Fill: true, Key: 55})
		if _, err := y.Run(store); err != nil {
			panic("beholder: validation campaign failed: " + err.Error())
		}
		res := subnet.Discover(store, e.in.u.Table(), v.AS().ASN, subnet.DefaultParams())
		return subnet.Validate(res.Candidates, truth)
	}

	dense := run(tgtSet.Addrs())
	strat := run(subnet.StratifiedSample(tgtSet.Addrs(), truth))

	t := &Table{
		ID:      "Subnet validation (§6)",
		Title:   "Discovered candidate subnets vs simulator ground truth (enterprise networks)",
		Headers: []string{"Campaign", "Truth", "Candidates", "Exact", "MoreSpecific", "Short-1", "Short-2", "TruthCovered"},
	}
	row := func(name string, r subnet.ValidationReport) {
		t.AddRow(name, itoa(r.TruthTotal), itoa(r.Candidates), itoa(r.ExactMatches),
			itoa(r.MoreSpecifics), itoa(r.ShortByOne), itoa(r.ShortByTwo), itoa(r.TruthCovered))
	}
	row("dense", dense)
	row("stratified", strat)
	t.Notes = append(t.Notes,
		"Expected shape: dense probing discovers truth subnets mostly as more-specifics; stratified sampling trades candidates for a higher exact-match rate, with misses concentrated one or two bits short.")
	return t
}

// All regenerates every table and figure, in paper order. This is what
// cmd/beholder renders into EXPERIMENTS.md.
func (e *Experiments) All() []Renderable {
	var out []Renderable
	out = append(out, e.Table1(), e.Table2(), e.Table3(), e.Table4())
	f3a, f3b := e.Figure3()
	out = append(out, e.Table5(), e.Figure2(), f3a, f3b)
	f5a, f5b := e.Figure5()
	out = append(out, f5a, f5b, e.ProtocolComparison(), e.DoubletreeStudy(), e.Table6())
	out = append(out, e.Table7(), e.Figure6(), e.Figure7(), e.PlatformValidation())
	f8a, f8b := e.Figure8()
	out = append(out, f8a, f8b, e.SubnetValidation(), e.AliasStudy(), e.GraphStudy())
	return out
}
