package beholder

// Experiments over seed lists and target sets: Tables 1, 2, 5 and
// Figures 2 and 3 (Section 3 of the paper).

import (
	"net/netip"

	"beholder/internal/addrclass"
	"beholder/internal/analysis"
	"beholder/internal/ipv6"
	"beholder/internal/target"
)

// table1Order mirrors the paper's presentation order.
var table1Order = []string{"caida", "dnsdb", "fiebig", "fdns_any", "cdn-k256", "cdn-k32", "6gen", "tum", "random"}

// Table1 reproduces "Seed List Properties": per-source sizes and the
// addr6 classification of interface identifiers (Random / LowByte /
// EUI-64 shares).
func (e *Experiments) Table1() *Table {
	lists := e.seedLists()
	t := &Table{
		ID:      "Table 1",
		Title:   "Seed List Properties",
		Headers: []string{"Name", "Method", "# Addrs", "Random", "LowByte", "EUI-64"},
	}
	for _, name := range table1Order {
		l, ok := lists[name]
		if !ok {
			continue
		}
		if l.Addrs == nil {
			// The CDN publishes anonymized prefixes: all-random by
			// construction, sizes counted in aggregates.
			t.AddRow(l.Name, l.Method, kfmt(int64(l.Prefixes.Len()))+" pfx", "100.0%", "0.0%", "0.0%")
			continue
		}
		c := addrclass.ClassifySet(l.Addrs)
		t.AddRow(l.Name, l.Method, kfmt(int64(c.Total)),
			pct(float64(c.RandomLike())/float64(max(c.Total, 1))),
			pct(c.Fraction(addrclass.ClassLowByte)),
			pct(c.Fraction(addrclass.ClassEUI64)),
		)
	}
	t.Notes = append(t.Notes, "CDN rows report kIP aggregate (prefix) counts; clients are never exposed individually.")
	return t
}

// Table2 reproduces "TUM Seed Subsets": the packaged components of the
// collection and the unique union.
func (e *Experiments) Table2() *Table {
	e.seedLists()
	t := &Table{
		ID:      "Table 2",
		Title:   "TUM Seed Subsets",
		Headers: []string{"Subset", "# Addresses"},
	}
	total := int64(0)
	for _, s := range e.tumSubsets {
		t.AddRow(s.Name, kfmt(int64(s.Count)))
		total += int64(s.Count)
	}
	t.AddRow("Total", kfmt(total))
	t.AddRow("Total Unique", kfmt(int64(e.lists["tum"].Addrs.Len())))
	return t
}

// Table5 reproduces "Target Set Properties": unique and exclusive
// targets, routedness, BGP prefix and ASN coverage, and 6to4 pollution,
// per seed source and aggregation level.
func (e *Experiments) Table5() *Table {
	table := e.in.u.Table()

	// Exclusivity is computed among the independent sets only (the
	// combined and TUM collections would mask their subsets'
	// contributions); TUM's own exclusives are versus the independents.
	indep := independents()

	t := &Table{
		ID:    "Table 5",
		Title: "Target Set Properties",
		Headers: []string{"Name", "Agg", "Unique", "Excl", "Routed", "Excl Rtd",
			"BGP Pfx", "Excl Pfx", "ASNs", "Excl ASN", "6to4"},
	}

	for _, zn := range []int{48, 64} {
		// Build exclusivity pools per zn.
		pool := make(map[string]*ipv6.Set)
		for _, s := range indep {
			pool[s] = e.targetSet(s, zn, target.FixedIID).Targets
		}
		exclTargets := ipv6.Exclusive(pool)

		feat := make(map[string]analysis.Features)
		pfxSets := make(map[string]map[netip.Prefix]struct{})
		asnSets := make(map[string]map[uint32]struct{})
		for _, s := range indep {
			f := analysis.FeaturesOf(pool[s], table)
			feat[s] = f
			pfxSets[s] = f.Prefixes
			asnSets[s] = f.ASNs
		}
		exclPfx := analysis.ExclusiveKeys(pfxSets)
		exclASN := analysis.ExclusiveKeys(asnSets)

		row := func(name string, set *target.Set, excl *ipv6.Set, exclPfxN, exclASNn int, f analysis.Features) {
			exclRouted := 0
			if excl != nil {
				for _, a := range excl.Addrs() {
					if table.Routed(a) {
						exclRouted++
					}
				}
			}
			exclN := "N/A"
			exclR := "N/A"
			if excl != nil {
				exclN = kfmt(int64(excl.Len()))
				exclR = kfmt(int64(exclRouted))
			}
			t.AddRow(name, "z"+itoa(set.Spec.ZN), kfmt(int64(set.Targets.Len())), exclN,
				kfmt(int64(f.Routed)), exclR,
				kfmt(int64(len(f.Prefixes))), itoa(exclPfxN),
				kfmt(int64(len(f.ASNs))), itoa(exclASNn),
				kfmt(int64(analysis.Count6to4(set.Targets))))
		}
		for _, s := range indep {
			row(s, e.targetSet(s, zn, target.FixedIID), exclTargets[s], exclPfx[s], exclASN[s], feat[s])
		}
		// TUM: exclusives versus the independents.
		tum := e.targetSet("tum", zn, target.FixedIID)
		union := ipv6.EmptySet()
		for _, s := range indep {
			union = union.Union(pool[s])
		}
		tumExcl := tum.Targets.Diff(union)
		tumFeat := analysis.FeaturesOf(tum.Targets, table)
		tumExclFeat := analysis.FeaturesOf(tumExcl, table)
		row("tum", tum, tumExcl, len(tumExclFeat.Prefixes), len(tumExclFeat.ASNs), tumFeat)

		// Combined: union of the independents (no exclusivity by
		// definition).
		combined := target.Combine("combined", zn, target.FixedIID,
			setsOf(e, indep, zn)...)
		cf := analysis.FeaturesOf(combined.Targets, table)
		row("combined", combined, nil, 0, 0, cf)
	}

	// Total over both aggregation levels.
	var all []*target.Set
	for _, s := range append(independents(), "tum") {
		for _, zn := range []int{48, 64} {
			all = append(all, e.targetSet(s, zn, target.FixedIID))
		}
	}
	totalSet := target.Combine("total", 0, target.FixedIID, all...)
	tf := analysis.FeaturesOf(totalSet.Targets, table)
	t.AddRow("Total", "both", kfmt(int64(totalSet.Targets.Len())), "N/A",
		kfmt(int64(tf.Routed)), "N/A",
		kfmt(int64(len(tf.Prefixes))), "N/A",
		kfmt(int64(len(tf.ASNs))), "N/A",
		kfmt(int64(analysis.Count6to4(totalSet.Targets))))
	return t
}

func independents() []string {
	return []string{"caida", "dnsdb", "fiebig", "fdns_any", "cdn-k256", "cdn-k32", "6gen"}
}

func setsOf(e *Experiments, names []string, zn int) []*target.Set {
	out := make([]*target.Set, len(names))
	for i, s := range names {
		out[i] = e.targetSet(s, zn, target.FixedIID)
	}
	return out
}

// Figure2 reproduces "Features contributed by each target set": per-set
// totals and the exclusive fractions of BGP prefixes and ASNs.
func (e *Experiments) Figure2() *Figure {
	table := e.in.u.Table()
	fig := &Figure{
		ID:     "Figure 2",
		Title:  "Features contributed by each z64 target set",
		XLabel: "feature (1=Targets 2=RoutedTargets 3=BGPPfx 4=ASNs)",
		YLabel: "count (exclusive-count series suffixed ':excl')",
	}
	pfxSets := make(map[string]map[netip.Prefix]struct{})
	asnSets := make(map[string]map[uint32]struct{})
	feats := make(map[string]analysis.Features)
	for _, s := range independents() {
		f := analysis.FeaturesOf(e.targetSet(s, 64, target.FixedIID).Targets, table)
		feats[s] = f
		pfxSets[s] = f.Prefixes
		asnSets[s] = f.ASNs
	}
	exclPfx := analysis.ExclusiveKeys(pfxSets)
	exclASN := analysis.ExclusiveKeys(asnSets)
	for _, s := range independents() {
		f := feats[s]
		fig.Series = append(fig.Series, analysis.Series{
			Name: s,
			X:    []float64{1, 2, 3, 4},
			Y: []float64{float64(f.Addrs.Len()), float64(f.Routed),
				float64(len(f.Prefixes)), float64(len(f.ASNs))},
		})
		fig.Series = append(fig.Series, analysis.Series{
			Name: s + ":excl",
			X:    []float64{3, 4},
			Y:    []float64{float64(exclPfx[s]), float64(exclASN[s])},
		})
	}
	fig.Notes = append(fig.Notes,
		"Most prefixes and ASNs are shared by two or more sets; set size does not track BGP feature coverage.")
	return fig
}

// Figure3 reproduces the Discriminating Prefix Length distributions:
// per-set CDFs alone (3a) and when the sets are combined (3b).
func (e *Experiments) Figure3() (alone, combined *Figure) {
	names := append(independents(), "tum")
	alone = &Figure{
		ID: "Figure 3a", Title: "DPL distribution per z64 target set",
		XLabel: "discriminating prefix length", YLabel: "cumulative fraction",
	}
	combined = &Figure{
		ID: "Figure 3b", Title: "DPL distribution when sets are combined",
		XLabel: "discriminating prefix length", YLabel: "cumulative fraction",
	}
	// The union interleaves sets; each member's DPL is recomputed within
	// the union, then attributed back to the sets containing it.
	union := ipv6.EmptySet()
	for _, s := range names {
		union = union.Union(e.targetSet(s, 64, target.FixedIID).Targets)
	}
	unionDPL := make(map[netip.Addr]int, union.Len())
	for i, d := range ipv6.DPLs(union) {
		unionDPL[union.At(i)] = d
	}
	for _, s := range names {
		set := e.targetSet(s, 64, target.FixedIID).Targets
		cdf := ipv6.DPLCDF(set)
		alone.Series = append(alone.Series, cdfSeries(s, cdf))

		var comb [129]float64
		var hist [129]int
		for _, a := range set.Addrs() {
			hist[unionDPL[a]]++
		}
		cum := 0
		for d := 0; d <= 128; d++ {
			cum += hist[d]
			if set.Len() > 0 {
				comb[d] = float64(cum) / float64(set.Len())
			}
		}
		combined.Series = append(combined.Series, cdfSeries(s, comb))
	}
	combined.Notes = append(combined.Notes,
		"Rightward shift versus 3a indicates other sets interleave with (cleave apart) this set's targets.")
	return alone, combined
}

func cdfSeries(name string, cdf [129]float64) analysis.Series {
	s := analysis.Series{Name: name}
	for d := 24; d <= 64; d += 4 {
		s.X = append(s.X, float64(d))
		s.Y = append(s.Y, cdf[d])
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
