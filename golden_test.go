package beholder

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden masters instead of diffing against
// them:
//
//	go test -run TestGoldenExperiments -update .
//
// Regenerate only when an intentional change to the evaluation's output
// lands, and review the diff like any other code change.
var update = flag.Bool("update", false, "rewrite testdata/golden from the current evaluation output")

// goldenOptions is the small deterministic configuration the golden
// suite renders: every table and figure in under a second, with results
// that are byte-stable across platforms and worker counts (everything
// downstream of the seed runs in virtual time).
func goldenOptions() ExpOptions {
	return ExpOptions{Seed: 2018, Scale: 0.15, Small: true, Rate: 8000}
}

// goldenName maps a renderable's ID to its golden file, keeping the
// paper-order index so the directory listing reads like the evaluation.
func goldenName(i int, id string) string {
	slug := strings.ToLower(id)
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.':
			return r
		case r == ' ':
			return '-'
		}
		return -1 // drop punctuation and non-ASCII (section signs)
	}, slug)
	return filepath.Join("testdata", "golden", pad2(i)+"-"+slug+".txt")
}

// renderableID extracts the ID field shared by Table and Figure.
func renderableID(r Renderable) string {
	switch v := r.(type) {
	case *Table:
		return v.ID
	case *Figure:
		return v.ID
	}
	return "renderable"
}

// TestGoldenExperiments renders the complete evaluation —
// Experiments.All() under the small deterministic config — against the
// checked-in golden masters. A refactor that claims output equivalence
// proves it here, byte for byte, instead of re-asserting table shapes
// ad hoc; an intentional output change regenerates with -update and
// reviews the diff.
func TestGoldenExperiments(t *testing.T) {
	e := NewExperiments(goldenOptions())
	rendered := e.All()

	if *update {
		if err := os.RemoveAll(filepath.Join("testdata", "golden")); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[string]bool)
	for i, r := range rendered {
		name := goldenName(i, renderableID(r))
		if seen[name] {
			t.Fatalf("duplicate golden name %s", name)
		}
		seen[name] = true
		got := r.Render()
		if *update {
			if err := os.WriteFile(name, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing golden master %s (run: go test -run TestGoldenExperiments -update .): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output differs from golden master\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}

	// Any golden file not produced this run is stale.
	if !*update {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			name := filepath.Join("testdata", "golden", ent.Name())
			if !seen[name] {
				t.Errorf("stale golden master %s (renderable no longer produced; run -update)", name)
			}
		}
	}
}
