package beholder

// One benchmark per table and figure in the paper's evaluation. Each
// iteration regenerates the artifact end to end on a fresh deterministic
// suite (bench scale: small universe, reduced seed lists, fast virtual
// clock), reporting the headline quantity as a custom metric so that
// `go test -bench .` doubles as a full reproduction run.
//
// cmd/beholder regenerates the same artifacts at campaign scale.

import (
	"math/rand"
	"net/netip"
	"runtime"
	"testing"

	"beholder/internal/probe"
	"beholder/internal/target"
	"beholder/internal/wire"
)

// mallocsNow reads the cumulative process malloc count; the hot-path
// benchmarks difference it around their timed regions to report
// allocs/probe, the enforced zero-allocation invariant (see cmd/bench).
func mallocsNow() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

func benchSuite(seed int64) *Experiments {
	return NewExperiments(ExpOptions{Seed: seed, Scale: 0.2, Small: true, Rate: 4000})
}

func BenchmarkTable1SeedProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table1()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2TUMSubsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table2()
		if len(t.Rows) < 6 {
			b.Fatal("missing subsets")
		}
	}
}

func BenchmarkTable3TransformGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table3()
		if len(t.Rows) != 4 {
			b.Fatal("want 4 transformation levels")
		}
	}
}

func BenchmarkTable4IIDChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table4()
		if len(t.Rows) != 6 {
			b.Fatal("want 6 type/code rows")
		}
	}
}

func BenchmarkTable5TargetSetProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table5()
		if len(t.Rows) != 19 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
	}
}

func BenchmarkTable6FillMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table6()
		if len(t.Rows) != 4 {
			b.Fatal("want 4 MaxTTL rows")
		}
	}
}

func BenchmarkTable7Campaigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.Table7()
		if len(t.Rows) != 20 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
	}
}

func BenchmarkFigure2TargetFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		f := e.Figure2()
		if len(f.Series) != 14 {
			b.Fatalf("series = %d", len(f.Series))
		}
	}
}

func BenchmarkFigure3DPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		fa, fb := e.Figure3()
		if len(fa.Series) != 8 || len(fb.Series) != 8 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFigure4StateCodec measures the Yarrp6 probe state machinery
// itself (Figure 4): building a probe with per-target-constant checksum
// and recovering state from a full ICMPv6 quotation.
func BenchmarkFigure4StateCodec(b *testing.B) {
	in := NewSmallInternet(1)
	v := in.NewVantage("codec")
	codec := probe.NewCodec(v.Conn(), wire.ProtoICMPv6, 0)
	target := MustAddr("2400:5:6:7::1")
	router := MustAddr("2400:9::1")
	pkt := make([]byte, 128)
	errPkt := make([]byte, wire.MinMTU)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := codec.BuildProbe(pkt, target, uint8(i%16+1))
		en := wire.BuildICMPv6Error(errPkt, wire.ICMPv6TimeExceeded, 0, router, v.Addr(), pkt[:n], 64)
		r, ok := codec.ParseReply(errPkt[:en])
		if !ok || !r.StateRecovered || r.Target != target {
			b.Fatal("state recovery failed")
		}
	}
}

func BenchmarkFigure5RateLimiting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		fa, fb := e.Figure5()
		if len(fa.Series) != 6 || len(fb.Series) != 6 {
			b.Fatal("want 6 series per vantage (3 rates x 2 methods)")
		}
		// Report the headline: sequential vs randomized hop-1
		// responsiveness at the highest rate.
		seqHop1 := fa.Series[4].Y[0]
		rndHop1 := fa.Series[5].Y[0]
		b.ReportMetric(seqHop1*100, "seq-hop1-%")
		b.ReportMetric(rndHop1*100, "rand-hop1-%")
	}
}

func BenchmarkFigure6ResultFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		f := e.Figure6()
		if len(f.Series) != 16 {
			b.Fatalf("series = %d", len(f.Series))
		}
	}
}

func BenchmarkFigure7DiscoveryPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		f := e.Figure7()
		if len(f.Series) != 9 {
			b.Fatalf("series = %d", len(f.Series))
		}
	}
}

func BenchmarkFigure8SubnetDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		fa, fb := e.Figure8()
		if len(fa.Series) != 8 || len(fb.Series) != 9 {
			b.Fatal("missing series")
		}
	}
}

func BenchmarkProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.ProtocolComparison()
		if len(t.Rows) != 3 {
			b.Fatal("want 3 transports")
		}
	}
}

func BenchmarkDoubletree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.DoubletreeStudy()
		if len(t.Rows) != 4 {
			b.Fatal("want 4 rows")
		}
	}
}

func BenchmarkValidationPlatforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.PlatformValidation()
		if len(t.Rows) != 3 {
			b.Fatal("want 3 platforms")
		}
	}
}

func BenchmarkSubnetValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.SubnetValidation()
		if len(t.Rows) != 2 {
			b.Fatal("want dense + stratified rows")
		}
	}
}

// BenchmarkTargetBuild measures the three-step target generation
// pipeline end to end: zn transformation, deduplication, and IID
// synthesis over a DNS-derived seed list.
func BenchmarkTargetBuild(b *testing.B) {
	in := NewSmallInternet(9)
	list := in.SeedLists(0.5)["fdns_any"]
	var n int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		set := target.Build(list, target.Spec{SeedName: "fdns_any", ZN: 64, Synth: target.FixedIID}, rng)
		n = set.Targets.Len()
		if n == 0 {
			b.Fatal("empty target set")
		}
	}
	b.ReportMetric(float64(int64(n)*int64(b.N))/b.Elapsed().Seconds(), "targets/s")
}

// BenchmarkAliasDetect measures APD throughput: probes routed through
// the simulator per wall-clock second over a mixed candidate pool of
// truly aliased and genuine /64s.
func BenchmarkAliasDetect(b *testing.B) {
	in := NewSmallInternet(9)
	truth := in.AliasedGroundTruth(8)
	if len(truth) == 0 {
		b.Fatal("no aliased ground truth")
	}
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	cands := append(AliasCandidates(targets), truth...)
	var probes int64
	b.ReportAllocs()
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		in.Reset()
		v := in.NewVantage("apd-bench")
		aliases := v.DetectAliases(cands, AliasOptions{Rate: 10000})
		probes += aliases.ProbesSent()
		if aliases.Len() == 0 {
			b.Fatal("no aliases detected")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocsNow()-m0)/float64(probes), "allocs/probe")
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkAliasStudy regenerates the follow-on dealiasing table.
func BenchmarkAliasStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchSuite(int64(i) + 1)
		t := e.AliasStudy()
		if len(t.Rows) != 2 {
			b.Fatal("want 2 set rows")
		}
	}
}

// BenchmarkCampaignSharded measures the sharded campaign engine at 1, 2,
// and 4 shards over the campaign-scale suite: same permutation domain,
// same virtual schedule, split across concurrent prober instances.
// probes/s is wall-clock throughput; on an N-core machine the 4-shard
// case approaches 4x the 1-shard case (shards share no mutable state
// beyond the read-mostly plan-core and template stores — the only
// cross-shard writes are atomics).
func BenchmarkCampaignSharded(b *testing.B) {
	in := NewSmallInternet(5)
	targets, err := in.TargetSet("fdns_any", 64, "fixediid", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			var sent int64
			var allocs uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Universe construction is fixed-cost setup; keep it out
				// of the probes/s and allocs/probe measurements so the
				// shard-scaling ratio reflects the engine alone.
				b.StopTimer()
				run := NewSmallInternet(5)
				v := run.NewVantage("campaign-bench")
				m0 := mallocsNow()
				b.StartTimer()
				res, err := v.RunYarrp6(targets, YarrpOptions{
					Rate: 10000, MaxTTL: 16, Key: 99, Fill: true, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				allocs += mallocsNow() - m0
				b.StartTimer()
				sent += res.ProbesSent
			}
			b.StopTimer()
			b.ReportMetric(float64(allocs)/float64(sent), "allocs/probe")
			b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// BenchmarkCampaignMatrixWorkers regenerates the Table 7 campaign matrix
// with the cell-level worker pool: independent (vantage, target set)
// cells on private universes, up to N at a time.
func BenchmarkCampaignMatrixWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := NewExperiments(ExpOptions{
					Seed: int64(i) + 1, Scale: 0.2, Small: true, Rate: 4000, Workers: workers,
				})
				t := e.Table7()
				if len(t.Rows) != 20 {
					b.Fatalf("rows = %d", len(t.Rows))
				}
			}
		})
	}
}

// BenchmarkYarrp6Batch compares the probe pipeline at batch sizes 1
// (the historical per-probe loop) and the engine default: identical
// results by construction — see core.Config.Batch — so the delta is
// pure dispatch overhead.
func BenchmarkYarrp6Batch(b *testing.B) {
	in := NewSmallInternet(5)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 64} {
		b.Run("batch="+itoa(batch), func(b *testing.B) {
			var sent int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.Reset()
				v := in.NewVantage("throughput")
				res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 10000, MaxTTL: 16, Key: uint64(i), Batch: batch})
				if err != nil {
					b.Fatal(err)
				}
				sent += res.ProbesSent
			}
			b.StopTimer()
			b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}

// BenchmarkYarrp6Throughput measures raw prober packet construction and
// simulator forwarding: probes per wall-clock second over a campaign.
func BenchmarkYarrp6Throughput(b *testing.B) {
	in := NewSmallInternet(5)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var sent int64
	b.ReportAllocs()
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		in.Reset()
		v := in.NewVantage("throughput")
		res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 10000, MaxTTL: 16, Key: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		sent += res.ProbesSent
	}
	b.StopTimer()
	b.ReportMetric(float64(mallocsNow()-m0)/float64(sent), "allocs/probe")
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "probes/s")
	_ = netip.Addr{}
}

// BenchmarkYarrp6GraphObserver is BenchmarkYarrp6Throughput with the
// streaming topology-graph observer attached: the observer must stay
// within the fast path's allocs/probe budget (the same bound
// make bench-check enforces).
func BenchmarkYarrp6GraphObserver(b *testing.B) {
	in := NewSmallInternet(5)
	targets, err := in.TargetSet("caida", 64, "lowbyte1", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var sent int64
	var edges int64
	b.ReportAllocs()
	b.ResetTimer()
	m0 := mallocsNow()
	for i := 0; i < b.N; i++ {
		in.Reset()
		v := in.NewVantage("throughput")
		res, err := v.RunYarrp6(targets, YarrpOptions{Rate: 10000, MaxTTL: 16, Key: uint64(i), Graph: true})
		if err != nil {
			b.Fatal(err)
		}
		sent += res.ProbesSent
		edges += int64(res.Graph().NumEdges())
	}
	b.StopTimer()
	if edges == 0 {
		b.Fatal("graph observer built no edges")
	}
	b.ReportMetric(float64(mallocsNow()-m0)/float64(sent), "allocs/probe")
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "probes/s")
}
