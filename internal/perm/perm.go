// Package perm provides a keyed pseudorandom permutation over an arbitrary
// finite domain [0, n).
//
// Yarrp's central trick is to walk the probe space — the cross product of
// target addresses and TTLs — in a random order that any instance can
// regenerate from a small key, rather than materializing and shuffling the
// space (which would reintroduce the very state Yarrp exists to avoid). The
// original implementation uses RC5 as a block cipher; this package builds
// an equivalent primitive from a balanced Feistel network with a
// multiply-xor-shift round function, using cycle-walking to restrict the
// power-of-four Feistel domain to exactly [0, n).
//
// Properties relied on elsewhere (and enforced by tests):
//   - bijectivity over [0, n) for any key,
//   - determinism for a given (key, n),
//   - distinct keys produce (overwhelmingly) distinct orders.
package perm

import "fmt"

// Perm is a keyed permutation of [0, N).
type Perm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [rounds]uint64
}

const rounds = 4

// New creates the permutation of [0, n) selected by key. n must be at
// least 1 and smaller than 2^62 (two Feistel halves of 31 bits each).
func New(key uint64, n uint64) (*Perm, error) {
	if n == 0 {
		return nil, fmt.Errorf("perm: empty domain")
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("perm: domain %d exceeds 2^62-1", n)
	}
	// Find the smallest even bit width 2w with 2^(2w) >= n.
	bits := uint(2)
	for uint64(1)<<bits < n {
		bits += 2
		if bits >= 64 {
			break
		}
	}
	p := &Perm{
		n:        n,
		halfBits: bits / 2,
		halfMask: (uint64(1) << (bits / 2)) - 1,
	}
	// Derive round keys with splitmix64 so nearby campaign keys do not
	// yield correlated round functions.
	s := key
	for i := range p.keys {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.keys[i] = z ^ (z >> 31)
	}
	return p, nil
}

// Derive mixes key with an epoch counter into a fresh permutation key,
// so multi-epoch runs (adaptive generation) walk each epoch's domain in
// an independent order while remaining reproducible from the campaign
// key alone. The mixer is splitmix64, matching round-key derivation.
func Derive(key uint64, epoch uint64) uint64 {
	z := key + (epoch+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MustNew is New, panicking on error; for static configurations.
func MustNew(key, n uint64) *Perm {
	p, err := New(key, n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the domain size.
func (p *Perm) N() uint64 { return p.n }

func (p *Perm) round(r int, x uint64) uint64 {
	// Multiply-xor-shift mixer keyed per round; only halfBits survive.
	x ^= p.keys[r]
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 29
	return x & p.halfMask
}

func (p *Perm) encryptOnce(v uint64) uint64 {
	l := (v >> p.halfBits) & p.halfMask
	r := v & p.halfMask
	for i := 0; i < rounds; i++ {
		l, r = r, l^p.round(i, r)
	}
	return l<<p.halfBits | r
}

func (p *Perm) decryptOnce(v uint64) uint64 {
	l := (v >> p.halfBits) & p.halfMask
	r := v & p.halfMask
	for i := rounds - 1; i >= 0; i-- {
		l, r = r^p.round(i, l), l
	}
	return l<<p.halfBits | r
}

// Apply maps index i in [0, N) to its permuted position.
func (p *Perm) Apply(i uint64) uint64 {
	if i >= p.n {
		panic(fmt.Sprintf("perm: index %d out of domain [0,%d)", i, p.n))
	}
	// Cycle-walk: the Feistel block domain is a power of four >= n;
	// re-encrypt until the value lands inside [0, n). Expected iterations
	// are below 4 because the block domain is < 4n.
	v := p.encryptOnce(i)
	for v >= p.n {
		v = p.encryptOnce(v)
	}
	return v
}

// Invert maps a permuted position back to its index.
func (p *Perm) Invert(v uint64) uint64 {
	if v >= p.n {
		panic(fmt.Sprintf("perm: value %d out of domain [0,%d)", v, p.n))
	}
	x := p.decryptOnce(v)
	for x >= p.n {
		x = p.decryptOnce(x)
	}
	return x
}

// Iterator walks the permutation sequentially: successive Next calls yield
// Apply(0), Apply(1), ... Apply(N-1). It carries only a counter, so a
// campaign can be checkpointed and resumed by recording the counter value —
// the property that lets Yarrp6 remain stateless.
type Iterator struct {
	p    *Perm
	next uint64
}

// Iter returns an iterator positioned at index 0.
func (p *Perm) Iter() *Iterator { return &Iterator{p: p} }

// Resume returns an iterator positioned at index start.
func (p *Perm) Resume(start uint64) *Iterator { return &Iterator{p: p, next: start} }

// Next returns the next permuted value. ok is false once the domain is
// exhausted.
func (it *Iterator) Next() (v uint64, ok bool) {
	if it.next >= it.p.n {
		return 0, false
	}
	v = it.p.Apply(it.next)
	it.next++
	return v, true
}

// Pos reports how many values have been emitted (the resume counter).
func (it *Iterator) Pos() uint64 { return it.next }

// NextBatch fills out with the next permuted values, returning how many
// were written (short only when the domain runs out). It is exactly
// equivalent to len(out) successive Next calls — the batched probe
// pipeline uses it to amortize iterator dispatch over a whole send
// batch. The domain bound, key schedule, and mask are hoisted out of
// the fill loop; the cycle-walk runs inline per index.
func (it *Iterator) NextBatch(out []uint64) int {
	p := it.p
	i := it.next
	n := 0
	for n < len(out) && i < p.n {
		v := p.encryptOnce(i)
		for v >= p.n {
			v = p.encryptOnce(v)
		}
		out[n] = v
		n++
		i++
	}
	it.next = i
	return n
}
