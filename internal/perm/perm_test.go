package perm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBijectionSmallDomains(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 5, 16, 17, 100, 1000, 4097} {
		p := MustNew(0xdeadbeef, n)
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			v := p.Apply(i)
			if v >= n {
				t.Fatalf("n=%d: Apply(%d)=%d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate output %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	p := MustNew(42, 10_007)
	for i := uint64(0); i < p.N(); i++ {
		if got := p.Invert(p.Apply(i)); got != i {
			t.Fatalf("Invert(Apply(%d)) = %d", i, got)
		}
	}
}

func TestBijectionQuick(t *testing.T) {
	// For arbitrary keys and moderate domains, Apply is injective on a
	// sample and Invert is its inverse.
	f := func(key uint64, nRaw uint16, iRaw uint16) bool {
		n := uint64(nRaw)%5000 + 2
		p := MustNew(key, n)
		i := uint64(iRaw) % n
		v := p.Apply(i)
		return v < n && p.Invert(v) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustNew(7, 1000)
	b := MustNew(7, 1000)
	for i := uint64(0); i < 1000; i++ {
		if a.Apply(i) != b.Apply(i) {
			t.Fatalf("same key diverged at %d", i)
		}
	}
}

func TestDistinctKeysDiffer(t *testing.T) {
	a := MustNew(1, 1<<16)
	b := MustNew(2, 1<<16)
	same := 0
	for i := uint64(0); i < 1<<16; i++ {
		if a.Apply(i) == b.Apply(i) {
			same++
		}
	}
	// Two random permutations of 65536 elements agree on about one point
	// in expectation; allow generous slack.
	if same > 32 {
		t.Errorf("keys 1 and 2 agree on %d points", same)
	}
}

func TestDispersion(t *testing.T) {
	// Consecutive indices should map to widely separated outputs: the whole
	// reason Yarrp permutes is that probes adjacent in time must not be
	// adjacent in (target, TTL) space. Measure the mean absolute gap; for a
	// uniform random permutation of [0,n) it concentrates near n/3.
	const n = 1 << 16
	p := MustNew(99, n)
	var sum float64
	prev := p.Apply(0)
	for i := uint64(1); i < n; i++ {
		v := p.Apply(i)
		sum += math.Abs(float64(v) - float64(prev))
		prev = v
	}
	mean := sum / float64(n-1)
	if mean < float64(n)/5 {
		t.Errorf("mean successive gap %.0f too small for n=%d (poor dispersion)", mean, n)
	}
}

func TestIterator(t *testing.T) {
	p := MustNew(3, 257)
	it := p.Iter()
	var got []uint64
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 257 {
		t.Fatalf("iterator yielded %d values", len(got))
	}
	seen := make(map[uint64]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("iterator duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestIteratorResume(t *testing.T) {
	p := MustNew(3, 1000)
	it := p.Iter()
	for i := 0; i < 500; i++ {
		it.Next()
	}
	resumed := p.Resume(it.Pos())
	a, okA := it.Next()
	b, okB := resumed.Next()
	if !okA || !okB || a != b {
		t.Errorf("resume mismatch: (%d,%v) vs (%d,%v)", a, okA, b, okB)
	}
}

func TestDomainErrors(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := New(1, 1<<62); err == nil {
		t.Error("oversized domain accepted")
	}
	p := MustNew(1, 10)
	for _, fn := range []func(){
		func() { p.Apply(10) },
		func() { p.Invert(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-domain access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestLargeDomain(t *testing.T) {
	// A campaign-scale domain: 12.4M targets × 16 TTLs.
	n := uint64(12_400_000) * 16
	p := MustNew(0x1234, n)
	// Spot-check bijectivity via inversion on a sample.
	for i := uint64(0); i < 10_000; i++ {
		idx := i * 19_841 % n
		if p.Invert(p.Apply(idx)) != idx {
			t.Fatalf("inversion failed at %d", idx)
		}
	}
}

func BenchmarkApply(b *testing.B) {
	p := MustNew(0xabc, 12_400_000*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(uint64(i) % p.N())
	}
}

// TestNextBatchEquivalence: NextBatch must be exactly equivalent to
// repeated Next — same values, same positions, same exhaustion — for
// every batch size against every domain, including batches that do not
// divide the domain and batches larger than it.
func TestNextBatchEquivalence(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 64, 65, 1000, 4099} {
		for _, batch := range []int{1, 3, 7, 64, 100} {
			p := MustNew(0xfeed^n, n)
			serial := p.Iter()
			batched := p.Iter()
			buf := make([]uint64, batch)
			for {
				got := batched.NextBatch(buf)
				for i := 0; i < got; i++ {
					want, ok := serial.Next()
					if !ok {
						t.Fatalf("n=%d batch=%d: NextBatch yielded a value past exhaustion", n, batch)
					}
					if buf[i] != want {
						t.Fatalf("n=%d batch=%d: NextBatch[%d] = %d, Next = %d", n, batch, i, buf[i], want)
					}
				}
				if batched.Pos() != serial.Pos() {
					t.Fatalf("n=%d batch=%d: positions diverge: %d vs %d", n, batch, batched.Pos(), serial.Pos())
				}
				if got < batch {
					break
				}
			}
			if _, ok := serial.Next(); ok {
				t.Fatalf("n=%d batch=%d: serial iterator not exhausted when batched was", n, batch)
			}
			if got := batched.NextBatch(buf); got != 0 {
				t.Fatalf("n=%d batch=%d: NextBatch after exhaustion returned %d values", n, batch, got)
			}
		}
	}
}

// TestNextBatchResume: a batched walk resumed mid-domain must continue
// the same sequence a serial Resume would.
func TestNextBatchResume(t *testing.T) {
	p := MustNew(99, 1000)
	serial := p.Resume(337)
	batched := p.Resume(337)
	buf := make([]uint64, 17)
	for {
		got := batched.NextBatch(buf)
		if got == 0 {
			break
		}
		for i := 0; i < got; i++ {
			want, _ := serial.Next()
			if buf[i] != want {
				t.Fatalf("resumed NextBatch diverges at pos %d", batched.Pos()-uint64(got)+uint64(i))
			}
		}
	}
}
