package analysis

import (
	"net/netip"

	"beholder/internal/graph"
)

// simpleEdge is a directed interface pair with annotation (gap,
// protocol, vantage) stripped — the unit the paper's cross-vantage
// comparisons count, since two vantages "share" a link whenever both
// observed the pair at all.
type simpleEdge struct {
	src, dst netip.Addr
}

// simpleEdges folds a graph's multigraph down to its distinct directed
// interface pairs.
func simpleEdges(g *graph.Graph) map[simpleEdge]struct{} {
	out := make(map[simpleEdge]struct{}, g.NumEdges())
	g.ForEachEdge(func(e graph.Edge, _ int64) {
		out[simpleEdge{e.Src, e.Dst}] = struct{}{}
	})
	return out
}

// GraphMetrics summarizes one topology graph.
type GraphMetrics struct {
	Nodes      int   // all nodes
	IfaceNodes int   // Time Exceeded sources
	DestNodes  int   // reached destinations (periphery)
	Edges      int   // distinct annotated edges (gap/proto/vantage kept)
	LinkEdges  int   // distinct directed interface pairs
	DestEdges  int   // annotated edges into reached destinations
	Traversals int64 // sum of multi-edge counts
	MaxOut     int   // maximum simple out-degree
	MaxIn      int   // maximum simple in-degree
	// DegreeDist histograms simple total degree (in+out): index d holds
	// the node count with degree d, the last bucket folding everything
	// at or past it.
	DegreeDist [9]int
}

// MetricsOf computes summary metrics for a graph.
func MetricsOf(g *graph.Graph) GraphMetrics {
	var m GraphMetrics
	m.Nodes = g.NumNodes()
	m.Edges = g.NumEdges()
	m.Traversals = g.Traversals()
	g.ForEachNode(func(_ netip.Addr, fl graph.NodeFlags) {
		if fl&graph.NodeInterface != 0 {
			m.IfaceNodes++
		}
		if fl&graph.NodeDest != 0 {
			m.DestNodes++
		}
	})
	links := simpleEdges(g)
	m.LinkEdges = len(links)
	outDeg := make(map[netip.Addr]int)
	inDeg := make(map[netip.Addr]int)
	for se := range links {
		outDeg[se.src]++
		inDeg[se.dst]++
	}
	g.ForEachEdge(func(e graph.Edge, _ int64) {
		if e.Gap == graph.DestGap {
			m.DestEdges++
		}
	})
	g.ForEachNode(func(a netip.Addr, _ graph.NodeFlags) {
		o, i := outDeg[a], inDeg[a]
		if o > m.MaxOut {
			m.MaxOut = o
		}
		if i > m.MaxIn {
			m.MaxIn = i
		}
		d := o + i
		if d >= len(m.DegreeDist) {
			d = len(m.DegreeDist) - 1
		}
		m.DegreeDist[d]++
	})
	return m
}

// GraphDelta is one step of a marginal-contribution walk.
type GraphDelta struct {
	Name     string
	NewNodes int // nodes this graph adds to the union so far
	NewLinks int // directed interface pairs this graph adds
}

// MarginalContribution walks the graphs in order, reporting how many
// nodes and links each adds beyond the union of its predecessors — the
// paper's "does another vantage still grow the topology" analysis.
func MarginalContribution(names []string, gs []*graph.Graph) []GraphDelta {
	seenNodes := make(map[netip.Addr]struct{})
	seenLinks := make(map[simpleEdge]struct{})
	out := make([]GraphDelta, len(gs))
	for i, g := range gs {
		d := GraphDelta{Name: names[i]}
		g.ForEachNode(func(a netip.Addr, _ graph.NodeFlags) {
			if _, ok := seenNodes[a]; !ok {
				seenNodes[a] = struct{}{}
				d.NewNodes++
			}
		})
		for se := range simpleEdges(g) {
			if _, ok := seenLinks[se]; !ok {
				seenLinks[se] = struct{}{}
				d.NewLinks++
			}
		}
		out[i] = d
	}
	return out
}

// ExclusiveLinks returns, per named graph, how many directed interface
// pairs appear in that graph only — the graph-level "Exclusive" columns.
func ExclusiveLinks(names []string, gs []*graph.Graph) map[string]int {
	mult := make(map[simpleEdge]int)
	sets := make([]map[simpleEdge]struct{}, len(gs))
	for i, g := range gs {
		sets[i] = simpleEdges(g)
		for se := range sets[i] {
			mult[se]++
		}
	}
	out := make(map[string]int, len(gs))
	for i, name := range names {
		n := 0
		for se := range sets[i] {
			if mult[se] == 1 {
				n++
			}
		}
		out[name] = n
	}
	return out
}
