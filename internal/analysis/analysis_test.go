package analysis

import (
	"net/netip"
	"strings"
	"testing"

	"beholder/internal/bgp"
	"beholder/internal/ipv6"
	"beholder/internal/probe"
)

func te(store *probe.Store, target, from string, ttl uint8) {
	store.Add(probe.Reply{
		From: ipv6.MustAddr(from), Target: ipv6.MustAddr(target),
		Kind: probe.KindTimeExceeded, TTL: ttl, StateRecovered: true,
	})
}

func TestPerHopResponsiveness(t *testing.T) {
	s := probe.NewStore(true)
	te(s, "2400:1::1", "2400:a::1", 1)
	te(s, "2400:1::1", "2400:b::1", 2)
	te(s, "2400:2::1", "2400:a::1", 1)
	got := PerHopResponsiveness(s, 3, 2)
	if got[0] != 1.0 || got[1] != 0.5 || got[2] != 0 {
		t.Errorf("responsiveness = %v", got)
	}
}

func TestPathLengthsAndPercentile(t *testing.T) {
	s := probe.NewStore(true)
	te(s, "2400:1::1", "2400:a::1", 5)
	te(s, "2400:2::1", "2400:a::1", 9)
	te(s, "2400:3::1", "2400:a::1", 7)
	pl := PathLengths(s)
	if len(pl) != 3 || pl[0] != 5 || pl[2] != 9 {
		t.Fatalf("paths = %v", pl)
	}
	if Percentile(pl, 50) != 7 {
		t.Errorf("median = %d", Percentile(pl, 50))
	}
	if Percentile(pl, 100) != 9 || Percentile(pl, 0) != 5 {
		t.Errorf("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("empty percentile")
	}
}

func TestEUIOffsets(t *testing.T) {
	s := probe.NewStore(true)
	eui := ipv6.WithIID(ipv6.MustAddr("2400:9::"), ipv6.EUI64IID([6]byte{0, 0x1d, 0xd2, 1, 2, 3}))
	te(s, "2400:1::1", "2400:a::1", 1)
	s.Add(probe.Reply{From: eui, Target: ipv6.MustAddr("2400:1::1"), Kind: probe.KindTimeExceeded, TTL: 3, StateRecovered: true})
	offs := EUIOffsets(s)
	if len(offs) != 1 || offs[0] != 0 {
		t.Errorf("offsets = %v (EUI hop is the last hop)", offs)
	}
	if CountEUIInterfaces(s) != 1 {
		t.Errorf("EUI interfaces = %d", CountEUIInterfaces(s))
	}
}

func TestReachedTargetASN(t *testing.T) {
	table := bgp.NewTable()
	table.Announce(ipv6.MustPrefix("2400:100::/32"), 100)
	table.Announce(ipv6.MustPrefix("2400:200::/32"), 200)
	s := probe.NewStore(true)
	// Trace 1 reaches a hop in the target AS; trace 2 does not.
	te(s, "2400:100::1", "2400:100::ff", 4)
	te(s, "2400:200::1", "2400:100::fe", 3)
	got := ReachedTargetASNFraction(s, table)
	if got != 0.5 {
		t.Errorf("reached fraction = %f", got)
	}
}

func TestFeaturesAndExclusive(t *testing.T) {
	table := bgp.NewTable()
	table.Announce(ipv6.MustPrefix("2400:100::/32"), 100)
	table.Announce(ipv6.MustPrefix("2400:200::/32"), 200)
	setA := ipv6.NewSet([]netip.Addr{ipv6.MustAddr("2400:100::1"), ipv6.MustAddr("3fff::1")})
	setB := ipv6.NewSet([]netip.Addr{ipv6.MustAddr("2400:100::2"), ipv6.MustAddr("2400:200::1")})
	fa := FeaturesOf(setA, table)
	fb := FeaturesOf(setB, table)
	if fa.Routed != 1 || len(fa.Prefixes) != 1 || len(fa.ASNs) != 1 {
		t.Errorf("features A: %+v", fa)
	}
	excl := ExclusiveKeys(map[string]map[uint32]struct{}{
		"a": fa.ASNs, "b": fb.ASNs,
	})
	if excl["a"] != 0 || excl["b"] != 1 {
		t.Errorf("exclusive ASNs: %v", excl)
	}
}

func TestCount6to4(t *testing.T) {
	s := ipv6.NewSet([]netip.Addr{
		ipv6.MustAddr("2002:c000:204::1"),
		ipv6.MustAddr("2400:1::1"),
	})
	if Count6to4(s) != 1 {
		t.Errorf("6to4 count wrong")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "Table X", Title: "demo", Headers: []string{"a", "bcd"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Render()
	for _, want := range []string{"Table X", "demo", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{ID: "Figure Y", Title: "demo", XLabel: "hop", YLabel: "frac",
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}}}
	out := fig.Render()
	for _, want := range []string{"Figure Y", "s1", "0.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
