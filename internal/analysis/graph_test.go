package analysis

import (
	"net/netip"
	"testing"

	"beholder/internal/graph"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

func gte(target, from string, ttl uint8) probe.Reply {
	return probe.Reply{
		Kind: probe.KindTimeExceeded, From: netip.MustParseAddr(from),
		Target: netip.MustParseAddr(target), TTL: ttl,
		Proto: wire.ProtoICMPv6, StateRecovered: true,
	}
}

func buildGraph(name string, replies ...probe.Reply) *graph.Graph {
	g := graph.New(name)
	for _, r := range replies {
		g.OnReply(r)
	}
	return g
}

func TestGraphMetricsAndVantageAnalysis(t *testing.T) {
	// Vantage A: 1 -> 2 -> 3 toward t1, target reached.
	a := buildGraph("A",
		gte("2001:db8::1", "2001:db8:a::1", 1),
		gte("2001:db8::1", "2001:db8:a::2", 2),
		gte("2001:db8::1", "2001:db8:a::3", 3),
		probe.Reply{Kind: probe.KindEchoReply, From: netip.MustParseAddr("2001:db8::1"),
			Target: netip.MustParseAddr("2001:db8::1"), Proto: wire.ProtoICMPv6},
	)
	// Vantage B shares the a::2 -> a::3 link and adds one of its own.
	b := buildGraph("B",
		gte("2001:db8::1", "2001:db8:a::2", 4),
		gte("2001:db8::1", "2001:db8:a::3", 5),
		gte("2001:db8::2", "2001:db8:b::1", 1),
		gte("2001:db8::2", "2001:db8:a::3", 2),
	)

	ma := MetricsOf(a)
	if ma.Nodes != 4 || ma.IfaceNodes != 3 || ma.DestNodes != 1 {
		t.Fatalf("A metrics: %+v", ma)
	}
	if ma.LinkEdges != 3 || ma.DestEdges != 1 {
		t.Fatalf("A links=%d destEdges=%d, want 3/1", ma.LinkEdges, ma.DestEdges)
	}
	if ma.DegreeDist[0] != 0 || ma.MaxOut != 1 {
		t.Fatalf("A degree stats: %+v", ma)
	}

	names := []string{"A", "B"}
	gs := []*graph.Graph{a, b}
	marg := MarginalContribution(names, gs)
	if marg[0].NewNodes != 4 || marg[0].NewLinks != 3 {
		t.Fatalf("A marginal: %+v", marg[0])
	}
	// B adds node b::1 only, and links b::1->a::3 (the a::2->a::3 link
	// is shared with A).
	if marg[1].NewNodes != 1 || marg[1].NewLinks != 1 {
		t.Fatalf("B marginal: %+v", marg[1])
	}

	excl := ExclusiveLinks(names, gs)
	if excl["A"] != 2 || excl["B"] != 1 {
		t.Fatalf("exclusive links: %v", excl)
	}

	u := graph.Union(a, b)
	mu := MetricsOf(u)
	if mu.Nodes != 5 || mu.LinkEdges != 4 {
		t.Fatalf("union metrics: %+v", mu)
	}
	// The shared link carries two annotated edges (different vantages,
	// different gaps would too) but one simple link.
	if mu.Edges <= mu.LinkEdges {
		t.Fatalf("union annotated edges %d should exceed links %d", mu.Edges, mu.LinkEdges)
	}
}
