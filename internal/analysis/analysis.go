// Package analysis computes the derived metrics the paper's tables and
// figures report — per-hop responsiveness, EUI-64 path offsets, feature
// coverage and exclusivity, reachability — and renders them as text
// tables and series suitable for terminal output and EXPERIMENTS.md.
package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"beholder/internal/bgp"
	"beholder/internal/ipv6"
	"beholder/internal/probe"
)

// PerHopResponsiveness returns, for each TTL in [1, maxTTL], the fraction
// of traces with a Time-Exceeded response at that hop (Figure 5's
// y-axis). denom is the number of traces that probed each hop — for
// randomized full-range probing this is the target count.
func PerHopResponsiveness(store *probe.Store, maxTTL int, denom int) []float64 {
	counts := make([]int, maxTTL+1)
	for _, tr := range store.Traces() {
		for _, h := range tr.Hops {
			if int(h.TTL) <= maxTTL {
				counts[h.TTL]++
			}
		}
	}
	out := make([]float64, maxTTL)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		if denom > 0 {
			out[ttl-1] = float64(counts[ttl]) / float64(denom)
		}
	}
	return out
}

// PathLengths returns the distribution of per-trace path lengths
// (highest responding TTL) for traces with any hop.
func PathLengths(store *probe.Store) []int {
	var out []int
	for _, tr := range store.Traces() {
		if l := tr.PathLength(); l > 0 {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

// Percentile returns the p'th percentile (0-100) of sorted values; zero
// for empty input.
func Percentile(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * (len(sorted) - 1) / 100
	return sorted[idx]
}

// EUIOffsets computes, for every EUI-64 interface address discovered in
// store, its hop position as a negative offset from the end of its trace
// (Table 7's "EUI-64: Path Offset": 0 means last hop on path). The
// returned slice is sorted ascending.
func EUIOffsets(store *probe.Store) []int {
	var out []int
	for _, tr := range store.Traces() {
		plen := tr.PathLength()
		for _, h := range tr.Hops {
			if ipv6.IsEUI64IID(ipv6.IID(h.Addr)) {
				out = append(out, int(h.TTL)-plen)
			}
		}
	}
	sort.Ints(out)
	return out
}

// CountEUIInterfaces returns how many distinct discovered interface
// addresses carry EUI-64 identifiers.
func CountEUIInterfaces(store *probe.Store) int {
	n := 0
	store.ForEachInterface(func(a netip.Addr) {
		if ipv6.IsEUI64IID(ipv6.IID(a)) {
			n++
		}
	})
	return n
}

// ReachedTargetASNFraction returns the fraction of traces with at least
// one hop resolving (RIR- and equivalence-augmented) to the target's
// origin ASN — Table 7's "Reach Target ASN" column.
func ReachedTargetASNFraction(store *probe.Store, table *bgp.Table) float64 {
	total, reached := 0, 0
	for _, tr := range store.Traces() {
		asn := table.Origin(tr.Target)
		if asn == 0 {
			continue
		}
		total++
		for _, h := range tr.Hops {
			if hopASN := table.OriginAny(h.Addr); hopASN != 0 && table.SameOrg(hopASN, asn) {
				reached++
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(reached) / float64(total)
}

// Features summarizes a set of addresses against the RIB: distinct
// covering BGP prefixes and origin ASNs (Tables 5 and 7).
type Features struct {
	Addrs    *ipv6.Set
	Routed   int
	Prefixes map[netip.Prefix]struct{}
	ASNs     map[uint32]struct{}
}

// FeaturesOf computes coverage features for a set of addresses.
func FeaturesOf(addrs *ipv6.Set, table *bgp.Table) Features {
	f := Features{
		Addrs:    addrs,
		Prefixes: make(map[netip.Prefix]struct{}),
		ASNs:     make(map[uint32]struct{}),
	}
	for _, a := range addrs.Addrs() {
		rt, ok := table.Lookup(a)
		if !ok {
			continue
		}
		f.Routed++
		f.Prefixes[rt.Prefix] = struct{}{}
		f.ASNs[rt.Origin] = struct{}{}
	}
	return f
}

// ExclusiveKeys returns, per named set, the keys appearing in that set
// only (the "Exclusive" columns and Figure 2/6 insets).
func ExclusiveKeys[K comparable](sets map[string]map[K]struct{}) map[string]int {
	mult := make(map[K]int)
	for _, s := range sets {
		for k := range s {
			mult[k]++
		}
	}
	out := make(map[string]int, len(sets))
	for name, s := range sets {
		n := 0
		for k := range s {
			if mult[k] == 1 {
				n++
			}
		}
		out[name] = n
	}
	return out
}

// Count6to4 tallies addresses in 2002::/16 (Table 5's 6to4 column).
func Count6to4(s *ipv6.Set) int {
	n := 0
	for _, a := range s.Addrs() {
		if ipv6.Is6to4(a) {
			n++
		}
	}
	return n
}

// Table is a renderable result table.
type Table struct {
	ID      string // e.g. "Table 3"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a renderable result figure: named series over a common axis
// definition.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as a per-series data listing.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s  [x: %s, y: %s]\n", f.ID, f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "    %g\t%g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
