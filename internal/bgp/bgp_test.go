package bgp

import (
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
)

func build() *Table {
	t := NewTable()
	t.Announce(ipv6.MustPrefix("2001:db8::/32"), 100)
	t.Announce(ipv6.MustPrefix("2001:db8:1::/48"), 200)
	t.Announce(ipv6.MustPrefix("2620:1::/48"), 300)
	t.AddRIR(ipv6.MustPrefix("2a00:ffff::/32"), 100)
	return t
}

func TestLookupLongestMatch(t *testing.T) {
	tbl := build()
	r, ok := tbl.Lookup(ipv6.MustAddr("2001:db8:1::5"))
	if !ok || r.Origin != 200 || r.Prefix != ipv6.MustPrefix("2001:db8:1::/48") {
		t.Errorf("lookup: %+v ok=%v", r, ok)
	}
	r, ok = tbl.Lookup(ipv6.MustAddr("2001:db8:2::5"))
	if !ok || r.Origin != 100 {
		t.Errorf("covering /32: %+v", r)
	}
	if _, ok := tbl.Lookup(ipv6.MustAddr("3000::1")); ok {
		t.Error("unrouted address matched")
	}
}

func TestRoutedAndOrigin(t *testing.T) {
	tbl := build()
	if !tbl.Routed(ipv6.MustAddr("2620:1::1")) {
		t.Error("routed address not detected")
	}
	if tbl.Routed(ipv6.MustAddr("2a00:ffff::1")) {
		t.Error("RIR-only space must not count as BGP-routed")
	}
	if got := tbl.Origin(ipv6.MustAddr("2620:1::1")); got != 300 {
		t.Errorf("origin = %d", got)
	}
	if got := tbl.Origin(ipv6.MustAddr("3000::1")); got != 0 {
		t.Errorf("unrouted origin = %d", got)
	}
}

func TestLookupAnyRIRFallback(t *testing.T) {
	tbl := build()
	r, bgpHit, ok := tbl.LookupAny(ipv6.MustAddr("2a00:ffff::1"))
	if !ok || bgpHit || r.Origin != 100 {
		t.Errorf("RIR fallback: %+v bgp=%v ok=%v", r, bgpHit, ok)
	}
	_, bgpHit, ok = tbl.LookupAny(ipv6.MustAddr("2001:db8::1"))
	if !ok || !bgpHit {
		t.Error("BGP hit not flagged")
	}
	if got := tbl.OriginAny(ipv6.MustAddr("2a00:ffff::1")); got != 100 {
		t.Errorf("OriginAny = %d", got)
	}
}

func TestEquivalentASNs(t *testing.T) {
	tbl := build()
	tbl.AddEquivalent(100, 7922)
	tbl.AddEquivalent(7922, 7015) // transitive: Comcast-style sibling set
	if !tbl.SameOrg(100, 7015) {
		t.Error("transitive equivalence failed")
	}
	if !tbl.SameOrg(100, 100) {
		t.Error("reflexive equivalence failed")
	}
	if tbl.SameOrg(100, 300) {
		t.Error("unrelated ASNs equivalent")
	}
	if !tbl.SameOrg(7015, 7922) {
		t.Error("symmetric equivalence failed")
	}
}

func TestCounts(t *testing.T) {
	tbl := build()
	if tbl.NumPrefixes() != 3 {
		t.Errorf("NumPrefixes = %d", tbl.NumPrefixes())
	}
	if tbl.NumASNs() != 3 {
		t.Errorf("NumASNs = %d", tbl.NumASNs())
	}
	if got := len(tbl.Prefixes()); got != 3 {
		t.Errorf("Prefixes len = %d", got)
	}
}

func TestCover(t *testing.T) {
	tbl := build()
	addrs := []netip.Addr{
		ipv6.MustAddr("2001:db8::1"),   // /32, AS100
		ipv6.MustAddr("2001:db8:1::1"), // /48, AS200
		ipv6.MustAddr("2001:db8:1::2"), // /48, AS200
		ipv6.MustAddr("3000::1"),       // unrouted
	}
	cv := tbl.Cover(addrs)
	if cv.Total != 4 || cv.Routed != 3 {
		t.Errorf("total/routed = %d/%d", cv.Total, cv.Routed)
	}
	if cv.Prefixes.Len() != 2 {
		t.Errorf("prefixes = %d", cv.Prefixes.Len())
	}
	if len(cv.ASNs) != 2 || cv.ASNs[0] != 100 || cv.ASNs[1] != 200 {
		t.Errorf("asns = %v", cv.ASNs)
	}
}
