// Package bgp models the routing-table view the study consumes: a RIB of
// advertised IPv6 prefixes with origin ASNs, answering longest-prefix-match
// and covering-prefix queries.
//
// Two augmentations from Section 6 of the paper are included because the
// path-divergence subnet discovery depends on them: prefixes present in
// Regional Internet Registry allocations but absent from the global BGP
// table (networks need not advertise router infrastructure space), and
// "equivalent ASN" groups capturing organizations that originate customer
// and infrastructure prefixes from distinct ASNs (mergers, acquisitions,
// sibling ASNs).
package bgp

import (
	"net/netip"
	"sort"

	"beholder/internal/ipv6"
)

// Route is one RIB entry.
type Route struct {
	Prefix netip.Prefix
	Origin uint32
}

// Table is a BGP RIB with RIR and equivalent-ASN augmentation. The zero
// value is empty and ready for use. Mutation (Announce, AddRIR,
// AddEquivalent) is single-threaded; once built, every query method is
// a pure read, so concurrent campaign cells may share one table.
type Table struct {
	trie ipv6.Trie[uint32] // advertised prefixes → origin ASN
	rir  ipv6.Trie[uint32] // registry-only allocations → holder ASN
	dsu  map[uint32]uint32 // equivalent-ASN union-find parent
	asns map[uint32]int    // advertised origin ASN → announcement count
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{dsu: make(map[uint32]uint32), asns: make(map[uint32]int)}
}

// Announce inserts an advertised prefix originated by asn.
func (t *Table) Announce(p netip.Prefix, asn uint32) {
	t.trie.Insert(p, asn)
	t.asns[asn]++
}

// AddRIR records a registry allocation that is not globally advertised.
func (t *Table) AddRIR(p netip.Prefix, asn uint32) {
	t.rir.Insert(p, asn)
}

// AddEquivalent records that two ASNs belong to the same organization.
func (t *Table) AddEquivalent(a, b uint32) {
	ra, rb := t.find(a), t.find(b)
	if ra != rb {
		t.dsu[ra] = rb
	}
}

// find walks to the set root without path compression: equivalence
// chains are two or three links (organizations span a handful of ASNs),
// and keeping reads pure is what lets concurrent campaign cells share
// one table.
func (t *Table) find(a uint32) uint32 {
	for {
		r, ok := t.dsu[a]
		if !ok || r == a {
			return a
		}
		a = r
	}
}

// SameOrg reports whether two ASNs are equal or recorded as equivalent.
func (t *Table) SameOrg(a, b uint32) bool {
	if a == b {
		return true
	}
	return t.find(a) == t.find(b)
}

// Lookup returns the longest advertised prefix covering a.
func (t *Table) Lookup(a netip.Addr) (Route, bool) {
	p, asn, ok := t.trie.Lookup(a)
	return Route{p, asn}, ok
}

// LookupAny behaves like Lookup but falls back to RIR allocations when no
// advertised prefix covers a. The boolean result distinguishes a BGP hit
// (true) from an RIR-only hit.
func (t *Table) LookupAny(a netip.Addr) (r Route, bgpHit, ok bool) {
	if route, found := t.Lookup(a); found {
		return route, true, true
	}
	p, asn, found := t.rir.Lookup(a)
	return Route{p, asn}, false, found
}

// Routed reports whether a is covered by any advertised prefix.
func (t *Table) Routed(a netip.Addr) bool {
	_, _, ok := t.trie.Lookup(a)
	return ok
}

// Origin returns the origin ASN of the longest advertised prefix covering
// a, or 0 when a is unrouted.
func (t *Table) Origin(a netip.Addr) uint32 {
	_, asn, ok := t.trie.Lookup(a)
	if !ok {
		return 0
	}
	return asn
}

// OriginAny returns the origin of the covering advertised prefix, falling
// back to RIR allocations.
func (t *Table) OriginAny(a netip.Addr) uint32 {
	if asn := t.Origin(a); asn != 0 {
		return asn
	}
	_, asn, _ := t.rir.Lookup(a)
	return asn
}

// NumPrefixes returns the number of advertised prefixes.
func (t *Table) NumPrefixes() int { return t.trie.Len() }

// NumASNs returns the number of distinct origin ASNs.
func (t *Table) NumASNs() int { return len(t.asns) }

// Prefixes returns all advertised routes in address order.
func (t *Table) Prefixes() []Route {
	out := make([]Route, 0, t.trie.Len())
	t.trie.Walk(func(p netip.Prefix, asn uint32) bool {
		out = append(out, Route{p, asn})
		return true
	})
	return out
}

// Coverage summarizes how a set of addresses maps onto the RIB: how many
// are routed, and how many distinct covering BGP prefixes and origin ASNs
// they represent. These are the "Routed Targets", "BGP Prefixes", and
// "ASNs" columns of Table 5 and the interface-address feature counts of
// Table 7.
type Coverage struct {
	Total    int
	Routed   int
	Prefixes *ipv6.PrefixSet
	ASNs     []uint32 // sorted, distinct
}

// Cover computes Coverage for the given addresses.
func (t *Table) Cover(addrs []netip.Addr) Coverage {
	cv := Coverage{Total: len(addrs)}
	var pfx []netip.Prefix
	asnSet := make(map[uint32]struct{})
	for _, a := range addrs {
		r, ok := t.Lookup(a)
		if !ok {
			continue
		}
		cv.Routed++
		pfx = append(pfx, r.Prefix)
		asnSet[r.Origin] = struct{}{}
	}
	cv.Prefixes = ipv6.NewPrefixSet(pfx)
	cv.ASNs = make([]uint32, 0, len(asnSet))
	for asn := range asnSet {
		cv.ASNs = append(cv.ASNs, asn)
	}
	sort.Slice(cv.ASNs, func(i, j int) bool { return cv.ASNs[i] < cv.ASNs[j] })
	return cv
}
