package alias

import (
	"math/rand"
	"net/netip"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// Params tunes the APD scheme.
type Params struct {
	Probes     int           // random IIDs probed per candidate (k)
	MinReplies int           // echo replies at or above which a candidate is aliased
	PPS        float64       // probe departure rate
	HopLimit   uint8         // probe hop limit; must exceed the path length
	Cooldown   time.Duration // post-send linger for straggler replies
	Budget     int64         // total probe cap; <= 0 means unlimited
	Instance   uint8         // codec instance byte, distinguishing concurrent probers
	// Telemetry, when non-nil, receives each Detect run's counters
	// (apd_* metrics) in one end-of-run fold — APD runs are short and
	// low-rate, so per-event instrumentation buys nothing.
	Telemetry *telemetry.Shard
}

// DefaultParams returns the 6Prob-informed defaults: 8 probes per
// candidate, a majority-vote threshold (tolerating per-hop probe loss
// without admitting non-aliased prefixes, whose random addresses never
// produce echo replies), 1 kpps pacing, and a 2 s cool-down.
func DefaultParams() Params {
	return Params{
		Probes:     8,
		MinReplies: 4,
		PPS:        1000,
		HopLimit:   64,
		Cooldown:   2 * time.Second,
		Instance:   0xAD,
	}
}

// Result is one detection run's outcome.
type Result struct {
	Aliased    *Store
	Records    []Record // per-tested-candidate outcomes, in candidate order
	ProbesSent int64
	Tested     int // candidates probed
	Skipped    int // candidates left unprobed by budget exhaustion
}

// Detector probes candidate prefixes through a vantage connection. It
// is stateless between Detect calls apart from the codec epoch.
type Detector struct {
	conn  probe.Conn
	codec *probe.Codec
	p     Params
}

// NewDetector creates a detector over conn. Zero-valued Params fields
// fall back to DefaultParams; an explicit Probes without MinReplies
// gets a majority threshold.
func NewDetector(conn probe.Conn, p Params) *Detector {
	if p.Probes <= 0 {
		p.Probes = 8
	}
	if p.MinReplies <= 0 {
		p.MinReplies = (p.Probes + 1) / 2
	}
	if p.MinReplies > p.Probes {
		p.MinReplies = p.Probes
	}
	if p.PPS <= 0 {
		p.PPS = 1000
	}
	if p.HopLimit == 0 {
		p.HopLimit = 64
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	return &Detector{conn: conn, codec: probe.NewCodec(conn, wire.ProtoICMPv6, p.Instance), p: p}
}

// Detect runs APD over the candidate prefixes and returns the detected
// alias list. Candidates are canonicalized and deduplicated preserving
// first-occurrence order, so under a budget the earliest candidates —
// the caller's highest priority — are probed and the remainder
// reported as Skipped rather than probed partially.
func (d *Detector) Detect(cands []netip.Prefix, rng *rand.Rand) *Result {
	uniq := make([]netip.Prefix, 0, len(cands))
	seen := make(map[netip.Prefix]struct{}, len(cands))
	for _, p := range cands {
		cp := ipv6.CanonicalPrefix(p)
		if _, dup := seen[cp]; dup {
			continue
		}
		seen[cp] = struct{}{}
		uniq = append(uniq, cp)
	}
	res := &Result{Aliased: NewStore()}
	defer d.publishTelemetry(res)
	n := len(uniq)
	if b := d.p.Budget; b > 0 {
		if affordable := int(b / int64(d.p.Probes)); affordable < n {
			res.Skipped = n - affordable
			n = affordable
		}
	}
	res.Tested = n
	if n == 0 {
		return res
	}

	counts := make([]int, n)
	owner := make(map[netip.Addr]int, n*d.p.Probes)
	interval := time.Duration(float64(time.Second) / d.p.PPS)
	pkt := make([]byte, 256)
	rbuf := make([]byte, 2048)

	// Rounds interleave candidates: consecutive probes into one prefix
	// are separated by a full pass over all others (the cool-down).
	for round := 0; round < d.p.Probes; round++ {
		for i := 0; i < n; i++ {
			a := randomAddrIn(uniq[i], rng)
			owner[a] = i
			m := d.codec.BuildProbe(pkt, a, d.p.HopLimit)
			if err := d.conn.Send(pkt[:m]); err == nil {
				res.ProbesSent++
			}
			d.conn.Sleep(interval)
			d.drain(rbuf, owner, counts)
		}
	}
	// Linger for replies still in flight.
	const steps = 20
	for s := 0; s < steps; s++ {
		d.conn.Sleep(d.p.Cooldown / steps)
		d.drain(rbuf, owner, counts)
	}

	res.Records = make([]Record, n)
	for i, p := range uniq[:n] {
		rec := Record{
			Prefix:  p,
			Probes:  d.p.Probes,
			Replies: counts[i],
			Aliased: counts[i] >= d.p.MinReplies,
		}
		res.Records[i] = rec
		if rec.Aliased {
			res.Aliased.Add(rec)
		}
	}
	return res
}

// publishTelemetry folds one Detect run's counters into the configured
// telemetry shard.
func (d *Detector) publishTelemetry(res *Result) {
	sh := d.p.Telemetry
	if sh == nil {
		return
	}
	sh.Counter("apd_probes_sent_total").Add(res.ProbesSent)
	sh.Counter("apd_candidates_tested_total").Add(int64(res.Tested))
	sh.Counter("apd_candidates_skipped_total").Add(int64(res.Skipped))
	sh.Counter("apd_aliased_total").Add(int64(res.Aliased.Len()))
	sh.Flush()
}

// drain consumes deliverable replies, crediting echo replies back to
// the candidate owning the probed address. Each probed address counts
// at most once.
func (d *Detector) drain(buf []byte, owner map[netip.Addr]int, counts []int) {
	for {
		m, ok := d.conn.Recv(buf)
		if !ok {
			return
		}
		r, ok := d.codec.ParseReply(buf[:m])
		if !ok || r.Kind != probe.KindEchoReply {
			continue
		}
		if i, ok := owner[r.Target]; ok {
			counts[i]++
			delete(owner, r.Target)
		}
	}
}

// randomAddrIn draws a uniformly random address beneath p.
func randomAddrIn(p netip.Prefix, rng *rand.Rand) netip.Addr {
	base := ipv6.FromAddr(ipv6.PrefixBase(p))
	host := ipv6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}.And(ipv6.Mask(p.Bits()).Not())
	return base.Or(host).Addr()
}
