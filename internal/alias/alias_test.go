package alias

import (
	"math/rand"
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/target"
)

// aliasUniverse builds the small universe plus ground-truth aliased
// /64s and an equal-sized pool of genuine (non-aliased) provisioned
// /64 decoys.
func aliasUniverse(t testing.TB, seed int64, limit int) (u *netsim.Universe, truth, decoys []netip.Prefix) {
	t.Helper()
	u = netsim.NewUniverse(netsim.TestConfig(seed))
	for _, as := range u.ASes() {
		truth = append(truth, u.TruthAliasedLANs(as, 20)...)
		if len(truth) >= limit {
			truth = truth[:limit]
			break
		}
	}
	if len(truth) < 20 {
		t.Fatalf("only %d ground-truth aliased /64s in the small universe", len(truth))
	}
	rng := rand.New(rand.NewSource(seed))
	for _, as := range u.ASes() {
		if as.Tier != 3 {
			continue
		}
		for i := 0; i < 4 && len(decoys) < len(truth); i++ {
			if lan, ok := u.RandomLAN(rng, as); ok && lan.Bits() == 64 && !u.LANAliased(lan, as) {
				decoys = append(decoys, lan)
			}
		}
	}
	if len(decoys) < len(truth)/2 {
		t.Fatalf("only %d decoy LANs sampled", len(decoys))
	}
	return u, truth, decoys
}

func TestDetectPrecisionRecall(t *testing.T) {
	u, truth, decoys := aliasUniverse(t, 42, 200)
	truthSet := make(map[netip.Prefix]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}

	v := u.NewVantage(netsim.VantageSpec{Name: "apd", Kind: netsim.KindUniversity, ChainLen: 3})
	det := NewDetector(v, DefaultParams())
	res := det.Detect(append(append([]netip.Prefix{}, truth...), decoys...), rand.New(rand.NewSource(7)))

	if res.Tested != len(truth)+len(decoys) {
		t.Fatalf("tested %d of %d candidates", res.Tested, len(truth)+len(decoys))
	}
	var tp, fp, fn int
	for _, rec := range res.Records {
		switch {
		case rec.Aliased && truthSet[rec.Prefix]:
			tp++
		case rec.Aliased && !truthSet[rec.Prefix]:
			fp++
		case !rec.Aliased && truthSet[rec.Prefix]:
			fn++
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	t.Logf("tp=%d fp=%d fn=%d precision=%.3f recall=%.3f probes=%d",
		tp, fp, fn, precision, recall, res.ProbesSent)
	if precision < 0.9 {
		t.Errorf("precision %.3f < 0.9", precision)
	}
	if recall < 0.9 {
		t.Errorf("recall %.3f < 0.9", recall)
	}
	// The store agrees with the records.
	for _, rec := range res.Records {
		if rec.Aliased != res.Aliased.Contains(rec.Prefix.Addr()) {
			t.Fatalf("store/record mismatch at %s", rec.Prefix)
		}
	}
}

func TestDetectBudget(t *testing.T) {
	u, truth, decoys := aliasUniverse(t, 11, 60)
	cands := append(append([]netip.Prefix{}, truth...), decoys...)
	v := u.NewVantage(netsim.VantageSpec{Name: "apd-budget", Kind: netsim.KindUniversity, ChainLen: 3})
	p := DefaultParams()
	p.Budget = int64(p.Probes * 10)
	res := NewDetector(v, p).Detect(cands, rand.New(rand.NewSource(1)))
	if res.Tested != 10 {
		t.Errorf("tested %d candidates under a 10-candidate budget", res.Tested)
	}
	if res.Skipped != len(cands)-10 {
		t.Errorf("skipped %d, want %d", res.Skipped, len(cands)-10)
	}
	if res.ProbesSent > p.Budget {
		t.Errorf("sent %d probes over budget %d", res.ProbesSent, p.Budget)
	}
}

func TestDealiasModes(t *testing.T) {
	st := NewStore()
	aliased := []netip.Prefix{
		netip.MustParsePrefix("2400:a:a:1::/64"),
		netip.MustParsePrefix("2400:a:a:2::/64"),
	}
	for _, p := range aliased {
		st.Add(Record{Prefix: p, Aliased: true})
	}
	var members []netip.Addr
	for _, p := range aliased {
		for iid := uint64(1); iid <= 3; iid++ {
			members = append(members, ipv6.WithIID(p.Addr(), iid))
		}
	}
	clean := []netip.Addr{
		netip.MustParseAddr("2400:b:b:1::1"),
		netip.MustParseAddr("2400:b:b:2::1"),
	}
	set := ipv6.NewSet(append(members, clean...))

	kept, stats := Dealias(set, st, Drop)
	if kept.Len() != len(clean) || stats.Dropped != len(members) {
		t.Errorf("Drop: kept %d dropped %d, want %d/%d", kept.Len(), stats.Dropped, len(clean), len(members))
	}
	if stats.AliasedPrefixes != len(aliased) {
		t.Errorf("Drop: intersected %d prefixes, want %d", stats.AliasedPrefixes, len(aliased))
	}
	kept, stats = Dealias(set, st, Collapse)
	if kept.Len() != len(clean)+len(aliased) {
		t.Errorf("Collapse: kept %d, want %d", kept.Len(), len(clean)+len(aliased))
	}
	if stats.Dropped != len(members)-len(aliased) {
		t.Errorf("Collapse: dropped %d", stats.Dropped)
	}
	for _, p := range aliased {
		n := 0
		for _, a := range kept.Addrs() {
			if p.Contains(a) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("Collapse: %d representatives under %s", n, p)
		}
	}
}

func TestDealiasSet(t *testing.T) {
	st := NewStore()
	st.Add(Record{Prefix: netip.MustParsePrefix("2400:c:c:1::/64"), Aliased: true})
	set := &target.Set{
		Spec: target.Spec{SeedName: "fdns_any", ZN: 64, Synth: target.FixedIID},
		Targets: ipv6.NewSet([]netip.Addr{
			netip.MustParseAddr("2400:c:c:1::1"),
			netip.MustParseAddr("2400:c:c:2::1"),
		}),
	}
	out, stats := DealiasSet(set, st, Drop)
	if out.Targets.Len() != 1 || stats.Dropped != 1 {
		t.Errorf("kept %d dropped %d", out.Targets.Len(), stats.Dropped)
	}
	if out.Name() != "fdns_any+dealiased-z64-fixediid" {
		t.Errorf("name = %q", out.Name())
	}
}

func TestCandidates(t *testing.T) {
	set := ipv6.NewSet([]netip.Addr{
		netip.MustParseAddr("2400:1:2:3::1"),
		netip.MustParseAddr("2400:1:2:3::2"),
		netip.MustParseAddr("2400:1:2:4::1"),
	})
	got := Candidates(set, 64)
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2", len(got))
	}
	if got[0] != netip.MustParsePrefix("2400:1:2:3::/64") || got[1] != netip.MustParsePrefix("2400:1:2:4::/64") {
		t.Errorf("candidates = %v", got)
	}
}
