// Package alias detects and filters aliased prefixes: network regions
// where a middlebox (a CDN front end, load balancer, or firewall)
// answers for every address, so that a single /64 can absorb an entire
// campaign's probe budget while contributing one real device.
//
// The detector implements a 6Prob-style aliased-prefix detection (APD)
// scheme: k random interface identifiers are probed beneath each
// candidate prefix, with probes interleaved across candidates so that
// consecutive probes into one prefix are separated by a full pass — a
// cool-down that keeps per-prefix middlebox rate limiters from biasing
// classification — all under an optional global probe budget. A
// candidate whose random addresses overwhelmingly answer is classified
// aliased: random 64-bit IIDs are never assigned, so genuine responses
// to them can only come from something answering for the whole prefix.
//
// Detected prefixes live in a radix-trie Store supporting
// longest-prefix containment queries, and a Dealias pass filters or
// collapses target sets against the store.
package alias

import (
	"net/netip"

	"beholder/internal/ipv6"
	"beholder/internal/target"
)

// Record is one candidate prefix's detection outcome.
type Record struct {
	Prefix  netip.Prefix
	Probes  int // probes sent into the prefix
	Replies int // echo replies received from distinct probed addresses
	Aliased bool
}

// Store holds detected aliased prefixes in a binary radix trie, so
// membership of an address under any aliased prefix is an O(128) walk
// regardless of store size.
type Store struct {
	trie ipv6.Trie[Record]
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add inserts rec's prefix, replacing any previous record for it.
func (s *Store) Add(rec Record) { s.trie.Insert(rec.Prefix, rec) }

// Len returns the number of stored aliased prefixes.
func (s *Store) Len() int { return s.trie.Len() }

// Contains reports whether a falls beneath any stored aliased prefix.
func (s *Store) Contains(a netip.Addr) bool {
	_, _, ok := s.trie.Lookup(a)
	return ok
}

// Covering returns the longest stored aliased prefix covering a.
func (s *Store) Covering(a netip.Addr) (netip.Prefix, bool) {
	p, _, ok := s.trie.Lookup(a)
	return p, ok
}

// Prefixes returns the stored prefixes in address order.
func (s *Store) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, s.trie.Len())
	s.trie.Walk(func(p netip.Prefix, _ Record) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Records returns the stored records in address order.
func (s *Store) Records() []Record {
	out := make([]Record, 0, s.trie.Len())
	s.trie.Walk(func(_ netip.Prefix, r Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Candidates derives the unique covering prefixes of length bits from a
// target set — the natural alias-detection candidates for a campaign.
func Candidates(set *ipv6.Set, bits int) []netip.Prefix {
	out := make([]netip.Prefix, 0, set.Len())
	var last netip.Prefix
	for _, a := range set.Addrs() {
		p := ipv6.Extend(netip.PrefixFrom(a, 128), bits)
		if len(out) == 0 || p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// Mode selects how Dealias treats members of aliased prefixes.
type Mode uint8

// Dealiasing modes.
const (
	// Drop removes every member of an aliased prefix: responses there
	// are middlebox artifacts, not topology (6Prob's hitlist policy).
	Drop Mode = iota
	// Collapse keeps exactly one representative member per aliased
	// prefix, preserving the middlebox itself as a single target.
	Collapse
)

// Stats summarizes one Dealias pass.
type Stats struct {
	Input           int // members before dealiasing
	Kept            int // members after
	Dropped         int // members removed
	AliasedPrefixes int // distinct aliased prefixes the input intersected
}

// Dealias filters targets against the store: members outside aliased
// prefixes pass through; members inside are dropped, or collapsed to
// one representative per prefix under Collapse.
func Dealias(targets *ipv6.Set, st *Store, mode Mode) (*ipv6.Set, Stats) {
	stats := Stats{Input: targets.Len()}
	kept := make([]netip.Addr, 0, targets.Len())
	seen := make(map[netip.Prefix]struct{})
	for _, a := range targets.Addrs() {
		p, aliased := st.Covering(a)
		if !aliased {
			kept = append(kept, a)
			continue
		}
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			if mode == Collapse {
				kept = append(kept, a)
				continue
			}
		}
		stats.Dropped++
	}
	stats.Kept = len(kept)
	stats.AliasedPrefixes = len(seen)
	return ipv6.NewSet(kept), stats
}

// DealiasSet applies Dealias to a generated target set, returning a set
// whose name records the pass.
func DealiasSet(set *target.Set, st *Store, mode Mode) (*target.Set, Stats) {
	kept, stats := Dealias(set.Targets, st, mode)
	spec := set.Spec
	spec.SeedName += "+dealiased"
	return &target.Set{Spec: spec, Targets: kept}, stats
}
