package kip

import (
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
)

func lan(s string) netip.Prefix { return ipv6.MustPrefix(s) }

func TestAggregateBasicCrowd(t *testing.T) {
	// Four sibling /64s under one /62, all active in every interval, k=4:
	// the /62 qualifies, nothing longer does.
	var obs []Observation
	for i := 0; i < 4; i++ {
		p := ipv6.NthSubprefix(lan("2001:db8::/62"), 64, uint64(i))
		for it := 0; it < 4; it++ {
			obs = append(obs, Observation{LAN: p, Interval: it})
		}
	}
	got := Aggregate(obs, 4, Params{K: 4, Percentile: 50})
	if len(got) != 1 || got[0] != lan("2001:db8::/62") {
		t.Fatalf("got %v want [2001:db8::/62]", got)
	}
}

func TestAggregateK1YieldsLeaves(t *testing.T) {
	obs := []Observation{
		{LAN: lan("2001:db8:0:1::/64"), Interval: 0},
		{LAN: lan("2001:db8:0:2::/64"), Interval: 0},
	}
	got := Aggregate(obs, 1, Params{K: 1, Percentile: 50})
	if len(got) != 2 {
		t.Fatalf("k=1 should emit both /64s, got %v", got)
	}
	for _, p := range got {
		if p.Bits() != 64 {
			t.Errorf("k=1 aggregate %s not a /64", p)
		}
	}
}

func TestAggregateSuppressesSparseRegions(t *testing.T) {
	// A crowd of 8 under one /61 plus a single isolated /64 far away with
	// k=8: the isolated client must be suppressed (not published at any
	// length), reproducing the university case in the paper's Section 6.
	var obs []Observation
	for i := 0; i < 8; i++ {
		p := ipv6.NthSubprefix(lan("2001:db8:aaaa::/61"), 64, uint64(i))
		obs = append(obs, Observation{LAN: p, Interval: 0})
	}
	obs = append(obs, Observation{LAN: lan("2620:1:1:1::/64"), Interval: 0})
	got := Aggregate(obs, 1, Params{K: 8, Percentile: 50})
	if len(got) != 1 || got[0] != lan("2001:db8:aaaa::/61") {
		t.Fatalf("got %v want only the /61 crowd", got)
	}
}

func TestAggregatePercentile(t *testing.T) {
	// Two /64s active together only in 1 of 4 intervals. With p=50 and
	// k=2 the pair does not qualify at /63 (median simultaneity is below
	// 2), so the whole region is suppressed... but with p=25 it publishes.
	a, b := lan("2001:db8::/64"), lan("2001:db8:0:1::/64")
	obs := []Observation{
		{LAN: a, Interval: 0}, {LAN: b, Interval: 0},
		{LAN: a, Interval: 1},
		{LAN: a, Interval: 2},
		{LAN: a, Interval: 3},
	}
	if got := Aggregate(obs, 4, Params{K: 2, Percentile: 50}); len(got) != 0 {
		t.Errorf("p50: got %v want suppression", got)
	}
	got := Aggregate(obs, 4, Params{K: 2, Percentile: 25})
	if len(got) != 1 || got[0].Bits() != 63 {
		t.Errorf("p25: got %v want one /63", got)
	}
}

func TestAggregateKAnonymityInvariant(t *testing.T) {
	// Every published aggregate must cover at least K observed /64s
	// (checking the k-anonymity guarantee end to end).
	var obs []Observation
	lans := []netip.Prefix{}
	base := lan("2400:1000::/48")
	for i := 0; i < 64; i++ {
		p := ipv6.NthSubprefix(base, 64, uint64(i*3)) // spread through the /48
		lans = append(lans, p)
		for it := 0; it < 3; it++ {
			obs = append(obs, Observation{LAN: p, Interval: it})
		}
	}
	const K = 16
	got := Aggregate(obs, 3, Params{K: K, Percentile: 50})
	if len(got) == 0 {
		t.Fatal("no aggregates")
	}
	for _, agg := range got {
		n := 0
		for _, l := range lans {
			if agg.Contains(l.Addr()) {
				n++
			}
		}
		if n < K {
			t.Errorf("aggregate %s covers only %d < %d active /64s", agg, n, K)
		}
	}
}

func TestAggregateEmptyAndDegenerate(t *testing.T) {
	if got := Aggregate(nil, 4, Params{K: 4, Percentile: 50}); got != nil {
		t.Errorf("nil obs: %v", got)
	}
	if got := Aggregate([]Observation{{LAN: lan("2001:db8::/64"), Interval: 0}}, 0, Params{K: 1}); got != nil {
		t.Errorf("zero intervals: %v", got)
	}
	// Out-of-range interval ignored rather than panicking.
	got := Aggregate([]Observation{
		{LAN: lan("2001:db8::/64"), Interval: 99},
		{LAN: lan("2001:db8::/64"), Interval: 0},
	}, 2, Params{K: 1, Percentile: 50})
	if len(got) != 1 {
		t.Errorf("out-of-range interval handling: %v", got)
	}
}

func TestAggregateDeduplicatesObservations(t *testing.T) {
	// The same LAN observed twice in one interval counts once toward
	// simultaneity: otherwise a single client could impersonate a crowd.
	obs := []Observation{
		{LAN: lan("2001:db8::/64"), Interval: 0},
		{LAN: lan("2001:db8::/64"), Interval: 0},
		{LAN: lan("2001:db8::/64"), Interval: 0},
	}
	if got := Aggregate(obs, 1, Params{K: 2, Percentile: 50}); len(got) != 0 {
		t.Errorf("duplicate observations inflated the crowd: %v", got)
	}
}
