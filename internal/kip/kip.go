// Package kip implements kIP aggregation-based address anonymization after
// Plonka & Berger (arXiv:1707.03900), the mechanism behind the paper's CDN
// seed lists (cdn-k32, cdn-k256).
//
// WWW client /64 prefixes observed in a measurement window are replaced by
// covering aggregates chosen so that each published aggregate covered at
// least k simultaneously-active /64s in at least the p'th percentile of
// observation intervals. Clients therefore hide in crowds of size >= k,
// and regions with too few simultaneously-active clients are withheld
// entirely — the property that later frustrates subnet validation in
// Section 6 of the topology paper.
package kip

import (
	"net/netip"

	"beholder/internal/ipv6"
)

// Params are the kIP parameters as given in the paper's Section 3.1:
// w=14 days, i=1 hour intervals, k simultaneously-assigned /64s, p=50th
// percentile. The window and interval enter through the caller's interval
// numbering of observations.
type Params struct {
	K          int // minimum simultaneously-active /64s per aggregate
	Percentile int // percentile of intervals that must meet K (0-100]
}

// Observation records that a client /64 was active during an interval.
type Observation struct {
	LAN      netip.Prefix // a /64
	Interval int          // interval index in [0, NumIntervals)
}

type trieNode struct {
	child [2]*trieNode
	// perInterval counts distinct active /64s beneath this node.
	perInterval []uint32
	depth       int
}

// Aggregate computes the anonymized aggregate set for the observations.
// numIntervals is the total number of observation intervals in the window.
// The result is the set of longest prefixes each of which satisfied the
// k-anonymity condition; observed /64s not covered by any qualifying
// aggregate are suppressed.
func Aggregate(obs []Observation, numIntervals int, p Params) []netip.Prefix {
	if len(obs) == 0 || numIntervals <= 0 {
		return nil
	}
	if p.K < 1 {
		p.K = 1
	}
	if p.Percentile <= 0 || p.Percentile > 100 {
		p.Percentile = 50
	}

	// Deduplicate (LAN, interval) pairs.
	type key struct {
		hi       uint64
		interval int
	}
	seen := make(map[key]struct{}, len(obs))
	root := &trieNode{perInterval: make([]uint32, numIntervals)}
	for _, o := range obs {
		lan := ipv6.CanonicalPrefix(netip.PrefixFrom(o.LAN.Addr(), 64))
		hi := ipv6.FromAddr(lan.Addr()).Hi
		k := key{hi, o.Interval}
		if _, dup := seen[k]; dup || o.Interval < 0 || o.Interval >= numIntervals {
			continue
		}
		seen[k] = struct{}{}
		// Insert the 64 high bits, incrementing per-interval counters along
		// the path: each distinct active /64 contributes one to every
		// ancestor's simultaneity count for that interval.
		n := root
		n.perInterval[o.Interval]++
		for d := 0; d < 64; d++ {
			b := (hi >> (63 - d)) & 1
			if n.child[b] == nil {
				n.child[b] = &trieNode{perInterval: make([]uint32, numIntervals), depth: d + 1}
			}
			n = n.child[b]
			n.perInterval[o.Interval]++
		}
	}

	// qualifies: at least p percent of the window's intervals saw K or
	// more simultaneously-active /64s beneath the node (the "p'th
	// percentile of intervals" condition of kIP).
	need := (p.Percentile*numIntervals + 99) / 100 // ceil(p% of N), at least 1
	if need < 1 {
		need = 1
	}
	qualifies := func(n *trieNode) bool {
		meeting := 0
		for _, c := range n.perInterval {
			if int(c) >= p.K {
				meeting++
			}
		}
		return meeting >= need
	}

	// Emit deepest qualifying nodes: walk down while a child qualifies.
	var out []netip.Prefix
	var walk func(n *trieNode, bits ipv6.U128)
	walk = func(n *trieNode, bits ipv6.U128) {
		anyChild := false
		for b := 0; b < 2; b++ {
			c := n.child[b]
			if c != nil && qualifies(c) {
				anyChild = true
			}
		}
		if anyChild {
			for b := 0; b < 2; b++ {
				c := n.child[b]
				if c == nil {
					continue
				}
				childBits := bits
				if b == 1 {
					childBits = bits.SetBit(c.depth-1, 1)
				}
				if qualifies(c) {
					walk(c, childBits)
				}
				// Non-qualifying siblings are suppressed: their clients
				// lack a crowd of size K at this granularity.
			}
			return
		}
		// No child qualifies; this node is the longest qualifying prefix.
		out = append(out, netip.PrefixFrom(bits.Addr(), n.depth))
	}
	if qualifies(root) {
		walk(root, ipv6.U128{})
	}
	return out
}
