package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beholder/internal/telemetry"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key, kind string, data []byte) {
	t.Helper()
	if err := s.Put(key, kind, data); err != nil {
		t.Fatalf("Put(%s,%s): %v", key, kind, err)
	}
}

func mustGet(t *testing.T, s *Store, key, kind string) []byte {
	t.Helper()
	data, err := s.Get(key, kind)
	if err != nil {
		t.Fatalf("Get(%s,%s): %v", key, kind, err)
	}
	return data
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "t__a", "spec", []byte(`{"x":1}`))
	mustPut(t, s, "t__a", "ckpt", []byte("artifact-v1"))
	mustPut(t, s, "t__a", "ckpt", []byte("artifact-v2")) // supersede
	if got := mustGet(t, s, "t__a", "ckpt"); string(got) != "artifact-v2" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Get("t__a", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if g := s.Generation(); g != 3 {
		t.Fatalf("generation = %d, want 3", g)
	}
	s.Close()

	// Reopen: state persists, scrub is clean, superseded blob gone.
	s2 := mustOpen(t, Config{Dir: dir})
	if got := mustGet(t, s2, "t__a", "ckpt"); string(got) != "artifact-v2" {
		t.Fatalf("after reopen got %q", got)
	}
	if rep := s2.Report(); !rep.Clean() || rep.Entries != 2 {
		t.Fatalf("scrub not clean: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "t__a.2.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("superseded blob still present: %v", err)
	}
}

func TestDeleteAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "k", "spec", []byte("x"))
	mustPut(t, s, "k2", "spec", []byte("y"))
	if err := s.Delete("k", "spec"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k", "spec"); err != nil { // idempotent
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, Config{Dir: dir})
	if _, err := s2.Get("k", "spec"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted entry resurrected: %v", err)
	}
	if got := mustGet(t, s2, "k2", "spec"); string(got) != "y" {
		t.Fatalf("got %q", got)
	}
	if rep := s2.Report(); !rep.Clean() {
		t.Fatalf("scrub not clean after delete: %+v", rep)
	}
}

// Crash point 1: a write that died before rename leaves a temp file.
// The scrub deletes it and the previous generation stays live.
func TestCrashPartialTempFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "camp", "ckpt", []byte("good"))
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"camp.2.ckpt"), []byte("par"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	rep := s2.Report()
	if rep.TmpRemoved != 1 {
		t.Fatalf("TmpRemoved = %d, want 1: %+v", rep.TmpRemoved, rep)
	}
	if got := mustGet(t, s2, "camp", "ckpt"); string(got) != "good" {
		t.Fatalf("old generation lost: %q", got)
	}
}

// Crash point 2: the rename completed but the crash hit before the
// manifest append (the commit point). The manifest is authoritative:
// the unjournaled blob is quarantined and the old state stays live.
func TestCrashRenamedButUnjournaled(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "camp", "ckpt", []byte("committed"))
	s.Close()
	// Gen 2 blob on disk, no journal record for it.
	if err := os.WriteFile(filepath.Join(dir, "camp.2.ckpt"), []byte("uncommitted"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	rep := s2.Report()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "uncommitted write" {
		t.Fatalf("quarantine: %+v", rep.Quarantined)
	}
	if got := mustGet(t, s2, "camp", "ckpt"); string(got) != "committed" {
		t.Fatalf("want old state, got %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDir, "camp.2.ckpt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

// Crash point 3: a journaled entry whose blob has vanished (stale
// manifest entry). The entry is dropped and reported; the rest of the
// store recovers.
func TestCrashStaleManifestEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "gone", "ckpt", []byte("a"))
	mustPut(t, s, "kept", "ckpt", []byte("b"))
	s.Close()
	if err := os.Remove(filepath.Join(dir, "gone.1.ckpt")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	rep := s2.Report()
	if len(rep.Missing) != 1 || rep.Missing[0].Key != "gone" {
		t.Fatalf("missing: %+v", rep.Missing)
	}
	if _, err := s2.Get("gone", "ckpt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale entry still served: %v", err)
	}
	if got := mustGet(t, s2, "kept", "ckpt"); string(got) != "b" {
		t.Fatalf("intact entry lost: %q", got)
	}
	s2.Close()
	// The drop was journaled: a third open reports a clean scrub.
	s3 := mustOpen(t, Config{Dir: dir})
	if rep := s3.Report(); !rep.Clean() {
		t.Fatalf("drop not journaled, scrub dirty: %+v", rep)
	}
}

// Crash point 4: a torn journal tail (partial final record) is
// truncated and every record before it survives.
func TestCrashTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "a", "spec", []byte("one"))
	mustPut(t, s, "b", "spec", []byte("two"))
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header promising more bytes than exist.
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[:], 500)
	f.Write(torn[:])
	f.Write([]byte("partial"))
	f.Close()
	s2 := mustOpen(t, Config{Dir: dir})
	rep := s2.Report()
	if rep.JournalTruncated == 0 {
		t.Fatalf("torn tail not truncated: %+v", rep)
	}
	if got := mustGet(t, s2, "a", "spec"); string(got) != "one" {
		t.Fatalf("got %q", got)
	}
	if got := mustGet(t, s2, "b", "spec"); string(got) != "two" {
		t.Fatalf("got %q", got)
	}
	s2.Close()
	s3 := mustOpen(t, Config{Dir: dir})
	if rep := s3.Report(); rep.JournalTruncated != 0 {
		t.Fatalf("truncation not persisted: %+v", rep)
	}
}

// A corrupted live blob (bit rot) fails its CRC during the scrub and
// is quarantined without blocking the other entries.
func TestCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := mustOpen(t, Config{Dir: dir, Telemetry: reg})
	mustPut(t, s, "rot", "ckpt", []byte("aaaaaaaa"))
	mustPut(t, s, "ok", "ckpt", []byte("bbbbbbbb"))
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "rot.1.ckpt"), []byte("aaaaXaaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	s2 := mustOpen(t, Config{Dir: dir, Telemetry: reg2})
	rep := s2.Report()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "crc mismatch" {
		t.Fatalf("quarantine: %+v", rep.Quarantined)
	}
	if got := mustGet(t, s2, "ok", "ckpt"); string(got) != "bbbbbbbb" {
		t.Fatalf("intact blob lost: %q", got)
	}
	if v := reg2.Counter("store_quarantined_total").Value(); v != 1 {
		t.Fatalf("store_quarantined_total = %d, want 1", v)
	}
}

// An orphan file with a recognized shape but no manifest entry is
// quarantined when its generation is ahead of the journal, and an
// unrecognizable file is quarantined outright.
func TestOrphanAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "real", "spec", []byte("x"))
	s.Close()
	os.WriteFile(filepath.Join(dir, "phantom.9.ckpt"), []byte("??"), 0o644)
	os.WriteFile(filepath.Join(dir, "no-shape-at-all"), []byte("??"), 0o644)
	s2 := mustOpen(t, Config{Dir: dir})
	rep := s2.Report()
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined: %+v", rep.Quarantined)
	}
	if got := mustGet(t, s2, "real", "spec"); string(got) != "x" {
		t.Fatalf("intact entry lost: %q", got)
	}
}

// Content validators run during the scrub and quarantine blobs that
// are framed correctly but semantically invalid.
func TestValidatorQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "bad", "spec", []byte("not json"))
	mustPut(t, s, "good", "spec", []byte("ok"))
	s.Close()
	validate := map[string]func([]byte) error{
		"spec": func(b []byte) error {
			if bytes.Contains(b, []byte("not")) {
				return errors.New("rejected")
			}
			return nil
		},
	}
	s2 := mustOpen(t, Config{Dir: dir, Validate: validate})
	rep := s2.Report()
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0].Reason, "rejected") {
		t.Fatalf("quarantine: %+v", rep.Quarantined)
	}
	if got := mustGet(t, s2, "good", "spec"); string(got) != "ok" {
		t.Fatalf("got %q", got)
	}
}

// Files matching KeepSuffixes (stream logs) are invisible to the
// scrub.
func TestKeepSuffixes(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "t__a.stream.ndjson")
	os.WriteFile(stream, []byte("{\"ev\":1}\n"), 0o644)
	s := mustOpen(t, Config{Dir: dir, KeepSuffixes: []string{".stream.ndjson"}})
	if rep := s.Report(); !rep.Clean() {
		t.Fatalf("stream file disturbed: %+v", rep)
	}
	if _, err := os.Stat(stream); err != nil {
		t.Fatalf("stream file moved: %v", err)
	}
}

// A fully corrupt manifest (random bytes) yields an empty but usable
// store; every unexplained blob lands in corrupt/.
func TestGarbageManifest(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage garbage garbage"), 0o644)
	os.WriteFile(filepath.Join(dir, "x.1.ckpt"), []byte("blob"), 0o644)
	s := mustOpen(t, Config{Dir: dir})
	rep := s.Report()
	if rep.JournalTruncated == 0 || len(rep.Quarantined) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	mustPut(t, s, "fresh", "spec", []byte("works"))
	if got := mustGet(t, s, "fresh", "spec"); string(got) != "works" {
		t.Fatalf("got %q", got)
	}
}

// Quarantine drops a live entry at runtime and journals the drop.
func TestRuntimeQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, "k", "ckpt", []byte("x"))
	if err := s.Quarantine("k", "ckpt", "domain check failed"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k", "ckpt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined entry still served: %v", err)
	}
	s.Close()
	s2 := mustOpen(t, Config{Dir: dir})
	if rep := s2.Report(); !rep.Clean() {
		t.Fatalf("runtime quarantine not journaled: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDir, "k.1.ckpt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	for _, bad := range []string{"", "a.b", "a/b", "../x", "a b", strings.Repeat("k", 201)} {
		if err := s.Put(bad, "spec", []byte("x")); err == nil {
			t.Fatalf("key %q accepted", bad)
		}
		if err := s.Put("ok", bad, []byte("x")); err == nil {
			t.Fatalf("kind %q accepted", bad)
		}
	}
}

// A crafted manifest record pointing its File field elsewhere is
// rejected at replay (treated as a torn tail) — the blob path is
// always derived from the validated key/gen/kind.
func TestManifestFileFieldMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(fmt.Sprintf(`{"gen":1,"op":"put","key":"k","kind":"spec","file":"%s","size":1,"crc":0}`, "evil.1.other"))
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	os.WriteFile(filepath.Join(dir, manifestName), frame, 0o644)
	s := mustOpen(t, Config{Dir: dir})
	if rep := s.Report(); rep.JournalTruncated == 0 {
		t.Fatalf("crafted record accepted: %+v", rep)
	}
	if len(s.List()) != 0 {
		t.Fatalf("entries: %+v", s.List())
	}
}

func TestTelemetrySurface(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := mustOpen(t, Config{Dir: t.TempDir(), Telemetry: reg})
	mustPut(t, s, "k", "spec", []byte("abcd"))
	s.Delete("k", "spec")
	if v := reg.Counter("store_put_total").Value(); v != 1 {
		t.Fatalf("puts = %d", v)
	}
	if v := reg.Counter("store_delete_total").Value(); v != 1 {
		t.Fatalf("dels = %d", v)
	}
	if v := reg.Counter("store_bytes_written_total").Value(); v != 4 {
		t.Fatalf("bytes = %d", v)
	}
	if v := reg.Counter("store_fsync_total").Value(); v == 0 {
		t.Fatal("no fsyncs counted")
	}
	if v := reg.Gauge("store_generation").Value(); v != 2 {
		t.Fatalf("generation gauge = %d", v)
	}
}
