package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecover drops arbitrary bytes into a state directory — as
// the manifest journal and as a blob-shaped file — and asserts that
// Open never panics and never refuses to start. Whatever the fuzzer
// plants must resolve to some combination of replayed, truncated,
// quarantined, or deleted state, after which the store must accept
// new writes and a second Open must see a clean directory.
func FuzzStoreRecover(f *testing.F) {
	frame := func(payload string) []byte {
		b := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(b, uint32(len(payload)))
		binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE([]byte(payload)))
		copy(b[8:], payload)
		return b
	}
	valid := frame(`{"gen":1,"op":"put","key":"t__a","kind":"ckpt","size":4,"crc":0}`)
	f.Add([]byte{}, []byte{}, "t__a.1.ckpt")
	f.Add(valid, []byte("blob"), "t__a.1.ckpt")
	f.Add(valid[:len(valid)-3], []byte("blob"), "t__a.1.ckpt") // torn tail
	f.Add(frame(`{"gen":2,"op":"del","key":"t__a","kind":"ckpt"}`), []byte("x"), "t__a.9.spec")
	f.Add([]byte("not a manifest at all"), []byte{0xff, 0x00}, "weird name with spaces")
	f.Add(frame(`{"gen":1,"op":"put","key":"../../etc","kind":"ckpt"}`), []byte("x"), ".tmp-t__a.1.ckpt")

	f.Fuzz(func(t *testing.T, manifest []byte, blob []byte, name string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
			t.Skip()
		}
		// Plant the blob under a fuzzer-chosen basename; skip names
		// the filesystem itself rejects.
		base := filepath.Base(name)
		if base != "." && base != ".." && base != "/" && base != manifestName && base != corruptDir {
			os.WriteFile(filepath.Join(dir, base), blob, 0o644)
		}
		s, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed on fuzzed state dir: %v", err)
		}
		if err := s.Put("post", "spec", []byte("alive")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if got, err := s.Get("post", "spec"); err != nil || string(got) != "alive" {
			t.Fatalf("Get after recovery: %q, %v", got, err)
		}
		s.Close()
		s2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("second Open failed: %v", err)
		}
		if !s2.Report().Clean() {
			t.Fatalf("second scrub not clean: %+v", s2.Report())
		}
		s2.Close()
	})
}
