// Package store is beholderd's crash-safe durable state store.
//
// The daemon persists three kinds of blob per campaign — the submitted
// spec sidecar, the latest checkpoint artifact, and the final probe
// store — and must survive kill -9 or power loss at any instant with
// either the old or the new state visible, never a torn mix. The store
// provides that guarantee with two pieces:
//
//   - Every blob write is temp-file -> fsync -> rename -> parent-dir
//     fsync. Blob filenames are versioned ("<key>.<gen>.<kind>") so a
//     crash between rename and journal commit cannot shadow the
//     previous generation.
//
//   - A CRC-framed append-only manifest journal (manifest.log) is the
//     commit point. Each record is [u32 len][u32 crc32][JSON payload]
//     and is fsynced before the write returns. Replay truncates a torn
//     tail at the first bad frame; the surviving prefix defines the
//     live entry set and the monotonic generation counter.
//
// On Open the store scrubs the directory against the replayed
// manifest: leftover temp files are deleted, stale prior-generation
// blobs are deleted, renamed-but-unjournaled blobs and files the
// manifest does not know are quarantined into corrupt/, and every live
// blob is re-read and verified (size, CRC, optional per-kind
// validator). One bad file never blocks recovery of the rest — it is
// moved aside, reported in the ScrubReport, and counted in the
// store_quarantined_total telemetry counter.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"beholder/internal/telemetry"
)

const (
	manifestName = "manifest.log"
	corruptDir   = "corrupt"
	tmpPrefix    = ".tmp-"

	opPut = "put"
	opDel = "del"

	// maxRecord bounds a manifest frame; real records are <1 KiB of
	// JSON, so anything larger is treated as a torn/corrupt tail.
	maxRecord = 1 << 20
)

// ErrNotFound is returned by Get for a key/kind the manifest does not
// track.
var ErrNotFound = errors.New("store: entry not found")

// Config configures Open.
type Config struct {
	// Dir is the state directory. It is created if missing, along
	// with Dir/corrupt for quarantined files.
	Dir string

	// Validate maps a blob kind to a content validator run against
	// every live blob during the recovery scrub. A validator error
	// quarantines the blob instead of failing Open.
	Validate map[string]func([]byte) error

	// KeepSuffixes lists filename suffixes the scrub ignores
	// entirely (e.g. ".stream.ndjson" for append-only event logs
	// that live outside the manifest's atomicity domain).
	KeepSuffixes []string

	// Telemetry, when non-nil, receives the store_* counters and
	// gauges.
	Telemetry *telemetry.Registry
}

// Entry describes one live blob tracked by the manifest.
type Entry struct {
	Key  string
	Kind string
	Gen  uint64
	File string
	Size int64
	CRC  uint32
}

// Quarantined describes one file moved into corrupt/ during the scrub
// or via Quarantine.
type Quarantined struct {
	File   string
	Reason string
}

// ScrubReport summarises what Open found and repaired.
type ScrubReport struct {
	// Entries is the number of live entries after the scrub.
	Entries int
	// Quarantined lists files moved into corrupt/.
	Quarantined []Quarantined
	// Missing lists manifest entries whose blob had vanished; the
	// entries were dropped.
	Missing []Entry
	// StaleRemoved counts superseded prior-generation blobs deleted.
	StaleRemoved int
	// TmpRemoved counts leftover temp files deleted.
	TmpRemoved int
	// JournalTruncated is the number of torn-tail bytes cut from
	// manifest.log during replay.
	JournalTruncated int64
}

// Clean reports whether the scrub found nothing to repair.
func (r ScrubReport) Clean() bool {
	return len(r.Quarantined) == 0 && len(r.Missing) == 0 &&
		r.StaleRemoved == 0 && r.TmpRemoved == 0 && r.JournalTruncated == 0
}

// record is one manifest journal payload.
type record struct {
	Gen  uint64 `json:"gen"`
	Op   string `json:"op"`
	Key  string `json:"key"`
	Kind string `json:"kind"`
	File string `json:"file,omitempty"`
	Size int64  `json:"size,omitempty"`
	CRC  uint32 `json:"crc,omitempty"`
}

type entryKey struct{ key, kind string }

type storeMetrics struct {
	puts        *telemetry.Counter
	dels        *telemetry.Counter
	bytes       *telemetry.Counter
	fsyncs      *telemetry.Counter
	quarantined *telemetry.Counter
	truncated   *telemetry.Counter
	entries     *telemetry.Gauge
	generation  *telemetry.Gauge
}

// Store is a crash-safe key/kind -> blob store backed by one
// directory. All methods are safe for concurrent use.
type Store struct {
	cfg Config
	dir string

	mu      sync.Mutex
	man     *os.File // manifest journal, append-only; nil after Close
	gen     uint64
	entries map[entryKey]Entry
	report  ScrubReport
	dropped []entryKey // entries dropped by the scrub, journaled as dels at Open
	met     storeMetrics
}

// Open replays the manifest, scrubs the directory, and returns a
// ready store. Arbitrary garbage in the directory never fails Open;
// it is quarantined or deleted and reported via Report.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	s := &Store{cfg: cfg, dir: cfg.Dir, entries: make(map[entryKey]Entry)}
	if err := os.MkdirAll(filepath.Join(s.dir, corruptDir), 0o755); err != nil {
		return nil, err
	}
	if r := cfg.Telemetry; r != nil {
		s.met = storeMetrics{
			puts:        r.Counter("store_put_total"),
			dels:        r.Counter("store_delete_total"),
			bytes:       r.Counter("store_bytes_written_total"),
			fsyncs:      r.Counter("store_fsync_total"),
			quarantined: r.Counter("store_quarantined_total"),
			truncated:   r.Counter("store_journal_truncated_bytes_total"),
			entries:     r.Gauge("store_entries"),
			generation:  r.Gauge("store_generation"),
		}
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	if err := s.scrub(); err != nil {
		return nil, err
	}
	man, err := os.OpenFile(filepath.Join(s.dir, manifestName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.man = man
	// Journal the scrub's drops so the next startup replays to the
	// same live set without re-reporting them.
	for _, ek := range s.dropped {
		s.gen++
		if err := s.appendRecord(record{Gen: s.gen, Op: opDel, Key: ek.key, Kind: ek.kind}); err != nil {
			man.Close()
			s.man = nil
			return nil, err
		}
	}
	s.dropped = nil
	s.report.Entries = len(s.entries)
	if s.met.entries != nil {
		s.met.entries.Set(int64(len(s.entries)))
		s.met.generation.Set(int64(s.gen))
		s.met.truncated.Add(s.report.JournalTruncated)
	}
	return s, nil
}

// replayManifest loads the good prefix of manifest.log and truncates
// any torn tail in place.
func (s *Store) replayManifest() error {
	path := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	off := 0
	for {
		if len(data)-off < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecord || int(n) > len(data)-off-8 {
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if !s.applyRecord(rec) {
			break
		}
		off += 8 + int(n)
	}
	if off < len(data) {
		s.report.JournalTruncated = int64(len(data) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return err
		}
		if f, err := os.OpenFile(path, os.O_WRONLY, 0); err == nil {
			f.Sync()
			f.Close()
		}
	}
	return nil
}

// applyRecord folds one journal record into the in-memory state. It
// returns false for a structurally invalid record, which ends replay
// (the tail is treated as torn).
func (s *Store) applyRecord(rec record) bool {
	if validName(rec.Key) != nil || validName(rec.Kind) != nil || rec.Gen == 0 {
		return false
	}
	ek := entryKey{rec.Key, rec.Kind}
	switch rec.Op {
	case opPut:
		// The blob path is always derived from the validated
		// (key, gen, kind) triple, never from the journal's File
		// field, so a corrupt record cannot point outside the
		// directory.
		want := blobName(rec.Key, rec.Gen, rec.Kind)
		if rec.File != "" && rec.File != want {
			return false
		}
		s.entries[ek] = Entry{
			Key: rec.Key, Kind: rec.Kind, Gen: rec.Gen,
			File: want, Size: rec.Size, CRC: rec.CRC,
		}
	case opDel:
		delete(s.entries, ek)
	default:
		return false
	}
	if rec.Gen > s.gen {
		s.gen = rec.Gen
	}
	return true
}

// scrub reconciles the directory contents against the replayed
// manifest. It deletes temp and stale files, quarantines everything
// the manifest cannot vouch for, and verifies every live blob.
func (s *Store) scrub() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	seen := make(map[entryKey]bool)
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || name == manifestName || s.keepFile(name) {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// A write that crashed before rename; the entry (if
			// any) still points at the previous generation.
			os.Remove(filepath.Join(s.dir, name))
			s.report.TmpRemoved++
			continue
		}
		key, gen, kind, ok := parseBlobName(name)
		if !ok {
			s.quarantineLocked(name, "unrecognized file")
			continue
		}
		ek := entryKey{key, kind}
		e, tracked := s.entries[ek]
		switch {
		case tracked && gen == e.Gen:
			seen[ek] = true
			if reason, bad := s.verifyEntry(e); bad {
				s.quarantineLocked(name, reason)
				delete(s.entries, ek)
				s.dropped = append(s.dropped, ek)
			}
		case gen <= s.gen:
			// A generation the journal has committed past: either
			// a superseded blob or the remnant of a journaled
			// delete. The live state does not reference it.
			os.Remove(filepath.Join(s.dir, name))
			s.report.StaleRemoved++
		default:
			// Renamed but never journaled: the write crashed
			// before its commit point, so the manifest (old
			// state) is authoritative. Keep the bytes aside for
			// the operator rather than deleting them.
			s.quarantineLocked(name, "uncommitted write")
		}
	}
	for ek, e := range s.entries {
		if !seen[ek] {
			s.report.Missing = append(s.report.Missing, e)
			delete(s.entries, ek)
			s.dropped = append(s.dropped, ek)
		}
	}
	sort.Slice(s.report.Missing, func(i, j int) bool {
		return s.report.Missing[i].File < s.report.Missing[j].File
	})
	sort.Slice(s.report.Quarantined, func(i, j int) bool {
		return s.report.Quarantined[i].File < s.report.Quarantined[j].File
	})
	sort.Slice(s.dropped, func(i, j int) bool {
		if s.dropped[i].key != s.dropped[j].key {
			return s.dropped[i].key < s.dropped[j].key
		}
		return s.dropped[i].kind < s.dropped[j].kind
	})
	return nil
}

// verifyEntry re-reads a live blob and checks size, CRC, and the
// per-kind validator. It returns a quarantine reason when the blob is
// bad.
func (s *Store) verifyEntry(e Entry) (string, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		return "unreadable: " + err.Error(), true
	}
	if int64(len(data)) != e.Size {
		return fmt.Sprintf("size mismatch: have %d, manifest says %d", len(data), e.Size), true
	}
	if crc32.ChecksumIEEE(data) != e.CRC {
		return "crc mismatch", true
	}
	if v := s.cfg.Validate[e.Kind]; v != nil {
		if err := v(data); err != nil {
			return "invalid content: " + err.Error(), true
		}
	}
	return "", false
}

func (s *Store) keepFile(name string) bool {
	for _, suf := range s.cfg.KeepSuffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// quarantineLocked moves dir/name into dir/corrupt/, uniquifying the
// destination if needed, and records it in the report.
func (s *Store) quarantineLocked(name, reason string) {
	src := filepath.Join(s.dir, name)
	dst := filepath.Join(s.dir, corruptDir, name)
	for i := 2; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.dir, corruptDir, name+"."+strconv.Itoa(i))
	}
	if err := os.Rename(src, dst); err != nil {
		// Rename can only reasonably fail if the file vanished or
		// the filesystem is read-only; fall back to deleting so a
		// bad blob cannot be re-ingested on the next start.
		os.Remove(src)
	}
	s.report.Quarantined = append(s.report.Quarantined, Quarantined{File: name, Reason: reason})
	if s.met.quarantined != nil {
		s.met.quarantined.Inc()
	}
}

// Put durably stores data under (key, kind), replacing any previous
// generation. On return the blob and its manifest record are fsynced;
// a crash at any earlier instant leaves the previous generation live.
func (s *Store) Put(key, kind string, data []byte) error {
	if err := validName(key); err != nil {
		return fmt.Errorf("store: key %q: %w", key, err)
	}
	if err := validName(kind); err != nil {
		return fmt.Errorf("store: kind %q: %w", kind, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return errors.New("store: closed")
	}
	gen := s.gen + 1
	fname := blobName(key, gen, kind)
	tmp := filepath.Join(s.dir, tmpPrefix+fname)
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, fname)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	rec := record{
		Gen: gen, Op: opPut, Key: key, Kind: kind,
		File: fname, Size: int64(len(data)), CRC: crc32.ChecksumIEEE(data),
	}
	// The journal append is the commit point: before it, the scrub
	// classifies the new blob as an uncommitted write and the old
	// generation stays live.
	if err := s.appendRecord(rec); err != nil {
		return err
	}
	s.gen = gen
	ek := entryKey{key, kind}
	if old, ok := s.entries[ek]; ok && old.File != fname {
		os.Remove(filepath.Join(s.dir, old.File))
	}
	s.entries[ek] = Entry{Key: key, Kind: kind, Gen: gen, File: fname, Size: rec.Size, CRC: rec.CRC}
	if s.met.puts != nil {
		s.met.puts.Inc()
		s.met.bytes.Add(int64(len(data)))
		s.met.entries.Set(int64(len(s.entries)))
		s.met.generation.Set(int64(s.gen))
	}
	return nil
}

// Get returns the live blob for (key, kind), verifying its CRC.
func (s *Store) Get(key, kind string) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.entries[entryKey{key, kind}]
	dir := s.dir
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNotFound, key, kind)
	}
	data, err := os.ReadFile(filepath.Join(dir, e.File))
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(data) != e.CRC {
		return nil, fmt.Errorf("store: %s: crc mismatch", e.File)
	}
	return data, nil
}

// Delete durably removes (key, kind). Deleting an absent entry is a
// no-op.
func (s *Store) Delete(key, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return errors.New("store: closed")
	}
	ek := entryKey{key, kind}
	e, ok := s.entries[ek]
	if !ok {
		return nil
	}
	gen := s.gen + 1
	if err := s.appendRecord(record{Gen: gen, Op: opDel, Key: key, Kind: kind}); err != nil {
		return err
	}
	s.gen = gen
	delete(s.entries, ek)
	os.Remove(filepath.Join(s.dir, e.File))
	if s.met.dels != nil {
		s.met.dels.Inc()
		s.met.entries.Set(int64(len(s.entries)))
		s.met.generation.Set(int64(s.gen))
	}
	return nil
}

// Quarantine durably drops (key, kind) and moves its blob into
// corrupt/ with the given reason. Used by recovery when a blob passes
// storage-level checks but fails domain-level ones.
func (s *Store) Quarantine(key, kind, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return errors.New("store: closed")
	}
	ek := entryKey{key, kind}
	e, ok := s.entries[ek]
	if !ok {
		return nil
	}
	gen := s.gen + 1
	if err := s.appendRecord(record{Gen: gen, Op: opDel, Key: key, Kind: kind}); err != nil {
		return err
	}
	s.gen = gen
	delete(s.entries, ek)
	s.quarantineLocked(e.File, reason)
	if s.met.entries != nil {
		s.met.entries.Set(int64(len(s.entries)))
		s.met.generation.Set(int64(s.gen))
	}
	return nil
}

// List returns the live entries sorted by key then kind.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Report returns what Open's recovery scrub found.
func (s *Store) Report() ScrubReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Generation returns the current manifest generation counter.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the manifest journal. The store rejects
// writes afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man == nil {
		return nil
	}
	err := s.man.Sync()
	if cerr := s.man.Close(); err == nil {
		err = cerr
	}
	s.man = nil
	return err
}

// appendRecord frames, writes, and fsyncs one journal record. Callers
// hold s.mu.
func (s *Store) appendRecord(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := s.man.Write(frame); err != nil {
		return err
	}
	if err := s.man.Sync(); err != nil {
		return err
	}
	if s.met.fsyncs != nil {
		s.met.fsyncs.Inc()
	}
	return nil
}

// syncDir fsyncs the state directory so a completed rename survives
// power loss. Callers hold s.mu.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err == nil && s.met.fsyncs != nil {
		s.met.fsyncs.Inc()
	}
	return err
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// blobName builds the versioned on-disk filename for an entry.
func blobName(key string, gen uint64, kind string) string {
	return key + "." + strconv.FormatUint(gen, 10) + "." + kind
}

// parseBlobName is the inverse of blobName. Keys and kinds never
// contain dots (validName), so the form is exactly three fields.
func parseBlobName(name string) (key string, gen uint64, kind string, ok bool) {
	parts := strings.Split(name, ".")
	if len(parts) != 3 {
		return "", 0, "", false
	}
	key, kind = parts[0], parts[2]
	if validName(key) != nil || validName(kind) != nil {
		return "", 0, "", false
	}
	gen, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil || gen == 0 {
		return "", 0, "", false
	}
	return key, gen, kind, true
}

// validName restricts keys and kinds to a filesystem- and
// manifest-safe alphabet: letters, digits, underscore, dash.
func validName(s string) error {
	if s == "" {
		return errors.New("empty name")
	}
	if len(s) > 200 {
		return errors.New("name too long")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("invalid character %q", r)
		}
	}
	return nil
}
