// Package addrclass classifies IPv6 interface identifiers the way the SI6
// ipv6toolkit's addr6 does, reproducing the seed characterization of
// Table 1 and the EUI-64 result analysis of Table 7.
//
// Classification inspects the low 64 bits (the IID) for recognizable
// structure; anything without a discernible pattern is "randomized",
// which for SLAAC privacy addresses is the expected answer.
package addrclass

import (
	"net/netip"

	"beholder/internal/ipv6"
)

// Class is an IID structural category.
type Class int

// Classes, ordered roughly by recognizability. Table 1 reports LowByte,
// EUI64 and Random; the finer classes fold into Random ("no discernible
// pattern" is addr6's catch-all) unless callers want them separately.
const (
	ClassRandom    Class = iota // no discernible pattern
	ClassLowByte                // zeros then a small terminal value (::1, ::a:2)
	ClassEUI64                  // modified EUI-64 with embedded MAC (ff:fe)
	ClassEmbedIPv4              // dotted-quad IPv4 address embedded in the IID
	ClassEmbedPort              // well-known service port embedded (::80, ::443)
	ClassPattern                // repeating 16-bit words (::abcd:abcd:abcd:abcd)
	NumClasses
)

// String returns the addr6-style label.
func (c Class) String() string {
	switch c {
	case ClassRandom:
		return "randomized"
	case ClassLowByte:
		return "lowbyte"
	case ClassEUI64:
		return "ieee-derived"
	case ClassEmbedIPv4:
		return "embedded-ipv4"
	case ClassEmbedPort:
		return "embedded-port"
	case ClassPattern:
		return "pattern-bytes"
	}
	return "unknown"
}

// wellKnownPorts are service ports addr6 treats as embedded-port evidence.
var wellKnownPorts = map[uint64]bool{
	21: true, 22: true, 25: true, 53: true, 80: true, 110: true,
	143: true, 443: true, 587: true, 993: true, 995: true, 8080: true,
}

// Classify determines the structural class of a's interface identifier.
func Classify(a netip.Addr) Class {
	return ClassifyIID(ipv6.IID(a))
}

// ClassifyIID determines the structural class of a raw 64-bit IID.
// The checks run from most to least specific, mirroring addr6.
func ClassifyIID(iid uint64) Class {
	if ipv6.IsEUI64IID(iid) {
		return ClassEUI64
	}
	// Embedded IPv4: high 32 bits zero and the low 32 bits parse as a
	// plausible dotted quad (first octet nonzero, not a tiny integer —
	// tiny integers are lowbyte).
	if iid>>32 == 0 && iid > 0xffff {
		b0 := byte(iid >> 24)
		if b0 != 0 {
			return ClassEmbedIPv4
		}
	}
	// Lowbyte: at most the bottom 16 bits set (addr6 additionally accepts
	// a second low group, e.g. ::a:1; we accept bottom 20 bits).
	if iid != 0 && iid < 1<<20 {
		// Service ports embed in two spellings: the raw value (port 80
		// stored as 80) and the visual form where the hex digits read as
		// the decimal port ("::80" is 0x80 but reads as port 80).
		if wellKnownPorts[iid] {
			return ClassEmbedPort
		}
		if dec, ok := hexDigitsAsDecimal(iid); ok && wellKnownPorts[dec] {
			return ClassEmbedPort
		}
		return ClassLowByte
	}
	// Port embedded behind zeros elsewhere, e.g. ::80:0 styles are rare;
	// only the direct form is recognized above.
	// Repeating 16-bit words.
	w0 := uint16(iid >> 48)
	w1 := uint16(iid >> 32)
	w2 := uint16(iid >> 16)
	w3 := uint16(iid)
	if w0 == w1 && w1 == w2 && w2 == w3 && w0 != 0 {
		return ClassPattern
	}
	// Two alternating words also count as patterned.
	if w0 == w2 && w1 == w3 && w0 != w1 {
		return ClassPattern
	}
	return ClassRandom
}

// hexDigitsAsDecimal reinterprets v's hex digits as a decimal number
// (0x443 → 443). ok is false when any nibble exceeds 9.
func hexDigitsAsDecimal(v uint64) (uint64, bool) {
	var dec, mul uint64 = 0, 1
	for x := v; x != 0; x >>= 4 {
		nib := x & 0xf
		if nib > 9 {
			return 0, false
		}
		dec += nib * mul
		mul *= 10
	}
	return dec, true
}

// Counts tallies classifications over a set of addresses.
type Counts struct {
	Total   int
	ByClass [NumClasses]int
}

// ClassifySet classifies every member of s.
func ClassifySet(s *ipv6.Set) Counts {
	var c Counts
	c.Total = s.Len()
	for _, a := range s.Addrs() {
		c.ByClass[Classify(a)]++
	}
	return c
}

// Fraction returns the share of class cl, in [0,1]; zero for empty input.
func (c Counts) Fraction(cl Class) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByClass[cl]) / float64(c.Total)
}

// RandomLike returns the count of addresses without recognized structure,
// folding the finer pattern classes the way Table 1's "Random" column
// does (addr6 labels anything unrecognized as randomized).
func (c Counts) RandomLike() int {
	return c.ByClass[ClassRandom] + c.ByClass[ClassPattern] + c.ByClass[ClassEmbedIPv4] + c.ByClass[ClassEmbedPort]
}
