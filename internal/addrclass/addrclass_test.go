package addrclass

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"beholder/internal/ipv6"
)

func TestClassifyKnownForms(t *testing.T) {
	cases := []struct {
		addr string
		want Class
	}{
		{"2001:db8::1", ClassLowByte},
		{"2001:db8::2", ClassLowByte},
		{"2001:db8::ff", ClassLowByte},
		{"2001:db8::a:1", ClassLowByte}, // within low 20 bits
		{"2001:db8::80", ClassEmbedPort},
		{"2001:db8::443", ClassEmbedPort},
		{"2001:db8::216:3eff:fe12:3456", ClassEUI64},
		{"2001:db8::c0a8:101", ClassEmbedIPv4}, // 192.168.1.1
		{"2001:db8::abcd:abcd:abcd:abcd", ClassPattern},
		{"2001:db8::dead:beef:dead:beef", ClassPattern},
		{"2001:db8:0:1:1234:5678:1234:5678", ClassPattern}, // the paper's fixed IID alternates
		{"2001:db8::8a2e:370:7334", ClassRandom},
		{"2001:db8:0:1:59c1:44ab:9c05:22ef", ClassRandom},
	}
	for _, c := range cases {
		if got := Classify(ipv6.MustAddr(c.addr)); got != c.want {
			t.Errorf("Classify(%s) = %s want %s", c.addr, got, c.want)
		}
	}
}

func TestClassifyZeroIID(t *testing.T) {
	// The subnet-router anycast address (IID zero) has no pattern class.
	if got := Classify(ipv6.MustAddr("2001:db8::")); got != ClassRandom {
		t.Errorf("zero IID = %s", got)
	}
}

func TestEUI64TakesPrecedence(t *testing.T) {
	// Build an EUI-64 IID and confirm it never lands in another class.
	f := func(m0, m1, m2, m3, m4, m5 byte) bool {
		iid := ipv6.EUI64IID([6]byte{m0, m1, m2, m3, m4, m5})
		return ClassifyIID(iid) == ClassEUI64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomIIDsClassifyRandom(t *testing.T) {
	// SLAAC privacy addresses: overwhelmingly "randomized". A 64-bit
	// uniform draw has ~2^-16 odds of the ff:fe marker and similar for
	// the other patterns; over 10k draws a few hits are acceptable.
	rng := rand.New(rand.NewSource(1))
	misses := 0
	for i := 0; i < 10_000; i++ {
		if ClassifyIID(rng.Uint64()) != ClassRandom {
			misses++
		}
	}
	if misses > 50 {
		t.Errorf("%d of 10000 random IIDs classified as structured", misses)
	}
}

func TestClassifySetAndFractions(t *testing.T) {
	s := ipv6.NewSet([]netip.Addr{
		ipv6.MustAddr("2001:db8::1"),
		ipv6.MustAddr("2001:db8::2"),
		ipv6.MustAddr("2001:db8::216:3eff:fe12:3456"),
		ipv6.MustAddr("2001:db8::59c1:44ab"),
	})
	c := ClassifySet(s)
	if c.Total != 4 {
		t.Fatalf("total %d", c.Total)
	}
	if c.ByClass[ClassLowByte] != 2 || c.ByClass[ClassEUI64] != 1 {
		t.Errorf("counts: %+v", c.ByClass)
	}
	if got := c.Fraction(ClassLowByte); got != 0.5 {
		t.Errorf("lowbyte fraction %f", got)
	}
	if got := Counts.Fraction(Counts{}, ClassLowByte); got != 0 {
		t.Errorf("empty fraction %f", got)
	}
}

func TestRandomLikeFoldsUnstructured(t *testing.T) {
	c := Counts{Total: 4}
	c.ByClass[ClassRandom] = 1
	c.ByClass[ClassPattern] = 1
	c.ByClass[ClassEmbedIPv4] = 1
	c.ByClass[ClassLowByte] = 1
	if got := c.RandomLike(); got != 3 {
		t.Errorf("RandomLike = %d want 3", got)
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassRandom; c < NumClasses; c++ {
		if c.String() == "unknown" {
			t.Errorf("class %d lacks a label", c)
		}
	}
}
