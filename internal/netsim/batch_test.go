package netsim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"beholder/internal/probe"
	"beholder/internal/wire"
)

// TestSendBatchMatchesSerial drives two clones of one vantage through
// the same probe schedule — one with the serial Send/Sleep/Recv
// contract, one with SendBatch/RecvBatch — and requires identical reply
// bytes at identical virtual instants. This is the netsim half of the
// batching invariant: batch size changes dispatch, never the schedule.
func TestSendBatchMatchesSerial(t *testing.T) {
	u := testUniverse(t)
	parent := u.NewVantage(VantageSpec{Name: "batch-eq", Kind: KindUniversity, ChainLen: 4})
	serialV := parent.Clone(0)
	batchV := parent.Clone(0)

	// Pre-build one probe per (target, ttl) slot, stamped for its
	// departure instant, so both drives send byte-identical packets.
	rng := rand.New(rand.NewSource(9))
	gap := 500 * time.Microsecond
	codec := probe.NewCodec(serialV, wire.ProtoICMPv6, 1)
	var pkts [][]byte
	for i := 0; i < 24; i++ {
		as := u.RandomAS(rng, KindHosting)
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		dst := u.GatewayAddr(lan, as)
		for ttl := uint8(1); ttl <= 10; ttl += 3 {
			buf := make([]byte, 128)
			n := codec.BuildProbeAt(buf, dst, ttl, time.Duration(len(pkts))*gap)
			pkts = append(pkts, buf[:n])
		}
	}
	if len(pkts) < 40 {
		t.Fatalf("only %d probes built", len(pkts))
	}

	type rec struct {
		at time.Duration
		b  []byte
	}
	rbuf := make([]byte, wire.MinMTU)

	// Serial drive.
	var serial []rec
	drainSerial := func() {
		for {
			n, ok := serialV.Recv(rbuf)
			if !ok {
				return
			}
			serial = append(serial, rec{serialV.Now(), append([]byte(nil), rbuf[:n]...)})
		}
	}
	for _, p := range pkts {
		if err := serialV.Send(p); err != nil {
			t.Fatal(err)
		}
		serialV.Sleep(gap)
		drainSerial()
	}
	for i := 0; i < 4000; i++ {
		serialV.Sleep(gap)
		drainSerial()
	}

	// Batched drive: uneven batch sizes, RecvBatch drains, and
	// NextDeliveryAt-guided jumps across the quiet tail.
	var batched []rec
	rb := make([]byte, 8*wire.MinMTU)
	rs := make([]int, 8)
	drainBatched := func() {
		for {
			n := batchV.RecvBatch(rb, rs)
			if n == 0 {
				return
			}
			off := 0
			for i := 0; i < n; i++ {
				batched = append(batched, rec{batchV.Now(), append([]byte(nil), rb[off:off+rs[i]]...)})
				off += rs[i]
			}
			if n < len(rs) {
				return
			}
		}
	}
	sizes := []int{1, 7, 3, 16, 5}
	sent := 0
	for si := 0; sent < len(pkts); si++ {
		k := sizes[si%len(sizes)]
		if sent+k > len(pkts) {
			k = len(pkts) - sent
		}
		for k > 0 {
			m, deliverable, err := batchV.SendBatch(pkts[sent:sent+k], gap)
			if err != nil {
				t.Fatal(err)
			}
			sent += m
			k -= m
			if deliverable {
				drainBatched()
			}
		}
	}
	deadline := batchV.Now() + 4000*gap
	for batchV.Now() < deadline {
		steps := int64(1)
		kmax := int64((deadline - batchV.Now() + gap - 1) / gap)
		if at, ok := batchV.NextDeliveryAt(); !ok {
			steps = kmax
		} else if at > batchV.Now() {
			steps = int64((at - batchV.Now() + gap - 1) / gap)
			if steps > kmax {
				steps = kmax
			}
		}
		batchV.Sleep(time.Duration(steps) * gap)
		drainBatched()
	}
	batchV.FlushStats()

	if len(serial) == 0 {
		t.Fatal("serial drive saw no replies")
	}
	if len(batched) != len(serial) {
		t.Fatalf("reply counts differ: serial %d, batched %d", len(serial), len(batched))
	}
	for i := range serial {
		if serial[i].at != batched[i].at {
			t.Fatalf("reply %d delivered at %v serially but %v batched", i, serial[i].at, batched[i].at)
		}
		if !bytes.Equal(serial[i].b, batched[i].b) {
			t.Fatalf("reply %d bytes differ between serial and batched drives", i)
		}
	}
	if serialV.Stats.Sent != batchV.Stats.Sent || serialV.Stats.Received != batchV.Stats.Received {
		t.Fatalf("vantage stats differ: serial %+v, batched %+v", serialV.Stats, batchV.Stats)
	}
	if batchV.Pending() != 0 {
		t.Fatalf("batched drive left %d replies pending", batchV.Pending())
	}
}
