package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"sync/atomic"
	"time"

	"beholder/internal/faultsim"
	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// VantageSpec describes where a measurement vantage attaches.
type VantageSpec struct {
	Name     string
	Kind     ASKind // kind of AS hosting the vantage
	ChainLen int    // on-premise access path length (routers before the border)
}

// Vantage is a measurement host inside the simulated internetwork. It
// implements the prober-side connection contract: Send consumes a
// wire-format IPv6 packet, Recv yields wire-format replies, and
// Now/Sleep expose a virtual clock for pacing.
//
// Every response-side decision — path plan, router properties, ECMP
// selection, loss, jitter, unreachable generation — is a pure function
// of the universe seed, the probe bytes, and the probe's virtual send
// time. Combined with per-vantage ownership of all mutable state (clock,
// router token buckets, delivery queue, plan cache, buffer free list),
// this makes concurrent vantages race-free and their results independent
// of goroutine scheduling: a sharded campaign that reproduces a single
// prober's (packet, time) schedule reproduces its replies.
//
// The packet path is allocation-free at steady state: path plans come
// from the per-vantage flow-plan cache (see plancache.go), reply buffers
// cycle through a free list that Recv refills, and the delivery queue is
// an unboxed min-heap of value entries.
type Vantage struct {
	u    *Universe
	spec VantageSpec
	id   uint64
	as   *AS
	addr netip.Addr
	srcU ipv6.U128 // addr's raw words, pre-extracted for per-probe hashing

	// clk is the vantage's virtual clock. Vantages created with
	// NewVantage share the universe clock (the single-prober regime);
	// Clone gives each campaign shard a private clock opened at its
	// permutation window start.
	clk *Clock

	// group coordinates the clocks of shards cloned from this vantage.
	group *ClockGroup

	parent []int32 // BFS shortest-path tree over the AS graph, -1 at root

	// routers holds this vantage's lazily materialized routers. Router
	// properties are pure functions of (seed, key); only the live token
	// bucket is mutable, and it is owned — never shared — by the
	// materializing vantage, so concurrent vantages need no locking.
	routers map[RouterKey]*Router

	queue deliveryQueue
	dec   wire.Decoded // scratch decoder reused across Send calls

	// Flow-plan cache (plancache.go). planSlots is allocated lazily on
	// the first Send so idle vantages cost nothing; planScratch serves
	// cache-disabled operation without allocating per probe. The arenas
	// feed step/RTT backing arrays to cache slots in bulk, so a cache
	// miss — even a compulsory miss on a never-reused flow — costs no
	// per-probe allocation.
	planSize     int
	planSlots    []planEntry
	planScratch  planEntry
	scratchSteps []routerStep

	// shared is the campaign-scope plan-core cache (plancache.go):
	// created on the parent at the first Clone and inherited by every
	// shard clone, so one shard's plan compute serves the whole
	// campaign. Nil outside sharded operation — the serial path pays
	// nothing for it. coreBlock and coreSteps are this vantage's
	// publication slabs: carved, never reused.
	shared    *sharedPlans
	coreBlock []planCore
	coreSteps []coreStep

	// stepPages back every cached plan's step list, addressed by
	// offset/length from the (pointer-free) cache slots. Pages are
	// fixed-size and never move, so offsets stay valid as the store
	// grows without the copy churn of a single growing slice; evicted
	// entries' reservations are reused in place, so the store converges
	// to roughly one size-class reservation per occupied slot.
	stepPages [][]routerStep
	stepNext  uint32

	// Reply-buffer pool: bufs owns every buffer ever issued at this
	// vantage; the free stacks hold the indices available for reuse, one
	// per size class. Send-side builders draw a buffer sized to the
	// reply they are about to emit, Recv returns it after copying the
	// reply out. Nearly every reply fits the small class (errors quote
	// ~128-byte probes); the full wire.MinMTU class covers maximal
	// quotations without a tenfold memory bill on the rate×RTT product
	// of in-flight replies. Deliveries reference buffers by index,
	// keeping queue entries pointer-free (heap sifts then move 16-byte
	// values with no GC write barriers).
	bufs      [][]byte
	freeSmall []int32
	freeFull  []int32

	// pend batches this vantage's universe-stat contributions between
	// flushes (see SendBatch/FlushStats): the shared SimStats atomics
	// are the only cross-shard writes on the packet path, so batched
	// sends defer them.
	pend simDelta

	// Fault-injection plane (internal/faultsim). faults is this clone's
	// resolved plan; hasFaults guards every packet-path fault check
	// behind one predictable branch, so a fault-free universe pays one
	// compare per send. shardOrd is the clone ordinal rules match on
	// (creation order within a shard group; the parent is 0), and
	// nextClone numbers this vantage's future clones. errTransient is
	// reused across transient failures so the fault path allocates
	// nothing per packet.
	faults       faultsim.Plan
	hasFaults    bool
	campaign     string
	shardOrd     int
	nextClone    int
	errTransient faultsim.TransientSendError

	// Priming mode (prime.go): while priming, send1 evaluates routing
	// decisions and router token-bucket consumption at primeNow instead of
	// the clock, schedules no replies, and rolls its stat side effects
	// back at EndPrime. primeSaved/primeFaults hold the state restored
	// when the replay ends.
	priming     bool
	primeNow    time.Duration
	primeSaved  VantageStats
	primeFaults bool
	primeFlows  []primeFlow // PrimeFlow token table, valid until EndPrime

	// simPending holds imported sim-state records (ImportSimState) not
	// yet claimed by a router birth; router() consults it so imported
	// bucket state materializes lazily, per touched router.
	simPending []byte

	// Stats counts prober-visible events at this vantage.
	Stats VantageStats
}

// VantageStats aggregates per-vantage counters.
type VantageStats struct {
	Sent     int64
	Received int64
	// PlanHits and PlanMisses count flow-plan cache outcomes; with the
	// cache disabled every probe is a miss. Cache effectiveness is
	// observable here without affecting results (cached plans are pure).
	PlanHits   int64
	PlanMisses int64
	// SharedPlanHits counts private-cache misses served from the
	// campaign-shared plan-core cache instead of a fresh compute.
	SharedPlanHits int64
	// PlanEvictions counts misses that displaced a different flow's
	// entry from its direct-mapped slot — the conflict-miss share of
	// PlanMisses.
	PlanEvictions int64
}

// NewVantage attaches a vantage to a deterministic AS of spec.Kind.
func (u *Universe) NewVantage(spec VantageSpec) *Vantage {
	if spec.ChainLen <= 0 {
		spec.ChainLen = 3
	}
	var nameKey uint64
	for _, c := range spec.Name {
		nameKey = nameKey*131 + uint64(c)
	}
	var pool []*AS
	for _, as := range u.ases {
		if as.Kind == spec.Kind && as.CPEOUIIndex == 0 {
			pool = append(pool, as)
		}
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("netsim: no AS of kind %s for vantage %q", spec.Kind, spec.Name))
	}
	as := pool[h(u.seed, 31, nameKey)%uint64(len(pool))]
	v := &Vantage{
		u:        u,
		spec:     spec,
		id:       nameKey,
		as:       as,
		addr:     ipv6.WithIID(ipv6.NthSubprefix(as.Prefixes[0], 64, 0xbeef).Addr(), 0x1),
		clk:      &u.clock,
		routers:  make(map[RouterKey]*Router),
		planSize: u.planCacheSize(),
	}
	v.srcU = ipv6.FromAddr(v.addr)
	v.parent = u.bfsTree(as.Idx)
	v.shared = u.sharedPlansFor(nameKey, v.planSize)
	v.faults = u.cfg.Faults.PlanFor(spec.Name, "", 0)
	v.hasFaults = v.faults.Active()
	v.errTransient.Vantage = spec.Name
	u.registerVantage(v)
	return v
}

// sharedPlansFor returns (creating on first use) the plan-core cache
// shared by every vantage with the given identity key. Nil when plan
// caching is disabled for the universe.
func (u *Universe) sharedPlansFor(id uint64, planSize int) *sharedPlans {
	if planSize <= 0 {
		return nil
	}
	u.planShareMu.Lock()
	defer u.planShareMu.Unlock()
	if u.planShare == nil {
		u.planShare = make(map[uint64]*sharedPlans)
	}
	sp := u.planShare[id]
	if sp == nil {
		sp = &sharedPlans{slots: make([]atomic.Pointer[planCore], planSize)}
		u.planShare[id] = sp
	}
	return sp
}

// planCacheSize resolves the configured flow-plan cache size.
func (u *Universe) planCacheSize() int {
	switch {
	case u.cfg.PlanCacheSize > 0:
		return u.cfg.PlanCacheSize
	case u.cfg.PlanCacheSize < 0:
		return 0
	}
	return planCacheDefaultEntries
}

// Clone returns a shard vantage with the same identity — name, hosting
// AS, source address, access-chain router keys — but private mutable
// state: its own clock opened at virtual time start, its own delivery
// queue, buffer free list, plan cache, counters, and router token
// buckets. The clone's clock joins the parent's ClockGroup so the
// campaign's coordinated watermark covers it. Clones must be created
// before the shards start running (Clone mutates the parent's group).
func (v *Vantage) Clone(start time.Duration) *Vantage {
	if v.shared == nil && v.planSize > 0 {
		// Shard clones share one plan-core cache with the parent (and
		// with each other): plans are pure functions of the inherited
		// vantage identity, so the first shard to plan a flow plans it
		// for all of them. Created once per vantage family; successive
		// campaigns keep it warm (stale entries stay correct — the
		// topology is immutable).
		v.shared = &sharedPlans{slots: make([]atomic.Pointer[planCore], v.planSize)}
	}
	nv := &Vantage{
		u:        v.u,
		spec:     v.spec,
		id:       v.id,
		as:       v.as,
		addr:     v.addr,
		srcU:     v.srcU,
		clk:      NewClockAt(start),
		parent:   v.parent, // read-only after construction
		routers:  make(map[RouterKey]*Router),
		planSize: v.planSize,
		shared:   v.shared,
		campaign: v.campaign,
		shardOrd: v.nextClone,
	}
	v.nextClone++
	nv.faults = v.u.cfg.Faults.PlanFor(v.spec.Name, nv.campaign, nv.shardOrd)
	nv.hasFaults = nv.faults.Active()
	nv.errTransient.Vantage = v.spec.Name
	if v.group == nil {
		v.group = &ClockGroup{}
	}
	v.group.Add(nv.clk)
	v.u.registerVantage(nv)
	return nv
}

// BeginShardGroup starts a fresh clock group for an upcoming sharded
// campaign: subsequent Clones join it, and earlier campaigns' dead
// shard clocks no longer weigh on Watermark/Horizon. Callers running
// more than one sharded campaign from the same vantage must call it
// before each campaign's clones are created. Clone ordinals restart at
// zero too, so fault rules keyed on campaign shard numbers re-match the
// new campaign's clones.
func (v *Vantage) BeginShardGroup() *ClockGroup {
	v.group = &ClockGroup{}
	v.nextClone = 0
	return v.group
}

// ShardOrdinal returns this vantage's clone ordinal within its shard
// group (0 for the parent), the identity fault rules match on.
func (v *Vantage) ShardOrdinal() int { return v.shardOrd }

// SetCampaign tags this vantage (and every clone created from it
// afterwards) with a campaign name, and re-resolves its fault plan so
// rules addressed to that campaign apply. The campaign supervisor tags
// each campaign's parent clone before sharding; untagged vantages keep
// the empty tag, which campaign-scoped rules never match. Must be
// called before the vantage probes or clones.
func (v *Vantage) SetCampaign(tag string) {
	v.campaign = tag
	v.faults = v.u.cfg.Faults.PlanFor(v.spec.Name, tag, v.shardOrd)
	v.hasFaults = v.faults.Active()
}

// Campaign returns the vantage's campaign tag ("" when untagged).
func (v *Vantage) Campaign() string { return v.campaign }

// ShardClocks returns the ClockGroup coordinating this vantage's cloned
// shards (nil when no clone exists). Its Watermark is the current
// campaign's committed virtual time.
func (v *Vantage) ShardClocks() *ClockGroup { return v.group }

// bfsTree computes the shortest-path tree over the AS adjacency graph.
func (u *Universe) bfsTree(root int) []int32 {
	parent := make([]int32, len(u.ases))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range u.ases[cur].Neighbors {
			if parent[nb] == -2 {
				parent[nb] = int32(cur)
				queue = append(queue, nb)
			}
		}
	}
	return parent
}

// Name returns the vantage's configured name.
func (v *Vantage) Name() string { return v.spec.Name }

// LocalAddr returns the vantage's source address.
func (v *Vantage) LocalAddr() netip.Addr { return v.addr }

// AS returns the autonomous system hosting the vantage.
func (v *Vantage) AS() *AS { return v.as }

// Now returns the current virtual time at this vantage.
func (v *Vantage) Now() time.Duration { return v.clk.Now() }

// Sleep advances virtual time; probers call this to pace departures.
func (v *Vantage) Sleep(d time.Duration) { v.clk.Sleep(d) }

// router returns (materializing into this vantage's table if needed) the
// router for key. now is the virtual instant of the touching probe — the
// clock's current time on the live path, the replayed instant during
// priming — so a router born under prime replay opens its bucket at the
// same instant it would have opened at in the serial history.
func (v *Vantage) router(key RouterKey, as *AS, now time.Duration) *Router {
	if r, ok := v.routers[key]; ok {
		return r
	}
	if len(v.simPending) > 0 {
		// Imported sim state (checkpoint resume, campaign group priming)
		// overrides the birth instant: the router opens with the bucket
		// exactly where the exporting vantage's was.
		if tokens, last, ok := v.simLookup(key); ok {
			r := v.u.newRouter(key, as, last)
			r.tokens = tokens
			if r.tokens > r.burst {
				r.tokens = r.burst
			}
			v.routers[key] = r
			return r
		}
	}
	r := v.u.newRouter(key, as, now)
	v.routers[key] = r
	return r
}

// stepRouter resolves (and memoizes into the plan step) the router for
// plan step idx. The memo lives inside the cached plan entry, so a hit
// flow's probes touch the router with a single pointer load instead of a
// map lookup; the routers map remains the authority, so every plan entry
// holding the same key resolves to the same (vantage-owned) router.
func (v *Vantage) stepRouter(plan *planEntry, idx int, now time.Duration) *Router {
	st := v.stepAt(plan.stepOff + uint32(idx))
	if st.r == nil {
		st.r = v.router(st.key, v.u.ases[st.asIdx], now)
	}
	return st.r
}

// outcomes of path planning.
type outcomeKind uint8

const (
	outHost outcomeKind = iota
	outNoRoute
	outFilteredSilent
	outFilteredAdmin
)

// flowHash computes the per-flow load-balancing key the way the paper
// describes deployed routers doing it: addresses, protocol, and for
// TCP/UDP the port pair — but for ICMPv6 the checksum and identifier,
// which is precisely why Yarrp6 must hold its checksum constant per
// target via payload fudge.
func flowHash(seed uint64, d *wire.Decoded) uint64 {
	return flowHashU(seed, ipv6.FromAddr(d.IPv6.Src), ipv6.FromAddr(d.IPv6.Dst), d)
}

// flowHashU is flowHash with the address words already extracted; the
// vantage fast path supplies its cached source words and the destination
// words it needs anyway for the plan-cache key. The mix chain is written
// out with fixed arity — same sequence and values as the variadic h —
// because this runs once per routed packet.
func flowHashU(seed uint64, s, t ipv6.U128, d *wire.Decoded) uint64 {
	var extra uint64
	switch d.Proto {
	case wire.ProtoTCP:
		extra = uint64(d.TCP.SrcPort)<<16 | uint64(d.TCP.DstPort)
	case wire.ProtoUDP:
		extra = uint64(d.UDP.SrcPort)<<16 | uint64(d.UDP.DstPort)
	case wire.ProtoICMPv6:
		extra = uint64(d.ICMPv6.Checksum)<<16 | uint64(d.ICMPv6.ID)
	}
	acc := mix64(seed + sm64Gamma)
	acc = mix64(acc ^ (s.Hi + sm64Gamma))
	acc = mix64(acc ^ (s.Lo + sm64Gamma))
	acc = mix64(acc ^ (t.Hi + sm64Gamma))
	acc = mix64(acc ^ (t.Lo + sm64Gamma))
	acc = mix64(acc ^ (uint64(d.Proto)<<32 | uint64(d.IPv6.FlowLabel) + sm64Gamma))
	acc = mix64(acc ^ (extra + sm64Gamma))
	return acc
}

// Per-packet stochastic draws. Loss, jitter, and unreachable generation
// are decided by keyed hashes of (flow identity, hop limit, virtual send
// time) rather than a stream RNG: the outcome for a given probe at a
// given time is a pure function of the universe seed, so concurrent
// shards reproduce a serial prober's draws exactly, while retransmitting
// the same packet at a later time rolls a fresh draw, as on a real
// network. The draw deliberately excludes the probe payload (and with it
// the Yarrp6 instance byte): shards of one campaign send byte-different
// probes that must share fates.
const (
	drawLoss    = 41
	drawJitter  = 42
	drawNoRoute = 43
	drawND      = 44
)

// hashFloat maps a hash key to a uniform float64 in [0, 1).
func hashFloat(key uint64) float64 {
	return float64(key>>11) / (1 << 53)
}

// simDelta batches a vantage's universe-stat contributions so that the
// shared SimStats atomics — the only cross-shard writes on the packet
// path — are touched once per send batch instead of two or three times
// per probe. Field order mirrors SimStats.
type simDelta struct {
	packetsRouted     int64
	timeExceededSent  int64
	rateLimitDropped  int64
	unresponsiveDrops int64
	errorsSent        int64
	echoRepliesSent   int64
	tcpRstsSent       int64
	portUnreachSent   int64
	lossDropped       int64
	filteredDrops     int64

	// Fault-injection plane counters (zero unless Config.Faults is set).
	faultCrashDenials  int64
	faultStallDrops    int64
	faultTransientErrs int64
	faultTruncated     int64
	faultCorrupted     int64
	faultDelayed       int64
}

// flush applies the accumulated counts to the shared universe stats,
// skipping zero fields so an uneventful batch costs one atomic add.
func (d *simDelta) flush(s *SimStats) {
	if d.packetsRouted != 0 {
		atomic.AddInt64(&s.PacketsRouted, d.packetsRouted)
	}
	if d.timeExceededSent != 0 {
		atomic.AddInt64(&s.TimeExceededSent, d.timeExceededSent)
	}
	if d.rateLimitDropped != 0 {
		atomic.AddInt64(&s.RateLimitDropped, d.rateLimitDropped)
	}
	if d.unresponsiveDrops != 0 {
		atomic.AddInt64(&s.UnresponsiveDrops, d.unresponsiveDrops)
	}
	if d.errorsSent != 0 {
		atomic.AddInt64(&s.ErrorsSent, d.errorsSent)
	}
	if d.echoRepliesSent != 0 {
		atomic.AddInt64(&s.EchoRepliesSent, d.echoRepliesSent)
	}
	if d.tcpRstsSent != 0 {
		atomic.AddInt64(&s.TCPRstsSent, d.tcpRstsSent)
	}
	if d.portUnreachSent != 0 {
		atomic.AddInt64(&s.PortUnreachSent, d.portUnreachSent)
	}
	if d.lossDropped != 0 {
		atomic.AddInt64(&s.LossDropped, d.lossDropped)
	}
	if d.filteredDrops != 0 {
		atomic.AddInt64(&s.FilteredDrops, d.filteredDrops)
	}
	if d.faultCrashDenials != 0 {
		atomic.AddInt64(&s.FaultCrashDenials, d.faultCrashDenials)
	}
	if d.faultStallDrops != 0 {
		atomic.AddInt64(&s.FaultStallDrops, d.faultStallDrops)
	}
	if d.faultTransientErrs != 0 {
		atomic.AddInt64(&s.FaultTransientErrs, d.faultTransientErrs)
	}
	if d.faultTruncated != 0 {
		atomic.AddInt64(&s.FaultTruncated, d.faultTruncated)
	}
	if d.faultCorrupted != 0 {
		atomic.AddInt64(&s.FaultCorrupted, d.faultCorrupted)
	}
	if d.faultDelayed != 0 {
		atomic.AddInt64(&s.FaultDelayed, d.faultDelayed)
	}
	*d = simDelta{}
}

// Send routes one wire-format probe through the simulated internetwork,
// scheduling at most one reply for later Recv. Malformed packets error.
func (v *Vantage) Send(pkt []byte) error {
	var st simDelta
	err := v.send1(pkt, &st)
	st.flush(&v.u.Stats)
	return err
}

// SendBatch routes pkts in order, advancing the virtual clock by gap
// after each packet — byte- and time-identical to a serial Send/Sleep
// loop — and stops early as soon as a reply becomes deliverable, so a
// batched prober drains at exactly the instants a per-probe loop would
// have. Shared-universe stat atomics are deferred into the vantage's
// pending delta and flushed every few thousand packets and at
// FlushStats; the clock itself still advances per packet (per-packet
// draws are keyed on the exact send time, and clock-group watermarks
// stay fine-grained).
func (v *Vantage) SendBatch(pkts [][]byte, gap time.Duration) (int, bool, error) {
	for i := range pkts {
		if err := v.send1(pkts[i], &v.pend); err != nil {
			return i, v.deliverable(), err
		}
		v.clk.Sleep(gap)
		if v.deliverable() {
			if v.pend.packetsRouted >= pendFlushEvery {
				v.pend.flush(&v.u.Stats)
			}
			return i + 1, true, nil
		}
	}
	if v.pend.packetsRouted >= pendFlushEvery {
		v.pend.flush(&v.u.Stats)
	}
	return len(pkts), false, nil
}

// pendFlushEvery bounds how many batched sends may accumulate in the
// pending stat delta before it is pushed to the shared atomics.
const pendFlushEvery = 4096

// FlushStats publishes the pending batched-send stat delta to the
// shared universe counters. Yarrp6 calls it when a run ends; universe
// stats are documented as exact only while no campaign is in flight.
func (v *Vantage) FlushStats() { v.pend.flush(&v.u.Stats) }

// deliverable reports whether a queued reply's delivery time has
// arrived.
func (v *Vantage) deliverable() bool {
	return len(v.queue) > 0 && v.queue[0].at <= v.clk.Now()
}

// send1 is the shared routing core of Send and SendBatch: it decodes
// and routes one probe, accumulating universe-stat contributions into
// st instead of the shared atomics.
func (v *Vantage) send1(pkt []byte, st *simDelta) error {
	if err := v.dec.Decode(pkt); err != nil {
		return fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	d := &v.dec
	if v.hasFaults {
		now := v.clk.Now()
		if v.faults.CrashNow(now) {
			// Fatal: the vantage's send path is dead. The packet was not
			// sent; every further attempt fails the same way.
			st.faultCrashDenials++
			at, _ := v.faults.CrashAt()
			return &faultsim.CrashError{Vantage: v.spec.Name, Shard: v.shardOrd, At: at}
		}
		if v.faults.DrawTransient(v.id, now) {
			// EAGAIN-shaped: the packet was not sent, a retry at a later
			// instant redraws independently.
			st.faultTransientErrs++
			v.errTransient.At = now
			return &v.errTransient
		}
		if v.faults.Stalled(now) {
			// The probe departs and vanishes; the prober sees nothing.
			v.Stats.Sent++
			st.faultStallDrops++
			return nil
		}
	}
	v.Stats.Sent++
	st.packetsRouted++

	plan := v.lookupPlan(d)
	planN := int(plan.n)
	ttl := int(d.IPv6.HopLimit)
	now := v.clk.Now()
	if v.priming {
		// Prime replay evaluates the probe at its serial-history instant;
		// the clock itself stays parked at the shard's window start.
		now = v.primeNow
	}
	// The per-packet draw key folds the cached flow hash with the hop
	// limit (the pktKey of old: h(flowHash(...), 40, hopLimit)).
	pk := h(plan.fh, 40, uint64(d.IPv6.HopLimit))

	// Hop-limit expiry before the path plan ends: Time Exceeded.
	if ttl <= planN {
		idx := ttl - 1
		if v.lost(pk, now, 2*ttl) {
			st.lossDropped++
			return nil
		}
		r := v.stepRouter(plan, idx, now)
		if r.unresponsive {
			st.unresponsiveDrops++
			return nil
		}
		if !r.allowICMP(now) {
			st.rateLimitDropped++
			return nil
		}
		st.timeExceededSent++
		v.scheduleError(st, r, wire.ICMPv6TimeExceeded, 0, pkt, plan, idx, now, pk)
		return nil
	}

	switch plan.outcome {
	case outNoRoute, outFilteredAdmin:
		// Unreachable generation is far less dependable than Time
		// Exceeded on the real Internet: many networks blackhole
		// unallocated space silently.
		if plan.outcome == outNoRoute && hashFloat(h(pk, drawNoRoute, uint64(now))) < 0.65 {
			st.filteredDrops++
			return nil
		}
		idx := int(plan.errorIdx)
		if v.lost(pk, now, 2*(idx+1)) {
			st.lossDropped++
			return nil
		}
		r := v.stepRouter(plan, idx, now)
		if r.unresponsive {
			st.unresponsiveDrops++
			return nil
		}
		if !r.allowICMP(now) {
			st.rateLimitDropped++
			return nil
		}
		code := uint8(wire.CodeNoRoute)
		if plan.outcome == outFilteredAdmin {
			code = wire.CodeAdminProhibited
		} else if plan.reject {
			code = wire.CodeRejectRoute
		}
		st.errorsSent++
		v.scheduleError(st, r, wire.ICMPv6DstUnreach, code, pkt, plan, idx, now, pk)
		return nil

	case outFilteredSilent:
		st.filteredDrops++
		return nil
	}

	// Destination /64 reached.
	if v.lost(pk, now, 2*(planN+1)) {
		st.lossDropped++
		return nil
	}
	rtt := v.stepAt(plan.stepOff+uint32(planN-1)).rtt + v.jitter(pk, now)
	switch {
	case plan.exists && d.Proto == wire.ProtoICMPv6 && d.ICMPv6.Type == wire.ICMPv6EchoRequest:
		if v.u.ases[plan.destAS].BlockEcho {
			st.filteredDrops++
			return nil
		}
		st.echoRepliesSent++
		if v.priming {
			return nil
		}
		payload := d.Payload
		if max := wire.MinMTU - wire.IPv6HeaderLen - wire.ICMPv6HeaderLen; len(payload) > max {
			// The return path, like the quote path, is MinMTU-bound (the
			// simulator does not model fragmentation), and every prober
			// Recv buffer is MinMTU-sized, so the tail was never
			// observable; capping also keeps the reply inside any pool
			// buffer.
			payload = payload[:max]
		}
		bi := v.getBuf(wire.IPv6HeaderLen + wire.ICMPv6HeaderLen + len(payload))
		n := wire.BuildEchoReply(v.bufs[bi], d.IPv6.Dst, v.addr, &d.ICMPv6, payload, 64)
		v.deliverReply(st, bi, n, now+rtt, pk, now)
	case plan.exists && d.Proto == wire.ProtoUDP:
		st.portUnreachSent++
		if v.priming {
			return nil
		}
		bi := v.getBuf(wire.IPv6HeaderLen + wire.ICMPv6HeaderLen + len(pkt))
		n := wire.BuildICMPv6Error(v.bufs[bi], wire.ICMPv6DstUnreach, wire.CodePortUnreachable, d.IPv6.Dst, v.addr, pkt, 64)
		v.deliverReply(st, bi, n, now+rtt, pk, now)
	case plan.exists && d.Proto == wire.ProtoTCP:
		st.tcpRstsSent++
		if v.priming {
			return nil
		}
		bi := v.getBuf(wire.IPv6HeaderLen + wire.TCPHeaderLen)
		n := wire.BuildTCPRst(v.bufs[bi], d.IPv6.Dst, v.addr, &d.TCP, 64)
		v.deliverReply(st, bi, n, now+rtt, pk, now)
	default:
		// No such host: the gateway's neighbor discovery fails and it
		// reports address-unreachable some of the time (rate-limited).
		if hashFloat(h(pk, drawND, uint64(now))) < 0.6 {
			r := v.stepRouter(plan, int(plan.errorIdx), now)
			if !r.unresponsive && r.allowICMP(now) {
				st.errorsSent++
				v.scheduleError(st, r, wire.ICMPv6DstUnreach, wire.CodeAddrUnreachable, pkt, plan, int(plan.errorIdx), now, pk)
			} else {
				st.rateLimitDropped++
			}
		}
	}
	return nil
}

// scheduleError builds and enqueues an ICMPv6 error from router r quoting
// the probe, arriving after the round-trip to step idx.
func (v *Vantage) scheduleError(st *simDelta, r *Router, typ, code uint8, probe []byte, plan *planEntry, idx int, now time.Duration, pk uint64) {
	if v.priming {
		// The bucket decision already happened; the reply itself is not
		// scheduled during prime replay.
		return
	}
	quote := probe
	if r.truncateQuote && len(quote) > 48 {
		// Legacy gear quoting IPv4-style: header plus 8 bytes.
		quote = quote[:48]
	}
	if max := wire.MinMTU - wire.IPv6HeaderLen - wire.ICMPv6HeaderLen; len(quote) > max {
		quote = quote[:max]
	}
	bi := v.getBuf(wire.IPv6HeaderLen + wire.ICMPv6HeaderLen + len(quote))
	n := wire.BuildICMPv6Error(v.bufs[bi], typ, code, r.Addr, v.addr, quote, 64)
	rtt := v.stepAt(plan.stepOff+uint32(idx)).rtt + v.jitter(pk, now)
	v.deliverReply(st, bi, n, now+rtt, pk, now)
}

// deliverReply applies the reply-side fault plane — truncation,
// corruption, delayed-burst release — to one built reply before
// enqueueing it. With no faults configured it is a direct deliver.
func (v *Vantage) deliverReply(st *simDelta, bi int32, n int, t time.Duration, pk uint64, now time.Duration) {
	if v.hasFaults {
		const hdr = wire.IPv6HeaderLen + wire.ICMPv6HeaderLen
		if n > hdr && v.faults.DrawTruncate(pk, now) {
			// Cut into the body: the bytes carrying recoverable probe
			// state are gone, and the stale outer length/checksum make
			// the damage visible to the prober's parser, as on real
			// networks.
			n = hdr + (n-hdr)/4
			st.faultTruncated++
		}
		if n > hdr && v.faults.DrawCorrupt(pk, now) {
			off, mask := v.faults.CorruptAt(pk, now, n-hdr)
			v.bufs[bi][hdr+off] ^= mask
			st.faultCorrupted++
		}
		if until, ok := v.faults.DelayedUntil(t); ok {
			t = until
			st.faultDelayed++
		}
	}
	v.deliver(bi, n, t)
}

// jitter returns the probe's return-path delay variation.
func (v *Vantage) jitter(pk uint64, now time.Duration) time.Duration {
	return time.Duration(h(pk, drawJitter, uint64(now)) % uint64(2*time.Millisecond))
}

// lost rolls per-traversal loss over hops link crossings (forward and
// return combined by the caller). The survival probabilities are pure
// functions of the configured loss rate and the hop count, so they come
// from the universe's precomputed table — entries are math.Pow outputs
// verbatim, so the draw threshold is bit-identical to computing the
// power per probe — with a live Pow fallback for paths beyond the
// table.
func (v *Vantage) lost(pk uint64, now time.Duration, hops int) bool {
	t := v.u.lossSurvive
	if t == nil {
		return false
	}
	var survive float64
	if hops < len(t) {
		survive = t[hops]
	} else {
		survive = math.Pow(1-float64(v.u.cfg.LossPercent)/100, float64(hops))
	}
	return hashFloat(h(pk, drawLoss, uint64(now))) > survive
}

// smallBufSize is the small reply-buffer class: ample for every reply
// generated from this module's own probes (echo replies, RSTs, and
// errors quoting ≤128-byte probes).
const smallBufSize = 256

// getBuf returns the index of a free reply buffer able to hold n bytes,
// growing the pool only when no recycled buffer of the class is
// available.
func (v *Vantage) getBuf(n int) int32 {
	free := &v.freeSmall
	size := smallBufSize
	if n > smallBufSize {
		free = &v.freeFull
		size = wire.MinMTU
	}
	if k := len(*free); k > 0 {
		bi := (*free)[k-1]
		*free = (*free)[:k-1]
		return bi
	}
	v.bufs = append(v.bufs, make([]byte, size))
	return int32(len(v.bufs) - 1)
}

// putBuf returns pool buffer bi to its size-class free stack.
func (v *Vantage) putBuf(bi int32) {
	if len(v.bufs[bi]) > smallBufSize {
		v.freeFull = append(v.freeFull, bi)
	} else {
		v.freeSmall = append(v.freeSmall, bi)
	}
}

// deliver enqueues n reply bytes held in pool buffer bi (ownership
// transfers to the queue) for Recv at time t.
func (v *Vantage) deliver(bi int32, n int, t time.Duration) {
	v.queue.push(delivery{at: t, buf: bi, n: int32(n)})
}

// Recv copies the next reply whose delivery time has arrived into buf,
// returning its length, and recycles the reply's internal buffer. ok is
// false when nothing is pending at the current virtual time. Callers own
// only the bytes copied into buf; the simulator's buffer is reused by a
// subsequent Send.
func (v *Vantage) Recv(buf []byte) (int, bool) {
	if len(v.queue) == 0 || v.queue[0].at > v.clk.Now() {
		return 0, false
	}
	d := v.queue.pop()
	v.Stats.Received++
	n := copy(buf, v.bufs[d.buf][:d.n])
	v.putBuf(d.buf)
	return n, true
}

// RecvBatch copies every reply deliverable at the current virtual time
// — at most len(sizes) of them — back-to-back into buf, recording each
// reply's length in sizes, and recycling the internal buffers. It
// returns the reply count; replies come out in the exact order repeated
// Recv calls would have produced (heap order on delivery time).
func (v *Vantage) RecvBatch(buf []byte, sizes []int) int {
	now := v.clk.Now()
	n, off := 0, 0
	for n < len(sizes) {
		if len(v.queue) == 0 || v.queue[0].at > now {
			break
		}
		if len(buf)-off < int(v.queue[0].n) {
			break
		}
		d := v.queue.pop()
		v.Stats.Received++
		m := copy(buf[off:], v.bufs[d.buf][:d.n])
		v.putBuf(d.buf)
		sizes[n] = m
		off += m
		n++
	}
	return n
}

// Pending reports how many replies are queued (delivered or in flight).
func (v *Vantage) Pending() int { return len(v.queue) }

// NextDeliveryAt returns the earliest queued reply's delivery time; ok
// is false when the queue is empty. Probers use it to fast-forward
// their drain schedule across stretches of virtual time where nothing
// can arrive.
func (v *Vantage) NextDeliveryAt() (time.Duration, bool) {
	if len(v.queue) == 0 {
		return 0, false
	}
	return v.queue[0].at, true
}

// ExportPending visits every queued (undelivered) reply in delivery
// order without disturbing the queue, handing the callback each reply's
// delivery instant and bytes; the bytes are only valid during the
// callback. Campaign checkpointing captures in-flight replies this way
// so a resumed run folds them at exactly the instants the uninterrupted
// run would have.
func (v *Vantage) ExportPending(fn func(at time.Duration, data []byte)) {
	q := append(deliveryQueue(nil), v.queue...)
	for len(q) > 0 {
		d := q.pop()
		fn(d.at, v.bufs[d.buf][:d.n])
	}
}

// InjectReply enqueues a copy of reply bytes for delivery at virtual
// instant at — the resume-side counterpart of ExportPending.
func (v *Vantage) InjectReply(at time.Duration, data []byte) {
	bi := v.getBuf(len(data))
	n := copy(v.bufs[bi], data)
	v.deliver(bi, n, at)
}

// delivery is one scheduled reply: a pool buffer index plus its valid
// length. Entries are unboxed, 16-byte, pointer-free values — no
// interface conversions and no GC write barriers on the packet path.
type delivery struct {
	at  time.Duration
	buf int32
	n   int32
}

// deliveryQueue is a binary min-heap on arrival time, operated directly
// on the slice. The sift order replicates container/heap exactly (strict
// less-than comparisons, identical swap sequence), so replacing the boxed
// heap changed no delivery order — not even among equal timestamps.
type deliveryQueue []delivery

func (q *deliveryQueue) push(it delivery) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *deliveryQueue) pop() delivery {
	old := *q
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	q.down(0, n)
	it := old[n]
	*q = old[:n]
	return it
}

func (q deliveryQueue) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if q[i].at <= q[j].at {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q deliveryQueue) down(i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].at < q[j1].at {
			j = j2
		}
		if q[i].at <= q[j].at {
			return
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}
