package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"net/netip"
	"sync/atomic"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// VantageSpec describes where a measurement vantage attaches.
type VantageSpec struct {
	Name     string
	Kind     ASKind // kind of AS hosting the vantage
	ChainLen int    // on-premise access path length (routers before the border)
}

// Vantage is a measurement host inside the simulated internetwork. It
// implements the prober-side connection contract: Send consumes a
// wire-format IPv6 packet, Recv yields wire-format replies, and
// Now/Sleep expose a virtual clock for pacing.
//
// Every response-side decision — path plan, router properties, ECMP
// selection, loss, jitter, unreachable generation — is a pure function
// of the universe seed, the probe bytes, and the probe's virtual send
// time. Combined with per-vantage ownership of all mutable state (clock,
// router token buckets, delivery queue, scratch buffers), this makes
// concurrent vantages race-free and their results independent of
// goroutine scheduling: a sharded campaign that reproduces a single
// prober's (packet, time) schedule reproduces its replies.
type Vantage struct {
	u    *Universe
	spec VantageSpec
	id   uint64
	as   *AS
	addr netip.Addr

	// clk is the vantage's virtual clock. Vantages created with
	// NewVantage share the universe clock (the single-prober regime);
	// Clone gives each campaign shard a private clock opened at its
	// permutation window start.
	clk *Clock

	// group coordinates the clocks of shards cloned from this vantage.
	group *ClockGroup

	parent []int32 // BFS shortest-path tree over the AS graph, -1 at root

	// routers holds this vantage's lazily materialized routers. Router
	// properties are pure functions of (seed, key); only the live token
	// bucket is mutable, and it is owned — never shared — by the
	// materializing vantage, so concurrent vantages need no locking.
	routers map[RouterKey]*Router

	queue deliveryQueue
	dec   wire.Decoded // scratch decoder reused across Send calls

	stepKeys []RouterKey // scratch path plan
	stepAS   []*AS

	// Stats counts prober-visible events at this vantage.
	Stats VantageStats
}

// VantageStats aggregates per-vantage counters.
type VantageStats struct {
	Sent     int64
	Received int64
}

// NewVantage attaches a vantage to a deterministic AS of spec.Kind.
func (u *Universe) NewVantage(spec VantageSpec) *Vantage {
	if spec.ChainLen <= 0 {
		spec.ChainLen = 3
	}
	var nameKey uint64
	for _, c := range spec.Name {
		nameKey = nameKey*131 + uint64(c)
	}
	var pool []*AS
	for _, as := range u.ases {
		if as.Kind == spec.Kind && as.CPEOUIIndex == 0 {
			pool = append(pool, as)
		}
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("netsim: no AS of kind %s for vantage %q", spec.Kind, spec.Name))
	}
	as := pool[h(u.seed, 31, nameKey)%uint64(len(pool))]
	v := &Vantage{
		u:       u,
		spec:    spec,
		id:      nameKey,
		as:      as,
		addr:    ipv6.WithIID(ipv6.NthSubprefix(as.Prefixes[0], 64, 0xbeef).Addr(), 0x1),
		clk:     &u.clock,
		routers: make(map[RouterKey]*Router),
	}
	v.parent = u.bfsTree(as.Idx)
	v.stepKeys = make([]RouterKey, 0, 64)
	v.stepAS = make([]*AS, 0, 64)
	return v
}

// Clone returns a shard vantage with the same identity — name, hosting
// AS, source address, access-chain router keys — but private mutable
// state: its own clock opened at virtual time start, its own delivery
// queue, scratch buffers, counters, and router token buckets. The
// clone's clock joins the parent's ClockGroup so the campaign's
// coordinated watermark covers it. Clones must be created before the
// shards start running (Clone mutates the parent's group).
func (v *Vantage) Clone(start time.Duration) *Vantage {
	nv := &Vantage{
		u:       v.u,
		spec:    v.spec,
		id:      v.id,
		as:      v.as,
		addr:    v.addr,
		clk:     NewClockAt(start),
		parent:  v.parent, // read-only after construction
		routers: make(map[RouterKey]*Router),
	}
	nv.stepKeys = make([]RouterKey, 0, 64)
	nv.stepAS = make([]*AS, 0, 64)
	if v.group == nil {
		v.group = &ClockGroup{}
	}
	v.group.Add(nv.clk)
	return nv
}

// BeginShardGroup starts a fresh clock group for an upcoming sharded
// campaign: subsequent Clones join it, and earlier campaigns' dead
// shard clocks no longer weigh on Watermark/Horizon. Callers running
// more than one sharded campaign from the same vantage must call it
// before each campaign's clones are created.
func (v *Vantage) BeginShardGroup() *ClockGroup {
	v.group = &ClockGroup{}
	return v.group
}

// ShardClocks returns the ClockGroup coordinating this vantage's cloned
// shards (nil when no clone exists). Its Watermark is the current
// campaign's committed virtual time.
func (v *Vantage) ShardClocks() *ClockGroup { return v.group }

// bfsTree computes the shortest-path tree over the AS adjacency graph.
func (u *Universe) bfsTree(root int) []int32 {
	parent := make([]int32, len(u.ases))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range u.ases[cur].Neighbors {
			if parent[nb] == -2 {
				parent[nb] = int32(cur)
				queue = append(queue, nb)
			}
		}
	}
	return parent
}

// Name returns the vantage's configured name.
func (v *Vantage) Name() string { return v.spec.Name }

// LocalAddr returns the vantage's source address.
func (v *Vantage) LocalAddr() netip.Addr { return v.addr }

// AS returns the autonomous system hosting the vantage.
func (v *Vantage) AS() *AS { return v.as }

// Now returns the current virtual time at this vantage.
func (v *Vantage) Now() time.Duration { return v.clk.Now() }

// Sleep advances virtual time; probers call this to pace departures.
func (v *Vantage) Sleep(d time.Duration) { v.clk.Sleep(d) }

// router returns (materializing into this vantage's table if needed) the
// router for key.
func (v *Vantage) router(key RouterKey, as *AS) *Router {
	if r, ok := v.routers[key]; ok {
		return r
	}
	r := v.u.newRouter(key, as, v.clk.Now())
	v.routers[key] = r
	return r
}

// outcomes of path planning.
type outcomeKind uint8

const (
	outHost outcomeKind = iota
	outNoRoute
	outFilteredSilent
	outFilteredAdmin
)

type pathPlan struct {
	n        int // number of router steps
	outcome  outcomeKind
	errorIdx int          // step originating a destination-unreachable
	lan      netip.Prefix // destination /64 when outcome == outHost
	destAS   *AS          // nil when unrouted
	reject   bool         // reject-route rather than no-route
}

// flowHash computes the per-flow load-balancing key the way the paper
// describes deployed routers doing it: addresses, protocol, and for
// TCP/UDP the port pair — but for ICMPv6 the checksum and identifier,
// which is precisely why Yarrp6 must hold its checksum constant per
// target via payload fudge.
func flowHash(seed uint64, d *wire.Decoded) uint64 {
	s := ipv6.FromAddr(d.IPv6.Src)
	t := ipv6.FromAddr(d.IPv6.Dst)
	var extra uint64
	switch d.Proto {
	case wire.ProtoTCP:
		extra = uint64(d.TCP.SrcPort)<<16 | uint64(d.TCP.DstPort)
	case wire.ProtoUDP:
		extra = uint64(d.UDP.SrcPort)<<16 | uint64(d.UDP.DstPort)
	case wire.ProtoICMPv6:
		extra = uint64(d.ICMPv6.Checksum)<<16 | uint64(d.ICMPv6.ID)
	}
	return h(seed, s.Hi, s.Lo, t.Hi, t.Lo, uint64(d.Proto)<<32|uint64(d.IPv6.FlowLabel), extra)
}

// Per-packet stochastic draws. Loss, jitter, and unreachable generation
// are decided by keyed hashes of (flow identity, hop limit, virtual send
// time) rather than a stream RNG: the outcome for a given probe at a
// given time is a pure function of the universe seed, so concurrent
// shards reproduce a serial prober's draws exactly, while retransmitting
// the same packet at a later time rolls a fresh draw, as on a real
// network. The draw deliberately excludes the probe payload (and with it
// the Yarrp6 instance byte): shards of one campaign send byte-different
// probes that must share fates.
const (
	drawLoss    = 41
	drawJitter  = 42
	drawNoRoute = 43
	drawND      = 44
)

// pktKey folds the probe's flow identity and hop limit into the draw key.
func (v *Vantage) pktKey(d *wire.Decoded) uint64 {
	return h(flowHash(v.u.seed, d), 40, uint64(d.IPv6.HopLimit))
}

// hashFloat maps a hash key to a uniform float64 in [0, 1).
func hashFloat(key uint64) float64 {
	return float64(key>>11) / (1 << 53)
}

// plan computes the router path for the decoded probe, filling the
// vantage's scratch buffers.
func (v *Vantage) plan(d *wire.Decoded) pathPlan {
	u := v.u
	v.stepKeys = v.stepKeys[:0]
	v.stepAS = v.stepAS[:0]
	push := func(k RouterKey, as *AS) {
		v.stepKeys = append(v.stepKeys, k)
		v.stepAS = append(v.stepAS, as)
	}
	// On-premise access chain.
	for i := 0; i < v.spec.ChainLen; i++ {
		push(RouterKey{ASN: v.as.ASN, Class: classAccess, K1: v.id, K2: uint64(i)}, v.as)
	}

	rt, ok := u.table.Lookup(d.IPv6.Dst)
	if !ok {
		// Unrouted destination: the border router reports no-route.
		return pathPlan{n: len(v.stepKeys), outcome: outNoRoute, errorIdx: len(v.stepKeys) - 1}
	}
	destAS := u.byASN[rt.Origin]

	// AS-level path from the BFS tree (vantage → ... → destination AS).
	var asPath [64]int
	pl := 0
	for cur := destAS.Idx; cur != v.as.Idx && pl < len(asPath); cur = int(v.parent[cur]) {
		if v.parent[cur] < 0 {
			break
		}
		asPath[pl] = cur
		pl++
	}
	fh := flowHash(u.seed, d)
	prevASN := v.as.ASN
	filtered := false
	filterIdx := 0
	filterAdmin := false
	for i := pl - 1; i >= 0; i-- {
		as := u.ases[asPath[i]]
		hops := 1
		if as.Tier <= 2 {
			hops = 1 + int(h(u.seed, 33, uint64(as.ASN), uint64(prevASN))%3)
		}
		var lbSel uint64
		if as.LoadBalanced {
			lbSel = fh % uint64(as.LBWays)
		}
		ingress := h(u.seed, 34, uint64(prevASN), lbSel)
		for j := 0; j < hops; j++ {
			push(RouterKey{ASN: as.ASN, Class: classBackbone, K1: ingress, K2: uint64(j)}, as)
		}
		// Transport filtering at the destination AS border.
		if as == destAS && !filtered {
			if (d.Proto == wire.ProtoUDP && as.BlockUDP) || (d.Proto == wire.ProtoTCP && as.BlockTCP) {
				filtered = true
				filterIdx = len(v.stepKeys) - 1
				filterAdmin = h(u.seed, 35, uint64(as.ASN))%2 == 0
			}
		}
		prevASN = as.ASN
	}
	if filtered {
		out := outFilteredSilent
		if filterAdmin {
			out = outFilteredAdmin
		}
		return pathPlan{n: filterIdx + 1, outcome: out, errorIdx: filterIdx, destAS: destAS}
	}

	// Intra-AS descent through the destination's subnet hierarchy.
	var buf [8]netip.Prefix
	chain, full := u.descent(destAS, rt.Prefix, d.IPv6.Dst, buf[:])
	for _, sub := range chain {
		push(RouterKey{
			ASN:   destAS.ASN,
			Class: classLevel,
			K1:    ipv6.FromAddr(sub.Addr()).Hi,
			K2:    uint64(sub.Bits()),
		}, destAS)
	}
	if !full {
		return pathPlan{
			n:        len(v.stepKeys),
			outcome:  outNoRoute,
			errorIdx: len(v.stepKeys) - 1,
			destAS:   destAS,
			reject:   destAS.RejectRoute,
		}
	}
	return pathPlan{
		n:        len(v.stepKeys),
		outcome:  outHost,
		errorIdx: len(v.stepKeys) - 1,
		lan:      chain[len(chain)-1],
		destAS:   destAS,
	}
}

// Send routes one wire-format probe through the simulated internetwork,
// scheduling at most one reply for later Recv. Malformed packets error.
func (v *Vantage) Send(pkt []byte) error {
	if err := v.dec.Decode(pkt); err != nil {
		return fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	d := &v.dec
	v.Stats.Sent++
	atomic.AddInt64(&v.u.Stats.PacketsRouted, 1)

	plan := v.plan(d)
	ttl := int(d.IPv6.HopLimit)
	now := v.clk.Now()
	pk := v.pktKey(d)

	// Hop-limit expiry before the path plan ends: Time Exceeded.
	if ttl <= plan.n {
		idx := ttl - 1
		if v.lost(pk, now, 2*ttl) {
			atomic.AddInt64(&v.u.Stats.LossDropped, 1)
			return nil
		}
		r := v.router(v.stepKeys[idx], v.stepAS[idx])
		if r.unresponsive {
			atomic.AddInt64(&v.u.Stats.UnresponsiveDrops, 1)
			return nil
		}
		if !r.allowICMP(now) {
			atomic.AddInt64(&v.u.Stats.RateLimitDropped, 1)
			return nil
		}
		atomic.AddInt64(&v.u.Stats.TimeExceededSent, 1)
		v.scheduleError(r, wire.ICMPv6TimeExceeded, 0, pkt, idx, now, pk)
		return nil
	}

	switch plan.outcome {
	case outNoRoute, outFilteredAdmin:
		// Unreachable generation is far less dependable than Time
		// Exceeded on the real Internet: many networks blackhole
		// unallocated space silently.
		if plan.outcome == outNoRoute && hashFloat(h(pk, drawNoRoute, uint64(now))) < 0.65 {
			atomic.AddInt64(&v.u.Stats.FilteredDrops, 1)
			return nil
		}
		idx := plan.errorIdx
		if v.lost(pk, now, 2*(idx+1)) {
			atomic.AddInt64(&v.u.Stats.LossDropped, 1)
			return nil
		}
		r := v.router(v.stepKeys[idx], v.stepAS[idx])
		if r.unresponsive {
			atomic.AddInt64(&v.u.Stats.UnresponsiveDrops, 1)
			return nil
		}
		if !r.allowICMP(now) {
			atomic.AddInt64(&v.u.Stats.RateLimitDropped, 1)
			return nil
		}
		code := uint8(wire.CodeNoRoute)
		if plan.outcome == outFilteredAdmin {
			code = wire.CodeAdminProhibited
		} else if plan.reject {
			code = wire.CodeRejectRoute
		}
		atomic.AddInt64(&v.u.Stats.ErrorsSent, 1)
		v.scheduleError(r, wire.ICMPv6DstUnreach, code, pkt, idx, now, pk)
		return nil

	case outFilteredSilent:
		atomic.AddInt64(&v.u.Stats.FilteredDrops, 1)
		return nil
	}

	// Destination /64 reached.
	if v.lost(pk, now, 2*(plan.n+1)) {
		atomic.AddInt64(&v.u.Stats.LossDropped, 1)
		return nil
	}
	exists := v.u.HostExists(d.IPv6.Dst)
	rtt := v.pathRTT(plan.n) + v.jitter(pk, now)
	switch {
	case exists && d.Proto == wire.ProtoICMPv6 && d.ICMPv6.Type == wire.ICMPv6EchoRequest:
		if plan.destAS.BlockEcho {
			atomic.AddInt64(&v.u.Stats.FilteredDrops, 1)
			return nil
		}
		atomic.AddInt64(&v.u.Stats.EchoRepliesSent, 1)
		buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(d.Payload))
		n := wire.BuildEchoReply(buf, d.IPv6.Dst, v.addr, &d.ICMPv6, d.Payload, 64)
		v.deliver(buf[:n], now+rtt)
	case exists && d.Proto == wire.ProtoUDP:
		atomic.AddInt64(&v.u.Stats.PortUnreachSent, 1)
		buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(pkt))
		n := wire.BuildICMPv6Error(buf, wire.ICMPv6DstUnreach, wire.CodePortUnreachable, d.IPv6.Dst, v.addr, pkt, 64)
		v.deliver(buf[:n], now+rtt)
	case exists && d.Proto == wire.ProtoTCP:
		atomic.AddInt64(&v.u.Stats.TCPRstsSent, 1)
		buf := make([]byte, wire.IPv6HeaderLen+wire.TCPHeaderLen)
		n := wire.BuildTCPRst(buf, d.IPv6.Dst, v.addr, &d.TCP, 64)
		v.deliver(buf[:n], now+rtt)
	default:
		// No such host: the gateway's neighbor discovery fails and it
		// reports address-unreachable some of the time (rate-limited).
		if hashFloat(h(pk, drawND, uint64(now))) < 0.6 {
			idx := plan.errorIdx
			r := v.router(v.stepKeys[idx], v.stepAS[idx])
			if !r.unresponsive && r.allowICMP(now) {
				atomic.AddInt64(&v.u.Stats.ErrorsSent, 1)
				v.scheduleError(r, wire.ICMPv6DstUnreach, wire.CodeAddrUnreachable, pkt, idx, now, pk)
			} else {
				atomic.AddInt64(&v.u.Stats.RateLimitDropped, 1)
			}
		}
	}
	return nil
}

// scheduleError builds and enqueues an ICMPv6 error from router r quoting
// the probe, arriving after the round-trip to step idx.
func (v *Vantage) scheduleError(r *Router, typ, code uint8, probe []byte, idx int, now time.Duration, pk uint64) {
	quote := probe
	if r.truncateQuote && len(quote) > 48 {
		// Legacy gear quoting IPv4-style: header plus 8 bytes.
		quote = quote[:48]
	}
	if max := wire.MinMTU - wire.IPv6HeaderLen - wire.ICMPv6HeaderLen; len(quote) > max {
		quote = quote[:max]
	}
	buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(quote))
	n := wire.BuildICMPv6Error(buf, typ, code, r.Addr, v.addr, quote, 64)
	rtt := v.pathRTT(idx+1) + v.jitter(pk, now)
	v.deliver(buf[:n], now+rtt)
}

// pathRTT sums link latencies over the first n steps, doubled.
func (v *Vantage) pathRTT(n int) time.Duration {
	var oneWay time.Duration
	for i := 0; i < n && i < len(v.stepKeys); i++ {
		oneWay += v.u.linkLatency(v.stepKeys[i])
	}
	return 2 * oneWay
}

// jitter returns the probe's return-path delay variation.
func (v *Vantage) jitter(pk uint64, now time.Duration) time.Duration {
	return time.Duration(h(pk, drawJitter, uint64(now)) % uint64(2*time.Millisecond))
}

// lost rolls per-traversal loss over hops link crossings (forward and
// return combined by the caller).
func (v *Vantage) lost(pk uint64, now time.Duration, hops int) bool {
	p := float64(v.u.cfg.LossPercent) / 100
	if p <= 0 {
		return false
	}
	survive := math.Pow(1-p, float64(hops))
	return hashFloat(h(pk, drawLoss, uint64(now))) > survive
}

// deliver enqueues reply bytes for Recv at time t.
func (v *Vantage) deliver(b []byte, t time.Duration) {
	heap.Push(&v.queue, delivery{at: t, data: b})
}

// Recv copies the next reply whose delivery time has arrived into buf,
// returning its length. ok is false when nothing is pending at the
// current virtual time.
func (v *Vantage) Recv(buf []byte) (int, bool) {
	if len(v.queue) == 0 || v.queue[0].at > v.clk.Now() {
		return 0, false
	}
	d := heap.Pop(&v.queue).(delivery)
	v.Stats.Received++
	return copy(buf, d.data), true
}

// Pending reports how many replies are queued (delivered or in flight).
func (v *Vantage) Pending() int { return len(v.queue) }

type delivery struct {
	at   time.Duration
	data []byte
}

type deliveryQueue []delivery

func (q deliveryQueue) Len() int            { return len(q) }
func (q deliveryQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q deliveryQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x interface{}) { *q = append(*q, x.(delivery)) }
func (q *deliveryQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
