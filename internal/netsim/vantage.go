package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// VantageSpec describes where a measurement vantage attaches.
type VantageSpec struct {
	Name     string
	Kind     ASKind // kind of AS hosting the vantage
	ChainLen int    // on-premise access path length (routers before the border)
}

// Vantage is a measurement host inside the simulated internetwork. It
// implements the prober-side connection contract: Send consumes a
// wire-format IPv6 packet, Recv yields wire-format replies, and
// Now/Sleep expose the universe's virtual clock for pacing.
type Vantage struct {
	u    *Universe
	spec VantageSpec
	id   uint64
	as   *AS
	addr netip.Addr
	rng  *rand.Rand

	parent []int32 // BFS shortest-path tree over the AS graph, -1 at root

	queue deliveryQueue
	dec   wire.Decoded // scratch decoder reused across Send calls

	stepKeys []RouterKey // scratch path plan
	stepAS   []*AS

	// Stats counts prober-visible events at this vantage.
	Stats VantageStats
}

// VantageStats aggregates per-vantage counters.
type VantageStats struct {
	Sent     int64
	Received int64
}

// NewVantage attaches a vantage to a deterministic AS of spec.Kind.
func (u *Universe) NewVantage(spec VantageSpec) *Vantage {
	if spec.ChainLen <= 0 {
		spec.ChainLen = 3
	}
	var nameKey uint64
	for _, c := range spec.Name {
		nameKey = nameKey*131 + uint64(c)
	}
	var pool []*AS
	for _, as := range u.ases {
		if as.Kind == spec.Kind && as.CPEOUIIndex == 0 {
			pool = append(pool, as)
		}
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("netsim: no AS of kind %s for vantage %q", spec.Kind, spec.Name))
	}
	as := pool[h(u.seed, 31, nameKey)%uint64(len(pool))]
	v := &Vantage{
		u:    u,
		spec: spec,
		id:   nameKey,
		as:   as,
		addr: ipv6.WithIID(ipv6.NthSubprefix(as.Prefixes[0], 64, 0xbeef).Addr(), 0x1),
		rng:  rand.New(rand.NewSource(int64(h(u.seed, 32, nameKey)))),
	}
	v.parent = u.bfsTree(as.Idx)
	v.stepKeys = make([]RouterKey, 0, 64)
	v.stepAS = make([]*AS, 0, 64)
	return v
}

// bfsTree computes the shortest-path tree over the AS adjacency graph.
func (u *Universe) bfsTree(root int) []int32 {
	parent := make([]int32, len(u.ases))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range u.ases[cur].Neighbors {
			if parent[nb] == -2 {
				parent[nb] = int32(cur)
				queue = append(queue, nb)
			}
		}
	}
	return parent
}

// Name returns the vantage's configured name.
func (v *Vantage) Name() string { return v.spec.Name }

// LocalAddr returns the vantage's source address.
func (v *Vantage) LocalAddr() netip.Addr { return v.addr }

// AS returns the autonomous system hosting the vantage.
func (v *Vantage) AS() *AS { return v.as }

// Now returns the current virtual time.
func (v *Vantage) Now() time.Duration { return v.u.clock.Now() }

// Sleep advances virtual time; probers call this to pace departures.
func (v *Vantage) Sleep(d time.Duration) { v.u.clock.Sleep(d) }

// outcomes of path planning.
type outcomeKind uint8

const (
	outHost outcomeKind = iota
	outNoRoute
	outFilteredSilent
	outFilteredAdmin
)

type pathPlan struct {
	n        int // number of router steps
	outcome  outcomeKind
	errorIdx int          // step originating a destination-unreachable
	lan      netip.Prefix // destination /64 when outcome == outHost
	destAS   *AS          // nil when unrouted
	reject   bool         // reject-route rather than no-route
}

// flowHash computes the per-flow load-balancing key the way the paper
// describes deployed routers doing it: addresses, protocol, and for
// TCP/UDP the port pair — but for ICMPv6 the checksum and identifier,
// which is precisely why Yarrp6 must hold its checksum constant per
// target via payload fudge.
func flowHash(seed uint64, d *wire.Decoded) uint64 {
	s := ipv6.FromAddr(d.IPv6.Src)
	t := ipv6.FromAddr(d.IPv6.Dst)
	var extra uint64
	switch d.Proto {
	case wire.ProtoTCP:
		extra = uint64(d.TCP.SrcPort)<<16 | uint64(d.TCP.DstPort)
	case wire.ProtoUDP:
		extra = uint64(d.UDP.SrcPort)<<16 | uint64(d.UDP.DstPort)
	case wire.ProtoICMPv6:
		extra = uint64(d.ICMPv6.Checksum)<<16 | uint64(d.ICMPv6.ID)
	}
	return h(seed, s.Hi, s.Lo, t.Hi, t.Lo, uint64(d.Proto)<<32|uint64(d.IPv6.FlowLabel), extra)
}

// plan computes the router path for the decoded probe, filling the
// vantage's scratch buffers.
func (v *Vantage) plan(d *wire.Decoded) pathPlan {
	u := v.u
	v.stepKeys = v.stepKeys[:0]
	v.stepAS = v.stepAS[:0]
	push := func(k RouterKey, as *AS) {
		v.stepKeys = append(v.stepKeys, k)
		v.stepAS = append(v.stepAS, as)
	}
	// On-premise access chain.
	for i := 0; i < v.spec.ChainLen; i++ {
		push(RouterKey{ASN: v.as.ASN, Class: classAccess, K1: v.id, K2: uint64(i)}, v.as)
	}

	rt, ok := u.table.Lookup(d.IPv6.Dst)
	if !ok {
		// Unrouted destination: the border router reports no-route.
		return pathPlan{n: len(v.stepKeys), outcome: outNoRoute, errorIdx: len(v.stepKeys) - 1}
	}
	destAS := u.byASN[rt.Origin]

	// AS-level path from the BFS tree (vantage → ... → destination AS).
	var asPath [64]int
	pl := 0
	for cur := destAS.Idx; cur != v.as.Idx && pl < len(asPath); cur = int(v.parent[cur]) {
		if v.parent[cur] < 0 {
			break
		}
		asPath[pl] = cur
		pl++
	}
	fh := flowHash(u.seed, d)
	prevASN := v.as.ASN
	filtered := false
	filterIdx := 0
	filterAdmin := false
	for i := pl - 1; i >= 0; i-- {
		as := u.ases[asPath[i]]
		hops := 1
		if as.Tier <= 2 {
			hops = 1 + int(h(u.seed, 33, uint64(as.ASN), uint64(prevASN))%3)
		}
		var lbSel uint64
		if as.LoadBalanced {
			lbSel = fh % uint64(as.LBWays)
		}
		ingress := h(u.seed, 34, uint64(prevASN), lbSel)
		for j := 0; j < hops; j++ {
			push(RouterKey{ASN: as.ASN, Class: classBackbone, K1: ingress, K2: uint64(j)}, as)
		}
		// Transport filtering at the destination AS border.
		if as == destAS && !filtered {
			if (d.Proto == wire.ProtoUDP && as.BlockUDP) || (d.Proto == wire.ProtoTCP && as.BlockTCP) {
				filtered = true
				filterIdx = len(v.stepKeys) - 1
				filterAdmin = h(u.seed, 35, uint64(as.ASN))%2 == 0
			}
		}
		prevASN = as.ASN
	}
	if filtered {
		out := outFilteredSilent
		if filterAdmin {
			out = outFilteredAdmin
		}
		return pathPlan{n: filterIdx + 1, outcome: out, errorIdx: filterIdx, destAS: destAS}
	}

	// Intra-AS descent through the destination's subnet hierarchy.
	var buf [8]netip.Prefix
	chain, full := u.descent(destAS, rt.Prefix, d.IPv6.Dst, buf[:])
	for _, sub := range chain {
		push(RouterKey{
			ASN:   destAS.ASN,
			Class: classLevel,
			K1:    ipv6.FromAddr(sub.Addr()).Hi,
			K2:    uint64(sub.Bits()),
		}, destAS)
	}
	if !full {
		return pathPlan{
			n:        len(v.stepKeys),
			outcome:  outNoRoute,
			errorIdx: len(v.stepKeys) - 1,
			destAS:   destAS,
			reject:   destAS.RejectRoute,
		}
	}
	return pathPlan{
		n:        len(v.stepKeys),
		outcome:  outHost,
		errorIdx: len(v.stepKeys) - 1,
		lan:      chain[len(chain)-1],
		destAS:   destAS,
	}
}

// Send routes one wire-format probe through the simulated internetwork,
// scheduling at most one reply for later Recv. Malformed packets error.
func (v *Vantage) Send(pkt []byte) error {
	if err := v.dec.Decode(pkt); err != nil {
		return fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	d := &v.dec
	v.Stats.Sent++
	v.u.Stats.PacketsRouted++

	plan := v.plan(d)
	ttl := int(d.IPv6.HopLimit)
	now := v.u.clock.Now()

	// Hop-limit expiry before the path plan ends: Time Exceeded.
	if ttl <= plan.n {
		idx := ttl - 1
		if v.lost(2 * ttl) {
			v.u.Stats.LossDropped++
			return nil
		}
		r := v.u.router(v.stepKeys[idx], v.stepAS[idx])
		if r.unresponsive {
			v.u.Stats.UnresponsiveDrops++
			return nil
		}
		if !r.allowICMP(now) {
			v.u.Stats.RateLimitDropped++
			return nil
		}
		v.u.Stats.TimeExceededSent++
		v.scheduleError(r, wire.ICMPv6TimeExceeded, 0, pkt, idx, now)
		return nil
	}

	switch plan.outcome {
	case outNoRoute, outFilteredAdmin:
		// Unreachable generation is far less dependable than Time
		// Exceeded on the real Internet: many networks blackhole
		// unallocated space silently.
		if plan.outcome == outNoRoute && v.rng.Float64() < 0.65 {
			v.u.Stats.FilteredDrops++
			return nil
		}
		idx := plan.errorIdx
		if v.lost(2 * (idx + 1)) {
			v.u.Stats.LossDropped++
			return nil
		}
		r := v.u.router(v.stepKeys[idx], v.stepAS[idx])
		if r.unresponsive {
			v.u.Stats.UnresponsiveDrops++
			return nil
		}
		if !r.allowICMP(now) {
			v.u.Stats.RateLimitDropped++
			return nil
		}
		code := uint8(wire.CodeNoRoute)
		if plan.outcome == outFilteredAdmin {
			code = wire.CodeAdminProhibited
		} else if plan.reject {
			code = wire.CodeRejectRoute
		}
		v.u.Stats.ErrorsSent++
		v.scheduleError(r, wire.ICMPv6DstUnreach, code, pkt, idx, now)
		return nil

	case outFilteredSilent:
		v.u.Stats.FilteredDrops++
		return nil
	}

	// Destination /64 reached.
	if v.lost(2 * (plan.n + 1)) {
		v.u.Stats.LossDropped++
		return nil
	}
	exists := v.u.HostExists(d.IPv6.Dst)
	rtt := v.pathRTT(plan.n) + v.jitter()
	switch {
	case exists && d.Proto == wire.ProtoICMPv6 && d.ICMPv6.Type == wire.ICMPv6EchoRequest:
		if plan.destAS.BlockEcho {
			v.u.Stats.FilteredDrops++
			return nil
		}
		v.u.Stats.EchoRepliesSent++
		buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(d.Payload))
		n := wire.BuildEchoReply(buf, d.IPv6.Dst, v.addr, &d.ICMPv6, d.Payload, 64)
		v.deliver(buf[:n], now+rtt)
	case exists && d.Proto == wire.ProtoUDP:
		v.u.Stats.PortUnreachSent++
		buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(pkt))
		n := wire.BuildICMPv6Error(buf, wire.ICMPv6DstUnreach, wire.CodePortUnreachable, d.IPv6.Dst, v.addr, pkt, 64)
		v.deliver(buf[:n], now+rtt)
	case exists && d.Proto == wire.ProtoTCP:
		v.u.Stats.TCPRstsSent++
		buf := make([]byte, wire.IPv6HeaderLen+wire.TCPHeaderLen)
		n := wire.BuildTCPRst(buf, d.IPv6.Dst, v.addr, &d.TCP, 64)
		v.deliver(buf[:n], now+rtt)
	default:
		// No such host: the gateway's neighbor discovery fails and it
		// reports address-unreachable some of the time (rate-limited).
		if v.rng.Float64() < 0.6 {
			idx := plan.errorIdx
			r := v.u.router(v.stepKeys[idx], v.stepAS[idx])
			if !r.unresponsive && r.allowICMP(now) {
				v.u.Stats.ErrorsSent++
				v.scheduleError(r, wire.ICMPv6DstUnreach, wire.CodeAddrUnreachable, pkt, idx, now)
			} else {
				v.u.Stats.RateLimitDropped++
			}
		}
	}
	return nil
}

// scheduleError builds and enqueues an ICMPv6 error from router r quoting
// the probe, arriving after the round-trip to step idx.
func (v *Vantage) scheduleError(r *Router, typ, code uint8, probe []byte, idx int, now time.Duration) {
	quote := probe
	if r.truncateQuote && len(quote) > 48 {
		// Legacy gear quoting IPv4-style: header plus 8 bytes.
		quote = quote[:48]
	}
	if max := wire.MinMTU - wire.IPv6HeaderLen - wire.ICMPv6HeaderLen; len(quote) > max {
		quote = quote[:max]
	}
	buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(quote))
	n := wire.BuildICMPv6Error(buf, typ, code, r.Addr, v.addr, quote, 64)
	rtt := v.pathRTT(idx+1) + v.jitter()
	v.deliver(buf[:n], now+rtt)
}

// pathRTT sums link latencies over the first n steps, doubled.
func (v *Vantage) pathRTT(n int) time.Duration {
	var oneWay time.Duration
	for i := 0; i < n && i < len(v.stepKeys); i++ {
		oneWay += v.u.linkLatency(v.stepKeys[i])
	}
	return 2 * oneWay
}

func (v *Vantage) jitter() time.Duration {
	return time.Duration(v.rng.Int63n(int64(2 * time.Millisecond)))
}

// lost rolls per-traversal loss over hops link crossings (forward and
// return combined by the caller).
func (v *Vantage) lost(hops int) bool {
	p := float64(v.u.cfg.LossPercent) / 100
	if p <= 0 {
		return false
	}
	survive := math.Pow(1-p, float64(hops))
	return v.rng.Float64() > survive
}

// deliver enqueues reply bytes for Recv at time t.
func (v *Vantage) deliver(b []byte, t time.Duration) {
	heap.Push(&v.queue, delivery{at: t, data: b})
}

// Recv copies the next reply whose delivery time has arrived into buf,
// returning its length. ok is false when nothing is pending at the
// current virtual time.
func (v *Vantage) Recv(buf []byte) (int, bool) {
	if len(v.queue) == 0 || v.queue[0].at > v.u.clock.Now() {
		return 0, false
	}
	d := heap.Pop(&v.queue).(delivery)
	v.Stats.Received++
	return copy(buf, d.data), true
}

// Pending reports how many replies are queued (delivered or in flight).
func (v *Vantage) Pending() int { return len(v.queue) }

type delivery struct {
	at   time.Duration
	data []byte
}

type deliveryQueue []delivery

func (q deliveryQueue) Len() int            { return len(q) }
func (q deliveryQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q deliveryQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x interface{}) { *q = append(*q, x.(delivery)) }
func (q *deliveryQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
