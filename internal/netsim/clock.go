package netsim

import "time"

// Clock is the simulator's virtual clock. Probers advance it by sleeping
// between packet departures (the pacing that converts a packets-per-second
// rate into inter-departure gaps); every time-dependent mechanism in the
// simulator — token-bucket refill, reply delivery, RTT timestamps — reads
// the same clock. A campaign that would take a day of wall time on the
// real Internet completes in however long the packet processing takes,
// with identical rate-limiting dynamics.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time (duration since the epoch of the
// universe).
func (c *Clock) Now() time.Duration { return c.now }

// Sleep advances virtual time by d. Negative durations are ignored.
func (c *Clock) Sleep(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}
