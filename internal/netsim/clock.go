package netsim

import (
	"sync/atomic"
	"time"
)

// Clock is the simulator's virtual clock. Probers advance it by sleeping
// between packet departures (the pacing that converts a packets-per-second
// rate into inter-departure gaps); every time-dependent mechanism in the
// simulator — token-bucket refill, reply delivery, RTT timestamps — reads
// the same clock. A campaign that would take a day of wall time on the
// real Internet completes in however long the packet processing takes,
// with identical rate-limiting dynamics.
//
// Reads and writes are atomic so that a ClockGroup coordinator (or a
// monitoring goroutine) may observe a clock that another goroutine is
// advancing. Each clock still has a single logical owner: only the owning
// vantage calls Sleep.
type Clock struct {
	now int64 // virtual nanoseconds, accessed atomically
}

// NewClockAt returns a clock whose virtual time starts at t. Sharded
// campaigns use it to open each shard's clock at its permutation window
// start, so the union of shard schedules reproduces the single-prober
// schedule exactly.
func NewClockAt(t time.Duration) *Clock {
	c := &Clock{}
	atomic.StoreInt64(&c.now, int64(t))
	return c
}

// Now returns the current virtual time (duration since the epoch of the
// universe).
func (c *Clock) Now() time.Duration { return time.Duration(atomic.LoadInt64(&c.now)) }

// Sleep advances virtual time by d. Negative durations are ignored.
func (c *Clock) Sleep(d time.Duration) {
	if d > 0 {
		atomic.AddInt64(&c.now, int64(d))
	}
}

// reset rewinds the clock to zero; Universe.ResetState uses it between
// campaigns.
func (c *Clock) reset() { atomic.StoreInt64(&c.now, 0) }

// ClockGroup coordinates the virtual clocks of concurrent vantages (one
// per campaign shard). Each member owns a disjoint window of virtual time
// and advances through it independently; the group's watermark — the
// minimum member time — is the coordinated virtual clock of the whole
// campaign: it only ever advances, and every simulator event with a
// timestamp at or below it is final (no member can still emit an earlier
// event).
//
// Members are registered before the campaign starts; the member list is
// immutable while shards run, so Watermark and Horizon need no locking
// beyond the members' atomic clock reads.
type ClockGroup struct {
	members []*Clock
}

// Add registers a member clock. Not safe to call concurrently with
// Watermark/Horizon; register every shard before starting any.
func (g *ClockGroup) Add(c *Clock) { g.members = append(g.members, c) }

// Len returns the number of member clocks.
func (g *ClockGroup) Len() int { return len(g.members) }

// Watermark returns the coordinated virtual time: the minimum over all
// member clocks. With no members it returns zero.
func (g *ClockGroup) Watermark() time.Duration {
	if len(g.members) == 0 {
		return 0
	}
	min := g.members[0].Now()
	for _, c := range g.members[1:] {
		if t := c.Now(); t < min {
			min = t
		}
	}
	return min
}

// Horizon returns the maximum member time: how far the fastest shard has
// advanced. Horizon − Watermark bounds the virtual-time spread between
// shards.
func (g *ClockGroup) Horizon() time.Duration {
	var max time.Duration
	for _, c := range g.members {
		if t := c.Now(); t > max {
			max = t
		}
	}
	return max
}
