package netsim

import (
	"time"

	"beholder/internal/faultsim"
)

// ASKind categorizes an autonomous system; the kind selects the addressing
// plan (subnet hierarchy and host population) and policy knobs.
type ASKind int

// AS kinds. The mix approximates the populations the paper's seed sources
// draw from.
const (
	KindTransit    ASKind = iota // backbone carrier; mostly infrastructure
	KindEyeballISP               // residential broadband; CPE at the edge
	KindHosting                  // datacenter/content; dense lowbyte servers
	KindEnterprise               // corporate; rDNS-visible static hosts
	KindUniversity               // campus; publishes address plans
	numASKinds
)

func (k ASKind) String() string {
	switch k {
	case KindTransit:
		return "transit"
	case KindEyeballISP:
		return "eyeball"
	case KindHosting:
		return "hosting"
	case KindEnterprise:
		return "enterprise"
	case KindUniversity:
		return "university"
	}
	return "unknown"
}

// Config parameterizes universe generation. The zero value is not valid;
// start from DefaultConfig or TestConfig.
type Config struct {
	Seed int64 // master determinism seed

	// AS population.
	NumASes        int // total autonomous systems
	NumTier1       int // fully meshed core carriers
	Tier2Frac      int // one tier-2 regional per this many ASes
	EyeballFrac    int // percent of edge ASes that are eyeball ISPs
	HostingFrac    int // percent of edge ASes that are hosting networks
	EnterpriseFrac int // percent of edge ASes that are enterprises
	// remainder: universities

	// Addressing.
	PrefixesPerAS  int // mean announced prefixes per AS
	RIRPercent     int // percent of ASes numbering routers from unadvertised RIR space
	CPEISPs        int // count of large eyeball ISPs with EUI-64 CPE deployments
	EquivOrgGroups int // organizations originating from multiple "equivalent" ASNs

	// Router behaviour.
	RateLimitTokensMin  float64       // token bucket refill rate, tokens/sec, low end
	RateLimitTokensMax  float64       // high end
	RateLimitBurstMin   float64       // bucket depth, low end
	RateLimitBurstMax   float64       // high end
	AggressivePercent   int           // percent of routers with ~10x stricter limits
	UnresponsivePercent int           // percent of routers that never emit ICMPv6
	LossPercent         int           // per-hop probe loss, percent (applied per traversal)
	QuoteTruncPercent   int           // percent of routers quoting only 28+40 bytes (IPv4-style)
	BaseHopLatency      time.Duration // per-hop one-way latency floor

	// Policy.
	BlockUDPPercent  int // percent of edge ASes filtering UDP probes at the border
	BlockTCPPercent  int // percent of edge ASes filtering TCP probes at the border
	BlockEchoPercent int // percent of edge ASes filtering ICMPv6 echo to hosts
	RejectRoutePct   int // percent of edge ASes answering unallocated space with reject-route

	// Load balancing.
	LBFracPercent int // percent of transit ASes running ECMP
	LBWays        int // parallel paths at a load-balanced AS

	// Aliasing. CDN-style hosting ASes front whole /64s with load
	// balancers that terminate any address — the aliased-prefix
	// pollution that follow-on work (6Prob) dealiases.
	CDNPercent        int // percent of hosting ASes operating CDN-style front ends
	AliasedLANPercent int // percent of provisioned /64s in CDN ASes that are aliased

	// PlanCacheSize is the per-vantage flow-plan cache size in
	// direct-mapped slots: 0 selects the library default, negative
	// disables caching. Purely a speed/memory trade — cached plans are
	// pure functions of (seed, flow identity), so results are
	// byte-identical at any setting. Vantage.SetPlanCache overrides it
	// per vantage.
	PlanCacheSize int

	// Faults attaches the deterministic fault-injection plane
	// (internal/faultsim): per-vantage crash/stall schedules, transient
	// send errors, reply truncation/corruption, and delayed-burst
	// delivery, all keyed-hash-driven so faulted runs replay exactly.
	// Nil injects nothing and costs one predictable branch per send.
	Faults *faultsim.Config
}

// DefaultConfig returns a campaign-scale universe: large enough that
// target sets in the tens of thousands and probe counts in the millions
// behave like the paper's Internet-wide campaigns, small enough that every
// experiment runs in seconds.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		NumASes:             1200,
		NumTier1:            8,
		Tier2Frac:           12,
		EyeballFrac:         30,
		HostingFrac:         25,
		EnterpriseFrac:      30,
		PrefixesPerAS:       3,
		RIRPercent:          12,
		CPEISPs:             2,
		EquivOrgGroups:      10,
		RateLimitTokensMin:  60,
		RateLimitTokensMax:  400,
		RateLimitBurstMin:   10,
		RateLimitBurstMax:   80,
		AggressivePercent:   10,
		UnresponsivePercent: 6,
		LossPercent:         1,
		QuoteTruncPercent:   1,
		BaseHopLatency:      300 * time.Microsecond,
		BlockUDPPercent:     8,
		BlockTCPPercent:     7,
		BlockEchoPercent:    4,
		RejectRoutePct:      3,
		LBFracPercent:       30,
		LBWays:              4,
		CDNPercent:          35,
		AliasedLANPercent:   30,
	}
}

// TestConfig returns a small universe for unit tests.
func TestConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.NumASes = 120
	c.NumTier1 = 4
	c.Tier2Frac = 10
	// Small universes probe small target sets; a few thousand slots keep
	// the per-vantage footprint down without costing hit rate.
	c.PlanCacheSize = 1 << 13
	return c
}
