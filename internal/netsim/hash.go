package netsim

import (
	"net/netip"

	"beholder/internal/ipv6"
)

// All stochastic structure in the simulated Internet is derived from keyed
// hashes of stable identifiers (universe seed, ASN, prefix, level) rather
// than from a stream RNG. This makes every property of the universe — does
// this /48 exist, what is this router's token-bucket rate, which backbone
// path does this flow take — a pure function of the seed, independent of
// the order in which the simulator is queried. Campaigns are therefore
// reproducible regardless of prober interleaving.

const (
	sm64Gamma = 0x9e3779b97f4a7c15
	mixMul1   = 0xbf58476d1ce4e5b9
	mixMul2   = 0x94d049bb133111eb
)

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMul1
	z = (z ^ (z >> 27)) * mixMul2
	return z ^ (z >> 31)
}

// h hashes a sequence of words under seed.
func h(seed uint64, parts ...uint64) uint64 {
	acc := mix64(seed + sm64Gamma)
	for _, p := range parts {
		acc = mix64(acc ^ (p + sm64Gamma))
	}
	return acc
}

// hAddr folds an address into hash input words.
func hAddr(seed uint64, a netip.Addr, parts ...uint64) uint64 {
	u := ipv6.FromAddr(a)
	acc := h(seed, u.Hi, u.Lo)
	if len(parts) > 0 {
		acc = h(acc, parts...)
	}
	return acc
}

// hPrefix folds a canonical prefix (base plus length) into hash input.
func hPrefix(seed uint64, p netip.Prefix, parts ...uint64) uint64 {
	u := ipv6.FromAddr(p.Addr())
	acc := h(seed, u.Hi, u.Lo, uint64(p.Bits()))
	if len(parts) > 0 {
		acc = h(acc, parts...)
	}
	return acc
}

// chance returns true with probability num/den, decided by key.
func chance(key uint64, num, den uint64) bool {
	if num >= den {
		return true
	}
	return key%den < num
}

// between maps key into [lo, hi] inclusive.
func between(key, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + key%(hi-lo+1)
}
