package netsim

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// primeTargets samples gateway destinations across hosting ASes: their
// paths share the vantage's access chain, so an unpaced schedule drains
// the shared routers' ICMPv6 token buckets — the regime prime replay
// exists for.
func primeTargets(u *Universe, n int) []netip.Addr {
	rng := rand.New(rand.NewSource(17))
	out := make([]netip.Addr, 0, n)
	for len(out) < n {
		as := u.RandomAS(rng, KindHosting)
		lan, _ := u.RandomLAN(rng, as)
		out = append(out, u.GatewayAddr(lan, as))
	}
	return out
}

// primeSchedule visits the (target × TTL) domain in Yarrp6's round
// order — every target at TTL 1, then every target at TTL 2, … — for
// rounds passes at an unpaced 150µs inter-probe gap, calling
// fn(target index, ttl, instant) per probe. Several passes at this rate
// drain the shared access-chain buckets (burst ≤ 80, refill ≤ 400/s).
func primeSchedule(nTargets, maxTTL, rounds int, fn func(ti int, ttl uint8, at time.Duration)) time.Duration {
	const gap = 150 * time.Microsecond
	domain := nTargets * maxTTL * rounds
	for pos := 0; pos < domain; pos++ {
		fn(pos%nTargets, uint8(1+(pos/nTargets)%maxTTL), time.Duration(pos)*gap)
	}
	return time.Duration(domain) * gap
}

// simStateTokens decodes a sim-state blob's token levels by record.
func simStateTokens(t *testing.T, blob []byte) []float64 {
	t.Helper()
	if len(blob) < 4 {
		t.Fatalf("sim state blob only %d bytes", len(blob))
	}
	n := int(binary.LittleEndian.Uint32(blob))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		_, tokens, _ := simEntry(blob[4:], i)
		out[i] = tokens
	}
	return out
}

// TestPrimeFastPathMatchesPrime pins the three ways of evaluating the
// same probe schedule's token-bucket history to each other: real sends,
// the reference Prime replay, and the PrimeFlow/PrimeIdx fast path must
// leave byte-identical exported bucket state — on a schedule fast
// enough to saturate the shared access routers, where any divergence in
// the replayed branch structure would surface as a token-level drift.
func TestPrimeFastPathMatchesPrime(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "prime", Kind: KindUniversity, ChainLen: 3})
	targets := primeTargets(u, 12)
	const maxTTL = 8

	real := v.Clone(0)
	end := primeSchedule(len(targets), maxTTL, 16, func(ti int, ttl uint8, at time.Duration) {
		_ = real.Send(buildEchoProbe(real.LocalAddr(), targets[ti], ttl))
		real.Sleep(150 * time.Microsecond)
	})
	if real.Now() != end {
		t.Fatalf("real schedule ended at %v, want %v", real.Now(), end)
	}

	ref := v.Clone(0)
	ref.BeginPrime()
	primeSchedule(len(targets), maxTTL, 16, func(ti int, ttl uint8, at time.Duration) {
		if err := ref.Prime(buildEchoProbe(ref.LocalAddr(), targets[ti], ttl), at); err != nil {
			t.Fatal(err)
		}
	})
	ref.EndPrime()

	fast := v.Clone(0)
	fast.BeginPrime()
	toks := make([]int, len(targets))
	for i := range toks {
		toks[i] = -1
	}
	primeSchedule(len(targets), maxTTL, 16, func(ti int, ttl uint8, at time.Duration) {
		if toks[ti] < 0 {
			tok, err := fast.PrimeFlow(buildEchoProbe(fast.LocalAddr(), targets[ti], ttl))
			if err != nil {
				t.Fatal(err)
			}
			toks[ti] = tok
		}
		fast.PrimeIdx(toks[ti], ttl, at)
	})
	fast.EndPrime()

	blobReal := real.ExportSimState(nil)
	blobRef := ref.ExportSimState(nil)
	blobFast := fast.ExportSimState(nil)
	if !bytes.Equal(blobRef, blobReal) {
		t.Fatal("Prime replay and real sends leave different bucket state")
	}
	if !bytes.Equal(blobFast, blobRef) {
		t.Fatal("PrimeFlow/PrimeIdx fast path and Prime leave different bucket state")
	}
	tokens := simStateTokens(t, blobRef)
	if len(tokens) == 0 {
		t.Fatal("schedule touched no routers")
	}
	drained := 0
	for _, tk := range tokens {
		if tk < 1 {
			drained++
		}
	}
	if drained == 0 {
		t.Fatal("no bucket drained below one token; the schedule did not reach saturation")
	}
}

// TestSimStateLazyImport: an imported blob passes through an untouched
// vantage byte for byte, and a vantage that materializes some of the
// imported routers by routing traffic merges live bucket state with the
// still-pending records into the same export the original vantage
// produces.
func TestSimStateLazyImport(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "prime", Kind: KindUniversity, ChainLen: 3})
	targets := primeTargets(u, 12)

	a := v.Clone(0)
	end := primeSchedule(len(targets), 8, 16, func(ti int, ttl uint8, at time.Duration) {
		_ = a.Send(buildEchoProbe(a.LocalAddr(), targets[ti], ttl))
		a.Sleep(150 * time.Microsecond)
	})
	blob := a.ExportSimState(nil)
	if n := binary.LittleEndian.Uint32(blob); n == 0 {
		t.Fatal("exporting vantage has no routers")
	}

	passthrough := v.Clone(end)
	if err := passthrough.ImportSimState(append([]byte(nil), blob...)); err != nil {
		t.Fatal(err)
	}
	if got := passthrough.ExportSimState(nil); !bytes.Equal(got, blob) {
		t.Fatal("import/export of an untouched vantage is not byte-identical")
	}

	merged := v.Clone(end)
	if err := merged.ImportSimState(append([]byte(nil), blob...)); err != nil {
		t.Fatal(err)
	}
	// Route the same follow-up probes on both vantages at the same
	// instants: merged materializes a subset of the imported routers and
	// must export their live buckets merged with the untouched pending
	// records — exactly a's state.
	for i := 0; i < 3; i++ {
		pkt := buildEchoProbe(v.LocalAddr(), targets[i], 3)
		_ = a.Send(pkt)
		a.Sleep(time.Millisecond)
		_ = merged.Send(pkt)
		merged.Sleep(time.Millisecond)
	}
	if got, want := merged.ExportSimState(nil), a.ExportSimState(nil); !bytes.Equal(got, want) {
		t.Fatal("merged export (live + pending) differs from the uninterrupted vantage")
	}
}

// TestImportSimStateErrors: structurally invalid blobs are rejected
// before any state is retained.
func TestImportSimStateErrors(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "prime", Kind: KindUniversity, ChainLen: 3})
	targets := primeTargets(u, 4)
	a := v.Clone(0)
	for i, dst := range targets {
		_ = a.Send(buildEchoProbe(a.LocalAddr(), dst, uint8(2+i%3)))
		a.Sleep(time.Millisecond)
	}
	blob := a.ExportSimState(nil)
	if n := binary.LittleEndian.Uint32(blob); n == 0 {
		t.Fatal("no routers to corrupt")
	}

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), blob...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"truncated header": {0x01},
		"length mismatch":  blob[:len(blob)-simStateEntrySize/2],
		"nan tokens": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[4+21:], math.Float64bits(math.NaN()))
		}),
		"negative tokens": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[4+21:], math.Float64bits(-1))
		}),
		"unknown AS": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], 0xfffffff0)
		}),
	}
	for name, data := range cases {
		fresh := v.Clone(0)
		if err := fresh.ImportSimState(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
