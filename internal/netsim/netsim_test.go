package netsim

import (
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

func testUniverse(t testing.TB) *Universe {
	t.Helper()
	return NewUniverse(TestConfig(42))
}

func TestUniverseDeterminism(t *testing.T) {
	a := NewUniverse(TestConfig(7))
	b := NewUniverse(TestConfig(7))
	if len(a.ASes()) != len(b.ASes()) {
		t.Fatal("AS counts differ for same seed")
	}
	for i := range a.ASes() {
		x, y := a.ASes()[i], b.ASes()[i]
		if x.ASN != y.ASN || x.Kind != y.Kind || len(x.Prefixes) != len(y.Prefixes) {
			t.Fatalf("AS %d differs: %+v vs %+v", i, x, y)
		}
		for j := range x.Prefixes {
			if x.Prefixes[j] != y.Prefixes[j] {
				t.Fatalf("prefix differs at AS %d", i)
			}
		}
	}
	c := NewUniverse(TestConfig(8))
	diff := false
	for i := range a.ASes() {
		if a.ASes()[i].Kind != c.ASes()[i].Kind {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical kind assignments")
	}
}

func TestUniverseStructure(t *testing.T) {
	u := testUniverse(t)
	if got := u.Table().NumPrefixes(); got == 0 {
		t.Fatal("no prefixes announced")
	}
	kinds := make(map[ASKind]int)
	cpe := 0
	for _, as := range u.ASes() {
		kinds[as.Kind]++
		if len(as.Neighbors) == 0 {
			t.Errorf("AS %d isolated", as.ASN)
		}
		if as.Tier == 3 && len(as.Prefixes) == 0 {
			t.Errorf("edge AS %d has no prefixes", as.ASN)
		}
		if as.CPEOUIIndex > 0 {
			cpe++
		}
		for _, p := range as.Prefixes {
			if p != ipv6.CanonicalPrefix(p) {
				t.Errorf("non-canonical prefix %s", p)
			}
			// Global unicast space.
			if b := p.Addr().As16(); b[0]>>5 != 1 {
				t.Errorf("prefix %s outside 2000::/3", p)
			}
		}
	}
	for k := KindTransit; k < numASKinds; k++ {
		if kinds[k] == 0 {
			t.Errorf("no ASes of kind %s", k)
		}
	}
	if cpe != u.Config().CPEISPs {
		t.Errorf("CPE ISPs = %d want %d", cpe, u.Config().CPEISPs)
	}
}

func TestBFSTreeReachesAllASes(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "test", Kind: KindUniversity, ChainLen: 3})
	for i := range u.ASes() {
		if v.parent[i] == -2 {
			t.Errorf("AS index %d unreachable from vantage", i)
		}
	}
}

func TestRandomLANIsProvisioned(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(1))
	found := 0
	for _, kind := range []ASKind{KindEyeballISP, KindHosting, KindEnterprise, KindUniversity} {
		as := u.RandomAS(rng, kind)
		if as == nil {
			t.Fatalf("no AS of kind %s", kind)
		}
		for i := 0; i < 20; i++ {
			lan, ok := u.RandomLAN(rng, as)
			if !ok {
				continue
			}
			found++
			if lan.Bits() != 64 {
				t.Fatalf("RandomLAN returned /%d", lan.Bits())
			}
			if !u.LANExists(lan.Addr()) {
				t.Fatalf("sampled LAN %s not provisioned per LANExists", lan)
			}
		}
	}
	if found == 0 {
		t.Fatal("no LANs sampled at all")
	}
}

func TestHostExistence(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(2))
	as := u.RandomAS(rng, KindHosting)
	var lan netip.Prefix
	for {
		var ok bool
		lan, ok = u.RandomLAN(rng, as)
		if ok && u.ServerCount(lan, as) >= 2 {
			break
		}
	}
	// Gateway and servers exist.
	if !u.HostExists(u.GatewayAddr(lan, as)) {
		t.Error("gateway does not exist")
	}
	if !u.HostExists(ipv6.WithIID(lan.Addr(), 2)) {
		t.Error("server ::2 does not exist")
	}
	// A fixed pseudo-random IID does not.
	if u.HostExists(ipv6.WithIID(lan.Addr(), 0x1234_5678_1234_5678)) {
		t.Error("fixed IID host should not exist")
	}
	// EUI-64 hosts round-trip through the existence check.
	easRng := rand.New(rand.NewSource(3))
	eas := u.RandomAS(easRng, KindEnterprise)
	for i := 0; i < 50; i++ {
		elan, ok := u.RandomLAN(easRng, eas)
		if !ok || u.EUIHostCount(elan, eas) == 0 {
			continue
		}
		ha := u.EUIHostAddr(elan, eas, 0)
		if !u.HostExists(ha) {
			t.Errorf("EUI-64 host %s does not exist", ha)
		}
		return
	}
	t.Log("no EUI host found to verify (acceptable in small universes)")
}

func TestCPEGatewayUsesEUI64(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(4))
	var cpeAS *AS
	for _, as := range u.ASes() {
		if as.CPEOUIIndex > 0 {
			cpeAS = as
			break
		}
	}
	if cpeAS == nil {
		t.Fatal("no CPE ISP")
	}
	lan, ok := u.RandomLAN(rng, cpeAS)
	if !ok {
		t.Fatal("no LAN in CPE ISP")
	}
	gw := u.GatewayAddr(lan, cpeAS)
	if !ipv6.IsEUI64IID(ipv6.IID(gw)) {
		t.Errorf("CPE gateway %s lacks EUI-64 IID", gw)
	}
	mac, _ := ipv6.MACFromEUI64(ipv6.IID(gw))
	oui := cpeOUIs[cpeAS.CPEOUIIndex]
	if mac[0] != oui[0] || mac[1] != oui[1] || mac[2] != oui[2] {
		t.Errorf("gateway MAC %x does not carry OUI %x", mac, oui)
	}
	// Non-CPE AS gateways use ::1.
	other := u.RandomAS(rng, KindHosting)
	olan, ok := u.RandomLAN(rng, other)
	if ok {
		if got := u.GatewayAddr(olan, other); ipv6.IID(got) != 1 {
			t.Errorf("non-CPE gateway IID = %x want 1", ipv6.IID(got))
		}
	}
}

// buildEchoProbe constructs an ICMPv6 echo-request probe.
func buildEchoProbe(src, dst netip.Addr, ttl uint8) []byte {
	buf := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+12)
	hdr := wire.IPv6Header{HopLimit: ttl, Src: src, Dst: dst}
	icmp := wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: wire.AddrChecksum(dst), Seq: 80}
	n := wire.BuildPacket(buf, &hdr, wire.ProtoICMPv6, nil, nil, &icmp, make([]byte, 12))
	return buf[:n]
}

// traceOnce runs a simple synchronous traceroute against the vantage.
func traceOnce(v *Vantage, dst netip.Addr, maxTTL int) map[int]netip.Addr {
	hops := make(map[int]netip.Addr)
	buf := make([]byte, wire.MinMTU)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, uint8(ttl)))
		v.Sleep(50 * time.Millisecond) // generous pacing: no rate limiting
	}
	v.Sleep(2 * time.Second)
	var d wire.Decoded
	for {
		n, ok := v.Recv(buf)
		if !ok {
			break
		}
		if err := d.Decode(buf[:n]); err != nil {
			continue
		}
		if d.ICMPv6.Type != wire.ICMPv6TimeExceeded {
			continue
		}
		var q wire.Decoded
		if err := q.Decode(d.Payload); err != nil {
			continue
		}
		hops[int(q.IPv6.HopLimit)] = d.IPv6.Src
	}
	return hops
}

func TestTracerouteWalksPath(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "US-EDU-T", Kind: KindUniversity, ChainLen: 4})
	rng := rand.New(rand.NewSource(5))
	as := u.RandomAS(rng, KindHosting)
	lan, ok := u.RandomLAN(rng, as)
	if !ok {
		t.Fatal("no LAN")
	}
	dst := u.GatewayAddr(lan, as)
	hops := traceOnce(v, dst, 24)
	if len(hops) < 5 {
		t.Fatalf("discovered only %d hops: %v", len(hops), hops)
	}
	// Hop addresses must be globally scoped IPv6 and mostly contiguous.
	for ttl, a := range hops {
		if !a.Is6() {
			t.Errorf("hop %d addr %s not IPv6", ttl, a)
		}
	}
	// The first on-premise hop must belong to the vantage AS's space.
	first, ok := hops[1]
	if !ok {
		t.Fatal("hop 1 missing at 20pps-equivalent pacing")
	}
	if got := u.Table().OriginAny(first); got != v.AS().ASN {
		t.Errorf("hop 1 origin ASN = %d want %d", got, v.AS().ASN)
	}
}

func TestTraceStableAcrossRepeats(t *testing.T) {
	// Paris property: identical flow identity must traverse identical
	// routers even through load-balanced ASes.
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "stable", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(6))
	as := u.RandomAS(rng, KindEyeballISP)
	lan, ok := u.RandomLAN(rng, as)
	if !ok {
		t.Fatal("no LAN")
	}
	dst := u.GatewayAddr(lan, as)
	h1 := traceOnce(v, dst, 20)
	h2 := traceOnce(v, dst, 20)
	for ttl, a := range h1 {
		if b, ok := h2[ttl]; ok && a != b {
			t.Errorf("hop %d flapped: %s vs %s (flow identity constant)", ttl, a, b)
		}
	}
}

func TestEchoReplyFromExistingHost(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "echo", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(7))
	// Find a hosting AS that does not filter echo.
	var as *AS
	for {
		as = u.RandomAS(rng, KindHosting)
		if !as.BlockEcho {
			break
		}
	}
	lan, ok := u.RandomLAN(rng, as)
	if !ok {
		t.Fatal("no LAN")
	}
	dst := u.GatewayAddr(lan, as)
	_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, 64))
	v.Sleep(3 * time.Second)
	buf := make([]byte, wire.MinMTU)
	n, ok := v.Recv(buf)
	if !ok {
		t.Fatal("no reply to echo of existing host (could be loss; rerun with new seed)")
	}
	var d wire.Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.ICMPv6.Type != wire.ICMPv6EchoReply {
		t.Fatalf("reply type %d want echo reply", d.ICMPv6.Type)
	}
	if d.IPv6.Src != dst {
		t.Errorf("echo reply source %s want %s", d.IPv6.Src, dst)
	}
}

func TestUDPPortUnreachableFromHost(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "udp", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(8))
	var as *AS
	for {
		as = u.RandomAS(rng, KindHosting)
		if !as.BlockUDP {
			break
		}
	}
	lan, ok := u.RandomLAN(rng, as)
	if !ok {
		t.Fatal("no LAN")
	}
	dst := u.GatewayAddr(lan, as)
	buf := make([]byte, 128)
	hdr := wire.IPv6Header{HopLimit: 64, Src: v.LocalAddr(), Dst: dst}
	udp := wire.UDPHeader{SrcPort: wire.AddrChecksum(dst), DstPort: 80}
	n := wire.BuildPacket(buf, &hdr, wire.ProtoUDP, &udp, nil, nil, make([]byte, 12))
	_ = v.Send(buf[:n])
	v.Sleep(3 * time.Second)
	rbuf := make([]byte, wire.MinMTU)
	rn, ok := v.Recv(rbuf)
	if !ok {
		t.Fatal("no reply to UDP probe of existing host")
	}
	var d wire.Decoded
	if err := d.Decode(rbuf[:rn]); err != nil {
		t.Fatal(err)
	}
	if d.ICMPv6.Type != wire.ICMPv6DstUnreach || d.ICMPv6.Code != wire.CodePortUnreachable {
		t.Fatalf("reply %d/%d want port unreachable", d.ICMPv6.Type, d.ICMPv6.Code)
	}
}

func TestUnroutedTargetNoRoute(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "unrouted", Kind: KindUniversity, ChainLen: 3})
	dst := ipv6.MustAddr("3fff::1") // never allocated by the generator
	// Retry a few times: the border's answer is subject to loss.
	for attempt := 0; attempt < 5; attempt++ {
		_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, 64))
		v.Sleep(2 * time.Second)
		buf := make([]byte, wire.MinMTU)
		n, ok := v.Recv(buf)
		if !ok {
			continue
		}
		var d wire.Decoded
		if err := d.Decode(buf[:n]); err != nil {
			t.Fatal(err)
		}
		if d.ICMPv6.Type != wire.ICMPv6DstUnreach || d.ICMPv6.Code != wire.CodeNoRoute {
			t.Fatalf("reply %d/%d want no-route", d.ICMPv6.Type, d.ICMPv6.Code)
		}
		return
	}
	t.Fatal("no no-route response in 5 attempts")
}

func TestRateLimitingSuppressesBursts(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "burst", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(9))
	as := u.RandomAS(rng, KindHosting)
	lan, _ := u.RandomLAN(rng, as)
	dst := u.GatewayAddr(lan, as)

	// Hammer TTL=1 with no pacing: the access router's bucket must empty.
	const probes = 3000
	for i := 0; i < probes; i++ {
		_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, 1))
		v.Sleep(100 * time.Microsecond) // 10 kpps
	}
	if u.Stats.RateLimitDropped == 0 {
		t.Fatal("no rate-limit suppression under 10kpps TTL=1 hammering")
	}
	got := u.Stats.TimeExceededSent
	if got >= probes/2 {
		t.Errorf("TE sent %d of %d; expected heavy suppression", got, probes)
	}

	// After a quiet period the bucket refills and slow probing succeeds.
	v.Sleep(5 * time.Second)
	before := u.Stats.TimeExceededSent
	for i := 0; i < 20; i++ {
		_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, 1))
		v.Sleep(50 * time.Millisecond) // 20 pps
	}
	sent := u.Stats.TimeExceededSent - before
	if sent < 15 {
		t.Errorf("slow probing after refill: %d of 20 TE", sent)
	}
}

func TestRandomizedOrderAvoidsRateLimiting(t *testing.T) {
	// The paper's core claim in miniature: the same probe budget at the
	// same aggregate rate elicits far more hop-1 responses when TTLs are
	// interleaved than when TTL=1 probes arrive in one synchronized burst.
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(10))
	as := u.RandomAS(rng, KindHosting)
	var dsts []netip.Addr
	for len(dsts) < 256 {
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		dsts = append(dsts, u.GatewayAddr(lan, as))
	}
	const maxTTL = 8
	gap := time.Second / 2000 // 2 kpps

	// Sequential: all TTL=1 first (synchronized trace rounds).
	vSeq := u.NewVantage(VantageSpec{Name: "seq", Kind: KindUniversity, ChainLen: 3})
	for ttl := 1; ttl <= maxTTL; ttl++ {
		for _, d := range dsts {
			_ = vSeq.Send(buildEchoProbe(vSeq.LocalAddr(), d, uint8(ttl)))
			vSeq.Sleep(gap)
		}
	}
	hop1Seq := countHop1(vSeq)

	u.ResetState()
	// Randomized: same probes, TTL-interleaved.
	vRnd := u.NewVantage(VantageSpec{Name: "seq", Kind: KindUniversity, ChainLen: 3})
	order := rng.Perm(len(dsts) * maxTTL)
	for _, k := range order {
		d := dsts[k%len(dsts)]
		ttl := k/len(dsts) + 1
		_ = vRnd.Send(buildEchoProbe(vRnd.LocalAddr(), d, uint8(ttl)))
		vRnd.Sleep(gap)
	}
	hop1Rnd := countHop1(vRnd)

	if hop1Rnd <= hop1Seq {
		t.Errorf("randomized hop-1 responses %d not better than sequential %d", hop1Rnd, hop1Seq)
	}
	if float64(hop1Rnd) < 0.7*float64(len(dsts)) {
		t.Errorf("randomized hop-1 responsiveness too low: %d/%d", hop1Rnd, len(dsts))
	}
}

func countHop1(v *Vantage) int {
	v.Sleep(3 * time.Second)
	buf := make([]byte, wire.MinMTU)
	var d, q wire.Decoded
	n1 := 0
	for {
		n, ok := v.Recv(buf)
		if !ok {
			break
		}
		if d.Decode(buf[:n]) != nil || d.ICMPv6.Type != wire.ICMPv6TimeExceeded {
			continue
		}
		if q.Decode(d.Payload) != nil {
			continue
		}
		if q.IPv6.HopLimit == 1 {
			n1++
		}
	}
	return n1
}

func TestQuoteCarriesProbePayload(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "quote", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(11))
	as := u.RandomAS(rng, KindHosting)
	lan, _ := u.RandomLAN(rng, as)
	dst := u.GatewayAddr(lan, as)
	probe := buildEchoProbe(v.LocalAddr(), dst, 2)
	for attempt := 0; attempt < 5; attempt++ {
		_ = v.Send(probe)
		v.Sleep(2 * time.Second)
		buf := make([]byte, wire.MinMTU)
		n, ok := v.Recv(buf)
		if !ok {
			continue
		}
		var d wire.Decoded
		if err := d.Decode(buf[:n]); err != nil {
			t.Fatal(err)
		}
		if len(d.Payload) != len(probe) {
			t.Fatalf("quotation %d bytes, probe %d", len(d.Payload), len(probe))
		}
		return
	}
	t.Fatal("no TE received in 5 attempts")
}

func TestResetState(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "reset", Kind: KindUniversity, ChainLen: 3})
	_ = v.Send(buildEchoProbe(v.LocalAddr(), ipv6.MustAddr("3fff::1"), 1))
	if u.Stats.PacketsRouted == 0 {
		t.Fatal("no packets routed")
	}
	u.ResetState()
	if u.Stats.PacketsRouted != 0 || u.Clock().Now() != 0 {
		t.Error("ResetState did not clear state")
	}
}

// TestResetStateFlushesPendingDeltas: batched sends defer their stat
// contributions into a per-vantage delta; ResetState must fold those
// pending deltas before zeroing, or a later flush resurrects pre-reset
// events into the zeroed counters.
func TestResetStateFlushesPendingDeltas(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "reset-pend", Kind: KindUniversity, ChainLen: 3})
	pkt := buildEchoProbe(v.LocalAddr(), ipv6.MustAddr("3fff::1"), 1)
	if _, _, err := v.SendBatch([][]byte{pkt, pkt, pkt}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	u.ResetState()
	if u.Stats.PacketsRouted != 0 {
		t.Fatalf("reset left PacketsRouted = %d", u.Stats.PacketsRouted)
	}
	// Without the reset-time flush this would re-add the pre-reset sends.
	v.FlushStats()
	if got := u.Stats.PacketsRouted; got != 0 {
		t.Errorf("pre-reset delta resurrected after reset: PacketsRouted = %d", got)
	}
	// Fresh activity counts from a zero baseline.
	if err := v.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if got := u.StatsSnapshot().PacketsRouted; got != 1 {
		t.Errorf("post-reset PacketsRouted = %d, want 1", got)
	}
}

// TestPlanEvictions: with a tiny direct-mapped cache, distinct flows
// hashed onto the same slot must be counted as evictions — the
// conflict-miss share of PlanMisses.
func TestPlanEvictions(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "evict", Kind: KindUniversity, ChainLen: 3})
	v.SetPlanCache(1) // every distinct flow collides
	rng := rand.New(rand.NewSource(9))
	as := u.RandomAS(rng, KindHosting)
	var dsts []netip.Addr
	for len(dsts) < 8 {
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		dsts = append(dsts, u.GatewayAddr(lan, as))
	}
	for _, d := range dsts {
		_ = v.Send(buildEchoProbe(v.LocalAddr(), d, 4))
		v.Sleep(time.Millisecond)
	}
	if v.Stats.PlanEvictions == 0 {
		t.Fatal("no plan evictions counted with a 1-slot cache")
	}
	if v.Stats.PlanEvictions >= v.Stats.PlanMisses {
		t.Fatalf("evictions %d must be below misses %d (first fill of a slot is not an eviction)",
			v.Stats.PlanEvictions, v.Stats.PlanMisses)
	}
}

func TestTruthSubnetsAreProvisioned(t *testing.T) {
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(12))
	as := u.RandomAS(rng, KindEnterprise)
	subs := u.TruthSubnets(as, 64, 500)
	if len(subs) == 0 {
		t.Fatal("no truth subnets")
	}
	for _, s := range subs {
		if s.Bits() == 64 {
			if !u.LANExists(s.Addr()) {
				t.Errorf("truth /64 %s not provisioned", s)
			}
		}
	}
}

func TestCloneSharesIdentityOwnsState(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "clone", Kind: KindUniversity, ChainLen: 3})
	c := v.Clone(5 * time.Second)
	if c.LocalAddr() != v.LocalAddr() || c.AS() != v.AS() || c.Name() != v.Name() {
		t.Fatal("clone identity differs from parent")
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("clone clock opened at %v want 5s", c.Now())
	}
	c.Sleep(time.Second)
	if v.Now() != 0 {
		t.Fatal("clone sleep advanced the parent clock")
	}
	g := v.ShardClocks()
	if g == nil || g.Len() != 1 || g.Watermark() != 6*time.Second {
		t.Fatalf("clock group watermark wrong: %+v", g)
	}
	c2 := v.Clone(20 * time.Second)
	_ = c2
	if got := g.Watermark(); got != 6*time.Second {
		t.Fatalf("watermark %v want 6s (minimum member)", got)
	}
	if got := g.Horizon(); got != 20*time.Second {
		t.Fatalf("horizon %v want 20s", got)
	}
}

// TestConcurrentClonesDeterministic drives several clones concurrently
// (run under -race) and checks each clone's prober-visible results are a
// pure function of its own schedule: a second concurrent run reproduces
// every clone's reply count exactly.
func TestConcurrentClonesDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	u := testUniverse(t)
	rng := rand.New(rand.NewSource(20))
	as := u.RandomAS(rng, KindHosting)
	var dsts []netip.Addr
	for len(dsts) < 64 {
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		dsts = append(dsts, u.GatewayAddr(lan, as))
	}
	const clones = 4
	run := func() [clones]int64 {
		v := u.NewVantage(VantageSpec{Name: "conc", Kind: KindUniversity, ChainLen: 3})
		var received [clones]int64
		var wg sync.WaitGroup
		for i := 0; i < clones; i++ {
			c := v.Clone(time.Duration(i) * time.Second)
			wg.Add(1)
			go func(i int, c *Vantage) {
				defer wg.Done()
				buf := make([]byte, wire.MinMTU)
				for j, d := range dsts {
					_ = c.Send(buildEchoProbe(c.LocalAddr(), d, uint8(j%8+1)))
					c.Sleep(10 * time.Millisecond)
					for {
						if _, ok := c.Recv(buf); !ok {
							break
						}
					}
				}
				c.Sleep(3 * time.Second)
				for {
					if _, ok := c.Recv(buf); !ok {
						break
					}
				}
				received[i] = c.Stats.Received
			}(i, c)
		}
		wg.Wait()
		return received
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("concurrent clone results differ across runs: %v vs %v", a, b)
	}
	total := int64(0)
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("no clone received anything")
	}
}

func TestMalformedProbeRejected(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "bad", Kind: KindUniversity, ChainLen: 3})
	if err := v.Send([]byte{1, 2, 3}); err == nil {
		t.Error("malformed probe accepted")
	}
}

func TestAliasedLANs(t *testing.T) {
	u := testUniverse(t)
	var cdn int
	var truth []netip.Prefix
	for _, as := range u.ASes() {
		if as.CDN {
			cdn++
			if as.Kind != KindHosting {
				t.Fatalf("CDN flag on %s AS %d", as.Kind, as.ASN)
			}
			if as.BlockEcho {
				t.Errorf("CDN AS %d blocks echo", as.ASN)
			}
			truth = append(truth, u.TruthAliasedLANs(as, 50)...)
		} else if got := u.TruthAliasedLANs(as, 50); len(got) != 0 {
			t.Fatalf("non-CDN AS %d reports %d aliased LANs", as.ASN, len(got))
		}
	}
	if cdn == 0 || len(truth) == 0 {
		t.Fatalf("cdn ASes = %d, aliased LANs = %d", cdn, len(truth))
	}
	// Aliasing is deterministic and consistent across the plan views.
	u2 := NewUniverse(TestConfig(42))
	rng := rand.New(rand.NewSource(5))
	for _, lan := range truth {
		rt, ok := u.Table().Lookup(lan.Addr())
		if !ok {
			t.Fatalf("aliased LAN %s unrouted", lan)
		}
		as, _ := u.ASByASN(rt.Origin)
		if !u2.LANAliased(lan, as) {
			t.Fatalf("aliasing of %s not deterministic", lan)
		}
		// Every random IID beneath an aliased LAN is a host.
		random := ipv6.WithIID(lan.Addr(), rng.Uint64())
		if !u.HostExists(random) {
			t.Fatalf("random IID %s in aliased LAN unanswered", random)
		}
		if !u.AddrAliased(random) {
			t.Fatalf("AddrAliased(%s) = false inside aliased LAN", random)
		}
	}
}

func TestAliasedLANAnswersEcho(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "alias-echo", Kind: KindUniversity, ChainLen: 3})
	var lan netip.Prefix
	for _, as := range u.ASes() {
		if lans := u.TruthAliasedLANs(as, 1); len(lans) > 0 {
			lan = lans[0]
			break
		}
	}
	if !lan.IsValid() {
		t.Fatal("no aliased LAN found")
	}
	rng := rand.New(rand.NewSource(9))
	replies := 0
	const probes = 16
	for i := 0; i < probes; i++ {
		dst := ipv6.WithIID(lan.Addr(), rng.Uint64())
		_ = v.Send(buildEchoProbe(v.LocalAddr(), dst, 64))
		v.Sleep(2 * time.Second)
		buf := make([]byte, wire.MinMTU)
		for {
			n, ok := v.Recv(buf)
			if !ok {
				break
			}
			var d wire.Decoded
			if err := d.Decode(buf[:n]); err == nil &&
				d.Proto == wire.ProtoICMPv6 && d.ICMPv6.Type == wire.ICMPv6EchoReply && d.IPv6.Src == dst {
				replies++
			}
		}
	}
	// Per-probe loss over these long paths runs ~25%; a majority of a
	// decent sample must still answer.
	if replies < probes*6/10 {
		t.Errorf("aliased LAN answered %d/%d random-IID echoes", replies, probes)
	}
}

// TestOversizedEchoProbe sends an echo request whose payload exceeds
// what a MinMTU reply can mirror: the reply path must cap the echoed
// payload at the MinMTU bound (the pool's buffer size) instead of
// overrunning a recycled reply buffer.
func TestOversizedEchoProbe(t *testing.T) {
	u := testUniverse(t)
	v := u.NewVantage(VantageSpec{Name: "bigecho", Kind: KindUniversity, ChainLen: 3})
	rng := rand.New(rand.NewSource(7))
	var as *AS
	for {
		as = u.RandomAS(rng, KindHosting)
		if !as.BlockEcho {
			break
		}
	}
	lan, ok := u.RandomLAN(rng, as)
	if !ok {
		t.Fatal("no LAN")
	}
	dst := u.GatewayAddr(lan, as)

	payload := make([]byte, 2000) // far beyond MinMTU-48
	pkt := make([]byte, wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+len(payload))
	// A handful of distinct flow identities sidesteps the per-packet
	// loss draw without weakening the overflow check.
	for id := uint16(1); id <= 8; id++ {
		hdr := wire.IPv6Header{HopLimit: 64, Src: v.LocalAddr(), Dst: dst}
		icmp := wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: id, Seq: 80}
		n := wire.BuildPacket(pkt, &hdr, wire.ProtoICMPv6, nil, nil, &icmp, payload)
		if err := v.Send(pkt[:n]); err != nil {
			t.Fatal(err)
		}
	}
	v.Sleep(3 * time.Second)
	buf := make([]byte, wire.MinMTU)
	rn, ok := v.Recv(buf)
	if !ok {
		t.Fatal("no reply to oversized echo (could be loss; rerun with new seed)")
	}
	if rn > wire.MinMTU {
		t.Fatalf("reply length %d exceeds MinMTU", rn)
	}
	var d wire.Decoded
	if err := d.Decode(buf[:rn]); err != nil {
		t.Fatal(err)
	}
	if d.ICMPv6.Type != wire.ICMPv6EchoReply {
		t.Fatalf("reply type %d want echo reply", d.ICMPv6.Type)
	}
}
