package netsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"beholder/internal/wire"
)

// Prime replay and simulator-state checkpointing.
//
// The only mutable state the response side of the simulator carries is
// router token buckets — everything else is a pure function of (seed,
// probe bytes, send time). Two mechanisms make that state exact across
// the campaign engine's structural transformations:
//
//   - Prime replay (BeginPrime/Prime/EndPrime): a shard clone replays
//     the serial probe schedule that precedes its permutation window,
//     evaluating every routing decision and token-bucket consumption at
//     the replayed instants without scheduling replies, counting stats,
//     or consulting the fault plane. After the replay the clone's
//     buckets hold exactly the levels the single serial prober's would
//     have held at the window-start instant, so N-shard reply counters
//     match serial even past ICMPv6 rate-limit saturation.
//
//   - Sim-state blobs (ExportSimState/ImportSimState): a checkpointing
//     prober exports the bucket levels at the interrupt instant and the
//     resumed connection imports them, so a resumed run is byte-exact
//     even when a rate limiter was saturated across the interrupt —
//     including bucket consumption from fill probes, which a replay of
//     the raw schedule alone could not reproduce.

// BeginPrime enters priming mode: subsequent Prime calls route probes
// against the router token buckets at explicit replayed instants while
// the clock stays parked, no replies are scheduled, and the fault plane
// is bypassed (a faulted vantage's own schedule deviates from serial
// anyway, and prime replays the serial history). Vantage stats are
// snapshotted and restored at EndPrime; universe stats are untouched.
func (v *Vantage) BeginPrime() {
	v.priming = true
	v.primeSaved = v.Stats
	v.primeFaults = v.hasFaults
	v.hasFaults = false
}

// Prime replays one probe of the serial schedule at virtual instant at:
// the path plan, loss/ND draws, and router token-bucket refill/consume
// happen exactly as a serial sender's would have at that instant.
// Callers must bracket Prime sequences in BeginPrime/EndPrime and replay
// probes in schedule order (bucket refill clamps backwards time).
func (v *Vantage) Prime(pkt []byte, at time.Duration) error {
	v.primeNow = at
	var st simDelta // discarded: prime contributes nothing to universe stats
	return v.send1(pkt, &st)
}

// EndPrime leaves priming mode, restoring the vantage stats and fault
// plane BeginPrime saved. Flow tokens issued by PrimeFlow are
// invalidated.
func (v *Vantage) EndPrime() {
	v.Stats = v.primeSaved
	v.hasFaults = v.primeFaults
	v.priming = false
	v.primeFlows = v.primeFlows[:0]
}

// primeFlow is the pinned per-flow replay state behind a PrimeFlow
// token: the slice of the flow's plan that bucket evaluation consults,
// copied out of the plan cache (whose entries are evictable and reuse
// their step reservations) into a reservation owned by the token.
type primeFlow struct {
	fh       uint64
	stepOff  uint32
	n        uint16
	errorIdx uint16
	outcome  outcomeKind
	// nd marks a reached-destination flow whose probes fall through to
	// the gateway neighbor-discovery failure path — the only
	// reached-destination case that touches a router token bucket.
	nd bool
}

// PrimeFlow registers the probe's flow for fast replay and returns its
// token. The full Prime path pays packet decode, plan lookup, and the
// reply-construction branches on every replayed probe; a Yarrp6 replay
// touches each flow ~TTL-span times, so callers register the flow once
// (building one representative probe — flow identity is constant per
// target by Yarrp6 construction) and replay each (TTL, instant) through
// PrimeIdx. Tokens are valid until EndPrime.
func (v *Vantage) PrimeFlow(pkt []byte) (int, error) {
	if err := v.dec.Decode(pkt); err != nil {
		return 0, fmt.Errorf("netsim: undecodable probe: %w", err)
	}
	d := &v.dec
	plan := v.lookupPlan(d)
	n := int(plan.n)
	tok := len(v.primeFlows)
	f := primeFlow{fh: plan.fh, n: plan.n, errorIdx: plan.errorIdx, outcome: plan.outcome, nd: true}
	if plan.exists {
		switch {
		case d.Proto == wire.ProtoICMPv6 && d.ICMPv6.Type == wire.ICMPv6EchoRequest,
			d.Proto == wire.ProtoUDP, d.Proto == wire.ProtoTCP:
			// The destination host answers (or its AS filters silently);
			// either way no router bucket is consulted past the path.
			f.nd = false
		}
	}
	cls := (n + 7) &^ 7
	f.stepOff = v.reserveSteps(cls)
	copy(v.stepsAt(f.stepOff, n), v.stepsAt(plan.stepOff, n))
	v.primeFlows = append(v.primeFlows, f)
	return tok, nil
}

// PrimeIdx replays one probe of a registered flow at virtual instant at:
// the same loss/ND draws and router token-bucket refill/consume Prime
// performs via send1, with everything that cannot touch a bucket —
// packet parsing, plan lookup, reply construction — elided. The branch
// structure mirrors send1's; the prime-equivalence test pins the two
// paths together.
func (v *Vantage) PrimeIdx(tok int, ttl uint8, at time.Duration) {
	f := &v.primeFlows[tok]
	pk := h(f.fh, 40, uint64(ttl))
	n := int(f.n)
	if t := int(ttl); t <= n {
		// Hop-limit expiry on the path: Time Exceeded from step ttl-1.
		if v.lost(pk, at, 2*t) {
			return
		}
		st := v.stepAt(f.stepOff + uint32(t-1))
		if st.r == nil {
			st.r = v.router(st.key, v.u.ases[st.asIdx], at)
		}
		if st.r.unresponsive {
			return
		}
		st.r.allowICMP(at)
		return
	}
	switch f.outcome {
	case outNoRoute, outFilteredAdmin:
		if f.outcome == outNoRoute && hashFloat(h(pk, drawNoRoute, uint64(at))) < 0.65 {
			return
		}
		idx := int(f.errorIdx)
		if v.lost(pk, at, 2*(idx+1)) {
			return
		}
		st := v.stepAt(f.stepOff + uint32(idx))
		if st.r == nil {
			st.r = v.router(st.key, v.u.ases[st.asIdx], at)
		}
		if st.r.unresponsive {
			return
		}
		st.r.allowICMP(at)
	case outFilteredSilent:
	default: // outHost
		if !f.nd {
			return
		}
		if v.lost(pk, at, 2*(n+1)) {
			return
		}
		if hashFloat(h(pk, drawND, uint64(at))) < 0.6 {
			st := v.stepAt(f.stepOff + uint32(f.errorIdx))
			if st.r == nil {
				st.r = v.router(st.key, v.u.ases[st.asIdx], at)
			}
			if !st.r.unresponsive {
				st.r.allowICMP(at)
			}
		}
	}
}

// simStateEntrySize is the serialized size of one router bucket record:
// RouterKey (ASN u32, Class u8, K1 u64, K2 u64) + tokens f64 + last i64.
const simStateEntrySize = 4 + 1 + 8 + 8 + 8 + 8

// simStateKeyLess is the router-key order sim-state blobs are sorted
// in: (ASN, Class, K1, K2) lexicographic.
func simStateKeyLess(a, b RouterKey) bool {
	switch {
	case a.ASN != b.ASN:
		return a.ASN < b.ASN
	case a.Class != b.Class:
		return a.Class < b.Class
	case a.K1 != b.K1:
		return a.K1 < b.K1
	}
	return a.K2 < b.K2
}

// simEntry reads record i of a sim-state entry region.
func simEntry(data []byte, i int) (k RouterKey, tokens float64, last time.Duration) {
	e := data[i*simStateEntrySize:]
	k.ASN = binary.LittleEndian.Uint32(e)
	k.Class = e[4]
	k.K1 = binary.LittleEndian.Uint64(e[5:])
	k.K2 = binary.LittleEndian.Uint64(e[13:])
	tokens = math.Float64frombits(binary.LittleEndian.Uint64(e[21:]))
	last = time.Duration(binary.LittleEndian.Uint64(e[29:]))
	return
}

// ExportSimState appends the vantage's mutable simulator state — the
// router token-bucket levels — to buf and returns the extended slice:
// the materialized routers, plus any imported records whose router was
// never touched (and so still carries exactly the imported state).
// Entries are sorted by router key, so equal states serialize to equal
// bytes. Campaign checkpointing stores the blob in the artifact;
// ImportSimState restores it.
func (v *Vantage) ExportSimState(buf []byte) []byte {
	type rec struct {
		key    RouterKey
		tokens float64
		last   time.Duration
	}
	recs := make([]rec, 0, len(v.routers)+len(v.simPending)/simStateEntrySize)
	for k, r := range v.routers {
		recs = append(recs, rec{k, r.tokens, r.last})
	}
	for i := 0; i < len(v.simPending)/simStateEntrySize; i++ {
		k, tokens, last := simEntry(v.simPending, i)
		if _, ok := v.routers[k]; ok {
			continue // materialized since import; the live bucket wins
		}
		recs = append(recs, rec{k, tokens, last})
	}
	// Sort an index permutation rather than the records: group priming
	// snapshots a campaign's full router set several times per run, and
	// 4-byte swaps keep that off the copy budget.
	idx := make([]int32, len(recs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool { return simStateKeyLess(recs[idx[i]].key, recs[idx[j]].key) })
	if buf == nil {
		buf = make([]byte, 0, 4+len(recs)*simStateEntrySize)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, i := range idx {
		r := &recs[i]
		buf = binary.LittleEndian.AppendUint32(buf, r.key.ASN)
		buf = append(buf, r.key.Class)
		buf = binary.LittleEndian.AppendUint64(buf, r.key.K1)
		buf = binary.LittleEndian.AppendUint64(buf, r.key.K2)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.tokens))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.last))
	}
	return buf
}

// ImportSimState restores the bucket levels serialized by
// ExportSimState. Restoration is lazy: the record region is retained
// (the caller hands over the buffer and must not modify it afterwards)
// and consulted at router birth via binary search, so a shard clone
// importing a whole campaign's bucket state materializes routers only
// as its own window touches them — importing costs nothing per router,
// and the untouched majority of a sibling's routers never exists here
// at all.
// Records for routers the vantage had already materialized are applied
// immediately; every router property beyond the bucket is re-derived
// purely from (seed, key), so restored routers are identical to the
// exporting vantage's.
func (v *Vantage) ImportSimState(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("netsim: sim state: truncated header")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint64(len(data)) != uint64(n)*simStateEntrySize {
		return fmt.Errorf("netsim: sim state: %d bytes for %d routers", len(data), n)
	}
	for i := 0; i < int(n); i++ {
		k, tokens, _ := simEntry(data, i)
		if math.IsNaN(tokens) || math.IsInf(tokens, 0) || tokens < 0 {
			return fmt.Errorf("netsim: sim state: invalid token level for router %v", k)
		}
		if _, ok := v.u.ASByASN(k.ASN); !ok {
			return fmt.Errorf("netsim: sim state: unknown AS %d", k.ASN)
		}
	}
	// The record region is retained and consulted at router birth; the
	// caller must not modify data afterwards. (Checkpoint decoders and
	// group priming both hand over buffers they never touch again.)
	v.simPending = data
	for k, r := range v.routers {
		if tokens, last, ok := v.simLookup(k); ok {
			r.tokens = tokens
			if r.tokens > r.burst {
				r.tokens = r.burst
			}
			r.last = last
		}
	}
	return nil
}

// simLookup finds key's imported bucket record, if any.
func (v *Vantage) simLookup(key RouterKey) (tokens float64, last time.Duration, ok bool) {
	n := len(v.simPending) / simStateEntrySize
	if n == 0 {
		return 0, 0, false
	}
	i := sort.Search(n, func(i int) bool {
		k, _, _ := simEntry(v.simPending, i)
		return !simStateKeyLess(k, key)
	})
	if i == n {
		return 0, 0, false
	}
	k, tokens, last := simEntry(v.simPending, i)
	if k != key {
		return 0, 0, false
	}
	return tokens, last, true
}
