package netsim

import (
	"net/netip"
	"sync/atomic"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// Flow-plan cache. plan computation — access chain, BFS walk over the AS
// graph, routing-table lookup, subnet descent — is a pure function of
// (universe seed, destination, transport, flow hash): the hop limit only
// selects where along the planned path a probe dies, and Yarrp6 holds the
// flow identity constant per target across all ~16 TTLs precisely so that
// ECMP routers keep it on one path. The cache exploits that: the first
// probe toward a flow materializes the full plan (router step keys, step
// ASes, outcome, error index, a prefix-summed RTT table, and the host
// lookup), and the remaining probes of the same flow reuse it.
//
// Eviction is deterministic and allocation-bounded: the cache is a
// fixed-size slot array organized as two-way sets indexed by the flow
// hash, with a per-set LRU bit deciding which way a miss overwrites
// (reusing the victim's backing arrays when they fit and carving
// exact-size replacements from per-vantage arenas otherwise). Two ways
// matter: under Yarrp6's randomized permutation a pair of flows hashing
// to the same set alternates touches, so a direct-mapped slot would
// evict on every one — the dominant miss class at campaign scale — while
// two ways keep both resident. No map iteration, no clock, no randomness
// is consulted, so a replayed campaign touches slots in an identical
// sequence — and because every cached value equals what a fresh
// computation would produce, results are byte-identical at ANY cache
// size and associativity, including zero (cache disabled). Shard
// determinism is preserved structurally, not probabilistically.

// planCacheDefaultEntries sizes the per-vantage slot array when the
// universe Config leaves PlanCacheSize zero. Conflict-miss rate decays
// like e^(-targets/slots) under Yarrp6's randomized permutation, so the
// default comfortably covers campaign-scale target sets; TestConfig trims
// it for small universes.
const planCacheDefaultEntries = 1 << 16

// routerStep is one hop of a materialized path plan. r memoizes the
// vantage's materialized router for the step after its first touch, so
// repeated probes of a cached flow skip the router-map lookup; it starts
// nil and is filled lazily (see Vantage.stepRouter), never shared across
// vantages. The owning AS is held by index — the pointer is only needed
// at router birth, and one pointer word fewer per step keeps the write
// barriers off the bulk step copies (core rehydration, plan install,
// prime-flow pinning) that run per flow at campaign scale. rtt carries
// the prefix-summed round-trip table inline: steps[i].rtt is the
// doubled one-way latency over steps 0..i, so the former per-reply
// pathRTT loop is a single O(1) field load.
type routerStep struct {
	key   RouterKey
	asIdx int32
	r     *Router
	rtt   time.Duration
}

// planEntry is one cached flow plan. The zero value is an empty slot.
// The struct is entirely pointer-free — the destination is raw address
// words, the destination AS an index, and the step list an offset/length
// pair into the vantage's contiguous step store — so the whole slot
// array is a single no-scan allocation the garbage collector never
// walks.
type planEntry struct {
	// Cache key: destination plus the packed flow identity beyond it
	// (transport, flow label, ports/checksum/identifier — see
	// flowKeyOf). Matching on these raw fields lets the lookup index
	// with two mixes instead of deriving the full seven-mix ECMP flow
	// hash per probe; fh memoizes that hash — which the per-packet
	// draws and ECMP selection still consume — from the entry's
	// compute.
	dst     ipv6.U128
	flowKey uint64
	fh      uint64
	used    bool
	// lru lives on way 0 of each two-way set and marks way 0 as the
	// least-recently-used way; the bit on way 1 is dead. Replacement
	// state, not plan state — it never affects results.
	lru bool

	outcome outcomeKind
	reject  bool // reject-route rather than no-route
	exists  bool // outcome == outHost: destination is a live host

	n        uint16 // number of router steps
	errorIdx uint16 // step originating a destination-unreachable
	stepOff  uint32 // start of the step list in Vantage.stepStore
	stepCap  uint16 // reserved slots at stepOff (size-class rounded)
	destAS   int32  // index into Universe.ases; -1 when unrouted
}

// Step-store pages: fixed-size, never moved, lazily allocated. A
// reservation never crosses a page boundary (the tail of a page is
// padded when a plan would not fit), so offset arithmetic addresses one
// page. Paths are bounded by the AS-path walk at a few hundred steps —
// far below the page size.
const (
	stepPageShift = 11
	stepPageSize  = 1 << stepPageShift
	stepPageMask  = stepPageSize - 1
)

// stepAt returns the step at global offset off.
func (v *Vantage) stepAt(off uint32) *routerStep {
	return &v.stepPages[off>>stepPageShift][off&stepPageMask]
}

// stepsAt returns the n-step list starting at global offset off.
func (v *Vantage) stepsAt(off uint32, n int) []routerStep {
	i := off & stepPageMask
	return v.stepPages[off>>stepPageShift][i : int(i)+n]
}

// reserveSteps reserves cls contiguous step slots, returning their
// global offset. Reservations are size-class rounded so evictions can
// reuse them in place.
func (v *Vantage) reserveSteps(cls int) uint32 {
	if rem := stepPageSize - int(v.stepNext&stepPageMask); rem < cls {
		v.stepNext += uint32(rem) // pad out the page tail
	}
	for int(v.stepNext>>stepPageShift) >= len(v.stepPages) {
		v.stepPages = append(v.stepPages, make([]routerStep, stepPageSize))
	}
	off := v.stepNext
	v.stepNext += uint32(cls)
	return off
}

// flowKeyOf packs the probe's flow identity beyond (src, dst) into one
// comparable word: ports / checksum+identifier (32 bits), flow label
// (20 bits), transport (8 bits). Together with the destination words
// (and the per-vantage source) it fully determines the flow — the same
// fields the ECMP flow hash folds, held raw so a cache probe needs no
// hash chain.
func flowKeyOf(d *wire.Decoded) uint64 {
	var extra uint64
	switch d.Proto {
	case wire.ProtoTCP:
		extra = uint64(d.TCP.SrcPort)<<16 | uint64(d.TCP.DstPort)
	case wire.ProtoUDP:
		extra = uint64(d.UDP.SrcPort)<<16 | uint64(d.UDP.DstPort)
	case wire.ProtoICMPv6:
		extra = uint64(d.ICMPv6.Checksum)<<16 | uint64(d.ICMPv6.ID)
	}
	return extra<<28 | uint64(d.IPv6.FlowLabel)<<8 | uint64(d.Proto)
}

// planIdx spreads a flow over plan-cache sets: two mixes in place of
// the seven-mix ECMP hash. Set placement affects only which flows
// compete for residency — results are byte-identical under any
// placement — so the cheaper spread trades nothing.
func planIdx(d ipv6.U128, flowKey uint64) uint64 {
	return mix64(d.Hi ^ mix64(d.Lo^flowKey))
}

// lookupPlan returns the plan for the decoded probe, from cache when
// possible. The returned entry is owned by the vantage and valid until
// the next lookupPlan call.
func (v *Vantage) lookupPlan(d *wire.Decoded) *planEntry {
	dstU := ipv6.FromAddr(d.IPv6.Dst)
	fk := flowKeyOf(d)
	sets := uint64(v.planSize) / 2
	if sets == 0 {
		if v.planSize == 1 {
			// One slot: degenerate direct-mapped cache.
			if v.planSlots == nil {
				v.planSlots = make([]planEntry, 1)
			}
			e := &v.planSlots[0]
			if e.used && e.dst == dstU && e.flowKey == fk {
				v.Stats.PlanHits++
				return e
			}
			if e.used {
				v.Stats.PlanEvictions++
			}
			v.Stats.PlanMisses++
			v.computePlan(d, dstU, fk, e)
			return e
		}
		v.Stats.PlanMisses++
		v.computePlan(d, dstU, fk, &v.planScratch)
		return &v.planScratch
	}
	if v.planSlots == nil {
		v.planSlots = make([]planEntry, v.planSize)
	}
	base := 2 * (planIdx(dstU, fk) % sets)
	e0, e1 := &v.planSlots[base], &v.planSlots[base+1]
	if e0.used && e0.dst == dstU && e0.flowKey == fk {
		v.Stats.PlanHits++
		e0.lru = false
		return e0
	}
	if e1.used && e1.dst == dstU && e1.flowKey == fk {
		v.Stats.PlanHits++
		e0.lru = true
		return e1
	}
	v.Stats.PlanMisses++
	var victim *planEntry
	switch {
	case !e0.used:
		victim = e0
	case !e1.used:
		victim = e1
	case e0.lru:
		victim = e0
	default:
		victim = e1
	}
	if victim.used {
		v.Stats.PlanEvictions++
	}
	v.computePlan(d, dstU, fk, victim)
	e0.lru = victim == e1
	return victim
}

// SetPlanCache resizes this vantage's flow-plan cache to the given number
// of slots (organized as two-way sets); entries <= 0 disables caching
// (every probe replans into a reused scratch entry). Results are
// byte-identical at any setting — the cache stores pure-function values —
// so this knob trades only memory against speed: disable it for workloads
// whose flows never repeat (aliased-prefix detection probes each random
// address once).
// Existing cached plans are discarded. Clones inherit the parent's
// configured size with a private (initially empty) cache.
func (v *Vantage) SetPlanCache(entries int) {
	if entries < 0 {
		entries = 0
	}
	v.planSize = entries
	v.planSlots = nil
}

// PlanCacheSize returns the configured slot count (0 when disabled).
func (v *Vantage) PlanCacheSize() int { return v.planSize }

// planCore is one flow's plan in vantage-independent form: the
// immutable value a campaign's shard clones share. Everything in it —
// outcome, step keys, AS indices, prefix-summed RTTs, the ECMP flow
// hash — is a pure function of (universe seed, vantage identity, flow),
// and clones inherit the parent's identity, so one clone's compute
// serves them all. Cores are never mutated after publication; the
// per-vantage router memo stays in the private step pages.
type planCore struct {
	dst      ipv6.U128
	flowKey  uint64
	fh       uint64
	outcome  outcomeKind
	reject   bool
	exists   bool
	n        uint16
	errorIdx uint16
	destAS   int32
	steps    []coreStep
}

// coreStep is one shared plan step: the router key, the owning AS by
// index (pointers stay out of the shared value), and the prefix-summed
// round trip.
type coreStep struct {
	key   RouterKey
	asIdx int32
	rtt   time.Duration
}

// sharedPlans is the campaign-scope plan-core cache: a direct-mapped
// slot array of atomically published immutable cores, shared by a
// parent vantage and every shard clone. Racing computes of the same
// flow publish semantically identical values (plans are pure), so
// last-write-wins needs no locking; a slot collision merely evicts.
type sharedPlans struct {
	slots []atomic.Pointer[planCore]
}

// computePlan materializes the plan for the decoded probe into e: from
// the campaign-shared core cache when a sibling shard (or an earlier
// campaign from this vantage family) already planned the flow, freshly
// otherwise — publishing the fresh result for the siblings.
func (v *Vantage) computePlan(d *wire.Decoded, dstU ipv6.U128, flowKey uint64, e *planEntry) {
	var sp *atomic.Pointer[planCore]
	// The shared cache only serves plan-caching vantages: with the
	// private cache disabled (one-shot flows like alias detection)
	// publishing cores would cost allocations per probe for hits that
	// can never come.
	if v.shared != nil && v.planSize > 0 {
		sp = &v.shared.slots[planIdx(dstU, flowKey)%uint64(len(v.shared.slots))]
		if c := sp.Load(); c != nil && c.dst == dstU && c.flowKey == flowKey {
			v.Stats.SharedPlanHits++
			v.fillFromCore(e, c)
			return
		}
	}
	v.computePlanFresh(d, dstU, flowKey, e)
	if sp != nil {
		sp.Store(v.coreOf(e))
	}
}

// fillFromCore rehydrates e from a shared core: header fields copied,
// steps laid into this vantage's private pages (router memos start
// empty — routers are vantage-owned).
func (v *Vantage) fillFromCore(e *planEntry, c *planCore) {
	oldOff, oldCap := e.stepOff, e.stepCap
	*e = planEntry{
		dst: c.dst, flowKey: c.flowKey, fh: c.fh, used: true,
		outcome: c.outcome, reject: c.reject, exists: c.exists,
		n: c.n, errorIdx: c.errorIdx, destAS: c.destAS,
	}
	n := len(c.steps)
	if int(oldCap) >= n {
		e.stepOff, e.stepCap = oldOff, oldCap
	} else {
		cls := (n + 7) &^ 7
		e.stepOff = v.reserveSteps(cls)
		e.stepCap = uint16(cls)
	}
	dst := v.stepsAt(e.stepOff, n)
	for i := 0; i < n; i++ {
		dst[i] = routerStep{key: c.steps[i].key, asIdx: c.steps[i].asIdx, rtt: c.steps[i].rtt}
	}
}

// coreOf snapshots e (and its laid-out steps) as an immutable shared
// core. Cores and their step lists are carved from vantage-owned slabs
// — racing shards publish a few thousand cores per campaign, and slab
// pieces keep that off the per-flow allocation ledger. Carved pieces
// are never reused, so published cores stay immutable.
func (v *Vantage) coreOf(e *planEntry) *planCore {
	n := int(e.n)
	if len(v.coreBlock) == 0 {
		v.coreBlock = make([]planCore, 64)
	}
	c := &v.coreBlock[0]
	v.coreBlock = v.coreBlock[1:]
	*c = planCore{
		dst: e.dst, flowKey: e.flowKey, fh: e.fh,
		outcome: e.outcome, reject: e.reject, exists: e.exists,
		n: e.n, errorIdx: e.errorIdx, destAS: e.destAS,
	}
	if len(v.coreSteps) < n {
		size := 4096
		if n > size {
			size = n
		}
		v.coreSteps = make([]coreStep, size)
	}
	c.steps = v.coreSteps[:n:n]
	v.coreSteps = v.coreSteps[n:]
	src := v.stepsAt(e.stepOff, n)
	for i := 0; i < n; i++ {
		c.steps[i] = coreStep{key: src[i].key, asIdx: src[i].asIdx, rtt: src[i].rtt}
	}
	return c
}

// computePlanFresh materializes the router path for the decoded probe
// into e. The path is laid out in the vantage's compute scratch and then
// stored with exact-size backing (reusing e's arrays when they fit). It
// mirrors the planning the simulator did per probe before the cache
// existed; keeping it a pure function of (seed, dst, flow identity) is
// what licenses caching and sharing it.
func (v *Vantage) computePlanFresh(d *wire.Decoded, dstU ipv6.U128, flowKey uint64, e *planEntry) {
	u := v.u
	fh := flowHashU(u.seed, v.srcU, dstU, d)
	steps := v.scratchSteps[:0]
	oldOff, oldCap := e.stepOff, e.stepCap
	*e = planEntry{dst: dstU, flowKey: flowKey, fh: fh, used: true, destAS: -1}

	// On-premise access chain.
	for i := 0; i < v.spec.ChainLen; i++ {
		steps = append(steps, routerStep{key: RouterKey{ASN: v.as.ASN, Class: classAccess, K1: v.id, K2: uint64(i)}, asIdx: int32(v.as.Idx)})
	}

	rt, ok := u.table.Lookup(d.IPv6.Dst)
	if !ok {
		// Unrouted destination: the border router reports no-route.
		e.outcome = outNoRoute
		v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
		return
	}
	destAS := u.byASN[rt.Origin]
	e.destAS = int32(destAS.Idx)

	// AS-level path from the BFS tree (vantage → ... → destination AS).
	var asPath [64]int
	pl := 0
	for cur := destAS.Idx; cur != v.as.Idx && pl < len(asPath); cur = int(v.parent[cur]) {
		if v.parent[cur] < 0 {
			break
		}
		asPath[pl] = cur
		pl++
	}
	prevASN := v.as.ASN
	filtered := false
	filterIdx := 0
	filterAdmin := false
	for i := pl - 1; i >= 0; i-- {
		as := u.ases[asPath[i]]
		hops := 1
		if as.Tier <= 2 {
			hops = 1 + int(h(u.seed, 33, uint64(as.ASN), uint64(prevASN))%3)
		}
		var lbSel uint64
		if as.LoadBalanced {
			lbSel = fh % uint64(as.LBWays)
		}
		ingress := h(u.seed, 34, uint64(prevASN), lbSel)
		for j := 0; j < hops; j++ {
			steps = append(steps, routerStep{key: RouterKey{ASN: as.ASN, Class: classBackbone, K1: ingress, K2: uint64(j)}, asIdx: int32(as.Idx)})
		}
		// Transport filtering at the destination AS border.
		if as == destAS && !filtered {
			if (d.Proto == wire.ProtoUDP && as.BlockUDP) || (d.Proto == wire.ProtoTCP && as.BlockTCP) {
				filtered = true
				filterIdx = len(steps) - 1
				filterAdmin = h(u.seed, 35, uint64(as.ASN))%2 == 0
			}
		}
		prevASN = as.ASN
	}
	if filtered {
		e.outcome = outFilteredSilent
		if filterAdmin {
			e.outcome = outFilteredAdmin
		}
		// Steps past the filter can never be traversed; drop them so the
		// cached plan holds exactly the reachable prefix of the path.
		v.storePlan(e, steps[:filterIdx+1], oldOff, oldCap, filterIdx)
		return
	}

	// Intra-AS descent through the destination's subnet hierarchy.
	var buf [8]netip.Prefix
	chain, full := u.descent(destAS, rt.Prefix, d.IPv6.Dst, buf[:])
	for _, sub := range chain {
		steps = append(steps, routerStep{key: RouterKey{
			ASN:   destAS.ASN,
			Class: classLevel,
			K1:    ipv6.FromAddr(sub.Addr()).Hi,
			K2:    uint64(sub.Bits()),
		}, asIdx: int32(destAS.Idx)})
	}
	if !full {
		e.outcome = outNoRoute
		e.reject = destAS.RejectRoute
		v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
		return
	}
	e.outcome = outHost
	e.exists = len(chain) > 0 && u.hostOnLAN(d.IPv6.Dst, chain[len(chain)-1], destAS)
	v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
}

// storePlan installs the step list (held in the compute scratch) into e
// and fills the inline prefix-summed RTT field: steps[i].rtt is the
// doubled one-way latency across steps 0..i. The bytes live in the
// vantage's contiguous step store at a size-class-rounded reservation;
// an evicted entry's reservation is reused whenever the new plan fits,
// so store growth is bounded by the slot count times the handful of
// size classes, not by campaign length.
func (v *Vantage) storePlan(e *planEntry, steps []routerStep, oldOff uint32, oldCap uint16, errorIdx int) {
	v.scratchSteps = steps[:0] // keep the (possibly grown) scratch array
	n := len(steps)
	e.n = uint16(n)
	e.errorIdx = uint16(errorIdx)

	if int(oldCap) >= n {
		e.stepOff, e.stepCap = oldOff, oldCap
	} else {
		cls := (n + 7) &^ 7 // size class: round up to 8 steps
		e.stepOff = v.reserveSteps(cls)
		e.stepCap = uint16(cls)
	}
	dst := v.stepsAt(e.stepOff, n)
	copy(dst, steps)
	var oneWay time.Duration
	for i := 0; i < n; i++ {
		oneWay += v.u.linkLatency(dst[i].key)
		dst[i].rtt = 2 * oneWay
		dst[i].r = nil
	}
}
