package netsim

import (
	"net/netip"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// Flow-plan cache. plan computation — access chain, BFS walk over the AS
// graph, routing-table lookup, subnet descent — is a pure function of
// (universe seed, destination, transport, flow hash): the hop limit only
// selects where along the planned path a probe dies, and Yarrp6 holds the
// flow identity constant per target across all ~16 TTLs precisely so that
// ECMP routers keep it on one path. The cache exploits that: the first
// probe toward a flow materializes the full plan (router step keys, step
// ASes, outcome, error index, a prefix-summed RTT table, and the host
// lookup), and the remaining probes of the same flow reuse it.
//
// Eviction is deterministic and allocation-bounded: the cache is a
// fixed-size, direct-mapped slot array indexed by the flow hash. A miss
// overwrites whatever occupied the slot, reusing its backing arrays when
// they fit and carving exact-size replacements from per-vantage arenas
// otherwise. No map iteration, no clock, no randomness is consulted, so
// a replayed campaign touches slots in an identical sequence — and
// because every cached value equals what a fresh computation would
// produce, results are byte-identical at ANY cache size, including zero
// (cache disabled). Shard determinism is preserved structurally, not
// probabilistically.

// planCacheDefaultEntries sizes the per-vantage slot array when the
// universe Config leaves PlanCacheSize zero. Direct-mapped hit rate decays
// like e^(-targets/slots) under Yarrp6's randomized permutation, so the
// default comfortably covers campaign-scale target sets; TestConfig trims
// it for small universes.
const planCacheDefaultEntries = 1 << 16

// routerStep is one hop of a materialized path plan. r memoizes the
// vantage's materialized router for the step after its first touch, so
// repeated probes of a cached flow skip the router-map lookup; it starts
// nil and is filled lazily (see Vantage.stepRouter), never shared across
// vantages. rtt carries the prefix-summed round-trip table inline:
// steps[i].rtt is the doubled one-way latency over steps 0..i, so the
// former per-reply pathRTT loop is a single O(1) field load.
type routerStep struct {
	key RouterKey
	as  *AS
	r   *Router
	rtt time.Duration
}

// planEntry is one cached flow plan. The zero value is an empty slot.
// The struct is entirely pointer-free — the destination is raw address
// words, the destination AS an index, and the step list an offset/length
// pair into the vantage's contiguous step store — so the whole slot
// array is a single no-scan allocation the garbage collector never
// walks.
type planEntry struct {
	// Cache key: destination, transport, and the per-flow ECMP hash
	// (which itself folds src, dst, proto, ports/checksum/identifier,
	// and flow label — the key triple fully determines the plan).
	dst   ipv6.U128
	fh    uint64
	proto uint8
	used  bool

	outcome outcomeKind
	reject  bool // reject-route rather than no-route
	exists  bool // outcome == outHost: destination is a live host

	n        uint16 // number of router steps
	errorIdx uint16 // step originating a destination-unreachable
	stepOff  uint32 // start of the step list in Vantage.stepStore
	stepCap  uint16 // reserved slots at stepOff (size-class rounded)
	destAS   int32  // index into Universe.ases; -1 when unrouted
}

// Step-store pages: fixed-size, never moved, lazily allocated. A
// reservation never crosses a page boundary (the tail of a page is
// padded when a plan would not fit), so offset arithmetic addresses one
// page. Paths are bounded by the AS-path walk at a few hundred steps —
// far below the page size.
const (
	stepPageShift = 11
	stepPageSize  = 1 << stepPageShift
	stepPageMask  = stepPageSize - 1
)

// stepAt returns the step at global offset off.
func (v *Vantage) stepAt(off uint32) *routerStep {
	return &v.stepPages[off>>stepPageShift][off&stepPageMask]
}

// stepsAt returns the n-step list starting at global offset off.
func (v *Vantage) stepsAt(off uint32, n int) []routerStep {
	i := off & stepPageMask
	return v.stepPages[off>>stepPageShift][i : int(i)+n]
}

// reserveSteps reserves cls contiguous step slots, returning their
// global offset. Reservations are size-class rounded so evictions can
// reuse them in place.
func (v *Vantage) reserveSteps(cls int) uint32 {
	if rem := stepPageSize - int(v.stepNext&stepPageMask); rem < cls {
		v.stepNext += uint32(rem) // pad out the page tail
	}
	for int(v.stepNext>>stepPageShift) >= len(v.stepPages) {
		v.stepPages = append(v.stepPages, make([]routerStep, stepPageSize))
	}
	off := v.stepNext
	v.stepNext += uint32(cls)
	return off
}

// lookupPlan returns the plan for the decoded probe, from cache when
// possible. The returned entry is owned by the vantage and valid until
// the next lookupPlan call.
func (v *Vantage) lookupPlan(d *wire.Decoded) *planEntry {
	dstU := ipv6.FromAddr(d.IPv6.Dst)
	fh := flowHashU(v.u.seed, v.srcU, dstU, d)
	if v.planSize <= 0 {
		v.Stats.PlanMisses++
		v.computePlan(d, dstU, fh, &v.planScratch)
		return &v.planScratch
	}
	if v.planSlots == nil {
		v.planSlots = make([]planEntry, v.planSize)
	}
	e := &v.planSlots[fh%uint64(v.planSize)]
	if e.used && e.fh == fh && e.proto == d.Proto && e.dst == dstU {
		v.Stats.PlanHits++
		return e
	}
	v.Stats.PlanMisses++
	v.computePlan(d, dstU, fh, e)
	return e
}

// SetPlanCache resizes this vantage's flow-plan cache to the given number
// of direct-mapped slots; entries <= 0 disables caching (every probe
// replans into a reused scratch entry). Results are byte-identical at any
// setting — the cache stores pure-function values — so this knob trades
// only memory against speed: disable it for workloads whose flows never
// repeat (aliased-prefix detection probes each random address once).
// Existing cached plans are discarded. Clones inherit the parent's
// configured size with a private (initially empty) cache.
func (v *Vantage) SetPlanCache(entries int) {
	if entries < 0 {
		entries = 0
	}
	v.planSize = entries
	v.planSlots = nil
}

// PlanCacheSize returns the configured slot count (0 when disabled).
func (v *Vantage) PlanCacheSize() int { return v.planSize }

// computePlan materializes the router path for the decoded probe into e.
// The path is laid out in the vantage's compute scratch and then stored
// with exact-size backing (reusing e's arrays when they fit). It mirrors
// the planning the simulator did per probe before the cache existed;
// keeping it a pure function of (seed, dst, proto, fh) is what licenses
// caching it.
func (v *Vantage) computePlan(d *wire.Decoded, dstU ipv6.U128, fh uint64, e *planEntry) {
	u := v.u
	steps := v.scratchSteps[:0]
	oldOff, oldCap := e.stepOff, e.stepCap
	*e = planEntry{dst: dstU, fh: fh, proto: d.Proto, used: true, destAS: -1}

	// On-premise access chain.
	for i := 0; i < v.spec.ChainLen; i++ {
		steps = append(steps, routerStep{key: RouterKey{ASN: v.as.ASN, Class: classAccess, K1: v.id, K2: uint64(i)}, as: v.as})
	}

	rt, ok := u.table.Lookup(d.IPv6.Dst)
	if !ok {
		// Unrouted destination: the border router reports no-route.
		e.outcome = outNoRoute
		v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
		return
	}
	destAS := u.byASN[rt.Origin]
	e.destAS = int32(destAS.Idx)

	// AS-level path from the BFS tree (vantage → ... → destination AS).
	var asPath [64]int
	pl := 0
	for cur := destAS.Idx; cur != v.as.Idx && pl < len(asPath); cur = int(v.parent[cur]) {
		if v.parent[cur] < 0 {
			break
		}
		asPath[pl] = cur
		pl++
	}
	prevASN := v.as.ASN
	filtered := false
	filterIdx := 0
	filterAdmin := false
	for i := pl - 1; i >= 0; i-- {
		as := u.ases[asPath[i]]
		hops := 1
		if as.Tier <= 2 {
			hops = 1 + int(h(u.seed, 33, uint64(as.ASN), uint64(prevASN))%3)
		}
		var lbSel uint64
		if as.LoadBalanced {
			lbSel = fh % uint64(as.LBWays)
		}
		ingress := h(u.seed, 34, uint64(prevASN), lbSel)
		for j := 0; j < hops; j++ {
			steps = append(steps, routerStep{key: RouterKey{ASN: as.ASN, Class: classBackbone, K1: ingress, K2: uint64(j)}, as: as})
		}
		// Transport filtering at the destination AS border.
		if as == destAS && !filtered {
			if (d.Proto == wire.ProtoUDP && as.BlockUDP) || (d.Proto == wire.ProtoTCP && as.BlockTCP) {
				filtered = true
				filterIdx = len(steps) - 1
				filterAdmin = h(u.seed, 35, uint64(as.ASN))%2 == 0
			}
		}
		prevASN = as.ASN
	}
	if filtered {
		e.outcome = outFilteredSilent
		if filterAdmin {
			e.outcome = outFilteredAdmin
		}
		// Steps past the filter can never be traversed; drop them so the
		// cached plan holds exactly the reachable prefix of the path.
		v.storePlan(e, steps[:filterIdx+1], oldOff, oldCap, filterIdx)
		return
	}

	// Intra-AS descent through the destination's subnet hierarchy.
	var buf [8]netip.Prefix
	chain, full := u.descent(destAS, rt.Prefix, d.IPv6.Dst, buf[:])
	for _, sub := range chain {
		steps = append(steps, routerStep{key: RouterKey{
			ASN:   destAS.ASN,
			Class: classLevel,
			K1:    ipv6.FromAddr(sub.Addr()).Hi,
			K2:    uint64(sub.Bits()),
		}, as: destAS})
	}
	if !full {
		e.outcome = outNoRoute
		e.reject = destAS.RejectRoute
		v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
		return
	}
	e.outcome = outHost
	e.exists = len(chain) > 0 && u.hostOnLAN(d.IPv6.Dst, chain[len(chain)-1], destAS)
	v.storePlan(e, steps, oldOff, oldCap, len(steps)-1)
}

// storePlan installs the step list (held in the compute scratch) into e
// and fills the inline prefix-summed RTT field: steps[i].rtt is the
// doubled one-way latency across steps 0..i. The bytes live in the
// vantage's contiguous step store at a size-class-rounded reservation;
// an evicted entry's reservation is reused whenever the new plan fits,
// so store growth is bounded by the slot count times the handful of
// size classes, not by campaign length.
func (v *Vantage) storePlan(e *planEntry, steps []routerStep, oldOff uint32, oldCap uint16, errorIdx int) {
	v.scratchSteps = steps[:0] // keep the (possibly grown) scratch array
	n := len(steps)
	e.n = uint16(n)
	e.errorIdx = uint16(errorIdx)

	if int(oldCap) >= n {
		e.stepOff, e.stepCap = oldOff, oldCap
	} else {
		cls := (n + 7) &^ 7 // size class: round up to 8 steps
		e.stepOff = v.reserveSteps(cls)
		e.stepCap = uint16(cls)
	}
	dst := v.stepsAt(e.stepOff, n)
	copy(dst, steps)
	var oneWay time.Duration
	for i := 0; i < n; i++ {
		oneWay += v.u.linkLatency(dst[i].key)
		dst[i].rtt = 2 * oneWay
		dst[i].r = nil
	}
}
