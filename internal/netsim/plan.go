package netsim

import (
	"math/rand"
	"net/netip"

	"beholder/internal/ipv6"
)

// Address plans. Each AS kind provisions its announced prefixes as a
// hierarchy of subnets; whether a particular subnet exists is a pure
// function of (universe seed, ASN, subnet), so the plan occupies no memory
// yet is consistent across routing, host population, seed sampling, and
// ground-truth export. The hierarchy terminates in /64 LANs, the
// ubiquitous most-specific subnet the paper's "/64 discovery" relies on.

// planLevel describes one tier of an addressing plan.
type planLevel struct {
	bits int    // prefix length at this level
	num  uint64 // provisioned fraction numerator
	den  uint64 // provisioned fraction denominator
}

// Per-kind subnet hierarchies, constructed once: planFor sits on the
// per-probe descent path, where returning a fresh slice literal per call
// used to be a measurable share of the allocation volume.
var (
	planEyeball    = []planLevel{{40, 1, 6}, {48, 1, 4}, {56, 1, 10}, {64, 1, 3}}
	planHosting    = []planLevel{{40, 1, 8}, {48, 1, 3}, {56, 1, 6}, {64, 1, 2}}
	planEnterprise = []planLevel{{56, 1, 5}, {64, 1, 3}}
	planUniversity = []planLevel{{40, 1, 12}, {48, 1, 6}, {56, 1, 8}, {64, 1, 3}}
	planTransit    = []planLevel{{48, 1, 24}, {64, 1, 16}}
)

// planFor returns the subnet hierarchy of an AS kind. Fractions shape how
// deep blind probing gets: dense plans (hosting) reward fine-grained
// probing; sparse plans make most of the space unrouted — the central
// tension of Table 3. The returned slice is shared and must not be
// mutated.
func planFor(kind ASKind) []planLevel {
	switch kind {
	case KindEyeballISP:
		return planEyeball
	case KindHosting:
		return planHosting
	case KindEnterprise:
		return planEnterprise
	case KindUniversity:
		return planUniversity
	default: // transit: sparse service LANs
		return planTransit
	}
}

// provisioned reports whether subnet exists in as's plan. The top-level
// announced prefix is always provisioned.
func (u *Universe) provisioned(as *AS, subnet netip.Prefix, num, den uint64) bool {
	return chance(hPrefix(u.seed, subnet, uint64(as.ASN), 11), num, den)
}

// descent computes the provisioned subnet chain covering addr beneath
// announced, stopping at the first unprovisioned level. ok reports whether
// the full chain down to a /64 LAN exists. The returned prefixes are the
// subnets whose routers a probe traverses inside the destination AS.
func (u *Universe) descent(as *AS, announced netip.Prefix, addr netip.Addr, buf []netip.Prefix) (chain []netip.Prefix, ok bool) {
	chain = buf[:0]
	for _, lvl := range planFor(as.Kind) {
		if lvl.bits <= announced.Bits() {
			continue
		}
		sub := ipv6.Extend(netip.PrefixFrom(addr, 128), lvl.bits)
		if !u.provisioned(as, sub, lvl.num, lvl.den) {
			return chain, false
		}
		chain = append(chain, sub)
	}
	return chain, true
}

// LANExists reports whether the /64 containing addr is fully provisioned
// in the plan of the AS announcing it.
func (u *Universe) LANExists(addr netip.Addr) bool {
	rt, ok := u.table.Lookup(addr)
	if !ok {
		return false
	}
	as := u.byASN[rt.Origin]
	var buf [8]netip.Prefix
	_, full := u.descent(as, rt.Prefix, addr, buf[:])
	return full
}

// Host population. Per /64 LAN the plan defines a deterministic set of
// stable hosts: lowbyte-numbered servers (the hosts DNS-derived hitlists
// see) and EUI-64 hosts (enterprise workstations visible to rDNS walks).
// Ephemeral SLAAC privacy clients — the CDN's WWW population — exist as
// statistics on eyeball LANs rather than as enumerable addresses.

// ServerCount returns how many lowbyte servers (IIDs ::1..::n beyond the
// gateway) live on lan given the owning AS kind.
func (u *Universe) ServerCount(lan netip.Prefix, as *AS) int {
	key := hPrefix(u.seed, lan, uint64(as.ASN), 12)
	switch as.Kind {
	case KindHosting:
		return int(between(h(key, 1), 2, 40))
	case KindEnterprise:
		return int(between(h(key, 1), 1, 6))
	case KindUniversity:
		return int(between(h(key, 1), 1, 8))
	case KindTransit:
		return int(between(h(key, 1), 0, 2))
	default: // eyeball LANs host clients, not servers
		return 0
	}
}

// EUIHostCount returns how many EUI-64-addressed stable hosts live on lan.
func (u *Universe) EUIHostCount(lan netip.Prefix, as *AS) int {
	if as.Kind != KindEnterprise && as.Kind != KindUniversity {
		return 0
	}
	return int(between(hPrefix(u.seed, lan, uint64(as.ASN), 13), 0, 6))
}

// EUIHostAddr returns the i'th EUI-64 host address on lan.
func (u *Universe) EUIHostAddr(lan netip.Prefix, as *AS, i int) netip.Addr {
	key := hPrefix(u.seed, lan, uint64(as.ASN), 14, uint64(i))
	mac := [6]byte{0x3c, 0x07, 0x54, byte(key >> 16), byte(key >> 8), byte(key)}
	return ipv6.WithIID(lan.Addr(), ipv6.EUI64IID(mac))
}

// ClientCount returns how many simultaneously active SLAAC privacy
// clients an eyeball LAN hosts (the quantity kIP aggregation anonymizes).
func (u *Universe) ClientCount(lan netip.Prefix, as *AS) int {
	if as.Kind != KindEyeballISP {
		return 0
	}
	return int(between(hPrefix(u.seed, lan, uint64(as.ASN), 15), 1, 4))
}

// HostExists reports whether addr is a stable host (or LAN gateway) in a
// fully provisioned /64. Privacy-addressed clients are intentionally not
// recognized: probes to a random IID in a client LAN find nothing, as on
// the real Internet.
func (u *Universe) HostExists(addr netip.Addr) bool {
	rt, ok := u.table.Lookup(addr)
	if !ok {
		return false
	}
	as := u.byASN[rt.Origin]
	var buf [8]netip.Prefix
	chain, full := u.descent(as, rt.Prefix, addr, buf[:])
	if !full || len(chain) == 0 {
		return false
	}
	return u.hostOnLAN(addr, chain[len(chain)-1], as)
}

// hostOnLAN is the host-population half of HostExists: it assumes lan is
// addr's fully provisioned /64 in as's plan. The vantage flow-plan cache
// calls it directly with the descent chain it already computed, so the
// per-probe host check costs no second routing lookup or plan descent.
func (u *Universe) hostOnLAN(addr netip.Addr, lan netip.Prefix, as *AS) bool {
	if u.LANAliased(lan, as) {
		// The front end terminates every address in the LAN.
		return true
	}
	if addr == u.GatewayAddr(lan, as) {
		return true
	}
	iid := ipv6.IID(addr)
	if iid >= 1 && iid <= uint64(u.ServerCount(lan, as)) {
		return true
	}
	if ipv6.IsEUI64IID(iid) {
		for i, n := 0, u.EUIHostCount(lan, as); i < n; i++ {
			if u.EUIHostAddr(lan, as, i) == addr {
				return true
			}
		}
	}
	return false
}

// GatewayAddr returns the address from which lan's gateway router sources
// ICMPv6. CPE-deploying eyeball ISPs use manufacturer EUI-64 identifiers;
// everyone else uses the conventional ::1 (the "IA hack" precondition).
func (u *Universe) GatewayAddr(lan netip.Prefix, as *AS) netip.Addr {
	if as.CPEOUIIndex > 0 {
		oui := cpeOUIs[as.CPEOUIIndex]
		key := hPrefix(u.seed, lan, uint64(as.ASN), 16)
		mac := [6]byte{oui[0], oui[1], oui[2], byte(key >> 16), byte(key >> 8), byte(key)}
		return ipv6.WithIID(lan.Addr(), ipv6.EUI64IID(mac))
	}
	return ipv6.WithIID(lan.Addr(), 1)
}

// Aliased /64s. CDN-style hosting ASes front a fraction of their LANs
// with load balancers that terminate any address — the aliased-prefix
// phenomenon that makes one /64 answer for 2^64 probes. Like the rest
// of the plan, aliasing is a pure function of (seed, ASN, lan), so the
// same LANs are aliased for routing, host responses, and the exported
// ground truth.

// LANAliased reports whether lan is an aliased /64 of as: every
// interface identifier beneath it answers probes.
func (u *Universe) LANAliased(lan netip.Prefix, as *AS) bool {
	if !as.CDN || lan.Bits() != 64 {
		return false
	}
	return chance(hPrefix(u.seed, lan, uint64(as.ASN), 17), uint64(u.cfg.AliasedLANPercent), 100)
}

// AddrAliased reports whether addr falls inside an aliased, fully
// provisioned /64.
func (u *Universe) AddrAliased(addr netip.Addr) bool {
	rt, ok := u.table.Lookup(addr)
	if !ok {
		return false
	}
	as := u.byASN[rt.Origin]
	if !as.CDN {
		return false
	}
	var buf [8]netip.Prefix
	chain, full := u.descent(as, rt.Prefix, addr, buf[:])
	if !full || len(chain) == 0 {
		return false
	}
	return u.LANAliased(chain[len(chain)-1], as)
}

// TruthAliasedLANs enumerates as's aliased /64s in address order, up to
// limit entries: the ground truth the alias detector is validated
// against — data unavailable on the real Internet.
func (u *Universe) TruthAliasedLANs(as *AS, limit int) []netip.Prefix {
	if !as.CDN || limit <= 0 {
		return nil
	}
	levels := planFor(as.Kind)
	var out []netip.Prefix
	var rec func(p netip.Prefix, lvlIdx int)
	rec = func(p netip.Prefix, lvlIdx int) {
		if len(out) >= limit {
			return
		}
		if p.Bits() == 64 {
			if u.LANAliased(p, as) {
				out = append(out, p)
			}
			return
		}
		if lvlIdx >= len(levels) {
			return
		}
		lvl := levels[lvlIdx]
		if lvl.bits <= p.Bits() {
			rec(p, lvlIdx+1)
			return
		}
		width := lvl.bits - p.Bits()
		if width > 16 {
			return // fan too wide to enumerate; procedural space only
		}
		for i := uint64(0); i < 1<<uint(width) && len(out) < limit; i++ {
			child := ipv6.NthSubprefix(p, lvl.bits, i)
			if u.provisioned(as, child, lvl.num, lvl.den) {
				rec(child, lvlIdx+1)
			}
		}
	}
	for _, p := range as.Prefixes {
		rec(p, 0)
	}
	return out
}

// RandomLAN samples a uniformly random provisioned /64 beneath one of
// as's announced prefixes by rejection-sampling each level of the plan.
// ok is false when sampling fails (pathologically sparse plans).
func (u *Universe) RandomLAN(rng *rand.Rand, as *AS) (netip.Prefix, bool) {
	p := as.Prefixes[rng.Intn(len(as.Prefixes))]
	return u.RandomSubnetUnder(rng, as, p, 64)
}

// RandomSubnetUnder samples a random provisioned subnet of prefix length
// bits beneath start, which must itself be provisioned (an announced
// prefix or the result of a previous sampling call). Seed generators use
// it to model the clustered structure of real hitlists: many /64s under
// few POP-level prefixes.
func (u *Universe) RandomSubnetUnder(rng *rand.Rand, as *AS, start netip.Prefix, bits int) (netip.Prefix, bool) {
	p := start
	for _, lvl := range planFor(as.Kind) {
		if lvl.bits <= p.Bits() {
			continue
		}
		if lvl.bits > bits {
			break
		}
		width := uint(lvl.bits - p.Bits())
		found := false
		for try := 0; try < 64; try++ {
			var idx uint64
			if width >= 63 {
				idx = rng.Uint64()
			} else {
				idx = rng.Uint64() & ((1 << width) - 1)
			}
			cand := ipv6.NthSubprefix(p, lvl.bits, idx)
			if u.provisioned(as, cand, lvl.num, lvl.den) {
				p = cand
				found = true
				break
			}
		}
		if !found {
			return netip.Prefix{}, false
		}
	}
	if p.Bits() < bits {
		// The plan has no level at exactly bits below this point; the
		// deepest provisioned ancestor is the best answer.
		return p, p.Bits() >= bits
	}
	return p, true
}

// TruthSubnets enumerates as's provisioned subnets with prefix length at
// most maxBits, up to limit entries, in address order: the simulator's
// ground-truth subnet plan used to validate Section 6's discovery. The
// announced prefixes themselves are included.
func (u *Universe) TruthSubnets(as *AS, maxBits, limit int) []netip.Prefix {
	var out []netip.Prefix
	levels := planFor(as.Kind)
	var rec func(p netip.Prefix, lvlIdx int)
	rec = func(p netip.Prefix, lvlIdx int) {
		if len(out) >= limit {
			return
		}
		out = append(out, p)
		if lvlIdx >= len(levels) || levels[lvlIdx].bits > maxBits {
			return
		}
		lvl := levels[lvlIdx]
		if lvl.bits <= p.Bits() {
			rec(p, lvlIdx+1)
			return
		}
		width := lvl.bits - p.Bits()
		if width > 16 {
			return // fan too wide to enumerate; procedural space only
		}
		for i := uint64(0); i < 1<<uint(width) && len(out) < limit; i++ {
			child := ipv6.NthSubprefix(p, lvl.bits, i)
			if u.provisioned(as, child, lvl.num, lvl.den) {
				rec(child, lvlIdx+1)
			}
		}
	}
	for _, p := range as.Prefixes {
		rec(p, 0)
	}
	return out
}
