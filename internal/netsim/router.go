package netsim

import (
	"net/netip"
	"time"

	"beholder/internal/ipv6"
)

// Router identity. Routers are materialized lazily: a probe's path is
// planned as a sequence of RouterKeys (pure hashing, no allocation), and
// only the single router that must generate a response is instantiated,
// so its token bucket persists across probes while untouched hops cost
// nothing. Materialized routers are owned by the vantage that touched
// them (see Vantage.router): every router property except the live
// bucket level is a pure function of (seed, key), so concurrent vantages
// derive identical routers without sharing mutable state.

// Router classes.
const (
	classAccess   = 1 // vantage-side access chain
	classBackbone = 2 // intra-AS transit hops
	classLevel    = 3 // subnet-hierarchy routers in the destination AS
)

// RouterKey identifies a router deterministically.
type RouterKey struct {
	ASN   uint32
	Class uint8
	K1    uint64 // access: vantage id; backbone: ingress/LB selector; level: subnet hi bits
	K2    uint64 // access/backbone: hop index; level: subnet prefix length
}

// Router is a materialized packet forwarder with ICMPv6 generation state.
type Router struct {
	Key  RouterKey
	Addr netip.Addr

	// Token bucket for ICMPv6 origination (RFC 4443 §2.4(f)).
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration

	unresponsive  bool // never originates ICMPv6
	truncateQuote bool // quotes only IPv4-style 28+40 bytes, losing Yarrp6 state
}

// newRouter constructs the router for key with its bucket full as of now.
// Everything but the bucket level is a pure function of (seed, key), so
// any vantage materializing the same key derives an identical router. as
// carries the /64 gateway context for level routers, whose address
// depends on the CPE plan; it is ignored otherwise.
func (u *Universe) newRouter(key RouterKey, as *AS, now time.Duration) *Router {
	r := &Router{Key: key, Addr: u.routerAddr(key, as)}
	pk := h(u.seed, 21, uint64(key.ASN), uint64(key.Class), key.K1, key.K2)
	cfg := u.cfg
	span := cfg.RateLimitTokensMax - cfg.RateLimitTokensMin
	r.rate = cfg.RateLimitTokensMin + float64(h(pk, 1)%1000)/1000*span
	bspan := cfg.RateLimitBurstMax - cfg.RateLimitBurstMin
	r.burst = cfg.RateLimitBurstMin + float64(h(pk, 2)%1000)/1000*bspan
	// Campus access gear and carrier backbones run materially more
	// generous ICMPv6 origination budgets than edge distribution and CPE
	// equipment. The access band sits between randomized probing's
	// per-TTL demand (rate/16) and sequential probing's synchronized
	// per-TTL bursts (the full rate) at the paper's campaign speeds —
	// the separation Figure 5 measures.
	switch key.Class {
	case classAccess:
		r.rate = r.rate*0.6 + 150 // ~190..390 tokens/s
		r.burst *= 1.2
	case classBackbone:
		r.rate *= 4
		r.burst *= 2
	}
	if chance(h(pk, 3), uint64(cfg.AggressivePercent), 100) {
		r.rate /= 10
		r.burst /= 4
		if r.burst < 2 {
			r.burst = 2
		}
	}
	r.unresponsive = chance(h(pk, 4), uint64(cfg.UnresponsivePercent), 100)
	r.truncateQuote = chance(h(pk, 5), uint64(cfg.QuoteTruncPercent), 100)
	if key.Class == classLevel && key.K2 == 64 {
		lan := netip.PrefixFrom(ipv6.U128{Hi: key.K1, Lo: 0}.Addr(), 64)
		if u.LANAliased(lan, as) {
			// Anycast front ends are engineered to answer: generous
			// ICMPv6 origination budgets, never silent.
			r.rate *= 8
			r.burst *= 4
			r.unresponsive = false
		}
	}
	r.tokens = r.burst
	r.last = now
	return r
}

// routerAddr derives the ICMPv6 source address a router uses.
func (u *Universe) routerAddr(key RouterKey, as *AS) netip.Addr {
	switch key.Class {
	case classAccess, classBackbone:
		// Numbered from the AS's infrastructure block: a point-to-point
		// /64 per router with a lowbyte or small-integer IID.
		sub := h(u.seed, 22, uint64(key.ASN), uint64(key.Class), key.K1, key.K2)
		base := ipv6.FromAddr(as.InfraPrefix.Addr())
		base.Hi |= sub & ^ipv6.Mask(as.InfraPrefix.Bits()).Hi
		iid := uint64(1)
		if chance(h(sub, 9), 30, 100) { // some interfaces use ::2 or small ints
			iid = between(h(sub, 10), 2, 9)
		}
		base.Lo = iid
		return base.Addr()
	case classLevel:
		subnet := netip.PrefixFrom(ipv6.U128{Hi: key.K1, Lo: 0}.Addr(), int(key.K2))
		if key.K2 == 64 {
			return u.GatewayAddr(subnet, as)
		}
		if as.InfraRIR && key.K2 < 56 {
			// Distribution routers numbered from unadvertised RIR space.
			sub := hPrefix(u.seed, subnet, 23)
			base := ipv6.FromAddr(as.InfraPrefix.Addr())
			base.Hi |= sub & ^ipv6.Mask(as.InfraPrefix.Bits()).Hi
			base.Lo = 1
			return base.Addr()
		}
		return ipv6.WithIID(subnet.Addr(), 1)
	}
	panic("netsim: unknown router class")
}

// allowICMP consumes a token if available, refilling for elapsed virtual
// time; a false result models RFC 4443 rate limiting suppressing the
// ICMPv6 error.
func (r *Router) allowICMP(now time.Duration) bool {
	if now > r.last {
		r.tokens += r.rate * (now - r.last).Seconds()
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		r.last = now
	}
	if r.tokens >= 1 {
		r.tokens--
		return true
	}
	return false
}

// TokenLevel exposes the current bucket level for tests.
func (r *Router) TokenLevel() float64 { return r.tokens }
