// Package netsim is the study's Internet substrate: a deterministic,
// packet-level simulation of an IPv6 internetwork with the properties the
// paper's methodology confronts — a vast, sparsely provisioned address
// space organized as per-AS subnet hierarchies; mandated ICMPv6 rate
// limiting implemented as per-router token buckets; per-flow ECMP load
// balancing keyed on the fields real routers hash (including the ICMPv6
// checksum); heterogeneous filtering policy; and edge networks whose CPE
// routers answer from EUI-64 source addresses.
//
// Probers interact with the simulator only through wire-format packets via
// the Vantage type, which satisfies the prober-side Conn interface: the
// full Yarrp6 encode/decode path (state block, checksum fudge, quotation
// recovery) is exercised against bytes the simulator routed and quoted.
//
// The simulator is safe for concurrent vantages. Every response-side
// decision is a pure function of (universe seed, probe bytes, virtual
// send time); each vantage owns all state mutated on its packet path —
// virtual clock, lazily materialized router token buckets, delivery
// queue, scratch buffers — and universe-wide event counters are atomic.
// The coordinated-clock invariant for sharded campaigns: shard vantages
// (Vantage.Clone) own disjoint, ordered windows of virtual time; the
// ClockGroup watermark — the minimum shard clock — is the campaign's
// committed virtual time and only ever advances, so a sharded campaign
// that replays a single prober's (packet, time) schedule elicits the
// identical replies regardless of goroutine interleaving. Token-bucket
// state is epoch-scoped to the materializing vantage: buckets open full
// at each shard's window start, a deviation from serial bucket carryover
// that vanishes whenever the inter-window gap exceeds the bucket refill
// time (always, at randomized-probing hit rates).
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"beholder/internal/bgp"
	"beholder/internal/faultsim"
	"beholder/internal/ipv6"
)

// AS is one autonomous system in the simulated topology.
type AS struct {
	Idx  int
	ASN  uint32
	Kind ASKind
	Tier int // 1 core, 2 regional, 3 edge

	Neighbors []int // adjacency by AS index

	Prefixes    []netip.Prefix // announced customer/service space
	InfraPrefix netip.Prefix   // router numbering space
	InfraRIR    bool           // infra space is RIR-registered, not advertised
	EquivGroup  int            // >0: organization spanning several ASNs

	// Policy toward transit probes and probes to hosts.
	BlockUDP    bool
	BlockTCP    bool
	BlockEcho   bool
	RejectRoute bool // answers unallocated space with reject-route instead of no-route

	LoadBalanced bool
	LBWays       int

	// CPEOUIIndex is nonzero for large eyeball ISPs whose customer
	// premises routers respond from EUI-64 addresses; it selects the
	// manufacturer OUI (Table 7: two manufacturers in two ISPs dominate).
	CPEOUIIndex int

	// CDN marks hosting ASes operating anycast front ends; a
	// configured fraction of their provisioned /64s are aliased —
	// every interface identifier beneath them answers probes.
	CDN bool
}

// Universe is the simulated internetwork: topology, routing table, and
// the default virtual clock. Everything mutable during a campaign lives
// with the vantage that owns it (clock when cloned, router token
// buckets, delivery queues); the universe itself is read-only on the
// packet path except for the Stats counters, which are updated
// atomically, so any number of vantages may probe concurrently.
type Universe struct {
	cfg   Config
	seed  uint64
	ases  []*AS
	byASN map[uint32]*AS
	table *bgp.Table
	clock Clock

	// lossSurvive[h] is the probability a probe survives h link
	// crossings at the configured loss rate — math.Pow outputs
	// precomputed once so the per-probe loss draw is a table load. Nil
	// when loss is disabled.
	lossSurvive []float64

	// planShare hands every vantage of one identity (a named vantage
	// and all its shard clones, across campaigns) one shared plan-core
	// cache: plans are pure functions of (seed, identity, flow), so a
	// later campaign — or a sibling shard — starts from the flows
	// already planned. Guarded by planShareMu at vantage creation only;
	// the packet path touches the cache through atomics.
	planShareMu sync.Mutex
	planShare   map[uint64]*sharedPlans

	// vantages tracks every vantage attached to this universe, weakly:
	// ResetState must flush their pending stat deltas before zeroing
	// Stats, but bench loops create a fresh vantage per Reset and a
	// strong registry would pin every dead one (with its buffer pools)
	// for the universe's lifetime. Dead entries are compacted on reset.
	vantMu   sync.Mutex
	vantages []weak.Pointer[Vantage]

	// Stats counts globally observable simulator events; tests assert on
	// these to validate mechanism behaviour (e.g. rate-limit suppression).
	// Updated with atomic adds; read them only while no campaign runs
	// (or via StatsSnapshot, which loads atomically).
	Stats SimStats
}

// SimStats aggregates simulator-side event counts.
type SimStats struct {
	PacketsRouted     int64
	TimeExceededSent  int64
	RateLimitDropped  int64
	UnresponsiveDrops int64
	ErrorsSent        int64 // destination unreachable family
	EchoRepliesSent   int64
	TCPRstsSent       int64
	PortUnreachSent   int64
	LossDropped       int64
	FilteredDrops     int64

	// Fault-injection plane counters (internal/faultsim): zero unless
	// Config.Faults injects something. CrashDenials counts sends refused
	// by a crashed vantage, StallDrops probes swallowed inside a stall
	// window, TransientErrs EAGAIN-shaped send failures, Truncated and
	// Corrupted damaged replies, Delayed replies pushed to the end of a
	// delay-burst window.
	FaultCrashDenials  int64
	FaultStallDrops    int64
	FaultTransientErrs int64
	FaultTruncated     int64
	FaultCorrupted     int64
	FaultDelayed       int64
}

// Sub returns s minus prev, field for field — the event counts of the
// window between two snapshots.
func (s SimStats) Sub(prev SimStats) SimStats {
	return SimStats{
		PacketsRouted:     s.PacketsRouted - prev.PacketsRouted,
		TimeExceededSent:  s.TimeExceededSent - prev.TimeExceededSent,
		RateLimitDropped:  s.RateLimitDropped - prev.RateLimitDropped,
		UnresponsiveDrops: s.UnresponsiveDrops - prev.UnresponsiveDrops,
		ErrorsSent:        s.ErrorsSent - prev.ErrorsSent,
		EchoRepliesSent:   s.EchoRepliesSent - prev.EchoRepliesSent,
		TCPRstsSent:       s.TCPRstsSent - prev.TCPRstsSent,
		PortUnreachSent:   s.PortUnreachSent - prev.PortUnreachSent,
		LossDropped:       s.LossDropped - prev.LossDropped,
		FilteredDrops:     s.FilteredDrops - prev.FilteredDrops,

		FaultCrashDenials:  s.FaultCrashDenials - prev.FaultCrashDenials,
		FaultStallDrops:    s.FaultStallDrops - prev.FaultStallDrops,
		FaultTransientErrs: s.FaultTransientErrs - prev.FaultTransientErrs,
		FaultTruncated:     s.FaultTruncated - prev.FaultTruncated,
		FaultCorrupted:     s.FaultCorrupted - prev.FaultCorrupted,
		FaultDelayed:       s.FaultDelayed - prev.FaultDelayed,
	}
}

// CPE manufacturer OUIs (locally administered documentation values).
var cpeOUIs = [][3]byte{
	{0x00, 0x00, 0x00}, // unused: index 0 means "no CPE deployment"
	{0x00, 0x1d, 0xd2},
	{0xfc, 0x94, 0xe3},
	{0x84, 0xa8, 0xe4},
}

// NewUniverse constructs the deterministic topology described by cfg.
func NewUniverse(cfg Config) *Universe {
	u := &Universe{
		cfg:   cfg,
		seed:  uint64(cfg.Seed)*0x9e37 + 0x423f,
		byASN: make(map[uint32]*AS),
		table: bgp.NewTable(),
	}
	u.buildASGraph()
	u.allocateAddressSpace()
	if cfg.LossPercent > 0 {
		// Covers every plannable path (the AS walk is bounded at 64
		// ASes of at most 3 hops plus access chain and descent, and the
		// loss draw doubles the hop count); longer paths fall back to a
		// live Pow in Vantage.lost.
		p := float64(cfg.LossPercent) / 100
		u.lossSurvive = make([]float64, 1024)
		for i := range u.lossSurvive {
			u.lossSurvive[i] = math.Pow(1-p, float64(i))
		}
	}
	return u
}

// Config returns the generating configuration.
func (u *Universe) Config() Config { return u.cfg }

// Table returns the global BGP view of the simulated internetwork.
func (u *Universe) Table() *bgp.Table { return u.table }

// ASes returns all autonomous systems.
func (u *Universe) ASes() []*AS { return u.ases }

// ASByASN returns the AS originating asn.
func (u *Universe) ASByASN(asn uint32) (*AS, bool) {
	a, ok := u.byASN[asn]
	return a, ok
}

// Clock returns the universe's virtual clock.
func (u *Universe) Clock() *Clock { return &u.clock }

// SetFaults installs (or, with nil, clears) the fault-injection plane
// for vantages created from now on. Existing vantages keep the plans
// they resolved at creation; set faults before attaching or cloning the
// vantages they should afflict. Must not run concurrently with vantage
// creation.
func (u *Universe) SetFaults(f *faultsim.Config) { u.cfg.Faults = f }

// ResetState clears universe-held mutable state (the shared clock and the
// event counters) while keeping the generated topology, so that
// successive campaigns start from identical conditions, the way the
// paper's trials on different days do. Vantages batch their stat
// contributions locally between flushes, so reset first folds every live
// vantage's pending delta into Stats and then zeroes it — otherwise a
// later flush would resurrect pre-reset events, and a campaign's
// counters could read negative against the zeroed baseline. Router token
// buckets live with the vantage that materialized them; attach a fresh
// vantage after Reset to probe from pristine router state (every caller
// in this module already does). Must not run concurrently with a
// campaign.
func (u *Universe) ResetState() {
	u.clock.reset()
	u.vantMu.Lock()
	live := u.vantages[:0]
	for _, wp := range u.vantages {
		v := wp.Value()
		if v == nil {
			continue // collected; compact it away
		}
		v.FlushStats()
		live = append(live, wp)
	}
	clear(u.vantages[len(live):])
	u.vantages = live
	u.vantMu.Unlock()
	u.Stats = SimStats{}
}

// registerVantage weakly tracks a vantage for ResetState's pending-delta
// flush. NewVantage and Clone call it; entries whose vantage has been
// collected are compacted on the next reset.
func (u *Universe) registerVantage(v *Vantage) {
	u.vantMu.Lock()
	u.vantages = append(u.vantages, weak.Make(v))
	u.vantMu.Unlock()
}

// StatsSnapshot returns a consistent copy of the universe event counters
// using atomic loads, safe to call while campaigns run. Vantages batch
// contributions locally between flushes, so a mid-campaign snapshot
// trails the true totals by at most one flush window per vantage.
func (u *Universe) StatsSnapshot() SimStats {
	return SimStats{
		PacketsRouted:     atomic.LoadInt64(&u.Stats.PacketsRouted),
		TimeExceededSent:  atomic.LoadInt64(&u.Stats.TimeExceededSent),
		RateLimitDropped:  atomic.LoadInt64(&u.Stats.RateLimitDropped),
		UnresponsiveDrops: atomic.LoadInt64(&u.Stats.UnresponsiveDrops),
		ErrorsSent:        atomic.LoadInt64(&u.Stats.ErrorsSent),
		EchoRepliesSent:   atomic.LoadInt64(&u.Stats.EchoRepliesSent),
		TCPRstsSent:       atomic.LoadInt64(&u.Stats.TCPRstsSent),
		PortUnreachSent:   atomic.LoadInt64(&u.Stats.PortUnreachSent),
		LossDropped:       atomic.LoadInt64(&u.Stats.LossDropped),
		FilteredDrops:     atomic.LoadInt64(&u.Stats.FilteredDrops),

		FaultCrashDenials:  atomic.LoadInt64(&u.Stats.FaultCrashDenials),
		FaultStallDrops:    atomic.LoadInt64(&u.Stats.FaultStallDrops),
		FaultTransientErrs: atomic.LoadInt64(&u.Stats.FaultTransientErrs),
		FaultTruncated:     atomic.LoadInt64(&u.Stats.FaultTruncated),
		FaultCorrupted:     atomic.LoadInt64(&u.Stats.FaultCorrupted),
		FaultDelayed:       atomic.LoadInt64(&u.Stats.FaultDelayed),
	}
}

func (u *Universe) buildASGraph() {
	cfg := u.cfg
	n := cfg.NumASes
	if n < cfg.NumTier1+2 {
		panic(fmt.Sprintf("netsim: NumASes %d too small", n))
	}
	u.ases = make([]*AS, n)
	numT2 := n / cfg.Tier2Frac
	if numT2 < 2 {
		numT2 = 2
	}
	for i := 0; i < n; i++ {
		as := &AS{Idx: i, ASN: 1000 + uint32(i)}
		key := h(u.seed, 1, uint64(i))
		switch {
		case i < cfg.NumTier1:
			as.Tier = 1
			as.Kind = KindTransit
		case i < cfg.NumTier1+numT2:
			as.Tier = 2
			as.Kind = KindTransit
		default:
			as.Tier = 3
			pct := key % 100
			switch {
			case pct < uint64(cfg.EyeballFrac):
				as.Kind = KindEyeballISP
			case pct < uint64(cfg.EyeballFrac+cfg.HostingFrac):
				as.Kind = KindHosting
			case pct < uint64(cfg.EyeballFrac+cfg.HostingFrac+cfg.EnterpriseFrac):
				as.Kind = KindEnterprise
			default:
				as.Kind = KindUniversity
			}
		}
		// Policy draws.
		pk := h(u.seed, 2, uint64(i))
		as.BlockUDP = as.Tier == 3 && chance(h(pk, 1), uint64(cfg.BlockUDPPercent), 100)
		as.BlockTCP = as.Tier == 3 && chance(h(pk, 2), uint64(cfg.BlockTCPPercent), 100)
		as.BlockEcho = as.Tier == 3 && chance(h(pk, 3), uint64(cfg.BlockEchoPercent), 100)
		as.RejectRoute = chance(h(pk, 4), uint64(cfg.RejectRoutePct), 100)
		as.CDN = as.Kind == KindHosting && chance(h(pk, 6), uint64(cfg.CDNPercent), 100)
		if as.CDN {
			// Content businesses depend on reachability: CDN front
			// ends answer echo regardless of edge filtering fashion.
			as.BlockEcho = false
		}
		if as.Tier <= 2 && chance(h(pk, 5), uint64(cfg.LBFracPercent), 100) {
			as.LoadBalanced = true
			as.LBWays = cfg.LBWays
		}
		u.ases[i] = as
		u.byASN[as.ASN] = as
	}

	// Tier-1 full mesh.
	link := func(a, b int) {
		u.ases[a].Neighbors = append(u.ases[a].Neighbors, b)
		u.ases[b].Neighbors = append(u.ases[b].Neighbors, a)
	}
	for i := 0; i < cfg.NumTier1; i++ {
		for j := i + 1; j < cfg.NumTier1; j++ {
			link(i, j)
		}
	}
	// Tier-2: homed to 2-3 tier-1s plus a few tier-2 peerings.
	t2lo, t2hi := cfg.NumTier1, cfg.NumTier1+numT2
	for i := t2lo; i < t2hi; i++ {
		key := h(u.seed, 3, uint64(i))
		homes := int(between(h(key, 1), 2, 3))
		for k := 0; k < homes; k++ {
			link(i, int(h(key, 2, uint64(k))%uint64(cfg.NumTier1)))
		}
		if i > t2lo && chance(h(key, 3), 40, 100) {
			peer := t2lo + int(h(key, 4)%uint64(i-t2lo))
			link(i, peer)
		}
	}
	// Edge: homed to 1-2 tier-2s (occasionally a tier-1).
	for i := t2hi; i < n; i++ {
		key := h(u.seed, 4, uint64(i))
		homes := int(between(h(key, 1), 1, 2))
		for k := 0; k < homes; k++ {
			if chance(h(key, 2, uint64(k)), 5, 100) {
				link(i, int(h(key, 3, uint64(k))%uint64(cfg.NumTier1)))
			} else {
				link(i, t2lo+int(h(key, 4, uint64(k))%uint64(numT2)))
			}
		}
	}

	// Equivalent-organization groups: clusters of edge ASes acting as one
	// organization; the group's members number their routers from the
	// group leader's space, creating the ASN bookkeeping challenge §6
	// handles with equivalence sets.
	for g := 1; g <= cfg.EquivOrgGroups; g++ {
		key := h(u.seed, 5, uint64(g))
		lead := t2hi + int(h(key, 1)%uint64(n-t2hi))
		size := int(between(h(key, 2), 2, 3))
		prev := lead
		for m := 1; m < size; m++ {
			sib := t2hi + int(h(key, 3, uint64(m))%uint64(n-t2hi))
			if sib == lead {
				continue
			}
			u.ases[sib].EquivGroup = g
			u.ases[lead].EquivGroup = g
			u.table.AddEquivalent(u.ases[prev].ASN, u.ases[sib].ASN)
			prev = sib
		}
	}

	// Designate the CPE eyeball ISPs: the largest-index eyeball ASes get
	// manufacturer OUIs 1 and 2 (distinct manufacturers, distinct ISPs).
	assigned := 0
	for i := n - 1; i >= 0 && assigned < cfg.CPEISPs; i-- {
		if u.ases[i].Kind == KindEyeballISP {
			assigned++
			u.ases[i].CPEOUIIndex = assigned
		}
	}
}

func (u *Universe) allocateAddressSpace() {
	cfg := u.cfg
	alloc32 := uint64(0) // sequential /32 allocation counter in 2400::/12
	alloc48 := uint64(0) // sequential /48 allocation counter in 2600::/12
	allocRIR := uint64(0)
	for _, as := range u.ases {
		key := h(u.seed, 6, uint64(as.Idx))
		nPfx := int(between(h(key, 1), 1, uint64(2*cfg.PrefixesPerAS-1)))
		if as.Tier < 3 {
			nPfx = 1 // carriers announce a single service block
		}
		for j := 0; j < nPfx; j++ {
			var p netip.Prefix
			if as.Kind == KindEnterprise {
				// Enterprises hold provider-independent /48s.
				hi := 0x2600_0000_0000_0000 | (alloc48 << 16)
				alloc48++
				p = netip.PrefixFrom(ipv6.U128{Hi: hi, Lo: 0}.Addr(), 48)
			} else {
				hi := 0x2400_0000_0000_0000 | (alloc32 << 32)
				alloc32++
				p = netip.PrefixFrom(ipv6.U128{Hi: hi, Lo: 0}.Addr(), 32)
			}
			as.Prefixes = append(as.Prefixes, p)
			u.table.Announce(p, as.ASN)
		}
		// Router numbering space: RIR-only for a configured fraction, a
		// sibling organization's block for equivalence-group members,
		// otherwise the AS's own first prefix.
		switch {
		case chance(h(key, 2), uint64(cfg.RIRPercent), 100):
			hi := 0x2a00_0000_0000_0000 | (allocRIR << 32)
			allocRIR++
			as.InfraPrefix = netip.PrefixFrom(ipv6.U128{Hi: hi, Lo: 0}.Addr(), 32)
			as.InfraRIR = true
			u.table.AddRIR(as.InfraPrefix, as.ASN)
		default:
			as.InfraPrefix = as.Prefixes[0]
		}
	}
	// Equivalence groups share the leader's infrastructure space.
	for g := 1; g <= cfg.EquivOrgGroups; g++ {
		var lead *AS
		for _, as := range u.ases {
			if as.EquivGroup == g {
				if lead == nil {
					lead = as
				} else {
					as.InfraPrefix = lead.InfraPrefix
					as.InfraRIR = lead.InfraRIR
				}
			}
		}
	}
}

// RandomAS returns a uniformly random AS of the given kind, or nil when
// none exists.
func (u *Universe) RandomAS(rng *rand.Rand, kind ASKind) *AS {
	var pool []*AS
	for _, as := range u.ases {
		if as.Kind == kind {
			pool = append(pool, as)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[rng.Intn(len(pool))]
}

// linkLatency returns the deterministic one-way latency of the link
// entering hop key k.
func (u *Universe) linkLatency(k RouterKey) time.Duration {
	base := u.cfg.BaseHopLatency
	extra := time.Duration(h(u.seed, 7, uint64(k.ASN), k.K1, k.K2)%8000) * time.Microsecond
	return base + extra
}
