package wire

import (
	"fmt"
	"net/netip"
)

// MinMTU is the minimum IPv6 link MTU (RFC 8200 §5). ICMPv6 error messages
// quote as much of the invoking packet as fits without the error packet
// exceeding this size (RFC 4443 §3.3) — the property Yarrp6 exploits to
// recover its state from quotations.
const MinMTU = 1280

// BuildTransport serializes a transport header plus payload into buf
// beginning at offset 0, computing the transport checksum under the
// (src,dst) pseudo-header. proto selects which header struct is consulted.
// It returns the number of bytes written.
//
// For ICMPv6 and TCP the Checksum field of the passed header is ignored and
// recomputed; for UDP likewise (RFC 2460 makes the UDP checksum mandatory
// over IPv6).
func BuildTransport(buf []byte, proto uint8, udp *UDPHeader, tcp *TCPHeader, icmp *ICMPv6Header, payload []byte, src, dst netip.Addr) int {
	var n int
	switch proto {
	case ProtoUDP:
		udp.Length = uint16(UDPHeaderLen + len(payload))
		udp.Checksum = 0
		n = udp.Marshal(buf)
	case ProtoTCP:
		tcp.Checksum = 0
		n = tcp.Marshal(buf)
	case ProtoICMPv6:
		icmp.Checksum = 0
		n = icmp.Marshal(buf)
	default:
		panic(fmt.Sprintf("wire: unsupported protocol %d", proto))
	}
	n += copy(buf[n:], payload)
	ck := Checksum(buf[:n], src, dst, proto)
	switch proto {
	case ProtoUDP:
		buf[6] = byte(ck >> 8)
		buf[7] = byte(ck)
	case ProtoTCP:
		buf[16] = byte(ck >> 8)
		buf[17] = byte(ck)
	case ProtoICMPv6:
		buf[2] = byte(ck >> 8)
		buf[3] = byte(ck)
	}
	return n
}

// BuildPacket serializes a complete IPv6 packet (header + transport +
// payload) into buf and returns the total length. hdr.PayloadLength is
// computed; hdr.NextHeader must equal proto.
func BuildPacket(buf []byte, hdr *IPv6Header, proto uint8, udp *UDPHeader, tcp *TCPHeader, icmp *ICMPv6Header, payload []byte) int {
	tlen := BuildTransport(buf[IPv6HeaderLen:], proto, udp, tcp, icmp, payload, hdr.Src, hdr.Dst)
	hdr.NextHeader = proto
	hdr.PayloadLength = uint16(tlen)
	hdr.Marshal(buf)
	return IPv6HeaderLen + tlen
}

// Decoded is a zero-allocation packet decode in the style of gopacket's
// DecodingLayerParser: Decode fills the preallocated header structs and
// records slices into the input buffer. Reusing one Decoded value across
// packets avoids per-packet allocation in the prober receive loop and the
// simulator forwarding path.
type Decoded struct {
	IPv6    IPv6Header
	Proto   uint8 // ProtoUDP, ProtoTCP, or ProtoICMPv6; 0 when unknown
	UDP     UDPHeader
	TCP     TCPHeader
	ICMPv6  ICMPv6Header
	Payload []byte // transport payload (for ICMPv6 errors: begins at quotation)
}

// Decode parses an IPv6 packet. Unknown next headers leave Proto zero with
// Payload holding the undecoded bytes; truncated transports return an error
// wrapping ErrTruncated.
func (d *Decoded) Decode(b []byte) error {
	if err := d.IPv6.Unmarshal(b); err != nil {
		return err
	}
	rest := b[IPv6HeaderLen:]
	// Trust PayloadLength when it is consistent; packets shorter than the
	// declared payload are truncated.
	if int(d.IPv6.PayloadLength) > len(rest) {
		return fmt.Errorf("%w: declared payload %d, have %d", ErrTruncated, d.IPv6.PayloadLength, len(rest))
	}
	rest = rest[:d.IPv6.PayloadLength]
	d.Proto = 0
	d.Payload = nil
	switch d.IPv6.NextHeader {
	case ProtoUDP:
		if err := d.UDP.Unmarshal(rest); err != nil {
			return err
		}
		d.Proto = ProtoUDP
		d.Payload = rest[UDPHeaderLen:]
	case ProtoTCP:
		if err := d.TCP.Unmarshal(rest); err != nil {
			return err
		}
		d.Proto = ProtoTCP
		d.Payload = rest[TCPHeaderLen:]
	case ProtoICMPv6:
		if err := d.ICMPv6.Unmarshal(rest); err != nil {
			return err
		}
		d.Proto = ProtoICMPv6
		d.Payload = rest[ICMPv6HeaderLen:]
	default:
		d.Payload = rest
	}
	return nil
}

// VerifyTransportChecksum recomputes the transport checksum of the decoded
// packet from the raw bytes b and reports whether it is valid.
func (d *Decoded) VerifyTransportChecksum(b []byte) bool {
	if d.Proto == 0 {
		return false
	}
	end := IPv6HeaderLen + int(d.IPv6.PayloadLength)
	if end > len(b) {
		return false
	}
	// A valid ones'-complement checksum over the transport segment
	// (checksum field included) folds to 0xffff, i.e. Sum() == 0.
	var c Checksummer
	c.AddPseudoHeader(d.IPv6.Src, d.IPv6.Dst, end-IPv6HeaderLen, d.Proto)
	c.Add(b[IPv6HeaderLen:end])
	return c.Sum() == 0
}

// BuildICMPv6Error constructs an ICMPv6 error message (Time Exceeded,
// Destination Unreachable, ...) from router source src toward dst, quoting
// the invoking packet per RFC 4443 §3.3: as much of invoking as fits
// without the error packet exceeding MinMTU. hopLimit is the emitted
// packet's hop limit. The result is appended into buf, which must have
// capacity for up to MinMTU bytes; the total length is returned.
func BuildICMPv6Error(buf []byte, typ, code uint8, src, dst netip.Addr, invoking []byte, hopLimit uint8) int {
	maxQuote := MinMTU - IPv6HeaderLen - ICMPv6HeaderLen
	quote := invoking
	if len(quote) > maxQuote {
		quote = quote[:maxQuote]
	}
	icmp := ICMPv6Header{Type: typ, Code: code}
	hdr := IPv6Header{HopLimit: hopLimit, Src: src, Dst: dst}
	return BuildPacket(buf, &hdr, ProtoICMPv6, nil, nil, &icmp, quote)
}

// BuildEchoReply constructs an ICMPv6 echo reply mirroring the request's
// identifier, sequence number, and payload.
func BuildEchoReply(buf []byte, src, dst netip.Addr, req *ICMPv6Header, payload []byte, hopLimit uint8) int {
	icmp := ICMPv6Header{Type: ICMPv6EchoReply, Code: 0, ID: req.ID, Seq: req.Seq}
	hdr := IPv6Header{HopLimit: hopLimit, Src: src, Dst: dst}
	return BuildPacket(buf, &hdr, ProtoICMPv6, nil, nil, &icmp, payload)
}

// BuildTCPRst constructs the RST+ACK a closed TCP port returns to a SYN.
func BuildTCPRst(buf []byte, src, dst netip.Addr, syn *TCPHeader, hopLimit uint8) int {
	rst := TCPHeader{
		SrcPort: syn.DstPort,
		DstPort: syn.SrcPort,
		Seq:     0,
		Ack:     syn.Seq + 1,
		Flags:   TCPRst | TCPAck,
	}
	hdr := IPv6Header{HopLimit: hopLimit, Src: src, Dst: dst}
	return BuildPacket(buf, &hdr, ProtoTCP, nil, &rst, nil, nil)
}
