package wire

import (
	"bytes"
	"net/netip"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the zero-allocation packet
// decoder: it must never panic, and whatever it accepts must be
// internally consistent (payload bounded by the declared length,
// checksum verification callable on the same bytes).
func FuzzDecode(f *testing.F) {
	// Seed with each transport's well-formed probe packet and a few
	// truncations of it.
	var buf [128]byte
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	payload := []byte("yarrp6-fuzz-seed")
	for _, proto := range []uint8{ProtoICMPv6, ProtoUDP, ProtoTCP} {
		hdr := IPv6Header{HopLimit: 8, Src: src, Dst: dst}
		n := BuildPacket(buf[:], &hdr, proto,
			&UDPHeader{SrcPort: 4242, DstPort: 80},
			&TCPHeader{SrcPort: 4242, DstPort: 80, Flags: TCPSyn},
			&ICMPv6Header{Type: ICMPv6EchoRequest, ID: 4242, Seq: 80}, payload)
		f.Add(append([]byte(nil), buf[:n]...))
		f.Add(append([]byte(nil), buf[:n/2]...))
		f.Add(append([]byte(nil), buf[:IPv6HeaderLen+1]...))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 60))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoded
		if err := d.Decode(data); err != nil {
			return
		}
		if int(d.IPv6.PayloadLength) > len(data)-IPv6HeaderLen {
			t.Fatalf("accepted payload length %d beyond input %d", d.IPv6.PayloadLength, len(data))
		}
		if d.Proto != 0 && len(d.Payload) > int(d.IPv6.PayloadLength) {
			t.Fatalf("payload slice %d exceeds declared %d", len(d.Payload), d.IPv6.PayloadLength)
		}
		// Must not panic regardless of outcome.
		d.VerifyTransportChecksum(data)
	})
}

// FuzzBuildDecodeRoundTrip builds a packet from fuzzed field values and
// decodes it back: every accepted build must round-trip its header
// fields exactly and carry a valid transport checksum.
func FuzzBuildDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(8), []byte{0x20, 0x01, 0x0d, 0xb8}, []byte("payload"))
	f.Add(uint8(1), uint8(1), []byte{0xfe, 0x80, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, []byte{})
	f.Add(uint8(2), uint8(255), []byte{0xff}, bytes.Repeat([]byte{7}, 64))

	f.Fuzz(func(t *testing.T, protoSel, hopLimit uint8, addrSeed, payload []byte) {
		proto := []uint8{ProtoICMPv6, ProtoUDP, ProtoTCP}[int(protoSel)%3]
		var sb, db [16]byte
		copy(sb[:], addrSeed)
		sb[0] |= 0x20 // keep out of the unspecified/multicast corners
		for i := range db {
			db[i] = sb[15-i] ^ 0x5a
		}
		db[0] |= 0x20
		src, dst := netip.AddrFrom16(sb), netip.AddrFrom16(db)
		if len(payload) > 1024 {
			payload = payload[:1024]
		}

		buf := make([]byte, IPv6HeaderLen+TCPHeaderLen+len(payload)+8)
		hdr := IPv6Header{HopLimit: hopLimit, Src: src, Dst: dst}
		n := BuildPacket(buf, &hdr, proto,
			&UDPHeader{SrcPort: 1000, DstPort: 80},
			&TCPHeader{SrcPort: 1000, DstPort: 80, Flags: TCPSyn, Window: 65535},
			&ICMPv6Header{Type: ICMPv6EchoRequest, ID: 1000, Seq: 80}, payload)

		var d Decoded
		if err := d.Decode(buf[:n]); err != nil {
			t.Fatalf("built packet does not decode: %v", err)
		}
		if d.IPv6.Src != src || d.IPv6.Dst != dst || d.IPv6.HopLimit != hopLimit {
			t.Fatalf("header fields did not round-trip: %+v", d.IPv6)
		}
		if d.Proto != proto {
			t.Fatalf("proto %d decoded as %d", proto, d.Proto)
		}
		if !bytes.Equal(d.Payload, payload) {
			t.Fatal("payload did not round-trip")
		}
		if !d.VerifyTransportChecksum(buf[:n]) {
			t.Fatal("built packet fails checksum verification")
		}
	})
}
