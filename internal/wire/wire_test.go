package wire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	probeSrc = netip.MustParseAddr("2001:db8:ffff::1")
	probeDst = netip.MustParseAddr("2001:db8:1:2::1")
)

func TestIPv6HeaderRoundTrip(t *testing.T) {
	h := IPv6Header{
		TrafficClass:  0xa5,
		FlowLabel:     0xbeef7,
		PayloadLength: 52,
		NextHeader:    ProtoICMPv6,
		HopLimit:      16,
		Src:           probeSrc,
		Dst:           probeDst,
	}
	var b [IPv6HeaderLen]byte
	if n := h.Marshal(b[:]); n != IPv6HeaderLen {
		t.Fatalf("Marshal returned %d", n)
	}
	var got IPv6Header
	if err := got.Unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v want %+v", got, h)
	}
	if b[0]>>4 != 6 {
		t.Errorf("version nibble = %d", b[0]>>4)
	}
}

func TestIPv6HeaderRoundTripQuick(t *testing.T) {
	f := func(tc uint8, fl uint32, plen uint16, nh, hl uint8, srcLo, dstLo uint64) bool {
		h := IPv6Header{
			TrafficClass:  tc,
			FlowLabel:     fl & 0xfffff,
			PayloadLength: plen,
			NextHeader:    nh,
			HopLimit:      hl,
			Src:           addrFrom(0x2001_0db8_0000_0000, srcLo),
			Dst:           addrFrom(0x2001_0db8_0000_0001, dstLo),
		}
		var b [IPv6HeaderLen]byte
		h.Marshal(b[:])
		var got IPv6Header
		if err := got.Unmarshal(b[:]); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func addrFrom(hi, lo uint64) netip.Addr {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*i))
		b[8+i] = byte(lo >> (56 - 8*i))
	}
	return netip.AddrFrom16(b)
}

func TestIPv6HeaderUnmarshalErrors(t *testing.T) {
	var h IPv6Header
	if err := h.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	b := make([]byte, IPv6HeaderLen)
	b[0] = 4 << 4
	if err := h.Unmarshal(b); err == nil {
		t.Error("IPv4 version accepted")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 style check: sum of complement over data with stored
	// checksum must fold to zero.
	payload := []byte{0x80, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01, 0xde, 0xad}
	ck := Checksum(payload, probeSrc, probeDst, ProtoICMPv6)
	payload[2] = byte(ck >> 8)
	payload[3] = byte(ck)
	var c Checksummer
	c.AddPseudoHeader(probeSrc, probeDst, len(payload), ProtoICMPv6)
	c.Add(payload)
	if c.Sum() != 0 {
		t.Errorf("verification sum = %#x want 0", c.Sum())
	}
}

func TestChecksummerOddChunks(t *testing.T) {
	// Adding data in arbitrary chunkings must give identical sums.
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	var whole Checksummer
	whole.Add(data)
	for split := 1; split < len(data); split++ {
		var c Checksummer
		c.Add(data[:split])
		c.Add(data[split:])
		if c.Sum() != whole.Sum() {
			t.Errorf("split %d: sum %#x want %#x", split, c.Sum(), whole.Sum())
		}
	}
}

func TestChecksumChunkingQuick(t *testing.T) {
	f := func(data []byte, splitRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		split := int(splitRaw) % len(data)
		var a, b Checksummer
		a.Add(data)
		b.Add(data[:split])
		b.Add(data[split:])
		return a.Sum() == b.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildPacketUDPAndDecode(t *testing.T) {
	payload := []byte("yarrp6 state block")
	buf := make([]byte, MinMTU)
	hdr := IPv6Header{HopLimit: 7, Src: probeSrc, Dst: probeDst}
	udp := UDPHeader{SrcPort: 4660, DstPort: 80}
	n := BuildPacket(buf, &hdr, ProtoUDP, &udp, nil, nil, payload)
	if n != IPv6HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("length %d", n)
	}
	var d Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.Proto != ProtoUDP || d.UDP.SrcPort != 4660 || d.UDP.DstPort != 80 {
		t.Errorf("decode: %+v", d.UDP)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload: %q", d.Payload)
	}
	if !d.VerifyTransportChecksum(buf[:n]) {
		t.Error("checksum did not verify")
	}
	// Corrupt a payload byte: checksum must fail.
	buf[n-1] ^= 0xff
	if d.VerifyTransportChecksum(buf[:n]) {
		t.Error("corrupted packet verified")
	}
}

func TestBuildPacketTCPAndDecode(t *testing.T) {
	buf := make([]byte, MinMTU)
	hdr := IPv6Header{HopLimit: 3, Src: probeSrc, Dst: probeDst}
	tcp := TCPHeader{SrcPort: 1234, DstPort: 443, Seq: 0xdead, Flags: TCPSyn, Window: 65535}
	n := BuildPacket(buf, &hdr, ProtoTCP, nil, &tcp, nil, []byte{9, 9})
	var d Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.Proto != ProtoTCP || d.TCP.Flags != TCPSyn || d.TCP.Seq != 0xdead {
		t.Errorf("decode: %+v", d.TCP)
	}
	if !d.VerifyTransportChecksum(buf[:n]) {
		t.Error("checksum did not verify")
	}
}

func TestBuildPacketICMPv6AndDecode(t *testing.T) {
	buf := make([]byte, MinMTU)
	hdr := IPv6Header{HopLimit: 64, Src: probeSrc, Dst: probeDst}
	icmp := ICMPv6Header{Type: ICMPv6EchoRequest, ID: 0xabcd, Seq: 80}
	n := BuildPacket(buf, &hdr, ProtoICMPv6, nil, nil, &icmp, []byte("ping"))
	var d Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.Proto != ProtoICMPv6 || d.ICMPv6.Type != ICMPv6EchoRequest || d.ICMPv6.ID != 0xabcd {
		t.Errorf("decode: %+v", d.ICMPv6)
	}
	if !d.VerifyTransportChecksum(buf[:n]) {
		t.Error("checksum did not verify")
	}
}

func TestICMPv6ErrorQuotesFullPacket(t *testing.T) {
	// Build a small probe and wrap it in a Time Exceeded: the quotation
	// must contain the complete original packet (ICMPv6 complete-quotation
	// property the paper relies on, unlike IPv4's 28 bytes).
	probe := make([]byte, MinMTU)
	hdr := IPv6Header{HopLimit: 1, Src: probeSrc, Dst: probeDst}
	udp := UDPHeader{SrcPort: 7, DstPort: 80}
	pn := BuildPacket(probe, &hdr, ProtoUDP, &udp, nil, nil, []byte("0123456789ab"))

	rtr := netip.MustParseAddr("2001:db8:42::1")
	errBuf := make([]byte, MinMTU)
	en := BuildICMPv6Error(errBuf, ICMPv6TimeExceeded, 0, rtr, probeSrc, probe[:pn], 64)

	var d Decoded
	if err := d.Decode(errBuf[:en]); err != nil {
		t.Fatal(err)
	}
	if d.ICMPv6.Type != ICMPv6TimeExceeded {
		t.Fatalf("type %d", d.ICMPv6.Type)
	}
	if !bytes.Equal(d.Payload, probe[:pn]) {
		t.Error("quotation is not the complete invoking packet")
	}
	// The quoted packet decodes in turn.
	var q Decoded
	if err := q.Decode(d.Payload); err != nil {
		t.Fatal(err)
	}
	if q.IPv6.Dst != probeDst || q.UDP.DstPort != 80 {
		t.Errorf("inner decode: %+v %+v", q.IPv6, q.UDP)
	}
	if !d.VerifyTransportChecksum(errBuf[:en]) {
		t.Error("outer checksum did not verify")
	}
}

func TestICMPv6ErrorTruncatesAtMinMTU(t *testing.T) {
	big := make([]byte, 1400)
	hdr := IPv6Header{HopLimit: 1, Src: probeSrc, Dst: probeDst}
	udp := UDPHeader{SrcPort: 7, DstPort: 80}
	BuildPacket(big, &hdr, ProtoUDP, &udp, nil, nil, make([]byte, 1400-IPv6HeaderLen-UDPHeaderLen))
	errBuf := make([]byte, MinMTU)
	rtr := netip.MustParseAddr("2001:db8:42::1")
	en := BuildICMPv6Error(errBuf, ICMPv6TimeExceeded, 0, rtr, probeSrc, big, 64)
	if en != MinMTU {
		t.Errorf("error packet length %d want %d", en, MinMTU)
	}
}

func TestBuildEchoReplyMirrors(t *testing.T) {
	req := ICMPv6Header{Type: ICMPv6EchoRequest, ID: 42, Seq: 80}
	buf := make([]byte, MinMTU)
	n := BuildEchoReply(buf, probeDst, probeSrc, &req, []byte("data"), 60)
	var d Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.ICMPv6.Type != ICMPv6EchoReply || d.ICMPv6.ID != 42 || d.ICMPv6.Seq != 80 {
		t.Errorf("reply header: %+v", d.ICMPv6)
	}
	if string(d.Payload) != "data" {
		t.Errorf("payload %q", d.Payload)
	}
}

func TestBuildTCPRst(t *testing.T) {
	syn := TCPHeader{SrcPort: 5555, DstPort: 80, Seq: 100, Flags: TCPSyn}
	buf := make([]byte, MinMTU)
	n := BuildTCPRst(buf, probeDst, probeSrc, &syn, 61)
	var d Decoded
	if err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.TCP.Flags != TCPRst|TCPAck || d.TCP.Ack != 101 || d.TCP.SrcPort != 80 || d.TCP.DstPort != 5555 {
		t.Errorf("rst: %+v", d.TCP)
	}
}

func TestDecodeTruncatedTransport(t *testing.T) {
	buf := make([]byte, MinMTU)
	hdr := IPv6Header{HopLimit: 7, Src: probeSrc, Dst: probeDst}
	udp := UDPHeader{SrcPort: 1, DstPort: 2}
	n := BuildPacket(buf, &hdr, ProtoUDP, &udp, nil, nil, nil)
	var d Decoded
	// Chop mid-UDP-header but keep the IPv6 header intact: PayloadLength
	// now exceeds available bytes.
	if err := d.Decode(buf[:n-4]); err == nil {
		t.Error("truncated transport accepted")
	}
}

func TestDecodeUnknownNextHeader(t *testing.T) {
	buf := make([]byte, IPv6HeaderLen+4)
	hdr := IPv6Header{NextHeader: 0x3b /* no next header */, PayloadLength: 4, Src: probeSrc, Dst: probeDst}
	hdr.Marshal(buf)
	copy(buf[IPv6HeaderLen:], []byte{1, 2, 3, 4})
	var d Decoded
	if err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if d.Proto != 0 || len(d.Payload) != 4 {
		t.Errorf("unknown proto decode: proto=%d payload=%d", d.Proto, len(d.Payload))
	}
}

func TestAddrChecksumDetectsRewrite(t *testing.T) {
	a := probeDst
	b := netip.MustParseAddr("2001:db8:1:2::2")
	if AddrChecksum(a) == AddrChecksum(b) {
		t.Skip("rare checksum collision between chosen addresses")
	}
	if AddrChecksum(a) != AddrChecksum(a) {
		t.Error("checksum not deterministic")
	}
}

func BenchmarkBuildProbeICMPv6(b *testing.B) {
	buf := make([]byte, 128)
	payload := make([]byte, 12)
	for i := 0; i < b.N; i++ {
		hdr := IPv6Header{HopLimit: 16, Src: probeSrc, Dst: probeDst}
		icmp := ICMPv6Header{Type: ICMPv6EchoRequest, ID: 0xabcd, Seq: 80}
		BuildPacket(buf, &hdr, ProtoICMPv6, nil, nil, &icmp, payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := make([]byte, 128)
	hdr := IPv6Header{HopLimit: 16, Src: probeSrc, Dst: probeDst}
	icmp := ICMPv6Header{Type: ICMPv6EchoRequest, ID: 0xabcd, Seq: 80}
	n := BuildPacket(buf, &hdr, ProtoICMPv6, nil, nil, &icmp, make([]byte, 12))
	var d Decoded
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
