package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IPv6HeaderLen is the fixed length of the IPv6 base header.
const IPv6HeaderLen = 40

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: not an IPv6 packet")
	ErrBadChecksum = errors.New("wire: bad transport checksum")
)

// IPv6Header is the 40-byte fixed IPv6 header (RFC 8200 §3).
type IPv6Header struct {
	TrafficClass  uint8
	FlowLabel     uint32 // 20 bits
	PayloadLength uint16
	NextHeader    uint8
	HopLimit      uint8
	Src, Dst      netip.Addr
}

// Marshal writes the header into b, which must be at least IPv6HeaderLen
// bytes. It returns the number of bytes written.
func (h *IPv6Header) Marshal(b []byte) int {
	_ = b[IPv6HeaderLen-1]
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16)
	binary.BigEndian.PutUint16(b[2:4], uint16(h.FlowLabel))
	binary.BigEndian.PutUint16(b[4:6], h.PayloadLength)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src := h.Src.As16()
	dst := h.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return IPv6HeaderLen
}

// Unmarshal parses the header from b.
func (h *IPv6Header) Unmarshal(b []byte) error {
	if len(b) < IPv6HeaderLen {
		return fmt.Errorf("%w: IPv6 header needs %d bytes, have %d", ErrTruncated, IPv6HeaderLen, len(b))
	}
	if b[0]>>4 != 6 {
		return fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0f)<<16 | uint32(binary.BigEndian.Uint16(b[2:4]))
	h.PayloadLength = binary.BigEndian.Uint16(b[4:6])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	var a16 [16]byte
	copy(a16[:], b[8:24])
	h.Src = netip.AddrFrom16(a16)
	copy(a16[:], b[24:40])
	h.Dst = netip.AddrFrom16(a16)
	return nil
}
