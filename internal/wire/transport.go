package wire

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDPHeader is the RFC 768 header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Marshal writes the header into b (at least UDPHeaderLen bytes).
func (h *UDPHeader) Marshal(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
	return UDPHeaderLen
}

// Unmarshal parses the header from b.
func (h *UDPHeader) Unmarshal(b []byte) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("%w: UDP header needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	return nil
}

// TCPHeaderLen is the minimum (option-free) TCP header length. Probe
// packets never carry TCP options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCPHeader is an option-free RFC 9293 header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// Marshal writes the header into b (at least TCPHeaderLen bytes).
func (h *TCPHeader) Marshal(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = (TCPHeaderLen / 4) << 4 // data offset, no options
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	binary.BigEndian.PutUint16(b[18:20], h.Urgent)
	return TCPHeaderLen
}

// Unmarshal parses the header from b. DataLen reports the data offset so
// callers can skip options in foreign packets.
func (h *TCPHeader) Unmarshal(b []byte) error {
	if len(b) < TCPHeaderLen {
		return fmt.Errorf("%w: TCP header needs %d bytes, have %d", ErrTruncated, TCPHeaderLen, len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	return nil
}

// ICMPv6 message types used in the study (RFC 4443).
const (
	ICMPv6DstUnreach   = 1
	ICMPv6PacketTooBig = 2
	ICMPv6TimeExceeded = 3
	ICMPv6ParamProblem = 4
	ICMPv6EchoRequest  = 128
	ICMPv6EchoReply    = 129
)

// ICMPv6 destination-unreachable codes (RFC 4443 §3.1). Table 4 reports the
// response mix across these codes.
const (
	CodeNoRoute         = 0
	CodeAdminProhibited = 1
	CodeBeyondScope     = 2
	CodeAddrUnreachable = 3
	CodePortUnreachable = 4
	CodeFailedPolicy    = 5
	CodeRejectRoute     = 6
)

// ICMPv6HeaderLen is the fixed 8-byte ICMPv6 header (type, code, checksum,
// and the 4 message-specific bytes: ID/Seq for echo, unused for errors).
const ICMPv6HeaderLen = 8

// ICMPv6Header is the common ICMPv6 header. For echo messages ID and Seq
// hold the identifier and sequence; for error messages they are unused
// (zero on the wire).
type ICMPv6Header struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16 // echo identifier / unused for errors
	Seq      uint16 // echo sequence / unused for errors
}

// Marshal writes the header into b (at least ICMPv6HeaderLen bytes).
func (h *ICMPv6Header) Marshal(b []byte) int {
	b[0] = h.Type
	b[1] = h.Code
	binary.BigEndian.PutUint16(b[2:4], h.Checksum)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	return ICMPv6HeaderLen
}

// Unmarshal parses the header from b.
func (h *ICMPv6Header) Unmarshal(b []byte) error {
	if len(b) < ICMPv6HeaderLen {
		return fmt.Errorf("%w: ICMPv6 header needs %d bytes, have %d", ErrTruncated, ICMPv6HeaderLen, len(b))
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return nil
}

// IsError reports whether the type is an ICMPv6 error message (type < 128).
func (h *ICMPv6Header) IsError() bool { return h.Type < 128 }
