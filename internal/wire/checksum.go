// Package wire implements wire-format encoding and decoding for the packet
// types the study emits and receives: IPv6 headers, TCP, UDP, and ICMPv6,
// including Internet checksums over the IPv6 pseudo-header (RFC 8200 §8.1).
//
// The design follows the shape of gopacket's DecodingLayerParser: decoding
// fills caller-owned, preallocated structs and retains sub-slices of the
// input buffer, so steady-state probing and reply handling allocate nothing.
// Serialization writes fixed-layout headers into caller-provided buffers.
package wire

import (
	"encoding/binary"
	"net/netip"
)

// Protocol numbers used by the study (IANA assigned).
const (
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// Checksummer accumulates a 16-bit ones'-complement Internet checksum.
// The zero value is ready to use.
type Checksummer struct {
	sum uint32
	odd bool // a dangling high byte from an odd-length Add is pending
}

// Add folds data into the running sum, handling odd-length chunks so that
// byte alignment is preserved across calls.
//
// The bulk of the input is consumed eight bytes per iteration: the
// ones'-complement sum is invariant under any word partition (carries
// into a higher 16-bit lane are congruent to 1 modulo 0xffff, which the
// end-around folds restore), so wide accumulation produces bit-identical
// checksums to the byte-pair reference loop at roughly a quarter of the
// cost — this is the hottest function on the reply-synthesis path, where
// every ICMPv6 error checksums up to a full quoted probe.
func (c *Checksummer) Add(data []byte) {
	i := 0
	if c.odd && len(data) > 0 {
		c.sum += uint32(data[0])
		i = 1
		c.odd = false
	}
	if len(data)-i >= 16 {
		// acc collects 32-bit big-endian halves; packets are far below
		// the ~2^31 iterations that could overflow the accumulator.
		var acc uint64
		for ; i+8 <= len(data); i += 8 {
			v := binary.BigEndian.Uint64(data[i:])
			acc += v>>32 + v&0xffffffff
		}
		for acc > 0xffff {
			acc = acc>>16 + acc&0xffff
		}
		c.sum += uint32(acc)
	}
	for ; i+1 < len(data); i += 2 {
		c.sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		c.sum += uint32(data[i]) << 8
		c.odd = true
	}
}

// AddUint16 folds a single big-endian 16-bit value into the sum. It must
// only be used at even byte offsets.
func (c *Checksummer) AddUint16(v uint16) {
	c.sum += uint32(v)
}

// addrFold returns the ones'-complement partial sum of an address's
// sixteen bytes, folded to 16 bits (same wide-word congruence argument
// as Add).
func addrFold(a netip.Addr) uint32 {
	b := a.As16()
	hi := binary.BigEndian.Uint64(b[0:8])
	lo := binary.BigEndian.Uint64(b[8:16])
	acc := hi>>32 + hi&0xffffffff + lo>>32 + lo&0xffffffff
	// Three unrolled end-around folds reach 16 bits from any 34-bit sum
	// (folding a value at or below 0xffff is the identity), keeping the
	// function loop-free and inlinable into its per-probe callers.
	acc = acc>>16 + acc&0xffff
	acc = acc>>16 + acc&0xffff
	acc = acc>>16 + acc&0xffff
	return uint32(acc)
}

// AddPseudoHeader folds the IPv6 pseudo-header for the given addresses,
// upper-layer payload length, and next-header value. It must be called
// at an even byte offset (in practice: on a fresh Checksummer).
func (c *Checksummer) AddPseudoHeader(src, dst netip.Addr, length int, nextHeader uint8) {
	c.sum += addrFold(src) + addrFold(dst)
	c.sum += uint32(length >> 16)
	c.sum += uint32(length & 0xffff)
	c.sum += uint32(nextHeader)
}

// Sum finalizes and returns the checksum (already complemented, ready to
// store in a header field). All-zero results are returned as is; the UDP
// zero-means-no-checksum rule is the caller's concern.
func (c *Checksummer) Sum() uint16 {
	s := c.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return ^uint16(s)
}

// RawSum finalizes the folded but uncomplemented 16-bit sum. The Yarrp6
// checksum-fudge computation needs the raw sum to solve for the payload
// filler that keeps the transport checksum constant.
func (c *Checksummer) RawSum() uint16 {
	s := c.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return uint16(s)
}

// Checksum computes the transport checksum of payload under the IPv6
// pseudo-header in one call.
func Checksum(payload []byte, src, dst netip.Addr, nextHeader uint8) uint16 {
	var c Checksummer
	c.AddPseudoHeader(src, dst, len(payload), nextHeader)
	c.Add(payload)
	return c.Sum()
}

// AddrChecksum computes the 16-bit Internet checksum over a single IPv6
// address. Yarrp6 stores this value in the TCP/UDP source port or ICMPv6
// identifier so that replies whose quoted destination was rewritten by a
// middlebox can be detected (Section 4.1). It runs once per probe build
// and once per reply authentication, hence the direct fold.
func AddrChecksum(a netip.Addr) uint16 {
	return ^uint16(addrFold(a))
}
