// Package wire implements wire-format encoding and decoding for the packet
// types the study emits and receives: IPv6 headers, TCP, UDP, and ICMPv6,
// including Internet checksums over the IPv6 pseudo-header (RFC 8200 §8.1).
//
// The design follows the shape of gopacket's DecodingLayerParser: decoding
// fills caller-owned, preallocated structs and retains sub-slices of the
// input buffer, so steady-state probing and reply handling allocate nothing.
// Serialization writes fixed-layout headers into caller-provided buffers.
package wire

import "net/netip"

// Protocol numbers used by the study (IANA assigned).
const (
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// Checksummer accumulates a 16-bit ones'-complement Internet checksum.
// The zero value is ready to use.
type Checksummer struct {
	sum uint32
	odd bool // a dangling high byte from an odd-length Add is pending
}

// Add folds data into the running sum, handling odd-length chunks so that
// byte alignment is preserved across calls.
func (c *Checksummer) Add(data []byte) {
	i := 0
	if c.odd && len(data) > 0 {
		c.sum += uint32(data[0])
		i = 1
		c.odd = false
	}
	for ; i+1 < len(data); i += 2 {
		c.sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		c.sum += uint32(data[i]) << 8
		c.odd = true
	}
}

// AddUint16 folds a single big-endian 16-bit value into the sum. It must
// only be used at even byte offsets.
func (c *Checksummer) AddUint16(v uint16) {
	c.sum += uint32(v)
}

// AddPseudoHeader folds the IPv6 pseudo-header for the given addresses,
// upper-layer payload length, and next-header value.
func (c *Checksummer) AddPseudoHeader(src, dst netip.Addr, length int, nextHeader uint8) {
	s := src.As16()
	d := dst.As16()
	c.Add(s[:])
	c.Add(d[:])
	c.sum += uint32(length >> 16)
	c.sum += uint32(length & 0xffff)
	c.sum += uint32(nextHeader)
}

// Sum finalizes and returns the checksum (already complemented, ready to
// store in a header field). All-zero results are returned as is; the UDP
// zero-means-no-checksum rule is the caller's concern.
func (c *Checksummer) Sum() uint16 {
	s := c.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return ^uint16(s)
}

// RawSum finalizes the folded but uncomplemented 16-bit sum. The Yarrp6
// checksum-fudge computation needs the raw sum to solve for the payload
// filler that keeps the transport checksum constant.
func (c *Checksummer) RawSum() uint16 {
	s := c.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return uint16(s)
}

// Checksum computes the transport checksum of payload under the IPv6
// pseudo-header in one call.
func Checksum(payload []byte, src, dst netip.Addr, nextHeader uint8) uint16 {
	var c Checksummer
	c.AddPseudoHeader(src, dst, len(payload), nextHeader)
	c.Add(payload)
	return c.Sum()
}

// AddrChecksum computes the 16-bit Internet checksum over a single IPv6
// address. Yarrp6 stores this value in the TCP/UDP source port or ICMPv6
// identifier so that replies whose quoted destination was rewritten by a
// middlebox can be detected (Section 4.1).
func AddrChecksum(a netip.Addr) uint16 {
	b := a.As16()
	var c Checksummer
	c.Add(b[:])
	return c.Sum()
}
