package probe

import (
	"math/rand"
	"net/netip"
	"testing"
)

// propReplies builds a deterministic reply stream shaped like a fill
// campaign's: Time Exceeded hops across shared routers, echo replies,
// unreachables, and the occasional unparseable reply.
func propReplies(seed int64, targets int) []Reply {
	rng := rand.New(rand.NewSource(seed))
	mk := func(tag byte, i int) netip.Addr {
		var b [16]byte
		b[0], b[1], b[2] = 0x20, 0x01, tag
		b[14], b[15] = byte(i>>8), byte(i)
		return netip.AddrFrom16(b)
	}
	var out []Reply
	for i := 0; i < targets; i++ {
		tgt := mk(0xd0, i)
		for ttl := uint8(1); ttl <= 14; ttl++ {
			if rng.Intn(4) == 0 {
				continue
			}
			out = append(out, Reply{
				Kind: KindTimeExceeded, From: mk(0xae, rng.Intn(50)),
				Target: tgt, TTL: ttl, StateRecovered: rng.Intn(10) != 0,
			})
		}
		switch rng.Intn(4) {
		case 0:
			out = append(out, Reply{Kind: KindEchoReply, From: tgt, Target: tgt})
		case 1:
			out = append(out, Reply{Kind: KindDestUnreach, From: mk(0xae, rng.Intn(50)),
				Target: tgt, Code: uint8(rng.Intn(5))})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// shardStores partitions replies into n stores the way campaign shards
// do — disjoint (target, TTL) ownership — and folds each partition.
func shardStores(replies []Reply, n int, recordPaths bool) []*Store {
	out := make([]*Store, n)
	for i := range out {
		out[i] = NewStore(recordPaths)
	}
	for _, r := range replies {
		h := (int(r.Target.As16()[15]) + int(r.TTL)) % n
		out[h].Add(r)
	}
	return out
}

// TestMergeCommutativeAssociative is the determinism-seam property
// test: over shard-disjoint stores, Merge must yield the same store for
// every merge order and grouping, and that store must equal the one a
// single unsharded fold builds. Both path-recording modes are covered.
func TestMergeCommutativeAssociative(t *testing.T) {
	for _, recordPaths := range []bool{true, false} {
		for trial := int64(0); trial < 5; trial++ {
			replies := propReplies(100+trial, 60)
			full := NewStore(recordPaths)
			for _, r := range replies {
				full.Add(r)
			}
			shards := shardStores(replies, 4, recordPaths)

			fold := func(order []int, grouped bool) *Store {
				if grouped {
					// ((a+b) + (c+d)) via intermediate stores.
					left, right := NewStore(recordPaths), NewStore(recordPaths)
					left.Merge(shards[order[0]])
					left.Merge(shards[order[1]])
					right.Merge(shards[order[2]])
					right.Merge(shards[order[3]])
					left.Merge(right)
					return left
				}
				m := NewStore(recordPaths)
				for _, i := range order {
					m.Merge(shards[i])
				}
				return m
			}

			orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
			for _, ord := range orders {
				for _, grouped := range []bool{false, true} {
					m := fold(ord, grouped)
					if !m.Equal(full) || !full.Equal(m) {
						t.Fatalf("recordPaths=%v trial=%d order=%v grouped=%v: merged store differs from unsharded fold",
							recordPaths, trial, ord, grouped)
					}
				}
			}
		}
	}
}

// TestMergeEmptyIdentity: merging an empty store is the identity, in
// both directions.
func TestMergeEmptyIdentity(t *testing.T) {
	replies := propReplies(42, 30)
	full := NewStore(true)
	for _, r := range replies {
		full.Add(r)
	}
	onto := NewStore(true)
	onto.Merge(full)
	if !onto.Equal(full) {
		t.Fatal("merge into empty store differs from source")
	}
	full.Merge(NewStore(true))
	if !full.Equal(onto) {
		t.Fatal("merging an empty store changed the target")
	}
}
