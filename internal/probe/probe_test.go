package probe

import (
	"net/netip"
	"testing"
	"time"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func teReply(target, from string, ttl uint8) Reply {
	return Reply{
		From:           addr(from),
		Target:         addr(target),
		Kind:           KindTimeExceeded,
		TTL:            ttl,
		StateRecovered: true,
	}
}

func TestStoreInterfaceDedup(t *testing.T) {
	s := NewStore(false)
	if !s.Add(teReply("2001:db8::1", "2400:1::1", 3)) {
		t.Error("first sighting should be new")
	}
	if s.Add(teReply("2001:db8::2", "2400:1::1", 4)) {
		t.Error("second sighting should not be new")
	}
	if s.NumInterfaces() != 1 {
		t.Errorf("interfaces = %d", s.NumInterfaces())
	}
	if len(s.Interfaces()) != 1 {
		t.Errorf("Interfaces() len = %d", len(s.Interfaces()))
	}
}

func TestStorePathRecording(t *testing.T) {
	s := NewStore(true)
	s.Add(teReply("2001:db8::1", "2400:1::1", 1))
	s.Add(teReply("2001:db8::1", "2400:2::1", 3))
	s.Add(teReply("2001:db8::1", "2400:3::1", 2))
	// Duplicate TTL keeps the first answer.
	s.Add(teReply("2001:db8::1", "2400:9::9", 2))

	tr := s.Trace(addr("2001:db8::1"))
	if tr == nil {
		t.Fatal("no trace")
	}
	hops := tr.SortedHops()
	if len(hops) != 3 {
		t.Fatalf("hops = %d", len(hops))
	}
	for i, want := range []string{"2400:1::1", "2400:3::1", "2400:2::1"} {
		if hops[i].Addr != addr(want) {
			t.Errorf("hop %d = %s want %s", i, hops[i].Addr, want)
		}
	}
	if tr.PathLength() != 3 {
		t.Errorf("path length %d", tr.PathLength())
	}
	if s.NumTraces() != 1 {
		t.Errorf("traces = %d", s.NumTraces())
	}
}

func TestStoreNoPathsWithoutRecording(t *testing.T) {
	s := NewStore(false)
	s.Add(teReply("2001:db8::1", "2400:1::1", 1))
	if s.Trace(addr("2001:db8::1")) != nil {
		t.Error("trace retained without recording")
	}
	if s.NumInterfaces() != 1 {
		t.Error("interface lost")
	}
}

func TestStoreReachedAndResponseMix(t *testing.T) {
	s := NewStore(true)
	s.Add(Reply{From: addr("2001:db8::5"), Target: addr("2001:db8::5"), Kind: KindEchoReply, StateRecovered: true})
	s.Add(Reply{From: addr("2001:db8::6"), Target: addr("2001:db8::6"), Kind: KindTCPRst, StateRecovered: true})
	s.Add(Reply{From: addr("2001:db8::7"), Target: addr("2001:db8::7"), Kind: KindDestUnreach, Code: 4, StateRecovered: true})
	s.Add(Reply{From: addr("2400::1"), Target: addr("2001:db8::8"), Kind: KindDestUnreach, Code: 0, StateRecovered: true})

	for _, target := range []string{"2001:db8::5", "2001:db8::6", "2001:db8::7"} {
		if tr := s.Trace(addr(target)); tr == nil || !tr.Reached {
			t.Errorf("target %s not marked reached", target)
		}
	}
	if tr := s.Trace(addr("2001:db8::8")); tr == nil || tr.Reached {
		t.Error("no-route target wrongly marked reached")
	}
	if s.EchoReplies != 1 || s.TCPRsts != 1 {
		t.Errorf("mix: echo=%d rst=%d", s.EchoReplies, s.TCPRsts)
	}
	if s.DestUnreachByCode[4] != 1 || s.DestUnreachByCode[0] != 1 {
		t.Errorf("unreach codes: %v", s.DestUnreachByCode)
	}
	if s.OtherICMPv6() != 3 {
		t.Errorf("other icmpv6 = %d", s.OtherICMPv6())
	}
	if s.Responses() != 4 {
		t.Errorf("responses = %d", s.Responses())
	}
}

func TestStoreUnparseableAndRewritten(t *testing.T) {
	s := NewStore(false)
	s.Add(Reply{From: addr("2400::1"), Kind: KindTimeExceeded, StateRecovered: false})
	s.Add(Reply{From: addr("2400::2"), Kind: KindTimeExceeded, StateRecovered: true, TargetRewritten: true, Target: addr("2001:db8::1"), TTL: 2})
	if s.Unparseable != 1 {
		t.Errorf("unparseable = %d", s.Unparseable)
	}
	if s.Rewritten != 1 {
		t.Errorf("rewritten = %d", s.Rewritten)
	}
	// The unparseable reply still contributed its interface.
	if s.NumInterfaces() != 2 {
		t.Errorf("interfaces = %d", s.NumInterfaces())
	}
}

func TestStoreZeroTTLNotRecordedAsHop(t *testing.T) {
	s := NewStore(true)
	r := teReply("2001:db8::1", "2400:1::1", 0)
	r.StateRecovered = false
	s.Add(r)
	tr := s.Trace(addr("2001:db8::1"))
	if tr != nil && len(tr.Hops) != 0 {
		t.Error("TTL-0 reply recorded as a hop")
	}
}

func TestReplyHelpers(t *testing.T) {
	r := teReply("2001:db8::1", "2400:1::1", 1)
	if !r.IsTimeExceeded() {
		t.Error("IsTimeExceeded false")
	}
	r.Kind = KindEchoReply
	if r.IsTimeExceeded() {
		t.Error("IsTimeExceeded true for echo")
	}
	if r.At != 0 {
		t.Error("zero value At")
	}
	_ = time.Duration(0)
}
