package probe

import (
	"net/netip"
	"testing"
	"time"
)

// countConn is a minimal plain Conn recording sends and sleeps.
type countConn struct {
	fuzzConn
	sent    [][]byte
	slept   time.Duration
	sendErr error
}

func (c *countConn) Send(p []byte) error {
	if c.sendErr != nil {
		return c.sendErr
	}
	c.sent = append(c.sent, append([]byte(nil), p...))
	return nil
}

func (c *countConn) Sleep(d time.Duration) { c.slept += d; c.fuzzConn.Sleep(d) }

// batchRecorder wraps countConn as a BatchConn to prove SendBatch
// dispatches whole batches to capable connections.
type batchRecorder struct {
	countConn
	batches []int
}

func (b *batchRecorder) SendBatch(pkts [][]byte, gap time.Duration) (int, bool, error) {
	b.batches = append(b.batches, len(pkts))
	for _, p := range pkts {
		if err := b.Send(p); err != nil {
			return 0, false, err
		}
		b.Sleep(gap)
	}
	return len(pkts), false, nil
}
func (b *batchRecorder) RecvBatch([]byte, []int) int           { return 0 }
func (b *batchRecorder) Pending() int                          { return 0 }
func (b *batchRecorder) NextDeliveryAt() (time.Duration, bool) { return 0, false }
func (b *batchRecorder) FlushStats()                           {}

// TestSendBatchFallbackShim: for a connection without batch support,
// the package-level SendBatch helper degrades to exactly one packet
// per call — one Send, one gap of pacing, deliverable reported true so
// the caller drains after every packet — which is precisely the serial
// Send/Sleep schedule.
func TestSendBatchFallbackShim(t *testing.T) {
	c := &countConn{fuzzConn: fuzzConn{addr: netip.MustParseAddr("2001:db8::1")}}
	pkts := [][]byte{{1}, {2}, {3}}
	gap := 250 * time.Microsecond

	sent := 0
	for sent < len(pkts) {
		n, deliverable, err := SendBatch(c, pkts[sent:], gap)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("shim sent %d packets per call, want 1", n)
		}
		if !deliverable {
			t.Fatal("shim must report deliverable so the caller drains per packet")
		}
		sent += n
	}
	if len(c.sent) != 3 || c.slept != 3*gap {
		t.Fatalf("shim sent %d packets, slept %v; want 3 and %v", len(c.sent), c.slept, 3*gap)
	}
	for i, p := range c.sent {
		if p[0] != pkts[i][0] {
			t.Fatalf("packet %d reordered", i)
		}
	}
	if n, deliverable, err := SendBatch(c, nil, gap); n != 0 || deliverable || err != nil {
		t.Fatalf("empty batch: got (%d, %v, %v)", n, deliverable, err)
	}
}

// TestSendBatchDispatch: a batch-capable connection receives the whole
// batch in one call.
func TestSendBatchDispatch(t *testing.T) {
	b := &batchRecorder{}
	pkts := [][]byte{{1}, {2}, {3}, {4}}
	n, _, err := SendBatch(b, pkts, time.Millisecond)
	if err != nil || n != 4 {
		t.Fatalf("dispatch: got (%d, %v), want 4 packets in one call", n, err)
	}
	if len(b.batches) != 1 || b.batches[0] != 4 {
		t.Fatalf("batches = %v, want one call of 4", b.batches)
	}
}
