// Package probe defines the prober-side plumbing shared by Yarrp6 and the
// baseline probers: the vantage connection contract, parsed reply records,
// and the trace store that accumulates campaign results.
//
// Conn abstracts the vantage point the way a raw IPv6 socket would: probers
// hand it complete wire-format packets and read back complete wire-format
// replies. netsim.Vantage satisfies it; a PF_PACKET-backed implementation
// would slot in for live measurement without touching prober code.
package probe

import (
	"net/netip"
	"time"
)

// Conn is the packet conduit and virtual clock at a vantage point.
type Conn interface {
	// LocalAddr returns the source address probes are sent from.
	LocalAddr() netip.Addr
	// Send transmits one wire-format IPv6 packet.
	Send(pkt []byte) error
	// Recv copies the next available reply into buf, returning its
	// length; ok is false when no reply is currently deliverable.
	Recv(buf []byte) (int, bool)
	// Now returns the current (virtual) time.
	Now() time.Duration
	// Sleep advances time; probers use it to pace departures.
	Sleep(d time.Duration)
}

// ReplyKind classifies a parsed response.
type ReplyKind uint8

// Reply kinds.
const (
	KindTimeExceeded ReplyKind = iota
	KindDestUnreach
	KindEchoReply
	KindTCPRst
	KindOther
)

// Reply is one parsed probe response with recovered probe state.
type Reply struct {
	At     time.Duration // receive time
	From   netip.Addr    // responding source (interface address for TE)
	Target netip.Addr    // reconstructed probe destination
	Kind   ReplyKind
	Type   uint8         // ICMPv6 type (0 for TCP RST)
	Code   uint8         // ICMPv6 code
	Proto  uint8         // probe transport protocol
	TTL    uint8         // originating probe hop limit; 0 when unrecoverable
	RTT    time.Duration // 0 when the timestamp was unrecoverable
	// StateRecovered reports whether the Yarrp6 payload survived the
	// quotation (truncating middleboxes defeat recovery; the interface
	// address remains usable).
	StateRecovered bool
	// TargetRewritten reports that the quoted destination failed the
	// address-checksum cross-check, i.e. something rewrote the probe.
	TargetRewritten bool
}

// IsTimeExceeded reports whether the reply is an ICMPv6 Time Exceeded.
func (r *Reply) IsTimeExceeded() bool { return r.Kind == KindTimeExceeded }

// Observer receives every parsed reply a prober folds into its store,
// in arrival order, on the prober's own goroutine. It is the streaming
// hook derived artifacts (the topology graph) are built through during
// a run instead of by post-hoc store scans. Implementations must not
// retain r's address values beyond the call any differently than a
// store would — Reply carries no slices into packet buffers, so
// retaining the struct itself is safe — and must stay allocation-light:
// they run on the packet fast path.
type Observer interface {
	OnReply(r Reply)
}
