// Package probe defines the prober-side plumbing shared by Yarrp6 and the
// baseline probers: the vantage connection contract, parsed reply records,
// and the trace store that accumulates campaign results.
//
// Conn abstracts the vantage point the way a raw IPv6 socket would: probers
// hand it complete wire-format packets and read back complete wire-format
// replies. netsim.Vantage satisfies it; a PF_PACKET-backed implementation
// would slot in for live measurement without touching prober code.
package probe

import (
	"net/netip"
	"time"
)

// Conn is the packet conduit and virtual clock at a vantage point.
type Conn interface {
	// LocalAddr returns the source address probes are sent from.
	LocalAddr() netip.Addr
	// Send transmits one wire-format IPv6 packet.
	Send(pkt []byte) error
	// Recv copies the next available reply into buf, returning its
	// length; ok is false when no reply is currently deliverable.
	Recv(buf []byte) (int, bool)
	// Now returns the current (virtual) time.
	Now() time.Duration
	// Sleep advances time; probers use it to pace departures.
	Sleep(d time.Duration)
}

// BatchConn is the optional batched extension of Conn (sendmmsg /
// recvmmsg shaped). netsim.Vantage implements it; a raw-socket
// implementation would map SendBatch to sendmmsg and RecvBatch to
// recvmmsg. Probers must not require it — the SendBatch helper degrades
// to the single-packet Conn contract for connections that lack it.
type BatchConn interface {
	Conn
	// SendBatch transmits pkts in order, advancing the clock by gap
	// after each send — exactly the schedule a serial Send/Sleep loop
	// would produce. It stops early (after the clock advance) as soon
	// as a reply becomes deliverable, so the caller can drain at the
	// same virtual instant a per-probe loop would have; sent is how
	// many packets went out, and deliverable reports whether a reply
	// is waiting at the current virtual time.
	SendBatch(pkts [][]byte, gap time.Duration) (sent int, deliverable bool, err error)
	// RecvBatch copies every reply deliverable at the current virtual
	// time — at most len(sizes) of them — back-to-back into buf,
	// recording each reply's length in sizes, and returns the count.
	RecvBatch(buf []byte, sizes []int) int
	// Pending reports how many replies are queued (deliverable now or
	// still in flight). A zero return makes draining a no-op, which is
	// the prober's empty-queue fast path.
	Pending() int
	// NextDeliveryAt returns the earliest queued reply's delivery time;
	// ok is false when nothing is queued at all.
	NextDeliveryAt() (at time.Duration, ok bool)
	// FlushStats publishes any batched global counters the connection
	// has been accumulating. Batch sends may defer shared-counter
	// updates for throughput; probers call this once when a run ends so
	// post-run readers observe exact totals.
	FlushStats()
}

// ConnCheckpointer is the optional checkpoint extension of Conn: a
// connection that can export its undelivered replies and accept them
// back after a resume. netsim.Vantage implements it; a live raw-socket
// implementation has no virtual in-flight queue and simply omits it
// (the kernel's own queue drains into Recv regardless). Campaign
// checkpointing uses it so that interrupt-at-any-instant plus resume
// replays the uninterrupted run byte for byte.
type ConnCheckpointer interface {
	// ExportPending visits every undelivered reply in delivery order;
	// the bytes are only valid during the callback.
	ExportPending(fn func(at time.Duration, data []byte))
	// InjectReply enqueues a copy of reply bytes for delivery at
	// virtual instant at.
	InjectReply(at time.Duration, data []byte)
}

// Primer is the optional window-priming extension of Conn: a connection
// that can replay the probe schedule preceding a permutation window so
// that history-dependent response state (router ICMPv6 token buckets)
// opens at the levels the serial schedule would have left. netsim.Vantage
// implements it; a live raw-socket connection probes a network that
// already carries its own history and simply omits it. Yarrp6 primes a
// window-sliced run ([PermStart, PermEnd) with PermStart > 0) through
// this interface, which is what makes N-shard reply counters match the
// serial run even past ICMPv6 rate-limit saturation.
type Primer interface {
	// BeginPrime enters priming mode: Prime calls evaluate probes at
	// explicit replayed instants, mutating rate-limiter state only — no
	// replies, no stats, no clock movement.
	BeginPrime()
	// Prime replays one probe of the preceding serial schedule at
	// virtual instant at. Probes must be replayed in schedule order.
	Prime(pkt []byte, at time.Duration) error
	// PrimeFlow registers a probe's flow for fast replay, returning a
	// token for PrimeIdx. A Yarrp6 schedule revisits each flow once per
	// TTL, so registering the flow once (from any representative probe
	// of it — flow identity is TTL-independent by construction) and
	// replaying per-(TTL, instant) through the token skips the per-probe
	// packet build and decode that dominate Prime. Tokens are valid
	// until EndPrime.
	PrimeFlow(pkt []byte) (int, error)
	// PrimeIdx replays one probe of a registered flow at virtual
	// instant at, equivalent to Prime on the corresponding packet.
	PrimeIdx(tok int, ttl uint8, at time.Duration)
	// EndPrime leaves priming mode.
	EndPrime()
}

// SimStateCheckpointer is the optional simulator-state extension of
// Conn: a connection that can export its history-dependent response
// state (router token-bucket levels) as an opaque blob and restore it
// after a resume. netsim.Vantage implements it; live connections omit
// it. Campaign checkpointing stores the blob in the artifact so a
// resumed run is byte-exact even when a rate limiter was saturated
// across the interrupt instant — including bucket drain from fill
// probes, which priming alone cannot replay.
type SimStateCheckpointer interface {
	// ExportSimState appends the state blob to buf and returns the
	// extended slice.
	ExportSimState(buf []byte) []byte
	// ImportSimState restores a blob produced by ExportSimState. It must
	// be called before the connection routes any probes, and the
	// implementation may retain data — callers hand the buffer over and
	// must not modify it afterwards.
	ImportSimState(data []byte) error
}

// IsTransient reports whether a send error is retryable — EAGAIN-shaped
// failures where the packet was not sent but a later attempt may
// succeed. Fault classification follows the error's own testimony (an
// errors.As match on `interface{ Transient() bool }`), so connection
// implementations decide which of their failures are worth a bounded
// retry and which must fail the shard.
func IsTransient(err error) bool {
	for e := err; e != nil; e = unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
	}
	return false
}

func unwrap(err error) error {
	if u, ok := err.(interface{ Unwrap() error }); ok {
		return u.Unwrap()
	}
	return nil
}

// SendBatch sends pkts through c with inter-packet gap pacing: a
// batch-capable connection processes the whole batch in one call, and
// any other Conn falls back to a single packet per call (the shim that
// keeps existing connections working — deliverable is then reported
// true so the caller drains after every packet, which is precisely the
// serial schedule).
func SendBatch(c Conn, pkts [][]byte, gap time.Duration) (sent int, deliverable bool, err error) {
	if bc, ok := c.(BatchConn); ok {
		return bc.SendBatch(pkts, gap)
	}
	if len(pkts) == 0 {
		return 0, false, nil
	}
	if err := c.Send(pkts[0]); err != nil {
		return 0, false, err
	}
	c.Sleep(gap)
	return 1, true, nil
}

// ReplyKind classifies a parsed response.
type ReplyKind uint8

// Reply kinds.
const (
	KindTimeExceeded ReplyKind = iota
	KindDestUnreach
	KindEchoReply
	KindTCPRst
	KindOther
)

// Reply is one parsed probe response with recovered probe state.
type Reply struct {
	At     time.Duration // receive time
	From   netip.Addr    // responding source (interface address for TE)
	Target netip.Addr    // reconstructed probe destination
	Kind   ReplyKind
	Type   uint8         // ICMPv6 type (0 for TCP RST)
	Code   uint8         // ICMPv6 code
	Proto  uint8         // probe transport protocol
	TTL    uint8         // originating probe hop limit; 0 when unrecoverable
	RTT    time.Duration // 0 when the timestamp was unrecoverable
	// StateRecovered reports whether the Yarrp6 payload survived the
	// quotation (truncating middleboxes defeat recovery; the interface
	// address remains usable).
	StateRecovered bool
	// TargetRewritten reports that the quoted destination failed the
	// address-checksum cross-check, i.e. something rewrote the probe.
	TargetRewritten bool
}

// IsTimeExceeded reports whether the reply is an ICMPv6 Time Exceeded.
func (r *Reply) IsTimeExceeded() bool { return r.Kind == KindTimeExceeded }

// Observer receives every parsed reply a prober folds into its store,
// in arrival order, on the prober's own goroutine. It is the streaming
// hook derived artifacts (the topology graph) are built through during
// a run instead of by post-hoc store scans. Implementations must not
// retain r's address values beyond the call any differently than a
// store would — Reply carries no slices into packet buffers, so
// retaining the struct itself is safe — and must stay allocation-light:
// they run on the packet fast path.
type Observer interface {
	OnReply(r Reply)
}
