package probe

import (
	"errors"
	"net/netip"
	"testing"
	"time"
)

func storeFixture(recordPaths bool) *Store {
	s := NewStore(recordPaths)
	targets := []netip.Addr{
		netip.MustParseAddr("2001:db8:1::1"),
		netip.MustParseAddr("2001:db8:2::1"),
		netip.MustParseAddr("2001:db8:3::1"),
	}
	hop := func(i int) netip.Addr {
		a := netip.MustParseAddr("2001:db8:ff::1").As16()
		a[14] = byte(i)
		return netip.AddrFrom16(a)
	}
	n := 0
	for ti, target := range targets {
		for ttl := 1; ttl <= 4+ti; ttl++ {
			n++
			s.Add(Reply{
				At:     time.Duration(n) * time.Millisecond,
				From:   hop(ti*8 + ttl),
				Target: target,
				Kind:   KindTimeExceeded,
				TTL:    uint8(ttl),
			})
		}
	}
	s.Add(Reply{From: targets[0], Target: targets[0], Kind: KindEchoReply, TTL: 9})
	s.Add(Reply{From: hop(60), Target: targets[1], Kind: KindDestUnreach, Code: 1, TTL: 7})
	s.Add(Reply{From: targets[2], Target: targets[2], Kind: KindDestUnreach, Code: 4, TTL: 8})
	s.Add(Reply{Kind: KindOther})
	s.Rewritten++
	return s
}

func TestStoreCodecRoundTrip(t *testing.T) {
	for _, recordPaths := range []bool{true, false} {
		s := storeFixture(recordPaths)
		enc := s.AppendBinary(nil)
		got, err := DecodeStore(enc)
		if err != nil {
			t.Fatalf("recordPaths=%v: decode: %v", recordPaths, err)
		}
		if !got.Equal(s) {
			t.Fatalf("recordPaths=%v: round-tripped store differs", recordPaths)
		}
		// Canonical form: re-encoding the decoded store reproduces the
		// original bytes exactly.
		enc2 := got.AppendBinary(nil)
		if string(enc) != string(enc2) {
			t.Fatalf("recordPaths=%v: re-encoding differs", recordPaths)
		}
	}
}

func TestStoreCodecEmpty(t *testing.T) {
	s := NewStore(true)
	got, err := DecodeStore(s.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if !got.Equal(s) {
		t.Fatal("empty store round-trip differs")
	}
}

func TestStoreCodecRejectsMalformed(t *testing.T) {
	enc := storeFixture(true).AppendBinary(nil)
	// Every truncation fails with the typed error and never panics.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeStore(enc[:cut]); !errors.Is(err, ErrStoreDecode) {
			t.Fatalf("truncation at %d: got %v, want ErrStoreDecode", cut, err)
		}
	}
	if _, err := DecodeStore(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrStoreDecode) {
		t.Fatalf("trailing byte: got %v, want ErrStoreDecode", err)
	}
	// A corrupt length prefix must fail fast rather than allocate.
	bad := append([]byte(nil), enc...)
	bad[41] = 0xff // low byte of the DestUnreachByCode count
	if _, err := DecodeStore(bad); !errors.Is(err, ErrStoreDecode) {
		t.Fatalf("corrupt count: got %v, want ErrStoreDecode", err)
	}
}
