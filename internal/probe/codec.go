package probe

import (
	"encoding/binary"
	"net/netip"
	"sync/atomic"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/wire"
)

// Magic authenticates probe payloads emitted by this module ("yp6\x01").
const Magic uint32 = 0x79703601

// PayloadLen is the fixed probe payload size (Figure 4 of the paper):
// 4B magic, 1B instance, 1B originating TTL, 4B elapsed microseconds,
// 2B checksum fudge.
const PayloadLen = 12

// Codec builds probes and recovers probe state from replies. Yarrp6 and
// the stateful baseline probers share it: all emit the same wire format,
// with per-target-constant transport checksums (Paris semantics — real
// routers hash the ICMPv6 checksum for ECMP) and the target-address
// checksum in the source port / ICMPv6 identifier to detect in-path
// rewrites.
type Codec struct {
	conn     Conn
	proto    uint8
	instance uint8
	epoch    time.Duration

	dec   wire.Decoded
	inner wire.Decoded

	// Probe-template cache (see BuildProbe): a direct-mapped,
	// pointer-free slot array of fully serialized per-target probes.
	// Opt-in via SetProbeCache — probers whose targets repeat (Yarrp6's
	// ~16 TTLs per target, the stateful tracers' per-destination walks)
	// enable it; one-shot workloads like alias detection leave it off.
	tmpl       []probeTmpl
	tmplSize   int
	payloadOff int

	// sharedTmpl, when non-nil, replaces the private template cache
	// with a campaign-shared store: templates are instance-neutral (the
	// instance byte is patched per build like the TTL), so the shards
	// of one campaign — which differ only in their instance byte —
	// build each target's template once between them.
	sharedTmpl *TmplStore

	// NotMine counts replies that failed the magic/instance/identifier
	// authentication.
	NotMine int64
}

// tmplPktMax bounds cacheable probe sizes; the module's own probes are
// 60-72 bytes (40 header + 8-20 transport + 12 payload).
const tmplPktMax = 80

// probeTmpl is one cached serialized probe. The variable bytes — hop
// limit, payload TTL, elapsed timestamp, checksum fudge — are stored
// zeroed, and sBase is the folded ones'-complement sum of everything
// else (pseudo-header, constant bytes, and the forced checksum value),
// so a cache hit re-derives the fudge with a few integer adds instead of
// re-checksumming the packet. The struct is pointer-free: the slot array
// is a single no-scan allocation.
type probeTmpl struct {
	dst   ipv6.U128
	used  bool
	n     int32
	sBase uint32
	pkt   [tmplPktMax]byte
}

// SetProbeCache resizes the codec's probe-template cache to the given
// number of direct-mapped slots (entries <= 0 disables it, the default).
// Cached probes are byte-identical to freshly built ones — the cache is
// purely a speed/memory trade.
func (c *Codec) SetProbeCache(entries int) {
	if entries < 0 {
		entries = 0
	}
	c.tmplSize = entries
	c.tmpl = nil
}

// TmplStore is a concurrent probe-template store shared by the codecs
// of one campaign's shards: direct-mapped slots of atomically published
// immutable templates. Templates are instance-neutral, so codecs that
// differ only in their instance byte (campaign shards, by construction)
// share them; racing publishes of one target produce identical values,
// so last-write-wins needs no locking. Probes served from the store are
// byte-identical to fresh builds — same guarantee as the private cache.
type TmplStore struct {
	slots []atomic.Pointer[probeTmpl]
}

// NewTmplStore creates a shared template store with the given number of
// direct-mapped slots (rounded up to at least one).
func NewTmplStore(entries int) *TmplStore {
	if entries < 1 {
		entries = 1
	}
	return &TmplStore{slots: make([]atomic.Pointer[probeTmpl], entries)}
}

// UseSharedTemplates routes this codec's template caching through the
// shared store (replacing any private cache).
func (c *Codec) UseSharedTemplates(s *TmplStore) {
	c.sharedTmpl = s
	c.tmpl = nil
	c.tmplSize = 0
}

// NewCodec creates a codec for the given transport, anchored at the
// connection's current time.
func NewCodec(conn Conn, proto, instance uint8) *Codec {
	c := &Codec{conn: conn, proto: proto, instance: instance, epoch: conn.Now()}
	switch proto {
	case wire.ProtoUDP:
		c.payloadOff = wire.IPv6HeaderLen + wire.UDPHeaderLen
	case wire.ProtoTCP:
		c.payloadOff = wire.IPv6HeaderLen + wire.TCPHeaderLen
	default:
		c.payloadOff = wire.IPv6HeaderLen + wire.ICMPv6HeaderLen
	}
	return c
}

// Epoch returns the campaign time origin used for RTT timestamps.
func (c *Codec) Epoch() time.Duration { return c.epoch }

// SetEpoch re-anchors the campaign time origin. A resumed campaign
// restores the interrupted run's epoch so the elapsed timestamps its
// probes embed — and the RTTs recovered from quoted replies — continue
// the original series instead of restarting from the resume instant.
func (c *Codec) SetEpoch(epoch time.Duration) { c.epoch = epoch }

// targetSum is the per-target constant carried in ports/identifiers and
// forced into the transport checksum.
func targetSum(target netip.Addr) uint16 {
	s := wire.AddrChecksum(target)
	if s == 0 {
		return 0xffff
	}
	return s
}

// BuildProbe constructs the wire packet for (target, ttl) into buf,
// returning its length. With the probe cache enabled, repeat targets are
// served from a serialized template: only the hop limit, the payload TTL
// byte, the elapsed timestamp, and the checksum fudge differ between a
// target's probes, and the fudge follows from the template's precomputed
// base sum by ones'-complement arithmetic — no header marshalling and no
// byte checksumming on a hit, byte-identical output either way.
func (c *Codec) BuildProbe(buf []byte, target netip.Addr, ttl uint8) int {
	return c.BuildProbeAt(buf, target, ttl, c.conn.Now())
}

// BuildProbeAt is BuildProbe with an explicit virtual send time: the
// elapsed timestamp embedded in the payload (and folded into the
// checksum fudge) is derived from at instead of the connection clock.
// The batched prober pre-builds a whole send batch with each packet
// stamped for its own future departure instant — the clock advances by
// exactly one inter-probe gap per send, so the predicted instants equal
// the actual ones and the wire bytes match a per-probe build exactly.
func (c *Codec) BuildProbeAt(buf []byte, target netip.Addr, ttl uint8, at time.Duration) int {
	elapsed := uint32((at - c.epoch) / time.Microsecond)
	if c.sharedTmpl != nil {
		tu := ipv6.FromAddr(target)
		slot := &c.sharedTmpl.slots[tmplMix(tu)%uint64(len(c.sharedTmpl.slots))]
		if tp := slot.Load(); tp != nil && tp.dst == tu {
			n := int(tp.n)
			copy(buf[:n], tp.pkt[:n])
			c.patchProbe(buf[:n], ttl, elapsed, tp.sBase)
			return n
		}
		n := c.buildProbeSlow(buf, target, ttl, elapsed)
		if n <= tmplPktMax {
			tp := &probeTmpl{dst: tu, used: true, n: int32(n)}
			copy(tp.pkt[:n], buf[:n])
			c.templatize(tp, target, n)
			slot.Store(tp)
		}
		return n
	}
	if c.tmplSize > 0 {
		if c.tmpl == nil {
			c.tmpl = make([]probeTmpl, c.tmplSize)
		}
		tu := ipv6.FromAddr(target)
		slot := &c.tmpl[tmplMix(tu)%uint64(c.tmplSize)]
		if slot.used && slot.dst == tu {
			n := int(slot.n)
			copy(buf[:n], slot.pkt[:n])
			c.patchProbe(buf[:n], ttl, elapsed, slot.sBase)
			return n
		}
		n := c.buildProbeSlow(buf, target, ttl, elapsed)
		if n <= tmplPktMax {
			slot.dst = tu
			slot.used = true
			slot.n = int32(n)
			copy(slot.pkt[:n], buf[:n])
			c.templatize(slot, target, n)
		}
		return n
	}
	return c.buildProbeSlow(buf, target, ttl, elapsed)
}

// tmplMix spreads structured address words over the template slots.
func tmplMix(u ipv6.U128) uint64 {
	x := u.Hi*0x9e3779b97f4a7c15 ^ u.Lo
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	return x ^ x>>32
}

// buildProbeSlow is the full serialization path: header and transport
// marshalling, checksum, and fudge forcing.
func (c *Codec) buildProbeSlow(buf []byte, target netip.Addr, ttl uint8, elapsed uint32) int {
	var payload [PayloadLen]byte
	binary.BigEndian.PutUint32(payload[0:4], Magic)
	payload[4] = c.instance
	payload[5] = ttl
	binary.BigEndian.PutUint32(payload[6:10], elapsed)
	// payload[10:12] is the checksum fudge, solved for below.

	sum := targetSum(target)
	hdr := wire.IPv6Header{HopLimit: ttl, Src: c.conn.LocalAddr(), Dst: target}
	var udp wire.UDPHeader
	var tcp wire.TCPHeader
	var icmp wire.ICMPv6Header
	switch c.proto {
	case wire.ProtoUDP:
		udp = wire.UDPHeader{SrcPort: sum, DstPort: 80}
	case wire.ProtoTCP:
		tcp = wire.TCPHeader{SrcPort: sum, DstPort: 80, Flags: wire.TCPSyn, Window: 65535}
	default:
		icmp = wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: sum, Seq: 80}
	}
	n := wire.BuildPacket(buf, &hdr, c.proto, &udp, &tcp, &icmp, payload[:])
	c.forceChecksum(buf[:n], sum)
	return n
}

// templatize zeroes the template's variable bytes (hop limit, payload
// instance and TTL, elapsed, fudge) and records the folded sum of
// everything that remains — the per-target constant the per-probe fudge
// is derived from. The instance byte counts as variable so shard codecs
// differing only by instance can share one template.
func (c *Codec) templatize(slot *probeTmpl, target netip.Addr, n int) {
	po := c.payloadOff
	slot.pkt[7] = 0 // hop limit (outside the transport checksum, but patched per probe)
	for i := po + 4; i < po+PayloadLen; i++ {
		slot.pkt[i] = 0
	}
	var cs wire.Checksummer
	cs.AddPseudoHeader(c.conn.LocalAddr(), target, n-wire.IPv6HeaderLen, c.proto)
	cs.Add(slot.pkt[wire.IPv6HeaderLen:n])
	slot.sBase = uint32(cs.RawSum())
}

// patchProbe writes the per-probe variable bytes into a template copy.
// The fudge keeps the forced checksum valid: the new segment sum is
// sBase plus the freshly written words (the instance/TTL word and the
// elapsed halves), and the fudge is its complement deficit — the same
// value a full rebuild would solve for.
func (c *Codec) patchProbe(pkt []byte, ttl uint8, elapsed uint32, sBase uint32) {
	po := c.payloadOff
	pkt[7] = ttl
	pkt[po+4] = c.instance
	pkt[po+5] = ttl
	binary.BigEndian.PutUint32(pkt[po+6:po+10], elapsed)
	raw := sBase + uint32(c.instance)<<8 + uint32(ttl) + elapsed>>16 + elapsed&0xffff
	raw = raw>>16 + raw&0xffff
	raw = raw>>16 + raw&0xffff
	fudge := 0xffff - uint16(raw)
	pkt[po+10] = byte(fudge >> 8)
	pkt[po+11] = byte(fudge)
}

// forceChecksum rewrites the transport checksum to want and solves the
// payload fudge so the checksum verifies: with the wanted value
// installed, the ones'-complement sum over pseudo-header and segment must
// come to 0xffff, so the fudge is its complement deficit.
//
// No bytes are re-summed: BuildPacket already installed the true
// checksum over a zeroed checksum field and zeroed fudge, and its
// complement IS the folded segment sum, so the deficit follows
// arithmetically. This halves the per-probe checksum work.
func (c *Codec) forceChecksum(pkt []byte, want uint16) {
	var ckOff int
	switch c.proto {
	case wire.ProtoUDP:
		ckOff = wire.IPv6HeaderLen + 6
	case wire.ProtoTCP:
		ckOff = wire.IPv6HeaderLen + 16
	default:
		ckOff = wire.IPv6HeaderLen + 2
	}
	fudgeOff := len(pkt) - 2
	have := uint16(pkt[ckOff])<<8 | uint16(pkt[ckOff+1])
	raw := uint32(^have) + uint32(want)
	raw = raw>>16 + raw&0xffff
	fudge := 0xffff - uint16(raw)
	pkt[ckOff] = byte(want >> 8)
	pkt[ckOff+1] = byte(want)
	pkt[fudgeOff] = byte(fudge >> 8)
	pkt[fudgeOff+1] = byte(fudge)
}

// ParseReply decodes one received packet and reconstructs probe state.
// ok is false for packets that are not attributable responses to this
// codec's probes (wrong transport, failed authentication, undecodable).
func (c *Codec) ParseReply(b []byte) (Reply, bool) {
	if c.dec.Decode(b) != nil || c.dec.Proto == 0 {
		return Reply{}, false
	}
	r := Reply{At: c.conn.Now(), From: c.dec.IPv6.Src, Proto: c.proto}

	switch {
	case c.dec.Proto == wire.ProtoICMPv6 &&
		(c.dec.ICMPv6.Type == wire.ICMPv6TimeExceeded || c.dec.ICMPv6.Type == wire.ICMPv6DstUnreach):
		if c.dec.ICMPv6.Type == wire.ICMPv6TimeExceeded {
			r.Kind = KindTimeExceeded
		} else {
			r.Kind = KindDestUnreach
		}
		r.Type = c.dec.ICMPv6.Type
		r.Code = c.dec.ICMPv6.Code
		if !c.recoverFromQuote(&r) {
			return Reply{}, false
		}
		return r, true

	case c.dec.Proto == wire.ProtoICMPv6 && c.dec.ICMPv6.Type == wire.ICMPv6EchoReply:
		if c.proto != wire.ProtoICMPv6 {
			return Reply{}, false
		}
		if c.dec.ICMPv6.ID != targetSum(c.dec.IPv6.Src) || c.dec.ICMPv6.Seq != 80 {
			c.NotMine++
			return Reply{}, false
		}
		r.Kind = KindEchoReply
		r.Type = wire.ICMPv6EchoReply
		r.Target = c.dec.IPv6.Src
		r.StateRecovered = c.recoverEchoPayload(&r)
		return r, true

	case c.dec.Proto == wire.ProtoTCP && c.dec.TCP.Flags&wire.TCPRst != 0:
		if c.proto != wire.ProtoTCP {
			return Reply{}, false
		}
		if c.dec.TCP.DstPort != targetSum(c.dec.IPv6.Src) {
			c.NotMine++
			return Reply{}, false
		}
		r.Kind = KindTCPRst
		r.Target = c.dec.IPv6.Src
		r.StateRecovered = true
		return r, true
	}
	return Reply{}, false
}

// recoverFromQuote reconstructs probe state from the ICMPv6 error
// quotation. It reports false only when the reply is authenticated as
// someone else's; truncated quotations degrade to a usable reply with
// TTL zero.
func (c *Codec) recoverFromQuote(r *Reply) bool {
	q := c.dec.Payload
	if len(q) < wire.IPv6HeaderLen {
		return true // interface address alone is still a discovery
	}
	if c.inner.Decode(q) != nil {
		var hdr wire.IPv6Header
		if hdr.Unmarshal(q) == nil {
			r.Target = hdr.Dst
		}
		return true
	}
	r.Target = c.inner.IPv6.Dst
	if c.inner.Proto != c.proto {
		c.NotMine++
		return false
	}
	var got uint16
	switch c.inner.Proto {
	case wire.ProtoUDP:
		got = c.inner.UDP.SrcPort
	case wire.ProtoTCP:
		got = c.inner.TCP.SrcPort
	default:
		got = c.inner.ICMPv6.ID
	}
	if got != targetSum(r.Target) {
		r.TargetRewritten = true
	}
	pl := c.inner.Payload
	if len(pl) < PayloadLen {
		return true // truncating middlebox: state lost, reply still ours
	}
	if binary.BigEndian.Uint32(pl[0:4]) != Magic || pl[4] != c.instance {
		c.NotMine++
		return false
	}
	r.TTL = pl[5]
	sent := time.Duration(binary.BigEndian.Uint32(pl[6:10])) * time.Microsecond
	if now := c.conn.Now() - c.epoch; now >= sent {
		r.RTT = now - sent
	}
	r.StateRecovered = true
	return true
}

func (c *Codec) recoverEchoPayload(r *Reply) bool {
	pl := c.dec.Payload
	if len(pl) < PayloadLen || binary.BigEndian.Uint32(pl[0:4]) != Magic || pl[4] != c.instance {
		return false
	}
	r.TTL = pl[5]
	sent := time.Duration(binary.BigEndian.Uint32(pl[6:10])) * time.Microsecond
	if now := c.conn.Now() - c.epoch; now >= sent {
		r.RTT = now - sent
	}
	return true
}
