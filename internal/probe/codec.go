package probe

import (
	"encoding/binary"
	"net/netip"
	"time"

	"beholder/internal/wire"
)

// Magic authenticates probe payloads emitted by this module ("yp6\x01").
const Magic uint32 = 0x79703601

// PayloadLen is the fixed probe payload size (Figure 4 of the paper):
// 4B magic, 1B instance, 1B originating TTL, 4B elapsed microseconds,
// 2B checksum fudge.
const PayloadLen = 12

// Codec builds probes and recovers probe state from replies. Yarrp6 and
// the stateful baseline probers share it: all emit the same wire format,
// with per-target-constant transport checksums (Paris semantics — real
// routers hash the ICMPv6 checksum for ECMP) and the target-address
// checksum in the source port / ICMPv6 identifier to detect in-path
// rewrites.
type Codec struct {
	conn     Conn
	proto    uint8
	instance uint8
	epoch    time.Duration

	dec   wire.Decoded
	inner wire.Decoded

	// NotMine counts replies that failed the magic/instance/identifier
	// authentication.
	NotMine int64
}

// NewCodec creates a codec for the given transport, anchored at the
// connection's current time.
func NewCodec(conn Conn, proto, instance uint8) *Codec {
	return &Codec{conn: conn, proto: proto, instance: instance, epoch: conn.Now()}
}

// Epoch returns the campaign time origin used for RTT timestamps.
func (c *Codec) Epoch() time.Duration { return c.epoch }

// targetSum is the per-target constant carried in ports/identifiers and
// forced into the transport checksum.
func targetSum(target netip.Addr) uint16 {
	s := wire.AddrChecksum(target)
	if s == 0 {
		return 0xffff
	}
	return s
}

// BuildProbe constructs the wire packet for (target, ttl) into buf,
// returning its length.
func (c *Codec) BuildProbe(buf []byte, target netip.Addr, ttl uint8) int {
	elapsed := uint32((c.conn.Now() - c.epoch) / time.Microsecond)
	var payload [PayloadLen]byte
	binary.BigEndian.PutUint32(payload[0:4], Magic)
	payload[4] = c.instance
	payload[5] = ttl
	binary.BigEndian.PutUint32(payload[6:10], elapsed)
	// payload[10:12] is the checksum fudge, solved for below.

	sum := targetSum(target)
	hdr := wire.IPv6Header{HopLimit: ttl, Src: c.conn.LocalAddr(), Dst: target}
	var udp wire.UDPHeader
	var tcp wire.TCPHeader
	var icmp wire.ICMPv6Header
	switch c.proto {
	case wire.ProtoUDP:
		udp = wire.UDPHeader{SrcPort: sum, DstPort: 80}
	case wire.ProtoTCP:
		tcp = wire.TCPHeader{SrcPort: sum, DstPort: 80, Flags: wire.TCPSyn, Window: 65535}
	default:
		icmp = wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: sum, Seq: 80}
	}
	n := wire.BuildPacket(buf, &hdr, c.proto, &udp, &tcp, &icmp, payload[:])
	c.forceChecksum(buf[:n], hdr.Src, target, sum)
	return n
}

// forceChecksum rewrites the transport checksum to want and solves the
// payload fudge so the checksum verifies: with the wanted value
// installed, the ones'-complement sum over pseudo-header and segment must
// come to 0xffff, so the fudge is its complement deficit.
func (c *Codec) forceChecksum(pkt []byte, src, dst netip.Addr, want uint16) {
	var ckOff int
	switch c.proto {
	case wire.ProtoUDP:
		ckOff = wire.IPv6HeaderLen + 6
	case wire.ProtoTCP:
		ckOff = wire.IPv6HeaderLen + 16
	default:
		ckOff = wire.IPv6HeaderLen + 2
	}
	fudgeOff := len(pkt) - 2
	pkt[fudgeOff] = 0
	pkt[fudgeOff+1] = 0
	pkt[ckOff] = byte(want >> 8)
	pkt[ckOff+1] = byte(want)
	var sum wire.Checksummer
	seg := pkt[wire.IPv6HeaderLen:]
	sum.AddPseudoHeader(src, dst, len(seg), c.proto)
	sum.Add(seg)
	fudge := 0xffff - sum.RawSum()
	pkt[fudgeOff] = byte(fudge >> 8)
	pkt[fudgeOff+1] = byte(fudge)
}

// ParseReply decodes one received packet and reconstructs probe state.
// ok is false for packets that are not attributable responses to this
// codec's probes (wrong transport, failed authentication, undecodable).
func (c *Codec) ParseReply(b []byte) (Reply, bool) {
	if c.dec.Decode(b) != nil || c.dec.Proto == 0 {
		return Reply{}, false
	}
	r := Reply{At: c.conn.Now(), From: c.dec.IPv6.Src, Proto: c.proto}

	switch {
	case c.dec.Proto == wire.ProtoICMPv6 &&
		(c.dec.ICMPv6.Type == wire.ICMPv6TimeExceeded || c.dec.ICMPv6.Type == wire.ICMPv6DstUnreach):
		if c.dec.ICMPv6.Type == wire.ICMPv6TimeExceeded {
			r.Kind = KindTimeExceeded
		} else {
			r.Kind = KindDestUnreach
		}
		r.Type = c.dec.ICMPv6.Type
		r.Code = c.dec.ICMPv6.Code
		if !c.recoverFromQuote(&r) {
			return Reply{}, false
		}
		return r, true

	case c.dec.Proto == wire.ProtoICMPv6 && c.dec.ICMPv6.Type == wire.ICMPv6EchoReply:
		if c.proto != wire.ProtoICMPv6 {
			return Reply{}, false
		}
		if c.dec.ICMPv6.ID != targetSum(c.dec.IPv6.Src) || c.dec.ICMPv6.Seq != 80 {
			c.NotMine++
			return Reply{}, false
		}
		r.Kind = KindEchoReply
		r.Type = wire.ICMPv6EchoReply
		r.Target = c.dec.IPv6.Src
		r.StateRecovered = c.recoverEchoPayload(&r)
		return r, true

	case c.dec.Proto == wire.ProtoTCP && c.dec.TCP.Flags&wire.TCPRst != 0:
		if c.proto != wire.ProtoTCP {
			return Reply{}, false
		}
		if c.dec.TCP.DstPort != targetSum(c.dec.IPv6.Src) {
			c.NotMine++
			return Reply{}, false
		}
		r.Kind = KindTCPRst
		r.Target = c.dec.IPv6.Src
		r.StateRecovered = true
		return r, true
	}
	return Reply{}, false
}

// recoverFromQuote reconstructs probe state from the ICMPv6 error
// quotation. It reports false only when the reply is authenticated as
// someone else's; truncated quotations degrade to a usable reply with
// TTL zero.
func (c *Codec) recoverFromQuote(r *Reply) bool {
	q := c.dec.Payload
	if len(q) < wire.IPv6HeaderLen {
		return true // interface address alone is still a discovery
	}
	if c.inner.Decode(q) != nil {
		var hdr wire.IPv6Header
		if hdr.Unmarshal(q) == nil {
			r.Target = hdr.Dst
		}
		return true
	}
	r.Target = c.inner.IPv6.Dst
	if c.inner.Proto != c.proto {
		c.NotMine++
		return false
	}
	var got uint16
	switch c.inner.Proto {
	case wire.ProtoUDP:
		got = c.inner.UDP.SrcPort
	case wire.ProtoTCP:
		got = c.inner.TCP.SrcPort
	default:
		got = c.inner.ICMPv6.ID
	}
	if got != targetSum(r.Target) {
		r.TargetRewritten = true
	}
	pl := c.inner.Payload
	if len(pl) < PayloadLen {
		return true // truncating middlebox: state lost, reply still ours
	}
	if binary.BigEndian.Uint32(pl[0:4]) != Magic || pl[4] != c.instance {
		c.NotMine++
		return false
	}
	r.TTL = pl[5]
	sent := time.Duration(binary.BigEndian.Uint32(pl[6:10])) * time.Microsecond
	if now := c.conn.Now() - c.epoch; now >= sent {
		r.RTT = now - sent
	}
	r.StateRecovered = true
	return true
}

func (c *Codec) recoverEchoPayload(r *Reply) bool {
	pl := c.dec.Payload
	if len(pl) < PayloadLen || binary.BigEndian.Uint32(pl[0:4]) != Magic || pl[4] != c.instance {
		return false
	}
	r.TTL = pl[5]
	sent := time.Duration(binary.BigEndian.Uint32(pl[6:10])) * time.Microsecond
	if now := c.conn.Now() - c.epoch; now >= sent {
		r.RTT = now - sent
	}
	return true
}
