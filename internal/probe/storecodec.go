package probe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
)

// Store serialization for campaign checkpointing. The encoding is a
// plain length-prefixed binary layout in canonical order — counters,
// then the sorted interface set, then traces sorted by target with hops
// sorted by TTL — so the same store always encodes to the same bytes.
// The TTL-seen bitmaps, slab allocators, and the last-trace memo are
// reconstruction artifacts and are rebuilt on decode rather than
// stored.

// ErrStoreDecode is wrapped by every store-decoding failure.
var ErrStoreDecode = errors.New("probe: malformed store encoding")

// AppendBinary appends the store's canonical binary encoding to buf.
func (s *Store) AppendBinary(buf []byte) []byte {
	flag := byte(0)
	if s.recordPaths {
		flag = 1
	}
	buf = append(buf, flag)
	buf = appendI64(buf, s.TimeExceeded)
	buf = appendI64(buf, s.EchoReplies)
	buf = appendI64(buf, s.TCPRsts)
	buf = appendI64(buf, s.Unparseable)
	buf = appendI64(buf, s.Rewritten)

	codes := make([]int, 0, len(s.DestUnreachByCode))
	for code := range s.DestUnreachByCode {
		codes = append(codes, int(code))
	}
	sort.Ints(codes)
	buf = appendU32(buf, uint32(len(codes)))
	for _, code := range codes {
		buf = append(buf, byte(code))
		buf = appendI64(buf, s.DestUnreachByCode[uint8(code)])
	}

	ifaces := s.Interfaces()
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].Less(ifaces[j]) })
	buf = appendU32(buf, uint32(len(ifaces)))
	for _, a := range ifaces {
		a16 := a.As16()
		buf = append(buf, a16[:]...)
	}

	targets := make([]netip.Addr, 0, len(s.traces))
	for t := range s.traces {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
	buf = appendU32(buf, uint32(len(targets)))
	for _, target := range targets {
		t := s.traces[target]
		t16 := target.As16()
		buf = append(buf, t16[:]...)
		reached := byte(0)
		if t.Reached {
			reached = 1
		}
		buf = append(buf, reached)
		hops := t.SortedHops()
		buf = appendU32(buf, uint32(len(hops)))
		for _, h := range hops {
			buf = append(buf, h.TTL)
			h16 := h.Addr.As16()
			buf = append(buf, h16[:]...)
		}
		tcodes := make([]int, 0, len(t.DestUnreach))
		for code := range t.DestUnreach {
			tcodes = append(tcodes, int(code))
		}
		sort.Ints(tcodes)
		buf = appendU32(buf, uint32(len(tcodes)))
		for _, code := range tcodes {
			buf = append(buf, byte(code))
			buf = appendI64(buf, int64(t.DestUnreach[uint8(code)]))
		}
	}
	return buf
}

// DecodeStore reconstructs a store from its canonical encoding. It
// never panics on malformed input; every failure wraps ErrStoreDecode.
func DecodeStore(data []byte) (*Store, error) {
	r := byteReader{buf: data}
	flag, err := r.u8()
	if err != nil {
		return nil, err
	}
	s := NewStore(flag != 0)
	if s.TimeExceeded, err = r.i64(); err != nil {
		return nil, err
	}
	if s.EchoReplies, err = r.i64(); err != nil {
		return nil, err
	}
	if s.TCPRsts, err = r.i64(); err != nil {
		return nil, err
	}
	if s.Unparseable, err = r.i64(); err != nil {
		return nil, err
	}
	if s.Rewritten, err = r.i64(); err != nil {
		return nil, err
	}

	nCodes, err := r.count(9)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nCodes; i++ {
		code, err := r.u8()
		if err != nil {
			return nil, err
		}
		n, err := r.i64()
		if err != nil {
			return nil, err
		}
		s.DestUnreachByCode[code] = n
	}

	nIfaces, err := r.count(16)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nIfaces; i++ {
		a, err := r.addr()
		if err != nil {
			return nil, err
		}
		s.interfaces[a] = struct{}{}
	}

	nTraces, err := r.count(16 + 1 + 4 + 4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nTraces; i++ {
		target, err := r.addr()
		if err != nil {
			return nil, err
		}
		reached, err := r.u8()
		if err != nil {
			return nil, err
		}
		t := &Trace{Target: target, Reached: reached != 0}
		nHops, err := r.count(17)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nHops; j++ {
			ttl, err := r.u8()
			if err != nil {
				return nil, err
			}
			a, err := r.addr()
			if err != nil {
				return nil, err
			}
			if !t.HasTTL(ttl) {
				t.markTTL(ttl)
				t.Hops = append(t.Hops, HopEntry{TTL: ttl, Addr: a})
			}
		}
		nT, err := r.count(9)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nT; j++ {
			code, err := r.u8()
			if err != nil {
				return nil, err
			}
			n, err := r.i64()
			if err != nil {
				return nil, err
			}
			if t.DestUnreach == nil {
				t.DestUnreach = make(map[uint8]int)
			}
			t.DestUnreach[code] = int(n)
		}
		if s.recordPaths {
			s.traces[target] = t
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrStoreDecode, len(data)-r.off)
	}
	return s, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendI64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// byteReader is a bounds-checked cursor over an untrusted encoding.
type byteReader struct {
	buf []byte
	off int
}

func (r *byteReader) need(n int) error {
	if len(r.buf)-r.off < n {
		return fmt.Errorf("%w: truncated at offset %d (need %d bytes)", ErrStoreDecode, r.off, n)
	}
	return nil
}

func (r *byteReader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) i64() (int64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return int64(v), nil
}

// count reads a length prefix and rejects values that could not
// possibly fit in the remaining input (each element needs at least
// elemMin bytes), so corrupt lengths fail fast instead of driving huge
// allocations.
func (r *byteReader) count(elemMin int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(v)*int64(elemMin) > int64(len(r.buf)-r.off) {
		return 0, fmt.Errorf("%w: implausible count %d at offset %d", ErrStoreDecode, v, r.off)
	}
	return int(v), nil
}

func (r *byteReader) addr() (netip.Addr, error) {
	if err := r.need(16); err != nil {
		return netip.Addr{}, err
	}
	var a16 [16]byte
	copy(a16[:], r.buf[r.off:])
	r.off += 16
	return netip.AddrFrom16(a16), nil
}
