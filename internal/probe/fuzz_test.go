package probe

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/wire"
)

// fuzzConn is a minimal stationary Conn for codec fuzzing: fixed source
// address, frozen clock, discarded sends.
type fuzzConn struct {
	addr netip.Addr
	now  time.Duration
}

func (c *fuzzConn) LocalAddr() netip.Addr   { return c.addr }
func (c *fuzzConn) Send([]byte) error       { return nil }
func (c *fuzzConn) Recv([]byte) (int, bool) { return 0, false }
func (c *fuzzConn) Now() time.Duration      { return c.now }
func (c *fuzzConn) Sleep(d time.Duration)   { c.now += d }

// FuzzParseReply feeds arbitrary bytes to the reply parser — the code
// that faces the raw network — and checks it never panics and never
// attributes garbage: any accepted reply must carry a valid source
// address and a self-consistent kind.
func FuzzParseReply(f *testing.F) {
	conn := &fuzzConn{addr: netip.MustParseAddr("2001:db8:100::1")}
	codec := NewCodec(conn, wire.ProtoICMPv6, 7)

	// Seed with a genuine quoted Time Exceeded for a probe this codec
	// built, plus truncations (middlebox behaviour) and the bare probe.
	var probe [128]byte
	target := netip.MustParseAddr("2001:db8:200::2")
	n := codec.BuildProbe(probe[:], target, 9)
	f.Add(append([]byte(nil), probe[:n]...))
	var errBuf [wire.MinMTU]byte
	router := netip.MustParseAddr("2001:db8:300::3")
	en := wire.BuildICMPv6Error(errBuf[:], wire.ICMPv6TimeExceeded, 0, router, conn.addr, probe[:n], 60)
	f.Add(append([]byte(nil), errBuf[:en]...))
	f.Add(append([]byte(nil), errBuf[:en-PayloadLen]...)) // truncated quotation
	f.Add(append([]byte(nil), errBuf[:wire.IPv6HeaderLen+wire.ICMPv6HeaderLen+8]...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, ok := codec.ParseReply(data)
		if !ok {
			return
		}
		if !r.From.IsValid() {
			t.Fatal("accepted reply with invalid source")
		}
		switch r.Kind {
		case KindTimeExceeded, KindDestUnreach, KindEchoReply, KindTCPRst:
		default:
			t.Fatalf("accepted reply with kind %d", r.Kind)
		}
		if r.Kind == KindEchoReply && r.Target != r.From {
			t.Fatal("echo reply target must be its source")
		}
		// A store must absorb anything the parser accepts.
		NewStore(true).Add(r)
	})
}

// FuzzProbeCacheEquivalence is the checksum-fudge equivalence check:
// for any (target, ttl, proto), the template-cached build — which
// derives the checksum fudge by ones'-complement arithmetic from the
// template's base sum — must produce a byte-identical packet to the
// full serialization path, and both must carry a verifying transport
// checksum.
func FuzzProbeCacheEquivalence(f *testing.F) {
	f.Add([]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 1}, uint8(1), uint8(0), uint8(0))
	f.Add([]byte{0x20, 0x01, 0xff, 0xff}, uint8(16), uint8(1), uint8(200))
	f.Add([]byte{0x3f, 0xfe}, uint8(255), uint8(2), uint8(63))

	f.Fuzz(func(t *testing.T, targetSeed []byte, ttl, protoSel, sleepMs uint8) {
		proto := []uint8{wire.ProtoICMPv6, wire.ProtoUDP, wire.ProtoTCP}[int(protoSel)%3]
		var tb [16]byte
		copy(tb[:], targetSeed)
		tb[0] |= 0x20
		target := netip.AddrFrom16(tb)

		plain := &fuzzConn{addr: netip.MustParseAddr("2001:db8:100::1")}
		cached := &fuzzConn{addr: netip.MustParseAddr("2001:db8:100::1")}
		slow := NewCodec(plain, proto, 7)
		fast := NewCodec(cached, proto, 7)
		fast.SetProbeCache(64)

		var a, b, c [128]byte
		// Prime the template, then advance both clocks identically so
		// the cached rebuild patches a nonzero elapsed timestamp.
		fast.BuildProbe(c[:], target, ttl)
		plain.Sleep(time.Duration(sleepMs) * time.Millisecond)
		cached.Sleep(time.Duration(sleepMs) * time.Millisecond)

		na := slow.BuildProbe(a[:], target, ttl)
		nb := fast.BuildProbe(b[:], target, ttl)
		if na != nb || !bytes.Equal(a[:na], b[:nb]) {
			t.Fatalf("cached probe differs from full rebuild for %s ttl %d proto %d", target, ttl, proto)
		}
		var d wire.Decoded
		if err := d.Decode(b[:nb]); err != nil {
			t.Fatalf("built probe does not decode: %v", err)
		}
		if !d.VerifyTransportChecksum(b[:nb]) {
			t.Fatal("arithmetic checksum fudge does not verify against full recompute")
		}

		// Batch-build equivalence: BuildProbeAt stamped for a future
		// instant must equal BuildProbe issued once the clock reaches
		// that instant — the exact prediction the batched prober makes
		// when it pre-builds a send batch — via both the template-cache
		// and the full-serialization paths.
		at := cached.Now() + time.Duration(sleepMs)*time.Millisecond
		var e, g [128]byte
		ne := fast.BuildProbeAt(e[:], target, ttl, at)
		cached.Sleep(at - cached.Now())
		ng := fast.BuildProbe(g[:], target, ttl)
		if ne != ng || !bytes.Equal(e[:ne], g[:ng]) {
			t.Fatalf("pre-stamped batch build differs from build-at-send for %s ttl %d proto %d", target, ttl, proto)
		}
		plain.Sleep(at - plain.Now())
		nh := slow.BuildProbeAt(a[:], target, ttl, at)
		if nh != ne || !bytes.Equal(a[:nh], e[:ne]) {
			t.Fatalf("uncached BuildProbeAt differs from cached for %s ttl %d proto %d", target, ttl, proto)
		}
	})
}
