package probe

import (
	"math/rand"
	"net/netip"
	"testing"

	"beholder/internal/ipv6"
)

func teReplyAt(target netip.Addr, from netip.Addr, ttl uint8) Reply {
	return Reply{Kind: KindTimeExceeded, From: from, Target: target, TTL: ttl, StateRecovered: true}
}

func addrN(n int) netip.Addr {
	return ipv6.U128{Hi: 0x2400_0000_0000_0000, Lo: uint64(n)}.Addr()
}

func TestTraceTTLBitmap(t *testing.T) {
	s := NewStore(true)
	target := addrN(1)
	s.Add(teReplyAt(target, addrN(100), 3))
	s.Add(teReplyAt(target, addrN(101), 3)) // duplicate TTL: first answer wins
	s.Add(teReplyAt(target, addrN(102), 7))
	tr := s.Trace(target)
	if !tr.HasTTL(3) || !tr.HasTTL(7) || tr.HasTTL(4) {
		t.Fatalf("bitmap wrong: %v", tr.seen)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("hops = %d want 2 (duplicate TTL must not append)", len(tr.Hops))
	}
	if tr.Hops[0].Addr != addrN(100) {
		t.Fatal("duplicate TTL displaced the first answer")
	}
	if tr.PathLength() != 7 {
		t.Fatalf("path length %d want 7", tr.PathLength())
	}
	// High TTLs exercise the upper bitmap words.
	s.Add(teReplyAt(target, addrN(103), 200))
	if !tr.HasTTL(200) || tr.PathLength() != 200 {
		t.Fatalf("high TTL: has=%v len=%d", tr.HasTTL(200), tr.PathLength())
	}
}

func TestStoreAddrSeen(t *testing.T) {
	s := NewStore(false)
	s.Add(teReplyAt(addrN(1), addrN(50), 2))
	if !s.AddrSeen(addrN(50)) {
		t.Error("discovered interface not reported by AddrSeen")
	}
	if s.AddrSeen(addrN(51)) {
		t.Error("unseen address reported seen")
	}
	n := 0
	s.ForEachInterface(func(netip.Addr) { n++ })
	if n != s.NumInterfaces() {
		t.Errorf("ForEachInterface visited %d of %d", n, s.NumInterfaces())
	}
}

// synthReplies builds a deterministic stream of mixed replies.
func synthReplies(n int, seed int64) []Reply {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Reply, n)
	for i := range out {
		target := addrN(rng.Intn(40))
		switch rng.Intn(5) {
		case 0:
			out[i] = Reply{Kind: KindEchoReply, From: target, Target: target, StateRecovered: true}
		case 1:
			out[i] = Reply{Kind: KindDestUnreach, Code: uint8(rng.Intn(5)), From: addrN(1000 + rng.Intn(20)), Target: target}
		default:
			out[i] = teReplyAt(target, addrN(100+rng.Intn(60)), uint8(1+rng.Intn(16)))
		}
	}
	return out
}

// TestMergeMatchesSerialAdd: splitting a reply stream into contiguous
// slices, folding each into its own store, and merging in order must
// equal adding every reply to one store.
func TestMergeMatchesSerialAdd(t *testing.T) {
	replies := synthReplies(500, 42)
	serial := NewStore(true)
	for _, r := range replies {
		serial.Add(r)
	}
	for _, shards := range []int{1, 2, 3, 7} {
		parts := make([]*Store, shards)
		for s := range parts {
			parts[s] = NewStore(true)
			lo, hi := len(replies)*s/shards, len(replies)*(s+1)/shards
			for _, r := range replies[lo:hi] {
				parts[s].Add(r)
			}
		}
		merged := NewStore(true)
		for _, p := range parts {
			merged.Merge(p)
		}
		if !merged.Equal(serial) {
			t.Fatalf("%d-way merge differs from serial add", shards)
		}
	}
}

// TestMergeOrderInsensitiveForDisjointSlices: shard stores from disjoint
// (target, TTL) slices merge to the same result in any order — the
// property the campaign engine's determinism rests on.
func TestMergeOrderInsensitiveForDisjointSlices(t *testing.T) {
	// Disjoint by TTL band per shard.
	mk := func(band uint8) *Store {
		s := NewStore(true)
		for i := 0; i < 30; i++ {
			s.Add(teReplyAt(addrN(i%10), addrN(200+int(band)*30+i), band*4+uint8(i%4)+1))
		}
		return s
	}
	a, b, c := mk(0), mk(1), mk(2)
	m1 := NewStore(true)
	m1.Merge(a)
	m1.Merge(b)
	m1.Merge(c)
	m2 := NewStore(true)
	m2.Merge(c)
	m2.Merge(a)
	m2.Merge(b)
	if !m1.Equal(m2) {
		t.Fatal("merge of disjoint slices is order-sensitive")
	}
}

func TestStoreEqualDetectsDifferences(t *testing.T) {
	a, b := NewStore(true), NewStore(true)
	r := teReplyAt(addrN(1), addrN(2), 3)
	a.Add(r)
	if a.Equal(b) {
		t.Fatal("unequal stores reported equal")
	}
	b.Add(r)
	if !a.Equal(b) {
		t.Fatal("equal stores reported unequal")
	}
	b.Add(Reply{Kind: KindEchoReply, From: addrN(1), Target: addrN(1)})
	if a.Equal(b) {
		t.Fatal("Reached/counter difference missed")
	}
}
