package probe

import (
	"net/netip"
	"sort"
)

// HopEntry is one responsive hop of a traced path.
type HopEntry struct {
	TTL  uint8
	Addr netip.Addr
}

// Trace accumulates the responses attributable to one target.
type Trace struct {
	Target netip.Addr
	// Hops holds Time-Exceeded sources by probe TTL, unordered; use
	// SortedHops for path order. Duplicate TTLs keep the first answer
	// (Paris-stable flows make later answers identical in practice).
	Hops []HopEntry
	// Reached reports a destination-originated response (echo reply,
	// port unreachable, RST) was received from the target itself.
	Reached bool
	// DestUnreach counts destination-unreachable responses by code.
	DestUnreach map[uint8]int
}

// SortedHops returns the hops ordered by TTL.
func (t *Trace) SortedHops() []HopEntry {
	out := make([]HopEntry, len(t.Hops))
	copy(out, t.Hops)
	sort.Slice(out, func(i, j int) bool { return out[i].TTL < out[j].TTL })
	return out
}

// hopAt returns the responding address at ttl.
func (t *Trace) hopAt(ttl uint8) (netip.Addr, bool) {
	for _, h := range t.Hops {
		if h.TTL == ttl {
			return h.Addr, true
		}
	}
	return netip.Addr{}, false
}

// PathLength returns the highest responding TTL (the paper's path length
// metric for Table 7).
func (t *Trace) PathLength() int {
	max := 0
	for _, h := range t.Hops {
		if int(h.TTL) > max {
			max = int(h.TTL)
		}
	}
	return max
}

// Store accumulates campaign results: per-target traces, the global
// interface-address set, and response-mix counters. It is not
// goroutine-safe; the probers in this module are single-threaded against
// the virtual clock.
type Store struct {
	recordPaths bool
	traces      map[netip.Addr]*Trace
	interfaces  map[netip.Addr]struct{}

	// Response mix (Table 4): ICMPv6 type/code counts.
	TimeExceeded      int64
	EchoReplies       int64
	TCPRsts           int64
	DestUnreachByCode map[uint8]int64
	Unparseable       int64 // replies whose probe state could not be recovered
	Rewritten         int64 // quoted target failed the checksum cross-check
}

// NewStore creates a result store. recordPaths enables per-target trace
// retention (needed for path analysis and subnet discovery); without it
// only aggregate counters and the interface set are kept, which is what
// pure discovery-power measurements need.
func NewStore(recordPaths bool) *Store {
	return &Store{
		recordPaths:       recordPaths,
		traces:            make(map[netip.Addr]*Trace),
		interfaces:        make(map[netip.Addr]struct{}),
		DestUnreachByCode: make(map[uint8]int64),
	}
}

// Add folds one reply into the store and reports whether the reply's
// source was a previously unseen interface address.
func (s *Store) Add(r Reply) (newInterface bool) {
	if !r.StateRecovered && r.Kind == KindTimeExceeded {
		s.Unparseable++
	}
	if r.TargetRewritten {
		s.Rewritten++
	}
	switch r.Kind {
	case KindTimeExceeded:
		s.TimeExceeded++
		if _, seen := s.interfaces[r.From]; !seen {
			s.interfaces[r.From] = struct{}{}
			newInterface = true
		}
	case KindEchoReply:
		s.EchoReplies++
	case KindTCPRst:
		s.TCPRsts++
	case KindDestUnreach:
		s.DestUnreachByCode[r.Code]++
	}
	if !s.recordPaths || !r.Target.IsValid() {
		return newInterface
	}
	t := s.traces[r.Target]
	if t == nil {
		t = &Trace{Target: r.Target}
		s.traces[r.Target] = t
	}
	switch r.Kind {
	case KindTimeExceeded:
		if r.TTL != 0 {
			if _, dup := t.hopAt(r.TTL); !dup {
				t.Hops = append(t.Hops, HopEntry{TTL: r.TTL, Addr: r.From})
			}
		}
	case KindEchoReply, KindTCPRst:
		t.Reached = true
	case KindDestUnreach:
		if r.Code == 4 { // port unreachable comes from the destination
			t.Reached = true
		}
		if t.DestUnreach == nil {
			t.DestUnreach = make(map[uint8]int)
		}
		t.DestUnreach[r.Code]++
	}
	return newInterface
}

// NumInterfaces returns the count of unique Time-Exceeded sources.
func (s *Store) NumInterfaces() int { return len(s.interfaces) }

// Interfaces returns the discovered interface addresses, unordered.
func (s *Store) Interfaces() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.interfaces))
	for a := range s.interfaces {
		out = append(out, a)
	}
	return out
}

// Trace returns the per-target record, or nil without path recording.
func (s *Store) Trace(target netip.Addr) *Trace { return s.traces[target] }

// Traces returns all retained traces, unordered.
func (s *Store) Traces() []*Trace {
	out := make([]*Trace, 0, len(s.traces))
	for _, t := range s.traces {
		out = append(out, t)
	}
	return out
}

// NumTraces returns how many targets have any recorded response.
func (s *Store) NumTraces() int { return len(s.traces) }

// OtherICMPv6 returns the count of non-Time-Exceeded ICMPv6 responses
// (Table 3's "Other ICMPv6" column).
func (s *Store) OtherICMPv6() int64 {
	n := s.EchoReplies
	for _, c := range s.DestUnreachByCode {
		n += c
	}
	return n
}

// Responses returns the total parsed responses of all kinds.
// OtherICMPv6 already folds echo replies and unreachables.
func (s *Store) Responses() int64 {
	return s.TimeExceeded + s.TCPRsts + s.OtherICMPv6()
}
