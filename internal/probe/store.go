package probe

import (
	"math/bits"
	"net/netip"
	"sort"
)

// HopEntry is one responsive hop of a traced path.
type HopEntry struct {
	TTL  uint8
	Addr netip.Addr
}

// Trace accumulates the responses attributable to one target.
type Trace struct {
	Target netip.Addr
	// Hops holds Time-Exceeded sources by probe TTL, unordered; use
	// SortedHops for path order. Duplicate TTLs keep the first answer
	// (Paris-stable flows make later answers identical in practice).
	Hops []HopEntry
	// seen is a 256-bit bitmap of TTLs present in Hops, so the per-reply
	// duplicate check on the hot path is one word test instead of a
	// linear scan over the hop list.
	seen [4]uint64
	// Reached reports a destination-originated response (echo reply,
	// port unreachable, RST) was received from the target itself.
	Reached bool
	// DestUnreach counts destination-unreachable responses by code.
	DestUnreach map[uint8]int
}

// HasTTL reports whether a hop at ttl has been recorded.
func (t *Trace) HasTTL(ttl uint8) bool {
	return t.seen[ttl>>6]&(1<<(ttl&63)) != 0
}

func (t *Trace) markTTL(ttl uint8) {
	t.seen[ttl>>6] |= 1 << (ttl & 63)
}

// SortedHops returns the hops ordered by TTL.
func (t *Trace) SortedHops() []HopEntry {
	out := make([]HopEntry, len(t.Hops))
	copy(out, t.Hops)
	sort.Slice(out, func(i, j int) bool { return out[i].TTL < out[j].TTL })
	return out
}

// PathLength returns the highest responding TTL (the paper's path length
// metric for Table 7).
func (t *Trace) PathLength() int {
	for w := 3; w >= 0; w-- {
		if t.seen[w] != 0 {
			return w<<6 | (bits.Len64(t.seen[w]) - 1)
		}
	}
	return 0
}

// Store accumulates campaign results: per-target traces, the global
// interface-address set, and response-mix counters. A Store is owned by a
// single prober goroutine while a campaign runs — the sharded campaign
// engine gives every shard its own Store and folds them together
// afterwards with Merge, which is deterministic regardless of how the
// shard goroutines interleaved.
type Store struct {
	recordPaths bool
	traces      map[netip.Addr]*Trace
	interfaces  map[netip.Addr]struct{}

	// lastTarget/lastTrace memoize the most recent trace touched by Add.
	// Replies cluster by target (fill-mode follow-ups, the sequential
	// baseline's per-destination bursts), so the memo removes the
	// per-reply map lookup for the common repeat case. Trace pointers
	// are stable for the store's lifetime, so the memo never dangles.
	lastTarget netip.Addr
	lastTrace  *Trace

	// block and hopSlab are slabs handed out in fixed pieces, so the
	// reply fold path allocates once per 64 discovered targets instead
	// of once per target, and hop lists grow through a shared block
	// instead of the 1-2-4-8 reallocation ladder per trace.
	block   []Trace
	hopSlab []HopEntry

	// Response mix (Table 4): ICMPv6 type/code counts.
	TimeExceeded      int64
	EchoReplies       int64
	TCPRsts           int64
	DestUnreachByCode map[uint8]int64
	Unparseable       int64 // replies whose probe state could not be recovered
	Rewritten         int64 // quoted target failed the checksum cross-check
}

// NewStore creates a result store. recordPaths enables per-target trace
// retention (needed for path analysis and subnet discovery); without it
// only aggregate counters and the interface set are kept, which is what
// pure discovery-power measurements need.
func NewStore(recordPaths bool) *Store {
	return &Store{
		recordPaths:       recordPaths,
		traces:            make(map[netip.Addr]*Trace),
		interfaces:        make(map[netip.Addr]struct{}),
		DestUnreachByCode: make(map[uint8]int64),
	}
}

// RecordsPaths reports whether per-target traces are retained.
func (s *Store) RecordsPaths() bool { return s.recordPaths }

// Add folds one reply into the store and reports whether the reply's
// source was a previously unseen interface address.
func (s *Store) Add(r Reply) (newInterface bool) {
	if !r.StateRecovered && r.Kind == KindTimeExceeded {
		s.Unparseable++
	}
	if r.TargetRewritten {
		s.Rewritten++
	}
	switch r.Kind {
	case KindTimeExceeded:
		s.TimeExceeded++
		// Insert unconditionally and detect novelty from the size delta:
		// one map operation instead of a lookup followed by an insert.
		before := len(s.interfaces)
		s.interfaces[r.From] = struct{}{}
		newInterface = len(s.interfaces) != before
	case KindEchoReply:
		s.EchoReplies++
	case KindTCPRst:
		s.TCPRsts++
	case KindDestUnreach:
		s.DestUnreachByCode[r.Code]++
	}
	if !s.recordPaths || !r.Target.IsValid() {
		return newInterface
	}
	t := s.lastTrace
	if t == nil || s.lastTarget != r.Target {
		t = s.traces[r.Target]
		if t == nil {
			if len(s.block) == 0 {
				s.block = make([]Trace, 64)
			}
			t = &s.block[0]
			s.block = s.block[1:]
			t.Target = r.Target
			// Pre-back the hop list with a slab piece covering the
			// default randomized TTL range; deeper traces (fill mode)
			// regrow normally.
			if len(s.hopSlab) < 16 {
				s.hopSlab = make([]HopEntry, 16*128)
			}
			t.Hops = s.hopSlab[:0:16]
			s.hopSlab = s.hopSlab[16:]
			s.traces[r.Target] = t
		}
		s.lastTarget, s.lastTrace = r.Target, t
	}
	switch r.Kind {
	case KindTimeExceeded:
		if r.TTL != 0 && !t.HasTTL(r.TTL) {
			t.markTTL(r.TTL)
			t.Hops = append(t.Hops, HopEntry{TTL: r.TTL, Addr: r.From})
		}
	case KindEchoReply, KindTCPRst:
		t.Reached = true
	case KindDestUnreach:
		if r.Code == 4 { // port unreachable comes from the destination
			t.Reached = true
		}
		if t.DestUnreach == nil {
			t.DestUnreach = make(map[uint8]int)
		}
		t.DestUnreach[r.Code]++
	}
	return newInterface
}

// Merge folds src into s. Campaign shards probe disjoint slices of the
// (target × TTL) domain, so hop entries never collide; if they do (e.g.
// merging overlapping ad-hoc campaigns), the entry already present wins,
// matching Add's first-answer rule — merge shards in virtual-time order
// to keep that rule meaningful. Merging is pure set union plus counter
// addition, so the merged store is identical however the shard goroutines
// interleaved. src is not modified.
func (s *Store) Merge(src *Store) {
	s.TimeExceeded += src.TimeExceeded
	s.EchoReplies += src.EchoReplies
	s.TCPRsts += src.TCPRsts
	s.Unparseable += src.Unparseable
	s.Rewritten += src.Rewritten
	for code, n := range src.DestUnreachByCode {
		s.DestUnreachByCode[code] += n
	}
	for a := range src.interfaces {
		s.interfaces[a] = struct{}{}
	}
	if !s.recordPaths {
		return
	}
	for target, st := range src.traces {
		t := s.traces[target]
		if t == nil {
			t = &Trace{Target: target}
			s.traces[target] = t
		}
		for _, hop := range st.Hops {
			if !t.HasTTL(hop.TTL) {
				t.markTTL(hop.TTL)
				t.Hops = append(t.Hops, hop)
			}
		}
		t.Reached = t.Reached || st.Reached
		if len(st.DestUnreach) > 0 {
			if t.DestUnreach == nil {
				t.DestUnreach = make(map[uint8]int, len(st.DestUnreach))
			}
			for code, n := range st.DestUnreach {
				t.DestUnreach[code] += n
			}
		}
	}
}

// Equal reports whether two stores hold identical results: the same
// counters, interface set, and (when both record paths) the same traces
// hop for hop. Sharded-campaign tests use it to prove merge determinism.
func (s *Store) Equal(o *Store) bool {
	if s.TimeExceeded != o.TimeExceeded || s.EchoReplies != o.EchoReplies ||
		s.TCPRsts != o.TCPRsts || s.Unparseable != o.Unparseable ||
		s.Rewritten != o.Rewritten {
		return false
	}
	if len(s.DestUnreachByCode) != len(o.DestUnreachByCode) {
		return false
	}
	for code, n := range s.DestUnreachByCode {
		if o.DestUnreachByCode[code] != n {
			return false
		}
	}
	if len(s.interfaces) != len(o.interfaces) {
		return false
	}
	for a := range s.interfaces {
		if _, ok := o.interfaces[a]; !ok {
			return false
		}
	}
	if s.recordPaths != o.recordPaths {
		return false
	}
	if len(s.traces) != len(o.traces) {
		return false
	}
	for target, st := range s.traces {
		ot := o.traces[target]
		if ot == nil || st.Reached != ot.Reached || st.seen != ot.seen ||
			len(st.Hops) != len(ot.Hops) || len(st.DestUnreach) != len(ot.DestUnreach) {
			return false
		}
		sh, oh := st.SortedHops(), ot.SortedHops()
		for i := range sh {
			if sh[i] != oh[i] {
				return false
			}
		}
		for code, n := range st.DestUnreach {
			if ot.DestUnreach[code] != n {
				return false
			}
		}
	}
	return true
}

// NumInterfaces returns the count of unique Time-Exceeded sources.
func (s *Store) NumInterfaces() int { return len(s.interfaces) }

// AddrSeen reports whether addr was discovered as an interface address,
// without materializing the interface slice.
func (s *Store) AddrSeen(addr netip.Addr) bool {
	_, ok := s.interfaces[addr]
	return ok
}

// ForEachInterface calls fn for every discovered interface address, in
// unspecified order. Analysis passes that only fold addresses into their
// own structures use it to avoid allocating the full slice Interfaces
// returns.
func (s *Store) ForEachInterface(fn func(netip.Addr)) {
	for a := range s.interfaces {
		fn(a)
	}
}

// Interfaces returns the discovered interface addresses, unordered. The
// result is allocated exactly once at full size.
func (s *Store) Interfaces() []netip.Addr {
	out := make([]netip.Addr, 0, len(s.interfaces))
	for a := range s.interfaces {
		out = append(out, a)
	}
	return out
}

// Trace returns the per-target record, or nil without path recording.
func (s *Store) Trace(target netip.Addr) *Trace { return s.traces[target] }

// Traces returns all retained traces, unordered. The result is allocated
// exactly once at full size.
func (s *Store) Traces() []*Trace {
	out := make([]*Trace, 0, len(s.traces))
	for _, t := range s.traces {
		out = append(out, t)
	}
	return out
}

// NumTraces returns how many targets have any recorded response.
func (s *Store) NumTraces() int { return len(s.traces) }

// OtherICMPv6 returns the count of non-Time-Exceeded ICMPv6 responses
// (Table 3's "Other ICMPv6" column).
func (s *Store) OtherICMPv6() int64 {
	n := s.EchoReplies
	for _, c := range s.DestUnreachByCode {
		n += c
	}
	return n
}

// Responses returns the total parsed responses of all kinds.
// OtherICMPv6 already folds echo replies and unreachables.
func (s *Store) Responses() int64 {
	return s.TimeExceeded + s.TCPRsts + s.OtherICMPv6()
}
