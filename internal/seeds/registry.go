package seeds

import (
	"math/rand"
	"sort"

	"beholder/internal/netsim"
)

// All generates every seed list the study uses, keyed by name, each from
// an independent deterministic RNG stream so lists do not perturb each
// other when parameters change. The TUM subset inventory is returned
// alongside (Table 2).
func All(u *netsim.Universe, seed int64, scale Scale) (map[string]List, []Subset) {
	newRng := func(k int64) *rand.Rand { return rand.New(rand.NewSource(seed*1315423911 + k)) }
	lists := make(map[string]List)

	lists["caida"] = CAIDA(u, newRng(1))
	lists["fiebig"] = Fiebig(u, newRng(2), scale)
	lists["fdns_any"] = FDNS(u, newRng(3), scale)
	lists["dnsdb"] = DNSDB(u, newRng(4), scale)
	lists["cdn-k32"] = CDN(u, newRng(5), scale, 32)
	lists["cdn-k256"] = CDN(u, newRng(5), scale, 256) // same observation stream, different k
	lists["6gen"] = SixGen(u, newRng(6), scale)
	tum, subsets := TUM(u, newRng(7), scale)
	lists["tum"] = tum
	nRandom := scaled(25, scale) * u.Table().NumPrefixes()
	lists["random"] = Random(u, newRng(8), nRandom)
	return lists, subsets
}

// IndependentNames returns the six seed lists the paper treats as
// mutually independent (Table 1's first six rows), in presentation order.
func IndependentNames() []string {
	return []string{"caida", "dnsdb", "fiebig", "fdns_any", "cdn-k256", "cdn-k32"}
}

// Names returns all list names in a stable presentation order.
func Names(lists map[string]List) []string {
	out := make([]string, 0, len(lists))
	for n := range lists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
