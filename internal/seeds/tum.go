package seeds

import (
	"math/rand"
	"net/netip"

	"beholder/internal/ipv6"
	"beholder/internal/netsim"
)

// Subset records one packaged component of the TUM collection, as Table 2
// itemizes them (filename-style name plus address count before dedup).
type Subset struct {
	Name  string
	Count int
}

// TUM builds the collection-of-collections list: overlapping subsets
// assembled from other sources (rapid7 forward DNS, CAIDA DNS names,
// certificate-transparency hosts, traceroute-observed routers, zone
// files), deduplicated into one list. It returns both the union and the
// per-subset inventory for Table 2. The overlap with the fdns and caida
// lists is intentional: the paper treats TUM as non-independent.
func TUM(u *netsim.Universe, rng *rand.Rand, scale Scale) (List, []Subset) {
	var subsets []Subset
	var union []netip.Addr
	add := func(name string, addrs []netip.Addr) {
		subsets = append(subsets, Subset{Name: name, Count: len(addrs)})
		union = append(union, addrs...)
	}

	// rapid7-dnsany: a large subsample of the fdns list (the same scans).
	fdns := FDNS(u, rng, scale).Addrs.Addrs()
	sub := make([]netip.Addr, 0, len(fdns)*4/5)
	for _, a := range fdns {
		if rng.Intn(5) != 0 {
			sub = append(sub, a)
		}
	}
	add("rapid7-dnsany", sub)

	// caida-dnsnames: addresses CAIDA resolved names for.
	caida := CAIDA(u, rng).Addrs.Addrs()
	sub = sub[:0:0]
	for _, a := range caida {
		if rng.Intn(3) != 0 {
			sub = append(sub, a)
		}
	}
	add("caida-dnsnames", sub)

	// ct: certificate transparency — named hosting servers again: largely
	// the same hosts the forward-DNS scans see, so resample the same fdns
	// data (heavy overlap is the point; TUM is not independent of fdns).
	ct := make([]netip.Addr, 0, len(fdns)*3/5)
	for _, a := range fdns {
		if rng.Intn(5) < 3 {
			ct = append(ct, a)
		}
	}
	add("ct", ct)

	// traceroute: router interface addresses from public traceroute
	// collections — infrastructure space.
	var rtr []netip.Addr
	for _, as := range u.ASes() {
		if as.Tier > 2 || len(as.Prefixes) == 0 {
			continue
		}
		for i := 0; i < scaled(3, scale); i++ {
			sub := ipv6.NthSubprefix(as.InfraPrefix, 64, rng.Uint64()&mask64(32))
			rtr = append(rtr, ipv6.WithIID(sub.Addr(), 1))
		}
	}
	add("traceroute-v6", rtr)

	// openipmap + alexa-country: tiny curated lists.
	var curated []netip.Addr
	for i := 0; i < scaled(6, scale); i++ {
		as := u.RandomAS(rng, netsim.KindHosting)
		if as == nil {
			break
		}
		if lan, ok := u.RandomLAN(rng, as); ok {
			curated = append(curated, ipv6.WithIID(lan.Addr(), 1))
		}
	}
	add("openipmap+alexa", curated)

	// zonefiles: enterprise zones (fiebig-like but shallower).
	zones := Fiebig(u, rand.New(rand.NewSource(rng.Int63())), Scale(float64(scale)*0.3)).Addrs.Addrs()
	add("zonefiles", zones)

	list := List{Name: "tum", Method: "Collection", Addrs: ipv6.NewSet(union)}
	return list, subsets
}
