package seeds

import (
	"math/rand"
	"testing"

	"beholder/internal/addrclass"
	"beholder/internal/ipv6"
	"beholder/internal/netsim"
)

func universe(t testing.TB) *netsim.Universe {
	t.Helper()
	return netsim.NewUniverse(netsim.TestConfig(99))
}

func TestCAIDAStructure(t *testing.T) {
	u := universe(t)
	l := CAIDA(u, rand.New(rand.NewSource(1)))
	if l.Addrs.Len() == 0 {
		t.Fatal("empty caida list")
	}
	// Roughly two addresses per advertised prefix (dedup may collapse a
	// few), and the IID mix near half lowbyte, half random (Table 1).
	nPfx := u.Table().NumPrefixes()
	if l.Addrs.Len() < nPfx || l.Addrs.Len() > 2*nPfx {
		t.Errorf("caida size %d for %d prefixes", l.Addrs.Len(), nPfx)
	}
	c := addrclass.ClassifySet(l.Addrs)
	low := c.Fraction(addrclass.ClassLowByte)
	if low < 0.35 || low > 0.65 {
		t.Errorf("caida lowbyte fraction %.2f, want ~0.5", low)
	}
	if c.ByClass[addrclass.ClassEUI64] > l.Addrs.Len()/100 {
		t.Errorf("caida EUI-64 count %d, want ~0", c.ByClass[addrclass.ClassEUI64])
	}
	// All caida seeds are routed by construction.
	for _, a := range l.Addrs.Addrs()[:min(200, l.Addrs.Len())] {
		if !u.Table().Routed(a) {
			t.Fatalf("caida seed %s unrouted", a)
		}
	}
}

func TestFiebigDenseAndPartlyUnrouted(t *testing.T) {
	u := universe(t)
	l := Fiebig(u, rand.New(rand.NewSource(2)), 0.5)
	if l.Addrs.Len() == 0 {
		t.Fatal("empty fiebig list")
	}
	unrouted := 0
	for _, a := range l.Addrs.Addrs() {
		if !u.Table().Routed(a) {
			unrouted++
		}
	}
	if unrouted == 0 {
		t.Error("fiebig should include unrouted infrastructure PTR space")
	}
	// Density: rDNS walks enumerate entire LANs, so a large share of
	// addresses share their /64 with another seed (DPL > 64).
	dpls := ipv6.DPLs(l.Addrs)
	dense := 0
	for _, d := range dpls {
		if d > 64 {
			dense++
		}
	}
	if float64(dense) < 0.4*float64(len(dpls)) {
		t.Errorf("fiebig same-/64 density %.2f, want >= 0.4", float64(dense)/float64(len(dpls)))
	}
}

func TestFDNSHas6to4AndServiceIIDs(t *testing.T) {
	u := universe(t)
	l := FDNS(u, rand.New(rand.NewSource(3)), 0.5)
	sixTo4 := 0
	for _, a := range l.Addrs.Addrs() {
		if ipv6.Is6to4(a) {
			sixTo4++
		}
	}
	if sixTo4 == 0 {
		t.Error("fdns lacks 6to4 pollution")
	}
	c := addrclass.ClassifySet(l.Addrs)
	if c.ByClass[addrclass.ClassLowByte] == 0 {
		t.Error("fdns lacks lowbyte servers")
	}
	if c.ByClass[addrclass.ClassEmbedPort]+c.ByClass[addrclass.ClassEmbedIPv4] == 0 {
		t.Error("fdns lacks service-patterned IIDs")
	}
}

func TestCDNPublishesOnlyPrefixes(t *testing.T) {
	u := universe(t)
	k32 := CDN(u, rand.New(rand.NewSource(4)), 1, 32)
	k256 := CDN(u, rand.New(rand.NewSource(4)), 1, 256)
	if k32.Addrs != nil {
		t.Error("cdn must not publish client addresses")
	}
	if k32.Prefixes.Len() == 0 {
		t.Fatal("cdn-k32 empty (increase scale)")
	}
	// Larger k → stronger anonymity → no more aggregates than smaller k,
	// and no aggregate may be longer than /64.
	if k256.Prefixes.Len() > k32.Prefixes.Len() {
		t.Errorf("k256 aggregates %d > k32 %d", k256.Prefixes.Len(), k32.Prefixes.Len())
	}
	for _, p := range k32.Prefixes.Prefixes() {
		if p.Bits() > 64 {
			t.Errorf("aggregate %s longer than /64", p)
		}
	}
}

func TestSixGenConcentratesNearSeeds(t *testing.T) {
	u := universe(t)
	l := SixGen(u, rand.New(rand.NewSource(5)), 0.5)
	if l.Addrs.Len() == 0 {
		t.Fatal("empty 6gen list")
	}
	// Generated targets live overwhelmingly in routed space (the inputs
	// were routed addresses and loose wildcards stay within their high
	// nybble pattern).
	routed := 0
	for _, a := range l.Addrs.Addrs() {
		if u.Table().Routed(a) {
			routed++
		}
	}
	if frac := float64(routed) / float64(l.Addrs.Len()); frac < 0.8 {
		t.Errorf("6gen routed fraction %.2f", frac)
	}
}

func TestTUMUnionAndSubsets(t *testing.T) {
	u := universe(t)
	l, subsets := TUM(u, rand.New(rand.NewSource(6)), 0.5)
	if len(subsets) < 5 {
		t.Fatalf("only %d TUM subsets", len(subsets))
	}
	total := 0
	for _, s := range subsets {
		if s.Count < 0 {
			t.Errorf("subset %s negative count", s.Name)
		}
		total += s.Count
	}
	if l.Addrs.Len() >= total {
		t.Errorf("union %d not smaller than subset sum %d (no overlap?)", l.Addrs.Len(), total)
	}
	if l.Addrs.Len() == 0 {
		t.Fatal("empty tum union")
	}
}

func TestRandomControl(t *testing.T) {
	u := universe(t)
	l := Random(u, rand.New(rand.NewSource(7)), 5000)
	if l.Addrs.Len() < 4900 {
		t.Fatalf("random list %d of 5000 (unexpected dedup)", l.Addrs.Len())
	}
	for _, a := range l.Addrs.Addrs()[:200] {
		if !u.Table().Routed(a) {
			t.Fatalf("random seed %s unrouted", a)
		}
	}
	// Almost no lowbyte (Table 1: 0.36%).
	c := addrclass.ClassifySet(l.Addrs)
	if f := c.Fraction(addrclass.ClassLowByte); f > 0.02 {
		t.Errorf("random lowbyte fraction %.3f", f)
	}
}

func TestAllDeterminism(t *testing.T) {
	u := universe(t)
	a, _ := All(u, 11, 0.25)
	b, _ := All(u, 11, 0.25)
	for name, la := range a {
		lb := b[name]
		sizeA, sizeB := 0, 0
		if la.Addrs != nil {
			sizeA, sizeB = la.Addrs.Len(), lb.Addrs.Len()
		} else {
			sizeA, sizeB = la.Prefixes.Len(), lb.Prefixes.Len()
		}
		if sizeA != sizeB {
			t.Errorf("%s: %d vs %d for same seed", name, sizeA, sizeB)
		}
	}
	c, _ := All(u, 12, 0.25)
	if c["random"].Addrs.Len() == a["random"].Addrs.Len() &&
		c["random"].Addrs.At(0) == a["random"].Addrs.At(0) {
		t.Error("different seeds produced identical random lists")
	}
}

func TestAllListsPopulated(t *testing.T) {
	u := universe(t)
	lists, subsets := All(u, 13, 0.25)
	for _, name := range []string{"caida", "fiebig", "fdns_any", "dnsdb", "cdn-k32", "cdn-k256", "6gen", "tum", "random"} {
		l, ok := lists[name]
		if !ok {
			t.Errorf("missing list %s", name)
			continue
		}
		size := 0
		if l.Addrs != nil {
			size = l.Addrs.Len()
		}
		if l.Prefixes != nil {
			size += l.Prefixes.Len()
		}
		if size == 0 {
			t.Errorf("list %s empty", name)
		}
	}
	if len(subsets) == 0 {
		t.Error("no TUM subsets")
	}
	if got := len(IndependentNames()); got != 6 {
		t.Errorf("independent names = %d", got)
	}
	if got := Names(lists); len(got) != len(lists) {
		t.Errorf("Names returned %d of %d", len(got), len(lists))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
