// Package seeds synthesizes the study's seven seed lists plus the random
// control from the simulated Internet's ground truth, mimicking how each
// real source samples the address space (Section 3.2, Table 1):
//
//   - caida:    BGP-derived — ::1 plus one random address per advertised prefix
//   - fiebig:   reverse-DNS walking — exhaustive host enumeration in the
//     enterprise/university networks that maintain ip6.arpa, including
//     unadvertised infrastructure space
//   - fdns_any: forward DNS — named servers in hosting networks, heavy in
//     lowbyte and service-patterned IIDs, polluted with 6to4
//   - dnsdb:    passive DNS — a broad, shallower mix across network kinds
//   - cdn:      kIP-anonymized aggregates of WWW client /64 activity
//   - 6gen:     6Gen loose-mode generation from CAIDA-derived inputs
//   - tum:      a collection-of-collections overlapping fdns and caida
//   - random:   uniformly random addresses within BGP-routed space
//
// Every generator is deterministic given its *rand.Rand, so seed lists are
// reproducible campaign artifacts.
package seeds

import (
	"math/rand"
	"net/netip"

	"beholder/internal/ipv6"
	"beholder/internal/kip"
	"beholder/internal/netsim"
	"beholder/internal/sixgen"
)

// List is one seed source's output: addresses, prefixes, or both (the CDN
// source publishes only anonymized prefixes).
type List struct {
	Name     string
	Method   string
	Addrs    *ipv6.Set
	Prefixes *ipv6.PrefixSet
}

// Scale multiplies the default sizing of every generated list. Tests use
// fractions; campaign benchmarks use 1.0 or above.
type Scale float64

// CAIDA builds the BGP-derived list: the ::1 address plus one
// random-IID address inside every advertised prefix of length at most 48,
// matching CAIDA's probed-target construction (half lowbyte, half random
// in Table 1).
func CAIDA(u *netsim.Universe, rng *rand.Rand) List {
	var addrs []netip.Addr
	for _, rt := range u.Table().Prefixes() {
		if rt.Prefix.Bits() > 48 {
			continue
		}
		addrs = append(addrs,
			ipv6.WithIID(rt.Prefix.Addr(), 1),
			ipv6.WithIID(ipv6.NthSubprefix(rt.Prefix, 64, rng.Uint64()&mask64(64-rt.Prefix.Bits())).Addr(), rng.Uint64()),
		)
	}
	return List{Name: "caida", Method: "BGP-derived", Addrs: ipv6.NewSet(addrs)}
}

func mask64(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}

// Fiebig builds the reverse-DNS list: dense per-LAN host enumerations in
// enterprise and university networks (gateways, servers, EUI-64
// workstations, dynamic privacy entries), plus PTR-visible router
// addresses in unadvertised RIR infrastructure space — the source of the
// list's large unrouted fraction (Table 5).
func Fiebig(u *netsim.Universe, rng *rand.Rand, scale Scale) List {
	var addrs []netip.Addr
	lansPerAS := scaled(30, scale)
	for _, as := range u.ASes() {
		if as.Kind != netsim.KindEnterprise && as.Kind != netsim.KindUniversity {
			continue
		}
		// rDNS walking enumerates whole zones: many /64s beneath each
		// delegated /56, densely packed (the source of fiebig's high-DPL
		// profile in Figure 3a).
		for z := 0; z < lansPerAS/6+1; z++ {
			zone, ok := u.RandomSubnetUnder(rng, as, as.Prefixes[rng.Intn(len(as.Prefixes))], 56)
			if !ok {
				continue
			}
			for i := 0; i < 8; i++ {
				lan, ok := u.RandomSubnetUnder(rng, as, zone, 64)
				if !ok {
					continue
				}
				addrs = append(addrs, u.GatewayAddr(lan, as))
				for s, n := 1, u.ServerCount(lan, as); s <= n; s++ {
					addrs = append(addrs, ipv6.WithIID(lan.Addr(), uint64(s)))
				}
				for e, n := 0, u.EUIHostCount(lan, as); e < n; e++ {
					addrs = append(addrs, u.EUIHostAddr(lan, as, e))
				}
				// Dynamic DNS entries for privacy-addressed clients.
				for c := rng.Intn(6); c > 0; c-- {
					addrs = append(addrs, ipv6.WithIID(lan.Addr(), rng.Uint64()))
				}
			}
		}
		// PTR records covering unadvertised router space.
		if as.InfraRIR {
			for i := 0; i < lansPerAS/2; i++ {
				sub := ipv6.NthSubprefix(as.InfraPrefix, 64, rng.Uint64()&mask64(32))
				addrs = append(addrs, ipv6.WithIID(sub.Addr(), 1))
			}
		}
	}
	return List{Name: "fiebig", Method: "Reverse DNS", Addrs: ipv6.NewSet(addrs)}
}

// FDNS builds the forward-DNS (Rapid7 Sonar style) list: named hosting
// servers with lowbyte and service-port IIDs, embedded-IPv4 vanity
// addresses, a random-IID minority, and a notorious 6to4 component.
func FDNS(u *netsim.Universe, rng *rand.Rand, scale Scale) List {
	var addrs []netip.Addr
	popsPerAS := scaled(3, scale)
	lansPerPop := 14
	for _, as := range u.ASes() {
		if as.Kind != netsim.KindHosting {
			continue
		}
		// Named infrastructure clusters: a few POP-level /48s hold many
		// active /64s each, the clustering that separates the zn
		// transformation levels (Table 3).
		for p := 0; p < popsPerAS; p++ {
			pop, ok := u.RandomSubnetUnder(rng, as, as.Prefixes[rng.Intn(len(as.Prefixes))], 48)
			if !ok {
				continue
			}
			for i := 0; i < lansPerPop; i++ {
				lan, ok := u.RandomSubnetUnder(rng, as, pop, 64)
				if !ok {
					continue
				}
				addrs = fdnsLANAddrs(u, rng, as, lan, addrs)
			}
		}
	}
	// 6to4: DNS is full of 2002::/16 names that are unrouted in the
	// native BGP table.
	for i, n := 0, scaled(2000, scale); i < n; i++ {
		hi := uint64(0x2002)<<48 | uint64(rng.Uint32())<<16
		addrs = append(addrs, ipv6.WithIID(ipv6.U128{Hi: hi, Lo: 0}.Addr(), 1))
	}
	return List{Name: "fdns_any", Method: "Fwd. DNS", Addrs: ipv6.NewSet(addrs)}
}

// fdnsLANAddrs emits the DNS-named addresses of one hosting LAN: lowbyte
// servers, service-port and embedded-IPv4 vanity names, and a privacy
// minority.
func fdnsLANAddrs(u *netsim.Universe, rng *rand.Rand, as *netsim.AS, lan netip.Prefix, addrs []netip.Addr) []netip.Addr {
	n := u.ServerCount(lan, as)
	for s := 1; s <= n; s++ {
		addrs = append(addrs, ipv6.WithIID(lan.Addr(), uint64(s)))
	}
	if n > 0 {
		if rng.Intn(3) == 0 {
			addrs = append(addrs, ipv6.WithIID(lan.Addr(), 0x80))
		}
		if rng.Intn(5) == 0 {
			addrs = append(addrs, ipv6.WithIID(lan.Addr(), 0x443))
		}
		if rng.Intn(6) == 0 {
			v4 := uint64(0xc0a80000 | rng.Intn(1<<16)) // 192.168.x.y embedded
			addrs = append(addrs, ipv6.WithIID(lan.Addr(), v4))
		}
	}
	if rng.Intn(4) == 0 {
		addrs = append(addrs, ipv6.WithIID(lan.Addr(), rng.Uint64()))
	}
	return addrs
}

// DNSDB builds the passive-DNS list: a broad but shallow mix over every
// edge kind, giving the widest ASN coverage per address of the DNS
// sources.
func DNSDB(u *netsim.Universe, rng *rand.Rand, scale Scale) List {
	var addrs []netip.Addr
	lansPerAS := scaled(8, scale)
	for _, as := range u.ASes() {
		if as.Tier != 3 {
			continue
		}
		for i := 0; i < lansPerAS; i++ {
			lan, ok := u.RandomLAN(rng, as)
			if !ok {
				continue
			}
			switch n := u.ServerCount(lan, as); {
			case n > 0:
				addrs = append(addrs, ipv6.WithIID(lan.Addr(), uint64(1+rng.Intn(n))))
			default:
				// Client LANs show up in AAAA answers with privacy IIDs.
				addrs = append(addrs, ipv6.WithIID(lan.Addr(), rng.Uint64()))
			}
			if m := u.EUIHostCount(lan, as); m > 0 && rng.Intn(8) == 0 {
				addrs = append(addrs, u.EUIHostAddr(lan, as, rng.Intn(m)))
			}
		}
	}
	return List{Name: "dnsdb", Method: "Passive DNS", Addrs: ipv6.NewSet(addrs)}
}

// CDNObservations samples WWW client /64 activity the way a CDN's edge
// observes it: per eyeball LAN, activity in a random subset of the
// measurement window's intervals, weighted by the LAN's client count.
func CDNObservations(u *netsim.Universe, rng *rand.Rand, scale Scale, numIntervals int) []kip.Observation {
	var obs []kip.Observation
	observe := func(lan netip.Prefix) {
		// Home networks are mostly always-on: active in at least half
		// the window's intervals.
		activity := numIntervals/2 + rng.Intn(numIntervals/2+1)
		for j := 0; j < activity; j++ {
			obs = append(obs, kip.Observation{LAN: lan, Interval: rng.Intn(numIntervals)})
		}
	}
	lansPerAS := scaled(60, scale)
	for _, as := range u.ASes() {
		if as.Kind != netsim.KindEyeballISP {
			continue
		}
		if as.CPEOUIIndex > 0 {
			// The large broadband ISPs dominate the WWW client
			// population, and their subscribers fill whole neighborhoods:
			// dense activity within /56 aggregation zones is what lets
			// kIP publish long (near-/64) aggregates for them.
			zones := scaled(400, scale)
			for z := 0; z < zones; z++ {
				zone, ok := u.RandomSubnetUnder(rng, as, as.Prefixes[rng.Intn(len(as.Prefixes))], 56)
				if !ok {
					continue
				}
				for i := 0; i < 30; i++ {
					if lan, ok := u.RandomSubnetUnder(rng, as, zone, 64); ok {
						observe(lan)
					}
				}
			}
			continue
		}
		for i := 0; i < lansPerAS; i++ {
			if lan, ok := u.RandomLAN(rng, as); ok {
				observe(lan)
			}
		}
	}
	return obs
}

// CDN builds the kIP-anonymized client prefix list for the paper's
// anonymity parameter k (32 or 256). Because the simulated client
// population is orders of magnitude smaller than a production CDN's, the
// effective anonymity-set size is scaled down proportionally (preserving
// the 8x ratio between the two lists); the published lists keep the
// paper's names.
func CDN(u *netsim.Universe, rng *rand.Rand, scale Scale, k int) List {
	const intervals = 24
	obs := CDNObservations(u, rng, scale, intervals)
	aggs := kip.Aggregate(obs, intervals, kip.Params{K: effectiveK(k, scale), Percentile: 50})
	name := "cdn-k32"
	if k >= 256 {
		name = "cdn-k256"
	}
	return List{Name: name, Method: "kIP anonymization", Prefixes: ipv6.NewPrefixSet(aggs)}
}

// effectiveK maps the paper's k to the simulation's population scale:
// k/8 at scale 1, floor 2, preserving k256/k32 = 8x.
func effectiveK(paperK int, scale Scale) int {
	k := int(float64(paperK) * float64(scale) / 16)
	if k < 2 {
		k = 2
	}
	return k
}

// SixGen builds the generative list: 6Gen in loose clustering mode, fed
// (as the paper did) with CAIDA probe destinations plus interface
// addresses those probes would discover — approximated here by LAN
// gateways sampled across the simulated topology.
func SixGen(u *netsim.Universe, rng *rand.Rand, scale Scale) List {
	caida := CAIDA(u, rng)
	input := append([]netip.Addr{}, caida.Addrs.Addrs()...)
	for _, as := range u.ASes() {
		if as.Tier != 3 {
			continue
		}
		for i := 0; i < scaled(4, scale); i++ {
			if lan, ok := u.RandomLAN(rng, as); ok {
				input = append(input, u.GatewayAddr(lan, as))
			}
		}
	}
	budget := scaled(12, scale) * u.Table().NumPrefixes()
	got := sixgen.Generate(input, sixgen.DefaultConfig(budget))
	return List{Name: "6gen", Method: "Generative", Addrs: ipv6.NewSet(got)}
}

// Random builds the control list: n random addresses drawn uniformly from
// the advertised prefixes (random prefix, random IID).
func Random(u *netsim.Universe, rng *rand.Rand, n int) List {
	routes := u.Table().Prefixes()
	addrs := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		rt := routes[rng.Intn(len(routes))]
		spare := 64 - rt.Prefix.Bits()
		sub := ipv6.NthSubprefix(rt.Prefix, 64, rng.Uint64()&mask64(spare))
		addrs = append(addrs, ipv6.WithIID(sub.Addr(), rng.Uint64()))
	}
	return List{Name: "random", Method: "Random", Addrs: ipv6.NewSet(addrs)}
}

func scaled(base int, scale Scale) int {
	n := int(float64(base) * float64(scale))
	if n < 1 {
		n = 1
	}
	return n
}
