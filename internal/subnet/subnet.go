// Package subnet implements Section 6 of the paper: inferring IPv6 subnet
// boundaries from traced paths.
//
// Two techniques are provided. discoverByPathDiv compares paths toward
// pairs of targets: a significant common subpath (the LCS) followed by
// significant divergent suffixes (the DS) is taken as evidence the
// targets sit in different subnets, and the pair's discriminating prefix
// length (DPL) lower-bounds both subnets' prefix lengths. The "Identity
// Association hack" exploits the convention that /64 gateway routers
// source ICMPv6 from the ::1 address of the LAN: a last hop ::1 sharing
// the target's top 64 bits pins an exact /64.
//
// ASN bookkeeping follows the paper's augmentations: hop ASNs resolve
// through RIR allocations when routers are numbered from unadvertised
// space, and "equivalent ASN" groups unify organizations originating
// customer and infrastructure prefixes from distinct ASNs.
package subnet

import (
	"net/netip"
	"sort"

	"beholder/internal/bgp"
	"beholder/internal/ipv6"
	"beholder/internal/probe"
)

// Params are discoverByPathDiv's acceptance knobs, named after the
// paper's parameter list in Section 6.
type Params struct {
	// MinLCS is c: the minimum length of the last common subpath, with
	// no missing hops allowed inside it.
	MinLCS int
	// LCSTargetASNHops is C: at least this many LCS hops must resolve to
	// the target's ASN.
	LCSTargetASNHops int
	// LastHopNotVantageASN is A: the hop immediately before divergence
	// must be outside the vantage's ASN.
	LastHopNotVantageASN bool
	// MinDS is s: the minimum length of each divergent suffix. The
	// paper's z=0 (no empty DS) is implied by MinDS >= 1.
	MinDS int
	// DSTargetASNHops is S: at least this many hops of each divergent
	// suffix must resolve to the target's ASN.
	DSTargetASNHops int
	// RequireSameTargetASN is T: both targets must share an origin ASN
	// (modulo equivalent-ASN groups).
	RequireSameTargetASN bool
}

// DefaultParams returns the paper's configuration:
// c=2, C=1, A=1, s=1, S=1, z=0, T=1.
func DefaultParams() Params {
	return Params{
		MinLCS:               2,
		LCSTargetASNHops:     1,
		LastHopNotVantageASN: true,
		MinDS:                1,
		DSTargetASNHops:      1,
		RequireSameTargetASN: true,
	}
}

// Candidate is one inferred subnet: a lower bound on the prefix length
// of the subnet containing Target.
type Candidate struct {
	Prefix netip.Prefix // Target masked to MinLen bits
	MinLen int          // inferred minimum prefix length
	Target netip.Addr
	IAHack bool // pinned exactly by the /64 identity-association hack
}

// Result summarizes a discovery run.
type Result struct {
	// Candidates holds the deduplicated inferred subnets (one per
	// distinct Prefix), path-divergence and IA-hack combined.
	Candidates []Candidate
	// IAHackCount is the number of traces whose last hop pinned an exact
	// /64 (plotted above 64 in Figure 8b).
	IAHackCount int
	// PairsExamined and PairsAccepted count the neighbor-pair divergence
	// tests.
	PairsExamined, PairsAccepted int
}

// Discover runs both inference techniques over the traces in store.
// vantageASN is the origin ASN of the vantage's network (hops inside it
// never witness divergence). Targets are compared with their sorted
// neighbors: the nearest address pairs carry the highest DPLs and hence
// the tightest subnet bounds, and more distant pairs can only yield
// looser bounds for the same subnets.
func Discover(store *probe.Store, table *bgp.Table, vantageASN uint32, p Params) Result {
	traces := store.Traces()
	sort.Slice(traces, func(i, j int) bool { return traces[i].Target.Less(traces[j].Target) })

	var res Result
	// bound[target] = best (highest) inferred minimum prefix length.
	bound := make(map[netip.Addr]int)

	for i := 0; i+1 < len(traces); i++ {
		a, b := traces[i], traces[i+1]
		res.PairsExamined++
		if dpl, ok := divergent(a, b, table, vantageASN, p); ok {
			res.PairsAccepted++
			if dpl > 64 {
				dpl = 64 // subnets no more specific than /64 at the edge
			}
			if dpl > bound[a.Target] {
				bound[a.Target] = dpl
			}
			if dpl > bound[b.Target] {
				bound[b.Target] = dpl
			}
		}
	}

	// IA hack: last hop is the target LAN's ::1 gateway.
	for _, t := range traces {
		if lanPinned(t) {
			res.IAHackCount++
			if bound[t.Target] < 64 {
				bound[t.Target] = 64
			}
			// Record exact /64 candidates distinctly.
		}
	}

	seen := make(map[netip.Prefix]bool)
	for target, minLen := range bound {
		pfx := ipv6.Extend(netip.PrefixFrom(target, 128), minLen)
		if seen[pfx] {
			continue
		}
		seen[pfx] = true
		res.Candidates = append(res.Candidates, Candidate{
			Prefix: pfx,
			MinLen: minLen,
			Target: target,
			IAHack: minLen == 64 && lanPinnedAddr(store, target),
		})
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		if res.Candidates[i].Prefix.Addr() != res.Candidates[j].Prefix.Addr() {
			return res.Candidates[i].Prefix.Addr().Less(res.Candidates[j].Prefix.Addr())
		}
		return res.Candidates[i].Prefix.Bits() < res.Candidates[j].Prefix.Bits()
	})
	return res
}

// lanPinned reports whether the trace's deepest hop is the ::1 gateway of
// the target's own /64.
func lanPinned(t *probe.Trace) bool {
	hops := t.SortedHops()
	if len(hops) == 0 {
		return false
	}
	last := hops[len(hops)-1].Addr
	return ipv6.IID(last) == 1 && ipv6.SubnetPrefix64(last) == ipv6.SubnetPrefix64(t.Target)
}

func lanPinnedAddr(store *probe.Store, target netip.Addr) bool {
	t := store.Trace(target)
	return t != nil && lanPinned(t)
}

// divergent tests one target pair per discoverByPathDiv's parameters,
// returning the pair's DPL when accepted.
func divergent(a, b *probe.Trace, table *bgp.Table, vantageASN uint32, p Params) (int, bool) {
	targetASNA := table.Origin(a.Target)
	targetASNB := table.Origin(b.Target)
	if targetASNA == 0 || targetASNB == 0 {
		return 0, false
	}
	if p.RequireSameTargetASN && !table.SameOrg(targetASNA, targetASNB) {
		return 0, false
	}

	// Locate the divergence TTL: the first TTL where both paths answered
	// with different addresses.
	hopsA := hopMap(a)
	hopsB := hopMap(b)
	maxTTL := maxKey(hopsA)
	if m := maxKey(hopsB); m > maxTTL {
		maxTTL = m
	}
	div := -1
	for ttl := 1; ttl <= maxTTL; ttl++ {
		ha, okA := hopsA[ttl]
		hb, okB := hopsB[ttl]
		if okA && okB && ha != hb {
			div = ttl
			break
		}
	}
	if div < 0 {
		return 0, false
	}

	// LCS: contiguous identical responsive hops immediately before the
	// divergence; missing hops break it.
	lcs := 0
	var lcsHops []netip.Addr
	for ttl := div - 1; ttl >= 1; ttl-- {
		ha, okA := hopsA[ttl]
		hb, okB := hopsB[ttl]
		if !okA || !okB || ha != hb {
			break
		}
		lcs++
		lcsHops = append(lcsHops, ha)
	}
	if lcs < p.MinLCS {
		return 0, false
	}
	if p.LastHopNotVantageASN {
		last := lcsHops[0] // hop at div-1
		if table.SameOrg(table.OriginAny(last), vantageASN) {
			return 0, false
		}
	}
	if countASNHops(lcsHops, table, targetASNA) < p.LCSTargetASNHops {
		return 0, false
	}

	// Divergent suffixes: responsive hops from the divergence onward.
	dsA := suffixHops(hopsA, div, maxTTL)
	dsB := suffixHops(hopsB, div, maxTTL)
	if len(dsA) < p.MinDS || len(dsB) < p.MinDS {
		return 0, false
	}
	if countASNHops(dsA, table, targetASNA) < p.DSTargetASNHops {
		return 0, false
	}
	if countASNHops(dsB, table, targetASNB) < p.DSTargetASNHops {
		return 0, false
	}

	return ipv6.PairDPL(a.Target, b.Target), true
}

func hopMap(t *probe.Trace) map[int]netip.Addr {
	m := make(map[int]netip.Addr, len(t.Hops))
	for _, h := range t.Hops {
		m[int(h.TTL)] = h.Addr
	}
	return m
}

func maxKey(m map[int]netip.Addr) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

func suffixHops(m map[int]netip.Addr, from, to int) []netip.Addr {
	var out []netip.Addr
	for ttl := from; ttl <= to; ttl++ {
		if a, ok := m[ttl]; ok {
			out = append(out, a)
		}
	}
	return out
}

func countASNHops(hops []netip.Addr, table *bgp.Table, asn uint32) int {
	n := 0
	for _, h := range hops {
		if hopASN := table.OriginAny(h); hopASN != 0 && table.SameOrg(hopASN, asn) {
			n++
		}
	}
	return n
}
