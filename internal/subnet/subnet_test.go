package subnet

import (
	"net/netip"
	"testing"

	"beholder/internal/bgp"
	"beholder/internal/ipv6"
	"beholder/internal/probe"
)

// buildTable creates a small RIB: one target AS (100) with a /32, the
// vantage AS (10), and a transit AS (50) numbering its routers from RIR
// space.
func buildTable() *bgp.Table {
	t := bgp.NewTable()
	t.Announce(ipv6.MustPrefix("2400:100::/32"), 100)
	t.Announce(ipv6.MustPrefix("2400:10::/32"), 10)
	t.Announce(ipv6.MustPrefix("2400:50::/32"), 50)
	t.AddRIR(ipv6.MustPrefix("2a00:50::/32"), 50)
	return t
}

// mkTrace assembles a trace with the given hops (ttl 1..n in order).
func mkTrace(store *probe.Store, target string, hops ...string) {
	for i, h := range hops {
		if h == "" {
			continue // missing hop
		}
		store.Add(probe.Reply{
			From:           ipv6.MustAddr(h),
			Target:         ipv6.MustAddr(target),
			Kind:           probe.KindTimeExceeded,
			TTL:            uint8(i + 1),
			StateRecovered: true,
		})
	}
}

func TestDivergentPairAccepted(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Two targets in AS 100, sharing three hops (one inside the target
	// AS), then diverging inside the target AS.
	mkTrace(store, "2400:100:0:1::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:1::ff")
	mkTrace(store, "2400:100:0:2::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:2::ff")

	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 1 {
		t.Fatalf("pairs accepted = %d want 1", res.PairsAccepted)
	}
	// Targets differ first within bits 49..64 region: DPL = 63 (they
	// differ at ::1 vs ::2 of the fourth group: bits 49-64). 0:1 vs 0:2
	// differ at bit 63 (0001 vs 0010 in the last 16-bit group).
	want := ipv6.PairDPL(ipv6.MustAddr("2400:100:0:1::1"), ipv6.MustAddr("2400:100:0:2::1"))
	found := false
	for _, c := range res.Candidates {
		if c.MinLen == want {
			found = true
		}
	}
	if !found {
		t.Errorf("no candidate with MinLen %d: %+v", want, res.Candidates)
	}
}

func TestRejectShortLCS(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Divergence at TTL 2: only one common hop.
	mkTrace(store, "2400:100:0:1::1", "2400:10::1", "2400:100:0:1::ff")
	mkTrace(store, "2400:100:0:2::1", "2400:10::1", "2400:100:0:2::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 0 {
		t.Errorf("short LCS accepted")
	}
}

func TestRejectMissingHopInLCS(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Hop 2 missing in one path: LCS contiguity broken (only hop 3
	// common before the divergence at 4).
	mkTrace(store, "2400:100:0:1::1",
		"2400:10::1", "", "2400:100::1", "2400:100:0:1::ff")
	mkTrace(store, "2400:100:0:2::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:2::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 0 {
		t.Errorf("LCS with missing hop accepted")
	}
}

func TestRejectDifferentTargetASN(t *testing.T) {
	table := buildTable()
	table.Announce(ipv6.MustPrefix("2400:200::/32"), 200)
	store := probe.NewStore(true)
	mkTrace(store, "2400:100:0:1::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:1::ff")
	mkTrace(store, "2400:200:0:1::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:200:0:1::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 0 {
		t.Errorf("cross-ASN pair accepted")
	}
}

func TestEquivalentASNsAccepted(t *testing.T) {
	// Same organization, two ASNs: with the equivalence recorded the
	// pair qualifies (the paper's Comcast/Charter case).
	table := buildTable()
	table.Announce(ipv6.MustPrefix("2400:200::/32"), 200)
	table.AddEquivalent(100, 200)
	store := probe.NewStore(true)
	mkTrace(store, "2400:100:ffff::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:ffff::ff")
	mkTrace(store, "2400:200:0:1::1",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:200:0:1::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 1 {
		t.Errorf("equivalent-ASN pair rejected")
	}
}

func TestRIRResolvedLCSHops(t *testing.T) {
	// The common path's target-AS hop is numbered from unadvertised RIR
	// space (2a00:50::/32 belongs to AS 50): without RIR augmentation C=1
	// would fail for AS-50 targets.
	table := buildTable()
	store := probe.NewStore(true)
	mkTrace(store, "2400:50:0:1::1",
		"2400:10::1", "2a00:50::1", "2a00:50::2", "2400:50:0:1::ff")
	mkTrace(store, "2400:50:0:2::1",
		"2400:10::1", "2a00:50::1", "2a00:50::2", "2400:50:0:2::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 1 {
		t.Errorf("RIR-numbered LCS rejected: %+v", res)
	}
}

func TestRejectLastLCSHopInVantageAS(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// All common hops inside the vantage AS (10): divergence right at
	// the vantage edge must not count (A=1).
	mkTrace(store, "2400:100:0:1::1",
		"2400:10::1", "2400:10::2", "2400:100:0:1::ff")
	mkTrace(store, "2400:100:0:2::1",
		"2400:10::1", "2400:10::2", "2400:100:0:2::ff")
	res := Discover(store, table, 10, DefaultParams())
	if res.PairsAccepted != 0 {
		t.Errorf("vantage-AS divergence accepted")
	}
}

func TestIAHack(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Last hop is the ::1 gateway of the target's own /64.
	mkTrace(store, "2400:100:0:1:1234:5678:1234:5678",
		"2400:10::1", "2400:50::1", "2400:100:0:1::1")
	res := Discover(store, table, 10, DefaultParams())
	if res.IAHackCount != 1 {
		t.Fatalf("IA hack count = %d", res.IAHackCount)
	}
	found := false
	for _, c := range res.Candidates {
		if c.IAHack && c.Prefix == ipv6.MustPrefix("2400:100:0:1::/64") {
			found = true
		}
	}
	if !found {
		t.Errorf("no exact /64 candidate: %+v", res.Candidates)
	}
}

func TestIAHackRequiresMatchingPrefix(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Last hop ::1 but in a different /64: not pinned.
	mkTrace(store, "2400:100:0:1:1234:5678:1234:5678",
		"2400:10::1", "2400:50::1", "2400:100:0:2::1")
	res := Discover(store, table, 10, DefaultParams())
	if res.IAHackCount != 0 {
		t.Errorf("IA hack misfired")
	}
}

func TestValidate(t *testing.T) {
	truth := []netip.Prefix{
		ipv6.MustPrefix("2400:100:0:1::/64"),
		ipv6.MustPrefix("2400:100:a::/48"),
		ipv6.MustPrefix("2400:100:b::/48"),
	}
	cands := []Candidate{
		{Prefix: ipv6.MustPrefix("2400:100:0:1::/64"), MinLen: 64}, // exact
		{Prefix: ipv6.MustPrefix("2400:100:a:0::/56"), MinLen: 56}, // more specific
		{Prefix: ipv6.MustPrefix("2400:100:b::/47"), MinLen: 47},   // short by one
		{Prefix: ipv6.MustPrefix("2620:99::/48"), MinLen: 48},      // outside truth
	}
	rep := Validate(cands, truth)
	if rep.ExactMatches != 1 {
		t.Errorf("exact = %d", rep.ExactMatches)
	}
	if rep.MoreSpecifics != 1 {
		t.Errorf("more specifics = %d", rep.MoreSpecifics)
	}
	if rep.ShortByOne != 1 {
		t.Errorf("short by one = %d", rep.ShortByOne)
	}
	if rep.TruthCovered != 2 {
		t.Errorf("truth covered = %d", rep.TruthCovered)
	}
}

func TestStratifiedSample(t *testing.T) {
	truth := []netip.Prefix{
		ipv6.MustPrefix("2400:100:0:1::/64"),
		ipv6.MustPrefix("2400:100:0:2::/64"),
	}
	targets := []netip.Addr{
		ipv6.MustAddr("2400:100:0:1::a"),
		ipv6.MustAddr("2400:100:0:1::b"), // same truth subnet: dropped
		ipv6.MustAddr("2400:100:0:2::a"),
		ipv6.MustAddr("2620:1::1"), // outside truth: dropped
	}
	got := StratifiedSample(targets, truth)
	if len(got) != 2 {
		t.Fatalf("sample = %v", got)
	}
}

func TestCandidateDPLCappedAt64(t *testing.T) {
	table := buildTable()
	store := probe.NewStore(true)
	// Targets within the same /64 (DPL > 64): candidates must cap at 64.
	mkTrace(store, "2400:100:0:1::a",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:1::fe")
	mkTrace(store, "2400:100:0:1::b",
		"2400:10::1", "2400:50::1", "2400:100::1", "2400:100:0:9::fe")
	res := Discover(store, table, 10, DefaultParams())
	for _, c := range res.Candidates {
		if c.MinLen > 64 {
			t.Errorf("candidate beyond /64: %+v", c)
		}
	}
}
