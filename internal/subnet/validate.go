package subnet

import (
	"net/netip"

	"beholder/internal/ipv6"
)

// ValidationReport compares discovered candidates against ground-truth
// subnets, the way Section 6 validates against ISP interior prefixes.
type ValidationReport struct {
	TruthTotal    int
	Candidates    int
	ExactMatches  int // same base address and prefix length
	MoreSpecifics int // candidate strictly inside a truth subnet
	ShortByOne    int // candidate length one bit short of a truth subnet
	ShortByTwo    int
	TruthCovered  int // truth subnets containing at least one candidate
}

// Validate compares candidates to truth prefixes.
func Validate(cands []Candidate, truth []netip.Prefix) ValidationReport {
	rep := ValidationReport{TruthTotal: len(truth), Candidates: len(cands)}
	var truthTrie ipv6.Trie[netip.Prefix]
	exact := make(map[netip.Prefix]bool, len(truth))
	for _, tp := range truth {
		tp = ipv6.CanonicalPrefix(tp)
		truthTrie.Insert(tp, tp)
		exact[tp] = true
	}
	covered := make(map[netip.Prefix]bool)
	for _, c := range cands {
		if exact[c.Prefix] {
			rep.ExactMatches++
			covered[c.Prefix] = true
			continue
		}
		// Find the longest truth subnet covering the candidate's base.
		covering := truthTrie.Covering(c.Prefix.Addr())
		if len(covering) == 0 {
			continue
		}
		longest := covering[len(covering)-1].Value
		switch {
		case c.Prefix.Bits() > longest.Bits():
			// Candidate strictly inside a truth subnet: that subnet was
			// genuinely found (at finer granularity).
			rep.MoreSpecifics++
			covered[longest] = true
		case longest.Bits()-c.Prefix.Bits() == 1:
			rep.ShortByOne++
		case longest.Bits()-c.Prefix.Bits() == 2:
			rep.ShortByTwo++
		}
	}
	rep.TruthCovered = len(covered)
	return rep
}

// StratifiedSample selects at most one candidate-producing target per
// truth subnet, the paper's technique for bounding inference depth to the
// truth data's granularity: with one trace per truth subnet, targets'
// DPLs cannot exceed the truth subnets' lengths, so discovery cannot
// produce more-specifics.
func StratifiedSample(targets []netip.Addr, truth []netip.Prefix) []netip.Addr {
	var trie ipv6.Trie[int]
	for i, tp := range truth {
		trie.Insert(tp, i)
	}
	taken := make(map[int]bool, len(truth))
	var out []netip.Addr
	for _, t := range targets {
		_, idx, ok := trie.Lookup(t)
		if !ok || taken[idx] {
			continue
		}
		taken[idx] = true
		out = append(out, t)
	}
	return out
}
