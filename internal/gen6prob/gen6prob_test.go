package gen6prob

import (
	"net/netip"
	"testing"

	"beholder/internal/core"
	"beholder/internal/probe"
)

// twoRegionSeeds builds two equally-sized seed regions: eight observed
// /64s under 2001:db8:a::/48 and eight under 2001:db8:b::/48, each with
// the paper's low-byte ::1 interface.
func twoRegionSeeds() []netip.Addr {
	var seeds []netip.Addr
	for _, region := range []string{"a", "b"} {
		for x := 0; x < 8; x++ {
			seeds = append(seeds, netip.MustParseAddr(
				"2001:db8:"+region+":"+string(rune('0'+x))+"::1"))
		}
	}
	return seeds
}

func inPrefix(a netip.Addr, p string) bool {
	return netip.MustParsePrefix(p).Contains(a)
}

func TestDeterministicEpochs(t *testing.T) {
	seeds := twoRegionSeeds()
	cfg := Config{Key: 7}
	a, b := New(seeds, cfg), New(seeds, cfg)
	ba := a.NextEpoch(0, 8, nil)
	bb := b.NextEpoch(0, 8, nil)
	if len(ba) != 8 {
		t.Fatalf("epoch 0 produced %d targets, want 8", len(ba))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("equal sources diverge at target %d: %v vs %v", i, ba[i], bb[i])
		}
	}
	seen := make(map[netip.Addr]struct{})
	for _, x := range ba {
		if _, dup := seen[x]; dup {
			t.Fatalf("duplicate target %v within one epoch", x)
		}
		seen[x] = struct{}{}
		u16 := x.As16()
		if u16[15] != 1 {
			t.Fatalf("candidate %v does not use the low-byte ::1 IID", x)
		}
	}
	c := New(seeds, Config{Key: 8})
	bc := c.NextEpoch(0, 8, nil)
	same := true
	for i := range ba {
		if i >= len(bc) || ba[i] != bc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys generated the identical epoch series")
	}
}

// TestSpendExhaustsAndDedups: with both regions' /64 spaces fully
// observed (every combination of observed nybble values is a seed),
// the source emits each /64 exactly once and then runs dry — spend
// removes emitted leaves from the distribution and exploration has no
// fresh combination left to synthesize.
func TestSpendExhaustsAndDedups(t *testing.T) {
	seeds := twoRegionSeeds()
	s := New(seeds, Config{Key: 11})
	seen := make(map[netip.Addr]struct{})
	total := 0
	for epoch := 0; epoch < 10; epoch++ {
		batch := s.NextEpoch(epoch, 6, nil)
		if len(batch) == 0 {
			break
		}
		for _, a := range batch {
			if _, dup := seen[a]; dup {
				t.Fatalf("target %v emitted twice", a)
			}
			seen[a] = struct{}{}
		}
		total += len(batch)
	}
	if total != len(seeds) {
		t.Fatalf("emitted %d targets from a fully-observed space of %d /64s", total, len(seeds))
	}
	for _, a := range seeds {
		if _, ok := seen[a]; !ok {
			t.Errorf("observed /64 %v never emitted", a)
		}
	}
}

// TestExplorationGeneratesFreshPrefixes: seeds observing nybble values
// {1,2} at two positions cover only two of the four combinations; the
// sampler must synthesize the remaining combinations rather than stop
// at the seed set.
func TestExplorationGeneratesFreshPrefixes(t *testing.T) {
	seeds := []netip.Addr{
		netip.MustParseAddr("2001:db8:0:12::1"),
		netip.MustParseAddr("2001:db8:0:21::1"),
	}
	s := New(seeds, Config{Key: 5})
	seen := make(map[netip.Addr]struct{})
	for epoch := 0; epoch < 6; epoch++ {
		for _, a := range s.NextEpoch(epoch, 4, nil) {
			seen[a] = struct{}{}
		}
	}
	for _, want := range []string{"2001:db8:0:11::1", "2001:db8:0:22::1"} {
		if _, ok := seen[netip.MustParseAddr(want)]; !ok {
			t.Errorf("exploration never generated %s; emitted %v", want, seen)
		}
	}
	for a := range seen {
		if !inPrefix(a, "2001:db8::/48") {
			t.Errorf("generated %v outside the observed /48", a)
		}
	}
}

// TestRewardSteersSampling: a heavy novel-interface reward on one
// region must pull the next epoch's batch into that region even though
// both regions carry equal seed weight.
func TestRewardSteersSampling(t *testing.T) {
	seeds := twoRegionSeeds()
	s := New(seeds, Config{Key: 3, RewardWeight: 1 << 20})
	st := probe.NewStore(true)
	target := netip.MustParseAddr("2001:db8:a:3::1")
	for i := 0; i < 5; i++ {
		hop := netip.MustParseAddr("2400::1").Next()
		for j := 0; j < i; j++ {
			hop = hop.Next()
		}
		st.Add(probe.Reply{
			Kind: probe.KindTimeExceeded, From: hop, Target: target,
			TTL: uint8(i + 1), StateRecovered: true,
		})
	}
	fb := &core.Feedback{Epoch: 0, Store: st}
	batch := s.NextEpoch(1, 8, fb)
	inA := 0
	for _, a := range batch {
		if inPrefix(a, "2001:db8:a::/48") {
			inA++
		}
	}
	if inA < 6 {
		t.Fatalf("reward on region a steered only %d of %d targets there", inA, len(batch))
	}
}

// TestPruneKillsSubtree: an aliased verdict on a region's covering
// prefix removes the whole subtree from the distribution — including
// its exploration frontier — and pruning space never visited is a
// no-op rather than a panic.
func TestPruneKillsSubtree(t *testing.T) {
	var seedsA []netip.Addr
	for _, a := range twoRegionSeeds() {
		if inPrefix(a, "2001:db8:a::/48") {
			seedsA = append(seedsA, a)
		}
	}
	s := New(seedsA, Config{Key: 9})
	fb := &core.Feedback{Epoch: 0, Aliased: []netip.Prefix{
		netip.MustParsePrefix("2001:db8:a::/48"),
		netip.MustParsePrefix("fd00::/16"), // never visited: must no-op
	}}
	if batch := s.NextEpoch(1, 8, fb); len(batch) != 0 {
		t.Fatalf("pruned region still produced %d targets: %v", len(batch), batch)
	}
}

// TestStateRoundtrip: serialize mid-adaptation (after spends, a prune,
// and a reward), restore into a freshly-constructed source, and the
// two must generate identical series from there — and must never
// re-emit a pre-serialization target (the spent flags survive).
func TestStateRoundtrip(t *testing.T) {
	seeds := twoRegionSeeds()
	cfg := Config{Key: 21, RewardWeight: 4096}
	s := New(seeds, cfg)
	before := s.NextEpoch(0, 5, nil)

	st := probe.NewStore(true)
	st.Add(probe.Reply{
		Kind: probe.KindTimeExceeded, From: netip.MustParseAddr("2400::77"),
		Target: netip.MustParseAddr("2001:db8:b:2::1"), TTL: 3, StateRecovered: true,
	})
	fb := &core.Feedback{Epoch: 0, Store: st, Aliased: []netip.Prefix{
		netip.MustParsePrefix("2001:db8:a:1::/64"),
	}}
	before = append(before, s.NextEpoch(1, 3, fb)...)

	blob := s.AppendState(nil)
	r := New(seeds, cfg)
	if err := r.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if again := r.AppendState(nil); string(again) != string(blob) {
		t.Fatal("restore followed by serialize is not byte-identical")
	}
	want := s.NextEpoch(2, 8, nil)
	got := r.NextEpoch(2, 8, nil)
	if len(want) != len(got) {
		t.Fatalf("post-restore epoch sizes differ: %d vs %d", len(want), len(got))
	}
	emitted := make(map[netip.Addr]struct{})
	for _, a := range before {
		emitted[a] = struct{}{}
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-restore series diverges at %d: %v vs %v", i, want[i], got[i])
		}
		if _, dup := emitted[want[i]]; dup {
			t.Fatalf("restored source re-emitted pre-serialization target %v", want[i])
		}
	}
}

func TestRestoreStateErrors(t *testing.T) {
	seeds := twoRegionSeeds()
	s := New(seeds, Config{Key: 2})
	s.NextEpoch(0, 4, nil)
	blob := s.AppendState(nil)
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("G6PBxx" + string(blob[6:])),
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte(nil), blob...), 0xff),
	}
	for name, data := range cases {
		r := New(seeds, Config{Key: 2})
		if err := r.RestoreState(data); err == nil {
			t.Errorf("%s state accepted", name)
		}
	}
}

func TestAliasCandidates(t *testing.T) {
	st := probe.NewStore(true)
	reach := func(a string) {
		st.Add(probe.Reply{Kind: probe.KindEchoReply, Target: netip.MustParseAddr(a),
			From: netip.MustParseAddr(a)})
	}
	reach("2001:db8:1:1::1")
	reach("2001:db8:1:1::2")
	reach("2001:db8:2:2::1")
	// Probed but never reached: must not be nominated.
	st.Add(probe.Reply{Kind: probe.KindTimeExceeded, From: netip.MustParseAddr("2400::9"),
		Target: netip.MustParseAddr("2001:db8:3:3::1"), TTL: 2, StateRecovered: true})

	got := AliasCandidates(st, 1)
	if len(got) != 2 || got[0] != netip.MustParsePrefix("2001:db8:1:1::/64") ||
		got[1] != netip.MustParsePrefix("2001:db8:2:2::/64") {
		t.Fatalf("k=1 candidates = %v", got)
	}
	got = AliasCandidates(st, 2)
	if len(got) != 1 || got[0] != netip.MustParsePrefix("2001:db8:1:1::/64") {
		t.Fatalf("k=2 candidates = %v", got)
	}
	if AliasCandidates(nil, 1) != nil || AliasCandidates(st, 0) != nil {
		t.Fatal("degenerate inputs must nominate nothing")
	}
}
