// Package gen6prob implements probabilistic prefix-tree target
// generation: the adaptive half of the paper's target-generation study.
//
// Where 6Gen (internal/sixgen) enumerates candidate addresses from seed
// clusters once, up front, gen6prob keeps a 16-ary nybble trie over the
// /64 prefix space and samples targets from it epoch by epoch,
// descending one nybble at a time with probability proportional to
// accumulated node weight. Sampling stops at the /64 boundary and
// synthesizes the low-byte ::1 interface identifier — the paper's
// best-yield synthesis (Section 3.3) — so every candidate lands on the
// address most likely to answer inside its prefix. Three signals shape
// the weights:
//
//   - Seeds: every observed address inserts its nybble path, weighted
//     by its 6Gen cluster's density — the same prior that orders 6Gen
//     enumeration, reused as the trie's starting distribution.
//   - Exploration: at every node, nybble values some compatible
//     cluster actually observed at that position carry a small
//     implicit weight even before any child exists there, so sampling
//     can leave the seed set without wandering into unrouted space —
//     this is the generative step.
//   - Reward: after each probing epoch, targets whose traces revealed
//     interfaces never seen before feed their discovery count back
//     along the leading levels of their nybble paths (the covering
//     /48 by default), pulling future samples toward regions that
//     keep answering — and, because the reward stops above the /64
//     level, toward fresh sibling prefixes inside those regions
//     rather than back to already-probed leaves. Aliased prefixes
//     (APD verdicts) kill their subtrees outright.
//
// All weights are integers and the sampler draws from a counter-mode
// splitmix64 generator, so generation is exactly reproducible from
// (seeds, config, state): equal feedback yields equal batches on any
// platform, which is what lets an adaptive campaign stay byte-identical
// at any shard count and batch size. The complete generation state
// (trie, RNG counter, emitted set) serializes into a compact blob for
// mid-adaptation checkpointing.
package gen6prob

import (
	"net/netip"
	"sort"

	"beholder/internal/core"
	"beholder/internal/ipv6"
	"beholder/internal/probe"
	"beholder/internal/sixgen"
)

// nybbleDepth is the trie depth: one level per nybble of an address.
const nybbleDepth = 32

// prefixDepth is the sampling depth: candidates are drawn as /64
// prefixes (16 nybbles) and completed with the low-byte ::1 IID.
const prefixDepth = 16

// Config parameterizes a Source.
type Config struct {
	// Key seeds the sampler; equal keys and seeds generate equal series.
	Key uint64
	// Cluster is the 6Gen clustering configuration for the density
	// prior. Budget is ignored; a zero value selects tight-pattern
	// clustering with the default span cap.
	Cluster sixgen.Config
	// SeedWeight is the per-node weight each seed insertion adds,
	// scaled by the seed's cluster-density rank. It must dominate
	// ExploreWeight so the sampler drains the observed (highest-yield)
	// /64s before generating fresh ones. Default 4096.
	SeedWeight uint64
	// RewardWeight multiplies the novel-interface count a target's trace
	// feeds back along its path. Default 32.
	RewardWeight uint64
	// ExploreWeight is the implicit weight of each cluster-observed but
	// unexpanded nybble value at depths at or below RewardDepth — the
	// fine-grained levels where sibling subnets of observed LANs live.
	// Above RewardDepth the implicit weight is 1: shallow divergence
	// compounds the per-level provisioning odds against the probe, so
	// exploration concentrates near the /64 boundary. Default 4.
	ExploreWeight uint64
	// RewardDepth is how many leading nybble levels a reward insertion
	// credits: rewards reinforce the covering region, not the exact
	// already-probed leaf, so feedback pulls sampling toward fresh
	// sibling prefixes inside productive regions. Default 12 (the /48).
	RewardDepth int
	// MaxMisses bounds consecutive rejected samples (duplicates or
	// pruned dead ends) before an epoch batch is cut short. Default 64.
	MaxMisses int
}

func (c *Config) setDefaults() {
	if c.Cluster.MaxClusterSpan == 0 {
		c.Cluster.MaxClusterSpan = 1 << 20
	}
	if c.SeedWeight == 0 {
		c.SeedWeight = 4096
	}
	if c.RewardWeight == 0 {
		c.RewardWeight = 32
	}
	if c.ExploreWeight == 0 {
		c.ExploreWeight = 4
	}
	if c.RewardDepth <= 0 || c.RewardDepth > nybbleDepth {
		c.RewardDepth = 12
	}
	if c.MaxMisses <= 0 {
		c.MaxMisses = 64
	}
}

// node is one trie node; children index by the nybble value at the
// node's depth.
type node struct {
	weight   uint64
	dead     bool // aliased subtree: weight 0, never re-entered
	spent    bool // /64 already emitted: never sampled again
	children [16]*node
}

// Source is a serializable probabilistic generator implementing
// core.TargetSource.
type Source struct {
	cfg      Config
	clusters []*sixgen.Cluster
	root     *node
	emitted  map[netip.Addr]struct{}
	ctr      uint64 // RNG counter; the only sampler state
}

// Compile-time check: Source streams targets into adaptive campaigns.
var _ core.TargetSource = (*Source)(nil)

// New builds a source from observed seed addresses. The trie starts as
// the seeds' nybble paths weighted by cluster density; ongoing feedback
// reshapes it between epochs.
func New(seeds []netip.Addr, cfg Config) *Source {
	cfg.setDefaults()
	s := &Source{
		cfg:      cfg,
		clusters: sixgen.Clusters(seeds, cfg.Cluster),
		root:     &node{},
		emitted:  make(map[netip.Addr]struct{}),
	}
	// Density-sorted clusters: rank 0 is densest. Seed weight decays
	// with rank so the densest regions start with the most probability
	// mass, mirroring 6Gen's enumeration order.
	rankOf := make(map[*sixgen.Cluster]int, len(s.clusters))
	for i, c := range s.clusters {
		rankOf[c] = i
	}
	sorted := append([]netip.Addr(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, a := range sorted {
		c := s.clusterOf(a)
		w := cfg.SeedWeight
		if c != nil {
			// Halve per density rank, floored at a sixteenth of the full
			// weight: density orders the drain, but every observed /64
			// still outranks every unobserved one by a wide margin.
			floor := cfg.SeedWeight / 16
			if floor < 2*cfg.ExploreWeight {
				floor = 2 * cfg.ExploreWeight
			}
			for r := rankOf[c]; r > 0 && w/2 >= floor; r-- {
				w /= 2
			}
		}
		s.insert(a, w)
	}
	return s
}

// clusterOf returns the first (densest) cluster whose pattern covers a.
func (s *Source) clusterOf(a netip.Addr) *sixgen.Cluster {
	nyb := sixgen.Nybbles(a)
	for _, c := range s.clusters {
		ok := true
		for i, v := range nyb {
			if !maskAllows(c, i, v, s.cfg.Cluster.Mode) {
				ok = false
				break
			}
		}
		if ok {
			return c
		}
	}
	return nil
}

// maskAllows reports whether cluster c admits nybble value v at
// position i under the clustering mode (loose patterns wildcard any
// position where more than one value was observed).
func maskAllows(c *sixgen.Cluster, i int, v uint8, m sixgen.Mode) bool {
	mask := c.Mask(i)
	if m == sixgen.Loose && popcount16(mask) > 1 {
		return true
	}
	return mask&(1<<v) != 0
}

// clusterMask returns cluster c's exploration bitmask at position i:
// always the observed values, never the loose wildcard. Exploration
// under a wildcard would scatter candidates across unrouted space
// (random nybbles almost never hit an advertised prefix); restricting
// the frontier to observed values keeps generated prefixes inside the
// structure the seeds exhibit, which is 6Gen's tight-mode insight.
func clusterMask(c *sixgen.Cluster, i int) uint16 {
	return c.Mask(i)
}

func popcount16(v uint16) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// insert adds w to every node along a's nybble path, creating nodes as
// needed.
func (s *Source) insert(a netip.Addr, w uint64) {
	s.insertTo(a, w, nybbleDepth)
}

// insertTo adds w along the first depth levels of a's nybble path.
func (s *Source) insertTo(a netip.Addr, w uint64, depth int) {
	nyb := sixgen.Nybbles(a)
	n := s.root
	n.weight += w
	for d := 0; d < depth; d++ {
		v := nyb[d]
		if n.children[v] == nil {
			n.children[v] = &node{}
		}
		n = n.children[v]
		n.weight += w
	}
}

// prune kills the subtree under pfx: its weight stops counting and the
// sampler never descends into it again. Prefix lengths round down to
// the nybble boundary.
func (s *Source) prune(pfx netip.Prefix) {
	if !pfx.Addr().Is6() || pfx.Addr().Is4In6() {
		return
	}
	levels := pfx.Bits() / 4
	if levels > nybbleDepth {
		levels = nybbleDepth
	}
	nyb := sixgen.Nybbles(pfx.Addr())
	n := s.root
	for d := 0; d < levels; d++ {
		n = n.children[nyb[d]]
		if n == nil {
			return // nothing generated there yet; nothing to kill
		}
	}
	n.dead = true
}

// next is the counter-mode splitmix64 draw — the sampler's only
// randomness, reproducible from (Key, ctr) alone.
func (s *Source) next() uint64 {
	s.ctr++
	z := s.cfg.Key + s.ctr*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sample draws one candidate: 16 weighted nybble choices from the root
// pick a /64 prefix, creating exploration nodes as the walk leaves
// charted territory, and the low-byte ::1 IID completes the address.
// ok is false when the walk dead-ends (all weight pruned).
func (s *Source) sample() (netip.Addr, bool) {
	// active tracks the clusters whose patterns admit the path chosen so
	// far; their union mask at each depth is the exploration frontier.
	active := make([]*sixgen.Cluster, len(s.clusters))
	copy(active, s.clusters)
	mode := s.cfg.Cluster.Mode
	var u ipv6.U128
	n := s.root
	for d := 0; d < prefixDepth; d++ {
		var explore uint16
		for _, c := range active {
			explore |= clusterMask(c, d)
		}
		ew := s.exploreWeight(d)
		var total uint64
		for v := 0; v < 16; v++ {
			total += s.valueWeight(n, uint8(v), explore, ew)
		}
		if total == 0 {
			return netip.Addr{}, false
		}
		r := s.next() % total
		var pick uint8
		for v := 0; v < 16; v++ {
			w := s.valueWeight(n, uint8(v), explore, ew)
			if r < w {
				pick = uint8(v)
				break
			}
			r -= w
		}
		if n.children[pick] == nil {
			n.children[pick] = &node{weight: ew}
		}
		n = n.children[pick]
		// Narrow the cluster frontier to patterns admitting the pick.
		keep := active[:0]
		for _, c := range active {
			if maskAllows(c, d, pick, mode) {
				keep = append(keep, c)
			}
		}
		active = keep
		u.Hi |= uint64(pick) << (60 - 4*d)
	}
	u.Lo = 1
	return u.Addr(), true
}

// exploreWeight is the implicit weight of an unexpanded cluster-observed
// nybble value at depth d: ExploreWeight at the fine-grained levels at or
// below RewardDepth (sibling subnets of observed LANs, where a fresh
// prefix has one or two provisioning coin-flips against it), a token 1
// above (shallow divergence compounds the odds to near zero).
func (s *Source) exploreWeight(d int) uint64 {
	if d >= s.cfg.RewardDepth {
		return s.cfg.ExploreWeight
	}
	return 1
}

// valueWeight is the sampling weight of nybble value v at node n: the
// child's accumulated weight when one exists (zero if pruned or already
// emitted), else the implicit exploration weight ew when some compatible
// cluster observed v.
func (s *Source) valueWeight(n *node, v uint8, explore uint16, ew uint64) uint64 {
	if c := n.children[v]; c != nil {
		if c.dead || c.spent {
			return 0
		}
		if c.weight == 0 && explore&(1<<v) != 0 {
			return ew
		}
		return c.weight
	}
	if explore&(1<<v) != 0 {
		return ew
	}
	return 0
}

// NextEpoch implements core.TargetSource: it folds the previous epoch's
// feedback into the trie, then samples up to want fresh targets.
func (s *Source) NextEpoch(epoch, want int, fb *core.Feedback) []netip.Addr {
	if fb != nil {
		s.applyFeedback(fb)
	}
	if want <= 0 {
		return nil
	}
	out := make([]netip.Addr, 0, want)
	misses := 0
	for len(out) < want && misses < s.cfg.MaxMisses {
		a, ok := s.sample()
		if !ok {
			// Dead-ended walk (pruned or fully spent subtree): a retry
			// takes different branches, so only give up after MaxMisses.
			misses++
			continue
		}
		if _, dup := s.emitted[a]; dup {
			misses++
			continue
		}
		s.emitted[a] = struct{}{}
		s.spend(a)
		out = append(out, a)
		misses = 0
	}
	return out
}

// spend marks a's /64 emitted: the leaf is never sampled again and its
// accumulated mass leaves every ancestor, so a region whose observed
// prefixes are exhausted stops attracting walks on stale seed weight and
// competes only through exploration and fresh reward.
func (s *Source) spend(a netip.Addr) {
	nyb := sixgen.Nybbles(a)
	var path [prefixDepth + 1]*node
	n := s.root
	path[0] = n
	for d := 0; d < prefixDepth; d++ {
		n = n.children[nyb[d]]
		if n == nil {
			return // not a sampled path (defensive; sample() creates it)
		}
		path[d+1] = n
	}
	w := n.weight
	n.spent = true
	n.weight = 0
	for d := 0; d < prefixDepth; d++ {
		if path[d].weight > w {
			path[d].weight -= w
		} else {
			path[d].weight = 0
		}
	}
}

// applyFeedback reshapes the trie from one epoch's results: aliased
// subtrees die, and every target whose trace surfaced interfaces absent
// from the pre-epoch accumulation rewards the leading RewardDepth
// levels of its path by the novel count.
func (s *Source) applyFeedback(fb *core.Feedback) {
	for _, pfx := range fb.Aliased {
		s.prune(pfx)
	}
	if fb.Store == nil {
		return
	}
	traces := fb.Store.Traces()
	// Store iteration order is unspecified; attribution must not depend
	// on it, so traces sort by target and each novel interface credits
	// the first target (in that order) whose trace carries it.
	sort.Slice(traces, func(i, j int) bool { return traces[i].Target.Less(traces[j].Target) })
	novel := make(map[netip.Addr]struct{})
	for _, tr := range traces {
		var count uint64
		for _, h := range tr.Hops {
			if fb.Total != nil && fb.Total.AddrSeen(h.Addr) {
				continue
			}
			if _, dup := novel[h.Addr]; dup {
				continue
			}
			novel[h.Addr] = struct{}{}
			count++
		}
		if count > 0 {
			s.insertTo(tr.Target, count*s.cfg.RewardWeight, s.cfg.RewardDepth)
		}
	}
}

// AliasCandidates nominates /64 prefixes for alias-presumption testing:
// those where at least k distinct probed targets reported the
// destination itself reachable — the fully-responsive signature of an
// aliased region. With low-byte sampling each /64 carries one probed
// target, so k=1 nominates every reached prefix (APD's random-IID
// probes then separate genuine router LANs from aliased middleboxes).
// Results sort ascending for determinism.
func AliasCandidates(st *probe.Store, k int) []netip.Prefix {
	if st == nil || k <= 0 {
		return nil
	}
	counts := make(map[netip.Prefix]int)
	for _, tr := range st.Traces() {
		if !tr.Reached {
			continue
		}
		pfx, err := tr.Target.Prefix(64)
		if err != nil {
			continue
		}
		counts[pfx]++
	}
	var out []netip.Prefix
	for pfx, n := range counts {
		if n >= k {
			out = append(out, pfx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}
