// Generation-state serialization: the blob that rides in adaptive
// checkpoint artifacts so an interrupted run resumes mid-adaptation
// with the exact trie, sampler counter, and emitted set it stopped
// with. The trie serializes as a preorder walk with per-node child
// masks; everything else the source needs (cluster prior, config
// weights) is rebuilt deterministically from the construction
// parameters, which the resuming caller supplies.
package gen6prob

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
)

// stateMagic versions the serialized generation state.
const stateMagic = "G6PB01"

// AppendState implements core.TargetSource: it appends the complete
// generation state — sampler counter, emitted-target set, weighted
// trie — to buf and returns the extended slice.
func (s *Source) AppendState(buf []byte) []byte {
	buf = append(buf, stateMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, s.ctr)
	addrs := make([]netip.Addr, 0, len(s.emitted))
	for a := range s.emitted {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(addrs)))
	for _, a := range addrs {
		a16 := a.As16()
		buf = append(buf, a16[:]...)
	}
	return appendNode(buf, s.root)
}

func appendNode(buf []byte, n *node) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, n.weight)
	var flags byte
	if n.dead {
		flags |= 1
	}
	if n.spent {
		flags |= 2
	}
	buf = append(buf, flags)
	var mask uint16
	for v := 0; v < 16; v++ {
		if n.children[v] != nil {
			mask |= 1 << v
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, mask)
	for v := 0; v < 16; v++ {
		if n.children[v] != nil {
			buf = appendNode(buf, n.children[v])
		}
	}
	return buf
}

// RestoreState implements core.TargetSource: it replaces the source's
// trie, sampler counter, and emitted set with the serialized state.
// The source must have been constructed with the same seeds and
// configuration as the one that serialized it.
func (s *Source) RestoreState(data []byte) error {
	r := stateReader{buf: data}
	magic, err := r.take(len(stateMagic))
	if err != nil || string(magic) != stateMagic {
		return fmt.Errorf("gen6prob: bad state magic")
	}
	ctr, err := r.u64()
	if err != nil {
		return err
	}
	nEmit, err := r.u32()
	if err != nil {
		return err
	}
	if uint64(nEmit)*16 > uint64(len(data)) {
		return fmt.Errorf("gen6prob: implausible emitted count %d", nEmit)
	}
	emitted := make(map[netip.Addr]struct{}, nEmit)
	for i := uint32(0); i < nEmit; i++ {
		raw, err := r.take(16)
		if err != nil {
			return err
		}
		var a16 [16]byte
		copy(a16[:], raw)
		emitted[netip.AddrFrom16(a16)] = struct{}{}
	}
	root, err := readNode(&r, 0)
	if err != nil {
		return err
	}
	if r.off != len(data) {
		return fmt.Errorf("gen6prob: %d trailing state bytes", len(data)-r.off)
	}
	s.ctr = ctr
	s.emitted = emitted
	s.root = root
	return nil
}

func readNode(r *stateReader, depth int) (*node, error) {
	if depth > nybbleDepth {
		return nil, fmt.Errorf("gen6prob: trie deeper than %d levels", nybbleDepth)
	}
	n := &node{}
	var err error
	if n.weight, err = r.u64(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.dead = flags&1 != 0
	n.spent = flags&2 != 0
	mask, err := r.u16()
	if err != nil {
		return nil, err
	}
	for v := 0; v < 16; v++ {
		if mask&(1<<v) == 0 {
			continue
		}
		if n.children[v], err = readNode(r, depth+1); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// stateReader is a bounds-checked cursor over an untrusted state blob.
type stateReader struct {
	buf []byte
	off int
}

func (r *stateReader) take(n int) ([]byte, error) {
	if len(r.buf)-r.off < n {
		return nil, fmt.Errorf("gen6prob: truncated state at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *stateReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *stateReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *stateReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *stateReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
