// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// NoGoroutineLeaks registers a cleanup that fails the test when it ends
// with more goroutines than it started with. Campaign runs spawn shard
// probers, cancellation watchers, recovery probers, and supervisor
// workers; all of them must exit by the time the orchestrating call
// returns, so a residue here is a real leak, not test noise. The check
// polls briefly before judging, because exiting goroutines can still be
// winding down when the test body returns.
//
// Call it first in the test (cleanups run LIFO, so the count check runs
// after every later cleanup has torn its resources down). Do not use it
// in tests that intentionally start process-lifetime goroutines, such
// as HTTP servers without shutdown.
func NoGoroutineLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("goroutine leak: %d goroutines before, %d after", before, after)
		}
	})
}
