// Package graph builds the study's actual deliverable: the topology
// graph. Probe logs and interface counts are intermediate artifacts —
// the paper's comparisons (discovery power per strategy, marginal gain
// per vantage, periphery structure) are statements about the
// interface-level directed multigraph a campaign induces, and this
// package constructs that graph *while the campaign runs*.
//
// The builder is streaming: it implements probe.Observer, folding every
// reply into per-(vantage, protocol, target) path skeletons and
// maintaining the derived edge multiset incrementally, so no post-hoc
// scan over a multi-million-trace store is needed. Hops arrive in
// randomized TTL order (that is Yarrp6's whole point), so edge
// maintenance is incremental interval splitting: a hop landing between
// two already-known hops replaces their spanning edge with the two
// sub-edges.
//
// Determinism is the package's core invariant. The node set and edge
// multiset are pure functions of the final path skeletons — never of
// reply arrival order — and Merge unions skeletons (with a commutative
// tie-break) before re-deriving edges. Campaign shards own disjoint
// (target × TTL) slices, so per-shard subgraphs merge into exactly the
// graph a single unsharded prober would have built, byte-identical
// under canonical export at any shard count and any plan-cache size.
// Cross-vantage union is the same Merge: paths are keyed by vantage, so
// differing views of one target never mix.
package graph

import (
	"net/netip"
	"sort"
	"sync"

	"beholder/internal/probe"
)

// NodeFlags classifies how an address entered the graph.
type NodeFlags uint8

// Node classification bits.
const (
	// NodeInterface marks a router interface address (a Time Exceeded
	// source).
	NodeInterface NodeFlags = 1 << iota
	// NodeDest marks a probe destination that itself responded (echo
	// reply, RST, or port unreachable) — the graph's periphery.
	NodeDest
)

// DestGap is the Gap value of destination edges (last responsive hop →
// reached target): the remaining hop distance is unknown, so the gap
// carries no TTL arithmetic.
const DestGap = 0

// Edge is one annotated directed multigraph edge. Src and Dst are
// interface addresses (Dst is a destination address for Gap == DestGap
// edges); Gap is the TTL distance between the two hops (1 = directly
// consecutive responses, >1 spans unresponsive hops); Proto is the
// probing transport; V indexes the graph's vantage table.
type Edge struct {
	Src, Dst netip.Addr
	Gap      uint8
	Proto    uint8
	V        uint8
}

// pathKey identifies one path skeleton: what one vantage learned about
// one target under one transport. Keying by vantage and protocol keeps
// differing views of the same target apart, which is what makes Merge
// serve both shard folding (same key space, disjoint TTLs) and
// cross-vantage union (disjoint key spaces).
type pathKey struct {
	v      uint8
	proto  uint8
	target netip.Addr
}

// hop is one responsive hop of a path skeleton.
type hop struct {
	ttl  uint8
	addr netip.Addr
}

// path is the per-(vantage, proto, target) skeleton edges derive from.
type path struct {
	key     pathKey
	hops    []hop // sorted by TTL, unique TTLs
	reached bool
}

// Graph is a deterministic interface-level directed multigraph under
// incremental construction. It implements probe.Observer; a Graph is
// owned by a single prober goroutine while its campaign runs, and
// shard/vantage subgraphs are folded afterwards with Merge.
type Graph struct {
	vantages []string
	self     uint8 // vantage index OnReply attributes replies to

	nodes map[netip.Addr]NodeFlags
	paths map[pathKey]*path
	edges map[Edge]int64

	// traversals counts edge insertions net of removals: the sum of all
	// multi-edge counts, i.e. path-hops contributing topology.
	traversals int64

	// lastKey/lastPath memoize the most recent path touched: replies
	// cluster by target (fill follow-ups, sequential probing), so the
	// memo removes the map lookup for the common repeat case.
	lastKey  pathKey
	lastPath *path

	// block slab-allocates path structs in fixed pieces and hopSlab
	// pre-backs their hop lists, keeping the observer's steady-state
	// allocation rate near zero on the packet fast path.
	block   []path
	hopSlab []hop
}

// New creates an empty graph whose OnReply attributes replies to the
// named vantage.
func New(vantage string) *Graph {
	g := newEmpty()
	g.self = g.vantageIndex(vantage)
	return g
}

func newEmpty() *Graph {
	return &Graph{
		nodes: make(map[netip.Addr]NodeFlags),
		paths: make(map[pathKey]*path),
		edges: make(map[Edge]int64),
	}
}

// Union folds any number of graphs into a fresh one (the inputs are not
// modified). Merge is commutative and associative, so the result is
// independent of argument order up to vantage-table layout, which
// canonical export normalizes away.
//
// Three or more inputs merge as a parallel tree: the first level
// copy-merges adjacent pairs into fresh graphs on worker goroutines,
// later levels fold those (now privately owned) intermediates pairwise,
// so union latency over N shard subgraphs is O(log N) pairwise merges.
// Adjacent pairing preserves left-to-right vantage interning order, so
// even the pre-normalization vantage table matches the serial fold.
func Union(gs ...*Graph) *Graph {
	if len(gs) <= 2 {
		out := newEmpty()
		for _, g := range gs {
			out.Merge(g)
		}
		return out
	}
	cur := make([]*Graph, (len(gs)+1)/2)
	var wg sync.WaitGroup
	for i := range cur {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := newEmpty()
			out.Merge(gs[2*i])
			if 2*i+1 < len(gs) {
				out.Merge(gs[2*i+1])
			}
			cur[i] = out
		}(i)
	}
	wg.Wait()
	for len(cur) > 1 {
		pairs := len(cur) / 2
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cur[2*i].Merge(cur[2*i+1])
			}(i)
		}
		wg.Wait()
		next := cur[:0]
		for i := 0; i < len(cur); i += 2 {
			next = append(next, cur[i])
		}
		cur = next
	}
	return cur[0]
}

// vantageIndex interns a vantage name.
func (g *Graph) vantageIndex(name string) uint8 {
	for i, v := range g.vantages {
		if v == name {
			return uint8(i)
		}
	}
	if len(g.vantages) >= 256 {
		panic("graph: more than 256 vantages in one graph")
	}
	g.vantages = append(g.vantages, name)
	return uint8(len(g.vantages) - 1)
}

// Vantages returns the graph's vantage names, sorted.
func (g *Graph) Vantages() []string {
	out := append([]string(nil), g.vantages...)
	sort.Strings(out)
	return out
}

// OnReply folds one parsed probe reply into the graph; it is the
// streaming observer hook probers call after storing the reply. The
// rules mirror probe.Store.Add exactly — first answer per (target, TTL)
// wins, TE sources become interface nodes even when the quotation was
// too mangled to place them on a path — so the graph's node set always
// equals the store's interface set plus the reached destinations.
func (g *Graph) OnReply(r probe.Reply) {
	switch r.Kind {
	case probe.KindTimeExceeded:
		g.nodes[r.From] |= NodeInterface
		if r.Target.IsValid() && r.TTL != 0 {
			g.insertHop(pathKey{g.self, r.Proto, r.Target}, r.TTL, r.From, false)
		}
	case probe.KindEchoReply, probe.KindTCPRst:
		g.reach(pathKey{g.self, r.Proto, r.Target})
	case probe.KindDestUnreach:
		if r.Code == 4 && r.Target.IsValid() { // port unreachable: from the destination
			g.reach(pathKey{g.self, r.Proto, r.Target})
		}
	}
}

// getPath returns (creating if needed) the skeleton for k.
func (g *Graph) getPath(k pathKey) *path {
	if g.lastPath != nil && g.lastKey == k {
		return g.lastPath
	}
	p := g.paths[k]
	if p == nil {
		if len(g.block) == 0 {
			g.block = make([]path, 64)
		}
		p = &g.block[0]
		g.block = g.block[1:]
		p.key = k
		if len(g.hopSlab) < 16 {
			g.hopSlab = make([]hop, 16*128)
		}
		p.hops = g.hopSlab[:0:16]
		g.hopSlab = g.hopSlab[16:]
		g.paths[k] = p
	}
	g.lastKey, g.lastPath = k, p
	return p
}

// insertHop places (ttl, addr) on k's skeleton and restores the edge
// invariant around it. tiebreak selects the TTL-collision policy:
// false keeps the hop already present (Store.Add's first-answer rule —
// the streaming path, where "first" is well defined), true keeps the
// lexicographically smaller address (Merge's commutative rule, which
// makes merging order-independent even for overlapping ad-hoc merges —
// campaign shards never collide: their (target × TTL) slices are
// disjoint).
func (g *Graph) insertHop(k pathKey, ttl uint8, addr netip.Addr, tiebreak bool) {
	p := g.getPath(k)
	// Binary search for the insertion point; paths are short (≤ the TTL
	// range), so this is a handful of comparisons.
	lo, hi := 0, len(p.hops)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.hops[mid].ttl < ttl {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.hops) && p.hops[lo].ttl == ttl {
		old := p.hops[lo].addr
		if !tiebreak || old == addr || old.Compare(addr) <= 0 {
			return
		}
		g.replaceHop(p, lo, addr)
		return
	}
	g.nodes[addr] |= NodeInterface
	p.hops = append(p.hops, hop{})
	copy(p.hops[lo+1:], p.hops[lo:])
	p.hops[lo] = hop{ttl: ttl, addr: addr}

	var pred, succ *hop
	if lo > 0 {
		pred = &p.hops[lo-1]
	}
	if lo+1 < len(p.hops) {
		succ = &p.hops[lo+1]
	}
	switch {
	case pred != nil && succ != nil:
		// Interval split: the spanning edge becomes two sub-edges.
		g.edgeDelta(pred.addr, succ.addr, succ.ttl-pred.ttl, k, -1)
		g.edgeDelta(pred.addr, addr, ttl-pred.ttl, k, +1)
		g.edgeDelta(addr, succ.addr, succ.ttl-ttl, k, +1)
	case pred != nil:
		// New last hop: extend the path, and re-anchor the destination
		// edge if the target already answered.
		g.edgeDelta(pred.addr, addr, ttl-pred.ttl, k, +1)
		if p.reached {
			g.edgeDelta(pred.addr, k.target, DestGap, k, -1)
			g.edgeDelta(addr, k.target, DestGap, k, +1)
		}
	case succ != nil:
		g.edgeDelta(addr, succ.addr, succ.ttl-ttl, k, +1)
	default:
		// First hop of the path; the destination edge, if any, anchors
		// here.
		if p.reached {
			g.edgeDelta(addr, k.target, DestGap, k, +1)
		}
	}
}

// replaceHop swaps the address at position i for a tie-break winner and
// repairs the adjacent edges.
func (g *Graph) replaceHop(p *path, i int, addr netip.Addr) {
	k := p.key
	old := p.hops[i]
	g.nodes[addr] |= NodeInterface
	if i > 0 {
		pred := p.hops[i-1]
		g.edgeDelta(pred.addr, old.addr, old.ttl-pred.ttl, k, -1)
		g.edgeDelta(pred.addr, addr, old.ttl-pred.ttl, k, +1)
	}
	if i+1 < len(p.hops) {
		succ := p.hops[i+1]
		g.edgeDelta(old.addr, succ.addr, succ.ttl-old.ttl, k, -1)
		g.edgeDelta(addr, succ.addr, succ.ttl-old.ttl, k, +1)
	} else if p.reached {
		g.edgeDelta(old.addr, k.target, DestGap, k, -1)
		g.edgeDelta(addr, k.target, DestGap, k, +1)
	}
	p.hops[i].addr = addr
	// The displaced address may still be an interface via other paths;
	// its node entry stays — interface discovery is monotone.
}

// reach records that k's target responded itself, adding the periphery
// node and, once a last hop exists, the destination edge.
func (g *Graph) reach(k pathKey) {
	p := g.getPath(k)
	if p.reached {
		return
	}
	p.reached = true
	g.nodes[k.target] |= NodeDest
	if n := len(p.hops); n > 0 {
		g.edgeDelta(p.hops[n-1].addr, k.target, DestGap, k, +1)
	}
}

// edgeDelta adjusts one multi-edge count, dropping zeroed entries so
// the edge map always holds exactly the live multiset.
func (g *Graph) edgeDelta(src, dst netip.Addr, gap uint8, k pathKey, d int64) {
	e := Edge{Src: src, Dst: dst, Gap: gap, Proto: k.proto, V: k.v}
	n := g.edges[e] + d
	if n <= 0 {
		delete(g.edges, e)
	} else {
		g.edges[e] = n
	}
	g.traversals += d
}

// Merge folds o into g (o is not modified). Same-vantage path skeletons
// union hop sets (commutative tie-break on TTL collisions, which
// disjoint campaign shards never produce) and OR reached flags; edges
// re-derive through the same incremental maintenance, so the merged
// edge multiset is the pure function of the merged skeletons —
// identical however subgraphs are grouped or ordered.
func (g *Graph) Merge(o *Graph) {
	if o == nil || g == o {
		return
	}
	var vmap [256]uint8
	for i, name := range o.vantages {
		vmap[i] = g.vantageIndex(name)
	}
	for a, fl := range o.nodes {
		g.nodes[a] |= fl
	}
	for k, p := range o.paths {
		nk := pathKey{v: vmap[k.v], proto: k.proto, target: k.target}
		for _, h := range p.hops {
			g.insertHop(nk, h.ttl, h.addr, true)
		}
		if p.reached {
			g.reach(nk)
		}
	}
}

// FromStore batch-builds the graph a streaming observer would have
// produced over the store's traces: the two constructions are
// equivalent by design (and by test). proto annotates the edges, since
// the store does not retain the probing transport; extra interface
// addresses without path placement (mangled quotations) are imported as
// bare nodes.
func FromStore(st *probe.Store, vantage string, proto uint8) *Graph {
	g := New(vantage)
	st.ForEachInterface(func(a netip.Addr) {
		g.nodes[a] |= NodeInterface
	})
	for _, tr := range st.Traces() {
		k := pathKey{g.self, proto, tr.Target}
		for _, h := range tr.SortedHops() {
			g.insertHop(k, h.TTL, h.Addr, false)
		}
		if tr.Reached {
			g.reach(k)
		}
	}
	return g
}

// NumNodes returns the node count (interfaces plus reached
// destinations).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the count of distinct annotated edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumPaths returns the count of path skeletons (per vantage, protocol,
// and target).
func (g *Graph) NumPaths() int { return len(g.paths) }

// Traversals returns the sum of multi-edge counts: how many path-links
// the edge multiset folds together.
func (g *Graph) Traversals() int64 { return g.traversals }

// NodeFlagsOf returns a node's classification, or 0 if absent.
func (g *Graph) NodeFlagsOf(a netip.Addr) NodeFlags { return g.nodes[a] }

// ForEachNode calls fn for every node, in unspecified order.
func (g *Graph) ForEachNode(fn func(addr netip.Addr, flags NodeFlags)) {
	for a, fl := range g.nodes {
		fn(a, fl)
	}
}

// ForEachEdge calls fn for every annotated edge with its multiplicity,
// in unspecified order.
func (g *Graph) ForEachEdge(fn func(e Edge, n int64)) {
	for e, n := range g.edges {
		fn(e, n)
	}
}

// VantageName resolves an edge's vantage index.
func (g *Graph) VantageName(v uint8) string {
	if int(v) < len(g.vantages) {
		return g.vantages[v]
	}
	return ""
}

// Equal reports whether two graphs hold the identical topology: same
// node classifications and the same annotated edge multiset (vantage
// indices resolved by name). Determinism tests use it; canonical export
// equality is implied.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.nodes) != len(o.nodes) || len(g.edges) != len(o.edges) {
		return false
	}
	for a, fl := range g.nodes {
		if o.nodes[a] != fl {
			return false
		}
	}
	remap := make([]int, len(g.vantages))
	for i, name := range g.vantages {
		remap[i] = -1
		for j, oname := range o.vantages {
			if oname == name {
				remap[i] = j
			}
		}
	}
	for e, n := range g.edges {
		ov := remap[e.V]
		if ov < 0 {
			return false
		}
		oe := e
		oe.V = uint8(ov)
		if o.edges[oe] != n {
			return false
		}
	}
	return true
}
