package graph

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"

	"beholder/internal/bgp"
	"beholder/internal/wire"
)

// WriteFile exports g to path — canonical NDJSON when the path ends in
// .ndjson, Graphviz DOT otherwise — and reports flush/close failures,
// so a full disk cannot masquerade as a successful export. tbl may be
// nil (no AS annotation). Both cmds route their -graph flags here.
func WriteFile(path string, g *Graph, tbl *bgp.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".ndjson") {
		err = g.WriteNDJSON(w, tbl)
	} else {
		err = g.WriteDOT(w, tbl)
	}
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// protoName renders a transport protocol for export.
func protoName(p uint8) string {
	switch p {
	case wire.ProtoICMPv6:
		return "icmp6"
	case wire.ProtoUDP:
		return "udp"
	case wire.ProtoTCP:
		return "tcp"
	}
	return strconv.Itoa(int(p))
}

// sortedNodes returns the node addresses in canonical (address) order.
func (g *Graph) sortedNodes() []netip.Addr {
	out := make([]netip.Addr, 0, len(g.nodes))
	for a := range g.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// sortedEdges returns the edges in canonical order: by source, then
// destination, gap, protocol, and vantage *name* — never by vantage
// index, so graphs merged in different orders export byte-identically.
func (g *Graph) sortedEdges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := a.Src.Compare(b.Src); c != 0 {
			return c < 0
		}
		if c := a.Dst.Compare(b.Dst); c != 0 {
			return c < 0
		}
		if a.Gap != b.Gap {
			return a.Gap < b.Gap
		}
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		return g.VantageName(a.V) < g.VantageName(b.V)
	})
	return out
}

// WriteNDJSON emits the graph in canonical NDJSON: one header line,
// then node lines in address order, then edge lines in canonical edge
// order. The byte stream is a pure function of the graph's topology
// (and tbl), so two graphs built from the same campaign — at any shard
// count, plan-cache setting, or merge order — serialize identically;
// determinism tests diff these bytes. tbl, when non-nil, annotates
// nodes and edges with origin ASNs.
func (g *Graph) WriteNDJSON(w io.Writer, tbl *bgp.Table) error {
	vjson := quoteList(g.Vantages())
	if _, err := fmt.Fprintf(w, `{"graph":{"vantages":%s,"nodes":%d,"edges":%d,"paths":%d,"traversals":%d}}`+"\n",
		vjson, len(g.nodes), len(g.edges), len(g.paths), g.traversals); err != nil {
		return err
	}
	for _, a := range g.sortedNodes() {
		fl := g.nodes[a]
		asn := originOf(tbl, a)
		if _, err := fmt.Fprintf(w, `{"node":{"addr":%q,"iface":%t,"dest":%t,"asn":%d}}`+"\n",
			a, fl&NodeInterface != 0, fl&NodeDest != 0, asn); err != nil {
			return err
		}
	}
	for _, e := range g.sortedEdges() {
		if _, err := fmt.Fprintf(w, `{"edge":{"src":%q,"dst":%q,"gap":%d,"proto":%q,"vantage":%q,"srcAsn":%d,"dstAsn":%d,"n":%d}}`+"\n",
			e.Src, e.Dst, e.Gap, protoName(e.Proto), g.VantageName(e.V),
			originOf(tbl, e.Src), originOf(tbl, e.Dst), g.edges[e]); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT emits the graph in Graphviz DOT form, in the same canonical
// order as WriteNDJSON. Destination (periphery) nodes render as boxes;
// edges carry their TTL gap and multiplicity, with destination edges
// dashed. tbl, when non-nil, adds origin ASNs to node labels.
func (g *Graph) WriteDOT(w io.Writer, tbl *bgp.Table) error {
	if _, err := fmt.Fprint(w, "digraph topology {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n"); err != nil {
		return err
	}
	for _, a := range g.sortedNodes() {
		fl := g.nodes[a]
		attrs := ""
		if fl&NodeDest != 0 {
			attrs = ", shape=box"
		}
		label := a.String()
		if asn := originOf(tbl, a); asn != 0 {
			label += "\\nAS" + strconv.FormatUint(uint64(asn), 10)
		}
		// label holds a DOT \n escape; %q would double the backslash, so
		// quote manually (addresses and AS numbers need no escaping).
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\"%s];\n", a, label, attrs); err != nil {
			return err
		}
	}
	for _, e := range g.sortedEdges() {
		style := ""
		if e.Gap == DestGap {
			style = ", style=dashed"
		}
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=\"gap=%d n=%d\"%s];\n",
			e.Src, e.Dst, e.Gap, g.edges[e], style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// sortedEdges returns router edges in canonical order (vantage by
// name).
func (rg *RouterGraph) sortedEdges() []RouterEdge {
	out := make([]RouterEdge, 0, len(rg.edges))
	for e := range rg.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src.less(b.Src)
		}
		if a.Dst != b.Dst {
			return a.Dst.less(b.Dst)
		}
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		return rg.VantageName(a.V) < rg.VantageName(b.V)
	})
	return out
}

// sortedRouters returns router identities in canonical order.
func (rg *RouterGraph) sortedRouters() []RouterID {
	out := make([]RouterID, 0, len(rg.nodes))
	for id := range rg.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// WriteNDJSON emits the router-level graph in canonical NDJSON.
func (rg *RouterGraph) WriteNDJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, `{"routerGraph":{"routers":%d,"edges":%d,"folded":%d,"intraRouter":%d}}`+"\n",
		len(rg.nodes), len(rg.edges), rg.Folded, rg.IntraRouter); err != nil {
		return err
	}
	for _, id := range rg.sortedRouters() {
		n := rg.nodes[id]
		if _, err := fmt.Fprintf(w, `{"router":{"id":%q,"aliased":%t,"interfaces":%d,"dest":%t}}`+"\n",
			id, id.Aliased, n.Interfaces, n.Flags&NodeDest != 0); err != nil {
			return err
		}
	}
	for _, e := range rg.sortedEdges() {
		if _, err := fmt.Fprintf(w, `{"redge":{"src":%q,"dst":%q,"proto":%q,"vantage":%q,"n":%d}}`+"\n",
			e.Src, e.Dst, protoName(e.Proto), rg.VantageName(e.V), rg.edges[e]); err != nil {
			return err
		}
	}
	return nil
}

// WriteDOT emits the router-level graph in Graphviz DOT form. Aliased
// (collapsed) routers render as double circles sized by interface
// count.
func (rg *RouterGraph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprint(w, "digraph routers {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n"); err != nil {
		return err
	}
	for _, id := range rg.sortedRouters() {
		n := rg.nodes[id]
		attrs := ""
		switch {
		case id.Aliased:
			attrs = ", shape=doublecircle"
		case n.Flags&NodeDest != 0:
			attrs = ", shape=box"
		}
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\nifaces=%d\"%s];\n",
			id, id, n.Interfaces, attrs); err != nil {
			return err
		}
	}
	for _, e := range rg.sortedEdges() {
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=\"n=%d\"];\n", e.Src, e.Dst, rg.edges[e]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// originOf looks up an address's origin ASN, RIR-augmented; 0 without a
// table or a covering prefix.
func originOf(tbl *bgp.Table, a netip.Addr) uint32 {
	if tbl == nil {
		return 0
	}
	return tbl.OriginAny(a)
}

// quoteList renders a string slice as a JSON array.
func quoteList(ss []string) string {
	out := "["
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += strconv.Quote(s)
	}
	return out + "]"
}
