package graph

import (
	"runtime"
	"testing"
)

func testingAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// BenchmarkGraphIngest measures the streaming observer alone: replies
// per second and — the number the fast-path budget cares about —
// allocations per edge operation. The reply stream mixes repeat targets
// (memo hits), interval splits, and reached destinations the way a fill
// campaign does.
func BenchmarkGraphIngest(b *testing.B) {
	replies := randReplies(3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	var traversals int64
	m0 := testingAllocs()
	for i := 0; i < b.N; i++ {
		g := New("bench")
		for _, r := range replies {
			g.OnReply(r)
		}
		traversals += g.Traversals()
	}
	b.StopTimer()
	allocs := testingAllocs() - m0
	if traversals > 0 {
		b.ReportMetric(float64(allocs)/float64(traversals), "allocs/edge")
	}
	b.ReportMetric(float64(len(replies))*float64(b.N)/b.Elapsed().Seconds(), "replies/s")
}

// BenchmarkGraphMerge measures folding shard subgraphs into a campaign
// graph.
func BenchmarkGraphMerge(b *testing.B) {
	replies := randReplies(5, 2000)
	shards := make([]*Graph, 4)
	for i := range shards {
		shards[i] = New("bench")
	}
	for _, r := range replies {
		shards[int(r.Target.As16()[15]+r.TTL)%len(shards)].OnReply(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Union(shards...)
		if g.NumNodes() == 0 {
			b.Fatal("empty merge")
		}
	}
}
