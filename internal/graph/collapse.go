package graph

import (
	"net/netip"

	"beholder/internal/alias"
)

// RouterID identifies a router-level node: either a detected aliased
// prefix (one middlebox answering for the whole region) or a single
// interface address nothing folded.
type RouterID struct {
	// Aliased reports that the router is a collapsed aliased prefix.
	Aliased bool
	// Prefix is the covering aliased prefix when Aliased.
	Prefix netip.Prefix
	// Addr is the interface address when not Aliased.
	Addr netip.Addr
}

// String renders the router identity (prefix or address form).
func (r RouterID) String() string {
	if r.Aliased {
		return r.Prefix.String()
	}
	return r.Addr.String()
}

// less orders router identities canonically: by representative address,
// with prefixes breaking ties ahead of bare addresses, shorter first.
func (r RouterID) less(o RouterID) bool {
	ra, oa := r.Addr, o.Addr
	if r.Aliased {
		ra = r.Prefix.Addr()
	}
	if o.Aliased {
		oa = o.Prefix.Addr()
	}
	if c := ra.Compare(oa); c != 0 {
		return c < 0
	}
	if r.Aliased != o.Aliased {
		return r.Aliased
	}
	if r.Aliased && o.Aliased {
		return r.Prefix.Bits() < o.Prefix.Bits()
	}
	return false
}

// RouterEdge is one router-level edge. The interface-level TTL gap does
// not survive the collapse (a router pair may be linked at many gaps);
// protocol and vantage attribution do.
type RouterEdge struct {
	Src, Dst RouterID
	Proto    uint8
	V        uint8
}

// RouterNode aggregates the interfaces folded into one router.
type RouterNode struct {
	Flags      NodeFlags
	Interfaces int // interface-level nodes folded in
}

// RouterGraph is the router-level graph a collapse pass produces.
type RouterGraph struct {
	vantages []string
	nodes    map[RouterID]RouterNode
	edges    map[RouterEdge]int64

	// Folded counts interface nodes absorbed into multi-interface
	// routers (NumNodes of the source graph minus router count).
	Folded int
	// IntraRouter counts edge traversals that collapsed into
	// self-loops (links between two interfaces of one router) and were
	// dropped.
	IntraRouter int64
}

// Resolver maps an interface address to its covering aliased prefix.
// alias.Store.Covering satisfies it; any alias-resolution source with
// prefix granularity can stand in.
type Resolver func(netip.Addr) (netip.Prefix, bool)

// StoreResolver adapts a detected-alias store into a Resolver; a nil
// store resolves nothing (the collapse is then the identity).
func StoreResolver(st *alias.Store) Resolver {
	if st == nil {
		return func(netip.Addr) (netip.Prefix, bool) { return netip.Prefix{}, false }
	}
	return st.Covering
}

// routerOf folds one address through the resolver.
func routerOf(a netip.Addr, resolve Resolver) RouterID {
	if p, ok := resolve(a); ok {
		return RouterID{Aliased: true, Prefix: p}
	}
	return RouterID{Addr: a}
}

// Collapse folds interfaces into router nodes using alias-resolution
// results: every interface under one detected aliased prefix becomes a
// single router, edges re-key accordingly (multi-edge counts add), and
// links between two interfaces of the same router drop out as
// intra-router wiring. The result is a pure function of the graph and
// the resolver — deterministic however the graph was built or merged.
func (g *Graph) Collapse(resolve Resolver) *RouterGraph {
	rg := &RouterGraph{
		vantages: append([]string(nil), g.vantages...),
		nodes:    make(map[RouterID]RouterNode),
		edges:    make(map[RouterEdge]int64),
	}
	for a, fl := range g.nodes {
		id := routerOf(a, resolve)
		n := rg.nodes[id]
		n.Flags |= fl
		n.Interfaces++
		rg.nodes[id] = n
	}
	rg.Folded = len(g.nodes) - len(rg.nodes)
	for e, n := range g.edges {
		src, dst := routerOf(e.Src, resolve), routerOf(e.Dst, resolve)
		if src == dst {
			rg.IntraRouter += n
			continue
		}
		rg.edges[RouterEdge{Src: src, Dst: dst, Proto: e.Proto, V: e.V}] += n
	}
	return rg
}

// NumRouters returns the router-level node count.
func (rg *RouterGraph) NumRouters() int { return len(rg.nodes) }

// NumEdges returns the count of distinct router-level annotated edges.
func (rg *RouterGraph) NumEdges() int { return len(rg.edges) }

// ForEachRouter calls fn for every router node, in unspecified order.
func (rg *RouterGraph) ForEachRouter(fn func(id RouterID, n RouterNode)) {
	for id, n := range rg.nodes {
		fn(id, n)
	}
}

// ForEachEdge calls fn for every router-level edge with its
// multiplicity, in unspecified order.
func (rg *RouterGraph) ForEachEdge(fn func(e RouterEdge, n int64)) {
	for e, n := range rg.edges {
		fn(e, n)
	}
}

// VantageName resolves an edge's vantage index.
func (rg *RouterGraph) VantageName(v uint8) string {
	if int(v) < len(rg.vantages) {
		return rg.vantages[v]
	}
	return ""
}
