package graph

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"beholder/internal/alias"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func te(target, from netip.Addr, ttl uint8) probe.Reply {
	return probe.Reply{
		Kind: probe.KindTimeExceeded, From: from, Target: target,
		TTL: ttl, Proto: wire.ProtoICMPv6, StateRecovered: true,
	}
}

func echo(target netip.Addr) probe.Reply {
	return probe.Reply{Kind: probe.KindEchoReply, From: target, Target: target, Proto: wire.ProtoICMPv6}
}

// TestIncrementalIntervalSplit drives hops in scrambled TTL order and
// checks the edge multiset matches the final path, including the
// spanning-edge split when a middle hop arrives late.
func TestIncrementalIntervalSplit(t *testing.T) {
	tgt := addr(t, "2001:db8::1")
	h1 := addr(t, "2001:db8:1::1")
	h2 := addr(t, "2001:db8:2::1")
	h3 := addr(t, "2001:db8:3::1")

	g := New("v0")
	g.OnReply(te(tgt, h1, 1))
	g.OnReply(te(tgt, h3, 3))
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (spanning 1->3)", g.NumEdges())
	}
	wantSpan := Edge{Src: h1, Dst: h3, Gap: 2, Proto: wire.ProtoICMPv6}
	if g.edges[wantSpan] != 1 {
		t.Fatalf("spanning edge missing: %v", g.edges)
	}
	// Middle hop arrives: the gap-2 edge must split into two gap-1
	// edges.
	g.OnReply(te(tgt, h2, 2))
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 after split", g.NumEdges())
	}
	if _, ok := g.edges[wantSpan]; ok {
		t.Fatal("spanning edge survived the split")
	}
	for _, e := range []Edge{
		{Src: h1, Dst: h2, Gap: 1, Proto: wire.ProtoICMPv6},
		{Src: h2, Dst: h3, Gap: 1, Proto: wire.ProtoICMPv6},
	} {
		if g.edges[e] != 1 {
			t.Fatalf("missing sub-edge %v", e)
		}
	}
	// Duplicate TTL keeps the first answer on the path (the source still
	// counts as a discovered interface node, mirroring the store's
	// interface set).
	g.OnReply(te(tgt, addr(t, "2001:db8:9::9"), 2))
	if g.NumEdges() != 2 || g.NumNodes() != 4 {
		t.Fatalf("edges=%d nodes=%d after dup TTL, want 2/4", g.NumEdges(), g.NumNodes())
	}

	// The target answers: a dashed destination edge from the last hop.
	g.OnReply(echo(tgt))
	de := Edge{Src: h3, Dst: tgt, Gap: DestGap, Proto: wire.ProtoICMPv6}
	if g.edges[de] != 1 {
		t.Fatal("destination edge missing")
	}
	if g.NodeFlagsOf(tgt)&NodeDest == 0 {
		t.Fatal("target not marked NodeDest")
	}
	// A deeper hop arrives afterwards: the destination edge re-anchors.
	h4 := addr(t, "2001:db8:4::1")
	g.OnReply(te(tgt, h4, 5))
	if _, ok := g.edges[de]; ok {
		t.Fatal("stale destination edge from old last hop")
	}
	if g.edges[Edge{Src: h4, Dst: tgt, Gap: DestGap, Proto: wire.ProtoICMPv6}] != 1 {
		t.Fatal("destination edge did not re-anchor to the new last hop")
	}
}

// randReplies synthesizes a deterministic reply stream over nTargets
// targets with random responsive TTL subsets and random reached flags.
func randReplies(seed int64, nTargets int) []probe.Reply {
	rng := rand.New(rand.NewSource(seed))
	var out []probe.Reply
	for i := 0; i < nTargets; i++ {
		tgt := synthAddr(0xd0, i)
		for ttl := 1; ttl <= 12; ttl++ {
			if rng.Intn(3) == 0 {
				continue // unresponsive hop: produces a TTL gap
			}
			// A small shared router pool makes interfaces recur across
			// paths, so node/edge dedup is exercised.
			out = append(out, te(tgt, synthAddr(0xae, rng.Intn(40)), uint8(ttl)))
		}
		if rng.Intn(2) == 0 {
			out = append(out, echo(tgt))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func synthAddr(tag byte, i int) netip.Addr {
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2] = tag
	b[14], b[15] = byte(i>>8), byte(i)
	return netip.AddrFrom16(b)
}

// TestArrivalOrderIndependence: any arrival order of the same replies
// yields the identical graph.
func TestArrivalOrderIndependence(t *testing.T) {
	replies := randReplies(7, 60)
	build := func(order []probe.Reply) *Graph {
		g := New("v0")
		for _, r := range order {
			g.OnReply(r)
		}
		return g
	}
	a := build(replies)
	rev := make([]probe.Reply, len(replies))
	for i, r := range replies {
		rev[len(replies)-1-i] = r
	}
	b := build(rev)
	if !a.Equal(b) {
		t.Fatal("graphs differ under reversed reply order")
	}
	if !b.Equal(a) {
		t.Fatal("Equal is asymmetric")
	}
}

// TestMergeCommutesAndAssociates splits a reply stream into per-shard
// graphs and checks every merge grouping and order produces the graph
// the unsharded stream builds — including byte-identical canonical
// export.
func TestMergeCommutesAndAssociates(t *testing.T) {
	replies := randReplies(11, 80)
	full := New("v0")
	for _, r := range replies {
		full.OnReply(r)
	}
	// Shard by (target, ttl) the way campaign permutation slices do:
	// disjoint, deterministic.
	shards := make([]*Graph, 3)
	for i := range shards {
		shards[i] = New("v0")
	}
	for _, r := range replies {
		h := int(r.Target.As16()[15]+r.TTL) % len(shards)
		shards[h].OnReply(r)
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	var exports []string
	for _, ord := range orders {
		m := Union(shards[ord[0]], shards[ord[1]], shards[ord[2]])
		if !m.Equal(full) {
			t.Fatalf("merge order %v differs from unsharded graph", ord)
		}
		var buf bytes.Buffer
		if err := m.WriteNDJSON(&buf, nil); err != nil {
			t.Fatal(err)
		}
		exports = append(exports, buf.String())
	}
	// Associativity: ((0+1)+2) vs (0+(1+2)).
	left := Union(Union(shards[0], shards[1]), shards[2])
	right := Union(shards[0], Union(shards[1], shards[2]))
	if !left.Equal(right) || !left.Equal(full) {
		t.Fatal("merge is not associative")
	}
	var fullBuf bytes.Buffer
	if err := full.WriteNDJSON(&fullBuf, nil); err != nil {
		t.Fatal(err)
	}
	for i, s := range exports {
		if s != fullBuf.String() {
			t.Fatalf("canonical export differs for merge order %v", orders[i])
		}
	}
}

// TestTieBreakCommutes: overlapping (target, ttl) with different
// addresses — which campaign shards never produce, but ad-hoc merges
// can — resolves to the same winner in either merge direction.
func TestTieBreakCommutes(t *testing.T) {
	tgt := addr(t, "2001:db8::1")
	lo := addr(t, "2001:db8:a::1")
	hi := addr(t, "2001:db8:b::1")
	mk := func(h netip.Addr) *Graph {
		g := New("v0")
		g.OnReply(te(tgt, addr(t, "2001:db8:0::1"), 1))
		g.OnReply(te(tgt, h, 2))
		return g
	}
	a, b := mk(lo), mk(hi)
	ab, ba := Union(a, b), Union(b, a)
	if !ab.Equal(ba) {
		t.Fatal("tie-break is order-dependent")
	}
	if ab.edges[Edge{Src: addr(t, "2001:db8:0::1"), Dst: lo, Gap: 1, Proto: wire.ProtoICMPv6}] != 1 {
		t.Fatal("tie-break did not keep the smaller address")
	}
}

// TestStreamingMatchesBatch: the streaming observer and FromStore over
// the equivalent trace store build equal graphs.
func TestStreamingMatchesBatch(t *testing.T) {
	replies := randReplies(13, 70)
	// Duplicate (target, TTL) replies with conflicting sources: both the
	// store and the streaming builder must keep the first answer, so the
	// equivalence survives retransmitted/duplicated replies too.
	dupTgt := synthAddr(0xd0, 1)
	replies = append(replies,
		te(dupTgt, synthAddr(0xfe, 1), 3),
		te(dupTgt, synthAddr(0x01, 1), 3))
	g := New("v0")
	st := probe.NewStore(true)
	for _, r := range replies {
		st.Add(r)
		g.OnReply(r)
	}
	batch := FromStore(st, "v0", wire.ProtoICMPv6)
	if !g.Equal(batch) {
		t.Fatal("streaming graph differs from batch FromStore graph")
	}
	if g.NumNodes() < st.NumInterfaces() {
		t.Fatalf("graph nodes %d < store interfaces %d", g.NumNodes(), st.NumInterfaces())
	}
}

// TestCrossVantageUnion: same target, different vantages — paths must
// not mix, edges keep vantage attribution.
func TestCrossVantageUnion(t *testing.T) {
	tgt := addr(t, "2001:db8::1")
	a1, a2 := addr(t, "2001:db8:a::1"), addr(t, "2001:db8:a::2")
	b1, b2 := addr(t, "2001:db8:b::1"), addr(t, "2001:db8:b::2")

	ga := New("A")
	ga.OnReply(te(tgt, a1, 1))
	ga.OnReply(te(tgt, a2, 2))
	gb := New("B")
	gb.OnReply(te(tgt, b1, 1))
	gb.OnReply(te(tgt, b2, 2))

	u := Union(ga, gb)
	if u.NumNodes() != 4 || u.NumEdges() != 2 {
		t.Fatalf("union nodes=%d edges=%d, want 4/2", u.NumNodes(), u.NumEdges())
	}
	names := u.Vantages()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("vantages = %v", names)
	}
	// No cross-vantage edge may exist: A's TTL-1 hop never links to B's
	// TTL-2 hop.
	u.ForEachEdge(func(e Edge, _ int64) {
		if e.Src == a1 && e.Dst == b2 || e.Src == b1 && e.Dst == a2 {
			t.Fatalf("cross-vantage edge %v", e)
		}
	})
}

// TestCollapse folds two interfaces under one aliased /64 and checks
// router counts, edge re-keying, and intra-router edge dropping.
func TestCollapse(t *testing.T) {
	tgt := addr(t, "2001:db8::1")
	r1 := addr(t, "2001:db8:aa::1")
	m1 := addr(t, "2001:db8:ff::1") // middlebox interface 1
	m2 := addr(t, "2001:db8:ff::2") // middlebox interface 2
	pfx := netip.MustParsePrefix("2001:db8:ff::/64")

	g := New("v0")
	g.OnReply(te(tgt, r1, 1))
	g.OnReply(te(tgt, m1, 2))
	g.OnReply(te(tgt, m2, 3))

	st := alias.NewStore()
	st.Add(alias.Record{Prefix: pfx, Aliased: true})
	rg := g.Collapse(StoreResolver(st))

	if rg.NumRouters() != 2 {
		t.Fatalf("routers = %d, want 2", rg.NumRouters())
	}
	if rg.Folded != 1 {
		t.Fatalf("folded = %d, want 1", rg.Folded)
	}
	if rg.IntraRouter != 1 { // the m1->m2 edge collapses into the router
		t.Fatalf("intra-router = %d, want 1", rg.IntraRouter)
	}
	if rg.NumEdges() != 1 {
		t.Fatalf("router edges = %d, want 1 (r1 -> aliased prefix)", rg.NumEdges())
	}
	want := RouterEdge{
		Src:   RouterID{Addr: r1},
		Dst:   RouterID{Aliased: true, Prefix: pfx},
		Proto: wire.ProtoICMPv6,
	}
	if rg.edges[want] != 1 {
		t.Fatalf("router edge missing; have %v", rg.edges)
	}
	// Nil store: identity collapse.
	id := g.Collapse(StoreResolver(nil))
	if id.NumRouters() != g.NumNodes() || id.Folded != 0 {
		t.Fatal("nil-store collapse is not the identity")
	}
}

// TestExportShape sanity-checks the DOT and NDJSON emitters.
func TestExportShape(t *testing.T) {
	g := New("v0")
	tgt := addr(t, "2001:db8::1")
	g.OnReply(te(tgt, addr(t, "2001:db8:a::1"), 1))
	g.OnReply(te(tgt, addr(t, "2001:db8:b::1"), 2))
	g.OnReply(echo(tgt))

	var dot bytes.Buffer
	if err := g.WriteDOT(&dot, nil); err != nil {
		t.Fatal(err)
	}
	s := dot.String()
	if !strings.HasPrefix(s, "digraph topology {") || !strings.Contains(s, "style=dashed") {
		t.Fatalf("unexpected DOT output:\n%s", s)
	}

	var nd bytes.Buffer
	if err := g.WriteNDJSON(&nd, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	// Header + 3 nodes + 2 edges.
	if len(lines) != 6 {
		t.Fatalf("NDJSON lines = %d, want 6:\n%s", len(lines), nd.String())
	}
	if !strings.Contains(lines[0], `"vantages":["v0"]`) {
		t.Fatalf("bad header: %s", lines[0])
	}

	rg := g.Collapse(StoreResolver(nil))
	var rnd, rdot bytes.Buffer
	if err := rg.WriteNDJSON(&rnd); err != nil {
		t.Fatal(err)
	}
	if err := rg.WriteDOT(&rdot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rnd.String(), `"routerGraph"`) || !strings.HasPrefix(rdot.String(), "digraph routers {") {
		t.Fatal("router export shape wrong")
	}
}
