package core

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

// graphCampaign runs one campaign with per-shard streaming graph
// observers on a fresh non-scarce universe (see campaignUniverse) and
// returns the merged graph's canonical NDJSON bytes plus the merged
// store.
func graphCampaign(t *testing.T, seed int64, targets []netip.Addr, shards, planCache int) ([]byte, *probe.Store) {
	t.Helper()
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	v.SetPlanCache(planCache)
	builders := make([]*graph.Graph, shards)
	camp := NewCampaign(CampaignConfig{
		Config:      campaignCfg(targets),
		Shards:      shards,
		RecordPaths: true,
		NewObserver: func(s int) probe.Observer {
			builders[s] = graph.New("US-EDU-1")
			return builders[s]
		},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, _, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Union(builders...)
	var buf bytes.Buffer
	if err := g.WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("campaign built an empty graph")
	}
	// The streamed+merged graph must equal the batch build over the
	// merged store — the store is already proven shard-invariant.
	if !g.Equal(graph.FromStore(store, "US-EDU-1", wire.ProtoICMPv6)) {
		t.Fatal("streamed shard graphs do not merge to the store-derived graph")
	}
	return buf.Bytes(), store
}

// TestGraphShardCacheMatrix is the PR's acceptance criterion at the
// engine level: for the same seed and key, the merged campaign graph is
// byte-identical under canonical NDJSON export across shard counts
// {1, 2, 4} and plan cache on/off. The -race CI job runs this test too,
// certifying the per-shard observers share nothing.
func TestGraphShardCacheMatrix(t *testing.T) {
	const seed = 909
	targets := campaignTargets(t, seed, 96)
	ref, refStore := graphCampaign(t, seed, targets, 1, 0)
	for _, shards := range []int{1, 2, 4} {
		for _, cache := range []int{0, 4096} {
			if shards == 1 && cache == 0 {
				continue
			}
			got, store := graphCampaign(t, seed, targets, shards, cache)
			if !store.Equal(refStore) {
				t.Fatalf("store differs at shards=%d planCache=%d", shards, cache)
			}
			if !bytes.Equal(ref, got) {
				t.Errorf("graph differs at shards=%d planCache=%d (ref: 1 shard, cache off)", shards, cache)
			}
		}
	}
}
