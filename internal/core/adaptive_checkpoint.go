// Adaptive checkpoint artifacts: the generation loop's state rides in
// the same versioned container as campaign checkpoints. An adaptive
// artifact is the magic followed by a single sectAdaptive section whose
// payload carries the epoch cursor, the per-epoch statistics, the
// serialized target-source state, the accumulated store, the pending
// boundary-generated targets, and — when the interrupt landed mid-epoch
// — the inner campaign's own complete artifact embedded verbatim.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net/netip"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// Checkpoint serializes the adaptive run's complete state after an
// interrupted RunContext: generation state, accumulated results, and
// the interrupted epoch campaign's artifact when the cut landed inside
// an epoch. ResumeAdaptive reconstructs a run that continues exactly.
func (a *AdaptiveCampaign) Checkpoint() ([]byte, error) {
	if !a.interrupted {
		return nil, ErrNotCheckpointable
	}
	a.mu.Lock()
	inner := a.inner
	a.mu.Unlock()
	var innerArt []byte
	if inner != nil {
		art, err := inner.Checkpoint()
		if err != nil {
			return nil, err
		}
		innerArt = art
	}
	buf := append([]byte(nil), checkpointMagic...)
	return appendSection(buf, sectAdaptive, a.appendAdaptive(nil, innerArt)), nil
}

func (a *AdaptiveCampaign) appendAdaptive(buf, innerArt []byte) []byte {
	cfg := &a.cfg
	var flags byte
	if len(innerArt) > 0 {
		flags |= 1
	}
	if cfg.Fill {
		flags |= 2
	}
	if cfg.RecordPaths {
		flags |= 4
	}
	buf = append(buf, flags, cfg.MinTTL, cfg.MaxTTL, cfg.Proto, cfg.Instance, cfg.FillLimit, cfg.NeighborhoodTTL)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cfg.PPS))
	buf = binary.LittleEndian.AppendUint64(buf, cfg.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.Shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.Batch))
	buf = appendDur(buf, cfg.NeighborhoodWindow)
	buf = appendDur(buf, cfg.DrainTimeout)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Budget))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.EpochTargets))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.MaxEpochs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.epoch))
	buf = appendDur(buf, a.base)
	buf = appendDur(buf, a.origin)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.spent))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.epochs)))
	for _, e := range a.epochs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Targets))
		buf = appendDur(buf, e.Base)
		st := e.Stats
		buf = appendDur(buf, time.Duration(st.ProbesSent))
		buf = appendDur(buf, time.Duration(st.Fills))
		buf = appendDur(buf, time.Duration(st.Skipped))
		buf = appendDur(buf, time.Duration(st.Replies))
		buf = appendDur(buf, time.Duration(st.NotMine))
		buf = appendDur(buf, time.Duration(st.Retries))
		buf = appendDur(buf, st.Elapsed)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Interfaces))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.pending)))
	for _, t := range a.pending {
		t16 := t.As16()
		buf = append(buf, t16[:]...)
	}
	src := cfg.Source.AppendState(nil)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(src)))
	buf = append(buf, src...)
	enc := a.total.AppendBinary(nil)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
	buf = append(buf, enc...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(innerArt)))
	return append(buf, innerArt...)
}

// adaptiveState is a decoded adaptive section.
type adaptiveState struct {
	cfg     AdaptiveConfig // template; Source and hooks unset
	epoch   int
	base    time.Duration
	origin  time.Duration
	spent   int64
	epochs  []EpochStats
	pending []netip.Addr
	source  []byte
	total   *probe.Store
	inner   []byte
}

func decodeAdaptive(payload []byte) (*adaptiveState, error) {
	st := &adaptiveState{}
	cfg := &st.cfg
	r := ckReader{buf: payload}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	hasInner := flags&1 != 0
	cfg.Fill = flags&2 != 0
	cfg.RecordPaths = flags&4 != 0
	fields := []*uint8{&cfg.MinTTL, &cfg.MaxTTL, &cfg.Proto, &cfg.Instance, &cfg.FillLimit, &cfg.NeighborhoodTTL}
	for _, f := range fields {
		if *f, err = r.u8(); err != nil {
			return nil, err
		}
	}
	pps, err := r.u64()
	if err != nil {
		return nil, err
	}
	cfg.PPS = math.Float64frombits(pps)
	if cfg.PPS <= 0 || math.IsNaN(cfg.PPS) || math.IsInf(cfg.PPS, 0) {
		return nil, fmt.Errorf("%w: invalid PPS", ErrCheckpoint)
	}
	if cfg.Key, err = r.u64(); err != nil {
		return nil, err
	}
	shards, err := r.u32()
	if err != nil {
		return nil, err
	}
	if shards == 0 || shards > 1<<16 {
		return nil, fmt.Errorf("%w: invalid shard count %d", ErrCheckpoint, shards)
	}
	cfg.Shards = int(shards)
	batch, err := r.u32()
	if err != nil {
		return nil, err
	}
	cfg.Batch = int(batch)
	if cfg.NeighborhoodWindow, err = r.dur(); err != nil {
		return nil, err
	}
	if cfg.DrainTimeout, err = r.dur(); err != nil {
		return nil, err
	}
	budget, err := r.u64()
	if err != nil {
		return nil, err
	}
	cfg.Budget = int64(budget)
	et, err := r.u32()
	if err != nil {
		return nil, err
	}
	cfg.EpochTargets = int(et)
	me, err := r.u32()
	if err != nil {
		return nil, err
	}
	cfg.MaxEpochs = int(me)
	if me == 0 || cfg.EpochTargets <= 0 {
		return nil, fmt.Errorf("%w: invalid adaptive bounds", ErrCheckpoint)
	}
	ep, err := r.u32()
	if err != nil {
		return nil, err
	}
	st.epoch = int(ep)
	if st.base, err = r.dur(); err != nil {
		return nil, err
	}
	if st.origin, err = r.dur(); err != nil {
		return nil, err
	}
	if st.spent, err = r.i64(); err != nil {
		return nil, err
	}
	nEpochs, err := r.count(68)
	if err != nil {
		return nil, err
	}
	st.epochs = make([]EpochStats, nEpochs)
	for i := range st.epochs {
		e := &st.epochs[i]
		e.Epoch = i
		tn, err := r.u32()
		if err != nil {
			return nil, err
		}
		e.Targets = int(tn)
		if e.Base, err = r.dur(); err != nil {
			return nil, err
		}
		ints := []*int64{&e.Stats.ProbesSent, &e.Stats.Fills, &e.Stats.Skipped, &e.Stats.Replies, &e.Stats.NotMine, &e.Stats.Retries}
		for _, f := range ints {
			if *f, err = r.i64(); err != nil {
				return nil, err
			}
		}
		if e.Stats.Elapsed, err = r.dur(); err != nil {
			return nil, err
		}
		ifaces, err := r.u32()
		if err != nil {
			return nil, err
		}
		e.Interfaces = int(ifaces)
	}
	nPend, err := r.count(16)
	if err != nil {
		return nil, err
	}
	st.pending = make([]netip.Addr, nPend)
	for i := range st.pending {
		if st.pending[i], err = r.addr(); err != nil {
			return nil, err
		}
	}
	nSrc, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if st.source, err = r.bytes(nSrc); err != nil {
		return nil, err
	}
	nStore, err := r.count(1)
	if err != nil {
		return nil, err
	}
	enc, err := r.bytes(nStore)
	if err != nil {
		return nil, err
	}
	if st.total, err = probe.DecodeStore(enc); err != nil {
		return nil, fmt.Errorf("%w: adaptive store: %v", ErrCheckpoint, err)
	}
	nInner, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if st.inner, err = r.bytes(nInner); err != nil {
		return nil, err
	}
	if hasInner != (len(st.inner) > 0) {
		return nil, fmt.Errorf("%w: inner-artifact flag mismatch", ErrCheckpoint)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing adaptive bytes", ErrCheckpoint, len(payload)-r.off)
	}
	return st, nil
}

// AdaptiveResumeConfig supplies the non-serializable halves of a
// resumed adaptive campaign.
type AdaptiveResumeConfig struct {
	// Source is a freshly constructed target source built from the same
	// parameters (seeds, configuration) as the original run's; its
	// generation state is restored from the artifact. Required.
	Source TargetSource
	// DetectAliases rebuilds the between-epoch alias hook; nil disables
	// detection on the resumed run (the original run's verdicts are
	// already folded into the source state).
	DetectAliases func(epoch int, store *probe.Store) []netip.Prefix
	// NewObserver rebuilds per-shard observers for the remaining epochs.
	NewObserver func(shard int) probe.Observer
	// Telemetry receives the resumed run's metrics.
	Telemetry *telemetry.Registry
	// InterruptAt, when nonzero, interrupts the resumed run in turn at
	// that instant (relative to the adaptive run's origin), allowing
	// checkpoint chains.
	InterruptAt time.Duration
}

// ResumeAdaptive reconstructs a checkpointed adaptive campaign. connOf
// must open connections over the same (or an identically seeded)
// vantage universe at the requested offsets from the adaptive origin —
// AdaptiveCampaign.Epoch exposes it. RunContext then continues the run
// exactly: the interrupted epoch finishes from its own embedded
// artifact, and generation resumes from the restored source state.
func ResumeAdaptive(artifact []byte, rc AdaptiveResumeConfig, connOf ConnFactory) (*AdaptiveCampaign, error) {
	if rc.Source == nil {
		return nil, fmt.Errorf("yarrp6: adaptive resume needs a target source")
	}
	version, rest, err := checkpointVersion(artifact)
	if err != nil {
		return nil, err
	}
	if version < 2 {
		return nil, fmt.Errorf("%w: adaptive campaigns need a version-02 artifact", ErrCheckpoint)
	}
	if len(rest) < 9 {
		return nil, fmt.Errorf("%w: truncated section header", ErrCheckpoint)
	}
	typ := rest[0]
	n := binary.LittleEndian.Uint32(rest[1:])
	sum := binary.LittleEndian.Uint32(rest[5:])
	rest = rest[9:]
	if typ != sectAdaptive {
		return nil, fmt.Errorf("%w: not an adaptive artifact; use Resume", ErrCheckpoint)
	}
	if uint64(n) != uint64(len(rest)) {
		return nil, fmt.Errorf("%w: adaptive section length %d for %d payload bytes", ErrCheckpoint, n, len(rest))
	}
	if crc32.ChecksumIEEE(rest) != sum {
		return nil, fmt.Errorf("%w: section %d: %w", ErrCheckpoint, typ, ErrCheckpointCRC)
	}
	st, err := decodeAdaptive(rest)
	if err != nil {
		return nil, err
	}
	if err := rc.Source.RestoreState(st.source); err != nil {
		return nil, fmt.Errorf("%w: source state: %v", ErrCheckpoint, err)
	}
	cfg := st.cfg
	cfg.Source = rc.Source
	cfg.DetectAliases = rc.DetectAliases
	cfg.NewObserver = rc.NewObserver
	cfg.Telemetry = rc.Telemetry
	cfg.InterruptAt = rc.InterruptAt
	return &AdaptiveCampaign{
		cfg:         cfg,
		connOf:      connOf,
		epoch:       st.epoch,
		base:        st.base,
		origin:      st.origin,
		originSet:   true,
		spent:       st.spent,
		total:       st.total,
		epochs:      st.epochs,
		pending:     st.pending,
		resumeInner: st.inner,
		resumed:     true,
	}, nil
}

// IsAdaptiveCheckpoint reports whether the artifact is an adaptive one
// (ResumeAdaptive) rather than a campaign one (Resume), without full
// validation.
func IsAdaptiveCheckpoint(artifact []byte) bool {
	_, rest, err := checkpointVersion(artifact)
	return err == nil && len(rest) > 0 && rest[0] == sectAdaptive
}
