package core

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// ckptRun is one campaign execution's comparable artifacts.
type ckptRun struct {
	store    *probe.Store
	graph    []byte
	progress []byte
	stats    CampaignStats
}

// ckptVantage builds a fresh identically-seeded universe and vantage —
// the resumed half of every test runs against its own universe, the way
// a restarted process would.
func ckptVantage(seed int64) *netsim.Vantage {
	u := campaignUniverse(seed)
	return u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
}

// graphNDJSON derives the canonical topology-graph export from a store.
// Resumed campaigns rebuild graphs from the merged store (streaming
// observers cannot see pre-resume replies), so both sides of every
// comparison derive theirs the same way.
func graphNDJSON(t *testing.T, store *probe.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.FromStore(store, "US-EDU-1", wire.ProtoICMPv6).WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ckptReference runs the uninterrupted campaign at the given cell.
func ckptReference(t *testing.T, seed int64, targets []netip.Addr, shards, batch int) ckptRun {
	t.Helper()
	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = batch
	var progress bytes.Buffer
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{Writer: &progress},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return ckptRun{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(), stats: stats}
}

// ckptInterruptResume interrupts the campaign at interruptAt, serializes
// the checkpoint, then resumes it on a fresh identically-seeded universe
// and runs to completion.
func ckptInterruptResume(t *testing.T, seed int64, targets []netip.Addr, shards, batch int, interruptAt time.Duration) ckptRun {
	t.Helper()
	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = batch
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{},
		InterruptAt: interruptAt,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	partial, _, err := camp.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got err %v, want ErrInterrupted", err)
	}
	if partial == nil {
		t.Fatal("interrupted run returned no partial store")
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return ckptResume(t, seed, art)
}

// ckptResume resumes an artifact against a fresh universe.
func ckptResume(t *testing.T, seed int64, art []byte) ckptRun {
	t.Helper()
	v := ckptVantage(seed)
	var progress bytes.Buffer
	camp, err := Resume(art, ResumeConfig{
		Telemetry:      telemetry.NewRegistry(),
		ProgressWriter: &progress,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	store, stats, err := camp.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return ckptRun{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(), stats: stats}
}

// assertRunsEqual byte-compares the store, graph export, progress
// stream, merged discovery curve, and counters of two runs.
func assertRunsEqual(t *testing.T, label string, got, want ckptRun) {
	t.Helper()
	if !got.store.Equal(want.store) {
		t.Fatalf("%s: store differs", label)
	}
	if !bytes.Equal(got.graph, want.graph) {
		t.Errorf("%s: graph differs", label)
	}
	if !bytes.Equal(got.progress, want.progress) {
		t.Errorf("%s: progress stream differs:\nwant: %s\ngot:  %s", label, want.progress, got.progress)
	}
	g, w := got.stats, want.stats
	if g.ProbesSent != w.ProbesSent || g.Fills != w.Fills || g.Replies != w.Replies ||
		g.NotMine != w.NotMine || g.Elapsed != w.Elapsed {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, g.Stats, w.Stats)
	}
	if len(g.Curve) != len(w.Curve) {
		t.Fatalf("%s: curve length %d vs %d", label, len(g.Curve), len(w.Curve))
	}
	for i := range g.Curve {
		if g.Curve[i] != w.Curve[i] {
			t.Fatalf("%s: curve point %d differs: %+v vs %+v", label, i, g.Curve[i], w.Curve[i])
		}
	}
}

// TestCampaignCheckpointResumeMatrix is the checkpoint acceptance test:
// at every (shards, batch) cell, a campaign interrupted mid-send and one
// interrupted deep in its drain tail must — after resume on a fresh
// identically-seeded universe — be byte-identical to the uninterrupted
// run in store, graph export, progress stream, merged curve, and
// counters.
func TestCampaignCheckpointResumeMatrix(t *testing.T) {
	const seed = 1213
	targets := campaignTargets(t, seed, 61)
	// 732-slot domain at 500 pps: sends span 1.464s, drains reach ~3.5s.
	// 600ms lands mid-window for early shards and before late shard
	// windows open; 1.6s lands inside every shard's drain tail.
	instants := []time.Duration{600 * time.Millisecond, 1600 * time.Millisecond}
	ref := ckptReference(t, seed, targets, 1, 1)
	if len(ref.progress) == 0 {
		t.Fatal("reference run produced an empty progress stream")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 64} {
			// The resumed run must equal the same-cell uninterrupted run in
			// every artifact including the merged curve (whose point count
			// depends on the shard layout); store, graph, and progress are
			// additionally shard-count-invariant, so they must also equal
			// the serial reference.
			refCell := ckptReference(t, seed, targets, shards, batch)
			if !refCell.store.Equal(ref.store) {
				t.Fatalf("shards=%d batch=%d: reference store differs from serial reference", shards, batch)
			}
			if !bytes.Equal(refCell.progress, ref.progress) {
				t.Fatalf("shards=%d batch=%d: reference progress differs from serial reference", shards, batch)
			}
			for _, at := range instants {
				got := ckptInterruptResume(t, seed, targets, shards, batch, at)
				t.Logf("shards=%d batch=%d interrupt=%v", shards, batch, at)
				assertRunsEqual(t, "resumed", got, refCell)
			}
		}
	}
}

// TestCampaignCheckpointChain interrupts, resumes with a second
// interrupt, and resumes again: checkpoints compose.
func TestCampaignCheckpointChain(t *testing.T) {
	const seed = 4242
	targets := campaignTargets(t, seed, 61)
	ref := ckptReference(t, seed, targets, 2, 64)

	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 64
	camp := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 2, RecordPaths: true,
		Telemetry: telemetry.NewRegistry(), Progress: &ProgressConfig{},
		InterruptAt: 400 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("first interrupt: %v", err)
	}
	art1, err := camp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	v2 := ckptVantage(seed)
	camp2, err := Resume(art1, ResumeConfig{
		Telemetry:   telemetry.NewRegistry(),
		InterruptAt: 900 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v2.Clone(start) })
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := camp2.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("second interrupt: %v", err)
	}
	art2, err := camp2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	got := ckptResume(t, seed, art2)
	assertRunsEqual(t, "chained resume", got, ref)
}

// TestCampaignRewindChain drives the in-process continuation path the
// scheduler's periodic checkpointing takes: DeferMerge skips the
// partial-store fold on each interrupted run, Checkpoint serializes the
// durable artifact, and Rewind continues on the live connections —
// no decode round trip, no fresh clones. The final results must be
// byte-identical to the uninterrupted reference.
func TestCampaignRewindChain(t *testing.T) {
	const seed = 7171
	targets := campaignTargets(t, seed, 61)
	ref := ckptReference(t, seed, targets, 2, 64)

	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 64
	var progress bytes.Buffer
	connOf := func(_ int, start time.Duration) probe.Conn { return v.Clone(start) }
	cuts := []time.Duration{400 * time.Millisecond, 900 * time.Millisecond, 1400 * time.Millisecond}
	camp := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 2, RecordPaths: true,
		Telemetry:  telemetry.NewRegistry(),
		Progress:   &ProgressConfig{Writer: &progress},
		DeferMerge: true, InterruptAt: cuts[0],
	}, connOf)
	for i := 0; ; i++ {
		store, stats, err := camp.Run()
		if err == nil {
			got := ckptRun{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(), stats: stats}
			assertRunsEqual(t, "rewound", got, ref)
			break
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("cut %d: %v", i, err)
		}
		if store != nil {
			t.Fatalf("cut %d: DeferMerge run returned a merged store", i)
		}
		if camp.MergedStore() == nil {
			t.Fatalf("cut %d: MergedStore returned nil after deferred interrupt", i)
		}
		// The durable artifact is still cut here on the periodic path;
		// it must stay decodable even though the continuation is live.
		art, err := camp.Checkpoint()
		if err != nil {
			t.Fatalf("cut %d: checkpoint: %v", i, err)
		}
		if _, err := InspectCheckpoint(art); err != nil {
			t.Fatalf("cut %d: artifact invalid: %v", i, err)
		}
		next := time.Duration(0)
		if i+1 < len(cuts) {
			next = cuts[i+1]
		}
		camp, err = camp.Rewind(ResumeConfig{
			Telemetry:      telemetry.NewRegistry(),
			ProgressWriter: &progress,
			InterruptAt:    next,
		}, connOf)
		if err != nil {
			t.Fatalf("cut %d: rewind: %v", i, err)
		}
	}
}

// TestCampaignCancelBeforeRun: a pre-cancelled context stops every
// shard before its first probe; the checkpoint resumes into the full
// campaign.
func TestCampaignCancelBeforeRun(t *testing.T) {
	const seed = 99
	targets := campaignTargets(t, seed, 61)
	ref := ckptReference(t, seed, targets, 2, 64)

	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 64
	camp := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 2, RecordPaths: true,
		Telemetry: telemetry.NewRegistry(), Progress: &ProgressConfig{},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	store, stats, err := camp.RunContext(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled run: got %v, want ErrInterrupted", err)
	}
	if store == nil {
		t.Fatal("cancelled run returned no store")
	}
	if stats.ProbesSent != 0 {
		t.Fatalf("pre-cancelled run sent %d probes", stats.ProbesSent)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	got := ckptResume(t, seed, art)
	assertRunsEqual(t, "resume from zero", got, ref)
}

// TestCampaignCancelMidRun cancels concurrently with the run under load.
// Wherever the cut lands, the partial results must be valid and the
// checkpoint must resume into the byte-identical full campaign; run with
// -race this doubles as the cancellation data-race test.
func TestCampaignCancelMidRun(t *testing.T) {
	const seed = 311
	targets := campaignTargets(t, seed, 61)
	ref := ckptReference(t, seed, targets, 4, 64)

	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 64
	camp := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 4, RecordPaths: true,
		Telemetry: telemetry.NewRegistry(), Progress: &ProgressConfig{},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	store, _, err := camp.RunContext(ctx)
	if err != nil && !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled run: %v", err)
	}
	if store == nil {
		t.Fatal("cancelled run returned no store")
	}
	if err == nil {
		// The campaign outran the cancel; nothing to resume.
		return
	}
	art, cerr := camp.Checkpoint()
	if cerr != nil {
		t.Fatal(cerr)
	}
	got := ckptResume(t, seed, art)
	assertRunsEqual(t, "resume after concurrent cancel", got, ref)
}

// TestCheckpointErrors pins the typed-error surface: completed and
// un-run campaigns are not checkpointable, and malformed artifacts are
// rejected with ErrCheckpoint (CRC corruption specifically with
// ErrCheckpointCRC) rather than panics.
func TestCheckpointErrors(t *testing.T) {
	const seed = 7
	targets := campaignTargets(t, seed, 13)
	v := ckptVantage(seed)
	camp := NewCampaign(CampaignConfig{Config: campaignCfg(targets), Shards: 2},
		func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, err := camp.Checkpoint(); !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("un-run campaign: %v", err)
	}
	if _, _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Checkpoint(); !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("completed campaign: %v", err)
	}

	// A real artifact to corrupt.
	v2 := ckptVantage(seed)
	cfg := campaignCfg(targets)
	camp2 := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 2, RecordPaths: true,
		InterruptAt: 100 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v2.Clone(start) })
	if _, _, err := camp2.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	art, err := camp2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(art[:4], ResumeConfig{}, nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("truncated magic: %v", err)
	}
	if _, err := Resume(art[:len(art)-3], ResumeConfig{}, nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("truncated artifact: %v", err)
	}
	flipped := append([]byte(nil), art...)
	flipped[len(flipped)-1] ^= 0x40
	if _, err := Resume(flipped, ResumeConfig{}, nil); !errors.Is(err, ErrCheckpointCRC) {
		t.Fatalf("corrupted artifact: got %v, want ErrCheckpointCRC", err)
	}
	if _, err := Resume([]byte("Y6CKPT99"), ResumeConfig{}, nil); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("wrong version: %v", err)
	}
	// The intact artifact still resumes.
	if _, err := Resume(art, ResumeConfig{}, nil); err != nil {
		t.Fatalf("intact artifact rejected: %v", err)
	}
}
