package core

import (
	"errors"
	"testing"
	"time"

	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// fuzzArtifact builds one small valid checkpoint artifact for seeding.
func fuzzArtifact(tb testing.TB) []byte {
	tb.Helper()
	const seed = 33
	targets := campaignTargets(tb, seed, 13)
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	camp := NewCampaign(CampaignConfig{
		Config:      campaignCfg(targets),
		Shards:      2,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{},
		InterruptAt: 120 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, ErrInterrupted) {
		tb.Fatalf("seed campaign: %v", err)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		tb.Fatal(err)
	}
	return art
}

// fuzzAdaptiveArtifact builds one small valid adaptive checkpoint
// artifact (magic + sectAdaptive section) for seeding.
func fuzzAdaptiveArtifact(tb testing.TB) []byte {
	tb.Helper()
	const seed = 33
	u, v := saturationVantage(seed)
	pool := gatewayTargets(u, 24, seed)
	a := NewAdaptive(adaptiveCfg(pool, 2, 64, 10*time.Millisecond),
		func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := a.Run(); !errors.Is(err, ErrInterrupted) {
		tb.Fatalf("seed adaptive campaign: %v", err)
	}
	art, err := a.Checkpoint()
	if err != nil {
		tb.Fatal(err)
	}
	return art
}

// FuzzCheckpointDecode hammers the checkpoint artifact decoders:
// arbitrary input must either resume into a campaign or fail with an
// error wrapping ErrCheckpoint (CRC damage specifically wrapping
// ErrCheckpointCRC) — never panic, never silently succeed on
// structurally invalid input. Adaptive-flavored inputs are pushed
// through ResumeAdaptive under the same contract, and plain Resume on
// an adaptive artifact must refuse with an ErrCheckpoint-wrapping
// redirect rather than misread the artifact.
func FuzzCheckpointDecode(f *testing.F) {
	valid := fuzzArtifact(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add(downgradeArtifactV1(f, valid))
	adaptive := fuzzAdaptiveArtifact(f)
	f.Add(adaptive)
	f.Add(adaptive[:len(adaptive)-7])
	aflipped := append([]byte(nil), adaptive...)
	aflipped[len(aflipped)/2] ^= 0x04
	f.Add(aflipped)
	f.Add([]byte("Y6CKPT01"))
	f.Add([]byte("Y6CKPT02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		camp, err := Resume(data, ResumeConfig{}, nil)
		if err != nil {
			if !errors.Is(err, ErrCheckpoint) {
				t.Fatalf("decode error does not wrap ErrCheckpoint: %v", err)
			}
			if camp != nil {
				t.Fatal("non-nil campaign alongside decode error")
			}
		} else if camp == nil {
			t.Fatal("nil campaign with nil error")
		}
		if IsAdaptiveCheckpoint(data) {
			ac, aerr := ResumeAdaptive(data, AdaptiveResumeConfig{
				Source: &epochPoolSource{},
			}, func(_ int, start time.Duration) probe.Conn { return nil })
			if aerr != nil {
				if !errors.Is(aerr, ErrCheckpoint) {
					t.Fatalf("adaptive decode error does not wrap ErrCheckpoint: %v", aerr)
				}
				if ac != nil {
					t.Fatal("non-nil adaptive campaign alongside decode error")
				}
			} else if ac == nil {
				t.Fatal("nil adaptive campaign with nil error")
			}
		}
	})
}
