package core

// Shard × plan-cache determinism matrix. The sharded campaign engine
// replays the single-prober schedule, and the simulator's flow-plan
// cache stores pure-function values — so every combination of shard
// count and cache setting must merge to the same store. Uses the
// campaign tests' non-saturating rate-limit regime: shard equality only
// holds exactly when token buckets never empty (they are epoch-scoped
// per shard, see Campaign's package comment).

import (
	"testing"
	"time"

	"beholder/internal/netsim"
	"beholder/internal/probe"
)

// runShardedCache is runSharded with an explicit plan-cache override on
// the parent vantage; clones (one per shard) inherit it.
func runShardedCache(t *testing.T, seed int64, shards int, planCache int) *probe.Store {
	t.Helper()
	targets := campaignTargets(t, seed, 64)
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	v.SetPlanCache(planCache)
	camp := NewCampaign(CampaignConfig{
		Config:      campaignCfg(targets),
		Shards:      shards,
		RecordPaths: true,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, _, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestCampaignShardCacheMatrix: {1, 4} shards × {default cache, cache
// off, tiny cache} all produce probe.Store-equal results — determinism
// is not traded for speed.
func TestCampaignShardCacheMatrix(t *testing.T) {
	const seed = 77
	ref := runShardedCache(t, seed, 1, 1<<13)
	cases := []struct {
		name      string
		shards    int
		planCache int
	}{
		{"1shard-off", 1, 0},
		{"1shard-tiny", 1, 16},
		{"4shard-default", 4, 1 << 13},
		{"4shard-off", 4, 0},
		{"4shard-tiny", 4, 16},
	}
	for _, tc := range cases {
		got := runShardedCache(t, seed, tc.shards, tc.planCache)
		if !got.Equal(ref) {
			t.Fatalf("%s: store differs from 1-shard default-cache reference", tc.name)
		}
	}
}
