package core

import (
	"errors"
	"testing"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// TestInspectCheckpoint pins the read-only artifact view against the
// campaign that wrote it: every field a resume would pin from the
// artifact must come back exactly, and structural damage must fail with
// the same typed errors Resume raises.
func TestInspectCheckpoint(t *testing.T) {
	const seed = 909
	targets := campaignTargets(t, seed, 47)
	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 32
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      3,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{},
		InterruptAt: 150 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: %v", err)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	info, err := InspectCheckpoint(art)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Shards != 3 || info.Batch != 32 || info.Proto != wire.ProtoICMPv6 {
		t.Fatalf("shape = shards %d batch %d proto %d", info.Shards, info.Batch, info.Proto)
	}
	if info.Targets != len(targets) || info.Key != cfg.Key || info.PPS != cfg.PPS {
		t.Fatalf("identity = targets %d key %d pps %v", info.Targets, info.Key, info.PPS)
	}
	if info.MinTTL != 1 || info.MaxTTL != cfg.MaxTTL || !info.Fill || !info.RecordPaths || !info.Progress {
		t.Fatalf("options = %+v", info)
	}
	if info.Epoch != camp.Epoch() {
		t.Fatalf("epoch %v, campaign %v", info.Epoch, camp.Epoch())
	}

	if _, err := InspectCheckpoint(art[:len(art)/2]); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("truncated artifact: %v", err)
	}
	bad := append([]byte(nil), art...)
	bad[len(bad)-1] ^= 0xff
	if _, err := InspectCheckpoint(bad); !errors.Is(err, ErrCheckpointCRC) {
		t.Fatalf("corrupted artifact: %v", err)
	}
	if _, err := InspectCheckpoint([]byte("not a checkpoint")); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("garbage artifact: %v", err)
	}
}
