package core

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// saturationVantage builds a universe whose ICMPv6 rate limiters the
// campaign schedule below actually exhausts: shallow aggressive buckets
// against an unpaced 8 kpps probe train through a shared access chain.
// The other matrix tests deliberately run at AggressivePercent 0; this
// file is the one that probes past the rate limits, which is exactly
// the regime where shard-window bucket priming and checkpointed bucket
// state earn their keep.
func saturationVantage(seed int64) (*netsim.Universe, *netsim.Vantage) {
	cfg := netsim.TestConfig(seed)
	cfg.AggressivePercent = 60
	cfg.RateLimitTokensMin = 20
	cfg.RateLimitTokensMax = 80
	cfg.RateLimitBurstMin = 4
	cfg.RateLimitBurstMax = 16
	u := netsim.NewUniverse(cfg)
	return u, u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
}

func saturationCfg(targets []netip.Addr) Config {
	return Config{Targets: targets, PPS: 8000, MaxTTL: 12, Key: 31, Fill: true}
}

// satReference runs the uninterrupted saturating campaign at the given
// cell, returning the run artifacts and the universe's rate-limit drop
// counter.
func satReference(t *testing.T, seed int64, targets []netip.Addr, shards, batch int) (ckptRun, int64) {
	t.Helper()
	u, v := saturationVantage(seed)
	cfg := saturationCfg(targets)
	cfg.Batch = batch
	var progress bytes.Buffer
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{Writer: &progress},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	run := ckptRun{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(), stats: stats}
	return run, u.Stats.RateLimitDropped
}

// satInterruptResume interrupts the saturating campaign at interruptAt,
// checkpoints, and resumes on a fresh identically-seeded universe.
func satInterruptResume(t *testing.T, seed int64, targets []netip.Addr, shards, batch int, interruptAt time.Duration) ckptRun {
	t.Helper()
	_, v := saturationVantage(seed)
	cfg := saturationCfg(targets)
	cfg.Batch = batch
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		Progress:    &ProgressConfig{},
		InterruptAt: interruptAt,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got err %v, want ErrInterrupted", err)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	_, v2 := saturationVantage(seed)
	var progress bytes.Buffer
	camp2, err := Resume(art, ResumeConfig{
		Telemetry:      telemetry.NewRegistry(),
		ProgressWriter: &progress,
	}, func(_ int, start time.Duration) probe.Conn { return v2.Clone(start) })
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	store, stats, err := camp2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return ckptRun{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(), stats: stats}
}

// TestCampaignSaturationMatrix is the saturation-regime acceptance
// test: with router token buckets exhausted mid-run, every (shards,
// batch) cell — uninterrupted, and interrupted both mid-send and in the
// drain tail with a resume on a fresh universe — must stay
// byte-identical to the serial reference in store, graph export,
// progress stream, merged curve, and counters. This is the matrix that
// used to carry the "a few extra replies near shard-window starts"
// caveat: shard clones now open with their buckets primed to the
// window-start levels, and checkpoints carry the bucket state across
// the interrupt, so no cell deviates even past the rate limits.
func TestCampaignSaturationMatrix(t *testing.T) {
	const seed = 907
	u, _ := saturationVantage(seed)
	targets := gatewayTargets(u, 48, seed)
	// 48 targets × 12 TTLs = 576 probes at 8 kpps: sends span 72ms.
	// 40ms lands mid-send inside every shard window; 110ms lands in the
	// drain tail.
	instants := []time.Duration{40 * time.Millisecond, 110 * time.Millisecond}
	ref, dropped := satReference(t, seed, targets, 1, 1)
	if dropped == 0 {
		t.Fatal("reference run never tripped a rate limiter; the matrix is not testing saturation")
	}
	if len(ref.progress) == 0 {
		t.Fatal("reference run produced an empty progress stream")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 64} {
			refCell, _ := satReference(t, seed, targets, shards, batch)
			if !refCell.store.Equal(ref.store) {
				t.Fatalf("shards=%d batch=%d: store differs from serial reference under saturation", shards, batch)
			}
			if !bytes.Equal(refCell.graph, ref.graph) {
				t.Fatalf("shards=%d batch=%d: graph differs from serial reference under saturation", shards, batch)
			}
			if !bytes.Equal(refCell.progress, ref.progress) {
				t.Fatalf("shards=%d batch=%d: progress differs from serial reference under saturation", shards, batch)
			}
			for _, at := range instants {
				got := satInterruptResume(t, seed, targets, shards, batch, at)
				t.Logf("shards=%d batch=%d interrupt=%v", shards, batch, at)
				assertRunsEqual(t, "saturated resume", got, refCell)
			}
		}
	}
}
