// Package core implements Yarrp6, the paper's primary contribution: a
// stateless, randomized, high-speed IPv6 topology prober (Section 4).
//
// Yarrp6 walks the cross product of targets and TTLs in a keyed
// pseudorandom permutation so that no router or path receives probe
// bursts — the property that defeats mandated ICMPv6 rate limiting. All
// per-probe state travels inside the probe itself (Figure 4; see
// probe.Codec for the layout) and is recovered from the ICMPv6 error
// quotation, so the prober retains no per-destination state: its memory
// is O(max TTL), never O(targets), and a campaign can be resumed from a
// permutation counter alone.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"beholder/internal/perm"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

// Magic re-exports the probe payload magic for callers inspecting wire
// traffic.
const Magic = probe.Magic

// PayloadLen re-exports the probe payload length (Figure 4).
const PayloadLen = probe.PayloadLen

// Config parameterizes a Yarrp6 campaign.
type Config struct {
	// Targets to probe. The slice is not retained beyond Run.
	Targets []netip.Addr
	// MinTTL and MaxTTL bound the randomized TTL range (inclusive).
	// Defaults: 1 and 16 (the paper's tuned maximum, Table 6).
	MinTTL, MaxTTL uint8
	// PPS is the probing rate in packets per second. Default 1000 (the
	// paper's campaign rate).
	PPS float64
	// Proto selects the probe transport: wire.ProtoICMPv6 (default),
	// wire.ProtoUDP, or wire.ProtoTCP.
	Proto uint8
	// Instance distinguishes concurrent prober instances.
	Instance uint8
	// Key seeds the probe-order permutation; campaigns with equal keys
	// and targets probe in identical order.
	Key uint64
	// PermStart and PermEnd bound the walked slice of the permutation
	// domain [PermStart, PermEnd): the prober emits permutation indices
	// PermStart, PermStart+1, …, PermEnd-1. PermEnd == 0 means the full
	// domain. Campaign shards each walk one contiguous slice; a
	// checkpointed campaign resumes from its recorded counter the same
	// way. The slice selects which probes are sent, not when: pacing
	// still counts from the connection's current time.
	PermStart, PermEnd uint64
	// Fill enables fill mode: a response from hop h >= MaxTTL triggers
	// an immediate probe at h+1, up to FillLimit (Section 4.1).
	Fill      bool
	FillLimit uint8 // default 32
	// NeighborhoodWindow, when nonzero, enables the local-neighborhood
	// heuristic (Section 4.2): for TTLs at or below NeighborhoodTTL, if
	// no new interface address has been discovered at that TTL within
	// the window, further probes at that TTL are skipped.
	NeighborhoodWindow time.Duration
	NeighborhoodTTL    uint8
	// DrainTimeout is how long to keep collecting replies after the last
	// probe. Default 2s.
	DrainTimeout time.Duration
	// Observer, when non-nil, receives every stored reply as it
	// arrives — the streaming hook the topology-graph builder attaches
	// through. It runs on the prober goroutine, after the store fold.
	Observer probe.Observer
}

func (c *Config) setDefaults() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("yarrp6: no targets")
	}
	if c.MinTTL == 0 {
		c.MinTTL = 1
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 16
	}
	if c.MinTTL > c.MaxTTL {
		return fmt.Errorf("yarrp6: MinTTL %d > MaxTTL %d", c.MinTTL, c.MaxTTL)
	}
	if c.PPS <= 0 {
		c.PPS = 1000
	}
	if c.Proto == 0 {
		c.Proto = wire.ProtoICMPv6
	}
	if c.Proto != wire.ProtoICMPv6 && c.Proto != wire.ProtoUDP && c.Proto != wire.ProtoTCP {
		return fmt.Errorf("yarrp6: unsupported transport %d", c.Proto)
	}
	if c.FillLimit == 0 {
		c.FillLimit = 32
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.NeighborhoodWindow > 0 && c.NeighborhoodTTL == 0 {
		c.NeighborhoodTTL = 3
	}
	return nil
}

// Domain returns the size of the (target × TTL) permutation domain of a
// configuration whose defaults have been applied.
func Domain(c *Config) uint64 {
	return uint64(len(c.Targets)) * (uint64(c.MaxTTL-c.MinTTL) + 1)
}

// Stats reports a campaign's send-side and recovery counters.
type Stats struct {
	ProbesSent int64
	Fills      int64
	Skipped    int64 // suppressed by the neighborhood heuristic
	Replies    int64
	NotMine    int64 // replies failing authentication
	Curve      []CurvePoint
	Elapsed    time.Duration
}

// CurvePoint samples discovery progress (Figure 7): after Probes probes,
// Interfaces unique interface addresses were known.
type CurvePoint struct {
	Probes     int64
	Interfaces int
}

// Yarrp6 is a configured prober bound to a vantage connection.
type Yarrp6 struct {
	conn  probe.Conn
	cfg   Config
	codec *probe.Codec

	pkt  []byte
	rbuf []byte

	stats Stats

	// Neighborhood heuristic state: bounded by the TTL range, not by
	// targets — the prober stays O(1) in destinations.
	lastNew [256]time.Duration
}

// New creates a prober. The configuration is validated at Run.
func New(conn probe.Conn, cfg Config) *Yarrp6 {
	return &Yarrp6{
		conn: conn,
		cfg:  cfg,
		pkt:  make([]byte, 128),
		rbuf: make([]byte, wire.MinMTU),
	}
}

// initCodec validates configuration and anchors the codec epoch at the
// current time; Run calls it, and tests exercising probe construction
// directly call it too.
func (y *Yarrp6) initCodec() error {
	if err := y.cfg.setDefaults(); err != nil {
		return err
	}
	y.codec = probe.NewCodec(y.conn, y.cfg.Proto, y.cfg.Instance)
	// Each target is probed at every TTL in the randomized range with an
	// identical flow identity; the template cache turns all but the
	// first build per target into a copy-and-patch.
	y.codec.SetProbeCache(8192)
	return nil
}

// buildProbe constructs the wire packet for (target, ttl) into buf.
func (y *Yarrp6) buildProbe(buf []byte, target netip.Addr, ttl uint8) int {
	return y.codec.BuildProbe(buf, target, ttl)
}

// Run executes the campaign, folding every recovered reply into store.
func (y *Yarrp6) Run(store *probe.Store) (Stats, error) {
	if err := y.initCodec(); err != nil {
		return Stats{}, err
	}
	cfg := y.cfg
	y.stats = Stats{}

	domain := Domain(&cfg)
	p, err := perm.New(cfg.Key, domain)
	if err != nil {
		return Stats{}, fmt.Errorf("yarrp6: %w", err)
	}
	start, end := cfg.PermStart, cfg.PermEnd
	if end == 0 || end > domain {
		end = domain
	}
	if start > end {
		return Stats{}, fmt.Errorf("yarrp6: PermStart %d beyond PermEnd %d", start, end)
	}
	gap := time.Duration(float64(time.Second) / cfg.PPS)
	// Sample the discovery curve on a monotonic probe-count threshold:
	// fill-mode probes advance the counter inside handleReply, so a
	// modulo check would skip sample points whenever a fill lands
	// between two loop iterations. The curve is bounded by the step
	// arithmetic at ~129 samples plus the final point; preallocating it
	// keeps append off the steady-state send path.
	curveStep := int64((end-start)/128) + 1
	nextCurve := curveStep
	y.stats.Curve = make([]CurvePoint, 0, 132)

	it := p.Resume(start)
	for it.Pos() < end {
		v, ok := it.Next()
		if !ok {
			break
		}
		target := cfg.Targets[v%uint64(len(cfg.Targets))]
		ttl := cfg.MinTTL + uint8(v/uint64(len(cfg.Targets)))
		if y.skipByNeighborhood(ttl) {
			y.stats.Skipped++
			continue
		}
		if err := y.sendProbe(target, ttl); err != nil {
			return y.stats, err
		}
		y.conn.Sleep(gap)
		y.drain(store)
		if y.stats.ProbesSent >= nextCurve {
			y.stats.Curve = append(y.stats.Curve, CurvePoint{y.stats.ProbesSent, store.NumInterfaces()})
			for nextCurve <= y.stats.ProbesSent {
				nextCurve += curveStep
			}
		}
	}
	// Collect stragglers. Stepping by the send gap keeps this drain
	// schedule on the same virtual instants a longer-running prober
	// would drain at, so a campaign shard processes its tail replies —
	// and sends any fill probes they trigger — at exactly the times the
	// unsharded prober would have.
	deadline := y.conn.Now() + cfg.DrainTimeout
	for y.conn.Now() < deadline {
		y.conn.Sleep(gap)
		y.drain(store)
	}
	y.stats.Curve = append(y.stats.Curve, CurvePoint{y.stats.ProbesSent, store.NumInterfaces()})
	y.stats.Elapsed = y.conn.Now() - y.codec.Epoch()
	y.stats.NotMine = y.codec.NotMine
	return y.stats, nil
}

func (y *Yarrp6) skipByNeighborhood(ttl uint8) bool {
	if y.cfg.NeighborhoodWindow == 0 || ttl > y.cfg.NeighborhoodTTL {
		return false
	}
	last := y.lastNew[ttl]
	return last != 0 && y.conn.Now()-last > y.cfg.NeighborhoodWindow
}

func (y *Yarrp6) sendProbe(target netip.Addr, ttl uint8) error {
	n := y.buildProbe(y.pkt, target, ttl)
	if err := y.conn.Send(y.pkt[:n]); err != nil {
		return err
	}
	y.stats.ProbesSent++
	return nil
}

// drain processes every deliverable reply.
func (y *Yarrp6) drain(store *probe.Store) {
	for {
		n, ok := y.conn.Recv(y.rbuf)
		if !ok {
			return
		}
		y.handleReply(y.rbuf[:n], store)
	}
}

// handleReply parses one reply, folds it into the store, and drives the
// fill-mode and neighborhood mechanisms.
func (y *Yarrp6) handleReply(b []byte, store *probe.Store) {
	r, ok := y.codec.ParseReply(b)
	if !ok {
		return
	}
	y.stats.Replies++
	newIface := store.Add(r)
	if y.cfg.Observer != nil {
		y.cfg.Observer.OnReply(r)
	}
	if newIface && r.TTL != 0 && r.TTL <= y.cfg.NeighborhoodTTL {
		y.lastNew[r.TTL] = y.conn.Now()
	}
	// Fill mode: a response from at or past the maximum randomized TTL
	// extends the trace sequentially toward the destination. Fills are
	// uncommon and land at path tails, where sequential probing has the
	// least rate-limiting impact (Section 4.1). The fill probe is built
	// in the prober's own packet buffer (y.pkt via sendProbe) — safe
	// even though b still holds the triggering reply, because the
	// parsed Reply carries no slices into either buffer — so fills
	// allocate nothing.
	if y.cfg.Fill && r.Kind == probe.KindTimeExceeded && r.StateRecovered &&
		r.TTL >= y.cfg.MaxTTL && r.TTL < y.cfg.FillLimit && r.Target.IsValid() {
		if err := y.sendProbe(r.Target, r.TTL+1); err == nil {
			y.stats.Fills++
		}
	}
}
