// Package core implements Yarrp6, the paper's primary contribution: a
// stateless, randomized, high-speed IPv6 topology prober (Section 4).
//
// Yarrp6 walks the cross product of targets and TTLs in a keyed
// pseudorandom permutation so that no router or path receives probe
// bursts — the property that defeats mandated ICMPv6 rate limiting. All
// per-probe state travels inside the probe itself (Figure 4; see
// probe.Codec for the layout) and is recovered from the ICMPv6 error
// quotation, so the prober retains no per-destination state: its memory
// is O(max TTL), never O(targets), and a campaign can be resumed from a
// permutation counter alone.
package core

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"beholder/internal/perm"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// Magic re-exports the probe payload magic for callers inspecting wire
// traffic.
const Magic = probe.Magic

// PayloadLen re-exports the probe payload length (Figure 4).
const PayloadLen = probe.PayloadLen

// Config parameterizes a Yarrp6 campaign.
type Config struct {
	// Targets to probe. The slice is not retained beyond Run.
	Targets []netip.Addr
	// MinTTL and MaxTTL bound the randomized TTL range (inclusive).
	// Defaults: 1 and 16 (the paper's tuned maximum, Table 6).
	MinTTL, MaxTTL uint8
	// PPS is the probing rate in packets per second. Default 1000 (the
	// paper's campaign rate).
	PPS float64
	// Proto selects the probe transport: wire.ProtoICMPv6 (default),
	// wire.ProtoUDP, or wire.ProtoTCP.
	Proto uint8
	// Instance distinguishes concurrent prober instances.
	Instance uint8
	// Key seeds the probe-order permutation; campaigns with equal keys
	// and targets probe in identical order.
	Key uint64
	// PermStart and PermEnd bound the walked slice of the permutation
	// domain [PermStart, PermEnd): the prober emits permutation indices
	// PermStart, PermStart+1, …, PermEnd-1. PermEnd == 0 means the full
	// domain. Campaign shards each walk one contiguous slice; a
	// checkpointed campaign resumes from its recorded counter the same
	// way. The slice selects which probes are sent, not when: pacing
	// still counts from the connection's current time.
	PermStart, PermEnd uint64
	// Batch is the send-batch size: how many probes are built and
	// handed to the connection per batch call when it supports batching
	// (probe.BatchConn). Batching changes only how probes are
	// processed, never the virtual schedule — every probe departs at
	// the same instant, every reply is drained at the same instant, and
	// all results are byte-identical at any batch size. Zero selects
	// DefaultBatch; values below one (and connections without batch
	// support, and runs using the neighborhood heuristic, whose skip
	// decisions are taken per probe instant) degrade to one probe per
	// call.
	Batch int
	// Fill enables fill mode: a response from hop h >= MaxTTL triggers
	// an immediate probe at h+1, up to FillLimit (Section 4.1).
	Fill      bool
	FillLimit uint8 // default 32
	// NeighborhoodWindow, when nonzero, enables the local-neighborhood
	// heuristic (Section 4.2): for TTLs at or below NeighborhoodTTL, if
	// no new interface address has been discovered at that TTL within
	// the window, further probes at that TTL are skipped.
	NeighborhoodWindow time.Duration
	NeighborhoodTTL    uint8
	// DrainTimeout is how long to keep collecting replies after the last
	// probe. Default 2s.
	DrainTimeout time.Duration
	// Observer, when non-nil, receives every stored reply as it
	// arrives — the streaming hook the topology-graph builder attaches
	// through. It runs on the prober goroutine, after the store fold.
	Observer probe.Observer

	// sharedTmpl routes probe-template caching through a campaign-shared
	// store instead of a per-prober cache: shard codecs differ only by
	// instance byte, which templates hold variable, so each target's
	// template is built once per campaign rather than once per shard.
	// Campaign sets it; zero means a private per-prober cache.
	sharedTmpl *probe.TmplStore

	// telemetry, when set, is this prober's shard-local metric sink.
	// Counters derived from Stats fold in at curve-sample cadence and run
	// end (the delta-flush discipline); only the distribution metrics
	// (RTT, batch fill, drain gaps) observe per event, through local
	// non-atomic views. Campaign sets it; nil costs nothing on the hot
	// path beyond a few predicted nil checks per batch.
	telemetry *telemetry.Shard
	// progress, when set, records deterministic virtual-time progress
	// samples: the prober caps batched send runs at the recorder's
	// thresholds and records whenever its clock crosses one, plus pinning
	// samples after drain-tail activity and at run boundaries. Campaign
	// sets it and merges the per-shard series.
	progress *telemetry.Progress

	// interruptAt, when nonzero, stops the run the moment the clock
	// reaches that absolute virtual instant: Run captures its complete
	// state (ResumeState) and returns ErrInterrupted. Because batched
	// send runs are capped at the instant and early-stop drains never
	// advance the clock, the interrupt lands exactly there — nothing is
	// sent at or past it. Campaign sets it for checkpointing.
	interruptAt time.Duration
	// stop, when non-nil and set, requests an interrupt at the next
	// batch boundary — the cancellation path. The prober polls it
	// between send runs only, so a clean stop costs one predicted load
	// per batch.
	stop *atomic.Bool
	// pulse, when non-nil, is incremented every time the prober polls
	// its stop conditions — the liveness heartbeat supervision
	// watchdogs read. A prober that stops beating is wedged (or its
	// connection is blocked), whatever its virtual clock says.
	pulse *atomic.Int64
	// resume, when non-nil, restores the state captured by a previous
	// interrupted run before probing continues. Campaign sets it when
	// reconstructing a checkpointed campaign.
	resume *shardResume
	// primed records that the campaign already advanced this shard's
	// rate-limiter state to the window-start instant (single-pass group
	// priming with snapshot handoff), so Run must not replay the serial
	// prefix again.
	primed bool
}

func (c *Config) setDefaults() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("yarrp6: no targets")
	}
	if c.MinTTL == 0 {
		c.MinTTL = 1
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 16
	}
	if c.MinTTL > c.MaxTTL {
		return fmt.Errorf("yarrp6: MinTTL %d > MaxTTL %d", c.MinTTL, c.MaxTTL)
	}
	if c.PPS <= 0 {
		c.PPS = 1000
	}
	if c.Proto == 0 {
		c.Proto = wire.ProtoICMPv6
	}
	if c.Proto != wire.ProtoICMPv6 && c.Proto != wire.ProtoUDP && c.Proto != wire.ProtoTCP {
		return fmt.Errorf("yarrp6: unsupported transport %d", c.Proto)
	}
	if c.FillLimit == 0 {
		c.FillLimit = 32
	}
	if c.Batch == 0 {
		c.Batch = DefaultBatch
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.NeighborhoodWindow > 0 && c.NeighborhoodTTL == 0 {
		c.NeighborhoodTTL = 3
	}
	return nil
}

// Domain returns the size of the (target × TTL) permutation domain of a
// configuration whose defaults have been applied.
func Domain(c *Config) uint64 {
	return uint64(len(c.Targets)) * (uint64(c.MaxTTL-c.MinTTL) + 1)
}

// Stats reports a campaign's send-side and recovery counters.
type Stats struct {
	ProbesSent int64
	Fills      int64
	Skipped    int64 // suppressed by the neighborhood heuristic
	Replies    int64
	NotMine    int64 // replies failing authentication
	Retries    int64 // transient send failures retried after backoff
	Curve      []CurvePoint
	Elapsed    time.Duration
}

// ErrInterrupted reports that a run stopped at its interrupt instant or
// on a cancellation request. The prober's complete state was captured
// first (ResumeState), so the run can be checkpointed and continued.
var ErrInterrupted = errors.New("yarrp6: interrupted")

// retryMax bounds consecutive transient send failures: each failure
// backs off one send slot and rebuilds the unsent probes for their
// shifted instants; one more failure past the bound fails the shard.
const retryMax = 3

// pendingReply is one undelivered in-flight reply captured at an
// interrupt, keyed by its virtual delivery instant.
type pendingReply struct {
	at   time.Duration
	data []byte
}

// shardResume is the complete captured state of one interrupted (or
// failed) shard prober. Together with the immutable campaign
// configuration it is sufficient to continue the run so that interrupt
// plus resume reproduces the uninterrupted schedule byte for byte: the
// permutation cursor and clock say what to send and when, the codec
// epoch keeps probe timestamps on the original series, the counters and
// curve continue unbroken, and the pending replies restore the
// connection's in-flight delivery queue.
type shardResume struct {
	cursor        uint64        // next unsent permutation index
	epoch         time.Duration // codec epoch (absolute virtual time)
	now           time.Duration // clock at capture (absolute virtual time)
	drainDeadline time.Duration // nonzero when captured inside the drain tail
	stats         Stats
	kindCount     [probe.KindOther + 1]int64
	notMine       int64
	nextCurve     int64
	lastNew       [256]time.Duration
	pending       []pendingReply
	samples       []telemetry.Sample
	// simState is the connection's exported simulator-state blob (router
	// token-bucket levels) at the capture instant; nil for connections
	// without checkpoint support. Restoring it makes a resumed run exact
	// even when a rate limiter was saturated across the interrupt.
	simState []byte
	// live marks an in-process continuation on the very connection the
	// state was captured from (Campaign.Rewind): the pending replies are
	// still queued and the simulator state is still current, so the
	// restore skips re-injection and import — both would be redundant,
	// and injecting would duplicate the in-flight replies.
	live bool
}

// CurvePoint samples discovery progress (Figure 7): after Probes probes,
// Interfaces unique interface addresses were known.
type CurvePoint struct {
	Probes     int64
	Interfaces int
	// At is the virtual instant the sample was taken. Campaign uses it
	// to interleave per-shard curves — which chart disjoint permutation
	// windows — into one global discovery curve by virtual time.
	At time.Duration
}

// DefaultBatch is the send-batch size used when Config.Batch is zero:
// probes are built and routed DefaultBatch at a time through
// batch-capable connections, amortizing per-probe dispatch without
// changing the virtual schedule.
const DefaultBatch = 64

// probeStride is the per-slot width of the batched send ring; the
// module's own probes are 60-72 bytes.
const probeStride = 128

// recvBatch bounds how many replies one RecvBatch call drains.
const recvBatch = 32

// Yarrp6 is a configured prober bound to a vantage connection.
type Yarrp6 struct {
	conn  probe.Conn
	cfg   Config
	codec *probe.Codec

	// bc is the connection's batched fast path, nil when the connection
	// only implements the single-packet contract.
	bc probe.BatchConn

	pkt  []byte
	rbuf []byte

	// Batched-pipeline state: idx is the permutation index buffer
	// NextBatch fills, ring backs one pre-built packet per batch slot,
	// pkts aliases the built packets, and rbatch/rsizes receive drained
	// replies recvBatch at a time. All are allocated once per Run.
	idx    []uint64
	ring   []byte
	pkts   [][]byte
	rbatch []byte
	rsizes []int

	stats Stats

	// kindCount tallies stored replies by kind. One unconditional array
	// increment per reply — cheaper than guarding it — feeding both the
	// progress samples and the telemetry by-kind counters.
	kindCount [probe.KindOther + 1]int64

	// tel holds the resolved telemetry instruments; tel.sh == nil means
	// telemetry is off and every hook is a dead predicted branch.
	tel telSink

	// prog / nextSample drive virtual-time progress sampling; prog == nil
	// means off.
	prog       *telemetry.Progress
	nextSample time.Duration

	// Neighborhood heuristic state: bounded by the TTL range, not by
	// targets — the prober stays O(1) in destinations.
	lastNew [256]time.Duration

	// rs is the state captured when a run is interrupted or fails; nil
	// after a clean completion.
	rs *shardResume
}

// telSink bundles the prober's telemetry instruments plus the
// already-published values of the counters mirrored from Stats and
// kindCount, so flushes add only the delta since the previous flush.
type telSink struct {
	sh *telemetry.Shard

	probes, fills, skipped, replies, notMine *telemetry.Local
	te, echo, unreach, rst                   *telemetry.Local
	earlyStops, drainFF                      *telemetry.Local
	rtt, batchFill, drainGap                 *telemetry.LocalHist

	pub     Stats // published counter values (Curve unused)
	pubKind [probe.KindOther + 1]int64
}

// initTelemetry resolves the instrument set against the configured shard.
func (y *Yarrp6) initTelemetry() {
	y.tel = telSink{}
	sh := y.cfg.telemetry
	if sh == nil {
		return
	}
	y.tel.sh = sh
	y.tel.probes = sh.Counter("yarrp_probes_sent_total")
	y.tel.fills = sh.Counter("yarrp_fill_probes_total")
	y.tel.skipped = sh.Counter("yarrp_skipped_total")
	y.tel.replies = sh.Counter("yarrp_replies_total")
	y.tel.notMine = sh.Counter("yarrp_replies_not_mine_total")
	y.tel.te = sh.Counter("yarrp_replies_time_exceeded_total")
	y.tel.echo = sh.Counter("yarrp_replies_echo_total")
	y.tel.unreach = sh.Counter("yarrp_replies_dest_unreach_total")
	y.tel.rst = sh.Counter("yarrp_replies_tcp_rst_total")
	y.tel.earlyStops = sh.Counter("yarrp_batch_early_stops_total")
	y.tel.drainFF = sh.Counter("yarrp_drain_fastforwards_total")
	y.tel.rtt = sh.Histogram("yarrp_rtt_usec", telemetry.RTTBucketsUSec)
	y.tel.batchFill = sh.Histogram("yarrp_batch_fill", telemetry.BatchFillBuckets)
	y.tel.drainGap = sh.Histogram("yarrp_drain_gap_slots", telemetry.DrainGapBuckets)
}

// telFlush publishes the counters mirrored from Stats/kindCount as deltas
// since the previous flush, then folds every local into the shared
// registry. Called at curve-sample cadence and at run end — never per
// event.
func (y *Yarrp6) telFlush() {
	t := &y.tel
	if t.sh == nil {
		return
	}
	t.probes.Add(y.stats.ProbesSent - t.pub.ProbesSent)
	t.fills.Add(y.stats.Fills - t.pub.Fills)
	t.skipped.Add(y.stats.Skipped - t.pub.Skipped)
	t.replies.Add(y.stats.Replies - t.pub.Replies)
	t.notMine.Add(y.stats.NotMine - t.pub.NotMine)
	t.te.Add(y.kindCount[probe.KindTimeExceeded] - t.pubKind[probe.KindTimeExceeded])
	t.echo.Add(y.kindCount[probe.KindEchoReply] - t.pubKind[probe.KindEchoReply])
	t.unreach.Add(y.kindCount[probe.KindDestUnreach] - t.pubKind[probe.KindDestUnreach])
	t.rst.Add(y.kindCount[probe.KindTCPRst] - t.pubKind[probe.KindTCPRst])
	pub := y.stats
	pub.Curve = nil
	t.pub = pub
	t.pubKind = y.kindCount
	t.sh.Flush()
}

// recordSample appends the current counters to the progress recorder,
// stamped at the virtual instant at.
func (y *Yarrp6) recordSample(at time.Duration) {
	y.prog.Record(telemetry.Sample{
		At:           at,
		Probes:       y.stats.ProbesSent,
		Fills:        y.stats.Fills,
		Replies:      y.stats.Replies,
		TimeExceeded: y.kindCount[probe.KindTimeExceeded],
		EchoReplies:  y.kindCount[probe.KindEchoReply],
		DestUnreach:  y.kindCount[probe.KindDestUnreach],
		TCPRsts:      y.kindCount[probe.KindTCPRst],
	})
}

// stopNow reports whether the run must interrupt before the next send:
// the clock has reached the interrupt instant, or cancellation was
// requested. Both checks are dead predicted branches when the features
// are off.
func (y *Yarrp6) stopNow() bool {
	if y.cfg.pulse != nil {
		// One heartbeat per stop poll covers every loop at a single
		// touchpoint: per probe on the serial path, per send run on the
		// batched path, per iteration in the drain tail.
		y.cfg.pulse.Add(1)
	}
	if y.cfg.interruptAt > 0 && y.conn.Now() >= y.cfg.interruptAt {
		return true
	}
	return y.cfg.stop != nil && y.cfg.stop.Load()
}

// capture snapshots the complete run state at an interrupt, fatal send
// error, or drain-tail stop. cursor is the next unsent permutation
// index; drainDeadline is nonzero only when the capture happened inside
// the drain tail (the window itself is complete). Pending telemetry is
// flushed so the registry is exact at the capture instant.
func (y *Yarrp6) capture(cursor uint64, nextCurve int64, drainDeadline time.Duration) {
	// Fold the live authentication-failure counter into the returned
	// partial stats the same way a completed run would.
	y.stats.NotMine = y.codec.NotMine
	rs := &shardResume{
		cursor:        cursor,
		epoch:         y.codec.Epoch(),
		now:           y.conn.Now(),
		drainDeadline: drainDeadline,
		stats:         y.stats,
		kindCount:     y.kindCount,
		notMine:       y.codec.NotMine,
		nextCurve:     nextCurve,
		lastNew:       y.lastNew,
	}
	rs.stats.Curve = append([]CurvePoint(nil), y.stats.Curve...)
	if y.prog != nil {
		rs.samples = append([]telemetry.Sample(nil), y.prog.Samples()...)
	}
	if ck, ok := y.conn.(probe.ConnCheckpointer); ok {
		ck.ExportPending(func(at time.Duration, data []byte) {
			rs.pending = append(rs.pending, pendingReply{at: at, data: append([]byte(nil), data...)})
		})
	}
	if sk, ok := y.conn.(probe.SimStateCheckpointer); ok {
		rs.simState = sk.ExportSimState(nil)
	}
	y.telFlush()
	y.rs = rs
}

// ResumeState returns the state captured by an interrupted or failed
// run, nil after a clean completion. Campaign serializes it into
// checkpoint artifacts and feeds it to shard recovery.
func (y *Yarrp6) ResumeState() *shardResume { return y.rs }

// maybeSample records a progress sample when the clock has crossed the
// next threshold. Main-loop clock advances are whole gap multiples and
// thresholds sit on the same grid, so the crossing lands exactly on the
// threshold instant.
func (y *Yarrp6) maybeSample() {
	if y.prog == nil {
		return
	}
	if now := y.conn.Now(); now >= y.nextSample {
		y.recordSample(now)
		y.nextSample = y.prog.NextThreshold(now)
	}
}

// New creates a prober. The configuration is validated at Run.
func New(conn probe.Conn, cfg Config) *Yarrp6 {
	return &Yarrp6{
		conn: conn,
		cfg:  cfg,
		pkt:  make([]byte, 128),
		rbuf: make([]byte, wire.MinMTU),
	}
}

// initCodec validates configuration and anchors the codec epoch at the
// current time; Run calls it, and tests exercising probe construction
// directly call it too.
func (y *Yarrp6) initCodec() error {
	if err := y.cfg.setDefaults(); err != nil {
		return err
	}
	y.codec = probe.NewCodec(y.conn, y.cfg.Proto, y.cfg.Instance)
	// Each target is probed at every TTL in the randomized range with an
	// identical flow identity; the template cache turns all but the
	// first build per target into a copy-and-patch. Campaign shards
	// share one template store (templates are instance-neutral); a solo
	// prober gets a private cache sized to the target set (quarter
	// loaded, capped — slots beyond that only cost arena zeroing per
	// run, and a collision merely rebuilds).
	if y.cfg.sharedTmpl != nil {
		y.codec.UseSharedTemplates(y.cfg.sharedTmpl)
	} else {
		y.codec.SetProbeCache(tmplCacheSize(len(y.cfg.Targets)))
	}
	return nil
}

// tmplCacheSize picks the probe-template slot count for n targets.
func tmplCacheSize(n int) int {
	size := 8192
	for s := 64; s < size; s <<= 1 {
		if s >= 4*n {
			size = s
			break
		}
	}
	return size
}

// buildProbe constructs the wire packet for (target, ttl) into buf.
func (y *Yarrp6) buildProbe(buf []byte, target netip.Addr, ttl uint8) int {
	return y.codec.BuildProbe(buf, target, ttl)
}

// Run executes the campaign, folding every recovered reply into store.
//
// The inner loop is batched: permutation indices are drawn Batch at a
// time, the probes for a batch are pre-built into a packet ring — each
// stamped for its own departure instant — and the whole batch is handed
// to the connection in one BatchConn.SendBatch call, which paces the
// packets internally and stops early the moment a reply becomes
// deliverable so the drain happens at exactly the instant a per-probe
// loop would have drained. Batching therefore changes dispatch counts
// only; the virtual schedule — send times, drain times, fill times,
// curve samples — is identical at every batch size, and identical to
// the historical one-probe-per-iteration loop.
func (y *Yarrp6) Run(store *probe.Store) (Stats, error) {
	if err := y.initCodec(); err != nil {
		return Stats{}, err
	}
	cfg := y.cfg
	y.stats = Stats{}
	y.kindCount = [probe.KindOther + 1]int64{}
	y.rs = nil
	y.initTelemetry()

	domain := Domain(&cfg)
	p, err := perm.New(cfg.Key, domain)
	if err != nil {
		return Stats{}, fmt.Errorf("yarrp6: %w", err)
	}
	start, end := cfg.PermStart, cfg.PermEnd
	if end == 0 || end > domain {
		end = domain
	}
	if start > end {
		return Stats{}, fmt.Errorf("yarrp6: PermStart %d beyond PermEnd %d", start, end)
	}
	gap := time.Duration(float64(time.Second) / cfg.PPS)
	// Sample the discovery curve on a monotonic probe-count threshold:
	// fill-mode probes advance the counter inside handleReply, so a
	// modulo check would skip sample points whenever a fill lands
	// between two loop iterations. The curve is bounded by the step
	// arithmetic at ~129 samples plus the final point; preallocating it
	// keeps append off the steady-state send path.
	curveStep := int64((end-start)/128) + 1
	nextCurve := curveStep
	y.stats.Curve = make([]CurvePoint, 0, 132)

	// Progress sampling thresholds live on the same virtual-time grid as
	// the probe schedule (the campaign's step is a whole multiple of gap),
	// so main-loop crossings land exactly on threshold instants.
	y.prog = cfg.progress
	if y.prog != nil {
		y.nextSample = y.prog.NextThreshold(y.conn.Now())
	}

	// Resume restore: continue an interrupted run exactly where it
	// stopped. The iterator starts at the captured cursor (curveStep
	// stays derived from the original window, so thresholds fall on the
	// uninterrupted run's probe counts), the codec epoch goes back to
	// the original run's so probe timestamps continue the same series,
	// and the captured in-flight replies are re-queued at their original
	// delivery instants. The connection's clock is the caller's job: it
	// must open at the captured instant.
	iterStart := start
	var drainDeadline time.Duration
	if rs := cfg.resume; rs != nil {
		y.codec.SetEpoch(rs.epoch)
		y.codec.NotMine = rs.notMine
		y.stats = rs.stats
		y.stats.Curve = append(y.stats.Curve[:0:0], rs.stats.Curve...)
		y.stats.Elapsed = 0
		y.kindCount = rs.kindCount
		y.lastNew = rs.lastNew
		nextCurve = rs.nextCurve
		iterStart = rs.cursor
		drainDeadline = rs.drainDeadline
		if y.prog != nil {
			y.prog.Restore(rs.samples)
			y.nextSample = y.prog.NextThreshold(y.conn.Now())
		}
		if ck, ok := y.conn.(probe.ConnCheckpointer); ok && !rs.live {
			for _, pr := range rs.pending {
				ck.InjectReply(pr.at, pr.data)
			}
		}
		// Restore the rate-limiter state captured at the interrupt, or —
		// for artifacts predating the sim-state blob — reconstruct it by
		// replaying the serial schedule up to the captured cursor. A live
		// continuation needs neither: the connection still holds both.
		restored := rs.live
		if !restored && len(rs.simState) > 0 {
			if sk, ok := y.conn.(probe.SimStateCheckpointer); ok {
				if err := sk.ImportSimState(rs.simState); err != nil {
					return Stats{}, fmt.Errorf("yarrp6: sim state: %w", err)
				}
				restored = true
			}
		}
		if !restored {
			y.primeBuckets(p, rs.cursor, rs.epoch-time.Duration(start)*gap, gap)
		}
	} else if start > 0 && !cfg.primed {
		// Window-sliced run (campaign shard or recovery prober): advance
		// the connection's rate-limiter state to the window-start instant
		// by replaying the serial schedule that precedes the window, so
		// the union of shard windows reproduces the serial run's reply
		// counters even past ICMPv6 rate-limit saturation. Campaign
		// shards normally arrive already primed — the group does one
		// shared replay pass and hands each clone a bucket snapshot —
		// leaving this per-prober replay to recovery probers and direct
		// windowed Run calls.
		y.primeBuckets(p, start, y.conn.Now()-time.Duration(start)*gap, gap)
	}

	y.bc, _ = y.conn.(probe.BatchConn)
	if y.bc != nil {
		// Batched sends may defer shared-counter updates; publish exact
		// totals on every exit path so post-run readers see them.
		defer y.bc.FlushStats()
	}
	batch := cfg.Batch
	if y.bc == nil || cfg.NeighborhoodWindow > 0 {
		// The fallback shim sends one packet per call anyway, and the
		// neighborhood heuristic's skip decision must be taken at each
		// probe's own instant against drain-fresh state.
		batch = 1
	}

	it := p.Resume(iterStart)
	if batch > 1 {
		err = y.runBatched(store, it, end, gap, batch, curveStep, &nextCurve)
	} else {
		err = y.runSerial(store, it, end, gap, curveStep, &nextCurve)
	}
	if err != nil {
		return y.stats, err
	}
	if y.prog != nil {
		// Pin the window-exit state: the shard may sit idle in its drain
		// tail across many thresholds, and the merge needs a sample at or
		// before each of them carrying the completed-window counters.
		y.recordSample(y.conn.Now())
	}

	// Collect stragglers. Stepping by the send gap keeps this drain
	// schedule on the same virtual instants a longer-running prober
	// would drain at, so a campaign shard processes its tail replies —
	// and sends any fill probes they trigger — at exactly the times the
	// unsharded prober would have. Batch-capable connections expose the
	// delivery queue, so stretches of virtual time where nothing can
	// arrive are crossed in one sleep: the clock lands on the same
	// gap-multiple instants, and every reply is still processed at the
	// first such instant at or past its delivery time — the stepped
	// loop's schedule exactly, minus the empty iterations.
	deadline := y.conn.Now() + cfg.DrainTimeout
	if drainDeadline > 0 {
		// Resumed inside the drain tail: keep the original run's
		// deadline instead of extending the tail from the resume instant.
		deadline = drainDeadline
	}
	for {
		now := y.conn.Now()
		if now >= deadline {
			break
		}
		if y.stopNow() {
			// The window is complete; capture with the cursor at the
			// window end and pin the drain deadline so a resumed run
			// finishes the same tail. Interrupt instants inside a
			// fast-forwarded empty stretch take effect at the next drain
			// instant — nothing observable happens in between.
			y.capture(end, nextCurve, deadline)
			return y.stats, ErrInterrupted
		}
		steps := int64(1)
		if y.bc != nil && gap > 0 {
			kmax := int64((deadline - now + gap - 1) / gap)
			if at, ok := y.bc.NextDeliveryAt(); !ok {
				steps = kmax
			} else if at > now {
				steps = int64((at - now + gap - 1) / gap)
				if steps > kmax {
					steps = kmax
				}
			}
		}
		if y.tel.sh != nil {
			y.tel.drainGap.Observe(steps)
			if steps > 1 {
				y.tel.drainFF.Inc()
			}
		}
		y.conn.Sleep(time.Duration(steps) * gap)
		y.drainAll(store)
		if y.prog != nil {
			// Pin tail activity at its drain instant so the merge
			// attributes it to the right threshold; Record drops the
			// sample when the drain changed nothing.
			y.recordSample(y.conn.Now())
		}
	}
	y.stats.Curve = append(y.stats.Curve, CurvePoint{y.stats.ProbesSent, store.NumInterfaces(), y.conn.Now()})
	y.stats.Elapsed = y.conn.Now() - y.codec.Epoch()
	y.stats.NotMine = y.codec.NotMine
	if y.prog != nil {
		y.recordSample(y.conn.Now())
	}
	y.telFlush()
	return y.stats, nil
}

// primeBuckets replays the serial probe schedule for permutation
// indices [0, hi) against the connection's rate-limiter state: every
// probe preceding this prober's window is rebuilt and evaluated at its
// original departure instant (base + i×gap), so router token buckets
// open exactly where the single serial prober would have left them.
// Connections without prime support (live sockets) skip it — a real
// network carries its own history. Fill-mode follow-ups and
// neighborhood skips are not part of the raw schedule the replay
// covers; see the campaign package comment for what that bounds.
func (y *Yarrp6) primeBuckets(p *perm.Perm, hi uint64, base, gap time.Duration) {
	pr, ok := y.conn.(probe.Primer)
	if !ok || hi == 0 {
		return
	}
	nt := uint64(len(y.cfg.Targets))
	toks := make([]int, len(y.cfg.Targets))
	for i := range toks {
		toks[i] = -1
	}
	pr.BeginPrime()
	defer pr.EndPrime()
	it := p.Resume(0)
	for it.Pos() < hi {
		v, ok := it.Next()
		if !ok {
			break
		}
		at := base + time.Duration(it.Pos()-1)*gap
		ti := v % nt
		ttl := y.cfg.MinTTL + uint8(v/nt)
		if toks[ti] < 0 {
			// First replayed probe of this target's flow: register it,
			// then replay every probe of the flow by token.
			n := y.codec.BuildProbeAt(y.pkt, y.cfg.Targets[ti], ttl, at)
			t, err := pr.PrimeFlow(y.pkt[:n])
			if err != nil {
				continue
			}
			toks[ti] = t
		}
		pr.PrimeIdx(toks[ti], ttl, at)
	}
}

// runSerial is the one-probe-per-iteration loop: the path for
// connections without batch support and for the neighborhood heuristic.
func (y *Yarrp6) runSerial(store *probe.Store, it *perm.Iterator, end uint64, gap time.Duration, curveStep int64, nextCurve *int64) error {
	cfg := &y.cfg
	nt := uint64(len(cfg.Targets))
	retries := 0
	for it.Pos() < end {
		if y.stopNow() {
			y.capture(it.Pos(), *nextCurve, 0)
			return ErrInterrupted
		}
		v, ok := it.Next()
		if !ok {
			break
		}
		target := cfg.Targets[v%nt]
		ttl := cfg.MinTTL + uint8(v/nt)
		if y.skipByNeighborhood(ttl) {
			y.stats.Skipped++
			continue
		}
		for {
			err := y.sendProbe(target, ttl)
			if err == nil {
				retries = 0
				break
			}
			if !probe.IsTransient(err) || retries >= retryMax {
				y.capture(it.Pos()-1, *nextCurve, 0)
				return err
			}
			// Transient send failure: back off one slot and rebuild at
			// the new instant (sendProbe stamps at build time).
			retries++
			y.stats.Retries++
			y.conn.Sleep(gap)
		}
		y.conn.Sleep(gap)
		// Empty-queue fast path: when the connection can report that
		// nothing is queued, the drain costs one predicted branch
		// instead of a Recv dispatch and heap check.
		if y.bc == nil || y.bc.Pending() > 0 {
			y.drainAll(store)
		}
		y.recordCurve(store, nextCurve, curveStep)
		y.maybeSample()
	}
	return nil
}

// runBatched is the batched inner loop over a batch-capable connection.
func (y *Yarrp6) runBatched(store *probe.Store, it *perm.Iterator, end uint64, gap time.Duration, batch int, curveStep int64, nextCurve *int64) error {
	cfg := &y.cfg
	if len(y.idx) < batch {
		y.idx = make([]uint64, batch)
		y.ring = make([]byte, batch*probeStride)
		y.pkts = make([][]byte, batch)
	}
	nt := uint64(len(cfg.Targets))
	retries := 0
	for it.Pos() < end {
		posBase := it.Pos()
		if y.stopNow() {
			y.capture(posBase, *nextCurve, 0)
			return ErrInterrupted
		}
		k := uint64(batch)
		if rem := end - posBase; rem < k {
			k = rem
		}
		n := it.NextBatch(y.idx[:k])
		if n == 0 {
			break
		}
		// Pre-build the batch, each packet stamped for its own
		// departure instant. The clock advances by exactly gap per
		// send — and early-stop drains do not advance it — so the
		// predicted instants equal the actual ones and the wire bytes
		// match a build-at-send exactly.
		t0 := y.conn.Now()
		for i := 0; i < n; i++ {
			v := y.idx[i]
			target := cfg.Targets[v%nt]
			ttl := cfg.MinTTL + uint8(v/nt)
			off := i * probeStride
			m := y.codec.BuildProbeAt(y.ring[off:off+probeStride], target, ttl, t0+time.Duration(i)*gap)
			y.pkts[i] = y.ring[off : off+m]
		}
		sent := 0
		for sent < n {
			if sent > 0 && y.stopNow() {
				// Mid-batch interrupt: the iterator already consumed the
				// whole batch, so the cursor is the base position plus
				// the probes actually sent.
				y.capture(posBase+uint64(sent), *nextCurve, 0)
				return ErrInterrupted
			}
			lim := n
			// Cap each send run at the next curve threshold so the
			// sample is taken at exactly the probe count the serial
			// loop would have sampled it at (within a run the counter
			// advances by one per probe — drains, and with them fills,
			// only happen between runs).
			if toCurve := *nextCurve - y.stats.ProbesSent; int64(lim-sent) > toCurve {
				lim = sent + int(toCurve)
			}
			// Cap likewise at the next progress threshold: the clock is
			// gap-aligned here and thresholds sit on the grid, so the run
			// ends exactly on the threshold instant and the sample reads
			// the same counters the serial loop would have sampled.
			if y.prog != nil && gap > 0 {
				if rem := int64((y.nextSample - y.conn.Now()) / gap); rem < int64(lim-sent) {
					lim = sent + int(rem)
				}
			}
			// Cap at the interrupt instant: nothing departs at or past
			// it, so the interrupted prefix of the schedule matches the
			// uninterrupted run exactly. An off-grid instant caps the
			// run mid-slot; the loop-top check then captures before the
			// next send, which is the same cut a serial loop would make.
			if y.cfg.interruptAt > 0 && gap > 0 {
				if rem := int64((y.cfg.interruptAt - y.conn.Now()) / gap); rem < int64(lim-sent) {
					if rem < 0 {
						rem = 0
					}
					lim = sent + int(rem)
				}
				if lim == sent {
					y.capture(posBase+uint64(sent), *nextCurve, 0)
					return ErrInterrupted
				}
			}
			m, deliverable, err := y.bc.SendBatch(y.pkts[sent:lim], gap)
			if y.tel.sh != nil {
				y.tel.batchFill.Observe(int64(m))
				if deliverable && sent+m < lim {
					y.tel.earlyStops.Inc()
				}
			}
			y.stats.ProbesSent += int64(m)
			sent += m
			if err != nil {
				if !probe.IsTransient(err) || retries >= retryMax {
					y.capture(posBase+uint64(sent), *nextCurve, 0)
					return err
				}
				// Transient send failure: back off one slot, rebuild the
				// unsent remainder for its shifted instants (the stamps
				// must keep matching the actual departure times), drain
				// anything that arrived meanwhile, and retry.
				retries++
				y.stats.Retries++
				y.conn.Sleep(gap)
				t := y.conn.Now()
				for i := sent; i < n; i++ {
					v := y.idx[i]
					target := cfg.Targets[v%nt]
					ttl := cfg.MinTTL + uint8(v/nt)
					off := i * probeStride
					w := y.codec.BuildProbeAt(y.ring[off:off+probeStride], target, ttl, t+time.Duration(i-sent)*gap)
					y.pkts[i] = y.ring[off : off+w]
				}
				if y.bc.Pending() > 0 {
					y.drainAll(store)
				}
				y.recordCurve(store, nextCurve, curveStep)
				y.maybeSample()
				continue
			}
			retries = 0
			if deliverable {
				y.drainAll(store)
			}
			y.recordCurve(store, nextCurve, curveStep)
			y.maybeSample()
		}
	}
	return nil
}

// recordCurve appends a discovery-curve sample when the probe counter
// has crossed the next threshold, then advances the threshold past the
// counter.
func (y *Yarrp6) recordCurve(store *probe.Store, nextCurve *int64, curveStep int64) {
	if y.stats.ProbesSent >= *nextCurve {
		y.stats.Curve = append(y.stats.Curve, CurvePoint{y.stats.ProbesSent, store.NumInterfaces(), y.conn.Now()})
		for *nextCurve <= y.stats.ProbesSent {
			*nextCurve += curveStep
		}
		// Fold pending telemetry into the shared registry at curve
		// cadence (~130 times per run): the live endpoint stays fresh
		// without shared-atomic traffic on the per-probe path.
		y.telFlush()
	}
}

func (y *Yarrp6) skipByNeighborhood(ttl uint8) bool {
	if y.cfg.NeighborhoodWindow == 0 || ttl > y.cfg.NeighborhoodTTL {
		return false
	}
	last := y.lastNew[ttl]
	return last != 0 && y.conn.Now()-last > y.cfg.NeighborhoodWindow
}

func (y *Yarrp6) sendProbe(target netip.Addr, ttl uint8) error {
	n := y.buildProbe(y.pkt, target, ttl)
	if err := y.conn.Send(y.pkt[:n]); err != nil {
		return err
	}
	y.stats.ProbesSent++
	return nil
}

// drainAll processes every deliverable reply, recvBatch at a time on
// batch-capable connections. Replies come out in delivery order either
// way, and fills triggered while processing schedule strictly future
// deliveries, so the batched drain folds exactly what the per-reply
// Recv loop would have folded.
func (y *Yarrp6) drainAll(store *probe.Store) {
	if y.bc != nil {
		if y.rsizes == nil {
			y.rbatch = make([]byte, recvBatch*wire.MinMTU)
			y.rsizes = make([]int, recvBatch)
		}
		for {
			n := y.bc.RecvBatch(y.rbatch, y.rsizes)
			if n == 0 {
				return
			}
			off := 0
			for i := 0; i < n; i++ {
				y.handleReply(y.rbatch[off:off+y.rsizes[i]], store)
				off += y.rsizes[i]
			}
			if n < len(y.rsizes) {
				return
			}
		}
	}
	for {
		n, ok := y.conn.Recv(y.rbuf)
		if !ok {
			return
		}
		y.handleReply(y.rbuf[:n], store)
	}
}

// handleReply parses one reply, folds it into the store, and drives the
// fill-mode and neighborhood mechanisms.
func (y *Yarrp6) handleReply(b []byte, store *probe.Store) {
	r, ok := y.codec.ParseReply(b)
	if !ok {
		return
	}
	y.stats.Replies++
	y.kindCount[r.Kind]++
	if y.tel.sh != nil && r.RTT > 0 {
		y.tel.rtt.Observe(int64(r.RTT / time.Microsecond))
	}
	newIface := store.Add(r)
	if y.cfg.Observer != nil {
		y.cfg.Observer.OnReply(r)
	}
	if newIface && r.TTL != 0 && r.TTL <= y.cfg.NeighborhoodTTL {
		y.lastNew[r.TTL] = y.conn.Now()
	}
	// Fill mode: a response from at or past the maximum randomized TTL
	// extends the trace sequentially toward the destination. Fills are
	// uncommon and land at path tails, where sequential probing has the
	// least rate-limiting impact (Section 4.1). The fill probe is built
	// in the prober's own packet buffer (y.pkt via sendProbe) — safe
	// even though b still holds the triggering reply, because the
	// parsed Reply carries no slices into either buffer — so fills
	// allocate nothing.
	if y.cfg.Fill && r.Kind == probe.KindTimeExceeded && r.StateRecovered &&
		r.TTL >= y.cfg.MaxTTL && r.TTL < y.cfg.FillLimit && r.Target.IsValid() {
		if err := y.sendProbe(r.Target, r.TTL+1); err == nil {
			y.stats.Fills++
		}
	}
}
