package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// downgradeArtifactV1 rewrites a version-02 checkpoint artifact into the
// version-01 layout: the magic drops to Y6CKPT01 and each shard section
// loses its trailing simulator-state blob ([u32 length][u32 record
// count][37-byte records]), with section lengths and CRCs recomputed.
// The result is what a pre-sim-state build would have written for the
// same interrupted campaign.
func downgradeArtifactV1(t testing.TB, art []byte) []byte {
	t.Helper()
	out := append([]byte(nil), checkpointMagicV1...)
	rest := art[len(checkpointMagic):]
	for len(rest) > 0 {
		typ := rest[0]
		n := binary.LittleEndian.Uint32(rest[1:])
		payload := rest[9 : 9+n]
		rest = rest[9+n:]
		if typ == sectShard {
			payload = stripShardSimState(t, payload)
		}
		out = append(out, typ)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
		out = append(out, payload...)
	}
	return out
}

// stripShardSimState removes the [u32 length][sim-state blob] tail from
// a version-02 shard payload. The blob is self-describing ([u32 record
// count][count 37-byte records]), so the tail is located by solving for
// the record count from the end; the resumed decode's exact-length check
// would reject a wrong cut, so TestCheckpointV1Compat validates the cut.
func stripShardSimState(t testing.TB, payload []byte) []byte {
	t.Helper()
	L := len(payload)
	for k := (L - 8) / 37; k >= 0; k-- {
		tail := 8 + 37*k
		if binary.LittleEndian.Uint32(payload[L-tail:]) == uint32(4+37*k) &&
			binary.LittleEndian.Uint32(payload[L-tail+4:]) == uint32(k) {
			return payload[:L-tail]
		}
	}
	t.Fatal("shard payload carries no recognizable sim-state tail")
	return nil
}

// TestCheckpointV1Compat: the decoder keeps reading version-01 artifacts
// — no bucket state, shard payloads ending at the store — and the
// resumed campaign reconstructs its bucket levels by schedule replay
// instead. Below saturation that replay is exact, so the resumed run
// must still be byte-identical to the uninterrupted reference.
func TestCheckpointV1Compat(t *testing.T) {
	const seed = 1213
	targets := campaignTargets(t, seed, 61)
	ref := ckptReference(t, seed, targets, 2, 64)

	v := ckptVantage(seed)
	cfg := campaignCfg(targets)
	cfg.Batch = 64
	camp := NewCampaign(CampaignConfig{
		Config: cfg, Shards: 2, RecordPaths: true,
		Telemetry: telemetry.NewRegistry(), Progress: &ProgressConfig{},
		InterruptAt: 600 * time.Millisecond,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupt: %v", err)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	v1 := downgradeArtifactV1(t, art)
	if len(v1) >= len(art) {
		t.Fatalf("downgrade did not shrink the artifact: %d vs %d bytes", len(v1), len(art))
	}
	got := ckptResume(t, seed, v1)
	assertRunsEqual(t, "v1 resume", got, ref)
}
