package core

import (
	"net/netip"
	"runtime"
	"testing"
	"time"

	"beholder/internal/netsim"
	"beholder/internal/probe"
)

// campaignUniverse builds a fresh universe for one campaign run. Token
// buckets stay out of the scarce regime (no aggressively rate-limited
// routers), keeping these matrices focused on schedule and merge
// determinism; saturation_test.go runs the same matrices with the
// buckets deliberately exhausted.
func campaignUniverse(seed int64) *netsim.Universe {
	cfg := netsim.TestConfig(seed)
	cfg.AggressivePercent = 0
	return netsim.NewUniverse(cfg)
}

func campaignTargets(t testing.TB, seed int64, n int) []netip.Addr {
	t.Helper()
	u := campaignUniverse(seed) // throwaway: target sampling is pure
	return gatewayTargets(u, n, seed)
}

func campaignCfg(targets []netip.Addr) Config {
	return Config{Targets: targets, PPS: 500, MaxTTL: 12, Key: 11, Fill: true}
}

// runSharded executes one N-shard campaign on a fresh universe.
func runSharded(t testing.TB, seed int64, targets []netip.Addr, shards int) (*probe.Store, CampaignStats) {
	t.Helper()
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	camp := NewCampaign(CampaignConfig{
		Config:      campaignCfg(targets),
		Shards:      shards,
		RecordPaths: true,
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	return store, stats
}

// TestCampaignSingleShardMatchesDirectEngine: a 1-shard Campaign must be
// byte-identical to driving Yarrp6 directly — same store contents, same
// counters — so every existing table and figure reproduces unchanged.
func TestCampaignSingleShardMatchesDirectEngine(t *testing.T) {
	const seed = 77
	targets := campaignTargets(t, seed, 64)

	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	direct := probe.NewStore(true)
	dstats, err := New(v, campaignCfg(targets)).Run(direct)
	if err != nil {
		t.Fatal(err)
	}

	s1, st1 := runSharded(t, seed, targets, 1)
	if !s1.Equal(direct) {
		t.Fatal("1-shard campaign store differs from direct engine store")
	}
	if st1.ProbesSent != dstats.ProbesSent || st1.Fills != dstats.Fills ||
		st1.Replies != dstats.Replies || st1.Skipped != dstats.Skipped {
		t.Fatalf("1-shard stats %+v differ from direct %+v", st1.Stats, dstats)
	}
	if len(st1.Curve) != len(dstats.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(st1.Curve), len(dstats.Curve))
	}
	for i := range st1.Curve {
		if st1.Curve[i] != dstats.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, st1.Curve[i], dstats.Curve[i])
		}
	}
}

// TestCampaignShardedMatchesSingle: splitting the permutation domain
// across concurrent shards must not change the campaign's results. Each
// shard replays its window of the single-prober schedule on its own
// clock; simulator behaviour is a pure function of (probe, send time);
// the merged store is therefore identical to the 1-shard store.
func TestCampaignShardedMatchesSingle(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const seed = 77
	targets := campaignTargets(t, seed, 64)
	s1, st1 := runSharded(t, seed, targets, 1)
	for _, shards := range []int{2, 4} {
		sn, stn := runSharded(t, seed, targets, shards)
		if !sn.Equal(s1) {
			t.Fatalf("%d-shard store differs from 1-shard store", shards)
		}
		if stn.ProbesSent != st1.ProbesSent || stn.Fills != st1.Fills ||
			stn.Replies != st1.Replies {
			t.Fatalf("%d-shard stats %+v differ from 1-shard %+v", shards, stn.Stats, st1.Stats)
		}
		if len(stn.PerShard) != shards {
			t.Fatalf("PerShard = %d want %d", len(stn.PerShard), shards)
		}
	}
}

// TestCampaignDeterministicUnderScheduling: repeated sharded runs must
// produce identical stores no matter how the goroutines interleave (run
// with -race to also prove memory safety of the concurrent vantages).
func TestCampaignDeterministicUnderScheduling(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const seed = 31
	targets := campaignTargets(t, seed, 48)
	a, astats := runSharded(t, seed, targets, 4)
	for i := 0; i < 3; i++ {
		b, bstats := runSharded(t, seed, targets, 4)
		if !b.Equal(a) {
			t.Fatalf("run %d: sharded store differs across identical runs", i)
		}
		if astats.ProbesSent != bstats.ProbesSent || astats.Replies != bstats.Replies {
			t.Fatalf("run %d: stats differ across identical runs", i)
		}
	}
}

// TestCampaignShardClocksCoordinate: the clock group over the shard
// clones reports a watermark (minimum shard time) that never exceeds the
// horizon, and after the run the watermark has passed every shard's
// window start — the coordinated-clock invariant the netsim documents.
func TestCampaignShardClocksCoordinate(t *testing.T) {
	const seed = 9
	targets := campaignTargets(t, seed, 32)
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	camp := NewCampaign(CampaignConfig{Config: campaignCfg(targets), Shards: 4},
		func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	if _, _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	g := v.ShardClocks()
	if g == nil || g.Len() != 4 {
		t.Fatalf("shard clock group missing or wrong size")
	}
	if g.Watermark() > g.Horizon() {
		t.Fatalf("watermark %v beyond horizon %v", g.Watermark(), g.Horizon())
	}
	if g.Watermark() == 0 {
		t.Fatal("watermark never advanced")
	}
}

func TestShardRangePartition(t *testing.T) {
	for _, domain := range []uint64{1, 7, 16, 1000, 12345} {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			var covered uint64
			prevHi := uint64(0)
			for s := 0; s < n; s++ {
				lo, hi := shardRange(domain, s, n)
				if lo != prevHi {
					t.Fatalf("domain %d n %d shard %d: lo %d != prev hi %d", domain, n, s, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != domain || prevHi != domain {
				t.Fatalf("domain %d n %d: covered %d end %d", domain, n, covered, prevHi)
			}
		}
	}
}

// TestCampaignEmptyAndOversharded: shard counts beyond the domain clamp.
func TestCampaignOversharded(t *testing.T) {
	const seed = 5
	targets := campaignTargets(t, seed, 1)[:1]
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	cfg := CampaignConfig{Config: Config{Targets: targets, PPS: 1000, MaxTTL: 4, Key: 1}, Shards: 64}
	camp := NewCampaign(cfg, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	_, stats, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProbesSent != 4 {
		t.Fatalf("probes sent %d want 4", stats.ProbesSent)
	}
	if len(stats.PerShard) != 4 { // clamped to domain size
		t.Fatalf("shards = %d want 4", len(stats.PerShard))
	}
}
