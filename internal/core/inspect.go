// Checkpoint artifact inspection: the read-only view callers use to
// validate an artifact against their own configuration before
// committing to a resume — cmd/yarrp6 cross-checks its flags this way,
// and the supervisor reports what a drained campaign contained.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// CheckpointInfo is the campaign shape embedded in a checkpoint
// artifact's config section. Everything a resumed run pins from the
// artifact rather than from caller flags is here, so a caller can fail
// fast on a mismatch instead of silently continuing with different
// parameters than it asked for.
type CheckpointInfo struct {
	// Version is the artifact format version (the digits in the magic):
	// 2 for current artifacts, 1 for pre-simulator-state ones.
	Version        int
	Shards         int
	Batch          int
	Proto          uint8
	Instance       uint8
	MinTTL, MaxTTL uint8
	PPS            float64
	Key            uint64
	Targets        int // target count (the addresses themselves stay in the artifact)
	Fill           bool
	RecordPaths    bool
	Progress       bool
	Epoch          time.Duration
	// Adaptive reports an adaptive-campaign artifact (ResumeAdaptive
	// decodes it, not Resume). Targets then counts the pending
	// boundary-generated batch, and Epoch is the adaptive origin.
	Adaptive bool
	// AdaptiveEpoch is the interrupted run's epoch cursor: the index of
	// the epoch that was running (or about to run) at the interrupt.
	AdaptiveEpoch int
}

// InspectCheckpoint decodes an artifact's config section without
// reconstructing the campaign. It performs the same structural
// validation as Resume — magic, section framing, per-section CRC, one
// shard section per configured shard — so an artifact that inspects
// cleanly will also decode (shard payloads themselves are only
// CRC-verified here, not parsed).
func InspectCheckpoint(artifact []byte) (CheckpointInfo, error) {
	var info CheckpointInfo
	version, rest, err := checkpointVersion(artifact)
	if err != nil {
		return info, err
	}
	info.Version = version
	var (
		cfg    CampaignConfig
		state  resumeState
		gotCfg bool
		shards int
	)
	for len(rest) > 0 {
		if len(rest) < 9 {
			return info, fmt.Errorf("%w: truncated section header", ErrCheckpoint)
		}
		typ := rest[0]
		n := binary.LittleEndian.Uint32(rest[1:])
		sum := binary.LittleEndian.Uint32(rest[5:])
		rest = rest[9:]
		if uint64(n) > uint64(len(rest)) {
			return info, fmt.Errorf("%w: section %d length %d exceeds input", ErrCheckpoint, typ, n)
		}
		payload := rest[:n]
		rest = rest[n:]
		if crc32.ChecksumIEEE(payload) != sum {
			return info, fmt.Errorf("%w: section %d: %w", ErrCheckpoint, typ, ErrCheckpointCRC)
		}
		switch typ {
		case sectConfig:
			if gotCfg {
				return info, fmt.Errorf("%w: duplicate config section", ErrCheckpoint)
			}
			var err error
			if _, info.Progress, err = decodeConfig(payload, &cfg, &state); err != nil {
				return info, err
			}
			gotCfg = true
		case sectShard:
			shards++
		case sectAdaptive:
			if gotCfg || shards > 0 || len(rest) > 0 {
				return info, fmt.Errorf("%w: adaptive section must be the artifact's only section", ErrCheckpoint)
			}
			st, err := decodeAdaptive(payload)
			if err != nil {
				return info, err
			}
			info.Adaptive = true
			info.AdaptiveEpoch = st.epoch
			info.Shards = st.cfg.Shards
			info.Batch = st.cfg.Batch
			info.Proto = st.cfg.Proto
			info.Instance = st.cfg.Instance
			info.MinTTL = st.cfg.MinTTL
			info.MaxTTL = st.cfg.MaxTTL
			info.PPS = st.cfg.PPS
			info.Key = st.cfg.Key
			info.Targets = len(st.pending)
			info.Fill = st.cfg.Fill
			info.RecordPaths = st.cfg.RecordPaths
			info.Epoch = st.origin
			return info, nil
		default:
			return info, fmt.Errorf("%w: unknown section type %d", ErrCheckpoint, typ)
		}
	}
	if !gotCfg {
		return info, fmt.Errorf("%w: missing config section", ErrCheckpoint)
	}
	if shards != cfg.Shards {
		return info, fmt.Errorf("%w: %d shard sections for %d shards", ErrCheckpoint, shards, cfg.Shards)
	}
	info.Shards = cfg.Shards
	info.Batch = cfg.Batch
	info.Proto = cfg.Proto
	info.Instance = cfg.Instance
	info.MinTTL = cfg.MinTTL
	info.MaxTTL = cfg.MaxTTL
	info.PPS = cfg.PPS
	info.Key = cfg.Key
	info.Targets = len(cfg.Targets)
	info.Fill = cfg.Fill
	info.RecordPaths = cfg.RecordPaths
	info.Epoch = state.epoch
	return info, nil
}
