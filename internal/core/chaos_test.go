package core

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/faultsim"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/testutil"
)

// chaosEnv is one campaign execution environment: an identically-seeded
// universe with a fault plane installed before any vantage exists, so
// every clone resolves its fault plan at creation.
func chaosEnv(seed int64, fc *faultsim.Config) (*netsim.Universe, *netsim.Vantage) {
	u := campaignUniverse(seed)
	u.SetFaults(fc)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	return u, v
}

// chaosOut is one faulted campaign's comparable output.
type chaosOut struct {
	store    *probe.Store
	graph    []byte
	progress []byte
	stats    CampaignStats
	sim      netsim.SimStats
	err      error
}

// chaosRun executes one campaign under the given fault plane. A zero
// interruptAt runs to completion (or graceful degradation); a non-zero
// one interrupts, checkpoints, and resumes on a fresh identically-
// faulted universe before running out the remainder.
func chaosRun(t *testing.T, seed int64, fc *faultsim.Config, targets []netip.Addr, shards, batch int, interruptAt time.Duration) chaosOut {
	t.Helper()
	u, v := chaosEnv(seed, fc)
	cfg := campaignCfg(targets)
	cfg.Batch = batch
	var progress bytes.Buffer
	ccfg := CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		Telemetry:   telemetry.NewRegistry(),
		InterruptAt: interruptAt,
	}
	if interruptAt == 0 {
		ccfg.Progress = &ProgressConfig{Writer: &progress}
	} else {
		ccfg.Progress = &ProgressConfig{}
	}
	camp := NewCampaign(ccfg, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := camp.Run()
	if interruptAt == 0 {
		return chaosOut{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(),
			stats: stats, sim: u.StatsSnapshot(), err: err}
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("faulted interrupt run: got %v, want ErrInterrupted", err)
	}
	art, err := camp.Checkpoint()
	if err != nil {
		t.Fatalf("faulted checkpoint: %v", err)
	}
	u2, v2 := chaosEnv(seed, fc)
	camp2, err := Resume(art, ResumeConfig{
		Telemetry:      telemetry.NewRegistry(),
		ProgressWriter: &progress,
	}, func(_ int, start time.Duration) probe.Conn { return v2.Clone(start) })
	if err != nil {
		t.Fatalf("faulted resume: %v", err)
	}
	store, stats, err = camp2.Run()
	return chaosOut{store: store, graph: graphNDJSON(t, store), progress: progress.Bytes(),
		stats: stats, sim: u2.StatsSnapshot(), err: err}
}

// TestCampaignChaosMatrix drives the four headline failure modes across
// the shard × batch grid. For every cell it checks the scenario's
// recovery invariants on an uninterrupted faulted run, then interrupts
// the same faulted campaign mid-flight, checkpoints, resumes on a fresh
// universe, and requires the resumed run to reproduce the uninterrupted
// faulted run byte for byte — faults are part of the deterministic
// schedule, so checkpoint/resume must commute with them.
func TestCampaignChaosMatrix(t *testing.T) {
	const seed = 2718
	targets := campaignTargets(t, seed, 61)
	clean := ckptReference(t, seed, targets, 1, 1)

	scenarios := []struct {
		name        string
		rules       []faultsim.Rule
		interruptAt time.Duration
		check       func(t *testing.T, out chaosOut)
	}{
		{
			// Shard 0's host dies a fifth of the way through its window.
			// Recovery re-probes the orphaned range at the original
			// instants, so with lossless replies the merged store must
			// equal the fault-free one: zero lost, zero duplicated
			// permutation indices.
			name:        "crash",
			rules:       []faultsim.Rule{{Vantage: "US-EDU-1", Shard: 0, Kind: faultsim.KindCrash, At: 300 * time.Millisecond}},
			interruptAt: 200 * time.Millisecond, // before the crash fires
			check: func(t *testing.T, out chaosOut) {
				if out.err != nil {
					t.Fatalf("crash recovery: %v", out.err)
				}
				if len(out.stats.Quarantined) != 1 || out.stats.Quarantined[0] != 0 {
					t.Fatalf("quarantined = %v, want [0]", out.stats.Quarantined)
				}
				if len(out.stats.Incomplete) != 0 {
					t.Fatalf("incomplete ranges: %v", out.stats.Incomplete)
				}
				if !out.store.Equal(clean.store) {
					t.Fatal("crash-recovered store differs from fault-free store")
				}
				if out.stats.ProbesSent != clean.stats.ProbesSent {
					t.Fatalf("probes sent %d, fault-free %d", out.stats.ProbesSent, clean.stats.ProbesSent)
				}
				if out.sim.FaultCrashDenials == 0 {
					t.Fatal("no crash denials counted")
				}
			},
		},
		{
			// A blackhole window swallows outbound probes: sends succeed,
			// replies never materialize. The campaign completes without
			// quarantine; every index is still probed exactly once.
			name: "stall",
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard,
				Kind: faultsim.KindStall, At: 200 * time.Millisecond, Duration: 150 * time.Millisecond}},
			interruptAt: 250 * time.Millisecond, // inside the stall window
			check: func(t *testing.T, out chaosOut) {
				if out.err != nil {
					t.Fatalf("stall run: %v", out.err)
				}
				if len(out.stats.Quarantined) != 0 {
					t.Fatalf("stall quarantined %v", out.stats.Quarantined)
				}
				// Fill probes are reply-triggered, so their count moves with
				// the faults; the permutation-driven sends must not.
				if got, want := out.stats.ProbesSent-out.stats.Fills, clean.stats.ProbesSent-clean.stats.Fills; got != want {
					t.Fatalf("permutation probes sent %d, fault-free %d", got, want)
				}
				if out.stats.Replies >= clean.stats.Replies {
					t.Fatalf("stall lost no replies: %d vs %d", out.stats.Replies, clean.stats.Replies)
				}
				if out.sim.FaultStallDrops == 0 {
					t.Fatal("no stall drops counted")
				}
			},
		},
		{
			// EAGAIN-shaped send failures: the prober retries at the next
			// gap instant with bounded backoff and the campaign completes
			// with every index sent.
			name: "transient-send",
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard,
				Kind: faultsim.KindTransientSend, Prob: 0.1}},
			interruptAt: 250 * time.Millisecond,
			check: func(t *testing.T, out chaosOut) {
				if out.err != nil {
					t.Fatalf("transient run: %v", out.err)
				}
				if len(out.stats.Quarantined) != 0 {
					t.Fatalf("transient quarantined %v", out.stats.Quarantined)
				}
				if out.stats.Retries == 0 {
					t.Fatal("no retries recorded")
				}
				// Fill probes are reply-triggered, so their count moves with
				// the faults; the permutation-driven sends must not.
				if got, want := out.stats.ProbesSent-out.stats.Fills, clean.stats.ProbesSent-clean.stats.Fills; got != want {
					t.Fatalf("permutation probes sent %d, fault-free %d", got, want)
				}
				if out.sim.FaultTransientErrs == 0 {
					t.Fatal("no transient errors counted")
				}
			},
		},
		{
			// Bit-flipped replies: damaged packets parse as garbage or
			// fail the not-mine check, never crash the decoder, and the
			// campaign completes cleanly.
			name: "corrupt-reply",
			rules: []faultsim.Rule{{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard,
				Kind: faultsim.KindCorruptReply, Prob: 0.3}},
			interruptAt: 250 * time.Millisecond,
			check: func(t *testing.T, out chaosOut) {
				if out.err != nil {
					t.Fatalf("corrupt run: %v", out.err)
				}
				if len(out.stats.Quarantined) != 0 {
					t.Fatalf("corrupt quarantined %v", out.stats.Quarantined)
				}
				// Fill probes are reply-triggered, so their count moves with
				// the faults; the permutation-driven sends must not.
				if got, want := out.stats.ProbesSent-out.stats.Fills, clean.stats.ProbesSent-clean.stats.Fills; got != want {
					t.Fatalf("permutation probes sent %d, fault-free %d", got, want)
				}
				if out.sim.FaultCorrupted == 0 {
					t.Fatal("no corrupted replies counted")
				}
			},
		},
	}

	// Every campaign below runs shard probers, a cancellation watcher,
	// and recovery probers on their own goroutines; all must have exited.
	testutil.NoGoroutineLeaks(t)
	for _, sc := range scenarios {
		fc := &faultsim.Config{Seed: 0xc4a05, Rules: sc.rules}
		t.Run(sc.name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				for _, batch := range []int{1, 64} {
					base := chaosRun(t, seed, fc, targets, shards, batch, 0)
					sc.check(t, base)
					resumed := chaosRun(t, seed, fc, targets, shards, batch, sc.interruptAt)
					label := sc.name
					if !resumed.store.Equal(base.store) {
						t.Fatalf("%s shards=%d batch=%d: resumed store differs from faulted run", label, shards, batch)
					}
					if !bytes.Equal(resumed.graph, base.graph) {
						t.Errorf("%s shards=%d batch=%d: resumed graph differs", label, shards, batch)
					}
					if !bytes.Equal(resumed.progress, base.progress) {
						t.Errorf("%s shards=%d batch=%d: resumed progress differs:\nbase: %s\ngot:  %s",
							label, shards, batch, base.progress, resumed.progress)
					}
					if resumed.stats.ProbesSent != base.stats.ProbesSent ||
						resumed.stats.Replies != base.stats.Replies {
						t.Fatalf("%s shards=%d batch=%d: resumed stats %+v vs %+v",
							label, shards, batch, resumed.stats.Stats, base.stats.Stats)
					}
					if resumed.err != nil && !errors.Is(resumed.err, base.err) {
						t.Fatalf("%s shards=%d batch=%d: resumed err %v vs %v", label, shards, batch, resumed.err, base.err)
					}
				}
			}
		})
	}
}

// TestCampaignChaosDeterminism pins the fault plane's reproducibility:
// two identically-seeded faulted campaigns produce byte-identical
// stores and progress streams even when the faults themselves discard
// or damage traffic.
func TestCampaignChaosDeterminism(t *testing.T) {
	const seed = 515
	targets := campaignTargets(t, seed, 61)
	fc := &faultsim.Config{Seed: 7, Rules: []faultsim.Rule{
		{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindTruncateReply, Prob: 0.2},
		{Vantage: "US-EDU-1", Shard: faultsim.MatchAnyShard, Kind: faultsim.KindDelayBurst,
			At: 300 * time.Millisecond, Duration: 400 * time.Millisecond},
	}}
	a := chaosRun(t, seed, fc, targets, 2, 64, 0)
	b := chaosRun(t, seed, fc, targets, 2, 64, 0)
	if a.err != nil || b.err != nil {
		t.Fatalf("faulted runs: %v, %v", a.err, b.err)
	}
	if !a.store.Equal(b.store) {
		t.Fatal("identically-faulted stores differ")
	}
	if !bytes.Equal(a.progress, b.progress) {
		t.Fatal("identically-faulted progress streams differ")
	}
	if a.sim.FaultTruncated == 0 || a.sim.FaultDelayed == 0 {
		t.Fatalf("fault counters not exercised: %+v", a.sim)
	}
}
