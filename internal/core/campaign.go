// Campaign: the sharded, concurrent Yarrp6 runner.
//
// Yarrp6's permutation domain partitions trivially — the paper's own
// deployments run one prober instance per slice of the keyed permutation,
// distinguished by the Instance byte every probe carries. Campaign
// exploits that: it splits the (target × TTL) domain into N contiguous
// shards and drives each with its own Yarrp6 instance on its own
// goroutine, its own connection, and its own result store, then merges.
//
// The sharded run reproduces the single-prober run's schedule exactly.
// Shard i's connection opens its virtual clock at the moment shard i's
// window of the global schedule begins (permutation index lo_i ×
// inter-probe gap), so the union of all shard schedules is the 1-shard
// schedule probe for probe and timestamp for timestamp. Against a
// simulator whose per-packet behaviour is a pure function of (probe,
// send time) — see netsim — the merged store is deterministic whatever
// the goroutine interleaving, and a 1-shard Campaign is byte-identical
// to calling Yarrp6.Run directly. Router token buckets — the one piece
// of per-packet state that is NOT a pure function of (probe, send time)
// — are carried across shard boundaries too: before the shards launch,
// the campaign replays the schedule prefix [0, lo_max) once through the
// simulator's prime fast path and hands each shard a bucket snapshot
// taken at its own window start, so even under sustained ICMPv6
// rate-limit saturation every shard sees exactly the bucket levels the
// serial run would have left it (TestCampaignSaturationMatrix).
//
// The same statelessness that makes sharding trivial makes the campaign
// recoverable. Each shard's progress is exactly one permutation cursor
// plus its result store, so a campaign interrupted at any virtual
// instant checkpoints into a small artifact (Checkpoint/Resume) and a
// shard killed by a fatal connection fault is quarantined and its
// remaining permutation range re-probed through fresh connections at
// the original schedule instants (re-sharded across the survivors) —
// against a deterministic simulator the recovered store equals the
// fault-free one whenever no replies were lost.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beholder/internal/perm"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// ConnFactory builds the vantage connection shard i probes through.
// start is the virtual time at which shard i's permutation window opens,
// relative to the campaign epoch; implementations backed by a virtual
// clock must open the connection's clock there so that the shard sends
// its probes at the same virtual times a single prober would have.
// Campaign.Run invokes the factory serially, before any shard starts —
// and again, still serially, when building recovery connections for a
// quarantined shard's remaining range (then with shard numbers past the
// configured shard count).
type ConnFactory func(shard int, start time.Duration) probe.Conn

// CampaignConfig parameterizes a sharded campaign.
type CampaignConfig struct {
	Config
	// Shards is the number of concurrent prober instances. Each shard s
	// probes with Instance = Config.Instance + s. Default 1.
	Shards int
	// RecordPaths enables per-target trace retention in the merged
	// store (and the per-shard stores feeding it).
	RecordPaths bool
	// NewObserver, when non-nil, builds the per-shard reply observer:
	// shard s's prober calls NewObserver(s)'s OnReply for every stored
	// reply, on the shard goroutine. The factory runs serially before
	// any shard starts; the caller folds whatever the observers built
	// (per-shard topology subgraphs, say) after Run returns. Config's
	// own Observer field must be left nil — shards may not share one
	// unsynchronized observer. Recovery probers and resumed shards do
	// not replay already-processed replies through observers; derive
	// streaming artifacts from the merged store (graph.FromStore) when
	// a campaign was recovered or resumed.
	NewObserver func(shard int) probe.Observer
	// Telemetry, when non-nil, aggregates hot-path metrics: each shard
	// folds its counters and histograms into its own telemetry.Shard
	// view of this registry at curve-sample cadence, so snapshots read
	// campaign totals without any per-probe shared-atomic traffic.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, enables the deterministic virtual-time
	// progress stream: per-shard recorders merged into the global series
	// in CampaignStats.Progress and, when Writer is set, streamed as
	// NDJSON after the run.
	Progress *ProgressConfig
	// InterruptAt, when nonzero, stops the campaign at that virtual
	// instant (relative to the campaign epoch): no shard sends at or
	// past it, RunContext returns ErrInterrupted with the partial
	// results, and Checkpoint serializes the complete state so Resume
	// continues the run as if it had never stopped.
	InterruptAt time.Duration
	// DeferMerge skips the partial-store fold on interrupted runs:
	// RunContext returns a nil store with ErrInterrupted, and
	// MergedStore folds the shard stores on demand. Supervisors that
	// interrupt only to checkpoint-and-continue (periodic snapshots)
	// discard the partial merge, so deferring it keeps each snapshot
	// cycle from paying two full passes over the result set (the
	// checkpoint-preserving clones plus the tree merge) for nothing.
	// Completed runs always merge inline.
	DeferMerge bool
}

// ProgressConfig parameterizes the campaign progress stream.
type ProgressConfig struct {
	// Writer, when non-nil, receives the NDJSON stream after the run:
	// sample records in virtual-time order, optional per-shard records,
	// and a final summary record. Samples are deterministic — byte
	// identical at any shard count and batch size. Interrupted runs do
	// not write the stream (the resumed run writes the whole series).
	Writer io.Writer
	// SampleEvery is the sampling interval in permutation slots (probe
	// departures). Zero picks domain/128 + 1, the discovery-curve step,
	// giving ~129 samples per campaign.
	SampleEvery uint64
	// PerShard adds per-shard window records (start, elapsed, lag,
	// counters) to the stream. These describe the shard layout itself,
	// so they vary with the shard count and are excluded from
	// determinism comparisons.
	PerShard bool
}

// PermRange is a half-open permutation index range [Lo, Hi) that a
// degraded campaign could not probe.
type PermRange struct {
	Lo, Hi uint64
}

// CampaignStats extends the merged campaign counters with the per-shard
// breakdown.
type CampaignStats struct {
	Stats
	// PerShard holds each shard's own counters (including its discovery
	// curve over its window). The first Shards entries are the
	// configured shards in order; any further entries are recovery
	// probers that re-probed quarantined ranges.
	PerShard []Stats
	// Progress is the merged virtual-time progress series, present when
	// CampaignConfig.Progress was set. Timestamps are relative to the
	// campaign epoch; the final point lands at Elapsed with the campaign
	// totals.
	Progress []telemetry.Point
	// Quarantined lists shards that failed with a fatal connection
	// error; their remaining ranges were re-probed through recovery
	// connections where possible.
	Quarantined []int
	// Incomplete lists permutation ranges that stayed unprobed after
	// recovery was exhausted — the explicit record of a degraded run.
	Incomplete []PermRange
}

// maxRecoveryRounds bounds how many times the campaign re-shards a
// quarantined range whose recovery probers themselves keep failing.
const maxRecoveryRounds = 3

// Campaign is a sharded Yarrp6 run. A Campaign value runs once; after
// an interrupted run (InterruptAt or context cancellation) it retains
// the complete per-shard state, and Checkpoint serializes it.
type Campaign struct {
	cfg    CampaignConfig
	connOf ConnFactory

	// Run state, retained after RunContext for Checkpoint.
	domain      uint64
	gap         time.Duration
	epoch       time.Duration
	slots       uint64
	stepDur     time.Duration
	shards      []*shardState
	stop        atomic.Bool
	beat        atomic.Int64
	keep        bool // per-shard state preserved (interruptible run)
	quarantined bool
	res         *resumeState  // non-nil when built by Resume or Rewind
	deferred    []*shardState // interrupted run's unmerged shards (DeferMerge)
	tmpl        *probe.TmplStore
}

// shardState is one prober's slot in the campaign: its permutation
// window, connection, result store, and outcome.
type shardState struct {
	index    int
	lo, hi   uint64
	instance uint8
	conn     probe.Conn
	prober   *Yarrp6
	store    *probe.Store
	prog     *telemetry.Progress
	track    *ifaceTimes
	stats    Stats
	err      error        // fatal run error (quarantines the shard)
	rs       *shardResume // capture from an interrupted or failed run
	done     bool
}

// NewCampaign creates a sharded campaign; validation happens in Run.
func NewCampaign(cfg CampaignConfig, connOf ConnFactory) *Campaign {
	return &Campaign{cfg: cfg, connOf: connOf}
}

// primeGroup advances every fresh shard's router token-bucket state to
// its window-start instant with one shared replay pass. Shard k's
// buckets must open exactly where the single serial prober's stood
// after probes [0, lo_k) — per-shard replay achieves that but costs
// Σ lo_k = domain·(N−1)/2 probe evaluations. Instead the highest-window
// fresh shard's connection replays the serial prefix once (it needs the
// full [0, lo_max) pass anyway), and as the replay cursor crosses each
// lower shard's window boundary the bucket state is snapshotted and
// handed to that shard's connection — identical state, domain·(N−1)/N
// fewer evaluations, and the shared flow-plan and probe-template caches
// are warm before any window sends. The replay rebuilds probes with the
// campaign's base instance byte and epoch — the serial prober's exact
// schedule, which is the history being reproduced. Shards whose
// connections lack prime or snapshot support, resumed shards (their
// artifact carries the interrupt-instant state), and recovery probers
// keep the per-prober replay inside Yarrp6.Run.
func (c *Campaign) primeGroup(tmpl *probe.TmplStore) {
	var cands []*shardState
	for _, ss := range c.shards {
		if ss.done || ss.prober == nil || ss.prober.cfg.resume != nil || ss.lo == 0 {
			continue
		}
		cands = append(cands, ss)
	}
	if len(cands) == 0 {
		return
	}
	last := cands[len(cands)-1]
	pr, okP := last.conn.(probe.Primer)
	exp, okS := last.conn.(probe.SimStateCheckpointer)
	if !okP || !okS {
		return
	}
	for _, ss := range cands[:len(cands)-1] {
		if _, ok := ss.conn.(probe.SimStateCheckpointer); !ok {
			return
		}
	}
	cfg := &c.cfg.Config
	p, err := perm.New(cfg.Key, c.domain)
	if err != nil {
		return
	}
	base := last.conn.Now() - time.Duration(last.lo)*c.gap
	codec := probe.NewCodec(last.conn, cfg.Proto, cfg.Instance)
	codec.SetEpoch(base)
	if tmpl != nil {
		codec.UseSharedTemplates(tmpl)
	} else {
		codec.SetProbeCache(tmplCacheSize(len(cfg.Targets)))
	}
	nt := uint64(len(cfg.Targets))
	pkt := make([]byte, 128)
	blobs := make([][]byte, len(cands)-1)
	// Flow tokens, dense by target index: each target's flow is
	// registered once from its first replayed probe, and the remaining
	// ~TTL-span probes of the flow replay through the token — skipping
	// the per-probe packet build and decode that dominate full Prime.
	toks := make([]int, len(cfg.Targets))
	for i := range toks {
		toks[i] = -1
	}
	pr.BeginPrime()
	it := p.Resume(0)
	k := 0
	for {
		for k < len(blobs) && it.Pos() == cands[k].lo {
			blobs[k] = exp.ExportSimState(nil)
			k++
		}
		if it.Pos() >= last.lo {
			break
		}
		v, ok := it.Next()
		if !ok {
			break
		}
		at := base + time.Duration(it.Pos()-1)*c.gap
		ti := v % nt
		ttl := cfg.MinTTL + uint8(v/nt)
		if toks[ti] < 0 {
			n := codec.BuildProbeAt(pkt, cfg.Targets[ti], ttl, at)
			t, err := pr.PrimeFlow(pkt[:n])
			if err != nil {
				continue
			}
			toks[ti] = t
		}
		pr.PrimeIdx(toks[ti], ttl, at)
	}
	pr.EndPrime()
	for i, ss := range cands[:len(blobs)] {
		if blobs[i] == nil {
			continue
		}
		if err := ss.conn.(probe.SimStateCheckpointer).ImportSimState(blobs[i]); err != nil {
			continue // the shard's own Run replays the prefix instead
		}
		ss.prober.cfg.primed = true
	}
	last.prober.cfg.primed = true
}

// Epoch returns the campaign epoch in absolute virtual time, valid
// after RunContext has started the shards. Resume factories use it to
// position recovery and resumed connections.
func (c *Campaign) Epoch() time.Duration { return c.epoch }

// Interrupt requests a cooperative stop from outside the run: every
// shard stops at its next batch boundary, RunContext returns
// ErrInterrupted with the partial results, and the campaign stays
// checkpointable. Safe to call from any goroutine, any number of
// times, including before or after the run. This is the supervision
// hook — a watchdog that stops seeing Beat advance calls Interrupt,
// checkpoints, and resumes on fresh connections.
func (c *Campaign) Interrupt() { c.stop.Store(true) }

// Beat returns the campaign's liveness heartbeat: a counter every
// shard prober bumps each time it polls its stop conditions (per probe
// on the serial path, per send run batched, per drain iteration). A
// running campaign's Beat advances continuously in wall time; a value
// that stops moving means every shard is wedged or finished. Safe to
// read concurrently with the run.
func (c *Campaign) Beat() int64 { return c.beat.Load() }

// Proto returns the campaign's transport protocol — for resumed
// campaigns, the one pinned by the checkpoint artifact.
func (c *Campaign) Proto() uint8 {
	if c.cfg.Proto == 0 {
		return wire.ProtoICMPv6
	}
	return c.cfg.Proto
}

// shardRange returns the contiguous permutation slice [lo, hi) owned by
// shard s of n over a domain of the given size.
func shardRange(domain uint64, s, n int) (lo, hi uint64) {
	lo = domain * uint64(s) / uint64(n)
	hi = domain * uint64(s+1) / uint64(n)
	return lo, hi
}

// Run executes the campaign and returns the merged store and statistics.
// It is RunContext without cancellation.
func (c *Campaign) Run() (*probe.Store, CampaignStats, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the campaign. Cancelling ctx stops every shard at
// its next batch boundary: pending telemetry is flushed, the partial
// merged store and statistics are returned with ErrInterrupted, and the
// campaign stays checkpointable. The merge is deterministic: shards own
// disjoint permutation slices, and their stores are folded in shard
// order (equal to virtual-time order of the shard windows) after every
// goroutine has finished.
func (c *Campaign) RunContext(ctx context.Context) (*probe.Store, CampaignStats, error) {
	cfg := &c.cfg
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if err := cfg.Config.setDefaults(); err != nil {
		return nil, CampaignStats{}, err
	}
	if cfg.PermStart != 0 || cfg.PermEnd != 0 {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign owns the permutation split; clear PermStart/PermEnd")
	}
	if cfg.Config.Observer != nil {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign shards may not share one observer; use NewObserver")
	}
	c.domain = Domain(&cfg.Config)
	if uint64(cfg.Shards) > c.domain && c.res == nil {
		cfg.Shards = int(c.domain)
	}
	c.gap = time.Duration(float64(time.Second) / cfg.PPS)

	hasProg := cfg.Progress != nil
	if hasProg {
		// Progress sampling: thresholds are epoch + k·step where step is
		// a whole number of permutation slots — the same virtual-time
		// grid the probe schedule lives on, so every shard crosses
		// thresholds at identical campaign-global instants whatever its
		// window offset.
		c.slots = cfg.Progress.SampleEvery
		if c.slots == 0 {
			c.slots = c.domain/128 + 1
		}
		c.stepDur = time.Duration(c.slots) * c.gap
	}

	// One template store for the whole campaign: shard codecs differ
	// only by instance byte, which templates hold variable, so each
	// target's probe template is built once instead of once per shard.
	var tmpl *probe.TmplStore
	if c.res != nil && c.res.tmpl != nil {
		tmpl = c.res.tmpl
	} else if cfg.Shards > 1 {
		tmpl = probe.NewTmplStore(tmplCacheSize(len(cfg.Targets)))
	}
	c.tmpl = tmpl
	// Per-shard interface first-seen tracking feeds the global
	// discovery-curve merge and the progress interface counts;
	// single-shard runs without progress skip the bookkeeping.
	trackOn := cfg.Shards > 1 || hasProg

	c.shards = make([]*shardState, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := shardRange(c.domain, s, cfg.Shards)
		ss := &shardState{index: s, lo: lo, hi: hi, instance: cfg.Instance + uint8(s)}
		c.shards[s] = ss
		var rsh *resumeShard
		if c.res != nil {
			rsh = c.res.shards[s]
		}
		if rsh != nil {
			ss.store = rsh.store
		} else {
			ss.store = probe.NewStore(cfg.RecordPaths)
		}
		if trackOn {
			ss.track = &ifaceTimes{first: make(map[netip.Addr]time.Duration)}
			if rsh != nil {
				for a, at := range rsh.firstSeen {
					ss.track.first[a] = at
				}
			}
		}
		if rsh != nil && rsh.done {
			// This shard finished before the checkpoint; its stored
			// results feed the merge directly.
			ss.done = true
			ss.stats = rsh.stats
			if hasProg {
				ss.prog = telemetry.NewProgress(c.epoch, c.stepDur)
				ss.prog.Restore(rsh.samples)
			}
			continue
		}
		scfg := cfg.Config
		scfg.Instance = ss.instance
		scfg.PermStart, scfg.PermEnd = lo, hi
		scfg.sharedTmpl = tmpl
		scfg.stop = &c.stop
		scfg.pulse = &c.beat
		if cfg.NewObserver != nil {
			scfg.Observer = cfg.NewObserver(s)
		}
		if cfg.Telemetry != nil {
			scfg.telemetry = cfg.Telemetry.NewShard()
		}
		start := time.Duration(lo) * c.gap
		if rsh != nil {
			scfg.resume = rsh.rs
			start = rsh.rs.now - c.res.epoch
		}
		// The factory runs serially: connection construction may mutate
		// shared vantage state (clock-group registration). A live rewind
		// hands back the interrupted shard's own connection — already at
		// the captured instant, caches warm, in-flight replies queued.
		var conn probe.Conn
		if rsh != nil && rsh.conn != nil {
			conn = rsh.conn
		} else {
			conn = c.connOf(s, start)
		}
		if s == 0 && c.res == nil {
			// Shard 0's window opens at offset zero, so its connection's
			// current instant is the campaign epoch in absolute virtual
			// time — the origin every progress threshold counts from.
			c.epoch = conn.Now()
		}
		if cfg.InterruptAt > 0 {
			scfg.interruptAt = c.epoch + cfg.InterruptAt
		}
		if hasProg {
			ss.prog = telemetry.NewProgress(c.epoch, c.stepDur)
			if rsh != nil {
				ss.prog.Restore(rsh.rs.samples)
			}
			scfg.progress = ss.prog
		}
		if ss.track != nil {
			ss.track.inner = scfg.Observer
			scfg.Observer = ss.track
		}
		ss.conn = conn
		ss.prober = New(conn, scfg)
	}

	c.primeGroup(tmpl)

	// Cancellation watcher: flips the shared stop flag the probers poll
	// at batch boundaries. The watcher exits through stopWatch when the
	// shards finish first, so no goroutine outlives RunContext.
	stopWatch := make(chan struct{})
	watcherDone := make(chan struct{})
	if ctx != nil && ctx.Err() != nil {
		// Already cancelled: flip the flag synchronously so no shard
		// sends a single probe before noticing (the watcher goroutine
		// could lose that race on a virtual-time run).
		c.stop.Store(true)
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				c.stop.Store(true)
			case <-stopWatch:
			}
		}()
	} else {
		close(watcherDone)
	}

	c.runShards(c.shards)
	close(stopWatch)
	<-watcherDone

	// Classify outcomes: fatal shard errors quarantine the shard and
	// hand its remaining range to recovery; interrupts keep the campaign
	// checkpointable.
	var out CampaignStats
	interrupted := false
	var failed []recoverRange
	for _, ss := range c.shards {
		switch {
		case ss.err != nil:
			out.Quarantined = append(out.Quarantined, ss.index)
			rr := recoverRange{instance: ss.instance, lo: ss.lo, hi: ss.hi}
			if ss.rs != nil {
				rr.lo = ss.rs.cursor
				rr.pending = ss.rs.pending
			}
			if rr.lo < rr.hi || len(rr.pending) > 0 {
				failed = append(failed, rr)
			}
		case ss.rs != nil:
			interrupted = true
		}
	}
	recovered := c.recoverRanges(failed, tmpl, trackOn, hasProg, &out)
	c.quarantined = len(out.Quarantined) > 0
	c.keep = interrupted || cfg.InterruptAt > 0

	all := make([]*shardState, 0, len(c.shards)+len(recovered))
	all = append(all, c.shards...)
	all = append(all, recovered...)

	out.PerShard = make([]Stats, 0, len(all))
	var end time.Duration
	starts := make([]time.Duration, 0, len(all))
	for _, ss := range all {
		st := ss.stats
		out.PerShard = append(out.PerShard, st)
		starts = append(starts, time.Duration(ss.lo)*c.gap)
		out.ProbesSent += st.ProbesSent
		out.Fills += st.Fills
		out.Skipped += st.Skipped
		out.Replies += st.Replies
		out.NotMine += st.NotMine
		out.Retries += st.Retries
		var t time.Duration
		if ss.rs != nil && !ss.done {
			t = ss.rs.now - c.epoch
		} else {
			t = time.Duration(ss.lo)*c.gap + st.Elapsed
		}
		if t > end {
			end = t
		}
	}
	// Fold the shard stores — unless the caller deferred the interrupt
	// merge, in which case the shards are parked for MergedStore and
	// the partial fold (clones plus tree merge, two full passes over
	// the result set) is skipped entirely.
	var merged *probe.Store
	if interrupted && cfg.DeferMerge {
		c.deferred = all
	} else {
		merged = c.mergeShards(all)
	}
	// Elapsed spans the whole virtual schedule: from the campaign epoch
	// to the last shard's drain deadline (or the interrupt instant).
	out.Elapsed = end
	switch {
	case len(all) == 1:
		out.Curve = all[0].stats.Curve
	case trackOn:
		tracks := make([]*ifaceTimes, 0, len(all))
		for _, ss := range all {
			if ss.track != nil {
				tracks = append(tracks, ss.track)
			}
		}
		out.Curve = mergeCurves(out.PerShard, tracks)
	}
	if hasProg {
		// First sightings relative to the campaign epoch, sorted: the
		// merge counts interfaces by walking this list against each
		// threshold.
		tracks := make([]*ifaceTimes, 0, len(all))
		progs := make([]*telemetry.Progress, 0, len(all))
		for _, ss := range all {
			if ss.track != nil {
				tracks = append(tracks, ss.track)
			}
			if ss.prog != nil {
				progs = append(progs, ss.prog)
			}
		}
		seenAt := firstSeenAt(tracks)
		for i := range seenAt {
			seenAt[i] -= c.epoch
		}
		out.Progress = telemetry.Merge(progs, seenAt, c.stepDur, end)
		if w := cfg.Progress.Writer; w != nil && !interrupted {
			if err := c.writeProgress(w, out, starts); err != nil {
				return merged, out, fmt.Errorf("progress stream: %w", err)
			}
		}
	}
	if interrupted {
		return merged, out, ErrInterrupted
	}
	return merged, out, nil
}

// mergeShards folds the given shard stores with a parallel tree merge:
// pairwise probe.Store.Merge on worker goroutines, halving the list
// each level, so merge latency is O(log N) pairwise merges instead of a
// serial O(N) fold. Merge is commutative and associative (property
// tests in internal/probe pin this), and shards own disjoint
// permutation slices, so the tree shape cannot change the result;
// pairing adjacent shards additionally keeps the fold in virtual-time
// order, preserving the documented first-answer rule even for
// overlapping ad-hoc inputs. A checkpointable run merges clones so
// Checkpoint can still serialize the per-shard stores.
func (c *Campaign) mergeShards(all []*shardState) *probe.Store {
	stores := make([]*probe.Store, len(all))
	for i, ss := range all {
		stores[i] = ss.store
	}
	if c.keep {
		for i := range stores {
			clone := probe.NewStore(c.cfg.RecordPaths)
			clone.Merge(stores[i])
			stores[i] = clone
		}
	}
	return mergeStoreTree(stores)
}

// MergedStore folds an interrupted DeferMerge run's partial results on
// demand — the store RunContext would have returned inline. It returns
// nil when no deferred merge is pending (the run completed, or
// DeferMerge was off). The campaign stays checkpointable: the fold
// works on clones, exactly as the inline merge does.
func (c *Campaign) MergedStore() *probe.Store {
	if c.deferred == nil {
		return nil
	}
	return c.mergeShards(c.deferred)
}

// runShards drives the given probers concurrently, one goroutine per
// shard, recording each outcome on its shardState. Done shards (resumed
// completed ones) are skipped.
func (c *Campaign) runShards(shards []*shardState) {
	var wg sync.WaitGroup
	batchLabel := strconv.Itoa(c.cfg.Batch)
	for _, ss := range shards {
		if ss.done || ss.prober == nil {
			continue
		}
		wg.Add(1)
		go func(ss *shardState) {
			defer wg.Done()
			// Label the shard goroutine so -cpuprofile output from the
			// drivers attributes campaign time to (shard, batch) without
			// any manual goroutine archaeology in pprof.
			pprof.Do(context.Background(), pprof.Labels("yarrp6-shard", strconv.Itoa(ss.index), "yarrp6-batch", batchLabel), func(context.Context) {
				stats, err := ss.prober.Run(ss.store)
				ss.stats = stats
				switch {
				case err == nil:
					ss.done = true
				case errors.Is(err, ErrInterrupted):
					ss.rs = ss.prober.ResumeState()
				default:
					ss.err = err
					ss.rs = ss.prober.ResumeState()
				}
			})
		}(ss)
	}
	wg.Wait()
}

// recoverRange is a quarantined shard's unprobed remainder: the
// permutation range past its cursor plus the replies that were in
// flight when it died.
type recoverRange struct {
	lo, hi   uint64
	instance uint8
	pending  []pendingReply
}

// recoverRanges re-probes quarantined ranges through fresh connections.
// Each range is re-sharded across as many recovery probers as there are
// surviving shards, every recovery connection's clock opening at the
// instant the range's probes were originally scheduled — against a
// deterministic simulator the re-probed replies are the ones the dead
// shard would have collected, so the merged store matches the
// fault-free run whenever no replies were lost. Recovery probers keep
// the quarantined shard's instance byte, honor cancellation, and rounds
// are bounded: ranges whose recovery probers keep dying are returned in
// CampaignStats.Incomplete.
func (c *Campaign) recoverRanges(ranges []recoverRange, tmpl *probe.TmplStore, trackOn, hasProg bool, out *CampaignStats) []*shardState {
	if len(ranges) == 0 {
		return nil
	}
	cfg := &c.cfg
	survivors := cfg.Shards - len(out.Quarantined)
	if survivors < 1 {
		survivors = 1
	}
	var recovered []*shardState
	nextIdx := cfg.Shards
	for round := 0; round < maxRecoveryRounds && len(ranges) > 0; round++ {
		var batch []*shardState
		for _, rr := range ranges {
			span := rr.hi - rr.lo
			k := survivors
			if span > 0 && uint64(k) > span {
				k = int(span)
			}
			if span == 0 {
				k = 1 // pending replies only: one drain-only prober
			}
			for j := 0; j < k; j++ {
				a := rr.lo + span*uint64(j)/uint64(k)
				b := rr.lo + span*uint64(j+1)/uint64(k)
				if a == b && !(j == 0 && len(rr.pending) > 0) {
					continue
				}
				ss := &shardState{index: nextIdx, lo: a, hi: b, instance: rr.instance}
				nextIdx++
				scfg := cfg.Config
				scfg.Instance = rr.instance
				scfg.PermStart, scfg.PermEnd = a, b
				scfg.sharedTmpl = tmpl
				scfg.stop = &c.stop
				scfg.pulse = &c.beat
				if cfg.Telemetry != nil {
					scfg.telemetry = cfg.Telemetry.NewShard()
				}
				conn := c.connOf(ss.index, time.Duration(a)*c.gap)
				if hasProg {
					ss.prog = telemetry.NewProgress(c.epoch, c.stepDur)
					scfg.progress = ss.prog
				}
				if trackOn {
					ss.track = &ifaceTimes{first: make(map[netip.Addr]time.Duration)}
					scfg.Observer = ss.track
				}
				if j == 0 && len(rr.pending) > 0 {
					// The dead shard's in-flight replies drain through the
					// first recovery connection at their original instants.
					if ck, ok := conn.(probe.ConnCheckpointer); ok {
						for _, pr := range rr.pending {
							ck.InjectReply(pr.at, pr.data)
						}
					}
				}
				ss.store = probe.NewStore(cfg.RecordPaths)
				ss.conn = conn
				ss.prober = New(conn, scfg)
				batch = append(batch, ss)
			}
		}
		c.runShards(batch)
		recovered = append(recovered, batch...)
		ranges = ranges[:0]
		for _, ss := range batch {
			switch {
			case ss.err != nil:
				rr := recoverRange{instance: ss.instance, lo: ss.lo, hi: ss.hi}
				if ss.rs != nil {
					rr.lo = ss.rs.cursor
					rr.pending = ss.rs.pending
				}
				if rr.lo < rr.hi || len(rr.pending) > 0 {
					ranges = append(ranges, rr)
				}
			case ss.rs != nil:
				// Cancelled mid-recovery: the partial results merge and
				// the remainder is reported, not retried.
				out.Incomplete = append(out.Incomplete, PermRange{Lo: ss.rs.cursor, Hi: ss.hi})
			}
		}
	}
	for _, rr := range ranges {
		if rr.lo < rr.hi {
			out.Incomplete = append(out.Incomplete, PermRange{Lo: rr.lo, Hi: rr.hi})
		}
	}
	return recovered
}

// writeProgress streams the merged progress series as NDJSON: sample
// records, optional per-shard window records, and the summary record.
// starts holds each PerShard entry's window-open instant.
func (c *Campaign) writeProgress(w io.Writer, out CampaignStats, starts []time.Duration) error {
	if err := telemetry.WritePoints(w, out.Progress); err != nil {
		return err
	}
	if c.cfg.Progress.PerShard {
		lines := make([]telemetry.ShardLine, len(out.PerShard))
		for s, st := range out.PerShard {
			lines[s] = telemetry.ShardLine{
				Shard:   s,
				Start:   starts[s],
				Elapsed: st.Elapsed,
				Lag:     out.Elapsed - (starts[s] + st.Elapsed),
				Probes:  st.ProbesSent,
				Fills:   st.Fills,
				Replies: st.Replies,
			}
		}
		if err := telemetry.WriteShardLines(w, lines); err != nil {
			return err
		}
	}
	if len(out.Progress) > 0 {
		return telemetry.WriteSummary(w, out.Progress[len(out.Progress)-1])
	}
	return nil
}

// mergeStoreTree folds the shard stores pairwise on goroutines until
// one remains, consuming the slice. Level k merges shard blocks of
// size 2^k into their left neighbors, so the surviving store is
// stores[0] with every other shard folded in, in shard order.
func mergeStoreTree(stores []*probe.Store) *probe.Store {
	for len(stores) > 1 {
		pairs := len(stores) / 2
		var wg sync.WaitGroup
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				stores[2*i].Merge(stores[2*i+1])
			}(i)
		}
		wg.Wait()
		next := stores[:0]
		for i := 0; i < len(stores); i += 2 {
			next = append(next, stores[i])
		}
		stores = next
	}
	return stores[0]
}

// ifaceTimes is the per-shard reply tap behind the global discovery
// curve: it records the first virtual instant each interface address
// was seen at, then forwards the reply to the user's observer. One
// map lookup per Time Exceeded reply; insertions are bounded by the
// shard's unique-interface count.
type ifaceTimes struct {
	inner probe.Observer
	first map[netip.Addr]time.Duration
}

func (o *ifaceTimes) OnReply(r probe.Reply) {
	if r.Kind == probe.KindTimeExceeded {
		if _, ok := o.first[r.From]; !ok {
			o.first[r.From] = r.At
		}
	}
	if o.inner != nil {
		o.inner.OnReply(r)
	}
}

// firstSeenAt folds the per-shard first-sighting maps into the global
// first-seen instants — minimized across shards, one entry per distinct
// interface address — sorted ascending. Both the curve merge and the
// progress merge count interfaces by walking this list.
func firstSeenAt(tracks []*ifaceTimes) []time.Duration {
	first := make(map[netip.Addr]time.Duration)
	for _, tr := range tracks {
		for a, at := range tr.first {
			if cur, ok := first[a]; !ok || at < cur {
				first[a] = at
			}
		}
	}
	seenAt := make([]time.Duration, 0, len(first))
	for _, at := range first {
		seenAt = append(seenAt, at)
	}
	sort.Slice(seenAt, func(i, j int) bool { return seenAt[i] < seenAt[j] })
	return seenAt
}

// mergeCurves interleaves the per-shard discovery curves — which chart
// disjoint permutation windows — into one global curve ordered by
// virtual time. Shard curve samples already carry their virtual
// instants (each shard's clock opens at lo×gap, so CurvePoint.At is
// campaign-global time); the global probe count at an instant is the
// sum of every shard's latest sample at or before it, and the global
// interface count is the number of distinct addresses whose first
// sighting — minimized across shards — is at or before it. The final
// point therefore lands exactly on (total probes, merged unique
// interfaces).
func mergeCurves(perShard []Stats, tracks []*ifaceTimes) []CurvePoint {
	seenAt := firstSeenAt(tracks)

	type event struct {
		at     time.Duration
		shard  int
		probes int64
	}
	var events []event
	for s := range perShard {
		for _, p := range perShard[s].Curve {
			events = append(events, event{at: p.At, shard: s, probes: p.Probes})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].shard < events[j].shard
	})

	probesBy := make([]int64, len(perShard))
	var total int64
	out := make([]CurvePoint, 0, len(events))
	ifaces := 0
	for i, ev := range events {
		total += ev.probes - probesBy[ev.shard]
		probesBy[ev.shard] = ev.probes
		// Emit one point per distinct instant, after folding every
		// shard sample taken at it.
		if i+1 < len(events) && events[i+1].at == ev.at {
			continue
		}
		for ifaces < len(seenAt) && seenAt[ifaces] <= ev.at {
			ifaces++
		}
		out = append(out, CurvePoint{Probes: total, Interfaces: ifaces, At: ev.at})
	}
	return out
}
