// Campaign: the sharded, concurrent Yarrp6 runner.
//
// Yarrp6's permutation domain partitions trivially — the paper's own
// deployments run one prober instance per slice of the keyed permutation,
// distinguished by the Instance byte every probe carries. Campaign
// exploits that: it splits the (target × TTL) domain into N contiguous
// shards and drives each with its own Yarrp6 instance on its own
// goroutine, its own connection, and its own result store, then merges.
//
// The sharded run reproduces the single-prober run's schedule exactly.
// Shard i's connection opens its virtual clock at the moment shard i's
// window of the global schedule begins (permutation index lo_i ×
// inter-probe gap), so the union of all shard schedules is the 1-shard
// schedule probe for probe and timestamp for timestamp. Against a
// simulator whose per-packet behaviour is a pure function of (probe,
// send time) — see netsim — the merged store is deterministic whatever
// the goroutine interleaving, and a 1-shard Campaign is byte-identical
// to calling Yarrp6.Run directly. A sharded run matches the 1-shard run
// reply for reply up to one caveat: router token buckets are
// epoch-scoped per shard (each shard's first touch finds a full
// bucket), so under sustained rate-limit saturation a few extra replies
// can appear near shard-window starts; buckets that are not saturated —
// the normal regime for randomized probing — carry no deviation at all.
package core

import (
	"fmt"
	"sync"
	"time"

	"beholder/internal/probe"
)

// ConnFactory builds the vantage connection shard i probes through.
// start is the virtual time at which shard i's permutation window opens,
// relative to the campaign epoch; implementations backed by a virtual
// clock must open the connection's clock there so that the shard sends
// its probes at the same virtual times a single prober would have.
// Campaign.Run invokes the factory serially, before any shard starts.
type ConnFactory func(shard int, start time.Duration) probe.Conn

// CampaignConfig parameterizes a sharded campaign.
type CampaignConfig struct {
	Config
	// Shards is the number of concurrent prober instances. Each shard s
	// probes with Instance = Config.Instance + s. Default 1.
	Shards int
	// RecordPaths enables per-target trace retention in the merged
	// store (and the per-shard stores feeding it).
	RecordPaths bool
	// NewObserver, when non-nil, builds the per-shard reply observer:
	// shard s's prober calls NewObserver(s)'s OnReply for every stored
	// reply, on the shard goroutine. The factory runs serially before
	// any shard starts; the caller folds whatever the observers built
	// (per-shard topology subgraphs, say) after Run returns. Config's
	// own Observer field must be left nil — shards may not share one
	// unsynchronized observer.
	NewObserver func(shard int) probe.Observer
}

// CampaignStats extends the merged campaign counters with the per-shard
// breakdown.
type CampaignStats struct {
	Stats
	// PerShard holds each shard's own counters (including its discovery
	// curve over its window). Index is shard number.
	PerShard []Stats
}

// Campaign is a sharded Yarrp6 run.
type Campaign struct {
	cfg    CampaignConfig
	connOf ConnFactory
}

// NewCampaign creates a sharded campaign; validation happens in Run.
func NewCampaign(cfg CampaignConfig, connOf ConnFactory) *Campaign {
	return &Campaign{cfg: cfg, connOf: connOf}
}

// shardRange returns the contiguous permutation slice [lo, hi) owned by
// shard s of n over a domain of the given size.
func shardRange(domain uint64, s, n int) (lo, hi uint64) {
	lo = domain * uint64(s) / uint64(n)
	hi = domain * uint64(s+1) / uint64(n)
	return lo, hi
}

// Run executes the campaign and returns the merged store and statistics.
// The merge is deterministic: shards own disjoint permutation slices, and
// their stores are folded in shard order (equal to virtual-time order of
// the shard windows) after every goroutine has finished.
func (c *Campaign) Run() (*probe.Store, CampaignStats, error) {
	cfg := c.cfg
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if err := cfg.Config.setDefaults(); err != nil {
		return nil, CampaignStats{}, err
	}
	if cfg.PermStart != 0 || cfg.PermEnd != 0 {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign owns the permutation split; clear PermStart/PermEnd")
	}
	if cfg.Config.Observer != nil {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign shards may not share one observer; use NewObserver")
	}
	domain := Domain(&cfg.Config)
	if uint64(cfg.Shards) > domain {
		cfg.Shards = int(domain)
	}
	gap := time.Duration(float64(time.Second) / cfg.PPS)

	type shardResult struct {
		stats Stats
		err   error
	}
	stores := make([]*probe.Store, cfg.Shards)
	results := make([]shardResult, cfg.Shards)
	probers := make([]*Yarrp6, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := shardRange(domain, s, cfg.Shards)
		scfg := cfg.Config
		scfg.Instance = cfg.Instance + uint8(s)
		scfg.PermStart, scfg.PermEnd = lo, hi
		if cfg.NewObserver != nil {
			scfg.Observer = cfg.NewObserver(s)
		}
		// The factory runs serially: connection construction may mutate
		// shared vantage state (clock-group registration).
		conn := c.connOf(s, time.Duration(lo)*gap)
		probers[s] = New(conn, scfg)
		stores[s] = probe.NewStore(cfg.RecordPaths)
	}

	var wg sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			stats, err := probers[s].Run(stores[s])
			results[s] = shardResult{stats: stats, err: err}
		}(s)
	}
	wg.Wait()

	merged := probe.NewStore(cfg.RecordPaths)
	var out CampaignStats
	out.PerShard = make([]Stats, cfg.Shards)
	var end time.Duration
	for s := 0; s < cfg.Shards; s++ {
		if err := results[s].err; err != nil {
			return nil, CampaignStats{}, fmt.Errorf("shard %d: %w", s, err)
		}
		st := results[s].stats
		out.PerShard[s] = st
		out.ProbesSent += st.ProbesSent
		out.Fills += st.Fills
		out.Skipped += st.Skipped
		out.Replies += st.Replies
		out.NotMine += st.NotMine
		lo, _ := shardRange(domain, s, cfg.Shards)
		if t := time.Duration(lo)*gap + st.Elapsed; t > end {
			end = t
		}
		merged.Merge(stores[s])
	}
	// Elapsed spans the whole virtual schedule: from the campaign epoch
	// to the last shard's drain deadline.
	out.Elapsed = end
	if cfg.Shards == 1 {
		out.Curve = results[0].stats.Curve
	} else {
		// Per-shard curves chart disjoint windows and cannot be
		// interleaved into one global discovery curve after the fact;
		// they remain in PerShard. The merged curve carries the final
		// totals.
		out.Curve = []CurvePoint{{out.ProbesSent, merged.NumInterfaces()}}
	}
	return merged, out, nil
}
