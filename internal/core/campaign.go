// Campaign: the sharded, concurrent Yarrp6 runner.
//
// Yarrp6's permutation domain partitions trivially — the paper's own
// deployments run one prober instance per slice of the keyed permutation,
// distinguished by the Instance byte every probe carries. Campaign
// exploits that: it splits the (target × TTL) domain into N contiguous
// shards and drives each with its own Yarrp6 instance on its own
// goroutine, its own connection, and its own result store, then merges.
//
// The sharded run reproduces the single-prober run's schedule exactly.
// Shard i's connection opens its virtual clock at the moment shard i's
// window of the global schedule begins (permutation index lo_i ×
// inter-probe gap), so the union of all shard schedules is the 1-shard
// schedule probe for probe and timestamp for timestamp. Against a
// simulator whose per-packet behaviour is a pure function of (probe,
// send time) — see netsim — the merged store is deterministic whatever
// the goroutine interleaving, and a 1-shard Campaign is byte-identical
// to calling Yarrp6.Run directly. A sharded run matches the 1-shard run
// reply for reply up to one caveat: router token buckets are
// epoch-scoped per shard (each shard's first touch finds a full
// bucket), so under sustained rate-limit saturation a few extra replies
// can appear near shard-window starts; buckets that are not saturated —
// the normal regime for randomized probing — carry no deviation at all.
package core

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// ConnFactory builds the vantage connection shard i probes through.
// start is the virtual time at which shard i's permutation window opens,
// relative to the campaign epoch; implementations backed by a virtual
// clock must open the connection's clock there so that the shard sends
// its probes at the same virtual times a single prober would have.
// Campaign.Run invokes the factory serially, before any shard starts.
type ConnFactory func(shard int, start time.Duration) probe.Conn

// CampaignConfig parameterizes a sharded campaign.
type CampaignConfig struct {
	Config
	// Shards is the number of concurrent prober instances. Each shard s
	// probes with Instance = Config.Instance + s. Default 1.
	Shards int
	// RecordPaths enables per-target trace retention in the merged
	// store (and the per-shard stores feeding it).
	RecordPaths bool
	// NewObserver, when non-nil, builds the per-shard reply observer:
	// shard s's prober calls NewObserver(s)'s OnReply for every stored
	// reply, on the shard goroutine. The factory runs serially before
	// any shard starts; the caller folds whatever the observers built
	// (per-shard topology subgraphs, say) after Run returns. Config's
	// own Observer field must be left nil — shards may not share one
	// unsynchronized observer.
	NewObserver func(shard int) probe.Observer
	// Telemetry, when non-nil, aggregates hot-path metrics: each shard
	// folds its counters and histograms into its own telemetry.Shard
	// view of this registry at curve-sample cadence, so snapshots read
	// campaign totals without any per-probe shared-atomic traffic.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, enables the deterministic virtual-time
	// progress stream: per-shard recorders merged into the global series
	// in CampaignStats.Progress and, when Writer is set, streamed as
	// NDJSON after the run.
	Progress *ProgressConfig
}

// ProgressConfig parameterizes the campaign progress stream.
type ProgressConfig struct {
	// Writer, when non-nil, receives the NDJSON stream after the run:
	// sample records in virtual-time order, optional per-shard records,
	// and a final summary record. Samples are deterministic — byte
	// identical at any shard count and batch size.
	Writer io.Writer
	// SampleEvery is the sampling interval in permutation slots (probe
	// departures). Zero picks domain/128 + 1, the discovery-curve step,
	// giving ~129 samples per campaign.
	SampleEvery uint64
	// PerShard adds per-shard window records (start, elapsed, lag,
	// counters) to the stream. These describe the shard layout itself,
	// so they vary with the shard count and are excluded from
	// determinism comparisons.
	PerShard bool
}

// CampaignStats extends the merged campaign counters with the per-shard
// breakdown.
type CampaignStats struct {
	Stats
	// PerShard holds each shard's own counters (including its discovery
	// curve over its window). Index is shard number.
	PerShard []Stats
	// Progress is the merged virtual-time progress series, present when
	// CampaignConfig.Progress was set. Timestamps are relative to the
	// campaign epoch; the final point lands at Elapsed with the campaign
	// totals.
	Progress []telemetry.Point
}

// Campaign is a sharded Yarrp6 run.
type Campaign struct {
	cfg    CampaignConfig
	connOf ConnFactory
}

// NewCampaign creates a sharded campaign; validation happens in Run.
func NewCampaign(cfg CampaignConfig, connOf ConnFactory) *Campaign {
	return &Campaign{cfg: cfg, connOf: connOf}
}

// shardRange returns the contiguous permutation slice [lo, hi) owned by
// shard s of n over a domain of the given size.
func shardRange(domain uint64, s, n int) (lo, hi uint64) {
	lo = domain * uint64(s) / uint64(n)
	hi = domain * uint64(s+1) / uint64(n)
	return lo, hi
}

// Run executes the campaign and returns the merged store and statistics.
// The merge is deterministic: shards own disjoint permutation slices, and
// their stores are folded in shard order (equal to virtual-time order of
// the shard windows) after every goroutine has finished.
func (c *Campaign) Run() (*probe.Store, CampaignStats, error) {
	cfg := c.cfg
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if err := cfg.Config.setDefaults(); err != nil {
		return nil, CampaignStats{}, err
	}
	if cfg.PermStart != 0 || cfg.PermEnd != 0 {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign owns the permutation split; clear PermStart/PermEnd")
	}
	if cfg.Config.Observer != nil {
		return nil, CampaignStats{}, fmt.Errorf("yarrp6: campaign shards may not share one observer; use NewObserver")
	}
	domain := Domain(&cfg.Config)
	if uint64(cfg.Shards) > domain {
		cfg.Shards = int(domain)
	}
	gap := time.Duration(float64(time.Second) / cfg.PPS)

	type shardResult struct {
		stats Stats
		err   error
	}
	stores := make([]*probe.Store, cfg.Shards)
	results := make([]shardResult, cfg.Shards)
	probers := make([]*Yarrp6, cfg.Shards)
	// One template store for the whole campaign: shard codecs differ
	// only by instance byte, which templates hold variable, so each
	// target's probe template is built once instead of once per shard.
	var tmpl *probe.TmplStore
	if cfg.Shards > 1 {
		tmpl = probe.NewTmplStore(tmplCacheSize(len(cfg.Targets)))
	}
	// Progress sampling: thresholds are epoch + k·step where step is a
	// whole number of permutation slots — the same virtual-time grid the
	// probe schedule lives on, so every shard crosses thresholds at
	// identical campaign-global instants whatever its window offset.
	var (
		progs   []*telemetry.Progress
		stepDur time.Duration
		epoch   time.Duration
	)
	if cfg.Progress != nil {
		slots := cfg.Progress.SampleEvery
		if slots == 0 {
			slots = domain/128 + 1
		}
		stepDur = time.Duration(slots) * gap
		progs = make([]*telemetry.Progress, cfg.Shards)
	}
	for s := 0; s < cfg.Shards; s++ {
		lo, hi := shardRange(domain, s, cfg.Shards)
		scfg := cfg.Config
		scfg.Instance = cfg.Instance + uint8(s)
		scfg.PermStart, scfg.PermEnd = lo, hi
		scfg.sharedTmpl = tmpl
		if cfg.NewObserver != nil {
			scfg.Observer = cfg.NewObserver(s)
		}
		if cfg.Telemetry != nil {
			scfg.telemetry = cfg.Telemetry.NewShard()
		}
		// The factory runs serially: connection construction may mutate
		// shared vantage state (clock-group registration).
		conn := c.connOf(s, time.Duration(lo)*gap)
		if s == 0 {
			// Shard 0's window opens at offset zero, so its connection's
			// current instant is the campaign epoch in absolute virtual
			// time — the origin every progress threshold counts from.
			epoch = conn.Now()
		}
		if progs != nil {
			progs[s] = telemetry.NewProgress(epoch, stepDur)
			scfg.progress = progs[s]
		}
		probers[s] = New(conn, scfg)
		stores[s] = probe.NewStore(cfg.RecordPaths)
	}

	// Per-shard interface first-seen tracking feeds the global
	// discovery-curve merge and the progress interface counts;
	// single-shard runs without progress keep the shard curve as-is and
	// skip the bookkeeping.
	var tracks []*ifaceTimes
	if cfg.Shards > 1 || progs != nil {
		tracks = make([]*ifaceTimes, cfg.Shards)
		for s := 0; s < cfg.Shards; s++ {
			tracks[s] = &ifaceTimes{inner: probers[s].cfg.Observer, first: make(map[netip.Addr]time.Duration)}
			probers[s].cfg.Observer = tracks[s]
		}
	}

	var wg sync.WaitGroup
	batchLabel := strconv.Itoa(cfg.Batch)
	for s := 0; s < cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Label the shard goroutine so -cpuprofile output from the
			// drivers attributes campaign time to (shard, batch) without
			// any manual goroutine archaeology in pprof.
			pprof.Do(context.Background(), pprof.Labels("yarrp6-shard", strconv.Itoa(s), "yarrp6-batch", batchLabel), func(context.Context) {
				stats, err := probers[s].Run(stores[s])
				results[s] = shardResult{stats: stats, err: err}
			})
		}(s)
	}
	wg.Wait()

	var out CampaignStats
	out.PerShard = make([]Stats, cfg.Shards)
	var end time.Duration
	for s := 0; s < cfg.Shards; s++ {
		if err := results[s].err; err != nil {
			return nil, CampaignStats{}, fmt.Errorf("shard %d: %w", s, err)
		}
		st := results[s].stats
		out.PerShard[s] = st
		out.ProbesSent += st.ProbesSent
		out.Fills += st.Fills
		out.Skipped += st.Skipped
		out.Replies += st.Replies
		out.NotMine += st.NotMine
		lo, _ := shardRange(domain, s, cfg.Shards)
		if t := time.Duration(lo)*gap + st.Elapsed; t > end {
			end = t
		}
	}
	// Fold the shard stores with a parallel tree merge: pairwise
	// probe.Store.Merge on worker goroutines, halving the list each
	// level, so merge latency is O(log N) pairwise merges instead of a
	// serial O(N) fold. Merge is commutative and associative (property
	// tests in internal/probe pin this), and shards own disjoint
	// permutation slices, so the tree shape cannot change the result;
	// pairing adjacent shards additionally keeps the fold in
	// virtual-time order, preserving the documented first-answer rule
	// even for overlapping ad-hoc inputs.
	merged := mergeStoreTree(stores)
	// Elapsed spans the whole virtual schedule: from the campaign epoch
	// to the last shard's drain deadline.
	out.Elapsed = end
	if cfg.Shards == 1 {
		out.Curve = results[0].stats.Curve
	} else {
		out.Curve = mergeCurves(out.PerShard, tracks)
	}
	if progs != nil {
		// First sightings relative to the campaign epoch, sorted: the
		// merge counts interfaces by walking this list against each
		// threshold.
		seenAt := firstSeenAt(tracks)
		for i := range seenAt {
			seenAt[i] -= epoch
		}
		out.Progress = telemetry.Merge(progs, seenAt, stepDur, end)
		if w := cfg.Progress.Writer; w != nil {
			if err := c.writeProgress(w, out, domain, gap); err != nil {
				return merged, out, fmt.Errorf("progress stream: %w", err)
			}
		}
	}
	return merged, out, nil
}

// writeProgress streams the merged progress series as NDJSON: sample
// records, optional per-shard window records, and the summary record.
func (c *Campaign) writeProgress(w io.Writer, out CampaignStats, domain uint64, gap time.Duration) error {
	if err := telemetry.WritePoints(w, out.Progress); err != nil {
		return err
	}
	if c.cfg.Progress.PerShard {
		lines := make([]telemetry.ShardLine, len(out.PerShard))
		for s, st := range out.PerShard {
			lo, _ := shardRange(domain, s, len(out.PerShard))
			start := time.Duration(lo) * gap
			lines[s] = telemetry.ShardLine{
				Shard:   s,
				Start:   start,
				Elapsed: st.Elapsed,
				Lag:     out.Elapsed - (start + st.Elapsed),
				Probes:  st.ProbesSent,
				Fills:   st.Fills,
				Replies: st.Replies,
			}
		}
		if err := telemetry.WriteShardLines(w, lines); err != nil {
			return err
		}
	}
	if len(out.Progress) > 0 {
		return telemetry.WriteSummary(w, out.Progress[len(out.Progress)-1])
	}
	return nil
}

// mergeStoreTree folds the shard stores pairwise on goroutines until
// one remains, consuming the slice. Level k merges shard blocks of
// size 2^k into their left neighbors, so the surviving store is
// stores[0] with every other shard folded in, in shard order.
func mergeStoreTree(stores []*probe.Store) *probe.Store {
	for len(stores) > 1 {
		pairs := len(stores) / 2
		var wg sync.WaitGroup
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				stores[2*i].Merge(stores[2*i+1])
			}(i)
		}
		wg.Wait()
		next := stores[:0]
		for i := 0; i < len(stores); i += 2 {
			next = append(next, stores[i])
		}
		stores = next
	}
	return stores[0]
}

// ifaceTimes is the per-shard reply tap behind the global discovery
// curve: it records the first virtual instant each interface address
// was seen at, then forwards the reply to the user's observer. One
// map lookup per Time Exceeded reply; insertions are bounded by the
// shard's unique-interface count.
type ifaceTimes struct {
	inner probe.Observer
	first map[netip.Addr]time.Duration
}

func (o *ifaceTimes) OnReply(r probe.Reply) {
	if r.Kind == probe.KindTimeExceeded {
		if _, ok := o.first[r.From]; !ok {
			o.first[r.From] = r.At
		}
	}
	if o.inner != nil {
		o.inner.OnReply(r)
	}
}

// firstSeenAt folds the per-shard first-sighting maps into the global
// first-seen instants — minimized across shards, one entry per distinct
// interface address — sorted ascending. Both the curve merge and the
// progress merge count interfaces by walking this list.
func firstSeenAt(tracks []*ifaceTimes) []time.Duration {
	first := make(map[netip.Addr]time.Duration)
	for _, tr := range tracks {
		for a, at := range tr.first {
			if cur, ok := first[a]; !ok || at < cur {
				first[a] = at
			}
		}
	}
	seenAt := make([]time.Duration, 0, len(first))
	for _, at := range first {
		seenAt = append(seenAt, at)
	}
	sort.Slice(seenAt, func(i, j int) bool { return seenAt[i] < seenAt[j] })
	return seenAt
}

// mergeCurves interleaves the per-shard discovery curves — which chart
// disjoint permutation windows — into one global curve ordered by
// virtual time. Shard curve samples already carry their virtual
// instants (each shard's clock opens at lo×gap, so CurvePoint.At is
// campaign-global time); the global probe count at an instant is the
// sum of every shard's latest sample at or before it, and the global
// interface count is the number of distinct addresses whose first
// sighting — minimized across shards — is at or before it. The final
// point therefore lands exactly on (total probes, merged unique
// interfaces).
func mergeCurves(perShard []Stats, tracks []*ifaceTimes) []CurvePoint {
	seenAt := firstSeenAt(tracks)

	type event struct {
		at     time.Duration
		shard  int
		probes int64
	}
	var events []event
	for s := range perShard {
		for _, p := range perShard[s].Curve {
			events = append(events, event{at: p.At, shard: s, probes: p.Probes})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].shard < events[j].shard
	})

	probesBy := make([]int64, len(perShard))
	var total int64
	out := make([]CurvePoint, 0, len(events))
	ifaces := 0
	for i, ev := range events {
		total += ev.probes - probesBy[ev.shard]
		probesBy[ev.shard] = ev.probes
		// Emit one point per distinct instant, after folding every
		// shard sample taken at it.
		if i+1 < len(events) && events[i+1].at == ev.at {
			continue
		}
		for ifaces < len(seenAt) && seenAt[ifaces] <= ev.at {
			ifaces++
		}
		out = append(out, CurvePoint{Probes: total, Interfaces: ifaces, At: ev.at})
	}
	return out
}
