package core

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"beholder/internal/ipv6"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/wire"
)

func testVantage(t testing.TB, seed int64) (*netsim.Universe, *netsim.Vantage) {
	t.Helper()
	u := netsim.NewUniverse(netsim.TestConfig(seed))
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	return u, v
}

// gatewayTargets samples n reachable LAN gateways.
func gatewayTargets(u *netsim.Universe, n int, seed int64) []netip.Addr {
	rng := rand.New(rand.NewSource(seed))
	var out []netip.Addr
	kinds := []netsim.ASKind{netsim.KindHosting, netsim.KindEyeballISP, netsim.KindEnterprise}
	for len(out) < n {
		as := u.RandomAS(rng, kinds[len(out)%len(kinds)])
		lan, ok := u.RandomLAN(rng, as)
		if !ok {
			continue
		}
		out = append(out, u.GatewayAddr(lan, as))
	}
	return out
}

func TestProbeChecksumConstantPerTarget(t *testing.T) {
	// The load-balancing invariant of Figure 4: for one target, probes at
	// every TTL carry the identical transport checksum (the fudge absorbs
	// TTL and timestamp variation), and that checksum verifies.
	_, v := testVantage(t, 1)
	for _, proto := range []uint8{wire.ProtoICMPv6, wire.ProtoUDP, wire.ProtoTCP} {
		y := New(v, Config{Targets: []netip.Addr{ipv6.MustAddr("2400:5::1")}, Proto: proto, PPS: 100})
		if err := y.initCodec(); err != nil {
			t.Fatal(err)
		}
		target := ipv6.MustAddr("2400:5:6:7::1")
		var first uint16
		for ttl := uint8(1); ttl <= 16; ttl++ {
			v.Sleep(3 * time.Millisecond) // timestamps differ probe to probe
			buf := make([]byte, 128)
			n := y.buildProbe(buf, target, ttl)
			var d wire.Decoded
			if err := d.Decode(buf[:n]); err != nil {
				t.Fatal(err)
			}
			if !d.VerifyTransportChecksum(buf[:n]) {
				t.Fatalf("proto %d ttl %d: checksum does not verify", proto, ttl)
			}
			var ck uint16
			switch proto {
			case wire.ProtoUDP:
				ck = d.UDP.Checksum
			case wire.ProtoTCP:
				ck = d.TCP.Checksum
			default:
				ck = d.ICMPv6.Checksum
			}
			if ttl == 1 {
				first = ck
			} else if ck != first {
				t.Fatalf("proto %d: checksum varies with TTL: %#x vs %#x", proto, ck, first)
			}
			if d.IPv6.HopLimit != ttl {
				t.Fatalf("hop limit %d want %d", d.IPv6.HopLimit, ttl)
			}
			// Payload layout: magic, instance, TTL.
			if binary.BigEndian.Uint32(d.Payload[0:4]) != Magic || d.Payload[5] != ttl {
				t.Fatalf("payload state wrong: % x", d.Payload)
			}
		}
	}
}

func TestProbeChecksumConstantQuick(t *testing.T) {
	_, v := testVantage(t, 2)
	y := New(v, Config{Targets: []netip.Addr{ipv6.MustAddr("2400:5::1")}})
	if err := y.initCodec(); err != nil {
		t.Fatal(err)
	}
	f := func(hi, lo uint64, ttlRaw uint8, dt uint16) bool {
		target := ipv6.U128{Hi: 0x2400_0000_0000_0000 | hi>>8, Lo: lo}.Addr()
		ttl := ttlRaw%32 + 1
		v.Sleep(time.Duration(dt) * time.Microsecond)
		buf := make([]byte, 128)
		n := y.buildProbe(buf, target, ttl)
		var d wire.Decoded
		if d.Decode(buf[:n]) != nil {
			return false
		}
		want := wire.AddrChecksum(target)
		if want == 0 {
			want = 0xffff
		}
		return d.VerifyTransportChecksum(buf[:n]) && d.ICMPv6.Checksum == want && d.ICMPv6.ID == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCampaignDiscoversTopology(t *testing.T) {
	u, v := testVantage(t, 3)
	targets := gatewayTargets(u, 60, 3)
	store := probe.NewStore(true)
	y := New(v, Config{Targets: targets, PPS: 200, MaxTTL: 16, Key: 7})
	stats, err := y.Run(store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProbesSent != int64(len(targets))*16 {
		t.Errorf("probes sent %d want %d", stats.ProbesSent, len(targets)*16)
	}
	if store.NumInterfaces() < 10 {
		t.Errorf("interfaces discovered %d, want >= 10", store.NumInterfaces())
	}
	if store.TimeExceeded == 0 {
		t.Error("no time exceeded responses")
	}
	// Per-trace hop sequences must be plausible paths: TTLs within range,
	// addresses valid.
	checked := 0
	for _, tr := range store.Traces() {
		for _, hop := range tr.SortedHops() {
			if hop.TTL < 1 || hop.TTL > 16 {
				t.Fatalf("hop TTL %d out of range", hop.TTL)
			}
			if !hop.Addr.Is6() {
				t.Fatalf("bad hop addr %s", hop.Addr)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no hops recorded")
	}
	if len(stats.Curve) < 2 {
		t.Error("no discovery curve recorded")
	}
	_ = u
}

func TestCampaignStateRecovery(t *testing.T) {
	// RTTs must be recoverable from the in-packet timestamp: nonzero and
	// bounded by campaign duration.
	u, v := testVantage(t, 4)
	targets := gatewayTargets(u, 30, 4)
	store := probe.NewStore(true)
	y := New(v, Config{Targets: targets, PPS: 500, MaxTTL: 12, Key: 9})
	if _, err := y.Run(store); err != nil {
		t.Fatal(err)
	}
	if store.TimeExceeded > 0 && store.Unparseable > store.TimeExceeded/5 {
		t.Errorf("unparseable %d of %d TE (truncation quirk should be rare)",
			store.Unparseable, store.TimeExceeded)
	}
}

func TestFillModeExtendsPaths(t *testing.T) {
	u, v := testVantage(t, 5)
	targets := gatewayTargets(u, 40, 5)

	store := probe.NewStore(true)
	y := New(v, Config{Targets: targets, PPS: 500, MaxTTL: 8, Key: 3, Fill: true})
	stats, err := y.Run(store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fills == 0 {
		t.Fatal("fill mode sent no fills (paths longer than 8 exist)")
	}
	maxHop := 0
	for _, tr := range store.Traces() {
		if l := tr.PathLength(); l > maxHop {
			maxHop = l
		}
	}
	if maxHop <= 8 {
		t.Errorf("fill mode never discovered past MaxTTL: deepest hop %d", maxHop)
	}
	_ = u
}

func TestSameKeySameOrderDifferentKeysDiffer(t *testing.T) {
	u, _ := testVantage(t, 6)
	targets := gatewayTargets(u, 50, 6)

	run := func(key uint64) (int, int64) {
		u.ResetState()
		v2 := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
		store := probe.NewStore(false)
		y := New(v2, Config{Targets: targets, PPS: 1000, MaxTTL: 8, Key: key})
		stats, err := y.Run(store)
		if err != nil {
			t.Fatal(err)
		}
		return store.NumInterfaces(), stats.ProbesSent
	}
	ifA, sentA := run(1)
	ifB, sentB := run(1)
	if ifA != ifB || sentA != sentB {
		t.Errorf("same key diverged: (%d,%d) vs (%d,%d)", ifA, sentA, ifB, sentB)
	}
}

func TestTransportsAllWork(t *testing.T) {
	u, _ := testVantage(t, 7)
	targets := gatewayTargets(u, 40, 7)
	results := map[uint8]int{}
	for _, proto := range []uint8{wire.ProtoICMPv6, wire.ProtoUDP, wire.ProtoTCP} {
		u.ResetState()
		v2 := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
		store := probe.NewStore(false)
		y := New(v2, Config{Targets: targets, PPS: 200, MaxTTL: 16, Key: 5, Proto: proto})
		if _, err := y.Run(store); err != nil {
			t.Fatal(err)
		}
		results[proto] = store.NumInterfaces()
		if store.NumInterfaces() == 0 {
			t.Errorf("proto %d discovered nothing", proto)
		}
	}
}

func TestForeignRepliesIgnored(t *testing.T) {
	// Replies not matching magic/instance must not pollute results.
	u, v := testVantage(t, 8)
	targets := gatewayTargets(u, 10, 8)
	store := probe.NewStore(true)
	y := New(v, Config{Targets: targets, PPS: 1000, MaxTTL: 4, Key: 1, Instance: 9})
	// Inject a forged TE quoting a probe from a different instance.
	forged := make([]byte, 128)
	hdr := wire.IPv6Header{HopLimit: 1, Src: v.LocalAddr(), Dst: targets[0]}
	var pl [PayloadLen]byte
	binary.BigEndian.PutUint32(pl[0:4], Magic)
	pl[4] = 3 // wrong instance
	icmp := wire.ICMPv6Header{Type: wire.ICMPv6EchoRequest, ID: 1, Seq: 80}
	n := wire.BuildPacket(forged, &hdr, wire.ProtoICMPv6, nil, nil, &icmp, pl[:])
	errPkt := make([]byte, wire.MinMTU)
	en := wire.BuildICMPv6Error(errPkt, wire.ICMPv6TimeExceeded, 0, ipv6.MustAddr("2400:99::1"), v.LocalAddr(), forged[:n], 64)
	// Run the campaign, then hand the forged packet to the reply handler.
	if _, err := y.Run(store); err != nil {
		t.Fatal(err)
	}
	before := store.NumInterfaces()
	y.handleReply(errPkt[:en], store)
	if y.codec.NotMine == 0 {
		t.Error("forged reply not flagged NotMine")
	}
	if store.Trace(targets[0]) != nil {
		for _, h := range store.Trace(targets[0]).Hops {
			if h.Addr == ipv6.MustAddr("2400:99::1") {
				t.Error("forged hop entered the trace store")
			}
		}
	}
	_ = before
	_ = u
}

func TestNeighborhoodSkipsStableTTLs(t *testing.T) {
	u, v := testVantage(t, 9)
	targets := gatewayTargets(u, 200, 9)
	store := probe.NewStore(false)
	y := New(v, Config{
		Targets: targets, PPS: 2000, MaxTTL: 8, Key: 2,
		NeighborhoodWindow: 200 * time.Millisecond, NeighborhoodTTL: 3,
	})
	stats, err := y.Run(store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 {
		t.Error("neighborhood heuristic never skipped (near hops stop yielding quickly)")
	}
	if stats.ProbesSent+stats.Skipped != int64(len(targets))*8 {
		t.Errorf("sent %d + skipped %d != domain %d", stats.ProbesSent, stats.Skipped, len(targets)*8)
	}
	_ = u
}

func TestConfigValidation(t *testing.T) {
	_, v := testVantage(t, 10)
	if _, err := New(v, Config{}).Run(probe.NewStore(false)); err == nil {
		t.Error("empty targets accepted")
	}
	bad := Config{Targets: []netip.Addr{ipv6.MustAddr("2400::1")}, MinTTL: 9, MaxTTL: 4}
	if _, err := New(v, bad).Run(probe.NewStore(false)); err == nil {
		t.Error("inverted TTL range accepted")
	}
	badProto := Config{Targets: []netip.Addr{ipv6.MustAddr("2400::1")}, Proto: 99}
	if _, err := New(v, badProto).Run(probe.NewStore(false)); err == nil {
		t.Error("unknown transport accepted")
	}
}

func BenchmarkBuildProbe(b *testing.B) {
	_, v := testVantage(b, 11)
	y := New(v, Config{Targets: []netip.Addr{ipv6.MustAddr("2400:5::1")}})
	if err := y.initCodec(); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 128)
	target := ipv6.MustAddr("2400:5:6:7::1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.buildProbe(buf, target, uint8(i%16+1))
	}
}
