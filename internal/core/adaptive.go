// Adaptive target generation: the probing loop as a closed feedback
// system.
//
// A static campaign fixes its (target × TTL) domain up front; an
// adaptive campaign grows it mid-flight. The run is a sequence of
// epochs: a TargetSource proposes a target batch, a full sharded
// Campaign probes it, and the merged epoch results — newly discovered
// interfaces and detected aliased prefixes — feed back into the source
// before it proposes the next batch. The paper's observation that seed
// density predicts discovery (Section 5) becomes a control loop: budget
// flows toward the regions that keep answering.
//
// Determinism survives the loop because every feedback exchange happens
// at a virtual-time boundary that is itself deterministic. Epoch k+1
// opens at base_{k+1} = base_k + Elapsed_k, and a campaign's Elapsed is
// a pure function of its schedule (the drain deadline is fixed when the
// last probe departs, and drain fast-forwards land on the same gap-grid
// instants at any shard count and batch size) — so the epoch boundaries,
// the feedback the source sees, and therefore the targets it generates
// are byte-identical at any shard × batch combination. Interrupting an
// adaptive run checkpoints the generation state alongside the inner
// campaign artifact, so a resumed run continues the same series.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"beholder/internal/perm"
	"beholder/internal/probe"
)

// Feedback carries one finished epoch's results back to the target
// source. The stores are read-only views owned by the campaign; sources
// must not mutate or retain them past the NextEpoch call.
type Feedback struct {
	// Epoch is the index of the epoch the feedback describes.
	Epoch int
	// Store holds the epoch's own merged results, with per-target traces
	// (adaptive epochs always record paths) — the reward signal.
	Store *probe.Store
	// Total holds the results accumulated over every epoch before this
	// one; new-interface attribution diffs Store against it.
	Total *probe.Store
	// Aliased lists prefixes the alias detector flagged after the epoch;
	// sources prune or de-weight them.
	Aliased []netip.Prefix
}

// TargetSource streams per-epoch target batches into an adaptive
// campaign. Implementations must be deterministic — equal construction
// parameters and equal feedback must yield equal batches — and
// serializable, so an interrupted run resumes mid-adaptation.
// internal/gen6prob implements it.
type TargetSource interface {
	// NextEpoch returns up to want targets for the given epoch. fb is
	// the previous epoch's feedback, nil for epoch 0. An empty return
	// ends the run.
	NextEpoch(epoch, want int, fb *Feedback) []netip.Addr
	// AppendState appends the source's serialized generation state to
	// buf and returns the extended slice.
	AppendState(buf []byte) []byte
	// RestoreState restores state serialized by AppendState.
	RestoreState(data []byte) error
}

// AdaptiveConfig parameterizes an adaptive campaign. The embedded
// CampaignConfig is the per-epoch template: its Config.Targets must be
// empty (the source supplies each epoch's targets), Progress must be
// nil (the progress stream is per-campaign), and InterruptAt is
// interpreted against the adaptive run's own virtual-time origin.
type AdaptiveConfig struct {
	CampaignConfig
	// Source proposes each epoch's target batch. Required.
	Source TargetSource
	// Budget caps total probes across all epochs: epoch k gets at most
	// (Budget − probes spent) / TTL-span targets. Zero means no cap
	// (MaxEpochs alone bounds the run).
	Budget int64
	// EpochTargets caps the targets requested per epoch. Default 256.
	EpochTargets int
	// MaxEpochs bounds the epoch count. Default 16.
	MaxEpochs int
	// DetectAliases, when non-nil, runs after each epoch on the epoch's
	// merged store and returns the aliased prefixes to feed back to the
	// source. The facade wires internal/alias in here; detection must be
	// deterministic (run it against a boundary-instant connection).
	DetectAliases func(epoch int, store *probe.Store) []netip.Prefix
}

// EpochStats summarizes one completed epoch.
type EpochStats struct {
	// Epoch is the epoch index.
	Epoch int
	// Targets is the size of the epoch's target batch.
	Targets int
	// Base is the epoch window's opening instant, relative to the
	// adaptive run's origin.
	Base time.Duration
	// Stats holds the epoch campaign's counters (Curve is nil; Elapsed
	// is the epoch's own span).
	Stats Stats
	// Interfaces is the cumulative unique-interface count after the
	// epoch — the adaptive run's discovery curve ordinate.
	Interfaces int
}

// AdaptiveStats reports an adaptive run: merged counters, a discovery
// curve with one point per epoch boundary, and the per-epoch breakdown.
type AdaptiveStats struct {
	Stats
	Epochs []EpochStats
}

// AdaptiveCampaign is a multi-epoch adaptive run. Like Campaign, a
// value runs once; after an interrupted run it retains complete state
// and Checkpoint serializes it.
type AdaptiveCampaign struct {
	cfg    AdaptiveConfig
	connOf ConnFactory

	epoch     int           // index of the next (or currently running) epoch
	base      time.Duration // virtual offset of that epoch's window, from origin
	origin    time.Duration // absolute virtual instant of epoch 0's open
	originSet bool
	spent     int64 // probes sent in completed epochs
	total     *probe.Store
	epochs    []EpochStats
	pending   []netip.Addr // next epoch's targets, generated at the boundary

	resumed     bool
	resumeInner []byte // interrupted inner campaign artifact, from ResumeAdaptive
	interrupted bool
	partial     *Stats // mid-epoch interrupt: the cut epoch's partial counters

	stop  atomic.Bool
	mu    sync.Mutex
	inner *Campaign // running (or interrupted) epoch campaign
}

// NewAdaptive creates an adaptive campaign; validation happens in Run.
// connOf is invoked with virtual-time offsets relative to the adaptive
// run's origin — epoch k's shard s opens at base_k + lo_s × gap.
func NewAdaptive(cfg AdaptiveConfig, connOf ConnFactory) *AdaptiveCampaign {
	return &AdaptiveCampaign{cfg: cfg, connOf: connOf}
}

// Epoch returns the adaptive run's origin in absolute virtual time,
// valid once the first epoch has started (and always on resumed runs).
func (a *AdaptiveCampaign) Epoch() time.Duration { return a.origin }

// Interrupt requests a cooperative stop: the running epoch campaign
// interrupts at its next batch boundary and the adaptive run stops at
// that epoch, checkpointable. Safe from any goroutine.
func (a *AdaptiveCampaign) Interrupt() {
	a.stop.Store(true)
	a.mu.Lock()
	if a.inner != nil {
		a.inner.Interrupt()
	}
	a.mu.Unlock()
}

// Run executes the adaptive campaign and returns the merged store and
// statistics. It is RunContext without cancellation.
func (a *AdaptiveCampaign) Run() (*probe.Store, AdaptiveStats, error) {
	return a.RunContext(context.Background())
}

// RunContext executes the adaptive campaign: epochs of sharded probing
// alternating with target generation, until the budget, the epoch
// bound, or the source itself is exhausted. Cancelling ctx (or an
// InterruptAt instant) stops the run checkpointable, mid-epoch or at a
// boundary; ErrInterrupted is returned with the partial merged view.
func (a *AdaptiveCampaign) RunContext(ctx context.Context) (*probe.Store, AdaptiveStats, error) {
	cfg := &a.cfg
	if cfg.Source == nil {
		return nil, AdaptiveStats{}, fmt.Errorf("yarrp6: adaptive campaign needs a target source")
	}
	if cfg.Progress != nil {
		return nil, AdaptiveStats{}, fmt.Errorf("yarrp6: progress streaming is unsupported under adaptive generation")
	}
	if !a.resumed && len(cfg.Config.Targets) != 0 {
		return nil, AdaptiveStats{}, fmt.Errorf("yarrp6: the target source supplies adaptive targets; clear Config.Targets")
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 16
	}
	minTTL, maxTTL := cfg.MinTTL, cfg.MaxTTL
	if minTTL == 0 {
		minTTL = 1
	}
	if maxTTL == 0 {
		maxTTL = 16
	}
	if minTTL > maxTTL {
		return nil, AdaptiveStats{}, fmt.Errorf("yarrp6: MinTTL %d > MaxTTL %d", minTTL, maxTTL)
	}
	ttlSpan := int64(maxTTL-minTTL) + 1
	if cfg.EpochTargets <= 0 {
		// Default: spread a budgeted run across the full epoch allowance
		// so feedback actually steers it — one giant epoch adapts nothing.
		cfg.EpochTargets = 256
		if cfg.Budget > 0 {
			if per := cfg.Budget / ttlSpan / int64(cfg.MaxEpochs); per < 256 {
				cfg.EpochTargets = int(per)
				if cfg.EpochTargets < 1 {
					cfg.EpochTargets = 1
				}
			}
		}
	}
	if a.total == nil {
		// Adaptive runs always retain traces: reward attribution walks
		// per-target paths, so the merged store carries them too.
		a.total = probe.NewStore(true)
	}

	// Resume continuation: finish the epoch that was cut mid-flight
	// before the generation loop takes over.
	if len(a.resumeInner) > 0 {
		var innerIA time.Duration
		if cfg.InterruptAt > 0 {
			innerIA = cfg.InterruptAt - a.base
		}
		inner, err := Resume(a.resumeInner, ResumeConfig{
			NewObserver: cfg.NewObserver,
			Telemetry:   cfg.Telemetry,
			InterruptAt: innerIA,
		}, a.epochConnOf())
		if err != nil {
			return nil, AdaptiveStats{}, err
		}
		a.resumeInner = nil
		if store, done, err := a.runEpoch(ctx, inner, ttlSpan); !done {
			return store, a.snapshot(), err
		}
	} else if !a.resumed {
		a.pending = cfg.Source.NextEpoch(0, a.want(ttlSpan), nil)
	}

	for len(a.pending) > 0 {
		if err := a.boundaryStop(ctx); err != nil {
			return cloneStore(a.total), a.snapshot(), err
		}
		ccfg := cfg.CampaignConfig
		ccfg.Config.Targets = a.pending
		// Each epoch walks its own domain in an independent order; the
		// derived key keeps the whole series reproducible from one key.
		ccfg.Config.Key = perm.Derive(cfg.Key, uint64(a.epoch))
		ccfg.RecordPaths = true
		ccfg.Progress = nil
		ccfg.InterruptAt = 0
		if cfg.InterruptAt > 0 {
			// The adaptive instant, re-expressed against this epoch's
			// window (positive here — boundary interrupts were caught
			// above). Epochs ending before it complete normally.
			ccfg.InterruptAt = cfg.InterruptAt - a.base
		}
		inner := NewCampaign(ccfg, a.epochConnOf())
		if store, done, err := a.runEpoch(ctx, inner, ttlSpan); !done {
			return store, a.snapshot(), err
		}
	}
	a.interrupted = false
	return cloneStore(a.total), a.snapshot(), nil
}

// epochConnOf wraps the adaptive factory for the current epoch: inner
// campaigns ask for offsets relative to their own window, connections
// open relative to the adaptive origin.
func (a *AdaptiveCampaign) epochConnOf() ConnFactory {
	base := a.base
	return func(s int, start time.Duration) probe.Conn {
		return a.connOf(s, base+start)
	}
}

// boundaryStop reports whether the run must stop at the current epoch
// boundary: cancellation, a cooperative Interrupt, or an InterruptAt
// instant at or before the boundary.
func (a *AdaptiveCampaign) boundaryStop(ctx context.Context) error {
	stopped := a.stop.Load() || (ctx != nil && ctx.Err() != nil)
	if !stopped && a.cfg.InterruptAt > 0 && a.cfg.InterruptAt <= a.base {
		stopped = true
	}
	if stopped {
		a.interrupted = true
		return ErrInterrupted
	}
	return nil
}

// want returns the target count to request for the next epoch: the
// per-epoch cap, shrunk so the epoch's raw schedule fits the remaining
// probe budget.
func (a *AdaptiveCampaign) want(ttlSpan int64) int {
	w := int64(a.cfg.EpochTargets)
	if a.cfg.Budget > 0 {
		rem := a.cfg.Budget - a.spent
		if rem <= 0 {
			return 0
		}
		if byBudget := rem / ttlSpan; byBudget < w {
			w = byBudget
		}
	}
	return int(w)
}

// runEpoch drives one epoch campaign, folds its results, and generates
// the next epoch's targets at the boundary. done is false when the run
// must stop — the returned store is then the partial merged view (nil
// on fatal errors).
func (a *AdaptiveCampaign) runEpoch(ctx context.Context, inner *Campaign, ttlSpan int64) (*probe.Store, bool, error) {
	ep := a.epoch
	a.mu.Lock()
	a.inner = inner
	if a.stop.Load() {
		inner.Interrupt()
	}
	a.mu.Unlock()
	store, cst, err := inner.RunContext(ctx)
	if !a.originSet && err == nil || !a.originSet && errors.Is(err, ErrInterrupted) {
		a.origin = inner.Epoch() - a.base
		a.originSet = true
	}
	switch {
	case err == nil:
		a.mu.Lock()
		a.inner = nil
		a.mu.Unlock()
	case errors.Is(err, ErrInterrupted):
		// Keep the inner campaign: Checkpoint embeds its artifact. The
		// cut epoch's partial counters are surfaced in the run snapshot
		// (they are not folded into the per-epoch record — the resumed
		// run re-reports the epoch whole).
		a.interrupted = true
		ps := cst.Stats
		ps.Curve = nil
		a.partial = &ps
		merged := cloneStore(a.total)
		merged.Merge(store)
		return merged, false, ErrInterrupted
	default:
		return nil, false, err
	}

	epStats := cst.Stats
	epStats.Curve = nil
	a.spent += epStats.ProbesSent
	epBase := a.base
	a.base += epStats.Elapsed

	// Generation happens at the boundary instant: feedback sees the
	// epoch's own store against the pre-epoch accumulation, plus the
	// alias verdicts.
	var pending []netip.Addr
	if w := a.want(ttlSpan); w > 0 && ep+1 < a.cfg.MaxEpochs {
		var aliased []netip.Prefix
		if a.cfg.DetectAliases != nil {
			aliased = a.cfg.DetectAliases(ep, store)
		}
		fb := &Feedback{Epoch: ep, Store: store, Total: a.total, Aliased: aliased}
		pending = a.cfg.Source.NextEpoch(ep+1, w, fb)
	}
	a.total.Merge(store)
	a.epochs = append(a.epochs, EpochStats{
		Epoch:      ep,
		Targets:    len(inner.cfg.Targets),
		Base:       epBase,
		Stats:      epStats,
		Interfaces: a.total.NumInterfaces(),
	})
	a.pending = pending
	a.epoch = ep + 1
	return nil, true, nil
}

// snapshot assembles the run statistics from the completed epochs.
func (a *AdaptiveCampaign) snapshot() AdaptiveStats {
	var out AdaptiveStats
	out.Epochs = append([]EpochStats(nil), a.epochs...)
	for _, e := range a.epochs {
		out.ProbesSent += e.Stats.ProbesSent
		out.Fills += e.Stats.Fills
		out.Skipped += e.Stats.Skipped
		out.Replies += e.Stats.Replies
		out.NotMine += e.Stats.NotMine
		out.Retries += e.Stats.Retries
		out.Curve = append(out.Curve, CurvePoint{
			Probes:     out.ProbesSent,
			Interfaces: e.Interfaces,
			At:         e.Base + e.Stats.Elapsed,
		})
	}
	out.Elapsed = a.base
	if p := a.partial; p != nil {
		out.ProbesSent += p.ProbesSent
		out.Fills += p.Fills
		out.Skipped += p.Skipped
		out.Replies += p.Replies
		out.NotMine += p.NotMine
		out.Retries += p.Retries
		out.Elapsed += p.Elapsed
	}
	return out
}

// cloneStore returns a standalone copy of s (traces included).
func cloneStore(s *probe.Store) *probe.Store {
	c := probe.NewStore(true)
	c.Merge(s)
	return c
}
