package core

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"beholder/internal/graph"
	"beholder/internal/netsim"
	"beholder/internal/probe"
	"beholder/internal/telemetry"
	"beholder/internal/wire"
)

// batchCampaign runs one campaign at the given shard count and send
// batch size, with per-shard streaming graph observers and the telemetry
// progress stream enabled, and returns the merged store, the merged
// graph's canonical NDJSON, the progress NDJSON stream, and the campaign
// stats.
func batchCampaign(t *testing.T, seed int64, targets []netip.Addr, shards, batch int) (*probe.Store, []byte, []byte, CampaignStats) {
	t.Helper()
	u := campaignUniverse(seed)
	v := u.NewVantage(netsim.VantageSpec{Name: "US-EDU-1", Kind: netsim.KindUniversity, ChainLen: 4})
	cfg := campaignCfg(targets)
	cfg.Batch = batch
	builders := make([]*graph.Graph, shards)
	var progress bytes.Buffer
	camp := NewCampaign(CampaignConfig{
		Config:      cfg,
		Shards:      shards,
		RecordPaths: true,
		NewObserver: func(s int) probe.Observer {
			builders[s] = graph.New("US-EDU-1")
			return builders[s]
		},
		Telemetry: telemetry.NewRegistry(),
		Progress:  &ProgressConfig{Writer: &progress},
	}, func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Union(builders...)
	var buf bytes.Buffer
	if err := g.WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(graph.FromStore(store, "US-EDU-1", wire.ProtoICMPv6)) {
		t.Fatal("streamed shard graphs do not merge to the store-derived graph")
	}
	return store, buf.Bytes(), progress.Bytes(), stats
}

// TestCampaignShardBatchMatrix is the central acceptance test: for
// every (shards, batch-size) cell — including batch sizes that do not
// divide the shard windows — the merged store, the canonical graph
// export, the NDJSON progress stream, and the campaign counters are
// byte-identical to the serial (1-shard, batch-1) run. Batch size
// changes how probes are dispatched, never the virtual schedule; shard
// count changes who samples, never what the samples say. The -race CI
// job runs this matrix too.
func TestCampaignShardBatchMatrix(t *testing.T) {
	const seed = 1213
	// 61 targets × 12 TTLs = a 732-slot domain: not divisible by 7 or
	// 64, and shard windows of 732/2 and 732/4 are not divisible either.
	targets := campaignTargets(t, seed, 61)
	refStore, refGraph, refProgress, refStats := batchCampaign(t, seed, targets, 1, 1)
	if len(refProgress) == 0 {
		t.Fatal("reference run produced an empty progress stream")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 7, 64} {
			if shards == 1 && batch == 1 {
				continue
			}
			store, g, progress, stats := batchCampaign(t, seed, targets, shards, batch)
			if !store.Equal(refStore) {
				t.Fatalf("store differs at shards=%d batch=%d", shards, batch)
			}
			if !bytes.Equal(g, refGraph) {
				t.Errorf("graph differs at shards=%d batch=%d", shards, batch)
			}
			if !bytes.Equal(progress, refProgress) {
				t.Errorf("progress stream differs at shards=%d batch=%d:\nref:  %s\ngot:  %s",
					shards, batch, refProgress, progress)
			}
			if stats.ProbesSent != refStats.ProbesSent || stats.Fills != refStats.Fills ||
				stats.Replies != refStats.Replies || stats.NotMine != refStats.NotMine {
				t.Fatalf("stats differ at shards=%d batch=%d: %+v vs %+v",
					shards, batch, stats.Stats, refStats.Stats)
			}
			if shards == 1 {
				// Single-shard curves must match the serial reference
				// point for point regardless of batch size.
				if len(stats.Curve) != len(refStats.Curve) {
					t.Fatalf("curve length differs at batch=%d: %d vs %d", batch, len(stats.Curve), len(refStats.Curve))
				}
				for i := range stats.Curve {
					if stats.Curve[i] != refStats.Curve[i] {
						t.Fatalf("curve point %d differs at batch=%d: %+v vs %+v",
							i, batch, stats.Curve[i], refStats.Curve[i])
					}
				}
			}
		}
	}
}

// TestCampaignMergedCurve: a sharded campaign's global discovery curve —
// interleaved from the per-shard curves by virtual time — must be
// monotone in probes, instants, and interfaces, and must land exactly on
// the campaign totals; its interface counts must agree with the serial
// curve wherever both sample the same virtual instant.
func TestCampaignMergedCurve(t *testing.T) {
	const seed = 77
	targets := campaignTargets(t, seed, 64)
	_, _, _, serial := batchCampaign(t, seed, targets, 1, 1)
	store, _, _, stats := batchCampaign(t, seed, targets, 4, 64)

	curve := stats.Curve
	if len(curve) < 8 {
		t.Fatalf("merged curve has only %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].At < curve[i-1].At || curve[i].Probes < curve[i-1].Probes ||
			curve[i].Interfaces < curve[i-1].Interfaces {
			t.Fatalf("merged curve not monotone at point %d: %+v after %+v", i, curve[i], curve[i-1])
		}
	}
	last := curve[len(curve)-1]
	if last.Probes != stats.ProbesSent {
		t.Fatalf("final curve probes %d != campaign probes %d", last.Probes, stats.ProbesSent)
	}
	if last.Interfaces != store.NumInterfaces() {
		t.Fatalf("final curve interfaces %d != merged store interfaces %d", last.Interfaces, store.NumInterfaces())
	}
	// The serial curve samples a subset of the same virtual trajectory:
	// at any instant both curves sample, the discovery state is the
	// same, so interface counts must agree.
	byAt := make(map[time.Duration]int, len(curve))
	for _, p := range curve {
		byAt[p.At] = p.Interfaces
	}
	checked := 0
	for _, p := range serial.Curve {
		if n, ok := byAt[p.At]; ok {
			if n != p.Interfaces {
				t.Fatalf("at %v: merged curve has %d interfaces, serial %d", p.At, n, p.Interfaces)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("serial and merged curves share no sample instants; cannot cross-check")
	}
}
