package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"beholder/internal/probe"
	"beholder/internal/telemetry"
)

// epochPoolSource is a deterministic, serializable TargetSource over a
// fixed target pool: each epoch takes the next slice of the pool, with
// the slice length modulated by the previous epoch's feedback — so the
// generated series genuinely depends on the results each epoch reports,
// and any divergence in epoch boundaries or feedback content across
// shard layouts shows up as a different target series.
type epochPoolSource struct {
	pool   []netip.Addr
	cursor uint32
	salt   uint64
}

func (s *epochPoolSource) NextEpoch(epoch, want int, fb *Feedback) []netip.Addr {
	if fb != nil {
		s.salt = s.salt*2654435761 + uint64(fb.Store.NumInterfaces()) + uint64(len(fb.Aliased))<<32
	}
	n := 5 + int(s.salt%7)
	if n > want {
		n = want
	}
	if rest := len(s.pool) - int(s.cursor); n > rest {
		n = rest
	}
	if n <= 0 {
		return nil
	}
	out := s.pool[s.cursor : int(s.cursor)+n]
	s.cursor += uint32(n)
	return out
}

func (s *epochPoolSource) AppendState(buf []byte) []byte {
	buf = append(buf, "PSRC"...)
	buf = binary.LittleEndian.AppendUint32(buf, s.cursor)
	return binary.LittleEndian.AppendUint64(buf, s.salt)
}

func (s *epochPoolSource) RestoreState(data []byte) error {
	if len(data) != 16 || string(data[:4]) != "PSRC" {
		return fmt.Errorf("epochPoolSource: bad state")
	}
	s.cursor = binary.LittleEndian.Uint32(data[4:])
	s.salt = binary.LittleEndian.Uint64(data[8:])
	return nil
}

// adaptiveRun is one adaptive execution's comparable artifacts.
type adaptiveRun struct {
	store *probe.Store
	graph []byte
	stats AdaptiveStats
}

func adaptiveCfg(pool []netip.Addr, shards, batch int, interruptAt time.Duration) AdaptiveConfig {
	return AdaptiveConfig{
		CampaignConfig: CampaignConfig{
			Config:      Config{PPS: 8000, MaxTTL: 8, Key: 77, Fill: true, Batch: batch},
			Shards:      shards,
			RecordPaths: true,
			Telemetry:   telemetry.NewRegistry(),
			InterruptAt: interruptAt,
		},
		Source:       &epochPoolSource{pool: pool},
		EpochTargets: 16,
		MaxEpochs:    4,
	}
}

// adaptiveReference runs the uninterrupted adaptive campaign on a fresh
// saturating universe.
func adaptiveReference(t *testing.T, seed int64, pool []netip.Addr, shards, batch int) adaptiveRun {
	t.Helper()
	_, v := saturationVantage(seed)
	a := NewAdaptive(adaptiveCfg(pool, shards, batch, 0),
		func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
	store, stats, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	return adaptiveRun{store: store, graph: graphNDJSON(t, store), stats: stats}
}

func assertAdaptiveEqual(t *testing.T, label string, got, want adaptiveRun) {
	t.Helper()
	if !got.store.Equal(want.store) {
		t.Fatalf("%s: merged store differs", label)
	}
	if !bytes.Equal(got.graph, want.graph) {
		t.Errorf("%s: graph differs", label)
	}
	g, w := got.stats, want.stats
	if g.ProbesSent != w.ProbesSent || g.Fills != w.Fills || g.Replies != w.Replies ||
		g.NotMine != w.NotMine || g.Elapsed != w.Elapsed {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, g.Stats, w.Stats)
	}
	if len(g.Epochs) != len(w.Epochs) {
		t.Fatalf("%s: epoch count %d vs %d", label, len(g.Epochs), len(w.Epochs))
	}
	if !reflect.DeepEqual(g.Epochs, w.Epochs) {
		t.Fatalf("%s: epoch series differ: %+v vs %+v", label, g.Epochs, w.Epochs)
	}
}

// TestAdaptiveShardBatchMatrix: the adaptive run — epochs, feedback,
// generated series, merged results — is byte-identical at every (shards,
// batch) cell, on a universe probed past its ICMPv6 rate limits. This is
// the closed-loop half of the determinism story: it holds only because
// epoch boundaries are virtual-time-deterministic and each epoch's
// campaign is itself shard/batch-invariant.
func TestAdaptiveShardBatchMatrix(t *testing.T) {
	const seed = 311
	u, _ := saturationVantage(seed)
	pool := gatewayTargets(u, 56, seed)
	ref := adaptiveReference(t, seed, pool, 1, 1)
	if len(ref.stats.Epochs) < 3 {
		t.Fatalf("reference adaptive run completed only %d epochs", len(ref.stats.Epochs))
	}
	if ref.store.NumInterfaces() == 0 {
		t.Fatal("reference adaptive run discovered nothing")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, batch := range []int{1, 64} {
			if shards == 1 && batch == 1 {
				continue
			}
			got := adaptiveReference(t, seed, pool, shards, batch)
			assertAdaptiveEqual(t, fmt.Sprintf("shards=%d batch=%d", shards, batch), got, ref)
		}
	}
}

// TestAdaptiveInterruptResume: an adaptive run interrupted mid-epoch —
// mid-adaptation, with generation state and a partially probed epoch in
// flight — checkpoints into one artifact and resumes on a fresh
// identically-seeded universe into exactly the uninterrupted run.
func TestAdaptiveInterruptResume(t *testing.T) {
	const seed = 311
	u, _ := saturationVantage(seed)
	pool := gatewayTargets(u, 56, seed)
	ref := adaptiveReference(t, seed, pool, 2, 64)
	if len(ref.stats.Epochs) < 3 {
		t.Fatalf("reference adaptive run completed only %d epochs", len(ref.stats.Epochs))
	}
	// One instant inside epoch 0's send window, one inside a later
	// epoch's window: both cut the run mid-adaptation.
	e1 := ref.stats.Epochs[1]
	instants := []time.Duration{
		ref.stats.Epochs[0].Base + 2*time.Millisecond,
		e1.Base + e1.Stats.Elapsed/2,
	}
	for _, at := range instants {
		_, v := saturationVantage(seed)
		a := NewAdaptive(adaptiveCfg(pool, 2, 64, at),
			func(_ int, start time.Duration) probe.Conn { return v.Clone(start) })
		if _, _, err := a.Run(); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("interrupt at %v: got err %v, want ErrInterrupted", at, err)
		}
		art, err := a.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint at %v: %v", at, err)
		}
		if !IsAdaptiveCheckpoint(art) {
			t.Fatal("adaptive artifact not recognized by IsAdaptiveCheckpoint")
		}
		_, v2 := saturationVantage(seed)
		res, err := ResumeAdaptive(art, AdaptiveResumeConfig{
			Source:    &epochPoolSource{pool: pool},
			Telemetry: telemetry.NewRegistry(),
		}, func(_ int, start time.Duration) probe.Conn { return v2.Clone(start) })
		if err != nil {
			t.Fatalf("resume at %v: %v", at, err)
		}
		store, stats, err := res.Run()
		if err != nil {
			t.Fatalf("resumed run at %v: %v", at, err)
		}
		got := adaptiveRun{store: store, graph: graphNDJSON(t, store), stats: stats}
		assertAdaptiveEqual(t, fmt.Sprintf("resume at %v", at), got, ref)
	}
}
